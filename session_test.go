package optsync

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optsync/internal/obs"
)

// newSessionCluster builds a cluster with a session lock and a counter
// it guards.
func newSessionCluster(t *testing.T, n int, opts ...Option) (*Cluster, *Group, *SessionLock, *Var) {
	t.Helper()
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	g, err := c.NewGroup("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	l := g.SessionLock("table")
	v := g.Int("counter", l)
	return c, g, l, v
}

// TestSessionConcurrentEntering is the acceptance test for group mutual
// exclusion: N same-session holders must be *observed concurrently* —
// all entered before any left — with the concurrency confirmed by the
// root's holder gauge and the session trace events.
func TestSessionConcurrentEntering(t *testing.T) {
	const readers = 3
	c, _, l, _ := newSessionCluster(t, readers+1, WithTracing(0))

	for i := 1; i <= readers; i++ {
		if err := c.MustHandle(i).RLock(l); err != nil {
			t.Fatal(err)
		}
	}
	// Every reader holds an entry at once; each node's local view must
	// converge on all three holders.
	for i := 1; i <= readers; i++ {
		h := c.MustHandle(i)
		deadline := time.Now().Add(5 * time.Second)
		for {
			si, err := h.SessionState(l)
			if err != nil {
				t.Fatal(err)
			}
			if si.Mine && si.Holders == readers && si.Session == SessionReaders {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d session state %+v, want %d concurrent holders", i, si, readers)
			}
			time.Sleep(time.Millisecond)
		}
	}
	// The root's gauge saw all of them simultaneously.
	rootMetrics, err := c.NodeMetrics(0)
	if err != nil {
		t.Fatal(err)
	}
	gauge := rootMetrics.Gauge(obs.GaugeSessHolders)
	if got := gauge.Value(); got != readers {
		t.Errorf("root holder gauge = %d with all readers in, want %d", got, readers)
	}
	if max := gauge.Max(); max < 2 {
		t.Errorf("root holder gauge max = %d, want >= 2 (no concurrent entering happened)", max)
	}
	for i := 1; i <= readers; i++ {
		if err := c.MustHandle(i).RUnlock(l); err != nil {
			t.Fatal(err)
		}
	}
	// One session opened (the joins did not close/reopen it), and the
	// trace shows it. The close is processed asynchronously at the root
	// once the last leave lands, so poll for it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var opens, closes int
		for _, ev := range c.TraceEvents() {
			switch ev.Type {
			case obs.EvSessOpen:
				opens++
			case obs.EvSessClose:
				closes++
			}
		}
		if opens == 1 && closes == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("trace: %d sess-open / %d sess-close events, want 1/1", opens, closes)
			break
		}
		time.Sleep(time.Millisecond)
	}
	st := c.MustHandle(0).Stats().GWC
	if st.SessionOpens != 1 || st.SessionJoins != readers-1 {
		t.Errorf("SessionOpens=%d SessionJoins=%d, want 1 and %d", st.SessionOpens, st.SessionJoins, readers-1)
	}
}

// TestSessionFairness is the acceptance test for the fairness rule: a
// writer queued behind an open reader session must enter after a
// bounded amount of reader churn — the root stops admitting new
// same-session joins the moment a different session queues.
func TestSessionFairness(t *testing.T) {
	c, _, l, v := newSessionCluster(t, 4)

	var stop atomic.Bool
	var wg sync.WaitGroup
	// Reader churn on two nodes: overlapping short shared sections that
	// would keep the session open forever if joins were always admitted.
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for !stop.Load() {
				if err := h.RLock(l); err != nil {
					t.Error(err)
					return
				}
				time.Sleep(200 * time.Microsecond)
				if err := h.RUnlock(l); err != nil {
					t.Error(err)
					return
				}
			}
		}(c.MustHandle(i))
	}
	// Give the churn a head start so the session is genuinely open.
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	w := c.MustHandle(3)
	if err := w.EnterContext(ctx, l, SessionExclusive); err != nil {
		t.Fatalf("writer starved by same-session reader churn: %v", err)
	}
	if err := w.Write(v, 42); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(l); err != nil {
		t.Fatal(err)
	}
	stop.Store(true)
	wg.Wait()
	waitRead(t, w, v, 42)
}

// Session 0 through the session API is exactly the mutex: two writers
// exclude each other and the guarded counter loses no increments.
func TestSessionExclusiveIsMutex(t *testing.T) {
	c, _, l, v := newSessionCluster(t, 3)
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				err := h.SessionDo(l, SessionExclusive, func() error {
					cur, err := h.Read(v)
					if err != nil {
						return err
					}
					return h.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(c.MustHandle(i))
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		waitRead(t, c.MustHandle(i), v, 20)
	}
}

// TestOptimisticSessionDo drives mixed optimistic writer sections and
// optimistic reader joins and checks the guarded counter's invariant —
// the session analog of the counter model checker.
func TestOptimisticSessionDo(t *testing.T) {
	c, _, l, v := newSessionCluster(t, 4)
	const writers, rounds = 2, 8
	var wg sync.WaitGroup
	for i := 1; i <= writers; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				err := h.OptimisticSessionDo(l, SessionExclusive, func(tx *Tx) error {
					cur, err := tx.Read(v)
					if err != nil {
						return err
					}
					return tx.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(c.MustHandle(i))
	}
	// A concurrent optimistic reader stream; readers never write, so
	// they only have to not break the writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		h := c.MustHandle(3)
		for r := 0; r < rounds; r++ {
			err := h.OptimisticSessionDo(l, SessionReaders, func(tx *Tx) error {
				_, err := tx.Read(v)
				return err
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for i := 0; i < 4; i++ {
		waitRead(t, c.MustHandle(i), v, writers*rounds)
	}
}

// A session entry taken under one session must be rejected as a guard
// for another session's writes: a reader cannot write the guarded
// variable.
func TestSessionReaderWritesSuppressed(t *testing.T) {
	c, g, l, v := newSessionCluster(t, 3)
	w := c.MustHandle(1)
	if err := w.WLock(l); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(v, 7); err != nil {
		t.Fatal(err)
	}
	if err := w.WUnlock(l); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(0), v, 7)

	// A non-holder's write to the guarded variable is suppressed at the
	// root: everyone else keeps 7.
	outsider := c.MustHandle(2)
	if err := outsider.Write(v, 99); err != nil {
		t.Fatal(err)
	}
	if err := outsider.Sync(g); err != nil {
		t.Fatal(err)
	}
	if got, err := c.MustHandle(0).Read(v); err != nil || got != 7 {
		t.Fatalf("root read %d (%v) after non-holder write, want 7 (suppressed)", got, err)
	}
}

// Leaving without entering and cross-kind name declarations fail loudly.
func TestSessionAPIValidation(t *testing.T) {
	c, g, l, _ := newSessionCluster(t, 2)
	if err := c.MustHandle(1).Leave(l); err == nil {
		t.Error("Leave without Enter succeeded")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("redeclaring a SessionLock name as Mutex did not panic")
			}
		}()
		g.Mutex("table")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("redeclaring a Mutex name as SessionLock did not panic")
			}
		}()
		g.Mutex("plain")
		g.SessionLock("plain")
	}()
}

// TestEnterAllOrdering exercises multi-group session entry: entries are
// taken in canonical order whatever the argument order, so concurrent
// multi-lock sections cannot deadlock.
func TestEnterAllOrdering(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ga, err := c.NewGroup("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := c.NewGroup("b", 1)
	if err != nil {
		t.Fatal(err)
	}
	la, lb := ga.SessionLock("l"), gb.SessionLock("l")

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for i := 1; i <= 2; i++ {
		wg.Add(1)
		go func(h *Handle, order []*SessionLock) {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				if err := h.SessionDoAll(SessionExclusive, func() error {
					return nil
				}, order...); err != nil {
					errs <- err
					return
				}
			}
		}(c.MustHandle(i), []*SessionLock{la, lb})
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if err := c.MustHandle(1).EnterAll(SessionReaders, lb, la); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(2).EnterAll(SessionReaders, la, lb); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(1).LeaveAll(la, lb); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(2).LeaveAll(lb, la); err != nil {
		t.Fatal(err)
	}
}

// An entry request cancelled while queued behind an incompatible
// session leaves no phantom at the root: the session closes cleanly for
// the next comer.
func TestEnterContextCancelWhileQueued(t *testing.T) {
	c, _, l, _ := newSessionCluster(t, 3)
	if err := c.MustHandle(1).RLock(l); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.MustHandle(2).EnterContext(ctx, l, SessionExclusive); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnterContext = %v, want context.DeadlineExceeded", err)
	}
	if err := c.MustHandle(1).RUnlock(l); err != nil {
		t.Fatal(err)
	}
	// The withdrawn writer must not inherit anything; a fresh writer
	// enters promptly.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := c.MustHandle(2).EnterContext(ctx2, l, SessionExclusive); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(2).WUnlock(l); err != nil {
		t.Fatal(err)
	}
}

package optsync

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestWithBatchingConverges(t *testing.T) {
	c, _, m, v := newTestCluster(t, 4, WithBatching(time.Millisecond, 16))
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		h := c.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				err := h.Do(m, func() error {
					cur, err := h.Read(v)
					if err != nil {
						return err
					}
					return h.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		waitRead(t, c.MustHandle(i), v, 30)
	}
	// Every increment flushed at a release boundary.
	var release int
	for i := 0; i < 4; i++ {
		release += c.MustHandle(i).Stats().GWC.FlushReasons.Release
	}
	if release == 0 {
		t.Error("no release-boundary flushes recorded under batching")
	}
}

// TestBatchedLossyNackRecovery drops sequenced traffic — whole batch
// frames included — and asserts the NACK machinery repairs the stream.
func TestBatchedLossyNackRecovery(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 3,
		WithLossyNetwork(0.3, 13),
		WithBatching(time.Millisecond, 8),
		WithTiming(Timing{Retry: 5 * time.Millisecond}))
	free := g.Int("free") // unguarded: writes flow without lock traffic
	h := c.MustHandle(1)
	const rounds = 60
	for i := 1; i <= rounds; i++ {
		if err := h.Write(free, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%6 == 0 {
			time.Sleep(2 * time.Millisecond) // close windows so frames multiply
		}
	}
	for i := 0; i < 3; i++ {
		waitRead(t, c.MustHandle(i), free, rounds)
	}
	root := c.MustHandle(0).Stats().GWC
	if root.Batches == 0 {
		t.Error("root sent no batch frames; the lossy path never saw one")
	}
	if root.Retransmits == 0 {
		t.Error("stream converged without retransmissions despite 30% drops")
	}
}

func TestTCPClusterBatched(t *testing.T) {
	c, _, m, v := newTestCluster(t, 3,
		WithTCP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}),
		WithBatching(time.Millisecond, 16))
	h := c.MustHandle(2)
	if err := h.Do(m, func() error { return h.Write(v, 11) }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		waitRead(t, c.MustHandle(i), v, 11)
	}
}

func TestSentinelErrorsAPI(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	if _, err := c.NewGroup("bad", 9); !errors.Is(err, ErrNotMember) {
		t.Errorf("out-of-range root: %v, want ErrNotMember", err)
	}
	if _, err := c.NewGroup("bad", 0, Members(0, 7)); !errors.Is(err, ErrNotMember) {
		t.Errorf("out-of-range member: %v, want ErrNotMember", err)
	}

	ga, err := c.NewGroup("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := c.NewGroup("b", 0)
	if err != nil {
		t.Fatal(err)
	}
	ma := ga.Mutex("m")
	vb := gb.Int("v")
	h := c.MustHandle(1)
	err = h.OptimisticDo(ma, func(tx *Tx) error { return tx.Write(vb, 1) })
	if !errors.Is(err, ErrUnknownVar) {
		t.Errorf("cross-group Tx.Write: %v, want ErrUnknownVar", err)
	}
	err = h.OptimisticDo(ma, func(tx *Tx) error { _, e := tx.Read(vb); return e })
	if !errors.Is(err, ErrUnknownVar) {
		t.Errorf("cross-group Tx.Read: %v, want ErrUnknownVar", err)
	}

	if _, err := ga.Published("p", vb); !errors.Is(err, ErrUnknownVar) {
		t.Errorf("cross-group Published: %v, want ErrUnknownVar", err)
	}

	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.NewGroup("late", 0); !errors.Is(err, ErrClosed) {
		t.Errorf("NewGroup after Close: %v, want ErrClosed", err)
	}
}

func TestHandleErrAndPanic(t *testing.T) {
	c, _, _, _ := newTestCluster(t, 2)
	if h, err := c.Handle(1); err != nil || h == nil {
		t.Fatalf("Handle(1) = %v, %v", h, err)
	}
	if _, err := c.Handle(2); !errors.Is(err, ErrNotMember) {
		t.Errorf("Handle(2): %v, want ErrNotMember", err)
	}
	if _, err := c.Handle(-1); !errors.Is(err, ErrNotMember) {
		t.Errorf("Handle(-1): %v, want ErrNotMember", err)
	}
	// The deprecated synonym keeps working during the transition.
	if h, err := c.HandleErr(1); err != nil || h == nil {
		t.Fatalf("HandleErr(1) = %v, %v", h, err)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustHandle(5) did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "out of range") {
			t.Errorf("panic message %v lacks a descriptive range error", r)
		}
	}()
	c.MustHandle(5)
}

func TestGroupAccessors(t *testing.T) {
	_, g, m, v := newTestCluster(t, 2)
	if v.Group() != g {
		t.Error("Var.Group() does not return the declaring group")
	}
	if m.Group() != g {
		t.Error("Mutex.Group() does not return the declaring group")
	}
}

// The deprecated alias must keep configuring the retransmission buffer.
func TestRetransmitBufferAlias(t *testing.T) {
	for _, opt := range []Option{WithHistoryBuffer(64), WithRetransmitBuffer(64)} {
		c, g, _, _ := newTestCluster(t, 2, opt)
		free := g.Int("free")
		if err := c.MustHandle(1).Write(free, 1); err != nil {
			t.Fatal(err)
		}
		waitRead(t, c.MustHandle(0), free, 1)
	}
}

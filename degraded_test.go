package optsync

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
	"time"
)

// healthzBody mirrors the /healthz JSON shape for decoding in tests.
type healthzBody struct {
	Serving bool `json:"serving"`
	Nodes   []struct {
		Fenced   int
		Electing int
	} `json:"nodes"`
}

func getHealthz(t *testing.T, addr string) (int, healthzBody) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var body healthzBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestHealthzReflectsServing pins the readiness contract: /healthz is
// 200 while every node can serve writes, flips to 503 while any node
// cannot (here: the root fenced by losing its member quorum), and
// recovers to 200 once the quorum returns and the fence lifts.
func TestHealthzReflectsServing(t *testing.T) {
	c, _, _, _ := newTestCluster(t, 3, WithChaos(), WithMetricsAddr("127.0.0.1:0"),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	addr := c.MetricsAddr()
	if addr == "" {
		t.Fatal("WithMetricsAddr bound no address")
	}

	if code, body := getHealthz(t, addr); code != http.StatusOK || !body.Serving {
		t.Fatalf("healthy cluster: /healthz = %d serving=%v, want 200/true", code, body.Serving)
	}

	// Both members go dark: the root's reachable set drops below quorum,
	// the fencing lease trips, and the endpoint must stop reporting ready.
	c.Chaos().Crash(1)
	c.Chaos().Crash(2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := getHealthz(t, addr)
		if code == http.StatusServiceUnavailable {
			if body.Serving {
				t.Fatalf("/healthz 503 but serving=true: %+v", body)
			}
			if len(body.Nodes) != 3 || body.Nodes[0].Fenced != 1 {
				t.Fatalf("/healthz 503 without the fenced root visible: %+v", body)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never left 200 after the quorum outage (last %d %+v)", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}

	c.Chaos().Revive(1)
	c.Chaos().Revive(2)
	deadline = time.Now().Add(5 * time.Second)
	for {
		code, body := getHealthz(t, addr)
		if code == http.StatusOK && body.Serving {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/healthz never recovered after revival (last %d %+v)", code, body)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestReadStaleDegradedMember pins the degraded-read API: a member
// stranded mid-election (its root and the rest of the quorum dark)
// keeps serving ReadStale with its local copy and a positive staleness
// bound while ordinary serving is reported down, and a cluster built
// with a staleness bound the copy cannot meet gets ErrTooStale instead
// of silently stale data.
func TestReadStaleDegradedMember(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 3, WithChaos(),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	free := g.Int("free")
	if err := c.MustHandle(0).Write(free, 42); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(1), free, 42)

	// Healthy member: the bound is how long ago the reign last proved
	// itself — positive, but nowhere near the failure deadline.
	if val, stale, err := c.MustHandle(1).ReadStale(free); err != nil || val != 42 || stale < 0 {
		t.Fatalf("healthy ReadStale = (%d, %v, %v), want (42, >=0, nil)", val, stale, err)
	}

	// Root and the other member go dark: node 1 starts an election it can
	// never finish (its own report is 1 of the 2 a quorum needs).
	c.Chaos().Crash(0)
	c.Chaos().Crash(2)
	deadline := time.Now().Add(5 * time.Second)
	for {
		h := c.Health()
		if h[1].Electing == 1 {
			if h[1].Serving() {
				t.Fatalf("electing member reports serving: %+v", h[1])
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("member never noticed the outage: %+v", h[1])
		}
		time.Sleep(2 * time.Millisecond)
	}
	val, stale, err := c.MustHandle(1).ReadStale(free)
	if err != nil {
		t.Fatalf("stranded member refused a degraded read: %v", err)
	}
	if val != 42 {
		t.Fatalf("degraded read = %d, want the local copy 42", val)
	}
	if stale <= 0 {
		t.Fatal("degraded read carried no staleness bound")
	}

	// A cluster whose staleness tolerance is below what any member copy
	// can prove must refuse with ErrTooStale — on a member even while
	// healthy (its proof of currency is always at least one heartbeat
	// old), never on an unfenced root (the authority, staleness zero).
	c2, g2, _, _ := newTestCluster(t, 2, WithMaxStaleness(time.Nanosecond))
	free2 := g2.Int("free")
	if err := c2.MustHandle(0).Write(free2, 1); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c2.MustHandle(1), free2, 1)
	if _, _, err := c2.MustHandle(1).ReadStale(free2); !errors.Is(err, ErrTooStale) {
		t.Fatalf("member read under a 1ns bound = %v, want ErrTooStale", err)
	}
	if _, stale, err := c2.MustHandle(0).ReadStale(free2); err != nil || stale != 0 {
		t.Fatalf("unfenced root ReadStale = (%v, %v), want (0, nil)", stale, err)
	}
}

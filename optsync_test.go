package optsync

import (
	"errors"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// newTestCluster builds a small in-process cluster with a group, a mutex,
// and a guarded counter.
func newTestCluster(t *testing.T, n int, opts ...Option) (*Cluster, *Group, *Mutex, *Var) {
	t.Helper()
	c, err := NewCluster(n, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	g, err := c.NewGroup("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)
	return c, g, m, v
}

// waitRead polls a handle until the variable reaches want.
func waitRead(t *testing.T, h *Handle, v *Var, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		got, err := h.Read(v)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	got, _ := h.Read(v)
	t.Fatalf("node %d: %s = %d, want %d", h.NodeID(), v.Name(), got, want)
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(0); err == nil {
		t.Error("NewCluster(0) succeeded")
	}
	if _, err := NewCluster(2, WithTCP([]string{"127.0.0.1:0"})); err == nil {
		t.Error("mismatched TCP address count succeeded")
	}
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.NewGroup("g", 5); err == nil {
		t.Error("out-of-range group root succeeded")
	}
}

func TestGroupIdempotentDeclarations(t *testing.T) {
	c, g, m, v := newTestCluster(t, 3)
	g2, err := c.NewGroup("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Error("NewGroup with same name returned a different group")
	}
	if _, err := c.NewGroup("test", 1); err == nil {
		t.Error("NewGroup with same name and different root succeeded")
	}
	if g.Mutex("lock") != m {
		t.Error("Mutex with same name returned a different lock")
	}
	if g.Int("counter") != v {
		t.Error("Int with same name returned a different variable")
	}
	if v.Guard() != m {
		t.Errorf("counter guard = %v, want the lock", v.Guard())
	}
}

func TestWriteVisibleEverywhere(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 4)
	free := g.Int("free") // unguarded
	if err := c.MustHandle(2).Write(free, 7); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		waitRead(t, c.MustHandle(i), free, 7)
	}
}

func TestDoCounter(t *testing.T) {
	c, _, m, v := newTestCluster(t, 4)
	const reps = 6
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		h := c.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				err := h.Do(m, func() error {
					cur, err := h.Read(v)
					if err != nil {
						return err
					}
					time.Sleep(500 * time.Microsecond)
					return h.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		waitRead(t, c.MustHandle(i), v, 4*reps)
	}
}

func TestOptimisticDoCounter(t *testing.T) {
	c, _, m, v := newTestCluster(t, 4)
	const reps = 6
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		h := c.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				err := h.OptimisticDo(m, func(tx *Tx) error {
					cur, err := tx.Read(v)
					if err != nil {
						return err
					}
					return tx.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 4; i++ {
		waitRead(t, c.MustHandle(i), v, 4*reps)
	}
}

func TestOptimisticCommitsWithoutContention(t *testing.T) {
	c, _, m, v := newTestCluster(t, 3)
	h := c.MustHandle(2)
	if err := h.OptimisticDo(m, func(tx *Tx) error {
		return tx.Write(v, 42)
	}); err != nil {
		t.Fatal(err)
	}
	s := h.Stats()
	if s.Optimistic.Commits != 1 || s.Optimistic.Rollbacks != 0 {
		t.Errorf("optimistic stats = %+v, want one clean commit", s.Optimistic)
	}
	waitRead(t, c.MustHandle(0), v, 42)
}

func TestWaitGE(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 3)
	sig := g.Int("sig")
	done := make(chan error, 1)
	go func() {
		done <- c.MustHandle(2).WaitGE(sig, 10)
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.MustHandle(1).Write(sig, 10); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGE never returned")
	}
}

func TestCrossGroupTxRejected(t *testing.T) {
	c, _, m, _ := newTestCluster(t, 2)
	other, err := c.NewGroup("other", 1)
	if err != nil {
		t.Fatal(err)
	}
	foreign := other.Int("x")
	err = c.MustHandle(0).OptimisticDo(m, func(tx *Tx) error {
		return tx.Write(foreign, 1)
	})
	if err == nil {
		t.Error("writing a foreign group's variable through a tx succeeded")
	}
}

func TestNestedOptimisticDoFails(t *testing.T) {
	c, _, m, _ := newTestCluster(t, 2)
	h := c.MustHandle(1)
	err := h.OptimisticDo(m, func(tx *Tx) error {
		return h.OptimisticDo(m, func(*Tx) error { return nil })
	})
	if !errors.Is(err, ErrNested) {
		t.Errorf("nested OptimisticDo returned %v, want ErrNested", err)
	}
}

func TestBodyErrorPropagatesAndLockRecovers(t *testing.T) {
	c, _, m, v := newTestCluster(t, 2)
	h := c.MustHandle(1)
	boom := errors.New("boom")
	if err := h.OptimisticDo(m, func(tx *Tx) error { return boom }); !errors.Is(err, boom) {
		t.Errorf("got %v, want boom", err)
	}
	if err := h.Do(m, func() error { return h.Write(v, 1) }); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(0), v, 1)
}

func TestLossyNetworkStillConverges(t *testing.T) {
	c, _, m, v := newTestCluster(t, 3, WithLossyNetwork(0.2, 7))
	const reps = 5
	var wg sync.WaitGroup
	for i := 1; i <= 2; i++ {
		h := c.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < reps; r++ {
				err := h.Do(m, func() error {
					cur, err := h.Read(v)
					if err != nil {
						return err
					}
					return h.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 3; i++ {
		waitRead(t, c.MustHandle(i), v, 2*reps)
	}
}

func TestTCPCluster(t *testing.T) {
	c, _, m, v := newTestCluster(t, 3, WithTCP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}))
	h := c.MustHandle(2)
	if err := h.OptimisticDo(m, func(tx *Tx) error {
		return tx.Write(v, 11)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		waitRead(t, c.MustHandle(i), v, 11)
	}
}

func TestCloseIdempotent(t *testing.T) {
	c, _, _, _ := newTestCluster(t, 2)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any per-node increment counts, the guarded counter ends
// at their sum — linearizable counting under optimistic mutual exclusion.
func TestCounterSumProperty(t *testing.T) {
	prop := func(counts [3]uint8) bool {
		c, err := NewCluster(3)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		g, err := c.NewGroup("p", 0)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Mutex("lk")
		v := g.Int("n", m)
		var wg sync.WaitGroup
		total := 0
		for i := 0; i < 3; i++ {
			reps := int(counts[i]) % 6
			total += reps
			h := c.MustHandle(i)
			wg.Add(1)
			go func() {
				defer wg.Done()
				for r := 0; r < reps; r++ {
					_ = h.OptimisticDo(m, func(tx *Tx) error {
						cur, err := tx.Read(v)
						if err != nil {
							return err
						}
						return tx.Write(v, cur+1)
					})
				}
			}()
		}
		wg.Wait()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if got, _ := c.MustHandle(0).Read(v); got == int64(total) {
				return true
			}
			time.Sleep(time.Millisecond)
		}
		got, _ := c.MustHandle(0).Read(v)
		t.Logf("counter = %d, want %d", got, total)
		return false
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestTreeFanoutGroup(t *testing.T) {
	c, err := NewCluster(9)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("tree", 0, TreeFanout())
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)
	var wg sync.WaitGroup
	for i := 0; i < 9; i++ {
		h := c.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := h.OptimisticDo(m, func(tx *Tx) error {
				cur, err := tx.Read(v)
				if err != nil {
					return err
				}
				return tx.Write(v, cur+1)
			})
			if err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < 9; i++ {
		waitRead(t, c.MustHandle(i), v, 9)
	}
}

func TestCloseDuringBlockedSection(t *testing.T) {
	c, err := NewCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	g, err := c.NewGroup("test", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)
	if err := c.MustHandle(1).Acquire(m); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		// Blocks queued behind node 1, then the cluster shuts down.
		done <- c.MustHandle(2).OptimisticDo(m, func(tx *Tx) error {
			return tx.Write(v, 1)
		})
	}()
	time.Sleep(50 * time.Millisecond)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("blocked section reported success after cluster close")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("blocked section hung across cluster close")
	}
}

func TestNoGoroutineLeakAfterClose(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		c, err := NewCluster(5)
		if err != nil {
			t.Fatal(err)
		}
		g, err := c.NewGroup("leak", 0)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Mutex("lock")
		v := g.Int("n", m)
		h := c.MustHandle(2)
		if err := h.OptimisticDo(m, func(tx *Tx) error { return tx.Write(v, 1) }); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	// Give exiting goroutines a beat, then compare with slack for the
	// runtime's own background workers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after three cluster lifecycles", before, runtime.NumGoroutine())
}

package optsync

import (
	"errors"
	"fmt"
)

// Published is the paper's single-writer pattern (Section 2): "Since
// writes are ordered, the case for one writer is simple; an ordinary
// variable can lock a data structure awaited by reader(s)... Each
// processor can check its local lock to see whether the data is valid.
// Relocking while data is being read can trigger rereading to get
// consistent data values."
//
// A Published block is a set of variables versioned by one ordinary
// shared variable. The (single) writer bumps the version to an odd value,
// updates the data, and bumps it to an even value; group write
// consistency delivers those writes in order everywhere, so readers see
// an odd version exactly while the data is in flux and can retry — a
// distributed seqlock requiring no lock manager and no blocking on the
// writer's side.
type Published struct {
	g       *Group
	version *Var
	vars    []*Var
}

// Published declares a named single-writer publication block over the
// given variables. The variables should be written only through Publish
// and only from one node at a time.
func (g *Group) Published(name string, vars ...*Var) (*Published, error) {
	for _, v := range vars {
		if v.g != g {
			return nil, fmt.Errorf("optsync: variable %q belongs to group %q, not %q: %w", v.name, v.g.name, g.name, ErrUnknownVar)
		}
		if v.guard != nil {
			return nil, fmt.Errorf("optsync: variable %q is mutex-guarded; publication blocks use ordinary variables", v.name)
		}
	}
	return &Published{
		g:       g,
		version: g.Int(name + ".version"),
		vars:    append([]*Var(nil), vars...),
	}, nil
}

// Version returns the block's current version on this node's copy. Even
// means stable, odd means a publication is in flight.
func (h *Handle) Version(p *Published) (int64, error) {
	return h.Read(p.version)
}

// Publish runs write between two version bumps: readers observing the
// same even version before and after their reads are guaranteed a
// consistent snapshot. Only one node may publish to a block (the
// single-writer condition the paper's pattern requires); concurrent
// publishers need a Mutex instead.
func (h *Handle) Publish(p *Published, write func() error) error {
	ver, err := h.Read(p.version)
	if err != nil {
		return err
	}
	if ver%2 != 0 {
		return errors.New("optsync: publication already in flight (is there a second writer?)")
	}
	if err := h.Write(p.version, ver+1); err != nil {
		return err
	}
	writeErr := write()
	if err := h.Write(p.version, ver+2); err != nil {
		return err
	}
	return writeErr
}

// Snapshot returns a consistent view of the block's variables, in
// declaration order, re-reading if a publication raced the read. It
// blocks while a publication is in flight.
func (h *Handle) Snapshot(p *Published) ([]int64, error) {
	for {
		v1, err := h.Read(p.version)
		if err != nil {
			return nil, err
		}
		if v1%2 != 0 {
			// Data is being changed; wait for the closing bump.
			if err := h.WaitGE(p.version, v1+1); err != nil {
				return nil, err
			}
			continue
		}
		vals := make([]int64, len(p.vars))
		for i, v := range p.vars {
			val, err := h.Read(v)
			if err != nil {
				return nil, err
			}
			vals[i] = val
		}
		v2, err := h.Read(p.version)
		if err != nil {
			return nil, err
		}
		if v1 == v2 {
			return vals, nil
		}
		// A publication slipped in between; reread (the paper's
		// "relocking while data is being read can trigger rereading").
	}
}

// SnapshotAfter is Snapshot constrained to versions at or beyond min,
// letting a reader wait for a specific publication to land.
func (h *Handle) SnapshotAfter(p *Published, min int64) ([]int64, error) {
	if err := h.WaitGE(p.version, min); err != nil {
		return nil, err
	}
	return h.Snapshot(p)
}

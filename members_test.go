package optsync

import (
	"sync"
	"testing"
	"time"
)

func TestMembersValidation(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if _, err := c.NewGroup("g1", 0, Members(0, 9)); err == nil {
		t.Error("out-of-range member accepted")
	}
	if _, err := c.NewGroup("g2", 0, Members(0, 1, 1)); err == nil {
		t.Error("duplicate member accepted")
	}
	if _, err := c.NewGroup("g3", 0, Members(1, 2)); err == nil {
		t.Error("group whose root is not a member accepted")
	}
	if _, err := c.NewGroup("g4", 0, Members(0, 1), TreeFanout()); err == nil {
		t.Error("tree fanout on a subset group accepted")
	}
	g, err := c.NewGroup("g5", 1, Members(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	ms := g.Members()
	if len(ms) != 2 || ms[0] != 1 || ms[1] != 3 {
		t.Errorf("Members() = %v, want [1 3]", ms)
	}
}

func TestSubsetGroupIsolation(t *testing.T) {
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("pair", 1, Members(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	v := g.Int("x")
	if err := c.MustHandle(3).Write(v, 42); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(1), v, 42)
	waitRead(t, c.MustHandle(3), v, 42)
	// Non-members never joined: their handles must error, not read zero
	// silently.
	if _, err := c.MustHandle(0).Read(v); err == nil {
		t.Error("non-member read succeeded")
	}
	if err := c.MustHandle(2).Write(v, 1); err == nil {
		t.Error("non-member write succeeded")
	}
	// And the non-member nodes saw no stray traffic errors... they might
	// have recorded "unknown group" protocol errors only if something was
	// missent; there must be none.
	for _, id := range []int{0, 2} {
		if errs := c.nodes[id].Errors(); len(errs) != 0 {
			t.Errorf("non-member node %d observed traffic: %v", id, errs)
		}
	}
}

func TestSubsetGroupMutex(t *testing.T) {
	c, err := NewCluster(5)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("trio", 2, Members(1, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lk")
	v := g.Int("n", m)
	var wg sync.WaitGroup
	for _, id := range []int{1, 2, 4} {
		h := c.MustHandle(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 5; r++ {
				err := h.OptimisticDo(m, func(tx *Tx) error {
					cur, err := tx.Read(v)
					if err != nil {
						return err
					}
					return tx.Write(v, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, id := range []int{1, 2, 4} {
		waitRead(t, c.MustHandle(id), v, 15)
	}
}

func TestOverlappingGroupsIndependentOrdering(t *testing.T) {
	// The paper (Section 1.2): GWC does not order writes BETWEEN
	// overlapping groups — that is the price of avoiding a global root.
	// Node 2 belongs to both groups; each group's own variable still
	// converges group-wide, and cross-group work needs multi-group locks.
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	ga, err := c.NewGroup("left", 0, Members(0, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	gb, err := c.NewGroup("right", 3, Members(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	va := ga.Int("a")
	vb := gb.Int("b")
	h2 := c.MustHandle(2) // in both groups
	for i := 1; i <= 20; i++ {
		if err := h2.Write(va, int64(i)); err != nil {
			t.Fatal(err)
		}
		if err := h2.Write(vb, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for _, probe := range []struct {
		h *Handle
		v *Var
	}{{c.MustHandle(0), va}, {c.MustHandle(1), va}, {c.MustHandle(2), va}, {c.MustHandle(2), vb}, {c.MustHandle(3), vb}} {
		for {
			got, err := probe.h.Read(probe.v)
			if err != nil {
				t.Fatal(err)
			}
			if got == 20 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("node %d never converged on %s", probe.h.NodeID(), probe.v.Name())
			}
			time.Sleep(time.Millisecond)
		}
	}
}

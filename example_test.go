package optsync_test

import (
	"fmt"
	"log"

	"optsync"
)

// The basic shape of a cluster: a group of eagerly shared variables with
// a queue-based lock managed by the group root.
func Example() {
	cluster, err := optsync.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	group, err := cluster.NewGroup("demo", 0)
	if err != nil {
		log.Fatal(err)
	}
	lock := group.Mutex("lock")
	counter := group.Int("counter", lock)

	h := cluster.MustHandle(1)
	if err := h.Do(lock, func() error {
		cur, err := h.Read(counter)
		if err != nil {
			return err
		}
		return h.Write(counter, cur+1)
	}); err != nil {
		log.Fatal(err)
	}

	// Eagersharing: node 2 receives the update without asking.
	h2 := cluster.MustHandle(2)
	if err := h2.WaitGE(counter, 1); err != nil {
		log.Fatal(err)
	}
	v, _ := h2.Read(counter)
	fmt.Println("counter =", v)
	// Output: counter = 1
}

// Optimistic mutual exclusion: the critical section runs while the lock
// request is still travelling to the group root. With no contention it
// commits without ever having waited.
func ExampleHandle_OptimisticDo() {
	cluster, err := optsync.NewCluster(3)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	group, _ := cluster.NewGroup("accounts", 0)
	lock := group.Mutex("lock")
	balance := group.Int("balance", lock)

	h := cluster.MustHandle(2)
	err = h.OptimisticDo(lock, func(tx *optsync.Tx) error {
		cur, err := tx.Read(balance)
		if err != nil {
			return err
		}
		return tx.Write(balance, cur+100)
	})
	if err != nil {
		log.Fatal(err)
	}

	s := h.Stats().Optimistic
	fmt.Printf("committed optimistically: %v\n", s.Commits == 1 && s.Rollbacks == 0)
	// Output: committed optimistically: true
}

// The single-writer publication pattern: one node publishes multi-word
// values; readers snapshot them without locks and never see a torn pair.
func ExampleHandle_Publish() {
	cluster, err := optsync.NewCluster(2)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	group, _ := cluster.NewGroup("feed", 0)
	price := group.Int("price")
	size := group.Int("size")
	ticker, err := group.Published("ticker", price, size)
	if err != nil {
		log.Fatal(err)
	}

	writer := cluster.MustHandle(0)
	if err := writer.Publish(ticker, func() error {
		if err := writer.Write(price, 101); err != nil {
			return err
		}
		return writer.Write(size, 300)
	}); err != nil {
		log.Fatal(err)
	}

	reader := cluster.MustHandle(1)
	vals, err := reader.SnapshotAfter(ticker, 2) // after the first publication
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("price:", vals[0], "size:", vals[1])
	// Output: price: 101 size: 300
}

// Locks from two sharing groups (two different lock managers) held
// together: the paper's multi-group mutual exclusion.
func ExampleHandle_DoAll() {
	cluster, err := optsync.NewCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = cluster.Close() }()

	ga, _ := cluster.NewGroup("spot", 0)
	gb, _ := cluster.NewGroup("margin", 3)
	la := ga.Mutex("lock")
	lb := gb.Mutex("lock")
	a := ga.Int("acct", la)
	b := gb.Int("acct", lb)

	h := cluster.MustHandle(1)
	err = h.DoAll(func() error {
		if err := h.Write(a, 90); err != nil {
			return err
		}
		return h.Write(b, 10)
	}, la, lb)
	if err != nil {
		log.Fatal(err)
	}
	av, _ := h.Read(a)
	bv, _ := h.Read(b)
	fmt.Println("total:", av+bv)
	// Output: total: 100
}

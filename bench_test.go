package optsync

// Benchmarks regenerating the paper's evaluation, one per table/figure,
// plus microbenchmarks and ablations on the live runtime. The figure
// benches report the paper's metric ("power", network speedup) via
// b.ReportMetric, so `go test -bench .` prints the reproduced series
// alongside wall-clock costs.

import (
	"fmt"
	"testing"
	"time"

	"optsync/internal/exp"
	"optsync/internal/model"
	"optsync/internal/sim"
	"optsync/internal/wire"
	"optsync/internal/workload"
)

// --- Figure 1: the three-CPU locking comparison -------------------------

func benchmarkMutex3(b *testing.B, kind workload.Kind) {
	var total sim.Time
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		p := workload.DefaultMutex3Params()
		cfg := model.DefaultConfig(3)
		p.Configure(&cfg)
		if kind == workload.KindEntry {
			cfg.Invalidate = true
		}
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if e, ok := m.(*model.Entry); ok {
			e.SetReaders(0, []int{1, 2})
		}
		r, err := workload.RunMutex3(k, m, p)
		if err != nil {
			b.Fatal(err)
		}
		total = r.Total
	}
	b.ReportMetric(float64(total), "virtual-ns")
}

func BenchmarkFigure1GWC(b *testing.B)     { benchmarkMutex3(b, workload.KindGWC) }
func BenchmarkFigure1Entry(b *testing.B)   { benchmarkMutex3(b, workload.KindEntry) }
func BenchmarkFigure1Release(b *testing.B) { benchmarkMutex3(b, workload.KindRelease) }

// --- Figure 2: task-management speedup ----------------------------------

func benchmarkTaskMgmt(b *testing.B, kind workload.Kind, n int, zeroDelay bool) {
	var power float64
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		p := workload.DefaultTaskMgmtParams(n, kind)
		p.Tasks = 256 // quick sweep; cmd/figure2 runs the full 1024
		cfg := model.DefaultConfig(n)
		if zeroDelay {
			cfg.Net.HopLatency = 0
			cfg.Net.BytesPerNS = 1e12
			cfg.RootProc = 0
		}
		p.Configure(&cfg)
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := workload.RunTaskMgmt(k, m, p)
		if err != nil {
			b.Fatal(err)
		}
		power = r.Power
	}
	b.ReportMetric(power, "power")
}

func BenchmarkFigure2(b *testing.B) {
	for _, n := range []int{3, 9, 33, 129} {
		b.Run(fmt.Sprintf("max/n=%d", n), func(b *testing.B) {
			benchmarkTaskMgmt(b, workload.KindGWC, n, true)
		})
		b.Run(fmt.Sprintf("gwc/n=%d", n), func(b *testing.B) {
			benchmarkTaskMgmt(b, workload.KindGWC, n, false)
		})
		b.Run(fmt.Sprintf("entry/n=%d", n), func(b *testing.B) {
			benchmarkTaskMgmt(b, workload.KindEntry, n, false)
		})
	}
}

// --- Figure 8: pipeline network power ------------------------------------

func benchmarkPipeline(b *testing.B, kind workload.Kind, n int, zeroDelay bool) {
	var power float64
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel()
		p := workload.DefaultPipelineParams(n)
		p.DataSize = 256 // quick sweep; cmd/figure8 runs the full 1024
		cfg := model.DefaultConfig(n)
		if zeroDelay {
			cfg.Net.HopLatency = 0
			cfg.Net.BytesPerNS = 1e12
			cfg.RootProc = 0
		}
		if kind == workload.KindEntry {
			cfg.ViaManager = true
		}
		p.Configure(&cfg)
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			b.Fatal(err)
		}
		r, err := workload.RunPipeline(k, m, p)
		if err != nil {
			b.Fatal(err)
		}
		power = r.Power
	}
	b.ReportMetric(power, "power")
}

func BenchmarkFigure8(b *testing.B) {
	for _, n := range []int{2, 8, 32, 128} {
		b.Run(fmt.Sprintf("max/n=%d", n), func(b *testing.B) {
			benchmarkPipeline(b, workload.KindGWC, n, true)
		})
		b.Run(fmt.Sprintf("optimistic/n=%d", n), func(b *testing.B) {
			benchmarkPipeline(b, workload.KindGWCOptimistic, n, false)
		})
		b.Run(fmt.Sprintf("gwc/n=%d", n), func(b *testing.B) {
			benchmarkPipeline(b, workload.KindGWC, n, false)
		})
		b.Run(fmt.Sprintf("entry/n=%d", n), func(b *testing.B) {
			benchmarkPipeline(b, workload.KindEntry, n, false)
		})
	}
}

// BenchmarkHeadlineRatios reproduces Section 4.1's summary numbers
// (optimistic 1.1x over non-optimistic GWC, 2.1x over entry consistency)
// as reported metrics.
func BenchmarkHeadlineRatios(b *testing.B) {
	var ratios map[string]float64
	for i := 0; i < b.N; i++ {
		fig, err := exp.Figure8(exp.Options{Quick: true, Sizes: []int{2}})
		if err != nil {
			b.Fatal(err)
		}
		ratios, err = exp.HeadlineRatios(fig)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(ratios["optimistic/gwc"], "opt/gwc")
	b.ReportMetric(ratios["optimistic/entry"], "opt/entry")
}

// --- Ablations ------------------------------------------------------------

// BenchmarkAblationMXRatio sweeps the critical-section size: the paper
// chose MX:local = 1:8 so the lock round trip can hide under the section.
// Larger ratios (smaller sections) leave less room to hide the latency,
// shrinking the optimistic advantage.
func BenchmarkAblationMXRatio(b *testing.B) {
	for _, ratio := range []int{2, 8, 32} {
		for _, kind := range []workload.Kind{workload.KindGWCOptimistic, workload.KindGWC} {
			b.Run(fmt.Sprintf("ratio=1:%d/%s", ratio, kind), func(b *testing.B) {
				var power float64
				for i := 0; i < b.N; i++ {
					k := sim.NewKernel()
					p := workload.DefaultPipelineParams(8)
					p.DataSize = 256
					p.MXRatio = ratio
					cfg := model.DefaultConfig(8)
					p.Configure(&cfg)
					m, err := workload.NewMachine(k, kind, cfg)
					if err != nil {
						b.Fatal(err)
					}
					r, err := workload.RunPipeline(k, m, p)
					if err != nil {
						b.Fatal(err)
					}
					power = r.Power
				}
				b.ReportMetric(power, "power")
			})
		}
	}
}

// BenchmarkAblationHistoryThreshold compares the optimistic filter's
// threshold settings under the contended task workload: 0 forces the
// regular path, the paper's 0.30 allows speculation when the lock looks
// quiet.
func BenchmarkAblationHistoryThreshold(b *testing.B) {
	for _, thr := range []float64{0.0001, 0.30, 0.99} {
		b.Run(fmt.Sprintf("threshold=%.4g", thr), func(b *testing.B) {
			var rollbacks, regular int
			for i := 0; i < b.N; i++ {
				k := sim.NewKernel()
				p := workload.DefaultTaskMgmtParams(5, workload.KindGWCOptimistic)
				p.Tasks = 128
				// Force the producer onto the lock so the lock is hot and
				// the filter has something to decide.
				p.LockFreeProducer = false
				cfg := model.DefaultConfig(5)
				cfg.HistoryThreshold = thr
				p.Configure(&cfg)
				m, err := workload.NewMachine(k, workload.KindGWCOptimistic, cfg)
				if err != nil {
					b.Fatal(err)
				}
				r, err := workload.RunTaskMgmt(k, m, p)
				if err != nil {
					b.Fatal(err)
				}
				rollbacks, regular = r.Stats.Rollbacks, r.Stats.RegularPath
			}
			b.ReportMetric(float64(rollbacks), "rollbacks")
			b.ReportMetric(float64(regular), "regular-path")
		})
	}
}

// --- Live-runtime microbenchmarks -----------------------------------------

// liveRig builds a live cluster for microbenches. The anti-entropy
// sweep runs throughout, so the write path is measured with the digest
// fold in it — the alloc gate's zero-allocation claim covers integrity.
func liveRig(b *testing.B, n int) (*Cluster, *Mutex, *Var) {
	b.Helper()
	c, err := NewCluster(n, WithIntegrity(50*time.Millisecond))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	g, err := c.NewGroup("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("v", m)
	return c, m, v
}

func BenchmarkLiveWrite(b *testing.B) {
	c, _, v := liveRig(b, 4)
	h := c.MustHandle(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Write(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLiveRead(b *testing.B) {
	c, _, v := liveRig(b, 4)
	h := c.MustHandle(1)
	if err := h.Write(v, 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Read(v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveLock measures the paper's three-message uncontended
// acquire/release round trip on the live runtime.
func BenchmarkLiveLock(b *testing.B) {
	c, m, _ := liveRig(b, 4)
	h := c.MustHandle(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Acquire(m); err != nil {
			b.Fatal(err)
		}
		if err := h.Release(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLeasedReacquire measures the leased fast path: once the root
// has leased the lock to this member, an uncontended Acquire/Release
// pair is a purely local decision — zero wire messages, zero
// allocations — versus BenchmarkLiveLock's three-message round trip.
func BenchmarkLeasedReacquire(b *testing.B) {
	c, err := NewCluster(4, WithIntegrity(50*time.Millisecond), WithLeases(time.Hour))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = c.Close() })
	g, err := c.NewGroup("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	m := g.Mutex("lock")
	h := c.MustHandle(1)
	// Warm until a re-acquire goes local: the first grant races the
	// unicast lease frame, and a Release that beats it drops the lease.
	warmed := false
	for deadline := time.Now().Add(5 * time.Second); time.Now().Before(deadline); {
		if err := h.Acquire(m); err != nil {
			b.Fatal(err)
		}
		warmed = h.Stats().GWC.LeaseLocal > 0
		if err := h.Release(m); err != nil {
			b.Fatal(err)
		}
		if warmed {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !warmed {
		b.Fatalf("lease never warmed up: %+v", h.Stats().GWC)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Acquire(m); err != nil {
			b.Fatal(err)
		}
		if err := h.Release(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSection compares a full read-modify-write critical section
// on the regular versus the optimistic path with no contention — the
// live-runtime analogue of the Figure 8 headline.
func BenchmarkLiveSection(b *testing.B) {
	b.Run("regular", func(b *testing.B) {
		c, m, v := liveRig(b, 4)
		h := c.MustHandle(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := h.Do(m, func() error {
				cur, err := h.Read(v)
				if err != nil {
					return err
				}
				return h.Write(v, cur+1)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("optimistic", func(b *testing.B) {
		c, m, v := liveRig(b, 4)
		h := c.MustHandle(1)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			err := h.OptimisticDo(m, func(tx *Tx) error {
				cur, err := tx.Read(v)
				if err != nil {
					return err
				}
				return tx.Write(v, cur+1)
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Substrate microbenchmarks --------------------------------------------

func BenchmarkWireEncodeDecode(b *testing.B) {
	m := wire.Message{
		Type: wire.TSeqUpdate, Group: 1, Src: 0, Origin: 5,
		Seq: 123456, Var: 7, Val: -42, Guarded: true,
	}
	buf := make([]byte, 0, wire.EncodedSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.Encode(buf[:0], m)
		if _, err := wire.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimKernelEvents(b *testing.B) {
	k := sim.NewKernel()
	ch := sim.NewChan[int](k)
	k.Spawn("producer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
			ch.Post(i)
		}
	})
	k.Spawn("consumer", func(p *sim.Proc) {
		for i := 0; i < b.N; i++ {
			ch.Recv(p)
		}
	})
	b.ResetTimer()
	k.Run()
}

// BenchmarkAblationTreeFanout compares direct root fanout against
// spanning-tree distribution on the live runtime: time for a burst of
// writes to become visible at the node farthest from the root.
func BenchmarkAblationTreeFanout(b *testing.B) {
	for _, mode := range []string{"direct", "tree"} {
		b.Run(mode, func(b *testing.B) {
			c, err := NewCluster(16)
			if err != nil {
				b.Fatal(err)
			}
			defer func() { _ = c.Close() }()
			var gopts []GroupOption
			if mode == "tree" {
				gopts = append(gopts, TreeFanout())
			}
			g, err := c.NewGroup("bench", 0, gopts...)
			if err != nil {
				b.Fatal(err)
			}
			v := g.Int("v")
			writer, far := c.MustHandle(0), c.MustHandle(15)
			b.ResetTimer()
			for i := 1; i <= b.N; i++ {
				if err := writer.Write(v, int64(i)); err != nil {
					b.Fatal(err)
				}
				if err := far.WaitGE(v, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchedWrites compares the batched and unbatched update
// planes on bursts of writes: a writer stores a round number into a
// burst of variables and a far reader waits for the last one, so each
// iteration measures a full burst becoming visible across the group.
// With batching, the burst exactly fills one flush window: one frame to
// the root, one sequenced frame per member, versus one message each way
// per write on the unbatched plane.
func BenchmarkBatchedWrites(b *testing.B) {
	const nodes, burst = 8, 16
	run := func(b *testing.B, opts ...Option) {
		c, err := NewCluster(nodes, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer func() { _ = c.Close() }()
		g, err := c.NewGroup("bench", 0)
		if err != nil {
			b.Fatal(err)
		}
		vars := make([]*Var, burst)
		for i := range vars {
			vars[i] = g.Int(fmt.Sprintf("v%d", i))
		}
		writer, reader := c.MustHandle(1), c.MustHandle(nodes-1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 1; i <= b.N; i++ {
			for _, v := range vars {
				if err := writer.Write(v, int64(i)); err != nil {
					b.Fatal(err)
				}
			}
			// The queue keeps slot order, so the last variable's arrival
			// implies the whole burst has been applied.
			if err := reader.WaitGE(vars[burst-1], int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "writes/s")
	}
	b.Run("unbatched", func(b *testing.B) { run(b) })
	b.Run("batched", func(b *testing.B) {
		run(b, WithBatching(2*time.Millisecond, burst))
	})
}

// BenchmarkTCPBatchedWrites runs the batched burst workload over a real
// loopback TCP mesh and reports the transport's frames-per-syscall ratio
// alongside throughput: the writev-vectored outbox should pack each
// flushed burst into far fewer syscalls than frames.
func BenchmarkTCPBatchedWrites(b *testing.B) {
	const nodes, burst = 4, 16
	addrs := make([]string, nodes)
	for i := range addrs {
		addrs[i] = "127.0.0.1:0"
	}
	c, err := NewCluster(nodes, WithTCP(addrs), WithBatching(2*time.Millisecond, burst))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	vars := make([]*Var, burst)
	for i := range vars {
		vars[i] = g.Int(fmt.Sprintf("v%d", i))
	}
	writer, reader := c.MustHandle(1), c.MustHandle(nodes-1)
	b.ReportAllocs()
	b.ResetTimer()
	// Bursts are pipelined (synchronized every 32 rounds rather than
	// every round) so the outbox genuinely queues and the writev path
	// gets to vector multiple frames per syscall, as a loaded
	// deployment would.
	for i := 1; i <= b.N; i++ {
		for _, v := range vars {
			if err := writer.Write(v, int64(i)); err != nil {
				b.Fatal(err)
			}
		}
		if i%32 == 0 || i == b.N {
			if err := reader.WaitGE(vars[burst-1], int64(i)); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "writes/s")
	if ts := c.Metrics().Transport; ts.Writevs > 0 {
		b.ReportMetric(float64(ts.FramesSent)/float64(ts.Writevs), "frames/syscall")
	}
}

// BenchmarkLiveLossRecovery measures write-to-visible latency with 10%
// loss on the sequenced multicast, exercising the NACK machinery on every
// iteration.
func BenchmarkLiveLossRecovery(b *testing.B) {
	c, err := NewCluster(4, WithLossyNetwork(0.10, 31337))
	if err != nil {
		b.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("bench", 0)
	if err != nil {
		b.Fatal(err)
	}
	v := g.Int("v")
	writer, reader := c.MustHandle(1), c.MustHandle(3)
	b.ResetTimer()
	for i := 1; i <= b.N; i++ {
		if err := writer.Write(v, int64(i)); err != nil {
			b.Fatal(err)
		}
		if err := reader.WaitGE(v, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

package optsync

import (
	"sync"
	"testing"
	"time"
)

// newTwoGroupCluster builds two groups with different roots, one guarded
// account variable in each.
func newTwoGroupCluster(t *testing.T, n int) (*Cluster, *Mutex, *Var, *Mutex, *Var) {
	t.Helper()
	c, err := NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	ga, err := c.NewGroup("a", 0)
	if err != nil {
		t.Fatal(err)
	}
	gb, err := c.NewGroup("b", n-1) // different root: different lock manager
	if err != nil {
		t.Fatal(err)
	}
	ma := ga.Mutex("lock")
	va := ga.Int("acct", ma)
	mb := gb.Mutex("lock")
	vb := gb.Int("acct", mb)
	return c, ma, va, mb, vb
}

func TestAcquireAllBothHeld(t *testing.T) {
	c, ma, _, mb, _ := newTwoGroupCluster(t, 3)
	h := c.MustHandle(1)
	if err := h.AcquireAll(ma, mb); err != nil {
		t.Fatal(err)
	}
	// Another node must not get either lock while we hold both.
	other := c.MustHandle(2)
	got := make(chan struct{})
	go func() {
		_ = other.Acquire(ma)
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("second node acquired a lock held by a multi-group section")
	case <-time.After(100 * time.Millisecond):
	}
	if err := h.ReleaseAll(ma, mb); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
		_ = other.Release(ma)
	case <-time.After(5 * time.Second):
		t.Fatal("lock not released to the waiter")
	}
}

func TestAcquireAllRejectsDuplicates(t *testing.T) {
	c, ma, _, _, _ := newTwoGroupCluster(t, 2)
	if err := c.MustHandle(0).AcquireAll(ma, ma); err == nil {
		t.Error("duplicate mutex accepted")
	}
}

// TestDoAllCrossGroupInvariant moves value between accounts in two
// different sharing groups under both locks; no interleaving may create
// or destroy value, and opposite argument orders must not deadlock.
func TestDoAllCrossGroupInvariant(t *testing.T) {
	c, ma, va, mb, vb := newTwoGroupCluster(t, 4)
	const initial = 1000
	h0 := c.MustHandle(0)
	if err := h0.DoAll(func() error {
		if err := h0.Write(va, initial); err != nil {
			return err
		}
		return h0.Write(vb, initial)
	}, ma, mb); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		id := id
		h := c.MustHandle(id)
		// Half the nodes pass (ma, mb), half (mb, ma): canonical ordering
		// must prevent deadlock.
		locks := []*Mutex{ma, mb}
		if id%2 == 1 {
			locks = []*Mutex{mb, ma}
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				err := h.DoAll(func() error {
					a, err := h.Read(va)
					if err != nil {
						return err
					}
					b, err := h.Read(vb)
					if err != nil {
						return err
					}
					if err := h.Write(va, a-1); err != nil {
						return err
					}
					return h.Write(vb, b+1)
				}, locks...)
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// 40 transfers of 1: a=960, b=1040 on every node. The two groups
	// sequence independently, so poll until both settle.
	for i := 0; i < 4; i++ {
		h := c.MustHandle(i)
		deadline := time.Now().Add(5 * time.Second)
		for {
			a, _ := h.Read(va)
			b, _ := h.Read(vb)
			if a == initial-40 && b == initial+40 {
				break
			}
			if time.Now().After(deadline) {
				t.Errorf("node %d: a=%d b=%d, want %d and %d", i, a, b, initial-40, initial+40)
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestDoAllSingleLockDegenerate(t *testing.T) {
	c, ma, va, _, _ := newTwoGroupCluster(t, 2)
	h := c.MustHandle(1)
	if err := h.DoAll(func() error {
		return h.Write(va, 5)
	}, ma); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(0), va, 5)
}

func TestDoAllNoLocksJustRuns(t *testing.T) {
	c, _, _, _, _ := newTwoGroupCluster(t, 2)
	ran := false
	if err := c.MustHandle(0).DoAll(func() error {
		ran = true
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("body never ran")
	}
}

package optsync

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"

	"optsync/internal/gwc"
	"optsync/internal/obs"
)

// WithTracing enables every node's structured event tracer: protocol
// transitions (speculation start/commit/abort, suppressed writes,
// fence/unfence, reign changes, ...) are captured in a per-node bounded
// drop-oldest ring readable via TraceEvents. capacity is the per-node
// ring size (0 means the default, 4096 events); the exact per-type
// counters in Metrics() are unbounded either way. The cost is a few
// atomic stores per protocol transition — never a lock, never an
// allocation on the hot paths.
func WithTracing(capacity int) Option {
	return optionFunc(func(o *options) {
		o.traced = true
		o.traceCap = capacity
	})
}

// WithMetricsAddr serves the cluster's metrics over HTTP on addr
// (":0" picks a free port; see Cluster.MetricsAddr for the bound
// address): GET /metrics returns a plain-text rendering of the merged
// latency histograms and event counts, and /debug/vars exposes them as
// expvar JSON. The option implies WithTracing's event capture, so the
// endpoint's event counters are live.
func WithMetricsAddr(addr string) Option {
	return optionFunc(func(o *options) { o.metricsAddr = addr })
}

// Metrics returns the cluster-wide observability snapshot: every node's
// latency histograms (lock acquire, speculative section, rollback cost,
// batch flush, quorum wait, failover) merged into one distribution per
// metric, plus the per-event-type counts and — when the cluster runs a
// transport that counts (TCP, with or without fault injection) — the
// transport counters (frames, writev batches, decode errors, link
// resets, outbox drops). Histograms record always; event counts are
// zero unless tracing is on (WithTracing or WithMetricsAddr).
func (c *Cluster) Metrics() obs.MetricsSnapshot {
	var s obs.MetricsSnapshot
	for _, n := range c.nodes {
		s.Merge(n.Metrics().Snapshot())
	}
	if ts, ok := c.net.(interface{ TransportStats() obs.TransportStats }); ok {
		s.Transport = ts.TransportStats()
	}
	return s
}

// NodeMetrics returns node i's own metrics — per-node histograms and
// the node's tracer, for callers that want to enable or read tracing on
// a single node rather than cluster-wide.
func (c *Cluster) NodeMetrics(i int) (*obs.Metrics, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("optsync: node %d out of range [0,%d): %w", i, len(c.nodes), ErrNotMember)
	}
	return c.nodes[i].Metrics(), nil
}

// TraceEvents returns the buffered trace events of every node, merged
// and ordered by timestamp — the cluster's recent protocol history, for
// test-failure dumps and cmd/optsim. Empty unless tracing is enabled.
func (c *Cluster) TraceEvents() []obs.Event {
	var all []obs.Event
	for _, n := range c.nodes {
		all = append(all, n.Metrics().Trace.Snapshot()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// MetricsAddr reports the address the metrics HTTP server is bound to,
// or "" if the cluster was built without WithMetricsAddr.
func (c *Cluster) MetricsAddr() string {
	if c.metricsLn == nil {
		return ""
	}
	return c.metricsLn.Addr().String()
}

// metricsSeq disambiguates expvar names when one process hosts several
// clusters (expvar registrations are global and permanent).
var metricsSeq atomic.Int64

// startMetricsServer binds the metrics endpoint and publishes the
// cluster under expvar. Called from NewCluster before any workload
// runs, so a bind failure aborts construction.
func (c *Cluster) startMetricsServer(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	expvar.Publish(fmt.Sprintf("optsync.cluster%d", metricsSeq.Add(1)),
		expvar.Func(func() any { return c.Metrics() }))
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		writeMetrics(w, c.Metrics(), len(c.nodes))
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		// Readiness: non-200 while any node cannot serve writes — a
		// fenced root, or a member detached from its reign (electing,
		// rejoining, resyncing) — so orchestrators stop routing here
		// instead of piling requests onto a node that must drop them.
		health := c.Health()
		serving := true
		for _, h := range health {
			if !h.Serving() {
				serving = false
				break
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if !serving {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		if err := json.NewEncoder(w).Encode(struct {
			Serving bool         `json:"serving"`
			Nodes   []gwc.Health `json:"nodes"`
		}{serving, health}); err != nil {
			// Connection-level failure; nothing useful to do.
			_ = err
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	c.metricsLn = ln
	c.metricsSrv = &http.Server{Handler: mux}
	go func() { _ = c.metricsSrv.Serve(ln) }()
	return nil
}

// WriteMetrics renders the cluster's merged metrics to w in the same
// plain-text format the /metrics endpoint serves — for CLI tools and
// test-failure dumps that want the tables without an HTTP round trip.
func (c *Cluster) WriteMetrics(w io.Writer) {
	writeMetrics(w, c.Metrics(), len(c.nodes))
}

// writeMetrics renders a merged snapshot as the plain-text format the
// /metrics endpoint and cmd/optsim share: one summary line per
// histogram, a bucket bar chart for the populated ones, and the
// non-zero event counts.
func writeMetrics(w io.Writer, s obs.MetricsSnapshot, nodes int) {
	fmt.Fprintf(w, "# optsync metrics, merged over %d node(s)\n", nodes)
	for id := obs.HistID(0); id < obs.NumHists; id++ {
		h := s.Hists[id]
		fmt.Fprintf(w, "%-14s %s\n", id, h)
		if h.Count > 0 {
			for _, line := range strings.Split(strings.TrimRight(h.Bars(), "\n"), "\n") {
				fmt.Fprintf(w, "  %s\n", line)
			}
		}
	}
	fmt.Fprintf(w, "gauges:\n")
	for id := obs.GaugeID(0); id < obs.NumGauges; id++ {
		g := s.Gauges[id]
		fmt.Fprintf(w, "  %-16s %d (max %d)\n", id, g.Value, g.Max)
	}
	fmt.Fprintf(w, "events:\n")
	for t := obs.EventType(0); t < obs.NumEventTypes; t++ {
		if n := s.Events[t]; n > 0 {
			fmt.Fprintf(w, "  %-16s %d\n", t, n)
		}
	}
	if t := s.Transport; t != (obs.TransportStats{}) {
		fmt.Fprintf(w, "transport:\n")
		fmt.Fprintf(w, "  frames_sent      %d\n", t.FramesSent)
		fmt.Fprintf(w, "  bytes_sent       %d\n", t.BytesSent)
		fmt.Fprintf(w, "  writevs          %d\n", t.Writevs)
		if t.Writevs > 0 {
			fmt.Fprintf(w, "  frames_per_writev %.2f\n", float64(t.FramesSent)/float64(t.Writevs))
		}
		fmt.Fprintf(w, "  frames_recv      %d\n", t.FramesRecv)
		fmt.Fprintf(w, "  decode_errors    %d\n", t.DecodeErrors)
		fmt.Fprintf(w, "  conn_resets      %d\n", t.ConnResets)
		fmt.Fprintf(w, "  send_drops       %d\n", t.SendDrops)
		fmt.Fprintf(w, "  dials            %d\n", t.Dials)
		fmt.Fprintf(w, "  links_adopted    %d\n", t.LinksAdopted)
	}
}

package optsync

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestWatchReceivesUpdates(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 3)
	v := g.Int("watched")
	values, cancel, err := c.MustHandle(2).Watch(v)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	if err := c.MustHandle(1).Write(v, 5); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-values:
		if got != 5 {
			t.Errorf("watched value = %d, want 5", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never delivered")
	}
}

func TestWatchCoalescesToLatest(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 2)
	v := g.Int("burst")
	values, cancel, err := c.MustHandle(1).Watch(v)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	for i := 1; i <= 50; i++ {
		if err := c.MustHandle(0).Write(v, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Drain until the final value appears; coalescing may skip
	// intermediates but must never go backwards.
	var last int64
	deadline := time.After(5 * time.Second)
	for last != 50 {
		select {
		case got := <-values:
			if got < last {
				t.Fatalf("watch went backwards: %d after %d", got, last)
			}
			last = got
		case <-deadline:
			t.Fatalf("final value never observed; last = %d", last)
		}
	}
}

func TestWatchCancelClosesChannel(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 2)
	v := g.Int("w")
	values, cancel, err := c.MustHandle(1).Watch(v)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	cancel() // idempotent
	select {
	case _, ok := <-values:
		if ok {
			t.Error("value delivered after cancel")
		}
	case <-time.After(time.Second):
		t.Error("channel not closed after cancel")
	}
	// Writes after cancel must not panic (hook unregistered).
	if err := c.MustHandle(0).Write(v, 9); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
}

func TestAcquireCtxCancelled(t *testing.T) {
	c, _, m, _ := newTestCluster(t, 3)
	holder := c.MustHandle(1)
	if err := holder.Acquire(m); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := c.MustHandle(2).AcquireCtx(ctx, m)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireCtx = %v, want deadline exceeded", err)
	}
	// The abandoned request must not wedge the lock: after the holder
	// releases, a fresh acquire succeeds even though node 2's stale
	// request is ahead in the queue (it is absorbed and re-released).
	if err := holder.Release(m); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- c.MustHandle(0).Acquire(m) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
		_ = c.MustHandle(0).Release(m)
	case <-time.After(10 * time.Second):
		t.Fatal("lock wedged after cancelled acquisition")
	}
}

func TestAcquireCtxImmediateWhenFree(t *testing.T) {
	c, _, m, _ := newTestCluster(t, 2)
	ctx := context.Background()
	if err := c.MustHandle(1).AcquireCtx(ctx, m); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(1).Release(m); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireCtxPreCancelled(t *testing.T) {
	c, _, m, _ := newTestCluster(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.MustHandle(1).AcquireCtx(ctx, m); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled AcquireCtx = %v", err)
	}
}

func TestWaitGECtx(t *testing.T) {
	c, g, _, _ := newTestCluster(t, 2)
	v := g.Int("wv")
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := c.MustHandle(1).WaitGECtx(ctx, v, 100); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("WaitGECtx on unsatisfied condition = %v, want deadline", err)
	}
	// Satisfied case.
	if err := c.MustHandle(0).Write(v, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.MustHandle(1).WaitGECtx(context.Background(), v, 100); err != nil {
		t.Fatal(err)
	}
}

func TestDoCtx(t *testing.T) {
	c, _, m, v := newTestCluster(t, 2)
	h := c.MustHandle(1)
	if err := h.DoCtx(context.Background(), m, func() error {
		return h.Write(v, 3)
	}); err != nil {
		t.Fatal(err)
	}
	waitRead(t, c.MustHandle(0), v, 3)

	// Cancellation during a blocked acquisition.
	holder := c.MustHandle(0)
	if err := holder.Acquire(m); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	ran := false
	err := h.DoCtx(ctx, m, func() error { ran = true; return nil })
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("DoCtx = %v, want deadline exceeded", err)
	}
	if ran {
		t.Error("body ran despite cancelled acquisition")
	}
	_ = holder.Release(m)
}

func TestWatchGuardedVarSkipsOwnEchoes(t *testing.T) {
	// Hardware blocking drops the origin's own guarded echoes, so a watch
	// on the WRITING node only fires for other nodes' committed writes; a
	// watch on any other node sees everything.
	c, _, m, v := newTestCluster(t, 3)
	ownValues, cancelOwn, err := c.MustHandle(1).Watch(v)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelOwn()
	otherValues, cancelOther, err := c.MustHandle(2).Watch(v)
	if err != nil {
		t.Fatal(err)
	}
	defer cancelOther()

	h := c.MustHandle(1)
	if err := h.Do(m, func() error { return h.Write(v, 5) }); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-otherValues:
		if got != 5 {
			t.Errorf("observer watch saw %d, want 5", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("observer watch never fired")
	}
	select {
	case got := <-ownValues:
		t.Errorf("writer's own watch fired with %d; guarded echoes are hardware-blocked", got)
	case <-time.After(100 * time.Millisecond):
	}
}

#!/bin/sh
# API surface gate: fail CI when the exported surface of the root
# optsync package loses or changes a declaration relative to the
# committed baseline.
#
# ci/apisurface (stdlib-only go/ast, no module downloads — works in a
# network-sandboxed CI step) prints one canonical sorted line per
# exported declaration. Any baseline line missing from the current
# surface is a removal or an incompatible signature change and fails
# the gate. Pure additions pass but are reported so the baseline gets
# refreshed.
#
# To change the public API intentionally, re-baseline in the same
# commit and say why in the commit message:
#
#   go run ./ci/apisurface . > ci/api_baseline.txt
set -eu
cd "$(dirname "$0")/.."

baseline=ci/api_baseline.txt
if [ ! -f "$baseline" ]; then
    echo "apidiff gate: missing $baseline (generate with: go run ./ci/apisurface . > $baseline)" >&2
    exit 1
fi

current=$(mktemp)
trap 'rm -f "$current"' EXIT
go run ./ci/apisurface . > "$current"

# Baseline lines absent from the current surface = breaking changes.
removed=$(comm -23 "$baseline" "$current")
# Current lines absent from the baseline = additions (non-breaking).
added=$(comm -13 "$baseline" "$current")

if [ -n "$removed" ]; then
    echo "apidiff gate: FAIL — exported declarations removed or changed vs $baseline:" >&2
    echo "$removed" | sed 's/^/  - /' >&2
    if [ -n "$added" ]; then
        echo "possibly replaced by:" >&2
        echo "$added" | sed 's/^/  + /' >&2
    fi
    echo "If intentional, re-baseline: go run ./ci/apisurface . > $baseline" >&2
    exit 1
fi

if [ -n "$added" ]; then
    echo "apidiff gate: OK — new exported declarations (re-baseline to pin them):"
    echo "$added" | sed 's/^/  + /'
else
    echo "apidiff gate: OK — surface matches baseline ($(wc -l < "$baseline" | tr -d ' ') declarations)"
fi

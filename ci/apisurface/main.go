// Command apisurface prints the exported API surface of the repository's
// root package (package optsync) as one sorted, canonical line per
// declaration — functions, methods, types, exported struct fields,
// interface methods, consts, and vars.
//
// It is the network-free engine of ci/apidiff_gate.sh: the gate compares
// this output against the committed baseline in ci/api_baseline.txt and
// fails CI when a baseline line disappears (a breaking change to the
// public surface). Pure go/ast over the checked-out tree — no module
// downloads, no type checking, so it runs in a sandboxed CI step.
package main

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"regexp"
	"sort"
	"strings"
)

func main() {
	dir := "."
	if len(os.Args) > 1 {
		dir = os.Args[1]
	}
	lines, err := surface(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apisurface:", err)
		os.Exit(1)
	}
	for _, l := range lines {
		fmt.Println(l)
	}
}

var spaces = regexp.MustCompile(`\s+`)

// render pretty-prints an AST node on one whitespace-normalized line.
func render(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, fset, node)
	return spaces.ReplaceAllString(buf.String(), " ")
}

// surface parses the package in dir (tests excluded) and returns its
// exported declarations as sorted canonical lines.
func surface(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() {
						continue
					}
					if d.Recv != nil {
						recv := render(fset, d.Recv.List[0].Type)
						// Methods on unexported types are not public surface.
						if !ast.IsExported(strings.TrimLeft(recv, "*")) {
							continue
						}
						add("method (%s) %s%s", recv, d.Name.Name, signature(fset, d.Type))
						continue
					}
					add("func %s%s", d.Name.Name, signature(fset, d.Type))
				case *ast.GenDecl:
					genDecl(fset, d, add)
				}
			}
		}
	}
	sort.Strings(lines)
	// The parser can hand us duplicates only if a file is listed twice;
	// dedupe anyway so the output is a set.
	out := lines[:0]
	for i, l := range lines {
		if i == 0 || l != lines[i-1] {
			out = append(out, l)
		}
	}
	return out, nil
}

// signature renders a FuncType without the leading "func" keyword.
func signature(fset *token.FileSet, ft *ast.FuncType) string {
	return strings.TrimPrefix(render(fset, ft), "func")
}

func genDecl(fset *token.FileSet, d *ast.GenDecl, add func(string, ...any)) {
	switch d.Tok {
	case token.CONST, token.VAR:
		kind := "const"
		if d.Tok == token.VAR {
			kind = "var"
		}
		for _, spec := range d.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			typ := ""
			if vs.Type != nil {
				typ = " " + render(fset, vs.Type)
			}
			for _, name := range vs.Names {
				if name.IsExported() {
					add("%s %s%s", kind, name.Name, typ)
				}
			}
		}
	case token.TYPE:
		for _, spec := range d.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !ts.Name.IsExported() {
				continue
			}
			typeSpec(fset, ts, add)
		}
	}
}

func typeSpec(fset *token.FileSet, ts *ast.TypeSpec, add func(string, ...any)) {
	name := ts.Name.Name
	switch t := ts.Type.(type) {
	case *ast.StructType:
		add("type %s struct", name)
		for _, f := range t.Fields.List {
			ftyp := render(fset, f.Type)
			if len(f.Names) == 0 {
				// Embedded field: exported if its (possibly pointered,
				// possibly qualified) terminal name is.
				term := ftyp[strings.LastIndexByte(ftyp, '.')+1:]
				if ast.IsExported(strings.TrimLeft(term, "*")) {
					add("field %s.%s (embedded)", name, ftyp)
				}
				continue
			}
			for _, fn := range f.Names {
				if fn.IsExported() {
					add("field %s.%s %s", name, fn.Name, ftyp)
				}
			}
		}
	case *ast.InterfaceType:
		add("type %s interface", name)
		for _, m := range t.Methods.List {
			if len(m.Names) == 0 {
				add("ifacemethod %s.(embedded %s)", name, render(fset, m.Type))
				continue
			}
			for _, mn := range m.Names {
				if mn.IsExported() {
					add("ifacemethod %s.%s%s", name, mn.Name, signature(fset, m.Type.(*ast.FuncType)))
				}
			}
		}
	default:
		eq := ""
		if ts.Assign.IsValid() {
			eq = "= "
		}
		add("type %s %s%s", name, eq, render(fset, ts.Type))
	}
}

#!/bin/sh
# Performance snapshot for the PR record.
#
# Runs the write-plane benchmarks (BenchmarkLiveWrite, plus the
# unbatched/batched halves of BenchmarkBatchedWrites), the lock-plane
# pair (BenchmarkLiveLock's classic root round trip next to
# BenchmarkLeasedReacquire's local leased re-entry) and a contended
# live workload whose lock-acquire latency distribution comes from the
# internal/obs histograms (via cmd/optsim's /metrics-format dump), and
# assembles the figures into one JSON document on stdout.
#
# Usage:
#   ci/bench_snapshot.sh             # print the snapshot
#   ci/bench_snapshot.sh BENCH_X.json  # also write it to a file
#
# The committed BENCH_PR<N>.json files are point-in-time records from
# the machine that produced them — compare shapes and ratios across
# PRs, not absolute nanoseconds across machines.
set -eu

cd "$(dirname "$0")/.."
bench=$(mktemp)
live=$(mktemp)
trap 'rm -f "$bench" "$live"' EXIT

go test . -run '^$' -bench 'BenchmarkLiveWrite$|BenchmarkBatchedWrites|BenchmarkTCPBatchedWrites$|BenchmarkLiveLock$|BenchmarkLeasedReacquire$' \
	-benchmem -benchtime 2000x >"$bench"
go run ./cmd/optsim -workload live -n 4 >"$live"

# Pull "<ns> ns/op  <B> B/op  <allocs> allocs/op" for one benchmark line.
benchfields() {
	awk -v b="$1" '$1 ~ "^"b"(-[0-9]+)?$" {
		for (i = 2; i < NF; i++) {
			if ($(i+1) == "ns/op")     ns = $i
			if ($(i+1) == "B/op")      bytes = $i
			if ($(i+1) == "allocs/op") allocs = $i
		}
		printf "{\"ns_op\": %s, \"b_op\": %s, \"allocs_op\": %s}", ns, bytes, allocs
		exit
	}' "$bench"
}

# Pull one custom -ReportMetric value (e.g. "writes/s") for a benchmark.
benchmetric() {
	awk -v b="$1" -v u="$2" '$1 ~ "^"b"(-[0-9]+)?$" {
		for (i = 2; i < NF; i++) if ($(i+1) == u) { printf "%s", $i; exit }
	}' "$bench"
}

# Pull a quantile ("p50" / "p99") off the lock_acquire histogram line,
# normalized to nanoseconds via the Go duration suffix.
acquire_q() {
	awk -v q="$1" '$1 == "lock_acquire" {
		for (i = 2; i <= NF; i++) if (index($i, q"=") == 1) {
			v = substr($i, length(q) + 2)
			ns = 0
			if (sub(/ns$/, "", v))      ns = v
			else if (sub(/µs$/, "", v)) ns = v * 1000
			else if (sub(/us$/, "", v)) ns = v * 1000
			else if (sub(/ms$/, "", v)) ns = v * 1000000
			else if (sub(/s$/, "", v))  ns = v * 1000000000
			printf "%d", ns
			exit
		}
	}' "$live"
}

out=$(cat <<EOF
{
  "date": "$(date -u +%Y-%m-%dT%H:%M:%SZ)",
  "go": "$(go env GOVERSION)",
  "benchtime": "2000x",
  "live_write": $(benchfields BenchmarkLiveWrite),
  "live_lock": $(benchfields BenchmarkLiveLock),
  "leased_reacquire": $(benchfields BenchmarkLeasedReacquire),
  "batched_writes": {
    "unbatched": $(benchfields 'BenchmarkBatchedWrites/unbatched'),
    "unbatched_writes_s": $(benchmetric 'BenchmarkBatchedWrites/unbatched' writes/s),
    "batched": $(benchfields 'BenchmarkBatchedWrites/batched'),
    "batched_writes_s": $(benchmetric 'BenchmarkBatchedWrites/batched' writes/s)
  },
  "tcp_batched_writes": {
    "pipelined": $(benchfields BenchmarkTCPBatchedWrites),
    "writes_s": $(benchmetric BenchmarkTCPBatchedWrites writes/s),
    "frames_per_syscall": $(benchmetric BenchmarkTCPBatchedWrites frames/syscall)
  },
  "lock_acquire": {
    "source": "internal/obs HistLockAcquire, cmd/optsim -workload live -n 4",
    "p50_ns": $(acquire_q p50),
    "p99_ns": $(acquire_q p99)
  }
}
EOF
)
echo "$out"
if [ $# -ge 1 ]; then
	echo "$out" >"$1"
fi

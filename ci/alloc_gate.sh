#!/bin/sh
# Fast-path allocation regression gate.
#
# Runs the fast-path microbenchmarks with -benchmem and compares each
# one's allocs/op against the committed baseline in
# ci/alloc_baseline.txt. The gate fails if any benchmark exceeds its
# baseline by more than 5% — and since the committed baselines are zero,
# in practice any allocation on the write or read fast path fails CI.
# TestWriteFastPathAllocs enforces the same bound in-process on every
# plain `go test` run; this script is the belt to that suspender, pinned
# to the numbers a reviewer signed off on.
#
# To re-baseline after an intentional change, edit ci/alloc_baseline.txt
# in the same commit and say why in the commit message.
set -eu

cd "$(dirname "$0")/.."
baseline=ci/alloc_baseline.txt
out=$(mktemp)
trap 'rm -f "$out"' EXIT

go test . -run '^$' -bench 'BenchmarkLiveWrite$|BenchmarkLiveRead$' \
	-benchmem -benchtime 2000x | tee "$out"
go test ./internal/wire -run '^$' -bench 'BenchmarkWireEncodeBatch$|BenchmarkWireDecodeBatch$' \
	-benchmem -benchtime 2000x | tee -a "$out"

fail=0
while read -r name base; do
	case $name in ''|\#*) continue ;; esac
	cur=$(awk -v b="$name" '$1 ~ "^"b"(-[0-9]+)?$" { print $(NF-1) }' "$out")
	if [ -z "$cur" ]; then
		echo "alloc gate: benchmark $name produced no allocs/op figure" >&2
		fail=1
		continue
	fi
	# Integer allocs/op: anything above baseline*1.05 (rounded down, so a
	# zero baseline tolerates exactly zero) is a regression.
	limit=$(( base + base / 20 ))
	if [ "$cur" -gt "$limit" ]; then
		echo "alloc gate: $name allocs/op = $cur, baseline $base (limit $limit)" >&2
		fail=1
	else
		echo "alloc gate: $name allocs/op = $cur (baseline $base) ok"
	fi
done <"$baseline"
exit $fail

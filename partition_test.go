package optsync

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optsync/internal/model"
)

// TestChaosPartitionMinorityNeverCommits is the partition-safety
// acceptance test: a 5-node group splits 3/2 with the root on the
// minority side, workloads keep hammering both sides, and the partition
// heals. The quorum machinery must guarantee that the fenced minority
// never commits a write or grants a lock, that the majority reign's
// history survives the heal intact, and that a member crashed and
// revived afterwards rejoins and converges — all checked by
// linearizing every acknowledged increment against the final counter.
func TestChaosPartitionMinorityNeverCommits(t *testing.T) {
	const nodes = 5
	c, err := NewCluster(nodes, WithChaos(), WithQuorumAcks(),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)

	checker := model.NewCounterChecker()
	var (
		acked int64 // increments acknowledged so far (checker.Len mirror)
		stop  = make(chan struct{})
		wg    sync.WaitGroup
	)
	// Workers on every node but 4 — the crash victim below must not die
	// holding the mutex (the lock-freeing rejoin path has its own test) —
	// so both sides of the partition keep trying. An increment counts as
	// acknowledged only when the quorum-acked sync barrier answers; the
	// barrier's 250 ms deadline is far shorter than the partition below,
	// so a token parked at the fenced root always expires instead of
	// leaking into the next reign.
	for i := 0; i < nodes-1; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := h.TryLockFor(m, 200*time.Millisecond)
				if err != nil || !ok {
					continue // outage or fence window: retry
				}
				cur, rerr := h.Read(v)
				if rerr == nil {
					if werr := h.Write(v, cur+1); werr == nil {
						ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
						if h.SyncContext(ctx, g) == nil {
							checker.Acked(cur)
							atomic.AddInt64(&acked, 1)
						}
						cancel()
					}
				}
				_ = h.Release(m)
			}
		}(c.MustHandle(i))
	}
	waitAcked := func(min int64, what string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for atomic.LoadInt64(&acked) < min && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if atomic.LoadInt64(&acked) < min {
			t.Fatalf("workload stalled %s (%d acknowledged)", what, atomic.LoadInt64(&acked))
		}
	}
	waitStat := func(node int, what string, get func(NodeStats) int, want int) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if get(c.MustHandle(node).Stats()) >= want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("node %d: %s never reached %d", node, what, want)
	}

	waitAcked(8, "before the partition")

	// Split 3/2 with the root marooned on the minority side.
	c.Chaos().Partition([]int{0, 1}, []int{2, 3, 4})
	waitStat(0, "fenced reigns", func(s NodeStats) int { return s.GWC.Fenced }, 1)
	waitStat(2, "failovers", func(s NodeStats) int { return s.GWC.Failovers }, 1)
	grantsAtFence := c.MustHandle(0).Stats().GWC.LockGrants

	// The majority reign keeps committing; the fenced minority must not
	// grant a single lock. Holding the partition open well past the sync
	// deadline also guarantees no minority barrier is still pending when
	// the reigns merge.
	mid := atomic.LoadInt64(&acked)
	waitAcked(mid+5, "under the majority reign")
	time.Sleep(400 * time.Millisecond)
	if got := c.MustHandle(0).Stats().GWC.LockGrants; got != grantsAtFence {
		t.Errorf("fenced root granted %d locks", got-grantsAtFence)
	}

	c.Chaos().Heal()
	waitStat(0, "demotions", func(s NodeStats) int { return s.GWC.Demotions }, 1)
	healed := atomic.LoadInt64(&acked)
	waitAcked(healed+3, "after the heal")

	// Crash a member of the healed group mid-workload, then revive and
	// explicitly rejoin it — the rebooted-machine path.
	c.Chaos().Crash(4)
	crashed := atomic.LoadInt64(&acked)
	waitAcked(crashed+3, "with a member down")
	c.Chaos().Revive(4)
	if err := c.MustHandle(4).Rejoin(g); err != nil {
		t.Fatal(err)
	}
	waitStat(4, "rejoins", func(s NodeStats) int { return s.GWC.Rejoins }, 1)
	rejoined := atomic.LoadInt64(&acked)
	waitAcked(rejoined+3, "after the rejoin")

	close(stop)
	wg.Wait()

	// Every node — ex-minority, ex-crashed, and the reigning side —
	// converges on one final counter.
	var final int64 = -1
	deadline := time.Now().Add(10 * time.Second)
	for {
		vals := make([]int64, nodes)
		agreed := true
		for i := range vals {
			got, err := c.MustHandle(i).Read(v)
			if err != nil {
				t.Fatal(err)
			}
			vals[i] = got
			if got != vals[0] {
				agreed = false
			}
		}
		if agreed {
			final = vals[0]
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("group never converged: counters %v", vals)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// The linearization check is the heart of the test: every
	// acknowledged increment is a unique transition on the chain
	// 0..final, so a minority commit that leaked past the fence, a
	// majority write lost in the heal, or a double grant anywhere all
	// surface here.
	if err := checker.Check(final); err != nil {
		t.Error(err)
	}
	if n := checker.Len(); int64(n) != atomic.LoadInt64(&acked) {
		t.Errorf("checker recorded %d increments, workers acknowledged %d", n, acked)
	}
	if e := c.MustHandle(2).Stats().GWC.Elections; e < 1 {
		t.Errorf("promoted node entered %d elections, want >= 1", e)
	}
	if r := c.MustHandle(2).Stats().GWC.Rejoins; r < 1 {
		t.Errorf("reigning root re-admitted %d members, want >= 1", r)
	}
	if w := c.MustHandle(2).Stats().GWC.QuorumAckWaits; w < 1 {
		t.Errorf("reigning root deferred %d quorum waits, want >= 1", w)
	}
}

// TestChaosRejoinUnderBatchedLoad crashes a member while the rest of the
// group streams coalesced writes, then revives and rejoins it without
// pausing the load: the rejoin snapshot and the in-flight batch plane
// must compose, and the rejoined member must converge on every stream.
func TestChaosRejoinUnderBatchedLoad(t *testing.T) {
	const nodes = 4
	c, err := NewCluster(nodes, WithChaos(),
		WithBatching(2*time.Millisecond, 16),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("load", 0)
	if err != nil {
		t.Fatal(err)
	}
	vars := []*Var{g.Int("s0"), g.Int("s1"), g.Int("s2")}

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		progress [3]int64 // last value each writer published
	)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int, h *Handle) {
			defer wg.Done()
			for next := int64(1); ; next++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := h.Write(vars[i], next); err == nil {
					atomic.StoreInt64(&progress[i], next)
				}
				if next%8 == 0 {
					time.Sleep(time.Millisecond)
				}
			}
		}(i, c.MustHandle(i))
	}
	waitPast := func(min int64) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			ok := true
			for i := range progress {
				if atomic.LoadInt64(&progress[i]) < min {
					ok = false
				}
			}
			if ok {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("writers stalled before reaching %d", min)
	}

	waitPast(50)
	c.Chaos().Crash(3)
	waitPast(150)
	c.Chaos().Revive(3)
	if err := c.MustHandle(3).Rejoin(g); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for c.MustHandle(3).Stats().GWC.Rejoins < 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.MustHandle(3).Stats().GWC.Rejoins < 1 {
		t.Fatal("rejoin handshake never completed under load")
	}
	waitPast(250)
	close(stop)
	wg.Wait()

	// The rejoined member catches every stream up to its writer's last
	// published value; the others converge too.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i, v := range vars {
		want := atomic.LoadInt64(&progress[i])
		for nd := 0; nd < nodes; nd++ {
			if err := c.MustHandle(nd).WaitGEContext(ctx, v, want); err != nil {
				t.Fatalf("node %d never reached %s=%d: %v", nd, v.Name(), want, err)
			}
		}
	}
	if b := c.MustHandle(0).Stats().GWC.Batches; b == 0 {
		t.Error("workload ran without a single batch frame; load was not batched")
	}
}

// Package optsync is a distributed-shared-memory library implementing
// optimistic lock synchronization under group write consistency, after
// Hermannsson & Wittie, "Optimistic Synchronization in Distributed Shared
// Memory" (ICDCS 1994).
//
// A Cluster hosts N nodes connected by an in-process or TCP transport.
// Variables live in sharing Groups: every write is applied locally at
// once (eagersharing) and sequenced by the group's root so all nodes
// observe the same total write order (group write consistency). The root
// doubles as the queue-based lock manager, and OptimisticDo runs critical
// sections speculatively while the lock request is still in flight,
// rolling back if another node wins the lock.
//
// Quickstart:
//
//	c, _ := optsync.NewCluster(4)
//	defer c.Close()
//	g, _ := c.NewGroup("accounts", 0)
//	m := g.Mutex("lock")
//	balance := g.Int("balance", m)
//
//	h := c.MustHandle(2) // code running "on" node 2
//	_ = h.OptimisticDo(m, func(tx *optsync.Tx) error {
//	    cur, _ := tx.Read(balance)
//	    return tx.Write(balance, cur+100)
//	})
//
// # Errors
//
// Failures are reported wrapped around the package's sentinel errors, so
// callers branch with errors.Is rather than string matching:
//
//	if errors.Is(err, optsync.ErrClosed) { ... }     // cluster or node shut down
//	if errors.Is(err, optsync.ErrNotMember) { ... }  // node outside the cluster or group
//	if errors.Is(err, optsync.ErrUnknownGroup) { ... } // group never joined on that node
//	if errors.Is(err, optsync.ErrUnknownVar) { ... } // variable from another group
package optsync

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"optsync/internal/core"
	"optsync/internal/gwc"
	"optsync/internal/transport"
)

// ErrNested is returned when a critical section re-enters its own lock
// (the paper's "Cannot safely nest mutex lock requests").
var ErrNested = core.ErrNested

// Sentinel errors. Everything the package returns wraps one of these
// where applicable; match with errors.Is.
var (
	// ErrClosed marks operations that failed because the cluster or node
	// shut down.
	ErrClosed = gwc.ErrClosed
	// ErrNotMember marks operations addressing a node outside the cluster
	// or a group's member list.
	ErrNotMember = gwc.ErrNotMember
	// ErrUnknownGroup marks operations on a group the node never joined.
	ErrUnknownGroup = gwc.ErrUnknownGroup
	// ErrUnknownVar marks operations given a variable (or mutex) that
	// belongs to a different group than the operation targets.
	ErrUnknownVar = errors.New("unknown variable")
	// ErrTooStale marks degraded reads (Handle.ReadStale) whose local
	// copy's staleness bound exceeds what the caller tolerates.
	ErrTooStale = gwc.ErrTooStale
	// ErrDiverged marks degraded reads refused because an anti-entropy
	// digest comparison convicted the node's local copy (WithIntegrity):
	// a diverged copy may hold values that were never true at any time,
	// so no staleness bound makes it servable. It clears once the
	// corrective snapshot re-bases the copy.
	ErrDiverged = gwc.ErrDiverged
)

// options collects cluster construction settings.
type options struct {
	tcpAddrs   []string
	faults     *transport.FaultPlan
	history    core.Config
	histSize   int
	chaos      bool
	retryIn    time.Duration
	failAfter  time.Duration
	electWait  time.Duration
	batchDelay time.Duration
	batchMsgs  int
	quorumAcks bool
	maxStale   time.Duration
	boBase     time.Duration
	boCap      time.Duration
	wdBudget   time.Duration
	integrity  time.Duration
	leases     time.Duration

	traced      bool
	traceCap    int
	metricsAddr string
}

// Option configures NewCluster.
type Option interface {
	apply(*options)
}

type optionFunc func(*options)

func (f optionFunc) apply(o *options) { f(o) }

// WithTCP runs the cluster over a TCP mesh listening on the given
// addresses (one per node; ":0" picks free ports). The default is an
// in-process transport.
func WithTCP(addrs []string) Option {
	return optionFunc(func(o *options) { o.tcpAddrs = append([]string(nil), addrs...) })
}

// WithLossyNetwork injects reproducible message loss on the sequenced
// multicast path — useful for demos and tests of the NACK-based recovery
// machinery. dropRate is in [0,1).
func WithLossyNetwork(dropRate float64, seed int64) Option {
	return optionFunc(func(o *options) {
		o.faults = &transport.FaultPlan{DropRate: dropRate, Seed: seed, DownOnly: true}
	})
}

// WithHistory tunes the optimistic path's usage-frequency filter
// (defaults: decay 0.95, threshold 0.30).
func WithHistory(decay, threshold float64) Option {
	return optionFunc(func(o *options) {
		o.history = core.Config{HistoryDecay: decay, HistoryThreshold: threshold}
	})
}

// WithRetransmitBuffer sets the root's retransmission buffer size in
// sequenced messages (default 4096). This buffer serves NACK-driven loss
// recovery; it is unrelated to the optimistic usage-history filter that
// WithHistory tunes.
func WithRetransmitBuffer(n int) Option {
	return optionFunc(func(o *options) { o.histSize = n })
}

// WithHistoryBuffer sets the root's retransmission buffer size.
//
// Deprecated: the name collided with WithHistory, which tunes an
// unrelated mechanism. Use WithRetransmitBuffer. This shim will be
// removed in the next major version (see README "Deprecations").
func WithHistoryBuffer(n int) Option {
	return WithRetransmitBuffer(n)
}

// WithBatching enables the batched update plane (default off): each node
// coalesces its shared writes into batch frames, flushed when maxMsgs
// writes are queued, when maxDelay has elapsed since the first queued
// write, or immediately before a lock release leaves the node — so the
// GWC guarantee that every node sees a critical section's data before
// the lock changes hands is preserved. Repeated writes to the same
// variable within a flush window are combined (Sesame's write
// combining), and the root sequences a whole batch under one lock
// acquisition and fans it out as one frame per member.
//
// Batching trades write latency (up to maxDelay) for throughput;
// maxMsgs < 2 disables it, maxDelay <= 0 defaults to 2ms. With batching
// on, Write reports transport failures asynchronously rather than from
// its return value.
func WithBatching(maxDelay time.Duration, maxMsgs int) Option {
	return optionFunc(func(o *options) {
		o.batchDelay = maxDelay
		o.batchMsgs = maxMsgs
	})
}

// WithQuorumAcks raises the cluster's durability level from fast to
// quorum-acked. By default a write is "committed" the moment the group
// root sequences it — cheap, but a write sequenced just before the root
// crashes can be lost if the elected successor merges state from members
// that had not applied it yet. With quorum acks, members continuously
// acknowledge the sequenced prefix they applied, and the root:
//
//   - hands a released lock to the next waiter only once a majority of
//     the membership holds everything sequenced up to the release, so a
//     critical section can never observe a predecessor's writes that a
//     failover could undo;
//   - answers Sync barriers only once everything sequenced before the
//     barrier is majority-held.
//
// Combined with the (always-on) quorum-gated elections, any successor
// root merges reports from a majority of members, and two majorities
// always intersect — so quorum-acked writes survive root failovers.
// The cost is roughly one extra message per member per sequenced burst
// and up to one ack round-trip of added lock-handoff latency.
func WithQuorumAcks() Option {
	return optionFunc(func(o *options) { o.quorumAcks = true })
}

// WithBackoff tunes every node's adaptive-retry schedule: control-plane
// retransmissions (lock requests, rejoin handshakes, snapshot requests,
// resync probes, sync barriers) start at base and back off exponentially
// with jitter up to max. Zero values keep the defaults, which derive
// from the maintenance interval (base = retry interval, max = 16x).
func WithBackoff(base, max time.Duration) Option {
	return optionFunc(func(o *options) {
		o.boBase = base
		o.boCap = max
	})
}

// WithWatchdog tunes every node's stuck-operation liveness budget: an
// in-flight acquisition, rejoin, sync barrier, parked grant, holderless
// lock, or fence that outlives the budget is counted, traced, and
// re-driven (see the WatchdogStuck / WatchdogReissues counters). Zero
// keeps the default of 4x the failure-detection deadline.
func WithWatchdog(budget time.Duration) Option {
	return optionFunc(func(o *options) { o.wdBudget = budget })
}

// WithIntegrity enables end-to-end state-integrity checking with the
// given anti-entropy sweep interval. Every sequenced data apply folds
// into an incremental per-group digest, and every interval each group
// root compares member digests at a sequence watermark (TDigestReq /
// TDigestAck frames piggybacked on the maintenance schedule). A member
// whose digest diverges — bit rot past the frame checksums, a
// misapplied frame — is counted (Stats().GWC.Divergences), traced
// (EvDivergence), quarantined (Health reports it, /healthz fails,
// ReadStale returns ErrDiverged) and self-healed by re-driving it
// through the snapshot catch-up path. Wire-frame CRC32C checksums are
// always on and need no option; the sweep costs two small frames per
// member per interval. Zero (the default) disables sweeping.
func WithIntegrity(interval time.Duration) Option {
	return optionFunc(func(o *options) { o.integrity = interval })
}

// WithLeases enables lock leasing and peer-to-peer handoff with the
// given lease TTL. When a lock is granted with nobody queued behind it,
// the group root leases it to the winner: re-acquiring it there is a
// purely local decision while the lease holds — zero wire messages,
// down from the three-message root round trip — with in-use leases
// renewed on the adaptive-retry schedule and idle ones returned at
// expiry. When a lock is granted with waiters queued, the grant carries
// the head waiter's identity and the releasing holder hands the lock to
// it directly (one frame on the critical path), notifying the root
// asynchronously; the root stays the arbiter and every conflict falls
// back to the classic queue. Leases never survive a reign change, a
// fenced root demands them back, and the root frees a leased lock only
// on an explicit return, release, or the holder's rejoin — never on
// expiry alone — so a slow clock cannot mint two exclusive holders.
// Ignored under WithQuorumAcks: direct transfers would bypass the
// durability watermark. Zero (the default) disables leasing.
func WithLeases(ttl time.Duration) Option {
	return optionFunc(func(o *options) { o.leases = ttl })
}

// WithMaxStaleness bounds the cluster's degraded reads: Handle.ReadStale
// serves a node's local copy even while the node cannot reach a live
// reign (fenced root, member mid-election or mid-rejoin), and this
// option caps how stale such a read may be — measured from the node's
// last proof of currency — before it fails with ErrTooStale instead.
// Without the option any staleness is accepted.
func WithMaxStaleness(d time.Duration) Option {
	return optionFunc(func(o *options) { o.maxStale = d })
}

// WithChaos enables the cluster's fault-injection controls (see
// Cluster.Chaos): crashing and reviving nodes and partitioning the
// network, to exercise the crash-failover machinery.
func WithChaos() Option {
	return optionFunc(func(o *options) { o.chaos = true })
}

// Timing collects the cluster's failure-handling clocks for WithTiming.
// Zero fields keep their defaults.
type Timing struct {
	// Retry is every node's maintenance interval: control-plane retries
	// and root heartbeats (default 50ms).
	Retry time.Duration
	// FailAfter is the root-failure detection deadline: how long a member
	// goes without hearing its root before starting an election (default
	// 2s).
	FailAfter time.Duration
	// ElectWait is the election grace period during which the failover
	// candidate collects peer state reports (default 200ms).
	ElectWait time.Duration
}

// WithTiming tunes the cluster's failure-handling clocks. Fields left
// zero keep their defaults, so callers name only what they change:
//
//	optsync.WithTiming(optsync.Timing{FailAfter: 500 * time.Millisecond})
func WithTiming(t Timing) Option {
	return optionFunc(func(o *options) {
		o.retryIn = t.Retry
		o.failAfter = t.FailAfter
		o.electWait = t.ElectWait
	})
}

// WithTimers tunes the maintenance interval, the root-failure detection
// deadline, and the election grace period. Zero values keep the
// defaults (50ms, 2s, 200ms).
//
// Deprecated: the positional form is easy to mis-order. Use WithTiming,
// which names each clock.
func WithTimers(retry, failAfter, electWait time.Duration) Option {
	return WithTiming(Timing{Retry: retry, FailAfter: failAfter, ElectWait: electWait})
}

// Cluster is a set of DSM nodes sharing groups of variables.
type Cluster struct {
	net      transport.Network
	flaky    *transport.Flaky // non-nil with WithChaos or WithLossyNetwork
	nodes    []*gwc.Node
	engines  []*core.Engine
	histSz   int
	maxStale time.Duration

	metricsLn  net.Listener // non-nil with WithMetricsAddr
	metricsSrv *http.Server

	mu        sync.Mutex
	groups    map[string]*Group
	nextGroup gwc.GroupID
	closed    bool
}

// NewCluster starts n nodes on the chosen transport.
func NewCluster(n int, opts ...Option) (*Cluster, error) {
	if n < 1 {
		return nil, fmt.Errorf("optsync: cluster needs at least 1 node, got %d", n)
	}
	var o options
	o.history = core.DefaultConfig()
	for _, opt := range opts {
		opt.apply(&o)
	}

	var (
		nw  transport.Network
		err error
	)
	if len(o.tcpAddrs) > 0 {
		if len(o.tcpAddrs) != n {
			return nil, fmt.Errorf("optsync: %d TCP addresses for %d nodes", len(o.tcpAddrs), n)
		}
		nw, err = transport.NewTCP(o.tcpAddrs)
	} else {
		nw, err = transport.NewInProc(n)
	}
	if err != nil {
		return nil, fmt.Errorf("optsync: %w", err)
	}
	var flaky *transport.Flaky
	if o.faults != nil || o.chaos {
		plan := transport.FaultPlan{}
		if o.faults != nil {
			plan = *o.faults
		}
		flaky = transport.NewFlaky(nw, plan)
		nw = flaky
	}

	c := &Cluster{
		net:       nw,
		flaky:     flaky,
		nodes:     make([]*gwc.Node, n),
		engines:   make([]*core.Engine, n),
		histSz:    o.histSize,
		maxStale:  o.maxStale,
		groups:    make(map[string]*Group),
		nextGroup: 1,
	}
	for i := 0; i < n; i++ {
		ep, err := nw.Endpoint(i)
		if err != nil {
			_ = nw.Close()
			return nil, fmt.Errorf("optsync: %w", err)
		}
		c.nodes[i] = gwc.NewNode(i, ep)
		c.nodes[i].SetTimers(o.retryIn, o.failAfter, o.electWait)
		c.nodes[i].SetBatching(o.batchDelay, o.batchMsgs)
		c.nodes[i].SetQuorumAcks(o.quorumAcks)
		c.nodes[i].SetBackoff(o.boBase, o.boCap)
		c.nodes[i].SetWatchdog(o.wdBudget)
		c.nodes[i].SetIntegrity(o.integrity)
		c.nodes[i].SetLeases(o.leases)
		c.engines[i] = core.NewEngine(c.nodes[i], o.history)
	}
	if o.traced || o.metricsAddr != "" {
		for _, nd := range c.nodes {
			nd.Metrics().Trace.Enable(o.traceCap)
		}
	}
	if o.metricsAddr != "" {
		if err := c.startMetricsServer(o.metricsAddr); err != nil {
			_ = c.Close()
			return nil, fmt.Errorf("optsync: metrics server: %w", err)
		}
	}
	return c, nil
}

// Chaos exposes the cluster's fault-injection controls, or nil unless
// the cluster was built with WithChaos (or WithLossyNetwork).
func (c *Cluster) Chaos() *Chaos {
	if c.flaky == nil {
		return nil
	}
	return &Chaos{f: c.flaky}
}

// Chaos injects deterministic faults into a running cluster. Crashes are
// simulated at the network level: a crashed node's goroutines keep
// running but none of its messages are delivered in either direction, so
// a revived node models a machine rejoining with stale state.
type Chaos struct {
	f *transport.Flaky
}

// Crash isolates a node until Revive.
func (ch *Chaos) Crash(node int) { ch.f.Crash(node) }

// Revive reconnects a crashed node. Only the links come back: the
// node's protocol state is whatever it held at crash time. A briefly
// crashed member catches up by itself (NACK repair, or a snapshot once
// it notices it fell past the root's retransmission window), and a
// deposed ex-root is demoted and resyncs on first contact with the new
// reign — but a node revived after a long outage converges fastest by
// explicitly rejoining its groups with Handle.Rejoin, which discards
// its stale state and re-admits it at the current epoch.
func (ch *Chaos) Revive(node int) { ch.f.Revive(node) }

// Partition cuts every link between the two sides until Heal.
func (ch *Chaos) Partition(a, b []int) { ch.f.Partition(a, b) }

// Heal removes all partitions (crashed nodes stay crashed).
func (ch *Chaos) Heal() { ch.f.Heal() }

// Isolated reports how many messages crashes and partitions have cut.
func (ch *Chaos) Isolated() int { return ch.f.Isolated() }

// Corrupt sets the probability (in [0,1]) that a delivered message has
// one random bit of its encoded payload flipped — transport-level bit
// rot. The wire codec's CRC32C trailer catches the flip at decode, the
// frame is discarded, and the usual NACK/retry machinery recovers it;
// CorruptStats reports the outcomes. Zero turns corruption off.
func (ch *Chaos) Corrupt(rate float64) { ch.f.Corrupt(rate) }

// CorruptStats reports corruption outcomes: bit-flips injected, frames
// the checksum caught (discarded and recovered by retransmission), and
// frames that decoded cleanly despite the flip (delivered corrupt —
// which the CRC trailer should make impossible).
func (ch *Chaos) CorruptStats() (injected, caught, missed int) { return ch.f.CorruptStats() }

// Size reports the number of nodes.
func (c *Cluster) Size() int { return len(c.nodes) }

// Close shuts every node and the transport down. Blocked operations are
// woken with errors.
func (c *Cluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	var first error
	if c.metricsSrv != nil {
		if err := c.metricsSrv.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, n := range c.nodes {
		if err := n.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := c.net.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// GroupOption configures NewGroup.
type GroupOption interface {
	applyGroup(*groupOptions)
}

type groupOptions struct {
	treeFanout bool
	members    []int
}

type groupOptionFunc func(*groupOptions)

func (f groupOptionFunc) applyGroup(o *groupOptions) { f(o) }

// TreeFanout distributes the group's sequenced traffic along the BFS
// spanning tree of its torus embedding — Sesame's tree multicast — with
// members relaying to their subtrees instead of the root sending to every
// member directly. It requires the group to span all nodes.
func TreeFanout() GroupOption {
	return groupOptionFunc(func(o *groupOptions) { o.treeFanout = true })
}

// Members restricts the group to a subset of nodes. Small groups are the
// heart of the paper's scaling argument: "Processor groups overcome the
// total store ordering arbitration bottleneck", and "combining
// overlapping groups into one global group can prevent scaling in large
// networks by overloading the global root". Only member nodes hold
// copies, receive updates, or may use the group's locks; ordering between
// different groups is not defined (use multi-group locks where needed).
func Members(ids ...int) GroupOption {
	return groupOptionFunc(func(o *groupOptions) { o.members = append([]int(nil), ids...) })
}

// NewGroup creates (or returns, if the name exists with the same root) a
// sharing group spanning all nodes, rooted at the given node. The root
// sequences the group's writes and manages its locks, so related
// variables and locks should share a group ("Compiler tools can
// aggregate related variables and locks into the same sharing group").
func (c *Cluster) NewGroup(name string, root int, opts ...GroupOption) (*Group, error) {
	if root < 0 || root >= len(c.nodes) {
		return nil, fmt.Errorf("optsync: group root %d out of range [0,%d): %w", root, len(c.nodes), ErrNotMember)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("optsync: cluster is closed: %w", ErrClosed)
	}
	if g, ok := c.groups[name]; ok {
		if g.root != root {
			return nil, fmt.Errorf("optsync: group %q already exists with root %d", name, g.root)
		}
		return g, nil
	}
	var gopts groupOptions
	for _, opt := range opts {
		opt.applyGroup(&gopts)
	}
	members := gopts.members
	if len(members) == 0 {
		members = make([]int, len(c.nodes))
		for i := range members {
			members[i] = i
		}
	} else {
		seen := make(map[int]bool, len(members))
		rootIn := false
		for _, m := range members {
			if m < 0 || m >= len(c.nodes) {
				return nil, fmt.Errorf("optsync: group member %d out of range [0,%d): %w", m, len(c.nodes), ErrNotMember)
			}
			if seen[m] {
				return nil, fmt.Errorf("optsync: duplicate group member %d", m)
			}
			seen[m] = true
			if m == root {
				rootIn = true
			}
		}
		if !rootIn {
			return nil, fmt.Errorf("optsync: group root %d is not among the members %v", root, members)
		}
		if gopts.treeFanout {
			return nil, errors.New("optsync: TreeFanout requires the group to span all nodes")
		}
	}
	id := c.nextGroup
	c.nextGroup++
	for _, m := range members {
		if err := c.nodes[m].Join(gwc.GroupConfig{
			ID:          id,
			Root:        root,
			Members:     members,
			HistorySize: c.histSz,
			TreeFanout:  gopts.treeFanout,
		}); err != nil {
			return nil, fmt.Errorf("optsync: join group %q: %w", name, err)
		}
	}
	g := &Group{
		c:        c,
		id:       id,
		name:     name,
		root:     root,
		members:  members,
		vars:     make(map[string]*Var),
		mutexes:  make(map[string]*Mutex),
		sessions: make(map[string]*SessionLock),
		nextVar:  1,
		nextLock: 1,
	}
	c.groups[name] = g
	return g, nil
}

// Group is a sharing group: a set of eagerly shared variables and locks
// sequenced by one root node.
type Group struct {
	c       *Cluster
	id      gwc.GroupID
	name    string
	root    int
	members []int

	mu       sync.Mutex
	vars     map[string]*Var
	mutexes  map[string]*Mutex
	sessions map[string]*SessionLock
	nextVar  gwc.VarID
	nextLock gwc.LockID
}

// Name reports the group's name.
func (g *Group) Name() string { return g.name }

// Root reports the group's root node.
func (g *Group) Root() int { return g.root }

// Members lists the nodes in the group, in ID order as given.
func (g *Group) Members() []int { return append([]int(nil), g.members...) }

// Mutex declares (or returns) a named queue-based lock managed by the
// group's root. The namespace is shared with SessionLock.
func (g *Group) Mutex(name string) *Mutex {
	g.mu.Lock()
	defer g.mu.Unlock()
	if m, ok := g.mutexes[name]; ok {
		return m
	}
	if _, ok := g.sessions[name]; ok {
		panic(fmt.Sprintf("optsync: lock %q already declared as a SessionLock", name))
	}
	m := &Mutex{g: g, id: g.nextLock, name: name}
	g.nextLock++
	g.mutexes[name] = m
	return m
}

// Int declares (or returns) a named shared integer variable. Passing a
// guard lock (a Mutex or a SessionLock) puts the variable in that lock's
// mutex data group: the root discards writes from non-holders and
// origins drop their echoes, which is what makes optimistic execution
// safe for it. Under a SessionLock guard, every current session holder
// counts as a holder.
func (g *Group) Int(name string, guard ...Lock) *Var {
	g.mu.Lock()
	if v, ok := g.vars[name]; ok {
		g.mu.Unlock()
		return v
	}
	v := &Var{g: g, id: g.nextVar, name: name}
	g.nextVar++
	g.vars[name] = v
	g.mu.Unlock()
	if len(guard) > 0 && guard[0] != nil {
		for _, m := range g.members {
			// Registration precedes first use, so the guard is in place
			// on every member before any write can race it.
			_ = g.c.nodes[m].SetGuard(g.id, v.id, guard[0].lockID())
		}
		v.guard = guard[0]
	}
	return v
}

// Var is a shared integer variable within a group.
type Var struct {
	g     *Group
	id    gwc.VarID
	name  string
	guard Lock
}

// Name reports the variable's name.
func (v *Var) Name() string { return v.name }

// Group reports the sharing group the variable belongs to.
func (v *Var) Group() *Group { return v.g }

// Guard reports the lock guarding the variable, or nil.
func (v *Var) Guard() Lock { return v.guard }

// Lock is a root-managed lock within a sharing group — a *Mutex or a
// *SessionLock. Either kind can guard variables (Group.Int) and
// participate in multi-group acquisition ordering.
type Lock interface {
	// Name reports the lock's name.
	Name() string
	// Group reports the sharing group the lock belongs to.
	Group() *Group
	lockID() gwc.LockID
}

// Mutex is a queue-based lock within a group, managed by the group root.
type Mutex struct {
	g    *Group
	id   gwc.LockID
	name string
}

// Name reports the mutex's name.
func (m *Mutex) Name() string { return m.name }

// Group reports the sharing group the mutex belongs to.
func (m *Mutex) Group() *Group { return m.g }

func (m *Mutex) lockID() gwc.LockID { return m.id }

// NodeStats combines the per-node protocol and optimistic-engine
// counters.
type NodeStats struct {
	GWC        gwc.Stats
	Optimistic core.Stats
}

// Handle is the programming interface for code running "on" one node.
// Handles are cheap; methods are safe for concurrent use by multiple
// goroutines on the same node.
type Handle struct {
	c      *Cluster
	node   *gwc.Node
	engine *core.Engine
}

// Handle returns node i's programming interface, or an error wrapping
// ErrNotMember if i is outside [0, Size()). Use MustHandle where an
// out-of-range index is a programming error (tests, examples).
func (c *Cluster) Handle(i int) (*Handle, error) {
	if i < 0 || i >= len(c.nodes) {
		return nil, fmt.Errorf("optsync: node %d out of range [0,%d): %w", i, len(c.nodes), ErrNotMember)
	}
	return &Handle{c: c, node: c.nodes[i], engine: c.engines[i]}, nil
}

// MustHandle returns node i's programming interface, panicking with a
// descriptive message if i is out of range.
func (c *Cluster) MustHandle(i int) *Handle {
	h, err := c.Handle(i)
	if err != nil {
		panic(fmt.Sprintf("optsync: MustHandle(%d): %v", i, err))
	}
	return h
}

// HandleErr returns node i's programming interface, or an error if i is
// out of range.
//
// Deprecated: Handle itself now returns an error (it used to panic);
// HandleErr is a synonym kept for transition. Use Handle, or MustHandle
// where panicking was the point.
func (c *Cluster) HandleErr(i int) (*Handle, error) {
	return c.Handle(i)
}

// NodeID reports which node this handle operates on.
func (h *Handle) NodeID() int { return h.node.ID() }

// Stats snapshots this node's counters.
func (h *Handle) Stats() NodeStats {
	return NodeStats{GWC: h.node.Stats(), Optimistic: h.engine.Stats()}
}

// Read returns this node's local copy of v — always a local access under
// eagersharing.
func (h *Handle) Read(v *Var) (int64, error) {
	return h.node.Read(v.g.id, v.id)
}

// ReadStale is the degraded-read form of Read: it returns this node's
// local copy of v along with an upper bound on its staleness, and —
// unlike the rest of the API — keeps serving while the node cannot
// reach a live reign (fenced root, member mid-election, mid-rejoin, or
// resyncing). The bound is measured from the node's last proof of
// currency: sequenced traffic or a heartbeat from the reign it follows,
// or the start of the fence on a fenced root. On a healthy node it is
// typically well under the failure-detection deadline (zero on an
// unfenced root, which is the authority). If the cluster was built
// WithMaxStaleness and the bound exceeds it, the value is withheld and
// the error wraps ErrTooStale.
func (h *Handle) ReadStale(v *Var) (val int64, stale time.Duration, err error) {
	return h.node.ReadStale(v.g.id, v.id, h.c.maxStale)
}

// Health reports whether each node of the cluster can currently serve
// writes, in node order — the state /healthz keys off when the cluster
// runs WithMetricsAddr.
func (c *Cluster) Health() []gwc.Health {
	out := make([]gwc.Health, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.Health()
	}
	return out
}

// Write stores val to v: the local copy changes immediately and the
// update is shipped to the group root for sequencing. Writing a guarded
// variable without holding its mutex is silently discarded by the root
// (that is the mechanism optimistic execution relies on), so regular code
// should hold the guard.
func (h *Handle) Write(v *Var, val int64) error {
	return h.node.Write(v.g.id, v.id, val)
}

// WaitGE blocks until this node's copy of v reaches at least min.
func (h *Handle) WaitGE(v *Var, min int64) error {
	return h.WaitGEContext(context.Background(), v, min)
}

// WaitGEContext is WaitGE with cancellation: it returns ctx's error if
// the context ends before the condition is met.
func (h *Handle) WaitGEContext(ctx context.Context, v *Var, min int64) error {
	ok, err := h.node.WaitGEContext(ctx, v.g.id, v.id, min)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("optsync: node closed while waiting: %w", ErrClosed)
	}
	return nil
}

// Acquire blocks until this node holds m.
func (h *Handle) Acquire(m *Mutex) error {
	return h.node.Acquire(m.g.id, m.id)
}

// AcquireContext blocks until this node holds m or ctx ends. On
// cancellation or deadline the queued request is withdrawn from the
// root — or, if the grant won the race, the lock is released — and
// ctx's error is returned.
func (h *Handle) AcquireContext(ctx context.Context, m *Mutex) error {
	return h.node.AcquireContext(ctx, m.g.id, m.id)
}

// TryLockFor attempts to acquire m, giving up after d. It reports
// whether the lock was obtained; an expired attempt leaves no trace in
// the root's queue. On success the caller owns the lock and must
// Release it.
func (h *Handle) TryLockFor(m *Mutex, d time.Duration) (bool, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	err := h.node.AcquireContext(ctx, m.g.id, m.id)
	if err == nil {
		return true, nil
	}
	if errors.Is(err, context.DeadlineExceeded) {
		return false, nil
	}
	return false, err
}

// Release frees m. The release is sequenced after the section's writes,
// so every node sees the data before the lock changes hands.
func (h *Handle) Release(m *Mutex) error {
	return h.node.Release(m.g.id, m.id)
}

// Sync blocks until every Write this handle's node issued to g's group
// before the call is committed: sequenced by the group root, and — on a
// WithQuorumAcks cluster — applied by a majority of the membership,
// which makes the writes durable across root failovers. While the root
// is fenced off by a partition the barrier does not answer, so Sync
// doubles as a "did my writes actually commit?" probe.
func (h *Handle) Sync(g *Group) error {
	return h.SyncContext(context.Background(), g)
}

// SyncContext is Sync with cancellation. If a root failover lands while
// the barrier is pending it is re-issued to the new root and vouches
// only for what the new reign sequenced; eager writes that died with the
// old root are lost either way, exactly as without the barrier.
func (h *Handle) SyncContext(ctx context.Context, g *Group) error {
	return h.node.SyncContext(ctx, g.id)
}

// Rejoin re-enters g's group after this node was revived from a crash,
// discarding all of the node's stale local state for the group: the
// current root re-admits it at the current epoch and streams it a fresh
// snapshot. Locks the node held or waited for at crash time are freed by
// the root. Rejoin returns once the request is sent; convergence is
// asynchronous (the request is retried until a root answers, even across
// a concurrent failover).
func (h *Handle) Rejoin(g *Group) error {
	return h.node.Rejoin(g.id)
}

// Do runs body with m held (the regular, non-optimistic path).
func (h *Handle) Do(m *Mutex, body func() error) error {
	return h.DoContext(context.Background(), m, body)
}

// DoContext is Do with cancellation while waiting for the lock. Once
// the lock is held, body runs to completion and the lock is released
// regardless of ctx.
func (h *Handle) DoContext(ctx context.Context, m *Mutex, body func() error) error {
	if err := h.AcquireContext(ctx, m); err != nil {
		return err
	}
	bodyErr := body()
	if err := h.Release(m); err != nil {
		return err
	}
	return bodyErr
}

// Tx is the transactional view of an optimistic critical section. Writes
// are tracked so a rollback can restore this node's prior values.
type Tx struct {
	inner *core.Tx
	g     *Group
}

// Read returns the node's local copy of v. During speculation the value
// may prove invalid; the section is then rolled back and re-executed
// with valid data.
func (tx *Tx) Read(v *Var) (int64, error) {
	if v.g != tx.g {
		return 0, fmt.Errorf("optsync: variable %q belongs to group %q, not %q: %w", v.name, v.g.name, tx.g.name, ErrUnknownVar)
	}
	return tx.inner.Read(v.id)
}

// Write stores a shared value, saving the prior value for rollback on
// first write during speculation.
func (tx *Tx) Write(v *Var, val int64) error {
	if v.g != tx.g {
		return fmt.Errorf("optsync: variable %q belongs to group %q, not %q: %w", v.name, v.g.name, tx.g.name, ErrUnknownVar)
	}
	return tx.inner.Write(v.id, val)
}

// OptimisticDo runs body under m using the paper's optimistic mutual
// exclusion: when the local lock copy and its usage history suggest the
// lock is free, body runs speculatively while the (non-blocking) lock
// request propagates; if another node wins, the section rolls back and
// re-executes once the queued request is granted.
//
// body may therefore run more than once and must confine its shared-state
// effects to the transaction. Variables written inside body should be
// guarded by m (declared with g.Int(name, m)); unguarded writes commit
// immediately and cannot be suppressed on conflict.
func (h *Handle) OptimisticDo(m *Mutex, body func(tx *Tx) error) error {
	return h.OptimisticDoContext(context.Background(), m, body)
}

// OptimisticDoContext is OptimisticDo with cancellation. ctx is honoured
// at entry, throughout the regular path, and while waiting to re-execute
// after a rollback; a section that is already speculating first waits
// (briefly — one round trip to the root, bounded by the failover
// deadline if the root crashed) to learn whether its writes committed,
// since aborting blind would leave the local copies unreconcilable with
// the group.
func (h *Handle) OptimisticDoContext(ctx context.Context, m *Mutex, body func(tx *Tx) error) error {
	return h.engine.DoContext(ctx, m.g.id, m.id, func(inner *core.Tx) error {
		return body(&Tx{inner: inner, g: m.g})
	})
}

package optsync

import (
	"sync"
	"testing"
	"time"
)

func newPubCluster(t *testing.T, n int) (*Cluster, *Published, *Var, *Var) {
	t.Helper()
	c, err := NewCluster(n)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	g, err := c.NewGroup("pub", 0)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Int("x")
	y := g.Int("y")
	p, err := g.Published("block", x, y)
	if err != nil {
		t.Fatal(err)
	}
	return c, p, x, y
}

func TestPublishedRejectsForeignAndGuardedVars(t *testing.T) {
	c, err := NewCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g1, _ := c.NewGroup("a", 0)
	g2, _ := c.NewGroup("b", 0)
	foreign := g2.Int("x")
	if _, err := g1.Published("p", foreign); err == nil {
		t.Error("Published accepted a foreign group's variable")
	}
	m := g1.Mutex("lk")
	guarded := g1.Int("guarded", m)
	if _, err := g1.Published("p", guarded); err == nil {
		t.Error("Published accepted a mutex-guarded variable")
	}
}

func TestPublishSnapshotRoundTrip(t *testing.T) {
	c, p, x, y := newPubCluster(t, 3)
	writer := c.MustHandle(1)
	if err := writer.Publish(p, func() error {
		if err := writer.Write(x, 10); err != nil {
			return err
		}
		return writer.Write(y, 20)
	}); err != nil {
		t.Fatal(err)
	}
	reader := c.MustHandle(2)
	vals, err := reader.SnapshotAfter(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] != 10 || vals[1] != 20 {
		t.Errorf("snapshot = %v, want [10 20]", vals)
	}
	if ver, _ := reader.Version(p); ver != 2 {
		t.Errorf("version = %d, want 2", ver)
	}
}

func TestPublishInFlightDetected(t *testing.T) {
	c, p, _, _ := newPubCluster(t, 2)
	h := c.MustHandle(0)
	err := h.Publish(p, func() error {
		// A second publish from inside the first must be refused: the
		// version is odd.
		if err := h.Publish(p, func() error { return nil }); err == nil {
			t.Error("nested publish succeeded, want in-flight error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotNeverTearsPairs is the paper's consistency claim: readers
// either see a whole publication or none of it. The writer maintains
// y = 2x; no snapshot may ever observe anything else.
func TestSnapshotNeverTearsPairs(t *testing.T) {
	c, p, x, y := newPubCluster(t, 3)
	writer := c.MustHandle(0) // the group root: its writes sequence locally first
	const pubs = 200
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= pubs; i++ {
			i := int64(i)
			if err := writer.Publish(p, func() error {
				if err := writer.Write(x, i); err != nil {
					return err
				}
				time.Sleep(50 * time.Microsecond) // widen the torn window
				return writer.Write(y, 2*i)
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	stop := make(chan struct{})
	for r := 1; r <= 2; r++ {
		reader := c.MustHandle(r)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				vals, err := reader.Snapshot(p)
				if err != nil {
					t.Error(err)
					return
				}
				if vals[1] != 2*vals[0] {
					t.Errorf("torn snapshot: x=%d y=%d", vals[0], vals[1])
					return
				}
			}
		}()
	}
	// Wait for the writer, then stop the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wgWriterWait(&wg, stop)
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publication test hung")
	}
	// Final state visible everywhere.
	final, err := c.MustHandle(2).SnapshotAfter(p, int64(2*pubs))
	if err != nil {
		t.Fatal(err)
	}
	if final[0] != pubs || final[1] != 2*pubs {
		t.Errorf("final snapshot = %v, want [%d %d]", final, pubs, 2*pubs)
	}
}

// wgWriterWait waits for the writer (first Add) by polling the final
// version, then closes stop and waits for everyone.
func wgWriterWait(wg *sync.WaitGroup, stop chan struct{}) {
	// The writer goroutine is done when wg can be released after stop:
	// close stop once a grace period covers the writer's work, then wait.
	time.Sleep(100 * time.Millisecond)
	close(stop)
	wg.Wait()
}

func TestSnapshotWaitsOutInFlightPublication(t *testing.T) {
	c, p, x, _ := newPubCluster(t, 2)
	writer, reader := c.MustHandle(0), c.MustHandle(1)
	started := make(chan struct{})
	finish := make(chan struct{})
	go func() {
		_ = writer.Publish(p, func() error {
			close(started)
			<-finish
			return writer.Write(x, 5)
		})
	}()
	<-started
	got := make(chan []int64, 1)
	go func() {
		vals, err := reader.Snapshot(p)
		if err != nil {
			t.Error(err)
		}
		got <- vals
	}()
	// The reader either raced ahead of the odd version (and then must
	// have seen the pristine value) or blocks until the publication
	// closes.
	received := false
	select {
	case v := <-got:
		received = true
		if v[0] != 0 {
			t.Errorf("snapshot during publication saw x=%d", v[0])
		}
	case <-time.After(50 * time.Millisecond):
	}
	close(finish)
	if !received {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("snapshot never completed after publication finished")
		}
	}
}

func TestPublishFromNonRootWriter(t *testing.T) {
	// The publication pattern works from any single writer, not just the
	// group root: GWC sequencing preserves the version-data-version order
	// regardless of where the writes originate.
	c, err := NewCluster(4)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("pub2", 0)
	if err != nil {
		t.Fatal(err)
	}
	x := g.Int("x")
	y := g.Int("y")
	p, err := g.Published("blk", x, y)
	if err != nil {
		t.Fatal(err)
	}
	writer := c.MustHandle(3) // far from the root
	for i := int64(1); i <= 30; i++ {
		i := i
		if err := writer.Publish(p, func() error {
			if err := writer.Write(x, i); err != nil {
				return err
			}
			return writer.Write(y, -i)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < 4; id++ {
		vals, err := c.MustHandle(id).SnapshotAfter(p, 60)
		if err != nil {
			t.Fatal(err)
		}
		if vals[0] != 30 || vals[1] != -30 {
			t.Errorf("node %d snapshot = %v, want [30 -30]", id, vals)
		}
	}
}

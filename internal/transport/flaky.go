package transport

import (
	"math/rand"
	"sync"
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// FaultPlan configures the Flaky wrapper's misbehaviour. Probabilities
// are per message, in [0,1].
type FaultPlan struct {
	// DropRate silently discards sent messages.
	DropRate float64
	// DupRate delivers a second copy of a message. The duplicate rolls
	// the delay dice independently, so it may arrive reordered behind
	// later traffic.
	DupRate float64
	// DelayRate holds a message back for Delay before delivery,
	// reordering it behind later traffic.
	DelayRate float64
	// CorruptRate flips one random bit in a message's encoded payload
	// before delivery, modeling transport-level bit rot. The corrupted
	// bytes are run back through the wire codec: a decode error counts
	// as caught (the frame is discarded like a drop, and the receiver's
	// NACK/retry machinery recovers it); a successful decode counts as
	// missed and the corrupted message is delivered — with CRC-trailed
	// frames that should never happen, which is exactly what the chaos
	// tests assert.
	CorruptRate float64
	// Delay is how long a delayed message is held.
	Delay time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Spare exempts message types from the probabilistic faults (empty
	// means none spared). NACKs are typically spared so loss recovery
	// itself stays reliable when testing data-plane faults. Crash and
	// partition faults ignore Spare: a dead node drops everything.
	Spare []wire.Type
	// DownOnly restricts faults to the root's retried down-path control
	// responses: the sequenced multicast (TSeqUpdate/TSeqLock, including
	// batch frames of them), which the GWC runtime repairs with
	// NACK-driven retransmission, plus the rejoin/sync answers
	// (TJoinAck/TSyncAck), which the requester re-requests every
	// maintenance tick. Up-path messages (update, lock request/release,
	// NACK, ack, join/sync requests) pass through untouched, matching
	// the paper's reliable member-to-root links.
	DownOnly bool
}

// downPlane reports whether m travels a root-to-member path the
// receiver's retry machinery repairs — a bare sequenced message, a
// whole batch frame of them, or a rejoin/sync answer.
func downPlane(m wire.Message) bool {
	t := m.Type
	if t == wire.TBatch && len(m.Batch) > 0 {
		t = m.Batch[0].Type
	}
	return t == wire.TSeqUpdate || t == wire.TSeqLock ||
		t == wire.TJoinAck || t == wire.TSyncAck
}

// spares reports whether the plan exempts t from probabilistic faults.
func (p FaultPlan) spares(t wire.Type) bool {
	for _, s := range p.Spare {
		if s == t {
			return true
		}
	}
	return false
}

// FaultEvent is one step of a scripted fault schedule: after After has
// elapsed (measured from Run), the listed actions apply.
type FaultEvent struct {
	// After is the delay from the start of the schedule.
	After time.Duration
	// Crash isolates these nodes (see Flaky.Crash).
	Crash []int
	// Revive reconnects these nodes.
	Revive []int
	// PartitionA/PartitionB cut the links between the two sides (both
	// empty means no partition change; see Flaky.Partition).
	PartitionA, PartitionB []int
	// Heal removes all partitions (crashed nodes stay crashed).
	Heal bool
}

// Flaky wraps a Network and injects faults on Send, to exercise the GWC
// runtime's sequence-gap detection, retransmission, and crash-failover
// machinery. Beyond the probabilistic faults of the FaultPlan it offers
// deterministic chaos primitives: Crash/Revive isolate whole nodes and
// Partition cuts the links between two sets of nodes.
type Flaky struct {
	inner Network
	plan  FaultPlan

	mu      sync.Mutex
	rng     *rand.Rand
	wg      sync.WaitGroup
	crashed map[int]bool
	cuts    map[[2]int]bool // partitioned (a,b) pairs, stored both ways

	dropped    int
	duplicated int
	delayed    int
	isolated   int // messages cut by crash/partition

	corrupted     int // bit-flips injected
	corruptCaught int // rejected by the codec checksum
	corruptMissed int // decoded cleanly and delivered corrupt
}

var _ Network = (*Flaky)(nil)

// NewFlaky wraps inner with the given fault plan.
func NewFlaky(inner Network, plan FaultPlan) *Flaky {
	return &Flaky{
		inner:   inner,
		plan:    plan,
		rng:     rand.New(rand.NewSource(plan.Seed)),
		crashed: make(map[int]bool),
		cuts:    make(map[[2]int]bool),
	}
}

// Size implements Network.
func (f *Flaky) Size() int { return f.inner.Size() }

// Endpoint implements Network.
func (f *Flaky) Endpoint(id int) (Endpoint, error) {
	ep, err := f.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{net: f, id: id, inner: ep}, nil
}

// Close implements Network. It waits for any delayed messages to flush.
func (f *Flaky) Close() error {
	f.wg.Wait()
	return f.inner.Close()
}

// Stats reports how many messages were dropped, duplicated, and delayed
// by the probabilistic faults.
func (f *Flaky) Stats() (dropped, duplicated, delayed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.duplicated, f.delayed
}

// TransportStats surfaces the wrapped network's transport counters when
// it keeps any (the TCP mesh does); a zero snapshot otherwise.
func (f *Flaky) TransportStats() obs.TransportStats {
	if ts, ok := f.inner.(interface{ TransportStats() obs.TransportStats }); ok {
		return ts.TransportStats()
	}
	return obs.TransportStats{}
}

// Corrupt sets the bit-flip corruption rate at runtime, so a soak can
// turn corruption on mid-workload (or off for a clean wind-down).
func (f *Flaky) Corrupt(rate float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.plan.CorruptRate = rate
}

// CorruptStats reports the corruption outcomes: injected bit-flips,
// frames the codec checksum caught (discarded and recovered by retry),
// and frames that decoded cleanly despite the flip (delivered corrupt
// — silent acceptance, which checksummed frames should make
// impossible).
func (f *Flaky) CorruptStats() (injected, caught, missed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.corrupted, f.corruptCaught, f.corruptMissed
}

// Isolated reports how many messages were cut by crashes or partitions.
func (f *Flaky) Isolated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.isolated
}

// Crash isolates a node: every message to or from it is silently
// dropped until Revive. The node's goroutines keep running (this is a
// network-level crash simulation), so a "revived" node models a
// rebooted machine rejoining with stale state.
func (f *Flaky) Crash(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed[node] = true
}

// Revive reconnects a crashed node. Reconnection restores links only;
// the node's protocol state is whatever it held at crash time, which
// after a long outage or a root failover is arbitrarily stale. A node
// that missed less than the root's retransmission window catches up by
// itself (NACK repair, or a snapshot once the root's heartbeat shows it
// has fallen past the window); a deposed ex-root is demoted and resyncs
// on first contact; and a revived member can be told to gwc.Rejoin to
// discard its stale state outright and be re-admitted at the current
// epoch — the path chaos tests should exercise for "rebooted machine"
// semantics.
func (f *Flaky) Revive(node int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.crashed, node)
}

// Partition cuts every link between the nodes of a and the nodes of b
// (both directions). Links within each side are unaffected. Partitions
// accumulate until Heal.
func (f *Flaky) Partition(a, b []int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			f.cuts[[2]int{x, y}] = true
			f.cuts[[2]int{y, x}] = true
		}
	}
}

// Heal removes all partitions. Crashed nodes stay crashed.
func (f *Flaky) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.cuts = make(map[[2]int]bool)
}

// Run plays a scripted fault schedule in the background and returns a
// channel that closes when the last event has fired.
func (f *Flaky) Run(schedule []FaultEvent) <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		start := time.Now()
		for _, ev := range schedule {
			if d := ev.After - time.Since(start); d > 0 {
				time.Sleep(d)
			}
			if ev.Heal {
				f.Heal()
			}
			for _, n := range ev.Crash {
				f.Crash(n)
			}
			for _, n := range ev.Revive {
				f.Revive(n)
			}
			if len(ev.PartitionA) > 0 || len(ev.PartitionB) > 0 {
				f.Partition(ev.PartitionA, ev.PartitionB)
			}
		}
	}()
	return done
}

// cut reports (under the lock) whether the link from -> to is severed by
// a crash or partition, counting the message if so.
func (f *Flaky) cut(from, to int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed[from] || f.crashed[to] || f.cuts[[2]int{from, to}] {
		f.isolated++
		return true
	}
	return false
}

// roll draws a uniform [0,1) sample under the lock.
func (f *Flaky) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// corruptRate reads the corruption rate under the lock; unlike the
// other plan fields it is mutable at runtime via Corrupt.
func (f *Flaky) corruptRate() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.plan.CorruptRate
}

type flakyEndpoint struct {
	net   *Flaky
	id    int
	inner Endpoint
}

// deliver sends one copy of m, rolling the delay dice first so both the
// original and any duplicate can be independently reordered.
func (e *flakyEndpoint) deliver(to int, m wire.Message) error {
	f := e.net
	if f.plan.DelayRate > 0 && f.roll() < f.plan.DelayRate {
		f.mu.Lock()
		f.delayed++
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			time.Sleep(f.plan.Delay)
			// Delivery into a closed mailbox is a benign race during
			// shutdown; the error is intentionally discarded.
			_ = e.inner.Send(to, m)
		}()
		return nil
	}
	return e.inner.Send(to, m)
}

func (e *flakyEndpoint) Send(to int, m wire.Message) error {
	f := e.net
	// Crashes and partitions sever the link outright: even spared types
	// cannot cross a dead wire.
	if f.cut(e.id, to) {
		return nil
	}
	if f.plan.spares(m.Type) {
		return e.inner.Send(to, m)
	}
	if f.plan.DownOnly && !downPlane(m) {
		return e.inner.Send(to, m)
	}
	if f.plan.DropRate > 0 && f.roll() < f.plan.DropRate {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		return nil
	}
	if r := f.corruptRate(); r > 0 && f.roll() < r {
		return e.corrupt(to, m)
	}
	if err := e.deliver(to, m); err != nil {
		return err
	}
	if f.plan.DupRate > 0 && f.roll() < f.plan.DupRate {
		f.mu.Lock()
		f.duplicated++
		f.mu.Unlock()
		return e.deliver(to, m)
	}
	return nil
}

// rawSender is the transport back door fault injection uses to put
// literal bytes on the wire: the TCP endpoints implement it, so a
// corrupted frame really crosses the socket and the remote reader's
// decode path — not a local simulation of it.
type rawSender interface {
	SendEncoded(to int, frame []byte) error
}

// corrupt encodes m, flips one random bit, and ships the damage. When
// the inner endpoint exposes a raw-bytes path (TCP), the corrupt frame
// is sent verbatim over the real wire and the receiver's decoder — with
// its DecodeErrors accounting and skip-or-reset classification — deals
// with it end to end. Otherwise (InProc, detsim pass structs around)
// the bytes are run back through the codec locally, faithfully modeling
// what a byte-stream receiver would see. Either way a decode error
// means the checksum caught the flip: the frame is discarded like a
// drop and the usual retry machinery recovers it. A clean decode means
// silent acceptance: the corrupted message is delivered, and the
// corruptMissed counter convicts the codec.
func (e *flakyEndpoint) corrupt(to int, m wire.Message) error {
	f := e.net
	buf := wire.Encode(nil, m)
	f.mu.Lock()
	bit := f.rng.Intn(len(buf) * 8)
	f.corrupted++
	f.mu.Unlock()
	buf[bit/8] ^= 1 << (bit % 8)
	// Classify locally either way, so CorruptStats stays comparable
	// between transports.
	dm, err := wire.Decode(buf)
	if err != nil {
		f.mu.Lock()
		f.corruptCaught++
		f.mu.Unlock()
	} else {
		f.mu.Lock()
		f.corruptMissed++
		f.mu.Unlock()
	}
	if rs, ok := e.inner.(rawSender); ok {
		return rs.SendEncoded(to, buf)
	}
	if err != nil {
		return nil
	}
	return e.deliver(to, dm)
}

func (e *flakyEndpoint) Recv() (wire.Message, bool) { return e.inner.Recv() }

func (e *flakyEndpoint) Close() error { return e.inner.Close() }

package transport

import (
	"math/rand"
	"sync"
	"time"

	"optsync/internal/wire"
)

// FaultPlan configures the Flaky wrapper's misbehaviour. Probabilities
// are per message, in [0,1].
type FaultPlan struct {
	// DropRate silently discards sent messages.
	DropRate float64
	// DupRate delivers a second copy of a message.
	DupRate float64
	// DelayRate holds a message back for Delay before delivery,
	// reordering it behind later traffic.
	DelayRate float64
	// Delay is how long a delayed message is held.
	Delay time.Duration
	// Seed makes the fault sequence reproducible.
	Seed int64
	// Spare exempts a message type from faults (zero means none spared).
	// NACKs are typically spared so loss recovery itself stays reliable
	// when testing data-plane faults.
	Spare wire.Type
	// DownOnly restricts faults to the root's sequenced multicast
	// (TSeqUpdate/TSeqLock), the path the GWC runtime repairs with
	// NACK-driven retransmission. Up-path messages (update, lock
	// request/release, NACK) pass through untouched, matching the
	// paper's reliable member-to-root links.
	DownOnly bool
}

// Flaky wraps a Network and injects faults on Send, to exercise the GWC
// runtime's sequence-gap detection and retransmission.
type Flaky struct {
	inner Network
	plan  FaultPlan

	mu  sync.Mutex
	rng *rand.Rand
	wg  sync.WaitGroup

	dropped    int
	duplicated int
	delayed    int
}

var _ Network = (*Flaky)(nil)

// NewFlaky wraps inner with the given fault plan.
func NewFlaky(inner Network, plan FaultPlan) *Flaky {
	return &Flaky{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
	}
}

// Size implements Network.
func (f *Flaky) Size() int { return f.inner.Size() }

// Endpoint implements Network.
func (f *Flaky) Endpoint(id int) (Endpoint, error) {
	ep, err := f.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &flakyEndpoint{net: f, inner: ep}, nil
}

// Close implements Network. It waits for any delayed messages to flush.
func (f *Flaky) Close() error {
	f.wg.Wait()
	return f.inner.Close()
}

// Stats reports how many messages were dropped, duplicated, and delayed.
func (f *Flaky) Stats() (dropped, duplicated, delayed int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped, f.duplicated, f.delayed
}

// roll draws a uniform [0,1) sample under the lock.
func (f *Flaky) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

type flakyEndpoint struct {
	net   *Flaky
	inner Endpoint
}

func (e *flakyEndpoint) Send(to int, m wire.Message) error {
	f := e.net
	if f.plan.Spare != 0 && m.Type == f.plan.Spare {
		return e.inner.Send(to, m)
	}
	if f.plan.DownOnly && m.Type != wire.TSeqUpdate && m.Type != wire.TSeqLock {
		return e.inner.Send(to, m)
	}
	if f.plan.DropRate > 0 && f.roll() < f.plan.DropRate {
		f.mu.Lock()
		f.dropped++
		f.mu.Unlock()
		return nil
	}
	if f.plan.DelayRate > 0 && f.roll() < f.plan.DelayRate {
		f.mu.Lock()
		f.delayed++
		f.mu.Unlock()
		f.wg.Add(1)
		go func() {
			defer f.wg.Done()
			time.Sleep(f.plan.Delay)
			// Delivery into a closed mailbox is a benign race during
			// shutdown; the error is intentionally discarded.
			_ = e.inner.Send(to, m)
		}()
		return nil
	}
	if err := e.inner.Send(to, m); err != nil {
		return err
	}
	if f.plan.DupRate > 0 && f.roll() < f.plan.DupRate {
		f.mu.Lock()
		f.duplicated++
		f.mu.Unlock()
		return e.inner.Send(to, m)
	}
	return nil
}

func (e *flakyEndpoint) Recv() (wire.Message, bool) { return e.inner.Recv() }

func (e *flakyEndpoint) Close() error { return e.inner.Close() }

package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// TCPNet is a full mesh of TCP connections between the cluster's nodes,
// created within one process (use Join to attach a node from its own
// process). Listener addresses may use port 0; the actual ports are
// resolved before any endpoint is returned.
//
// Links are multiplexed per node pair, not per group: one writer
// goroutine and (at most) one connection carry every group's traffic
// between two nodes, and a dialed connection identifies itself with a
// hello preamble so the acceptor can adopt it as the shared duplex link
// instead of dialing a second socket back.
type TCPNet struct {
	addrs []string
	eps   []*tcpEndpoint
	stats *tcpStats
}

var _ Network = (*TCPNet)(nil)

// NewTCP listens on every address and wires up an n-node TCP mesh.
func NewTCP(addrs []string) (*TCPNet, error) {
	if len(addrs) < 1 {
		return nil, fmt.Errorf("transport: tcp network needs >= 1 address")
	}
	listeners := make([]net.Listener, len(addrs))
	actual := make([]string, len(addrs))
	for i, a := range addrs {
		ln, err := net.Listen("tcp", a)
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("transport: listen %s: %w", a, err)
		}
		listeners[i] = ln
		actual[i] = ln.Addr().String()
	}
	stats := &tcpStats{}
	n := &TCPNet{addrs: actual, eps: make([]*tcpEndpoint, len(addrs)), stats: stats}
	for i, ln := range listeners {
		n.eps[i] = newTCPEndpoint(i, ln, actual, stats)
	}
	return n, nil
}

// Join attaches node id to a multi-process cluster whose node addresses
// are fixed in advance (no port 0). The caller owns the returned endpoint.
func Join(id int, addrs []string) (Endpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: join id %d out of range [0,%d)", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	return newTCPEndpoint(id, ln, addrs, &tcpStats{}), nil
}

// Size implements Network.
func (t *TCPNet) Size() int { return len(t.eps) }

// Endpoint implements Network.
func (t *TCPNet) Endpoint(id int) (Endpoint, error) {
	if id < 0 || id >= len(t.eps) {
		return nil, fmt.Errorf("transport: endpoint %d out of range [0,%d)", id, len(t.eps))
	}
	return t.eps[id], nil
}

// Close implements Network.
func (t *TCPNet) Close() error {
	var first error
	for _, ep := range t.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TransportStats snapshots the mesh-wide transport counters.
func (t *TCPNet) TransportStats() obs.TransportStats { return t.stats.snapshot() }

// tcpStats are the transport's live counters, shared by every endpoint
// of one Network (a Join endpoint carries its own).
type tcpStats struct {
	framesSent   atomic.Uint64
	bytesSent    atomic.Uint64
	writevs      atomic.Uint64
	framesRecv   atomic.Uint64
	decodeErrors atomic.Uint64
	connResets   atomic.Uint64
	sendDrops    atomic.Uint64
	dials        atomic.Uint64
	linksAdopted atomic.Uint64
}

func (s *tcpStats) snapshot() obs.TransportStats {
	return obs.TransportStats{
		FramesSent:   s.framesSent.Load(),
		BytesSent:    s.bytesSent.Load(),
		Writevs:      s.writevs.Load(),
		FramesRecv:   s.framesRecv.Load(),
		DecodeErrors: s.decodeErrors.Load(),
		ConnResets:   s.connResets.Load(),
		SendDrops:    s.sendDrops.Load(),
		Dials:        s.dials.Load(),
		LinksAdopted: s.linksAdopted.Load(),
	}
}

// The hello preamble a dialer writes before its first frame: magic,
// version, the dialer's node id, and a CRC32C over the rest. It lets the
// acceptor attribute the connection to a peer and adopt it as the
// shared duplex link (multiplexing), and rejects strangers that happen
// to connect to the port.
const helloSize = 8 + 4 + 4

var (
	helloMagic = [8]byte{'o', 'p', 't', 's', 'y', 'n', 'c', '2'}
	helloTable = crc32.MakeTable(crc32.Castagnoli)
)

func putHello(b *[helloSize]byte, id int) {
	copy(b[:8], helloMagic[:])
	binary.BigEndian.PutUint32(b[8:], uint32(id))
	binary.BigEndian.PutUint32(b[12:], crc32.Checksum(b[:12], helloTable))
}

func parseHello(b *[helloSize]byte) (id int, ok bool) {
	if [8]byte(b[:8]) != helloMagic {
		return 0, false
	}
	if binary.BigEndian.Uint32(b[12:]) != crc32.Checksum(b[:12], helloTable) {
		return 0, false
	}
	return int(binary.BigEndian.Uint32(b[8:])), true
}

// defaultOutboxBound caps a peer's outbox. A slow-but-alive peer sheds
// the oldest frames (counted as SendDrops) instead of growing resident
// memory without limit; the GWC layer's sequence numbers and NACK/retry
// recovery repair the shed frames exactly like network loss. The bound
// comfortably covers the root's retransmit window (wire.MaxBatch).
const defaultOutboxBound = 2 * wire.MaxBatch

// outMsg is one outbox entry: a message for the writer to encode, or —
// on the raw path fault injectors use — a pre-encoded frame shipped
// verbatim.
type outMsg struct {
	m   wire.Message
	raw []byte
}

// tcpEndpoint is one node's listener, inbox, and outgoing peer links.
type tcpEndpoint struct {
	id       int
	addrs    []string
	ln       net.Listener
	inbox    *mailbox[wire.Message]
	stats    *tcpStats
	outBound int // outbox cap for newly created peers (tests shrink it)

	mu      sync.Mutex
	peers   map[int]*tcpPeer
	inbound []net.Conn
	closed  bool
	wg      sync.WaitGroup
}

func newTCPEndpoint(id int, ln net.Listener, addrs []string, stats *tcpStats) *tcpEndpoint {
	ep := &tcpEndpoint{
		id:       id,
		addrs:    append([]string(nil), addrs...),
		ln:       ln,
		inbox:    newMailbox[wire.Message](),
		stats:    stats,
		outBound: defaultOutboxBound,
		peers:    make(map[int]*tcpPeer),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep
}

// acceptLoop turns every inbound connection into a frame reader feeding
// the inbox. The dialer's hello preamble names the remote node, so the
// connection can double as the outgoing link to that peer (adoption).
func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.inbound = append(ep.inbound, conn)
		ep.mu.Unlock()
		ep.wg.Add(1)
		go ep.readLoop(conn)
	}
}

// readLoop drives one inbound connection: validate the hello, offer the
// connection to the peer's writer as the shared duplex link, then decode
// frames until the connection dies — or until a decode error proves the
// stream framing can no longer be trusted, in which case the reader
// resets the link proactively (ConnResets) so the remote redials at
// once instead of black-holing frames into a dead socket. Frame-local
// corruption (wire.ErrCorruptFrame) only skips the one frame: the
// framing is still synchronized, later frames on the connection are
// fine, and the GWC layer recovers the skipped frame via NACK/retry.
func (ep *tcpEndpoint) readLoop(conn net.Conn) {
	defer ep.wg.Done()
	defer func() { _ = conn.Close() }()
	r := bufio.NewReader(conn)
	var hello [helloSize]byte
	if _, err := io.ReadFull(r, hello[:]); err != nil {
		return
	}
	from, ok := parseHello(&hello)
	if !ok {
		return // a stranger, not a cluster peer
	}
	if from >= 0 && from < len(ep.addrs) && from != ep.id {
		ep.adopt(from, conn)
	}
	ep.frameLoop(r, conn)
}

// frameLoop decodes frames off a connection — inbound or dialed (a
// dialed connection carries the peer's traffic back once the remote
// adopts it) — until it dies or the framing desynchronizes.
func (ep *tcpEndpoint) frameLoop(r *bufio.Reader, conn net.Conn) {
	for {
		m, err := wire.ReadFrom(r)
		if err != nil {
			if errors.Is(err, wire.ErrCorruptFrame) {
				ep.stats.decodeErrors.Add(1)
				continue
			}
			if !isConnError(err) {
				// Desync-class decode failure on a live connection:
				// count it and reset the link (the deferred close in our
				// caller); the remote's next write fails immediately and
				// it redials.
				ep.stats.decodeErrors.Add(1)
				ep.stats.connResets.Add(1)
			}
			return
		}
		ep.stats.framesRecv.Add(1)
		if err := ep.inbox.put(m); err != nil {
			return // endpoint closed
		}
	}
}

// isConnError reports whether err is connection death (remote close,
// torn frame on a dying socket, local shutdown) rather than a decode
// failure on a live stream.
func isConnError(err error) bool {
	var ne net.Error
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed) || errors.As(err, &ne)
}

// adopt offers an identified inbound connection to the peer's writer as
// the outgoing link, creating the peer if the first contact was inbound.
func (ep *tcpEndpoint) adopt(from int, conn net.Conn) {
	p, err := ep.peer(from)
	if err != nil {
		return
	}
	if p.offer(conn) {
		ep.stats.linksAdopted.Add(1)
	}
}

// peer returns the writer for node `to`, creating it on first use.
func (ep *tcpEndpoint) peer(to int) (*tcpPeer, error) {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if ep.closed {
		return nil, ErrClosed
	}
	p, ok := ep.peers[to]
	if !ok {
		p = newTCPPeer(ep, to)
		ep.peers[to] = p
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			p.writeLoop()
		}()
	}
	return p, nil
}

// Send implements Endpoint, dialing peers lazily and writing through a
// per-peer goroutine so a slow peer never blocks the caller.
func (ep *tcpEndpoint) Send(to int, m wire.Message) error {
	if to == ep.id {
		return ep.inbox.put(m)
	}
	if to < 0 || to >= len(ep.addrs) {
		return fmt.Errorf("transport: send to %d out of range [0,%d)", to, len(ep.addrs))
	}
	p, err := ep.peer(to)
	if err != nil {
		return err
	}
	return p.out.put(outMsg{m: m})
}

// SendEncoded ships a pre-encoded frame verbatim — fault injectors use
// it to put genuinely corrupt bytes on the real wire, something Send
// cannot do because it re-encodes. The frame is copied (the caller may
// reuse its buffer). A self-send runs through the decoder like a remote
// reader would, dropping (and counting) undecodable frames.
func (ep *tcpEndpoint) SendEncoded(to int, frame []byte) error {
	if to == ep.id {
		m, err := wire.Decode(frame)
		if err != nil {
			ep.stats.decodeErrors.Add(1)
			return nil
		}
		ep.stats.framesRecv.Add(1)
		return ep.inbox.put(m)
	}
	if to < 0 || to >= len(ep.addrs) {
		return fmt.Errorf("transport: send to %d out of range [0,%d)", to, len(ep.addrs))
	}
	p, err := ep.peer(to)
	if err != nil {
		return err
	}
	return p.out.put(outMsg{raw: append([]byte(nil), frame...)})
}

// TransportStats snapshots the endpoint's transport counters (shared
// with the whole mesh when the endpoint came from NewTCP).
func (ep *tcpEndpoint) TransportStats() obs.TransportStats { return ep.stats.snapshot() }

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv() (wire.Message, bool) { return ep.inbox.get() }

// Close implements Endpoint: stops the listener, peer writers, and inbox,
// then waits for all endpoint goroutines to exit.
func (ep *tcpEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	peers := make([]*tcpPeer, 0, len(ep.peers))
	for _, p := range ep.peers {
		peers = append(peers, p)
	}
	inbound := ep.inbound
	ep.inbound = nil
	ep.mu.Unlock()

	err := ep.ln.Close()
	for _, c := range inbound {
		_ = c.Close() // unblock the frame readers
	}
	for _, p := range peers {
		p.close()
	}
	ep.inbox.close()
	ep.wg.Wait()
	return err
}

// Reconnect backoff bounds: after a failed dial the peer waits
// base<<fails (capped at dialBackoffMax) plus up to 25% jitter before
// trying again; a successful dial resets the backoff. The peer is never
// marked dead — a crashed-and-restarted node becomes reachable again as
// soon as its listener returns.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// chunkSize bounds one pooled writev chunk. A drained outbox encodes
// into as few chunks as fit — frames laid flat, contiguous end-to-end —
// and the chunk list ships as one vectored write.
const chunkSize = 64 << 10

// chunkPool recycles writev chunk buffers across peers.
var chunkPool = sync.Pool{New: func() any {
	b := make([]byte, 0, chunkSize)
	return &b
}}

// tcpPeer is one outgoing link: a bounded outbox drained whole by a
// writer goroutine into vectored writes.
type tcpPeer struct {
	ep   *tcpEndpoint
	to   int
	addr string
	out  *mailbox[outMsg]

	// conn is shared between the writer goroutine, link adoption (the
	// acceptor installing an inbound connection), and close; it lives
	// under mu. Everything below the RNG line is reconnect state owned
	// exclusively by the writer goroutine — dial and its backoff
	// bookkeeping only ever run on writeLoop's stack, so they need no
	// lock, but they must never migrate under mu-free access from
	// another goroutine.
	mu     sync.Mutex
	conn   net.Conn
	closed bool

	// rng drives the dial jitter: per-peer and deterministically seeded
	// (like the gwc retry backoff's per-node rng), so reconnect storms
	// decorrelate without contending on the global math/rand lock.
	rng      *rand.Rand
	fails    int
	nextDial time.Time
}

func newTCPPeer(ep *tcpEndpoint, to int) *tcpPeer {
	// Seeded like the gwc retry backoff's per-node rng (Knuth
	// multiplicative hash of the identity), folded over both ends of the
	// link so every peer pair jitters differently but reproducibly.
	seed := (int64(ep.id)*2654435761+int64(to))*2654435761 + 1
	return &tcpPeer{
		ep:   ep,
		to:   to,
		addr: ep.addrs[to],
		out:  newBoundedMailbox[outMsg](ep.outBound, &ep.stats.sendDrops),
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// writeLoop drains the whole outbox per wakeup, encodes the drained
// frames flat into pooled chunks, and ships the chunk list as one
// vectored write (writev) — no per-message syscalls, no lingering
// userspace buffer to hide a dead connection behind: a write error
// surfaces on the very batch that hit it and resets the link. Messages
// drained while the link is down and still backing off are dropped; the
// GWC layer's retry timers and sequence numbers detect and repair the
// loss.
func (p *tcpPeer) writeLoop() {
	var spare []outMsg
	var owned []*[]byte  // pooled chunk buffers of the current batch
	var bufs net.Buffers // writev view of owned (consumed by WriteTo)
	for {
		batch, ok := p.out.drain(spare)
		if !ok {
			p.mu.Lock()
			if p.conn != nil {
				_ = p.conn.Close()
			}
			p.mu.Unlock()
			return
		}
		spare = batch
		conn := p.connLocked()
		if conn == nil {
			var err error
			if conn, err = p.dial(); err != nil {
				continue // drop the batch; retry/NACK recovery handles it
			}
		}

		// Lay the batch out flat: frames contiguous end-to-end within
		// each chunk, a new chunk only when the current one is full.
		var frames, nbytes uint64
		cur := chunkPool.Get().(*[]byte)
		for i := range batch {
			om := &batch[i]
			need := len(om.raw)
			if om.raw == nil {
				need = wire.EncodedLen(om.m)
			}
			if len(*cur)+need > cap(*cur) && len(*cur) > 0 {
				owned = append(owned, cur)
				cur = chunkPool.Get().(*[]byte)
			}
			if om.raw != nil {
				*cur = append(*cur, om.raw...)
				om.raw = nil // recycled via spare; release the bytes
			} else {
				*cur = wire.Encode(*cur, om.m)
			}
			frames++
			nbytes += uint64(need)
		}
		owned = append(owned, cur)

		bufs = bufs[:0]
		for _, c := range owned {
			if len(*c) > 0 {
				bufs = append(bufs, *c)
			}
		}
		var err error
		if len(bufs) > 0 {
			_, err = bufs.WriteTo(conn)
		}
		for i, c := range owned {
			*c = (*c)[:0]
			chunkPool.Put(c)
			owned[i] = nil
		}
		owned = owned[:0]
		if err != nil {
			p.resetConn()
			continue
		}
		p.ep.stats.writevs.Add(1)
		p.ep.stats.framesSent.Add(frames)
		p.ep.stats.bytesSent.Add(nbytes)
	}
}

func (p *tcpPeer) connLocked() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

// offer installs an adopted inbound connection as the outgoing link if
// the peer has none, multiplexing both directions over one socket.
func (p *tcpPeer) offer(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed || p.conn != nil {
		return false
	}
	p.conn = conn
	return true
}

func (p *tcpPeer) resetConn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// dial attempts one connection, honouring the exponential backoff from
// previous failures. While the backoff window is open it fails fast so a
// down peer cannot stall the writer behind one-second dial timeouts. A
// successful dial writes the hello preamble so the acceptor can adopt
// the connection for its own traffic back to us.
func (p *tcpPeer) dial() (net.Conn, error) {
	if !p.nextDial.IsZero() && time.Now().Before(p.nextDial) {
		return nil, fmt.Errorf("transport: dial %s: backing off", p.addr)
	}
	conn, err := net.DialTimeout("tcp", p.addr, time.Second)
	if err == nil {
		var hello [helloSize]byte
		putHello(&hello, p.ep.id)
		if _, werr := conn.Write(hello[:]); werr != nil {
			_ = conn.Close()
			err = werr
		}
	}
	if err == nil {
		p.fails = 0
		p.nextDial = time.Time{}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			_ = conn.Close()
			return nil, ErrClosed
		}
		if p.conn != nil {
			// Link adoption raced the dial and won; keep the adopted
			// duplex link and discard the fresh socket.
			adopted := p.conn
			p.mu.Unlock()
			_ = conn.Close()
			return adopted, nil
		}
		p.conn = conn
		p.mu.Unlock()
		p.ep.stats.dials.Add(1)
		// The link is duplex: the remote adopts it for its traffic back
		// to us, so the dialer reads frames off it too. (The wg.Add is
		// safe against Close's Wait because the writer goroutine calling
		// dial is itself wg-tracked, holding the counter above zero.)
		p.ep.wg.Add(1)
		go func() {
			defer p.ep.wg.Done()
			defer func() { _ = conn.Close() }()
			p.ep.frameLoop(bufio.NewReader(conn), conn)
		}()
		return conn, nil
	}
	backoff := dialBackoffBase << p.fails
	if backoff > dialBackoffMax {
		backoff = dialBackoffMax
	} else if p.fails < 20 {
		p.fails++
	}
	// Jitter up to 25% so a mesh of reconnecting peers does not dial a
	// recovering node in lockstep.
	backoff += time.Duration(p.rng.Int63n(int64(backoff)/4 + 1))
	p.nextDial = time.Now().Add(backoff)
	return nil, fmt.Errorf("transport: dial %s: %w", p.addr, err)
}

func (p *tcpPeer) close() {
	p.mu.Lock()
	p.closed = true
	if p.conn != nil {
		// Unblock a writer stalled mid-write against a wedged peer; its
		// WriteTo fails immediately and writeLoop exits via the closed
		// outbox. (writeLoop's own exit path tolerates the double close.)
		_ = p.conn.Close()
	}
	p.mu.Unlock()
	p.out.close()
}

package transport

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"

	"optsync/internal/wire"
)

// TCPNet is a full mesh of TCP connections between the cluster's nodes,
// created within one process (use Join to attach a node from its own
// process). Listener addresses may use port 0; the actual ports are
// resolved before any endpoint is returned.
type TCPNet struct {
	addrs []string
	eps   []*tcpEndpoint
}

var _ Network = (*TCPNet)(nil)

// NewTCP listens on every address and wires up an n-node TCP mesh.
func NewTCP(addrs []string) (*TCPNet, error) {
	if len(addrs) < 1 {
		return nil, fmt.Errorf("transport: tcp network needs >= 1 address")
	}
	listeners := make([]net.Listener, len(addrs))
	actual := make([]string, len(addrs))
	for i, a := range addrs {
		ln, err := net.Listen("tcp", a)
		if err != nil {
			for _, l := range listeners[:i] {
				_ = l.Close()
			}
			return nil, fmt.Errorf("transport: listen %s: %w", a, err)
		}
		listeners[i] = ln
		actual[i] = ln.Addr().String()
	}
	n := &TCPNet{addrs: actual, eps: make([]*tcpEndpoint, len(addrs))}
	for i, ln := range listeners {
		n.eps[i] = newTCPEndpoint(i, ln, actual)
	}
	return n, nil
}

// Join attaches node id to a multi-process cluster whose node addresses
// are fixed in advance (no port 0). The caller owns the returned endpoint.
func Join(id int, addrs []string) (Endpoint, error) {
	if id < 0 || id >= len(addrs) {
		return nil, fmt.Errorf("transport: join id %d out of range [0,%d)", id, len(addrs))
	}
	ln, err := net.Listen("tcp", addrs[id])
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addrs[id], err)
	}
	return newTCPEndpoint(id, ln, addrs), nil
}

// Size implements Network.
func (t *TCPNet) Size() int { return len(t.eps) }

// Endpoint implements Network.
func (t *TCPNet) Endpoint(id int) (Endpoint, error) {
	if id < 0 || id >= len(t.eps) {
		return nil, fmt.Errorf("transport: endpoint %d out of range [0,%d)", id, len(t.eps))
	}
	return t.eps[id], nil
}

// Close implements Network.
func (t *TCPNet) Close() error {
	var first error
	for _, ep := range t.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// tcpEndpoint is one node's listener, inbox, and outgoing peer links.
type tcpEndpoint struct {
	id    int
	addrs []string
	ln    net.Listener
	inbox *mailbox

	mu      sync.Mutex
	peers   map[int]*tcpPeer
	inbound []net.Conn
	closed  bool
	wg      sync.WaitGroup
}

func newTCPEndpoint(id int, ln net.Listener, addrs []string) *tcpEndpoint {
	ep := &tcpEndpoint{
		id:    id,
		addrs: append([]string(nil), addrs...),
		ln:    ln,
		inbox: newMailbox(),
		peers: make(map[int]*tcpPeer),
	}
	ep.wg.Add(1)
	go ep.acceptLoop()
	return ep
}

// acceptLoop turns every inbound connection into a frame reader feeding
// the inbox. The sender's identity travels in each message's Src field,
// so no handshake is needed.
func (ep *tcpEndpoint) acceptLoop() {
	defer ep.wg.Done()
	for {
		conn, err := ep.ln.Accept()
		if err != nil {
			return // listener closed
		}
		ep.mu.Lock()
		if ep.closed {
			ep.mu.Unlock()
			_ = conn.Close()
			return
		}
		ep.inbound = append(ep.inbound, conn)
		ep.mu.Unlock()
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			defer func() { _ = conn.Close() }()
			r := bufio.NewReader(conn)
			for {
				m, err := wire.ReadFrom(r)
				if err != nil {
					if err != io.EOF {
						// A torn frame on a dying connection; the GWC
						// layer recovers lost messages via NACK.
						_ = err
					}
					return
				}
				if err := ep.inbox.put(m); err != nil {
					return // endpoint closed
				}
			}
		}()
	}
}

// Send implements Endpoint, dialing peers lazily and writing through a
// per-peer goroutine so a slow peer never blocks the caller.
func (ep *tcpEndpoint) Send(to int, m wire.Message) error {
	if to == ep.id {
		return ep.inbox.put(m)
	}
	if to < 0 || to >= len(ep.addrs) {
		return fmt.Errorf("transport: send to %d out of range [0,%d)", to, len(ep.addrs))
	}
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return ErrClosed
	}
	peer, ok := ep.peers[to]
	if !ok {
		peer = &tcpPeer{addr: ep.addrs[to], out: newMailbox()}
		ep.peers[to] = peer
		ep.wg.Add(1)
		go func() {
			defer ep.wg.Done()
			peer.writeLoop()
		}()
	}
	ep.mu.Unlock()
	return peer.out.put(m)
}

// Recv implements Endpoint.
func (ep *tcpEndpoint) Recv() (wire.Message, bool) { return ep.inbox.get() }

// Close implements Endpoint: stops the listener, peer writers, and inbox,
// then waits for all endpoint goroutines to exit.
func (ep *tcpEndpoint) Close() error {
	ep.mu.Lock()
	if ep.closed {
		ep.mu.Unlock()
		return nil
	}
	ep.closed = true
	peers := make([]*tcpPeer, 0, len(ep.peers))
	for _, p := range ep.peers {
		peers = append(peers, p)
	}
	inbound := ep.inbound
	ep.inbound = nil
	ep.mu.Unlock()

	err := ep.ln.Close()
	for _, c := range inbound {
		_ = c.Close() // unblock the frame readers
	}
	for _, p := range peers {
		p.close()
	}
	ep.inbox.close()
	ep.wg.Wait()
	return err
}

// Reconnect backoff bounds: after a failed dial the peer waits
// base<<fails (capped at dialBackoffMax) plus up to 25% jitter before
// trying again; a successful dial resets the backoff. The peer is never
// marked dead — a crashed-and-restarted node becomes reachable again as
// soon as its listener returns.
const (
	dialBackoffBase = 10 * time.Millisecond
	dialBackoffMax  = 2 * time.Second
)

// tcpPeer is one outgoing link: an unbounded outbox drained by a writer
// goroutine.
type tcpPeer struct {
	addr string
	out  *mailbox

	mu   sync.Mutex
	conn net.Conn

	// Reconnect state, only touched by the writer goroutine.
	fails    int
	nextDial time.Time
}

// writeLoop drains the outbox onto the connection, dialing on demand
// with exponential backoff. Messages that arrive while the link is down
// and still backing off are dropped; the GWC layer's retry timers and
// sequence numbers detect and repair the loss.
func (p *tcpPeer) writeLoop() {
	var w *bufio.Writer
	for {
		m, ok := p.out.get()
		if !ok {
			p.mu.Lock()
			if p.conn != nil {
				_ = p.conn.Close()
			}
			p.mu.Unlock()
			return
		}
		if p.connLocked() == nil {
			if err := p.dial(); err != nil {
				continue // drop; retry/NACK recovery handles it
			}
			w = bufio.NewWriter(p.connLocked())
		}
		if err := wire.WriteTo(w, m); err != nil {
			p.resetConn()
			w = nil
			continue
		}
		// Flush when the outbox drains so batches of messages share
		// syscalls but nothing lingers.
		if p.out.len() == 0 {
			if err := w.Flush(); err != nil {
				p.resetConn()
				w = nil
			}
		}
	}
}

func (p *tcpPeer) connLocked() net.Conn {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.conn
}

func (p *tcpPeer) resetConn() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil {
		_ = p.conn.Close()
		p.conn = nil
	}
}

// dial attempts one connection, honouring the exponential backoff from
// previous failures. While the backoff window is open it fails fast so a
// down peer cannot stall the writer behind one-second dial timeouts.
func (p *tcpPeer) dial() error {
	if !p.nextDial.IsZero() && time.Now().Before(p.nextDial) {
		return fmt.Errorf("transport: dial %s: backing off", p.addr)
	}
	conn, err := net.DialTimeout("tcp", p.addr, time.Second)
	if err == nil {
		p.fails = 0
		p.nextDial = time.Time{}
		p.mu.Lock()
		p.conn = conn
		p.mu.Unlock()
		return nil
	}
	backoff := dialBackoffBase << p.fails
	if backoff > dialBackoffMax {
		backoff = dialBackoffMax
	} else if p.fails < 20 {
		p.fails++
	}
	// Jitter up to 25% so a mesh of reconnecting peers does not dial a
	// recovering node in lockstep.
	backoff += time.Duration(rand.Int63n(int64(backoff)/4 + 1))
	p.nextDial = time.Now().Add(backoff)
	return fmt.Errorf("transport: dial %s: %w", p.addr, err)
}

func (p *tcpPeer) close() {
	p.out.close()
}

// len reports the queue depth (used to decide when to flush).
func (mb *mailbox) len() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue)
}

// Package transport moves wire messages between the nodes of a live GWC
// cluster. Three implementations are provided:
//
//   - InProc: goroutine-to-goroutine delivery through unbounded mailboxes,
//     the default for single-process clusters and tests.
//   - TCP: a full mesh of TCP connections with the wire codec, for
//     clusters spanning processes or hosts.
//   - Flaky: a fault-injecting wrapper (drop, duplicate, reorder) used to
//     exercise the runtime's gap detection and retransmission.
//
// In Sesame the spanning-tree interfaces route, sequence, and retransmit
// sharing messages in hardware; here the transport provides point-to-point
// delivery and the gwc package implements sequencing and retransmission in
// software (the substitution is recorded in DESIGN.md).
package transport

import (
	"errors"
	"fmt"
	"sync"

	"optsync/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Send delivers m to node `to`. It must not block indefinitely on a
	// slow receiver (the GWC root fans out to every member; a blocking
	// fanout could deadlock the sequencer).
	Send(to int, m wire.Message) error
	// Recv blocks until a message arrives or the endpoint closes, in
	// which case ok is false.
	Recv() (m wire.Message, ok bool)
	// Close shuts the endpoint; pending and future Recv calls return
	// ok=false.
	Close() error
}

// Network hands out the endpoints of an n-node cluster.
type Network interface {
	// Size is the number of nodes.
	Size() int
	// Endpoint returns node id's endpoint. Each node must call this
	// exactly once.
	Endpoint(id int) (Endpoint, error)
	// Close shuts the whole network down.
	Close() error
}

// mailbox is an unbounded FIFO with blocking receive. The unbounded
// buffer is deliberate: the group root multicasts every sequenced write
// to every member, and bounding the queue would let one slow member block
// the sequencer for the whole group (the paper's hardware interfaces
// buffer in memory for the same reason).
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []wire.Message
	closed bool
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m wire.Message) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox) get() (wire.Message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for len(mb.queue) == 0 && !mb.closed {
		mb.cond.Wait()
	}
	if len(mb.queue) == 0 {
		return wire.Message{}, false
	}
	m := mb.queue[0]
	mb.queue = mb.queue[1:]
	return m, true
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// InProc is an in-process network: node i's sends go straight into node
// j's mailbox.
type InProc struct {
	boxes []*mailbox
}

var _ Network = (*InProc)(nil)

// NewInProc builds an in-process network for n nodes.
func NewInProc(n int) (*InProc, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: in-proc network needs >= 1 node, got %d", n)
	}
	boxes := make([]*mailbox, n)
	for i := range boxes {
		boxes[i] = newMailbox()
	}
	return &InProc{boxes: boxes}, nil
}

// Size implements Network.
func (p *InProc) Size() int { return len(p.boxes) }

// Endpoint implements Network.
func (p *InProc) Endpoint(id int) (Endpoint, error) {
	if id < 0 || id >= len(p.boxes) {
		return nil, fmt.Errorf("transport: endpoint %d out of range [0,%d)", id, len(p.boxes))
	}
	return &inProcEndpoint{net: p, id: id}, nil
}

// Close implements Network.
func (p *InProc) Close() error {
	for _, b := range p.boxes {
		b.close()
	}
	return nil
}

type inProcEndpoint struct {
	net *InProc
	id  int
}

func (e *inProcEndpoint) Send(to int, m wire.Message) error {
	if to < 0 || to >= len(e.net.boxes) {
		return fmt.Errorf("transport: send to %d out of range [0,%d)", to, len(e.net.boxes))
	}
	return e.net.boxes[to].put(m)
}

func (e *inProcEndpoint) Recv() (wire.Message, bool) {
	return e.net.boxes[e.id].get()
}

func (e *inProcEndpoint) Close() error {
	e.net.boxes[e.id].close()
	return nil
}

// Package transport moves wire messages between the nodes of a live GWC
// cluster. Three implementations are provided:
//
//   - InProc: goroutine-to-goroutine delivery through unbounded mailboxes,
//     the default for single-process clusters and tests.
//   - TCP: a full mesh of TCP connections with the wire codec, for
//     clusters spanning processes or hosts.
//   - Flaky: a fault-injecting wrapper (drop, duplicate, reorder) used to
//     exercise the runtime's gap detection and retransmission.
//
// In Sesame the spanning-tree interfaces route, sequence, and retransmit
// sharing messages in hardware; here the transport provides point-to-point
// delivery and the gwc package implements sequencing and retransmission in
// software (the substitution is recorded in DESIGN.md).
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"optsync/internal/wire"
)

// ErrClosed is returned by operations on a closed endpoint.
var ErrClosed = errors.New("transport: endpoint closed")

// Endpoint is one node's attachment to the network.
type Endpoint interface {
	// Send delivers m to node `to`. It must not block indefinitely on a
	// slow receiver (the GWC root fans out to every member; a blocking
	// fanout could deadlock the sequencer).
	Send(to int, m wire.Message) error
	// Recv blocks until a message arrives or the endpoint closes, in
	// which case ok is false.
	Recv() (m wire.Message, ok bool)
	// Close shuts the endpoint; pending and future Recv calls return
	// ok=false.
	Close() error
}

// Network hands out the endpoints of an n-node cluster.
type Network interface {
	// Size is the number of nodes.
	Size() int
	// Endpoint returns node id's endpoint. Each node must call this
	// exactly once.
	Endpoint(id int) (Endpoint, error)
	// Close shuts the whole network down.
	Close() error
}

// mailbox is a FIFO with blocking receive, unbounded by default. The
// unbounded default is deliberate: the group root multicasts every
// sequenced write to every member, and blocking the producer on a full
// queue would let one slow member block the sequencer for the whole
// group (the paper's hardware interfaces buffer in memory for the same
// reason). Where unbounded growth is a liability instead — a TCP peer's
// outbox behind a dead-slow link — newBoundedMailbox caps the queue and
// sheds the oldest entries, which the GWC layer's NACK/retry recovery
// treats exactly like network loss. "A slow peer never blocks the
// caller" holds either way; only the memory story differs.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	closed bool

	// The live entries are queue[head:]. Popping advances head instead
	// of re-slicing the front (queue = queue[1:] permanently forfeits
	// the popped slot's capacity, so a steady-state consumer would
	// reallocate the backing array on every lap); put compacts the live
	// tail down to index 0 only when append would otherwise grow the
	// array, which amortizes to O(1) copies per element.
	queue []T
	head  int

	// bound caps the live entry count (0 = unbounded); overflow evicts
	// the oldest entries and counts them into drops.
	bound int
	drops *atomic.Uint64
}

func newMailbox[T any]() *mailbox[T] {
	mb := &mailbox[T]{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

// newBoundedMailbox builds a mailbox that holds at most bound entries,
// dropping the oldest on overflow and counting each eviction into drops.
func newBoundedMailbox[T any](bound int, drops *atomic.Uint64) *mailbox[T] {
	mb := newMailbox[T]()
	mb.bound = bound
	mb.drops = drops
	return mb
}

func (mb *mailbox[T]) put(m T) error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.closed {
		return ErrClosed
	}
	if live := len(mb.queue) - mb.head; mb.bound > 0 && live >= mb.bound {
		// Shed an eighth of the queue at once so the eviction cost
		// amortizes to O(1) per put even when the queue stays saturated.
		evict := max(1, mb.bound/8)
		if evict > live {
			evict = live
		}
		var zero T
		for i := mb.head; i < mb.head+evict; i++ {
			mb.queue[i] = zero
		}
		mb.head += evict
		mb.drops.Add(uint64(evict))
	}
	if len(mb.queue) == cap(mb.queue) && mb.head > 0 {
		// Reclaim the popped prefix before append would grow the array.
		n := copy(mb.queue, mb.queue[mb.head:])
		clear(mb.queue[n:])
		mb.queue = mb.queue[:n]
		mb.head = 0
	}
	mb.queue = append(mb.queue, m)
	mb.cond.Signal()
	return nil
}

func (mb *mailbox[T]) get() (T, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.head == len(mb.queue) && !mb.closed {
		mb.cond.Wait()
	}
	var zero T
	if mb.head == len(mb.queue) {
		return zero, false
	}
	m := mb.queue[mb.head]
	mb.queue[mb.head] = zero // release any references the slot held
	mb.head++
	if mb.head == len(mb.queue) {
		mb.queue = mb.queue[:0]
		mb.head = 0
	}
	return m, true
}

// drain blocks until the mailbox is non-empty (or closed), then hands
// the caller the whole queue in one swap. spare becomes the new backing
// queue, so a consumer that recycles the previous batch keeps the
// steady state allocation-free. ok is false once the mailbox is closed
// and emptied.
func (mb *mailbox[T]) drain(spare []T) (batch []T, ok bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for mb.head == len(mb.queue) && !mb.closed {
		mb.cond.Wait()
	}
	if mb.head == len(mb.queue) {
		return nil, false
	}
	batch = mb.queue[mb.head:]
	mb.queue = spare[:0]
	mb.head = 0
	return batch, true
}

func (mb *mailbox[T]) close() {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mb.closed = true
	mb.cond.Broadcast()
}

// InProc is an in-process network: node i's sends go straight into node
// j's mailbox.
type InProc struct {
	boxes []*mailbox[wire.Message]
}

var _ Network = (*InProc)(nil)

// NewInProc builds an in-process network for n nodes.
func NewInProc(n int) (*InProc, error) {
	if n < 1 {
		return nil, fmt.Errorf("transport: in-proc network needs >= 1 node, got %d", n)
	}
	boxes := make([]*mailbox[wire.Message], n)
	for i := range boxes {
		boxes[i] = newMailbox[wire.Message]()
	}
	return &InProc{boxes: boxes}, nil
}

// Size implements Network.
func (p *InProc) Size() int { return len(p.boxes) }

// Endpoint implements Network.
func (p *InProc) Endpoint(id int) (Endpoint, error) {
	if id < 0 || id >= len(p.boxes) {
		return nil, fmt.Errorf("transport: endpoint %d out of range [0,%d)", id, len(p.boxes))
	}
	return &inProcEndpoint{net: p, id: id}, nil
}

// Close implements Network.
func (p *InProc) Close() error {
	for _, b := range p.boxes {
		b.close()
	}
	return nil
}

type inProcEndpoint struct {
	net *InProc
	id  int
}

func (e *inProcEndpoint) Send(to int, m wire.Message) error {
	if to < 0 || to >= len(e.net.boxes) {
		return fmt.Errorf("transport: send to %d out of range [0,%d)", to, len(e.net.boxes))
	}
	return e.net.boxes[to].put(m)
}

func (e *inProcEndpoint) Recv() (wire.Message, bool) {
	return e.net.boxes[e.id].get()
}

func (e *inProcEndpoint) Close() error {
	e.net.boxes[e.id].close()
	return nil
}

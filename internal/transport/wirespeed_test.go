package transport

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"optsync/internal/wire"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestMailboxDropsOldestWhenBounded(t *testing.T) {
	var drops atomic.Uint64
	mb := newBoundedMailbox[int](8, &drops)
	for i := 0; i < 20; i++ {
		if err := mb.put(i); err != nil {
			t.Fatal(err)
		}
	}
	// bound 8 evicts max(1, 8/8) = 1 per overflowing put: 12 puts past
	// the bound shed the 12 oldest entries.
	if got := drops.Load(); got != 12 {
		t.Fatalf("drops = %d, want 12", got)
	}
	batch, ok := mb.drain(nil)
	if !ok || len(batch) != 8 {
		t.Fatalf("drain = %d entries, ok=%v, want 8", len(batch), ok)
	}
	for i, v := range batch {
		if v != 12+i {
			t.Fatalf("batch[%d] = %d, want %d (oldest must go first)", i, v, 12+i)
		}
	}
}

func TestMailboxUnboundedNeverDrops(t *testing.T) {
	mb := newMailbox[int]()
	for i := 0; i < 100000; i++ {
		if err := mb.put(i); err != nil {
			t.Fatal(err)
		}
	}
	batch, ok := mb.drain(nil)
	if !ok || len(batch) != 100000 {
		t.Fatalf("drain = %d entries, ok=%v, want all 100000", len(batch), ok)
	}
}

// TestTCPCorruptInnerFrameSkipsNotResets pins the silent-teardown fix:
// a frame-local decode error (corrupt inner batch element behind a valid
// header checksum) must cost exactly that frame — the reader keeps the
// connection, and every later frame on it still arrives. Before the fix
// the reader goroutine died on the first decode error and black-holed
// the rest of the stream.
func TestTCPCorruptInnerFrameSkipsNotResets(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	a, b := n.eps[0], n.eps[1]

	// Establish the link with a clean frame first.
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: -1}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || m.Val != -1 {
		t.Fatalf("priming delivery failed: %+v ok=%v", m, ok)
	}

	// A batch frame with a valid header and a corrupted first element:
	// the header checksum delimits the frame, so the damage is frame-local.
	batch := wire.Message{Type: wire.TBatch, Group: 1, Src: 0, Batch: []wire.Message{
		{Type: wire.TSeqUpdate, Group: 1, Seq: 1, Var: 2, Val: 10},
		{Type: wire.TSeqUpdate, Group: 1, Seq: 2, Var: 2, Val: 11},
	}}
	frame := wire.Encode(nil, batch)
	frame[wire.EncodedSize+30] ^= 0xff // first inner element's value field
	if err := a.SendEncoded(1, frame); err != nil {
		t.Fatal(err)
	}

	// Everything after the corrupt frame must still arrive on the same
	// connection.
	const K = 20
	for i := 0; i < K; i++ {
		if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < K; i++ {
			m, ok := b.Recv()
			if !ok {
				t.Errorf("receiver closed after %d of %d post-corruption frames", i, K)
				return
			}
			if m.Val != int64(i) {
				t.Errorf("frame %d has value %d: lost or reordered after corrupt frame", i, m.Val)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("post-corruption frames never arrived: reader tore down on a skippable frame")
	}
	s := n.TransportStats()
	if s.DecodeErrors < 1 {
		t.Errorf("DecodeErrors = %d, want >= 1", s.DecodeErrors)
	}
	if s.ConnResets != 0 {
		t.Errorf("ConnResets = %d, want 0 (frame-local corruption must not reset the link)", s.ConnResets)
	}
}

// TestTCPDesyncResetsAndReconnects pins the other half of the contract:
// a desync-class decode error (corrupt scalar frame — the checksum
// failure could hide a mis-framed batch header) makes the reader reset
// the connection proactively, and the link must then heal by redial so
// later traffic still flows.
func TestTCPDesyncResetsAndReconnects(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	a, b := n.eps[0], n.eps[1]

	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: -1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); !ok {
		t.Fatal("priming delivery failed")
	}

	frame := wire.Encode(nil, wire.Message{Type: wire.TUpdate, Group: 1, Val: 5})
	frame[30] ^= 0xff // payload no longer matches the checksum
	if err := a.SendEncoded(1, frame); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		return n.TransportStats().ConnResets >= 1
	}, "reader to reset the desynchronized connection")

	// The writer redials after its backoff; keep sending until delivery
	// resumes.
	got := make(chan wire.Message, 1)
	go func() {
		for {
			m, ok := b.Recv()
			if !ok {
				return
			}
			if m.Val == 99 {
				got <- m
				return
			}
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		_ = a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: 99})
		select {
		case <-got:
			s := n.TransportStats()
			if s.DecodeErrors < 1 {
				t.Errorf("DecodeErrors = %d, want >= 1", s.DecodeErrors)
			}
			return
		case <-deadline:
			t.Fatal("no delivery after desync reset: link never healed")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// TestTCPBoundedOutboxSheds pins the unbounded-outbox fix: a peer that
// accepts the connection but never reads used to grow the outbox (and
// resident memory) without limit. Now the outbox sheds its oldest
// entries and counts them, and Close still returns with the writer
// wedged mid-write.
func TestTCPBoundedOutboxSheds(t *testing.T) {
	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lnB, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = lnB.Close() }()
	addrs := []string{lnA.Addr().String(), lnB.Addr().String()}
	stats := &tcpStats{}
	a := newTCPEndpoint(0, lnA, addrs, stats)
	a.outBound = 64 // before the first Send creates the peer

	// The stalled peer: accepts, then never reads — the kernel buffers
	// fill and the writer blocks mid-writev while sends keep arriving.
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, aerr := lnB.Accept()
		if aerr == nil {
			accepted <- conn
		}
	}()

	m := wire.Message{Type: wire.TUpdate, Group: 1, Val: 7}
	deadline := time.Now().Add(10 * time.Second)
	for stats.sendDrops.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no outbox drops against a stalled peer: outbox is unbounded")
		}
		for i := 0; i < 1024; i++ {
			if err := a.Send(1, m); err != nil {
				t.Fatal(err)
			}
		}
	}
	if stats.sendDrops.Load() == 0 {
		t.Fatal("SendDrops = 0 after overflowing a stalled peer")
	}

	// Close must not hang on the writer blocked in its vectored write.
	closed := make(chan struct{})
	go func() {
		defer close(closed)
		_ = a.Close()
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("endpoint Close hung on a writer wedged against a stalled peer")
	}
	select {
	case conn := <-accepted:
		_ = conn.Close()
	default:
	}
}

// TestTCPMuxSharedLink pins connection multiplexing: traffic both ways
// between a node pair rides one socket — the dialer's hello preamble
// lets the acceptor adopt the inbound connection as its own outgoing
// link instead of dialing a second one back.
func TestTCPMuxSharedLink(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	a, b := n.eps[0], n.eps[1]

	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: 1}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || m.Val != 1 {
		t.Fatalf("forward delivery failed: %+v ok=%v", m, ok)
	}
	// By the time the frame was delivered, b's reader has processed the
	// hello and adopted the link; the reply must reuse it, not dial.
	if err := b.Send(0, wire.Message{Type: wire.TUpdate, Group: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	if m, ok := a.Recv(); !ok || m.Val != 2 {
		t.Fatalf("reply delivery failed: %+v ok=%v", m, ok)
	}
	s := n.TransportStats()
	if s.Dials != 1 {
		t.Errorf("Dials = %d, want 1 (reply must not dial a second socket)", s.Dials)
	}
	if s.LinksAdopted != 1 {
		t.Errorf("LinksAdopted = %d, want 1", s.LinksAdopted)
	}
}

// TestFlakyCorruptOverTCP exercises fault injection end to end over the
// real wire: Flaky's bit flips ship as literal corrupt bytes through the
// TCP codec path (not a local simulation), the remote reader's checksum
// catches every single-bit flip, and the transport counters record the
// damage. With corruption off again the link heals and delivers.
func TestFlakyCorruptOverTCP(t *testing.T) {
	inner, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	f := NewFlaky(inner, FaultPlan{Seed: 11})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)

	// Prime the link cleanly so the corruption hits an established
	// connection.
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: -1}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); !ok {
		t.Fatal("priming delivery failed")
	}

	f.Corrupt(1.0)
	const N = 20
	for i := 0; i < N; i++ {
		if err := a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: int64(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	injected, caught, missed := f.CorruptStats()
	if injected != N || caught != N || missed != 0 {
		t.Errorf("corrupt stats = (%d injected, %d caught, %d missed), want (%d, %d, 0): a single-bit flip must never pass the checksum", injected, caught, missed, N, N)
	}
	waitFor(t, 5*time.Second, func() bool {
		return f.TransportStats().DecodeErrors >= 1
	}, "the remote decoder to reject corrupt bytes off the real wire")

	// Wind down cleanly: delivery must resume once corruption stops
	// (redial after the resets the corrupt scalars provoked).
	f.Corrupt(0)
	got := make(chan struct{})
	go func() {
		for {
			m, ok := b.Recv()
			if !ok {
				return
			}
			if m.Val == 777 {
				close(got)
				return
			}
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		_ = a.Send(1, wire.Message{Type: wire.TUpdate, Group: 1, Val: 777})
		select {
		case <-got:
			return
		case <-deadline:
			t.Fatal("no clean delivery after corruption stopped")
		case <-time.After(10 * time.Millisecond):
		}
	}
}

package transport

import (
	"net"
	"sync"
	"testing"
	"time"

	"optsync/internal/wire"
)

// mustEndpoint fetches an endpoint or fails the test.
func mustEndpoint(t *testing.T, n Network, id int) Endpoint {
	t.Helper()
	ep, err := n.Endpoint(id)
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

// exerciseNetwork sends a burst from node 0 to node 1 and checks ordered,
// complete delivery. Shared by the in-proc and TCP tests.
func exerciseNetwork(t *testing.T, n Network) {
	t.Helper()
	a := mustEndpoint(t, n, 0)
	b := mustEndpoint(t, n, 1)
	const count = 200
	var wg sync.WaitGroup
	wg.Add(1)
	var got []wire.Message
	go func() {
		defer wg.Done()
		for i := 0; i < count; i++ {
			m, ok := b.Recv()
			if !ok {
				return
			}
			got = append(got, m)
		}
	}()
	for i := 0; i < count; i++ {
		m := wire.Message{Type: wire.TUpdate, Group: 1, Src: 0, Origin: 0, Var: 1, Val: int64(i)}
		if err := a.Send(1, m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	wg.Wait()
	if len(got) != count {
		t.Fatalf("received %d messages, want %d", len(got), count)
	}
	for i, m := range got {
		if m.Val != int64(i) {
			t.Fatalf("message %d has value %d: out of order or corrupted", i, m.Val)
		}
	}
}

func TestInProcDelivery(t *testing.T) {
	n, err := NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	exerciseNetwork(t, n)
}

func TestInProcSelfSend(t *testing.T) {
	n, _ := NewInProc(2)
	defer func() { _ = n.Close() }()
	ep := mustEndpoint(t, n, 0)
	want := wire.Message{Type: wire.TLockReq, Group: 2, Src: 0, Origin: 0, Lock: 5}
	if err := ep.Send(0, want); err != nil {
		t.Fatal(err)
	}
	got, ok := ep.Recv()
	if !ok || !wire.Equal(got, want) {
		t.Errorf("self send: got %+v ok=%v", got, ok)
	}
}

func TestInProcCloseUnblocksRecv(t *testing.T) {
	n, _ := NewInProc(2)
	ep := mustEndpoint(t, n, 1)
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, ok := ep.Recv(); ok {
			t.Error("Recv returned ok after close")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	_ = n.Close()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on close")
	}
}

func TestInProcBounds(t *testing.T) {
	n, _ := NewInProc(2)
	defer func() { _ = n.Close() }()
	if _, err := n.Endpoint(2); err == nil {
		t.Error("Endpoint(2) on a 2-node net succeeded")
	}
	if _, err := n.Endpoint(-1); err == nil {
		t.Error("Endpoint(-1) succeeded")
	}
	ep := mustEndpoint(t, n, 0)
	if err := ep.Send(7, wire.Message{Type: wire.TUpdate}); err == nil {
		t.Error("Send to out-of-range node succeeded")
	}
	if _, err := NewInProc(0); err == nil {
		t.Error("NewInProc(0) succeeded")
	}
}

func TestInProcSendAfterCloseFails(t *testing.T) {
	n, _ := NewInProc(2)
	ep := mustEndpoint(t, n, 0)
	_ = n.Close()
	if err := ep.Send(1, wire.Message{Type: wire.TUpdate}); err == nil {
		t.Error("Send after close succeeded, want error")
	}
}

func TestTCPDelivery(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	exerciseNetwork(t, n)
}

func TestTCPSelfSend(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	ep := mustEndpoint(t, n, 1)
	want := wire.Message{Type: wire.TNack, Group: 9, Src: 1, Seq: 10, Val: 12}
	if err := ep.Send(1, want); err != nil {
		t.Fatal(err)
	}
	got, ok := ep.Recv()
	if !ok || !wire.Equal(got, want) {
		t.Errorf("self send: got %+v ok=%v", got, ok)
	}
}

func TestTCPBidirectional(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = n.Close() }()
	a, b := mustEndpoint(t, n, 0), mustEndpoint(t, n, 1)
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Src: 0, Val: 1}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || m.Val != 1 {
		t.Fatalf("b.Recv = %+v, %v", m, ok)
	}
	if err := b.Send(0, wire.Message{Type: wire.TUpdate, Src: 1, Val: 2}); err != nil {
		t.Fatal(err)
	}
	if m, ok := a.Recv(); !ok || m.Val != 2 {
		t.Fatalf("a.Recv = %+v, %v", m, ok)
	}
}

func TestTCPCloseTerminates(t *testing.T) {
	n, err := NewTCP([]string{"127.0.0.1:0", "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	a, b := mustEndpoint(t, n, 0), mustEndpoint(t, n, 1)
	// Establish a live connection, then close; Close must not hang on the
	// idle reader goroutines.
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Src: 0}); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Recv(); !ok {
		t.Fatal("no delivery before close")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = n.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("TCP network close hung")
	}
}

func TestFlakyDropsAndDuplicates(t *testing.T) {
	inner, _ := NewInProc(2)
	f := NewFlaky(inner, FaultPlan{DropRate: 0.5, Seed: 42})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	const count = 400
	for i := 0; i < count; i++ {
		if err := a.Send(1, wire.Message{Type: wire.TUpdate, Val: int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	dropped, _, _ := f.Stats()
	if dropped < count/4 || dropped > 3*count/4 {
		t.Errorf("dropped %d of %d at rate 0.5", dropped, count)
	}
	// Everything not dropped must still arrive, in order.
	var got int
	for got < count-dropped {
		if _, ok := b.Recv(); !ok {
			t.Fatal("receiver closed early")
		}
		got++
	}
}

func TestFlakySparesType(t *testing.T) {
	inner, _ := NewInProc(2)
	f := NewFlaky(inner, FaultPlan{DropRate: 1.0, Seed: 1, Spare: []wire.Type{wire.TNack}})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Val: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, wire.Message{Type: wire.TNack, Seq: 5, Val: 6}); err != nil {
		t.Fatal(err)
	}
	m, ok := b.Recv()
	if !ok || m.Type != wire.TNack {
		t.Errorf("spared NACK not delivered: %+v ok=%v", m, ok)
	}
	if d, _, _ := f.Stats(); d != 1 {
		t.Errorf("dropped = %d, want 1 (only the update)", d)
	}
}

func TestFlakyDeterministicSeed(t *testing.T) {
	run := func() (int, int, int) {
		inner, _ := NewInProc(2)
		f := NewFlaky(inner, FaultPlan{DropRate: 0.3, DupRate: 0.3, Seed: 7})
		defer func() { _ = f.Close() }()
		a := mustEndpoint(t, f, 0)
		for i := 0; i < 100; i++ {
			_ = a.Send(1, wire.Message{Type: wire.TUpdate, Val: int64(i)})
		}
		return f.Stats()
	}
	d1, dup1, del1 := run()
	d2, dup2, del2 := run()
	if d1 != d2 || dup1 != dup2 || del1 != del2 {
		t.Errorf("same seed produced different faults: (%d,%d,%d) vs (%d,%d,%d)", d1, dup1, del1, d2, dup2, del2)
	}
}

func TestFlakySparesMultipleTypes(t *testing.T) {
	inner, _ := NewInProc(2)
	f := NewFlaky(inner, FaultPlan{
		DropRate: 1.0, Seed: 1,
		Spare: []wire.Type{wire.TNack, wire.THeartbeat},
	})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	_ = a.Send(1, wire.Message{Type: wire.TUpdate, Val: 1}) // dropped
	_ = a.Send(1, wire.Message{Type: wire.TNack, Seq: 5, Val: 6})
	_ = a.Send(1, wire.Message{Type: wire.THeartbeat, Epoch: 2})
	for _, want := range []wire.Type{wire.TNack, wire.THeartbeat} {
		m, ok := b.Recv()
		if !ok || m.Type != want {
			t.Fatalf("spared %v not delivered: %+v ok=%v", want, m, ok)
		}
	}
	if d, _, _ := f.Stats(); d != 1 {
		t.Errorf("dropped = %d, want 1 (only the update)", d)
	}
}

func TestFlakyDuplicateRollsDelay(t *testing.T) {
	// With DupRate and DelayRate both 1, the original is delayed AND the
	// duplicate must independently roll (and here always take) the delay
	// path, instead of being re-sent inline ahead of it.
	inner, _ := NewInProc(2)
	f := NewFlaky(inner, FaultPlan{
		DupRate: 1.0, DelayRate: 1.0, Delay: 10 * time.Millisecond, Seed: 3,
	})
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Val: 42}); err != nil {
		t.Fatal(err)
	}
	_, dup, delayed := f.Stats()
	if dup != 1 {
		t.Fatalf("duplicated = %d, want 1", dup)
	}
	if delayed != 2 {
		t.Errorf("delayed = %d, want 2 (original and duplicate both roll)", delayed)
	}
	_ = f.Close() // waits for the delayed copies to flush
	for i := 0; i < 2; i++ {
		if m, ok := b.Recv(); !ok || m.Val != 42 {
			t.Fatalf("copy %d: got %+v ok=%v", i, m, ok)
		}
	}
}

func TestFlakyCrashReviveAndPartition(t *testing.T) {
	inner, _ := NewInProc(3)
	f := NewFlaky(inner, FaultPlan{})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	c := mustEndpoint(t, f, 2)

	f.Crash(1)
	_ = a.Send(1, wire.Message{Type: wire.TUpdate, Val: 1}) // to crashed: cut
	_ = b.Send(2, wire.Message{Type: wire.TUpdate, Val: 2}) // from crashed: cut
	if iso := f.Isolated(); iso != 2 {
		t.Errorf("isolated = %d, want 2", iso)
	}
	f.Revive(1)
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Val: 3}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || m.Val != 3 {
		t.Fatalf("post-revive delivery failed: %+v ok=%v", m, ok)
	}

	f.Partition([]int{0}, []int{1, 2})
	_ = a.Send(2, wire.Message{Type: wire.TUpdate, Val: 4}) // across: cut
	_ = c.Send(0, wire.Message{Type: wire.TUpdate, Val: 5}) // across: cut
	if err := b.Send(2, wire.Message{Type: wire.TUpdate, Val: 6}); err != nil {
		t.Fatal(err) // same side: flows
	}
	if m, ok := c.Recv(); !ok || m.Val != 6 {
		t.Fatalf("same-side delivery failed: %+v ok=%v", m, ok)
	}
	f.Heal()
	if err := a.Send(2, wire.Message{Type: wire.TUpdate, Val: 7}); err != nil {
		t.Fatal(err)
	}
	if m, ok := c.Recv(); !ok || m.Val != 7 {
		t.Fatalf("post-heal delivery failed: %+v ok=%v", m, ok)
	}
}

func TestFlakyScheduledFaults(t *testing.T) {
	inner, _ := NewInProc(2)
	f := NewFlaky(inner, FaultPlan{})
	defer func() { _ = f.Close() }()
	a := mustEndpoint(t, f, 0)
	b := mustEndpoint(t, f, 1)
	done := f.Run([]FaultEvent{
		{After: 0, Crash: []int{1}},
		{After: 20 * time.Millisecond, Revive: []int{1}},
	})
	<-done
	if err := a.Send(1, wire.Message{Type: wire.TUpdate, Val: 9}); err != nil {
		t.Fatal(err)
	}
	if m, ok := b.Recv(); !ok || m.Val != 9 {
		t.Fatalf("delivery after scheduled revive failed: %+v ok=%v", m, ok)
	}
}

func TestTCPReconnectBackoff(t *testing.T) {
	// Reserve a port, then release it so the first sends dial a dead
	// address; the peer must back off rather than die, and deliver once a
	// listener appears.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	_ = probe.Close()

	lnA, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addrs := []string{lnA.Addr().String(), addr}
	a := newTCPEndpoint(0, lnA, addrs, &tcpStats{})
	defer func() { _ = a.Close() }()

	// Sends while the peer is down are dropped after failed dials.
	for i := 0; i < 5; i++ {
		_ = a.Send(1, wire.Message{Type: wire.TUpdate, Val: int64(i)})
		time.Sleep(5 * time.Millisecond)
	}

	lnB, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("could not re-bind reserved port %s: %v", addr, err)
	}
	b := newTCPEndpoint(1, lnB, addrs, &tcpStats{})
	defer func() { _ = b.Close() }()

	// Keep sending; once the backoff window expires the dial succeeds.
	got := make(chan wire.Message, 1)
	go func() {
		if m, ok := b.Recv(); ok {
			got <- m
		}
	}()
	deadline := time.After(5 * time.Second)
	for {
		_ = a.Send(1, wire.Message{Type: wire.TUpdate, Val: 99})
		select {
		case m := <-got:
			if m.Val == 0 {
				t.Fatalf("unexpected first message: %+v", m)
			}
			return
		case <-deadline:
			t.Fatal("no delivery after peer listener returned")
		case <-time.After(20 * time.Millisecond):
		}
	}
}

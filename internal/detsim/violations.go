package detsim

import (
	"fmt"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/model"
	"optsync/internal/wire"
)

// Violation and regression scenarios. ForgedGrant deliberately breaks
// mutual exclusion to prove the harness detects protocol violations and
// replays them bit-identically from the seed; FenceRegression pins the
// fenced-queue eviction fix in fence.go, which this harness originally
// flushed out.

// ForgedGrant: 3 nodes, an UNGUARDED counter (the root must not
// suppress the duplicate section's writes — the point is to let the
// violation through to the checker). Nodes 1 and 2 both request the
// lock; the scenario rewrites the in-flight grant multicast on the
// root->2 link so node 2 sees itself granted at the same time as node
// 1. Both sections read the same counter value, both commit, both
// acknowledge — a duplicate transition the checker must report on
// every seed.
func ForgedGrant() Scenario {
	return Scenario{
		Name:  "forged-grant",
		Nodes: 3,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{history: 64}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			// Both nodes request; the schedule decides whose request reaches
			// the root first and wins the real grant.
			e.Node(1).SendLockRequest(simGroup, simLock)
			e.Node(2).SendLockRequest(simGroup, simLock)
			// Rewrite the loser's copy of the winner's grant multicast into
			// a grant to itself, before every delivery: the scheduler only
			// moves messages when the script steps, so whichever way the
			// race goes, the losing node cannot see the grant unforged.
			forged := 0
			rewrite := func(to, winner int) {
				forged += e.ReplaceInFlight(0, to, func(m *wire.Message) bool {
					if m.Type == wire.TSeqLock && m.Val == gwc.GrantValue(winner) {
						m.Val = gwc.GrantValue(to)
						return true
					}
					return false
				})
			}
			granted := func(id int) bool {
				v, _ := e.Node(id).LockValue(simGroup, simLock)
				return v == gwc.GrantValue(id)
			}
			err := drive(e, nil, 40000, "both nodes in the critical section", func() bool {
				rewrite(2, 1)
				rewrite(1, 2)
				return granted(1) && granted(2)
			})
			if err != nil {
				return err
			}
			if forged == 0 {
				return fmt.Errorf("grant multicast was never intercepted")
			}
			// Two concurrent critical sections: both read the counter, both
			// increment, both release, both believe the op succeeded.
			for _, id := range []int{1, 2} {
				n := e.Node(id)
				t, _ := n.Read(simGroup, simCounter)
				n.Write(simGroup, simCounter, t+1)
				if err := n.Release(simGroup, simLock); err != nil {
					return fmt.Errorf("node %d release: %w", id, err)
				}
				checker.Acked(t)
			}
			var final int64
			err = drive(e, nil, 40000, "counter convergence", func() bool {
				v0, _ := e.Node(0).Read(simGroup, simCounter)
				v1, _ := e.Node(1).Read(simGroup, simCounter)
				v2, _ := e.Node(2).Read(simGroup, simCounter)
				final = v0
				return v0 == v1 && v1 == v2
			})
			if err != nil {
				return err
			}
			// With mutual exclusion intact this would pass; with the forged
			// grant it must not.
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("forged grant detected (final=%d): %w", final, err)
			}
			return nil
		},
	}
}

// FenceRegression pins the fence.go fix: a fenced root whose parking
// queue is full must not shed a lock release (the holder sends it
// exactly once; losing it strands the lock for the rest of the reign).
//
// Node 1 takes the lock, the cluster splits so the root's side {0,1} is
// a minority and the root fences, node 1 floods enough updates to fill
// the bounded fence queue and then releases; the partition heals before
// the majority can finish an election (a long electWait holds it open,
// and seeds where a failover lands anyway are skipped as inconclusive).
// After the fence lifts and replays its queue, node 2 must be able to
// acquire the lock: with the pre-fix drop-anything behavior the release
// is gone, the root believes node 1 still holds the lock, and node 2
// waits forever.
func FenceRegression() Scenario {
	return Scenario{
		Name:  "fence-regression",
		Nodes: 5,
		Run: func(e *Env) error {
			const bound = 4 // fence queue capacity = HistorySize
			if _, err := setup(e, clusterCfg{
				history:   bound,
				electWait: 60 * time.Millisecond,
			}); err != nil {
				return err
			}
			raced := func() bool {
				for i := 0; i < e.Nodes(); i++ {
					if e.Node(i).Stats().Failovers > 0 {
						return true
					}
				}
				return false
			}
			e.Node(1).SendLockRequest(simGroup, simLock)
			if err := drive(e, nil, 30000, "node 1 lock grant", func() bool {
				v, _ := e.Node(1).LockValue(simGroup, simLock)
				return v == gwc.GrantValue(1)
			}); err != nil {
				return err
			}
			e.Partition([]int{0, 1}, []int{2, 3, 4})
			if err := drive(e, nil, 60000, "root fenced in the minority", func() bool {
				return e.Node(0).Stats().Fenced >= 1
			}); err != nil {
				return err
			}
			// Fill the fence queue past its bound, then release: the
			// release reaches a full queue and must survive by evicting a
			// parked update.
			for i := 0; i < bound+2; i++ {
				e.Node(1).Write(simGroup, gwc.VarID(10+i), int64(i+1))
			}
			if err := e.Node(1).Release(simGroup, simLock); err != nil {
				return err
			}
			if err := drive(e, nil, 30000, "overflow traffic parked at the fenced root", func() bool {
				return e.Node(0).Stats().FencedDrops >= 3
			}); err != nil {
				return err
			}
			e.Heal()
			if raced() {
				return nil // the majority finished its election first; inconclusive seed
			}
			// The reign survived. Once quorum contact returns the fence
			// replays its queue — including the release — so node 2's
			// acquisition must go through.
			e.Node(2).SendLockRequest(simGroup, simLock)
			resend := 0
			err := drive(e, nil, 60000, "node 2 lock grant after the fence lifts", func() bool {
				if raced() {
					return true // deposed mid-probe; inconclusive
				}
				resend++
				if resend%resendEvery == 0 {
					e.Node(2).SendLockRequest(simGroup, simLock)
				}
				v, _ := e.Node(2).LockValue(simGroup, simLock)
				return v == gwc.GrantValue(2)
			})
			if err != nil {
				return fmt.Errorf("lock stranded after fenced-queue overflow (release shed?): %w", err)
			}
			return nil
		},
	}
}

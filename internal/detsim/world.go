// Package detsim runs the real GWC runtime (internal/gwc, not the
// internal/model toy) under a deterministic, seeded scheduler: a virtual
// clock plus an in-memory transport whose every delivery, drop,
// duplication, and timer firing is chosen by one seeded random walk.
// The same seed therefore replays the same execution bit for bit, so
// any failure an exploration run finds reproduces from its seed alone.
//
// The scheduler advances the world one event at a time, and only at
// quiescence: it waits until every node goroutine is parked (blocked in
// Recv with an empty inbox, with no fired-but-unprocessed timer), then
// picks the next event — deliver the head of some link, drop or
// duplicate it, or advance virtual time to the earliest armed timer.
// Between events the whole cluster is at rest, so scenario scripts can
// read node state, issue non-blocking protocol operations, and inject
// faults without racing the protocol.
//
// Determinism rests on three properties, each enforced elsewhere:
// gwc nodes schedule every timeout on an injected vclock.Clock; gwc
// sorts every map iteration that emits messages; and each (src,dst)
// link is FIFO, matching the in-process transport the protocol's
// ordering assumptions (e.g. sync barriers riding behind flushed
// writes) were built on. Reordering happens across links, never within
// one.
package detsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"optsync/internal/transport"
	"optsync/internal/vclock"
	"optsync/internal/wire"
)

// World is the deterministic network-and-clock a simulated cluster runs
// in. It implements transport.Network; World.Clock supplies the matching
// vclock.Clock. All state is guarded by one mutex shared with the
// endpoints and timers, so the scheduler observes a consistent cut.
type World struct {
	n    int
	opts Options

	mu   sync.Mutex
	cond *sync.Cond

	now          time.Time
	timers       timerHeap
	timerSeq     uint64
	pendingFires int // channel-timer fires not yet Reset/Stopped by their owner

	links   [][]wire.Message // links[from*n+to], FIFO
	eps     []*endpoint
	crashed []bool
	cuts    map[[2]int]bool

	// Scenario-controlled fault probabilities (see Env.SetLoss).
	drop, dup   float64
	drops, dups int
	rng         *rand.Rand
	steps       int
	trace       []Event
	closed      bool
}

// NewWorld builds a deterministic world for n nodes, seeded so every
// scheduling choice is a pure function of seed. Virtual time starts at
// the epoch.
func NewWorld(n int, seed int64, opts Options) *World {
	w := &World{
		n:       n,
		opts:    opts.withDefaults(),
		now:     time.Unix(0, 0),
		links:   make([][]wire.Message, n*n),
		eps:     make([]*endpoint, n),
		crashed: make([]bool, n),
		cuts:    make(map[[2]int]bool),
		rng:     rand.New(rand.NewSource(seed)),
	}
	w.cond = sync.NewCond(&w.mu)
	for i := range w.eps {
		w.eps[i] = &endpoint{w: w, id: i}
	}
	return w
}

// Size implements transport.Network.
func (w *World) Size() int { return w.n }

// Endpoint implements transport.Network.
func (w *World) Endpoint(id int) (transport.Endpoint, error) {
	if id < 0 || id >= w.n {
		return nil, fmt.Errorf("detsim: endpoint %d out of range [0,%d)", id, w.n)
	}
	return w.eps[id], nil
}

// Close implements transport.Network.
func (w *World) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.closed = true
	for _, e := range w.eps {
		e.closed = true
	}
	w.cond.Broadcast()
	return nil
}

// Clock returns the virtual clock every node of this world must be
// built with (gwc.NewNodeClock).
func (w *World) Clock() vclock.Clock { return worldClock{w} }

// Trace returns a copy of the event trace so far. Two runs of the same
// scenario from the same seed produce identical traces — the property
// the replay tests pin down.
func (w *World) Trace() []Event {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]Event(nil), w.trace...)
}

// Steps reports how many scheduler events have run.
func (w *World) Steps() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.steps
}

// Inflight counts messages queued on links but not yet delivered (or
// dropped); inboxes are empty whenever the world is quiesced, so this
// is the whole of the in-flight traffic at a quiescent cut.
func (w *World) Inflight() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for _, l := range w.links {
		total += len(l)
	}
	return total
}

// endpoint is one node's attachment. The inbox holds at most one
// message: the scheduler only delivers at quiescence, and the receiver
// drains before the next event is picked.
type endpoint struct {
	w       *World
	id      int
	inbox   []wire.Message
	waiting bool
	closed  bool
}

func (e *endpoint) Send(to int, m wire.Message) error {
	w := e.w
	w.mu.Lock()
	defer w.mu.Unlock()
	if e.closed {
		return transport.ErrClosed
	}
	if to < 0 || to >= w.n {
		return fmt.Errorf("detsim: send to %d out of range [0,%d)", to, w.n)
	}
	// Crashes and partitions sever the link at send time, matching the
	// Flaky wrapper's semantics: messages already in flight still land.
	if w.crashed[e.id] || w.crashed[to] || w.cuts[[2]int{e.id, to}] {
		return nil
	}
	w.links[e.id*w.n+to] = append(w.links[e.id*w.n+to], m)
	return nil
}

func (e *endpoint) Recv() (wire.Message, bool) {
	w := e.w
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if len(e.inbox) > 0 {
			m := e.inbox[0]
			e.inbox = e.inbox[1:]
			return m, true
		}
		if e.closed {
			return wire.Message{}, false
		}
		// Parking here is what the scheduler's quiescence wait watches
		// for; tell it.
		e.waiting = true
		w.cond.Broadcast()
		w.cond.Wait()
		e.waiting = false
	}
}

func (e *endpoint) Close() error {
	w := e.w
	w.mu.Lock()
	defer w.mu.Unlock()
	e.closed = true
	w.cond.Broadcast()
	return nil
}

// quiescedLocked reports whether every node goroutine is parked and no
// timer has fired without being re-armed: the cluster cannot take
// another step until the scheduler delivers a message or advances time.
func (w *World) quiescedLocked() bool {
	for _, e := range w.eps {
		if !e.closed && !(e.waiting && len(e.inbox) == 0) {
			return false
		}
	}
	return w.pendingFires == 0
}

// waitQuiesce blocks until the cluster is at rest.
func (w *World) waitQuiesce() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.quiescedLocked() {
		w.cond.Wait()
	}
}

// ---- virtual clock ----

type worldClock struct{ w *World }

func (c worldClock) Now() time.Time {
	c.w.mu.Lock()
	defer c.w.mu.Unlock()
	return c.w.now
}

func (c worldClock) NewTimer(d time.Duration) vclock.Timer {
	return c.w.newTimer(d, nil)
}

func (c worldClock) AfterFunc(d time.Duration, f func()) vclock.Timer {
	return c.w.newTimer(d, f)
}

// vtimer is one virtual timer. gen invalidates stale heap entries after
// a Stop or Reset (lazy deletion); id is creation order, the
// deterministic tie-break for timers due at the same instant.
type vtimer struct {
	w     *World
	id    uint64
	gen   uint64
	when  time.Time
	armed bool
	fired bool
	ch    chan time.Time
	f     func()
}

func (w *World) newTimer(d time.Duration, f func()) *vtimer {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := &vtimer{w: w, id: w.timerSeq, f: f}
	w.timerSeq++
	if f == nil {
		t.ch = make(chan time.Time, 1)
	}
	w.armLocked(t, d)
	return t
}

func (w *World) armLocked(t *vtimer, d time.Duration) {
	t.gen++
	t.when = w.now.Add(d)
	t.armed = true
	heap.Push(&w.timers, timerEntry{t: t, gen: t.gen, when: t.when, id: t.id})
}

func (t *vtimer) C() <-chan time.Time { return t.ch }

func (t *vtimer) Stop() bool {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	was := t.armed
	t.armed = false
	t.gen++
	t.drainLocked()
	return was
}

func (t *vtimer) Reset(d time.Duration) bool {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	was := t.armed
	t.armed = false
	t.gen++
	t.drainLocked()
	w.armLocked(t, d)
	return was
}

// drainLocked retires a fired-but-unacknowledged tick. The owning
// goroutine calling Stop or Reset is the signal that the fire's effects
// are complete, which is when the scheduler may consider the world
// quiet again.
func (t *vtimer) drainLocked() {
	if !t.fired {
		return
	}
	t.fired = false
	if t.ch != nil {
		select {
		case <-t.ch:
		default:
		}
	}
	t.w.pendingFires--
	t.w.cond.Broadcast()
}

// timerEntry is a heap record; stale ones (gen mismatch) are skipped on
// pop.
type timerEntry struct {
	t    *vtimer
	gen  uint64
	when time.Time
	id   uint64
}

type timerHeap []timerEntry

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if !h[i].when.Equal(h[j].when) {
		return h[i].when.Before(h[j].when)
	}
	return h[i].id < h[j].id
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timerEntry)) }
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// popDue removes and returns all valid heap entries due at the earliest
// deadline (there may be several: every node arms its maintenance timer
// at construction, so ties are the common case). Caller holds w.mu.
func (w *World) popDue() []timerEntry {
	var due []timerEntry
	for w.timers.Len() > 0 {
		e := heap.Pop(&w.timers).(timerEntry)
		if !e.t.armed || e.t.gen != e.gen {
			continue // stale: stopped or re-armed since pushed
		}
		if len(due) > 0 && !e.when.Equal(due[0].when) {
			heap.Push(&w.timers, e)
			break
		}
		due = append(due, e)
	}
	return due
}

// fire advances virtual time to the entry's deadline and fires it.
// AfterFunc callbacks run synchronously on the scheduler goroutine with
// w.mu released (they re-enter the world through Send and the clock);
// channel timers hand their tick to the owning goroutine and raise
// pendingFires until the owner acknowledges via Stop/Reset.
func (w *World) fire(e timerEntry) {
	t := e.t
	if t.when.After(w.now) {
		w.now = t.when
	}
	t.armed = false
	t.gen++
	if t.f != nil {
		f := t.f
		w.mu.Unlock()
		f()
		w.mu.Lock()
		return
	}
	t.fired = true
	w.pendingFires++
	t.ch <- w.now
	w.cond.Broadcast()
}

package detsim

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/obs"
)

// QuorumParkRegression pins the quorum-parking fix in root.go: under
// SetQuorumAcks, a lock request that arrives while the previous
// holder's data is not yet quorum-held parks behind the commit
// watermark. Before the fix the lock sat holderless across the park, so
// a clean speculation issued in that window — request and guarded
// writes on the same FIFO link, with no rival grant ever intervening —
// had its writes suppressed `not-holder` while the speculator later
// received a clean grant and committed, believing the writes landed:
// silent data loss in exactly the configuration quorum acks exist to
// protect. The fix designates the parked winner immediately (holder,
// token, epoch) and defers only the grant multicast, so the clean
// speculation's writes are sequenced and the handoff still waits for
// the watermark.
//
// The schedule is forced, not found: nodes 2 and 3 go dark at the
// start, so with quorum 3 the commit watermark can never pass the first
// section's release until they return. The lone live worker on node 1
// commits one section (its first acquisition has needSeq 0 and grants
// immediately), then speculates again the moment its local lock copy
// shows Free — landing its request and writes squarely in the park
// window. Reviving 2 and 3 lets their catch-up acks advance the
// watermark and release the parked handoff; the worker then commits and
// must observe its stamp at the root. Before the fix the stamp write
// was suppressed and the observation times out ("committed section
// never observed"); the suppression cross-check (exactly 2 suppressed
// writes per rollback) independently catches the same loss.
func QuorumParkRegression() Scenario {
	return Scenario{
		Name:  "quorum-park-regression",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				history:    256,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			// Dark from the first event: with only node 1 acking, commit =
			// 2nd-highest member ack = 0 for as long as they stay down.
			e.Crash(2)
			e.Crash(3)
			checker := model.NewCounterChecker()
			w := &specWorker{env: e, node: 1, obs: []int{0}, minObs: 1, checker: checker}
			driveSpec := func(budget int, what string, pred func() bool) error {
				for i := 0; i < budget; i++ {
					e.w.waitQuiesce()
					if err := w.poll(); err != nil {
						return err
					}
					if pred() {
						return nil
					}
					if err := e.Step(); err != nil {
						return fmt.Errorf("waiting for %s: %w", what, err)
					}
				}
				return fmt.Errorf("%s not reached within %d events (acked=%d aborted=%d)",
					what, budget, w.acked, w.aborted)
			}
			root := e.Node(0)
			// Section 1 commits against needSeq 0 and is observed at the
			// root (the only live observer).
			if err := driveSpec(60000, "first committed section", func() bool {
				return w.acked >= 1
			}); err != nil {
				return err
			}
			// Section 2's request must park behind the watermark, and its
			// speculative writes must have reached the root (drained links),
			// where they are sequenced (fixed) or suppressed (regression).
			if err := driveSpec(60000, "second acquisition parked behind the watermark", func() bool {
				return root.Stats().QuorumAckWaits >= 1 && e.Inflight() == 0
			}); err != nil {
				return err
			}
			// The watermark can now advance: the revived members repair
			// their gap and their catch-up acks complete the quorum.
			e.Revive(2)
			e.Revive(3)
			if err := driveSpec(120000, "parked handoff granted and section observed", func() bool {
				return w.acked >= 2
			}); err != nil {
				return err
			}
			w.stopped = true
			var final int64
			if err := driveSpec(80000, "cluster convergence", func() bool {
				if w.state != wDone || e.Inflight() > 0 {
					return false
				}
				v0, _ := root.Read(simGroup, simCounter)
				for i := 1; i < e.Nodes(); i++ {
					v, _ := e.Node(i).Read(simGroup, simCounter)
					if v != v0 {
						return false
					}
				}
				final = v0
				return true
			}); err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("quorum-park history (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() < 2 {
				return fmt.Errorf("only %d increments acknowledged; the park window was never exercised", checker.Len())
			}
			if qw := root.Stats().QuorumAckWaits; qw < 1 {
				return fmt.Errorf("no handoff ever parked behind the watermark (QuorumAckWaits=%d); vacuous run", qw)
			}
			// The clean speculation never rolled back, so nothing may have
			// been suppressed: every suppression must pair with a rollback.
			suppressed := int(root.Metrics().Trace.Count(obs.EvSuppressed))
			if suppressed != 2*w.aborted {
				return fmt.Errorf("root suppressed %d guarded writes with %d rollbacks, want exactly 2 per rollback",
					suppressed, w.aborted)
			}
			return nil
		},
	}
}

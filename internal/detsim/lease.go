package detsim

import (
	"fmt"
	"strings"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/model"
)

// Lock-lease and peer-handoff scenarios (gwc's lease.go): the lease
// lifecycle raced against expiry and a root failover, and the convoy
// handoff chain under contention. Both run the live stack under the
// deterministic scheduler, so lease TTLs, revoke demands, and handoff
// epochs replay bit-identically from the seed.

// holders counts the nodes whose local lock copy says they hold the
// lock themselves. A leased idle holder legitimately keeps its copy
// self-granted (that is what makes re-entry local), so the invariant
// is about the count, not about zero: the root never leases or grants
// to a second node before the first copy is re-pointed or returned,
// and a handoff re-points the releaser's copy before the frame goes
// out — so at quiescence in a fault-free run this never exceeds one.
func holders(e *Env) int {
	n := 0
	for i := 0; i < e.Nodes(); i++ {
		v, _ := e.Node(i).LockValue(simGroup, simLock)
		if v == gwc.GrantValue(i) {
			n++
		}
	}
	return n
}

// sumStats folds one counter across every node.
func sumStats(e *Env, f func(gwc.Stats) int) int {
	n := 0
	for i := 0; i < e.Nodes(); i++ {
		n += f(e.Node(i).Stats())
	}
	return n
}

// leaseWorker is the lease-aware sibling of worker: before shipping a
// lock request it probes TryLeaseEnter — the exact sequence the core
// engine's AcquireContext runs — so a live lease turns the acquire
// into a local decision with zero frames. The probe is mandatory, not
// an optimisation: a leased idle holder's lock copy still reads as
// self-granted, so a worker that only polled LockValue would walk into
// the section without pinning the lease, and a concurrent revoke could
// pull the lock out from under it mid-section.
//
// holdFor > 0 adds a dwell inside the section (wHolding): first until
// the root has applied this worker's stamp, then holdFor more polls so
// the sequenced echoes drain back and the closing section is confirmed
// — the precondition for a direct peer handoff. holdFor == 0 releases
// on the next poll, the plain worker's near-instant section. The dwell
// reads the root's copy directly, so holdFor > 0 is only valid in
// runs that never crash node 0.
type leaseWorker struct {
	env     *Env
	node    int
	obs     []int // stable observer nodes (never this worker)
	minObs  int
	holdFor int
	checker *model.CounterChecker

	state   wState
	stopped bool
	from    int64 // counter value read in the current section
	polls   int   // polls spent in the current state
	acked   int
	aborted int
}

// wHolding extends the worker state space: the extra phase lives
// between grant and release.
const wHolding = wDone + 1

func (w *leaseWorker) stop() {
	w.stopped = true
	if w.state == wWaiting {
		w.env.Node(w.node).CancelLockRequest(simGroup, simLock)
		w.state = wDone
	}
	if w.state == wIdle {
		w.state = wDone
	}
}

func (w *leaseWorker) done() bool { return w.state == wDone }

// enter runs the critical-section writes; the caller already holds the
// lock (granted or leased).
func (w *leaseWorker) enter() {
	n := w.env.Node(w.node)
	t, _ := n.Read(simGroup, simCounter)
	n.Write(simGroup, simCounter, t+1)
	n.Write(simGroup, stampVar(w.node), t+1)
	w.from = t
	w.state = wHolding
	w.polls = 0
}

func (w *leaseWorker) poll() {
	n := w.env.Node(w.node)
	switch w.state {
	case wIdle:
		if w.stopped {
			w.state = wDone
			return
		}
		if n.TryLeaseEnter(simGroup, simLock) {
			w.enter() // leased: straight into the section, zero frames
			return
		}
		n.SendLockRequest(simGroup, simLock)
		w.state = wWaiting
		w.polls = 0
	case wWaiting:
		v, _ := n.LockValue(simGroup, simLock)
		if v != gwc.GrantValue(w.node) {
			w.polls++
			if w.polls%resendEvery == 0 {
				n.SendLockRequest(simGroup, simLock)
			}
			return
		}
		w.enter()
	case wHolding:
		if w.holdFor > 0 {
			if v, _ := w.env.Node(0).Read(simGroup, stampVar(w.node)); v < w.from+1 {
				return
			}
			w.polls++
			if w.polls < w.holdFor {
				return
			}
		}
		if err := n.Release(simGroup, simLock); err != nil {
			w.aborted++
			w.state = wIdle
			return
		}
		w.state = wObserving
		w.polls = 0
	case wObserving:
		seen := 0
		for _, o := range w.obs {
			v, _ := w.env.Node(o).Read(simGroup, stampVar(w.node))
			if v >= w.from+1 {
				seen++
			}
		}
		if seen >= w.minObs {
			w.checker.Acked(w.from)
			w.acked++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
			return
		}
		w.polls++
		if w.polls >= observeFor {
			// Never confirmed; the op may or may not have committed, and
			// the checker hears nothing about it.
			w.aborted++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
		}
	}
}

// leaseDrive is drive for leaseWorkers, with an optional per-quiescence
// invariant checked before the predicate.
func leaseDrive(e *Env, ws []*leaseWorker, budget int, what string, inv func() error, pred func() bool) error {
	step := func() error {
		e.w.waitQuiesce()
		for _, w := range ws {
			w.poll()
		}
		if inv != nil {
			if err := inv(); err != nil {
				return err
			}
		}
		return nil
	}
	for i := 0; i < budget; i++ {
		if err := step(); err != nil {
			return err
		}
		if pred() {
			return nil
		}
		if err := e.Step(); err != nil {
			return fmt.Errorf("waiting for %s: %w", what, err)
		}
	}
	if err := step(); err != nil {
		return err
	}
	if pred() {
		return nil
	}
	return fmt.Errorf("%s not reached within %d events", what, budget)
}

// leaseWindDown mirrors windDown for leaseWorkers: stop, drain pending
// observations, wait for the counter to converge on every alive node.
func leaseWindDown(e *Env, ws []*leaseWorker, alive []int, inv func() error) (int64, error) {
	for _, w := range ws {
		w.stop()
	}
	var final int64
	err := leaseDrive(e, ws, 160000, "cluster convergence", inv, func() bool {
		for _, w := range ws {
			if !w.done() {
				return false
			}
		}
		v0, _ := e.Node(alive[0]).Read(simGroup, simCounter)
		for _, i := range alive[1:] {
			v, _ := e.Node(i).Read(simGroup, simCounter)
			if v != v0 {
				return false
			}
		}
		final = v0
		return true
	})
	if err != nil {
		var state []string
		for _, i := range alive {
			v, _ := e.Node(i).Read(simGroup, simCounter)
			s := e.Node(i).Stats()
			state = append(state, fmt.Sprintf(
				"node %d: ctr=%d failovers=%d elections=%d leases=%d/%d/%d local=%d handoffs=%d/%d",
				i, v, s.Failovers, s.Elections,
				s.LeaseGrants, s.LeaseReturns, s.LeaseRevokes,
				s.LeaseLocal, s.Handoffs, s.HandoffCommits))
		}
		for _, w := range ws {
			state = append(state, fmt.Sprintf("worker %d: state=%d acked=%d aborted=%d", w.node, w.state, w.acked, w.aborted))
		}
		err = fmt.Errorf("%w\n  %s", err, strings.Join(state, "\n  "))
	}
	return final, err
}

func leaseAcked(ws []*leaseWorker) int {
	n := 0
	for _, w := range ws {
		n += w.acked
	}
	return n
}

// LeaseExpiryVsFailover: 4 nodes with short seed-chosen lease TTLs. A
// lone worker accrues purely-local re-acquires under its lease; a rival
// then forces the revoke path; and the root crashes at a seed-chosen
// moment mid-churn, so different seeds catch the crash with the lease
// live, expired, revoked-in-flight, or mid-return. The survivors fail
// over (leases die with the reign: idle cached locks must report free
// to the new root, and no reign change may resurrect one), the old
// root revives, and the acknowledged history must still linearize —
// a lease outliving its reign would surface as a double-granted
// section double-counting an increment.
func LeaseExpiryVsFailover() Scenario {
	return Scenario{
		Name:  "lease-expiry-vs-failover",
		Nodes: 4,
		Run: func(e *Env) error {
			ttl := time.Duration(5+e.Rand().Intn(25)) * time.Millisecond
			if _, err := setup(e, clusterCfg{
				history: 128,
				guards:  guardedCfg(e.Nodes()),
				leases:  ttl,
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			// Node 1 stays workload-free: it is the failover successor, and
			// with the root crashed it is also every worker's stable observer.
			w2 := &leaseWorker{env: e, node: 2, obs: []int{1, 3}, minObs: 2, checker: checker}
			w3 := &leaseWorker{env: e, node: 3, obs: []int{1, 2}, minObs: 2, checker: checker}

			// Phase 1: the lone worker gets the lock leased and re-enters
			// locally — the fast path must actually engage before the
			// scenario starts tearing it down.
			if err := leaseDrive(e, []*leaseWorker{w2}, 80000, "leased local re-acquire", nil, func() bool {
				return e.Node(2).Stats().LeaseLocal >= 1 && w2.acked >= 1
			}); err != nil {
				return err
			}

			// Phase 2: contention. The rival's request forces the root to
			// demand the lease back; the churn interleaves grants, revokes,
			// returns, and (seed-depending) TTL expiries.
			ws := []*leaseWorker{w2, w3}
			if err := leaseDrive(e, ws, 80000, "increments under lease churn", nil, func() bool {
				return leaseAcked(ws) >= 3
			}); err != nil {
				return err
			}

			// Phase 3: crash the root a seed-chosen distance in, so the
			// reign ends with the lease machinery in a seed-chosen state.
			for i, k := 0, e.Rand().Intn(80); i < k; i++ {
				e.w.waitQuiesce()
				for _, w := range ws {
					w.poll()
				}
				if err := e.Step(); err != nil {
					return err
				}
			}
			e.Crash(0)
			if err := leaseDrive(e, ws, 120000, "failover to node 1", nil, func() bool {
				return e.Node(1).Stats().Failovers >= 1
			}); err != nil {
				return err
			}
			e.Revive(0)
			if err := leaseDrive(e, ws, 120000, "post-failover increments", nil, func() bool {
				return leaseAcked(ws) >= 5
			}); err != nil {
				return err
			}

			final, err := leaseWindDown(e, ws, []int{0, 1, 2, 3}, nil)
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after lease expiry vs failover (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			// Non-vacuousness: the lease fast path ran, on both sides.
			if g := sumStats(e, func(s gwc.Stats) int { return s.LeaseGrants }); g < 1 {
				return fmt.Errorf("no lease was ever granted (ttl=%v); the scenario tested nothing", ttl)
			}
			if l := sumStats(e, func(s gwc.Stats) int { return s.LeaseLocal }); l < 1 {
				return fmt.Errorf("no re-acquire was ever decided locally (ttl=%v)", ttl)
			}
			// A root never observes more handoffs than members performed;
			// the reverse slack is reign-change evaporation (a notice dying
			// with the deposed root).
			if hc, h := sumStats(e, func(s gwc.Stats) int { return s.HandoffCommits }),
				sumStats(e, func(s gwc.Stats) int { return s.Handoffs }); hc > h {
				return fmt.Errorf("roots committed %d handoffs but members only performed %d", hc, h)
			}
			return nil
		},
	}
}

// HandoffChainConvoy: 5 nodes, no faults, three convoy workers beating
// on one lock with confirmed sections (holdFor dwell). Grants go out
// with waiters queued, so releases should transfer peer-to-peer; the
// root's confirm multicast carries the next hint and the convoy
// chains. Invariants, checked at every quiescent point and at the
// drained end: never two self-believed exclusive holders, and the root
// commits exactly the handoffs the members performed (no reign change
// here to evaporate one) — plus the counter history must linearize,
// which a double grant or a lost section would break.
func HandoffChainConvoy() Scenario {
	return Scenario{
		Name:  "handoff-chain-convoy",
		Nodes: 5,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				history: 256,
				guards:  guardedCfg(e.Nodes()),
				leases:  50 * time.Millisecond,
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			stable := map[int][]int{1: {2, 3, 4}, 2: {1, 3, 4}, 3: {1, 2, 4}}
			var ws []*leaseWorker
			for _, id := range []int{1, 2, 3} {
				ws = append(ws, &leaseWorker{
					env: e, node: id, obs: stable[id], minObs: 2,
					holdFor: 20 + e.Rand().Intn(40), checker: checker,
				})
			}
			atMostOneHolder := func() error {
				if h := holders(e); h > 1 {
					return fmt.Errorf("%d nodes believe they hold the exclusive lock", h)
				}
				return nil
			}
			if err := leaseDrive(e, ws, 400000, "convoy increments with chained handoffs", atMostOneHolder, func() bool {
				return leaseAcked(ws) >= 9 && sumStats(e, func(s gwc.Stats) int { return s.HandoffCommits }) >= 2
			}); err != nil {
				return err
			}
			final, err := leaseWindDown(e, ws, []int{0, 1, 2, 3, 4}, atMostOneHolder)
			if err != nil {
				return err
			}
			// A handoff notice may still be in flight when the counter
			// converges (the releaser re-sends it until the root commits),
			// so drain until the two sides of the ledger meet.
			if err := leaseDrive(e, ws, 50000, "handoff ledger to balance", atMostOneHolder, func() bool {
				return sumStats(e, func(s gwc.Stats) int { return s.Handoffs }) ==
					sumStats(e, func(s gwc.Stats) int { return s.HandoffCommits })
			}); err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("convoy history (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			// With no reign change to evaporate a notice, the root observes
			// exactly the transfers the members performed.
			h := sumStats(e, func(s gwc.Stats) int { return s.Handoffs })
			hc := sumStats(e, func(s gwc.Stats) int { return s.HandoffCommits })
			if h != hc {
				return fmt.Errorf("members performed %d handoffs, root committed %d", h, hc)
			}
			if h < 2 {
				return fmt.Errorf("convoy produced only %d handoffs; the chain never formed", h)
			}
			if f := sumStats(e, func(s gwc.Stats) int { return s.Failovers + s.Elections }); f != 0 {
				return fmt.Errorf("fault-free convoy run saw %d failovers/elections", f)
			}
			return nil
		},
	}
}

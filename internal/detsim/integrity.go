package detsim

import (
	"fmt"
	"sync/atomic"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/model"
	"optsync/internal/obs"
	"optsync/internal/wire"
)

// divergenceSweep is the anti-entropy interval the scenario runs the
// cluster at: four maintenance ticks, so several sweeps fit inside one
// failure-detection window and a detection-latency bound is meaningful.
const divergenceSweep = 4 * simRetry

// DivergenceRepair: 4 nodes with the anti-entropy sweep enabled; two
// workers on the guarded counter plus unguarded background streams. A
// one-shot misapply fault corrupts the value of one sequenced stream
// frame as node 3 applies it — node 3's local copy now silently
// disagrees with the reign. The sweep must convict node 3, quarantine
// the copy (Health, ReadStale), and repair it through the snapshot path
// with the load still flowing. Then, on a drained cluster, a second
// corruption must be convicted within one sweep interval of the
// injection — the tight latency claim is made where delivery is not
// behind a scheduler-stretched queue, so it measures the protocol and
// not the backlog. Finally every node must report the same digest at
// the same watermark and the acknowledged history must linearize.
func DivergenceRepair() Scenario {
	return Scenario{
		Name:  "divergence-repair",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				history:    256,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			for i := 0; i < e.Nodes(); i++ {
				e.Node(i).SetIntegrity(divergenceSweep)
			}
			checker := model.NewCounterChecker()
			// Node 3 is the corruption victim, so observers avoid it.
			stable := map[int][]int{1: {0, 2}, 2: {0, 1}}
			var ws []*worker
			for _, id := range []int{1, 2} {
				ws = append(ws, &worker{env: e, node: id, obs: stable[id], minObs: 2, checker: checker})
			}
			streams := []int{0, 1, 2}
			next := make([]int64, len(streams))
			pump := func() {
				for si, id := range streams {
					next[si]++
					e.Node(id).Write(simGroup, simStreamBase+gwc.VarID(si), next[si])
				}
			}
			// Pump sparsely enough that the links drain faster than the
			// streams fill them (each pump fans out ~24 frames counting quorum acks; the
			// scheduler delivers under one per event), or the wind-down
			// phases spend their whole budget draining the backlog.
			run := func(budget int, what string, pred func() bool) error {
				for i := 0; i < budget; i++ {
					e.w.waitQuiesce()
					for _, w := range ws {
						w.poll()
					}
					if i%97 == 0 {
						pump()
					}
					if pred() {
						return nil
					}
					if err := e.Step(); err != nil {
						return fmt.Errorf("waiting for %s: %w", what, err)
					}
				}
				return fmt.Errorf("%s not reached within %d events", what, budget)
			}
			// The fault: a sequenced stream frame is mutated just before
			// node 3 applies and folds it, so the corruption lands in both
			// the local copy and the digest — exactly what bad RAM or an
			// apply-path bug would do. The counters cross the scenario /
			// node-goroutine boundary, hence the atomics; the schedule
			// itself stays deterministic because arming happens at
			// quiescence and the hook fires on the deterministic delivery
			// order.
			var wantInjections, injections atomic.Int32
			var injectedAt atomic.Int64 // virtual ns of the latest injection
			e.Node(3).SetMisapply(func(m *wire.Message) {
				if injections.Load() >= wantInjections.Load() {
					return
				}
				if m.Var < uint32(simStreamBase) {
					return // only corrupt background-stream frames
				}
				m.Val += 1 << 40
				injectedAt.Store(int64(e.Now()))
				injections.Add(1)
			})
			if err := run(60000, "first acknowledged increments", func() bool {
				return totalAcked(ws) >= 1
			}); err != nil {
				return err
			}
			// Arm a seed-chosen distance into the workload so different
			// seeds corrupt different frames at different sweep phases.
			for i, k := 0, e.Rand().Intn(600); i < k; i++ {
				e.w.waitQuiesce()
				for _, w := range ws {
					w.poll()
				}
				if i%97 == 0 {
					pump()
				}
				if err := e.Step(); err != nil {
					return err
				}
			}
			wantInjections.Store(1)
			if err := run(60000, "corruption injected", func() bool {
				return injections.Load() >= 1
			}); err != nil {
				return err
			}
			// Detection under load: a sweep must convict node 3 — either
			// the root comparing node 3's digest report against its
			// checkpoint ring, or node 3's own self-check at the
			// watermark. Both end in markDiverged on node 3, which counts
			// Divergences there.
			if err := run(120000, "divergence detected", func() bool {
				return e.Node(3).Stats().Divergences >= 1
			}); err != nil {
				return err
			}
			// While convicted, the copy must refuse to serve. This cut is
			// right after the convicting event: the repair needs at least
			// one more round trip, so the conviction is still standing.
			if h := e.Node(3).Health(); h.Diverged != 1 || h.Serving() {
				return fmt.Errorf("convicted node reports health %+v; want Diverged=1, not serving", h)
			}
			if _, _, err := e.Node(3).ReadStale(simGroup, simCounter, 0); err == nil {
				return fmt.Errorf("ReadStale served from a convicted copy")
			}
			// Repair under load: the corrective snapshot re-bases node 3
			// and clears the conviction while the streams keep flowing.
			if err := run(120000, "divergence repaired", func() bool {
				_, _, diverged, err := e.Node(3).DigestState(simGroup)
				return err == nil && !diverged
			}); err != nil {
				return err
			}
			if err := run(60000, "post-repair increments", func() bool {
				return totalAcked(ws) >= 2
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3})
			if err != nil {
				return err
			}
			// Drain the network completely so the second injection is
			// measured against an idle cluster.
			if err := drive(e, ws, 80000, "network drain", func() bool {
				return e.Inflight() == 0
			}); err != nil {
				return err
			}
			// Quiescent-phase injection: one stream write, corrupted at
			// node 3 on apply. With the links empty, probe delivery is
			// prompt, so conviction must land within one sweep interval
			// (plus the tick the sweep piggybacks on and a little
			// scheduler slack) of the corrupt apply — any more means a
			// digest comparison glided over corrupted state.
			wantInjections.Store(2)
			next[1]++
			e.Node(1).Write(simGroup, simStreamBase+1, next[1])
			if err := drive(e, ws, 40000, "second corruption injected", func() bool {
				return injections.Load() >= 2
			}); err != nil {
				return err
			}
			var detectedAt time.Duration
			if err := drive(e, ws, 120000, "second divergence detected", func() bool {
				if e.Node(3).Stats().Divergences >= 2 {
					detectedAt = e.Now()
					return true
				}
				return false
			}); err != nil {
				return err
			}
			latency := detectedAt - time.Duration(injectedAt.Load())
			if maxLat := divergenceSweep + 4*simRetry; latency > maxLat {
				return fmt.Errorf("quiescent divergence detected %v after injection; want within %v", latency, maxLat)
			}
			// Full convergence: conviction cleared, every node at the same
			// watermark with the same digest, node 3 caught up to every
			// stream's final value despite both corrupted frames, and the
			// counter untouched by the repairs.
			if err := drive(e, ws, 80000, "digest equality across the cluster", func() bool {
				sum0, applied0, diverged0, err := e.Node(0).DigestState(simGroup)
				if err != nil || diverged0 {
					return false
				}
				for i := 1; i < e.Nodes(); i++ {
					sum, applied, diverged, err := e.Node(i).DigestState(simGroup)
					if err != nil || diverged || applied != applied0 || sum != sum0 {
						return false
					}
				}
				for si := range streams {
					v, _ := e.Node(3).Read(simGroup, simStreamBase+gwc.VarID(si))
					if v != next[si] {
						return false
					}
				}
				return true
			}); err != nil {
				return err
			}
			for i := 0; i < e.Nodes(); i++ {
				if v, _ := e.Node(i).Read(simGroup, simCounter); v != final {
					return fmt.Errorf("node %d counter %d != converged %d after repairs", i, v, final)
				}
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after divergence repair (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			if s := e.Node(0).Stats(); s.DigestSweeps == 0 {
				return fmt.Errorf("integrity was enabled but the root never swept")
			}
			if c := e.Node(3).Metrics().Trace.Count(obs.EvDivergence); c < 2 {
				return fmt.Errorf("want >= 2 EvDivergence events on the convicted node, got %d", c)
			}
			return nil
		},
	}
}

package detsim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"optsync/internal/wire"
)

// Options tunes one exploration run. The zero value explores pure
// message/timer interleavings with no loss; scenarios that want loss or
// duplication set probabilities here or flip them mid-run via
// Env.SetLoss.
type Options struct {
	// TimeSkip is the probability of firing the earliest timer even
	// though messages are waiting — the knob that interleaves timeouts
	// (failure detection, elections, batch flushes) with deliveries.
	// 0 means the default (0.15); negative disables time skips entirely
	// (timers then fire only when no message is in flight).
	TimeSkip float64
	// Drop is the probability of dropping a deliverable message instead
	// of delivering it. Only retried-by-design traffic is droppable (the
	// same classification the wall-clock chaos harness uses); control
	// messages the protocol sends exactly once are never dropped.
	Drop float64
	// Dup is the probability of re-enqueueing a delivered message at the
	// tail of its link (a duplicate that arrives later).
	Dup float64
	// MaxDrops / MaxDups bound the total faults per run so a lossy seed
	// cannot starve the protocol forever. Defaults 64 / 16.
	MaxDrops, MaxDups int
	// MaxEvents bounds the scheduler steps per run; exceeding it fails
	// the run as a livelock. Default 300000.
	MaxEvents int
}

func (o Options) withDefaults() Options {
	if o.TimeSkip == 0 {
		o.TimeSkip = 0.15
	}
	if o.TimeSkip < 0 {
		o.TimeSkip = 0
	}
	if o.MaxDrops == 0 {
		o.MaxDrops = 64
	}
	if o.MaxDups == 0 {
		o.MaxDups = 16
	}
	if o.MaxEvents == 0 {
		o.MaxEvents = 300000
	}
	return o
}

// EventKind classifies one scheduler event.
type EventKind uint8

const (
	EDeliver EventKind = iota + 1 // message moved from a link to its inbox
	EDrop                         // message removed from its link undelivered
	EDup                          // message delivered and a copy re-enqueued
	EFire                         // virtual time advanced to a timer deadline
	EFault                        // scenario fault: crash, revive, partition, heal, loss
	EInject                       // scenario forged or rewrote in-flight messages
)

func (k EventKind) String() string {
	switch k {
	case EDeliver:
		return "deliver"
	case EDrop:
		return "drop"
	case EDup:
		return "dup"
	case EFire:
		return "fire"
	case EFault:
		return "fault"
	case EInject:
		return "inject"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one entry of the run trace. Events contain no pointers or
// slices, so two traces compare with ==, element by element — the form
// the replay tests rely on.
type Event struct {
	Step  int
	Kind  EventKind
	From  int           // message source, or -1
	To    int           // message destination, or -1
	Type  wire.Type     // message type for message events
	Seq   uint64        // message sequence/token for message events
	Timer uint64        // timer creation id for EFire
	At    time.Duration // virtual time elapsed since the run began
	Note  string        // human detail for faults and injections
}

func (e Event) String() string {
	switch e.Kind {
	case EFire:
		return fmt.Sprintf("%6d %8s t=%-9v timer %d", e.Step, e.Kind, e.At, e.Timer)
	case EFault, EInject:
		return fmt.Sprintf("%6d %8s t=%-9v %s", e.Step, e.Kind, e.At, e.Note)
	}
	return fmt.Sprintf("%6d %8s t=%-9v %d->%d %v seq=%d", e.Step, e.Kind, e.At, e.From, e.To, e.Type, e.Seq)
}

// errDead reports a world with nothing left to schedule: no message in
// flight and no armed timer. With maintenance timers always re-armed
// this only happens when every node has closed — a scenario bug.
var errDead = errors.New("detsim: dead world: no messages in flight and no armed timers")

// droppable mirrors the wall-clock chaos harness's fault plane: only
// traffic some retry mechanism repairs may be lost — sequenced
// multicasts (resync probes refetch them), rejoin and sync answers
// (their requests re-send every maintenance tick), and batch frames of
// the same.
func droppable(m wire.Message) bool {
	t := m.Type
	if t == wire.TBatch && len(m.Batch) > 0 {
		t = m.Batch[0].Type
	}
	return t == wire.TSeqUpdate || t == wire.TSeqLock ||
		t == wire.TJoinAck || t == wire.TSyncAck
}

func (w *World) elapsedLocked() time.Duration {
	return w.now.Sub(time.Unix(0, 0))
}

// peekTimerLocked discards stale heap heads and reports whether an
// armed timer remains.
func (w *World) peekTimerLocked() bool {
	for w.timers.Len() > 0 {
		e := (w.timers)[0]
		if e.t.armed && e.t.gen == e.gen {
			return true
		}
		heap.Pop(&w.timers)
	}
	return false
}

// stepLocked runs one scheduler event on a quiesced world: deliver,
// drop, or duplicate the head of a seeded-random link, or advance
// virtual time to the earliest timer deadline (seeded-random among
// ties). Caller holds w.mu with quiescedLocked() true.
func (w *World) stepLocked() error {
	live := w.liveLinksLocked()
	hasTimer := w.peekTimerLocked()
	if len(live) == 0 && !hasTimer {
		return errDead
	}
	fireTimer := hasTimer && (len(live) == 0 || w.rng.Float64() < w.opts.TimeSkip)

	if fireTimer {
		due := w.popDue()
		pick := 0
		if len(due) > 1 {
			pick = w.rng.Intn(len(due))
		}
		for i, e := range due {
			if i != pick {
				heap.Push(&w.timers, e)
			}
		}
		e := due[pick]
		w.fire(e) // releases w.mu around AfterFunc callbacks
		w.record(Event{Kind: EFire, From: -1, To: -1, Timer: e.t.id})
		return nil
	}

	li := live[0]
	if len(live) > 1 {
		li = live[w.rng.Intn(len(live))]
	}
	from, to := li/w.n, li%w.n
	m := w.links[li][0]
	ev := Event{From: from, To: to, Type: m.Type, Seq: m.Seq}

	switch {
	case w.eps[to].closed:
		// Receiver shut down mid-run; the message evaporates like a send
		// to a closed socket would.
		w.links[li] = w.links[li][1:]
		ev.Kind = EDrop
		ev.Note = "endpoint closed"
	case w.drop > 0 && w.rng.Float64() < w.drop && droppable(m) && w.drops < w.opts.MaxDrops:
		w.links[li] = w.links[li][1:]
		w.drops++
		ev.Kind = EDrop
	case w.dup > 0 && w.rng.Float64() < w.dup && w.dups < w.opts.MaxDups:
		w.links[li] = append(w.links[li][1:], m)
		w.dups++
		w.eps[to].inbox = append(w.eps[to].inbox, m)
		w.cond.Broadcast()
		ev.Kind = EDup
	default:
		w.links[li] = w.links[li][1:]
		w.eps[to].inbox = append(w.eps[to].inbox, m)
		w.cond.Broadcast()
		ev.Kind = EDeliver
	}
	w.record(ev)
	return nil
}

// liveLinksLocked lists link indexes with traffic, in fixed (from,to)
// order so the seeded pick is deterministic.
func (w *World) liveLinksLocked() []int {
	var live []int
	for i := range w.links {
		if len(w.links[i]) > 0 {
			live = append(live, i)
		}
	}
	return live
}

// record stamps and appends one trace event. Caller holds w.mu.
func (w *World) record(ev Event) {
	ev.Step = w.steps
	ev.At = w.elapsedLocked()
	w.steps++
	w.trace = append(w.trace, ev)
}

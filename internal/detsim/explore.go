package detsim

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/wire"
)

// Scenario is one fault script run against a fresh cluster per seed.
// Run drives the cluster through Env: it configures and joins the
// nodes, advances the world event by event, injects faults, and returns
// an error when an invariant breaks. Everything Run does must be a pure
// function of the Env it is given — no wall clock, no external
// randomness — or the seed stops being a replay key.
type Scenario struct {
	Name  string
	Nodes int
	Opts  Options
	Run   func(e *Env) error
}

// Result is one seeded run's outcome.
type Result struct {
	Name  string
	Seed  int64
	Err   error
	Steps int
	Trace []Event
}

// Failed reports whether the run broke an invariant.
func (r Result) Failed() bool { return r.Err != nil }

// DumpTail formats the last n trace events for a failure report.
func (r Result) DumpTail(n int) string {
	t := r.Trace
	if len(t) > n {
		t = t[len(t)-n:]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s seed %d: %d events, tail:\n", r.Name, r.Seed, r.Steps)
	for _, e := range t {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Env is the scenario's handle on a running simulation: the nodes, the
// stepping controls, and the fault injectors. All methods must be
// called from the scenario goroutine; Step and Until leave the world
// quiesced, so node state read between calls is stable.
type Env struct {
	Seed  int64
	w     *World
	nodes []*gwc.Node
}

// Node returns node i's live gwc handle.
func (e *Env) Node(i int) *gwc.Node { return e.nodes[i] }

// Nodes reports the cluster size.
func (e *Env) Nodes() int { return len(e.nodes) }

// Rand is the run's seeded random stream — the same one the scheduler
// draws from, so scenario-level choices replay with the schedule.
func (e *Env) Rand() *rand.Rand { return e.w.rng }

// Now reports elapsed virtual time.
func (e *Env) Now() time.Duration {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	return e.w.elapsedLocked()
}

// Steps reports scheduler events run so far.
func (e *Env) Steps() int { return e.w.Steps() }

// Inflight reports how many messages sit undelivered on the simulated
// links. Quiescence only means every goroutine is parked — traffic can
// still be queued — so scenarios whose final assertions count message
// side effects (e.g. the root's suppression trace) must keep stepping
// until the network is drained too, or they race the tail of the run.
func (e *Env) Inflight() int { return e.w.Inflight() }

// Step waits for the cluster to quiesce, then runs exactly one
// scheduler event. It fails on a dead world or once the run's event
// budget is spent (a livelock: the protocol is cycling without the
// scenario's predicates ever holding).
func (e *Env) Step() error {
	w := e.w
	w.mu.Lock()
	defer w.mu.Unlock()
	for !w.quiescedLocked() {
		w.cond.Wait()
	}
	if w.steps >= w.opts.MaxEvents {
		return fmt.Errorf("detsim: event budget %d exhausted (livelock?)", w.opts.MaxEvents)
	}
	return w.stepLocked()
}

// Until steps the world until pred holds (checked at quiescence) or max
// events pass, whichever first; `what` names the condition in the
// failure. Predicates read node state through the public gwc API —
// at quiescence nothing else is running, so reads are consistent.
func (e *Env) Until(max int, what string, pred func() bool) error {
	e.w.waitQuiesce()
	for i := 0; i < max; i++ {
		if pred() {
			return nil
		}
		if err := e.Step(); err != nil {
			return fmt.Errorf("detsim: waiting for %s: %w", what, err)
		}
	}
	e.w.waitQuiesce()
	if pred() {
		return nil
	}
	return fmt.Errorf("detsim: %s not reached within %d events", what, max)
}

// Crash isolates a node: every link to and from it is severed at send
// time, but messages already in flight still land and the node's
// goroutines keep running blind — the same semantics as the wall-clock
// chaos harness, and the model for a machine that lost its network.
func (e *Env) Crash(i int) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	e.w.crashed[i] = true
	e.w.record(Event{Kind: EFault, From: i, To: -1, Note: fmt.Sprintf("crash node %d", i)})
}

// Revive reconnects a crashed node. Its protocol state is whatever it
// drifted to while isolated; scenarios model a true restart by calling
// Rejoin on it afterwards.
func (e *Env) Revive(i int) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	e.w.crashed[i] = false
	e.w.record(Event{Kind: EFault, From: i, To: -1, Note: fmt.Sprintf("revive node %d", i)})
}

// Partition severs every link between side a and side b, both
// directions. Links within each side stay up.
func (e *Env) Partition(a, b []int) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	for _, x := range a {
		for _, y := range b {
			e.w.cuts[[2]int{x, y}] = true
			e.w.cuts[[2]int{y, x}] = true
		}
	}
	e.w.record(Event{Kind: EFault, From: -1, To: -1, Note: fmt.Sprintf("partition %v | %v", a, b)})
}

// Heal removes every partition cut (crashed nodes stay crashed).
func (e *Env) Heal() {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	clear(e.w.cuts)
	e.w.record(Event{Kind: EFault, From: -1, To: -1, Note: "heal"})
}

// SetLoss changes the drop/duplicate probabilities mid-run (bounded by
// the run's MaxDrops/MaxDups regardless).
func (e *Env) SetLoss(drop, dup float64) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	e.w.drop, e.w.dup = drop, dup
	e.w.record(Event{Kind: EFault, From: -1, To: -1, Note: fmt.Sprintf("loss drop=%.2f dup=%.2f", drop, dup)})
}

// Inject forges a message onto the from->to link, bypassing crash and
// partition cuts — the tool for Byzantine-flavored violation scenarios
// (a corrupted grant, a replayed frame) that prove the harness and the
// checkers actually catch protocol violations.
func (e *Env) Inject(from, to int, m wire.Message) {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	e.w.links[from*e.w.n+to] = append(e.w.links[from*e.w.n+to], m)
	e.w.record(Event{Kind: EInject, From: from, To: to, Type: m.Type, Seq: m.Seq,
		Note: fmt.Sprintf("inject %v %d->%d", m.Type, from, to)})
}

// ReplaceInFlight runs f over every message currently queued on the
// from->to link; f mutates in place and reports whether it changed the
// message. Returns how many it changed.
func (e *Env) ReplaceInFlight(from, to int, f func(m *wire.Message) bool) int {
	e.w.mu.Lock()
	defer e.w.mu.Unlock()
	q := e.w.links[from*e.w.n+to]
	changed := 0
	for i := range q {
		if f(&q[i]) {
			changed++
		}
	}
	if changed > 0 {
		e.w.record(Event{Kind: EInject, From: from, To: to,
			Note: fmt.Sprintf("rewrote %d in-flight %d->%d", changed, from, to)})
	}
	return changed
}

// RunSeed executes one scenario under one seed and returns its outcome
// with the full event trace. Node construction order is part of the
// deterministic state (it fixes timer creation order), so nodes are
// always built 0..N-1 before the scenario script runs.
func RunSeed(sc Scenario, seed int64) Result {
	w := NewWorld(sc.Nodes, seed, sc.Opts)
	env := &Env{Seed: seed, w: w, nodes: make([]*gwc.Node, sc.Nodes)}
	for i := range env.nodes {
		ep, err := w.Endpoint(i)
		if err != nil {
			return Result{Name: sc.Name, Seed: seed, Err: err}
		}
		env.nodes[i] = gwc.NewNodeClock(i, ep, w.Clock())
	}
	err := sc.Run(env)
	for _, n := range env.nodes {
		n.Close()
	}
	w.Close()
	return Result{Name: sc.Name, Seed: seed, Err: err, Steps: w.Steps(), Trace: w.Trace()}
}

// Explore runs a scenario across seeds base..base+n-1 and returns the
// failing results. Any failure replays bit-identically with
// RunSeed(sc, failure.Seed).
func Explore(sc Scenario, base int64, n int) []Result {
	var failures []Result
	for s := int64(0); s < int64(n); s++ {
		r := RunSeed(sc, base+s)
		if r.Failed() {
			failures = append(failures, r)
		}
	}
	return failures
}

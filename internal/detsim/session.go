package detsim

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/obs"
)

// Session-lock scenarios: group mutual exclusion under the
// deterministic scheduler. Like the counter workers, the session
// workloads use only the non-blocking half of the gwc API
// (SendSessionRequest / SessionState / LeaveSession) as polled state
// machines.

// simReadSession is the shared session the scenario readers churn
// through; the writers use session 0 (exclusive).
const simReadSession uint32 = 1

// reader is a polled state machine that churns one node through the
// shared session: request an entry, hold it for a few polls, leave,
// repeat. Its only obligations are liveness (each cycle completes) and
// honesty (it never touches the guarded counter).
type reader struct {
	env  *Env
	node int

	state   rState
	stopped bool
	polls   int
	entries int
}

type rState int

const (
	rIdle rState = iota
	rWaiting
	rHolding
	rDone
)

const readerHoldPolls = 40 // polls an entry is held before leaving

func (r *reader) stop() {
	r.stopped = true
	if r.state == rWaiting {
		r.env.Node(r.node).CancelLockRequest(simGroup, simLock)
		r.state = rDone
	}
	if r.state == rIdle {
		r.state = rDone
	}
}

func (r *reader) done() bool { return r.state == rDone }

func (r *reader) poll() {
	n := r.env.Node(r.node)
	switch r.state {
	case rIdle:
		if r.stopped {
			r.state = rDone
			return
		}
		n.SendSessionRequest(simGroup, simLock, simReadSession)
		r.state = rWaiting
		r.polls = 0
	case rWaiting:
		si, _ := n.SessionState(simGroup, simLock)
		if !si.Mine || si.Session != simReadSession {
			r.polls++
			if r.polls%resendEvery == 0 {
				n.SendSessionRequest(simGroup, simLock, simReadSession)
			}
			return
		}
		r.entries++
		r.state = rHolding
		r.polls = 0
	case rHolding:
		r.polls++
		if r.polls >= readerHoldPolls || r.stopped {
			if err := n.LeaveSession(simGroup, simLock); err == nil {
				r.state = rIdle
			}
			if r.stopped {
				r.state = rDone
			}
		}
	}
}

// SessionFairnessChurn: 4 nodes; two readers churn overlapping entries
// in the shared session — a stream that would hold the session open
// forever if same-session joins were always admitted — while an
// exclusive writer increments the guarded counter through the stream.
// The writer must keep completing sections (fairness: once it queues,
// new reader joins queue behind it), at least two readers must be
// observed holding concurrently (the root's holder gauge), and the
// acknowledged history must linearize.
func SessionFairnessChurn() Scenario {
	return Scenario{
		Name:  "session-fairness-churn",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				history: 64,
				guards:  guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			w := &worker{env: e, node: 3, obs: []int{0, 1}, minObs: 2, checker: checker}
			rs := []*reader{
				{env: e, node: 1},
				{env: e, node: 2},
			}
			ws := []*worker{w}
			pollAll := func() {
				for _, r := range rs {
					r.poll()
				}
				w.poll()
			}
			run := func(budget int, what string, pred func() bool) error {
				for i := 0; i < budget; i++ {
					e.w.waitQuiesce()
					pollAll()
					if pred() {
						return nil
					}
					if err := e.Step(); err != nil {
						return fmt.Errorf("waiting for %s: %w", what, err)
					}
				}
				return fmt.Errorf("%s not reached within %d events", what, budget)
			}
			// Let the reader churn establish itself before the writer
			// contends, a seed-chosen head start.
			if err := run(400+e.Rand().Intn(400), "reader churn to start", func() bool {
				return rs[0].entries >= 1 && rs[1].entries >= 1
			}); err != nil {
				return err
			}
			// The writer must achieve acknowledged increments through the
			// churn: every section is proof it was not starved.
			if err := run(120000, "writer sections through reader churn", func() bool {
				return w.acked >= 3
			}); err != nil {
				return fmt.Errorf("writer starved by same-session reader churn: %w", err)
			}
			for _, r := range rs {
				r.stop()
			}
			if err := run(40000, "readers wound down", func() bool {
				return rs[0].done() && rs[1].done()
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after session churn (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			// The scenario is vacuous unless concurrent entering actually
			// happened: the root must have admitted a join into the open
			// session at least once.
			if max := e.Node(0).Metrics().Gauge(obs.GaugeSessHolders).Max(); max < 2 {
				return fmt.Errorf("holder gauge max = %d, want >= 2 (no concurrent entering)", max)
			}
			if j := e.Node(0).Stats().SessionJoins; j == 0 {
				return fmt.Errorf("no same-session join was admitted (readers never overlapped)")
			}
			return nil
		},
	}
}

// SessionFailoverMultiHolder: 4 nodes; two readers enter the shared
// session and hold their entries across a root crash. The elected
// successor must reconstruct the multi-holder state from member reports
// (both entries intact — no lost holder, no double grant), the holders
// must be able to finish their sections against the new root, and an
// exclusive writer queued behind them must then enter and its
// increments linearize.
func SessionFailoverMultiHolder() Scenario {
	return Scenario{
		Name:  "session-failover-multi-holder",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				history: 128,
				guards:  guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			w := &worker{env: e, node: 3, obs: []int{1, 2}, minObs: 2, checker: checker}
			ws := []*worker{w}
			// Both readers enter the shared session and hold.
			for _, id := range []int{1, 2} {
				e.Node(id).SendSessionRequest(simGroup, simLock, simReadSession)
			}
			bothHold := func() bool {
				for _, id := range []int{1, 2} {
					si, _ := e.Node(id).SessionState(simGroup, simLock)
					if !si.Mine || si.Session != simReadSession {
						return false
					}
				}
				return true
			}
			if err := drive(e, nil, 60000, "both readers to hold entries", bothHold); err != nil {
				return err
			}
			// A seed-chosen pause with the session open, then the root dies.
			for i, k := 0, e.Rand().Intn(300); i < k; i++ {
				e.w.waitQuiesce()
				if err := e.Step(); err != nil {
					return err
				}
			}
			e.Crash(0)
			if err := drive(e, nil, 120000, "failover to a surviving member", func() bool {
				for _, id := range []int{1, 2, 3} {
					if e.Node(id).Stats().Failovers >= 1 {
						return true
					}
				}
				return false
			}); err != nil {
				return err
			}
			// The re-based members must still hold their entries: the new
			// root reconstructed the multi-holder session from reports.
			if err := drive(e, nil, 40000, "holders to survive the re-base", bothHold); err != nil {
				return err
			}
			// The writer queues behind the open session against the new
			// root; the holders then finish, and the writer must enter.
			w.poll() // sends the exclusive request (wIdle -> wWaiting)
			for _, id := range []int{1, 2} {
				if err := e.Node(id).LeaveSession(simGroup, simLock); err != nil {
					return fmt.Errorf("holder %d could not leave after failover: %w", id, err)
				}
			}
			if err := drive(e, ws, 120000, "writer sections after the handoff", func() bool {
				return w.acked >= 2
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{1, 2, 3})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after multi-holder failover (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			return nil
		},
	}
}

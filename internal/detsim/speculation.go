package detsim

import (
	"fmt"
	"strings"
	"sync/atomic"

	"optsync/internal/gwc"
	"optsync/internal/model"
	"optsync/internal/obs"
)

// Speculative-execution scenario: the paper's optimistic path driven at
// the protocol level, with its abort accounting cross-checked against
// the root's suppression events.
//
// core.Engine itself cannot run under the deterministic scheduler — its
// blocking waits run on goroutines the quiescence detector cannot see —
// so specWorker mirrors the engine's optimistic path as a polled state
// machine using only the non-blocking gwc API: arm the lock-change
// interrupt, send the request, run the section speculatively (saving
// prior values), commit when the grant arrives untainted, and roll back
// (restore the save set, resume insharing, withdraw the request) when
// the lock goes to the rival first.

type specWorker struct {
	env     *Env
	node    int
	obs     []int // stable observer nodes, never this worker
	minObs  int
	checker *model.CounterChecker

	state   wState
	stopped bool
	from    int64 // counter value read at speculation entry
	saved   map[gwc.VarID]int64
	rolled  *atomic.Bool
	unreg   func()
	polls   int

	acked   int
	aborted int
}

func (w *specWorker) poll() error {
	n := w.env.Node(w.node)
	grant := gwc.GrantValue(w.node)
	switch w.state {
	case wIdle:
		if w.stopped {
			w.state = wDone
			return nil
		}
		v, err := n.LockValue(simGroup, simLock)
		if err != nil {
			return err
		}
		if v != gwc.Free {
			// The engine's filter would take the regular path here; the
			// scenario only exercises speculation, so just wait.
			return nil
		}
		// Arm the interrupt before the first speculative write, exactly
		// as core.optimistic does: if the lock goes to another node, the
		// hook suspends insharing atomically with the observation.
		rolled := new(atomic.Bool)
		unreg, err := n.OnLockChange(simGroup, simLock, func(v int64) gwc.HookAction {
			if rolled.Load() {
				return gwc.HookNone
			}
			if v != gwc.Free && v != grant {
				rolled.Store(true)
				return gwc.HookSuspend
			}
			return gwc.HookNone
		})
		if err != nil {
			return err
		}
		w.rolled, w.unreg = rolled, unreg
		if err := n.SendLockRequest(simGroup, simLock); err != nil {
			return err
		}
		t, _ := n.Read(simGroup, simCounter)
		st, _ := n.Read(simGroup, stampVar(w.node))
		w.saved = map[gwc.VarID]int64{simCounter: t, stampVar(w.node): st}
		n.Write(simGroup, simCounter, t+1)
		n.Write(simGroup, stampVar(w.node), t+1)
		w.from = t
		w.state = wWaiting
		w.polls = 0
	case wWaiting:
		if w.rolled.Load() {
			// Rollback: both guarded writes of this section reached the
			// root while the rival held the lock, so the root suppressed
			// exactly two updates — the invariant the scenario checks.
			w.unreg()
			if err := n.RestoreLocal(simGroup, w.saved); err != nil {
				return err
			}
			if err := n.ResumeInsharing(simGroup); err != nil {
				return err
			}
			// An already-granted race is fine: cancelling a held lock
			// auto-releases it.
			n.CancelLockRequest(simGroup, simLock)
			w.aborted++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
			return nil
		}
		v, _ := n.LockValue(simGroup, simLock)
		if v != grant {
			w.polls++
			if w.polls%resendEvery == 0 {
				n.SendLockRequest(simGroup, simLock)
			}
			return nil
		}
		// Commit: the grant reached this node with no other holder in
		// between, so FIFO ordering guarantees the root accepted both
		// speculative writes before processing this release.
		w.unreg()
		if err := n.Release(simGroup, simLock); err != nil {
			return err
		}
		w.state = wObserving
		w.polls = 0
	case wObserving:
		seen := 0
		for _, o := range w.obs {
			v, _ := w.env.Node(o).Read(simGroup, stampVar(w.node))
			if v >= w.from+1 {
				seen++
			}
		}
		if seen >= w.minObs {
			w.checker.Acked(w.from)
			w.acked++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
			return nil
		}
		w.polls++
		if w.polls >= observeFor {
			// Fault-free run: a committed section must become visible.
			var vals []string
			for _, o := range w.obs {
				v, _ := w.env.Node(o).Read(simGroup, stampVar(w.node))
				vals = append(vals, fmt.Sprintf("node%d=%d", o, v))
			}
			return fmt.Errorf("spec worker %d: committed section from=%d never observed (%s)",
				w.node, w.from, strings.Join(vals, " "))
		}
	}
	return nil
}

// SpeculationSuppression: 3 nodes, no faults; two workers speculate on
// the same guarded counter, so most rounds produce one commit and one
// rollback. Afterwards three independent accountings of the same aborts
// must agree: the root's EvSuppressed trace events (exactly two per
// rolled-back section, every one tagged with a valid reason), the
// root's mutex-guarded Suppressed counter, and the acknowledged history
// the CounterChecker linearizes against the converged counter.
func SpeculationSuppression() Scenario {
	return Scenario{
		Name:  "speculation-suppression",
		Nodes: 3,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				history: 64,
				guards:  guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			ws := []*specWorker{
				{env: e, node: 1, obs: []int{0, 2}, minObs: 2, checker: checker},
				{env: e, node: 2, obs: []int{0, 1}, minObs: 2, checker: checker},
			}
			aborts := func() int { return ws[0].aborted + ws[1].aborted }
			acks := func() int { return ws[0].acked + ws[1].acked }
			driveSpec := func(budget int, what string, pred func() bool) error {
				for i := 0; i < budget; i++ {
					e.w.waitQuiesce()
					for _, w := range ws {
						if err := w.poll(); err != nil {
							return err
						}
					}
					if pred() {
						return nil
					}
					if err := e.Step(); err != nil {
						return fmt.Errorf("waiting for %s: %w", what, err)
					}
				}
				return fmt.Errorf("%s not reached within %d events (acked=%d aborted=%d)",
					what, budget, acks(), aborts())
			}
			if err := driveSpec(120000, "commits and rollbacks", func() bool {
				return acks() >= 4 && aborts() >= 2
			}); err != nil {
				return err
			}
			for _, w := range ws {
				w.stopped = true
			}
			var final int64
			if err := driveSpec(80000, "cluster convergence", func() bool {
				for _, w := range ws {
					if w.state != wDone {
						return false
					}
				}
				// The last worker's cancel (and the root's answer to it)
				// may still be in flight when the counters already agree;
				// the suppression accounting below counts message side
				// effects, so drain the network before checking it.
				if e.Inflight() > 0 {
					return false
				}
				v0, _ := e.Node(0).Read(simGroup, simCounter)
				for _, i := range []int{1, 2} {
					v, _ := e.Node(i).Read(simGroup, simCounter)
					if v != v0 {
						return false
					}
				}
				final = v0
				return true
			}); err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("speculative history (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}

			// Abort accounting. Every rolled-back section wrote exactly two
			// guarded variables (counter + stamp) while another node held
			// the lock, and a committed section's writes are all accepted,
			// so the root's suppression events must number exactly 2*aborts.
			root := e.Node(0)
			suppressed := int(root.Metrics().Trace.Count(obs.EvSuppressed))
			if suppressed != 2*aborts() {
				return fmt.Errorf("root suppressed %d guarded writes, want exactly 2 per rollback (%d rollbacks)",
					suppressed, aborts())
			}
			if got := root.Stats().Suppressed; got != suppressed {
				return fmt.Errorf("trace counted %d suppressions but Stats says %d", suppressed, got)
			}
			for _, ev := range root.Metrics().Trace.Snapshot() {
				if ev.Type == obs.EvSuppressed && ev.B != obs.ReasonNotHolder && ev.B != obs.ReasonStaleGrant {
					return fmt.Errorf("suppressed write with invalid reason: %v", ev)
				}
			}
			return nil
		},
	}
}

package detsim

import (
	"fmt"
	"strings"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/model"
)

// Scenario scripts for the exploration corpus. Each wires a fresh
// cluster, drives a counter workload through the live gwc stack, injects
// a fault at a seed-chosen moment, and checks the acknowledged history
// against internal/model's linearizability checker after the dust
// settles.
//
// The scripts only use the non-blocking half of the gwc API
// (SendLockRequest / LockValue / Read / Write / Release): a blocking call
// would park the scenario goroutine on protocol progress that only the
// scenario itself can schedule. Workers are therefore explicit state
// machines, polled once per scheduler event at quiescence.

const (
	simGroup   gwc.GroupID = 1
	simLock    gwc.LockID  = 1
	simCounter gwc.VarID   = 1
	// Per-worker stamp variables: stampVar(w) is written only by worker
	// w, inside the same critical section as the counter, which makes the
	// worker's increments attributable (see worker.poll).
	simStampBase gwc.VarID = 100
	// Unguarded per-node stream variables for background load.
	simStreamBase gwc.VarID = 200
)

func stampVar(node int) gwc.VarID { return simStampBase + gwc.VarID(node) }

// simTimers are the virtual-time protocol timers every scenario uses
// unless it overrides them: a 2ms maintenance tick, and a failure
// deadline comfortably past the 50ms the constructor arms the first
// tick at (otherwise every member would suspect the root before the
// first heartbeat could possibly have been sent).
const (
	simRetry     = 2 * time.Millisecond
	simFailAfter = 80 * time.Millisecond
	simElectWait = 20 * time.Millisecond
)

// clusterCfg is the shared scenario setup.
type clusterCfg struct {
	quorumAcks bool
	batch      bool
	history    int
	guards     map[gwc.VarID]gwc.LockID
	electWait  time.Duration
	leases     time.Duration // lock-lease TTL; zero leaves leasing off
}

func setup(e *Env, c clusterCfg) (gwc.GroupConfig, error) {
	members := make([]int, e.Nodes())
	for i := range members {
		members[i] = i
	}
	cfg := gwc.GroupConfig{
		ID:          simGroup,
		Root:        0,
		Members:     members,
		Guards:      c.guards,
		HistorySize: c.history,
	}
	ew := c.electWait
	if ew == 0 {
		ew = simElectWait
	}
	for i := 0; i < e.Nodes(); i++ {
		n := e.Node(i)
		n.SetTimers(simRetry, simFailAfter, ew)
		n.SetQuorumAcks(c.quorumAcks)
		if c.batch {
			n.SetBatching(3*time.Millisecond, 8)
		}
		if c.leases > 0 {
			n.SetLeases(c.leases)
		}
		// Event tracing is pure bookkeeping (atomics into a per-node
		// ring, stamped with virtual time), so it cannot perturb the
		// schedule; scenarios assert on the captured events.
		n.Metrics().Trace.Enable(0)
		if err := n.Join(cfg); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// guardedCfg guards the counter and every worker's stamp variable with
// the one lock, so the root suppresses writes from stale sections.
func guardedCfg(nodes int) map[gwc.VarID]gwc.LockID {
	g := map[gwc.VarID]gwc.LockID{simCounter: simLock}
	for i := 0; i < nodes; i++ {
		g[stampVar(i)] = simLock
	}
	return g
}

// worker runs lock-guarded counter increments as a polled state
// machine. One completed operation: acquire the lock, read the counter
// t, write t+1 to the counter and to this worker's private stamp
// variable, release — then wait to OBSERVE the stamp at enough other
// nodes before acknowledging the increment to the checker.
//
// The observation rule is what makes acknowledgements sound. The stamp
// variable has a single writer, so stamp==t+1 applied at another node
// proves this worker's write was sequenced and reached that node; the
// counter alone could not tell this worker's t+1 from a double-granted
// rival's. Requiring it at minObs of the scenario's stable nodes —
// nodes the script never crashes or rejoins, minObs chosen so any
// election majority must include one — makes the write durable across
// every failover the scenario can cause. An increment that is never
// observed in time is abandoned, about which the checker claims
// nothing.
type worker struct {
	env     *Env
	node    int
	obs     []int // stable observer nodes (never this worker)
	minObs  int
	checker *model.CounterChecker

	state   wState
	stopped bool
	from    int64 // counter value read in the current section
	polls   int   // polls spent in the current state
	acked   int
	aborted int
}

type wState int

const (
	wIdle wState = iota
	wWaiting
	wObserving
	wDone
)

const (
	resendEvery = 400  // waiting polls between request re-sends
	observeFor  = 6000 // observing polls before abandoning the op
)

// stop makes the worker wind down: no new sections; a pending request
// is cancelled; a pending observation runs to ack or abandonment.
func (w *worker) stop() {
	w.stopped = true
	if w.state == wWaiting {
		w.env.Node(w.node).CancelLockRequest(simGroup, simLock)
		w.state = wDone
	}
	if w.state == wIdle {
		w.state = wDone
	}
}

func (w *worker) done() bool { return w.state == wDone }

// poll advances the state machine one notch. Called only at quiescence,
// so every read is a stable protocol state and every send lands in a
// deterministic order.
func (w *worker) poll() {
	n := w.env.Node(w.node)
	switch w.state {
	case wIdle:
		if w.stopped {
			w.state = wDone
			return
		}
		n.SendLockRequest(simGroup, simLock)
		w.state = wWaiting
		w.polls = 0
	case wWaiting:
		v, _ := n.LockValue(simGroup, simLock)
		if v != gwc.GrantValue(w.node) {
			w.polls++
			if w.polls%resendEvery == 0 {
				// The request (or its grant) may be sitting in a dead
				// root's mailbox; re-register with whatever root the
				// member currently follows.
				n.SendLockRequest(simGroup, simLock)
			}
			return
		}
		// Critical section, executed in one quiescent instant: the eager
		// writes and the release all hit the wire before the scheduler
		// runs another event.
		t, _ := n.Read(simGroup, simCounter)
		n.Write(simGroup, simCounter, t+1)
		n.Write(simGroup, stampVar(w.node), t+1)
		if err := n.Release(simGroup, simLock); err != nil {
			w.aborted++
			w.state = wIdle
			return
		}
		w.from = t
		w.state = wObserving
		w.polls = 0
	case wObserving:
		seen := 0
		for _, o := range w.obs {
			v, _ := w.env.Node(o).Read(simGroup, stampVar(w.node))
			if v >= w.from+1 {
				seen++
			}
		}
		if seen >= w.minObs {
			w.checker.Acked(w.from)
			w.acked++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
			return
		}
		w.polls++
		if w.polls >= observeFor {
			// Never confirmed; the op may or may not have committed, and
			// the checker hears nothing about it.
			w.aborted++
			w.state = wIdle
			if w.stopped {
				w.state = wDone
			}
		}
	}
}

// drive steps the world until pred holds, polling the workers once per
// event so the workload advances with the schedule.
func drive(e *Env, ws []*worker, budget int, what string, pred func() bool) error {
	for i := 0; i < budget; i++ {
		e.w.waitQuiesce()
		for _, w := range ws {
			w.poll()
		}
		if pred() {
			return nil
		}
		if err := e.Step(); err != nil {
			return fmt.Errorf("waiting for %s: %w", what, err)
		}
	}
	e.w.waitQuiesce()
	for _, w := range ws {
		w.poll()
	}
	if pred() {
		return nil
	}
	return fmt.Errorf("%s not reached within %d events", what, budget)
}

// windDown stops the workers, lets pending observations resolve, and
// waits for every node to agree on the counter. Returns the converged
// final value.
func windDown(e *Env, ws []*worker, alive []int) (int64, error) {
	for _, w := range ws {
		w.stop()
	}
	var final int64
	err := drive(e, ws, 80000, "cluster convergence", func() bool {
		for _, w := range ws {
			if !w.done() {
				return false
			}
		}
		v0, _ := e.Node(alive[0]).Read(simGroup, simCounter)
		for _, i := range alive[1:] {
			v, _ := e.Node(i).Read(simGroup, simCounter)
			if v != v0 {
				return false
			}
		}
		final = v0
		return true
	})
	if err != nil {
		var state []string
		for _, i := range alive {
			v, _ := e.Node(i).Read(simGroup, simCounter)
			s := e.Node(i).Stats()
			state = append(state, fmt.Sprintf("node %d: ctr=%d failovers=%d elections=%d rejoins=%d fenced=%d",
				i, v, s.Failovers, s.Elections, s.Rejoins, s.Fenced))
		}
		for _, w := range ws {
			state = append(state, fmt.Sprintf("worker %d: state=%d acked=%d aborted=%d", w.node, w.state, w.acked, w.aborted))
		}
		err = fmt.Errorf("%w\n  %s", err, strings.Join(state, "\n  "))
	}
	return final, err
}

// totalAcked sums acknowledged increments across workers.
func totalAcked(ws []*worker) int {
	n := 0
	for _, w := range ws {
		n += w.acked
	}
	return n
}

// RootCrashMidBatch: 4 nodes with write coalescing and quorum acks on,
// three workers incrementing a guarded counter; the root crashes at a
// seed-chosen moment mid-workload, the survivors fail over, the old
// root revives into the successor's reign, and the acknowledged history
// must still linearize against the converged counter.
func RootCrashMidBatch() Scenario {
	return Scenario{
		Name:  "root-crash-mid-batch",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				batch:      true,
				history:    64,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			stable := map[int][]int{1: {2, 3}, 2: {1, 3}, 3: {1, 2}}
			var ws []*worker
			for _, id := range []int{1, 2, 3} {
				ws = append(ws, &worker{env: e, node: id, obs: stable[id], minObs: 2, checker: checker})
			}
			if err := drive(e, ws, 60000, "first acknowledged increments", func() bool {
				return totalAcked(ws) >= 2
			}); err != nil {
				return err
			}
			// Crash the root a seed-chosen distance into the workload so
			// different seeds catch it with different batches in flight.
			for i, k := 0, e.Rand().Intn(60); i < k; i++ {
				e.w.waitQuiesce()
				for _, w := range ws {
					w.poll()
				}
				if err := e.Step(); err != nil {
					return err
				}
			}
			e.Crash(0)
			if err := drive(e, ws, 80000, "failover to a surviving member", func() bool {
				for _, id := range []int{1, 2, 3} {
					if e.Node(id).Stats().Failovers >= 1 {
						return true
					}
				}
				return false
			}); err != nil {
				return err
			}
			e.Revive(0)
			if err := drive(e, ws, 60000, "post-failover increments", func() bool {
				return totalAcked(ws) >= 4
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after root crash (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			batches := 0
			for i := 0; i < e.Nodes(); i++ {
				batches += e.Node(i).Stats().Batches
			}
			if batches == 0 {
				return fmt.Errorf("batching was configured but no batch frame was sent")
			}
			return nil
		},
	}
}

// PartitionDuringElection: 5 nodes; the root crashes, and while the
// survivors are mid-election the network splits 1|3 so that only the
// majority side can finish it. The minority member must never promote,
// and after heal the acknowledged history must linearize.
func PartitionDuringElection() Scenario {
	return Scenario{
		Name:  "partition-during-election",
		Nodes: 5,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				history:    128,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			stable := map[int][]int{1: {2, 3, 4}, 3: {1, 2, 4}}
			var ws []*worker
			for _, id := range []int{1, 3} {
				ws = append(ws, &worker{env: e, node: id, obs: stable[id], minObs: 3, checker: checker})
			}
			noMinorityPromotion := func() error {
				if f := e.Node(1).Stats().Failovers; f > 0 {
					return fmt.Errorf("minority node 1 promoted itself %d times without a quorum", f)
				}
				return nil
			}
			if err := drive(e, ws, 60000, "first acknowledged increments", func() bool {
				return totalAcked(ws) >= 1
			}); err != nil {
				return err
			}
			e.Crash(0)
			if err := drive(e, ws, 80000, "election to begin", func() bool {
				for _, id := range []int{1, 2, 3, 4} {
					if e.Node(id).Stats().Elections >= 1 {
						return true
					}
				}
				return false
			}); err != nil {
				return err
			}
			e.Partition([]int{1}, []int{2, 3, 4})
			if err := drive(e, ws, 120000, "majority-side failover", func() bool {
				for _, id := range []int{2, 3, 4} {
					if e.Node(id).Stats().Failovers >= 1 {
						return true
					}
				}
				return false
			}); err != nil {
				return err
			}
			if err := noMinorityPromotion(); err != nil {
				return err
			}
			e.Heal()
			e.Revive(0)
			if err := drive(e, ws, 80000, "post-heal increments", func() bool {
				return totalAcked(ws) >= 2
			}); err != nil {
				return err
			}
			if err := noMinorityPromotion(); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3, 4})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after partitioned election (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			return nil
		},
	}
}

// RejoinUnderLoad: 4 nodes with batching; two workers on the guarded
// counter plus unguarded background streams from three nodes; node 3
// crashes at a seed-chosen point, revives with empty state, and rejoins
// while the load keeps flowing. It must catch back up to every stream
// and the history must linearize.
func RejoinUnderLoad() Scenario {
	return Scenario{
		Name:  "rejoin-under-load",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				batch:      true,
				history:    256,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			// Node 3 is the crash/rejoin victim, so observers avoid it.
			stable := map[int][]int{1: {0, 2}, 2: {0, 1}}
			var ws []*worker
			for _, id := range []int{1, 2} {
				ws = append(ws, &worker{env: e, node: id, obs: stable[id], minObs: 2, checker: checker})
			}
			streams := []int{0, 1, 2}
			next := make([]int64, len(streams))
			pump := func() {
				for si, id := range streams {
					next[si]++
					e.Node(id).Write(simGroup, simStreamBase+gwc.VarID(si), next[si])
				}
			}
			run := func(budget int, what string, pred func() bool) error {
				for i := 0; i < budget; i++ {
					e.w.waitQuiesce()
					for _, w := range ws {
						w.poll()
					}
					if i%7 == 0 {
						pump()
					}
					if pred() {
						return nil
					}
					if err := e.Step(); err != nil {
						return fmt.Errorf("waiting for %s: %w", what, err)
					}
				}
				return fmt.Errorf("%s not reached within %d events", what, budget)
			}
			if err := run(60000, "first acknowledged increments", func() bool {
				return totalAcked(ws) >= 1
			}); err != nil {
				return err
			}
			e.Crash(3)
			// Keep the load flowing for a seed-chosen dark window.
			for i, k := 0, 2000+e.Rand().Intn(2000); i < k; i++ {
				e.w.waitQuiesce()
				for _, w := range ws {
					w.poll()
				}
				if i%7 == 0 {
					pump()
				}
				if err := e.Step(); err != nil {
					return err
				}
			}
			e.Revive(3)
			if err := e.Node(3).Rejoin(simGroup); err != nil {
				return err
			}
			if err := run(80000, "node 3 re-admission", func() bool {
				return e.Node(3).Stats().Rejoins >= 1
			}); err != nil {
				return err
			}
			if err := run(40000, "more increments after the rejoin", func() bool {
				return totalAcked(ws) >= 2
			}); err != nil {
				return err
			}
			// Stop the streams, then require the rejoined node to catch up
			// to every stream's final value.
			if err := drive(e, ws, 80000, "rejoined node stream catch-up", func() bool {
				for si := range streams {
					v, _ := e.Node(3).Read(simGroup, simStreamBase+gwc.VarID(si))
					if v != next[si] {
						return false
					}
				}
				return true
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("after rejoin under load (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() == 0 {
				return fmt.Errorf("no increment was ever acknowledged (vacuous run)")
			}
			batches := 0
			for i := 0; i < e.Nodes(); i++ {
				batches += e.Node(i).Stats().Batches
			}
			if batches == 0 {
				return fmt.Errorf("batching was configured but no batch frame was sent")
			}
			return nil
		},
	}
}

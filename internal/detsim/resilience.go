package detsim

import (
	"errors"
	"fmt"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/model"
	"optsync/internal/obs"
)

// Resilience-layer scenarios: the fencing lease plus the stuck-operation
// watchdog under a long quorum outage, and the bounded-staleness
// degraded-read path on a member that lost its reign. Both drive the
// full live stack under the deterministic scheduler, so the watchdog's
// virtual-clock budgets and the staleness bounds replay bit-identically
// from the seed.

// LeaseParkWatchdog: 5 nodes under quorum acks; a majority of the
// membership goes dark mid-workload, so the root's fencing lease trips
// and stays fenced long enough for the stuck-operation watchdog (budget
// lowered into the scenario's timescale) to report the wedged fence.
// While fenced, the root must still serve bounded-staleness reads —
// counted and with a nonzero bound — and once the members return the
// lease must lift, the parked traffic must replay, and the acknowledged
// history must linearize.
func LeaseParkWatchdog() Scenario {
	return Scenario{
		Name:  "lease-park-watchdog",
		Nodes: 5,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				history:    256,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			// Pull the watchdog budget into the scenario's timescale (the
			// default 4x failAfter would also trip, but only after a much
			// longer dark window).
			for i := 0; i < e.Nodes(); i++ {
				e.Node(i).SetWatchdog(30 * time.Millisecond)
			}
			checker := model.NewCounterChecker()
			w := &worker{env: e, node: 1, obs: []int{0, 2}, minObs: 2, checker: checker}
			ws := []*worker{w}
			root := e.Node(0)
			if err := drive(e, ws, 60000, "first acknowledged increment", func() bool {
				return w.acked >= 1
			}); err != nil {
				return err
			}
			// A majority goes dark: the root still hears node 1, so reach =
			// 2 < quorum 3 and the lease must fence the reign.
			e.Crash(2)
			e.Crash(3)
			e.Crash(4)
			if err := drive(e, ws, 120000, "root lease fenced", func() bool {
				return root.Stats().Fenced >= 1
			}); err != nil {
				return err
			}
			// The fence outlives the watchdog budget: the root must report
			// the wedged reign (WatchFence) without unfencing — only member
			// contact may do that.
			if err := drive(e, ws, 120000, "watchdog reports the wedged fence", func() bool {
				return root.Stats().WatchdogStuck >= 1
			}); err != nil {
				return err
			}
			if got := root.Metrics().Trace.Count(obs.EvWatchdogStuck); got < 1 {
				return fmt.Errorf("WatchdogStuck counted but no EvWatchdogStuck trace event (count=%d)", got)
			}
			if h := root.Health(); h.Fenced != 1 || h.Serving() {
				return fmt.Errorf("fenced root reports healthy: %+v", h)
			}
			// Degraded read on the fenced root: served, counted, and with a
			// staleness bound measured from the start of the fence.
			val, stale, err := root.ReadStale(simGroup, simCounter, 0)
			if err != nil {
				return fmt.Errorf("fenced root refused a degraded read: %w", err)
			}
			if stale <= 0 {
				return fmt.Errorf("fenced root served a degraded read with zero staleness bound")
			}
			if own, _ := root.Read(simGroup, simCounter); val != own {
				return fmt.Errorf("degraded read %d != local copy %d", val, own)
			}
			if dr := root.Stats().DegradedReads; dr < 1 {
				return fmt.Errorf("degraded read served but not counted (DegradedReads=%d)", dr)
			}
			// Contact returns: the lease lifts, parked traffic replays, and
			// the workload completes.
			e.Revive(2)
			e.Revive(3)
			e.Revive(4)
			if err := drive(e, ws, 120000, "lease lifted after revival", func() bool {
				return root.Metrics().Trace.Count(obs.EvUnfence) >= 1
			}); err != nil {
				return err
			}
			if err := drive(e, ws, 120000, "post-fence increments", func() bool {
				return w.acked >= 2
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{0, 1, 2, 3, 4})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("lease-park history (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() < 2 {
				return fmt.Errorf("only %d increments acknowledged; the fence window was never crossed", checker.Len())
			}
			return nil
		},
	}
}

// DegradedRead: 4 nodes; the root and two members crash, stranding the
// survivor mid-election with no hope of a quorum. The survivor must
// keep serving explicitly-bounded stale reads — its local copy, with a
// growing staleness bound and an ErrTooStale refusal past a tight bound
// — while reporting itself not serving. Reviving the members completes
// the election, and the resumed workload must linearize against the
// pre-outage history.
func DegradedRead() Scenario {
	return Scenario{
		Name:  "degraded-read",
		Nodes: 4,
		Run: func(e *Env) error {
			if _, err := setup(e, clusterCfg{
				quorumAcks: true,
				history:    256,
				guards:     guardedCfg(e.Nodes()),
			}); err != nil {
				return err
			}
			checker := model.NewCounterChecker()
			w := &worker{env: e, node: 1, obs: []int{2, 3}, minObs: 2, checker: checker}
			ws := []*worker{w}
			if err := drive(e, ws, 60000, "first acknowledged increment", func() bool {
				return w.acked >= 1
			}); err != nil {
				return err
			}
			// Root and both stable members go dark: node 1 suspects the
			// root, starts an election, and can never finish it (reports
			// from 1 of 4 members < quorum 3).
			e.Crash(0)
			e.Crash(2)
			e.Crash(3)
			survivor := e.Node(1)
			if err := drive(e, ws, 120000, "survivor stranded mid-election", func() bool {
				return survivor.Stats().Elections >= 1
			}); err != nil {
				return err
			}
			if f := survivor.Stats().Failovers; f > 0 {
				return fmt.Errorf("minority survivor promoted itself %d times without a quorum", f)
			}
			if h := survivor.Health(); h.Electing != 1 || h.Serving() {
				return fmt.Errorf("stranded survivor reports healthy: %+v", h)
			}
			// Unbounded degraded read: the local copy, with a positive
			// staleness bound (its reign has been silent since the crash).
			own, _ := survivor.Read(simGroup, simCounter)
			val, stale, err := survivor.ReadStale(simGroup, simCounter, 0)
			if err != nil {
				return fmt.Errorf("stranded survivor refused a degraded read: %w", err)
			}
			if val != own {
				return fmt.Errorf("degraded read %d != local copy %d", val, own)
			}
			if stale <= 0 {
				return fmt.Errorf("degraded read on a stranded member carried no staleness bound")
			}
			if dr := survivor.Stats().DegradedReads; dr < 1 {
				return fmt.Errorf("degraded read served but not counted (DegradedReads=%d)", dr)
			}
			if got := survivor.Metrics().Trace.Count(obs.EvDegradedRead); got < 1 {
				return fmt.Errorf("DegradedReads counted but no EvDegradedRead trace event (count=%d)", got)
			}
			// A caller with a bound tighter than the outage must be refused.
			if _, _, err := survivor.ReadStale(simGroup, simCounter, time.Nanosecond); !errors.Is(err, gwc.ErrTooStale) {
				return fmt.Errorf("read with a 1ns bound during an outage returned %v, want ErrTooStale", err)
			}
			// Quorum returns: the election completes (node 1 is the lowest
			// live candidate) and the workload resumes against the new reign.
			e.Revive(2)
			e.Revive(3)
			if err := drive(e, ws, 120000, "survivor promoted with a quorum", func() bool {
				return survivor.Stats().Failovers >= 1
			}); err != nil {
				return err
			}
			if err := drive(e, ws, 120000, "post-outage increments", func() bool {
				return w.acked >= 2
			}); err != nil {
				return err
			}
			final, err := windDown(e, ws, []int{1, 2, 3})
			if err != nil {
				return err
			}
			if err := checker.Check(final); err != nil {
				return fmt.Errorf("degraded-read history (final=%d, acked=%d): %w", final, checker.Len(), err)
			}
			if checker.Len() < 2 {
				return fmt.Errorf("only %d increments acknowledged; the outage window was never crossed", checker.Len())
			}
			return nil
		},
	}
}

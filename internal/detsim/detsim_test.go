package detsim

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

// Exploration knobs. CI runs a large fixed corpus plus a small
// wall-clock-seeded batch (see .github/workflows/ci.yml); locally the
// defaults keep `go test ./...` quick. Reproduce any reported failure
// with:
//
//	go test ./internal/detsim -run Explore/<scenario> -seeds=1 -seed-base=<seed>
var (
	seedCount = flag.Int("seeds", 10, "seeds per scenario for the exploration tests")
	seedBase  = flag.Int64("seed-base", 1, "first seed of the exploration range")
)

// explorationSeeds applies -short so the exploration tests stay cheap
// under `go test -short ./...`.
func explorationSeeds(t *testing.T) int {
	n := *seedCount
	if testing.Short() && n > 3 {
		n = 3
	}
	if n < 1 {
		t.Fatalf("-seeds must be >= 1, got %d", n)
	}
	return n
}

// reportFailures fails the test for every failing seed, logs the replay
// command, and (when DETSIM_FAIL_LOG names a file) appends each
// failure's trace tail so CI can upload failing seeds as an artifact.
func reportFailures(t *testing.T, failures []Result) {
	t.Helper()
	if len(failures) == 0 {
		return
	}
	if path := os.Getenv("DETSIM_FAIL_LOG"); path != "" {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Logf("DETSIM_FAIL_LOG: %v", err)
		} else {
			for _, r := range failures {
				fmt.Fprintf(f, "%s\nerror: %v\n\n", r.DumpTail(40), r.Err)
			}
			f.Close()
		}
	}
	for _, r := range failures {
		t.Errorf("scenario %s seed %d failed after %d events: %v", r.Name, r.Seed, r.Steps, r.Err)
		t.Logf("replay: go test ./internal/detsim -run Explore/%s -seeds=1 -seed-base=%d -v", r.Name, r.Seed)
	}
}

// TestExplore sweeps every invariant scenario across the seed range.
// Each seed is a complete schedule of the live gwc stack — every
// delivery, drop, duplication, and timer firing chosen by the seeded
// scheduler — and every failure replays bit-identically from its seed.
func TestExplore(t *testing.T) {
	n := explorationSeeds(t)
	for _, sc := range []Scenario{
		RootCrashMidBatch(),
		PartitionDuringElection(),
		RejoinUnderLoad(),
		FenceRegression(),
		SpeculationSuppression(),
		QuorumParkRegression(),
		LeaseParkWatchdog(),
		DegradedRead(),
		SessionFairnessChurn(),
		SessionFailoverMultiHolder(),
		DivergenceRepair(),
		LeaseExpiryVsFailover(),
		HandoffChainConvoy(),
	} {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			reportFailures(t, Explore(sc, *seedBase, n))
		})
	}
}

// TestReplayIsBitIdentical pins the harness's core promise: the same
// scenario under the same seed produces the same event trace, event for
// event. Event is a flat comparable struct, so == is an exact check.
func TestReplayIsBitIdentical(t *testing.T) {
	sc := RootCrashMidBatch()
	a := RunSeed(sc, *seedBase)
	b := RunSeed(sc, *seedBase)
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v / %v", a.Err, b.Err)
	}
	if a.Steps != b.Steps || len(a.Trace) != len(b.Trace) {
		t.Fatalf("replay diverged in length: %d events vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if a.Trace[i] != b.Trace[i] {
			t.Fatalf("replay diverged at event %d:\n  %s\n  %s", i, a.Trace[i], b.Trace[i])
		}
	}
}

// TestViolationReproducesFromSeed is the acceptance check for failure
// reproduction: a scenario that forges a lock grant (two nodes in the
// critical section at once) must fail on every seed, and any reported
// failure must replay from its seed alone — twice, with identical
// traces and an identical checker verdict.
func TestViolationReproducesFromSeed(t *testing.T) {
	failures := Explore(ForgedGrant(), *seedBase, 3)
	if len(failures) != 3 {
		t.Fatalf("forged grant slipped past the checker on %d of 3 seeds", 3-len(failures))
	}
	r := failures[0]
	if !strings.Contains(r.Err.Error(), "acknowledged 2 times") {
		t.Fatalf("wrong violation detected: %v", r.Err)
	}
	first := RunSeed(ForgedGrant(), r.Seed)
	second := RunSeed(ForgedGrant(), r.Seed)
	for _, rr := range []Result{first, second} {
		if rr.Err == nil || rr.Err.Error() != r.Err.Error() {
			t.Fatalf("replay of seed %d did not reproduce the violation:\n  explore: %v\n  replay:  %v",
				r.Seed, r.Err, rr.Err)
		}
	}
	if len(first.Trace) != len(second.Trace) {
		t.Fatalf("replays diverged in length: %d events vs %d", len(first.Trace), len(second.Trace))
	}
	for i := range first.Trace {
		if first.Trace[i] != second.Trace[i] {
			t.Fatalf("replays diverged at event %d:\n  %s\n  %s", i, first.Trace[i], second.Trace[i])
		}
	}
}

// TestPinnedRegressionSeeds replays the exact seeds on which this
// harness found real protocol bugs, pinning their fixes:
//
//   - partition-during-election seed 7: a member's eager guarded write
//     was rolled back by a failover snapshot cut before the write was
//     sequenced, and hardware blocking then dropped the echo of its own
//     re-sequenced write — the only message that could repair the copy —
//     leaving the member permanently diverged (fixed by the eager-store
//     bookkeeping in gwc's applyData, and by parking live stream traffic
//     behind the snapshot).
//
//   - root-crash-mid-batch seed 175: a failover lock grant reached a
//     member through the new reign's live stream before the member's
//     state snapshot, so its critical section read pre-merge data and
//     re-committed an already-committed counter transition (fixed by
//     parking sequenced traffic while a snapshot is outstanding).
//
//   - divergence-repair seed 6: the schedule that shaped the scenario's
//     two-phase design — under load, digest probes queue behind the
//     data backlog on the root→member link, so detection latency
//     measures the scheduler's queueing, not the sweep; the scenario
//     therefore asserts the one-sweep-interval bound only on a drained
//     cluster, and this seed pins that the drain actually completes and
//     the quiescent-phase conviction meets the bound.
//
//   - quorum-park-regression seed 1: under SetQuorumAcks a lock handoff
//     parked behind the commit watermark left the lock holderless, so a
//     clean speculation's guarded writes landing in the park window were
//     suppressed not-holder while the speculator later committed —
//     silent data loss (fixed by designating the winner at park time and
//     deferring only the grant multicast; see lockState.pendingGrant in
//     gwc's root.go).
//
// Seed 175 fails deterministically with the stream parking reverted;
// seed 7 fails with both fixes reverted (either one represses it); the
// quorum-park scenario fails on every seed with the pendingGrant
// designation reverted.
func TestPinnedRegressionSeeds(t *testing.T) {
	for _, pin := range []struct {
		sc   Scenario
		seed int64
	}{
		{PartitionDuringElection(), 7},
		{RootCrashMidBatch(), 175},
		{DivergenceRepair(), 6},
		{QuorumParkRegression(), 1},
	} {
		if r := RunSeed(pin.sc, pin.seed); r.Err != nil {
			t.Errorf("scenario %s seed %d regressed: %v", pin.sc.Name, pin.seed, r.Err)
		}
	}
}

package exp

import (
	"strings"
	"testing"
)

func TestSeriesAtAndPeak(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{2, 1.5}, {4, 1.8}, {8, 1.2}}}
	if v, ok := s.At(4); !ok || v != 1.8 {
		t.Errorf("At(4) = %v,%v; want 1.8,true", v, ok)
	}
	if _, ok := s.At(3); ok {
		t.Error("At(3) reported ok for a missing size")
	}
	if p := s.Peak(); p.N != 4 || p.Power != 1.8 {
		t.Errorf("Peak() = %+v, want {4 1.8}", p)
	}
}

func TestFigureTableAndCSV(t *testing.T) {
	fig := Figure{
		ID:    "Figure T",
		Title: "test",
		Series: []Series{
			{Label: "a", Points: []Point{{2, 1.0}, {4, 2.0}}},
			{Label: "b", Points: []Point{{2, 0.5}, {4, 0.25}}},
		},
		Notes: []string{"a note"},
	}
	table := fig.Table()
	for _, want := range []string{"Figure T", "CPUs", "a", "b", "1.000", "0.250", "a note"} {
		if !strings.Contains(table, want) {
			t.Errorf("Table() missing %q:\n%s", want, table)
		}
	}
	csv := fig.CSV()
	if !strings.HasPrefix(csv, "cpus,a,b\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "4,2.0000,0.2500") {
		t.Errorf("CSV rows wrong:\n%s", csv)
	}
}

func TestFigure1ShapeMatchesPaper(t *testing.T) {
	res, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Check(); err != nil {
		t.Errorf("%v\n%s", err, res.Report(false))
	}
	report := res.Report(true)
	for _, want := range []string{"gwc", "entry", "release", "timeline", "idle"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestFigure2QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	fig, err := Figure2(Options{Quick: true, Sizes: []int{3, 5, 9, 17, 33}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFigure2(fig); err != nil {
		t.Errorf("%v\n%s", err, fig.Table())
	}
}

func TestFigure8QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("figure sweep in -short mode")
	}
	fig, err := Figure8(Options{Quick: true, Sizes: []int{2, 8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckFigure8(fig); err != nil {
		t.Errorf("%v\n%s", err, fig.Table())
	}
	ratios, err := HeadlineRatios(fig)
	if err != nil {
		t.Fatal(err)
	}
	if ratios["optimistic/gwc"] <= 1.0 {
		t.Errorf("optimistic/gwc ratio %.3f <= 1", ratios["optimistic/gwc"])
	}
}

func TestOptionsSizesOverride(t *testing.T) {
	o := Options{Sizes: []int{7}}
	got := o.sizes([]int{1, 2, 3})
	if len(got) != 1 || got[0] != 7 {
		t.Errorf("sizes override = %v, want [7]", got)
	}
	o = Options{}
	got = o.sizes([]int{1, 2, 3})
	if len(got) != 3 {
		t.Errorf("default sizes = %v, want [1 2 3]", got)
	}
}

func TestPaperReferenceValues(t *testing.T) {
	// Guard against accidental edits to the embedded paper numbers that
	// EXPERIMENTS.md and the shape checks rely on.
	if PaperFigure2["gwc-peak"].Power != 84.1 || PaperFigure2["gwc-peak"].N != 129 {
		t.Error("paper Figure 2 GWC peak must be 84.1 @ 129")
	}
	if PaperFigure8["gwc-optimistic"][2] != 1.68 {
		t.Error("paper Figure 8 optimistic @ 2 must be 1.68")
	}
	if PaperHeadlineRatios["optimistic/entry"] != 2.1 {
		t.Error("paper headline optimistic/entry ratio must be 2.1")
	}
}

func TestExtensionAShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	fig, err := ExtOptimisticTaskMgmt(Options{Quick: true, Sizes: []int{3, 9, 17}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckExtOptimisticTaskMgmt(fig); err != nil {
		t.Errorf("%v\n%s", err, fig.Table())
	}
}

func TestExtensionBShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in -short mode")
	}
	fig, err := ExtMXRatioSweep(Options{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckExtMXRatioSweep(fig); err != nil {
		t.Errorf("%v\n%s", err, fig.Table())
	}
}

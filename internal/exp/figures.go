package exp

import (
	"fmt"
	"strings"

	"optsync/internal/model"
	"optsync/internal/sim"
	"optsync/internal/trace"
	"optsync/internal/workload"
)

// Figure2Sizes are the paper's network sizes ("a power of two plus one
// (3,5,9,...) to eliminate load balancing effects").
var Figure2Sizes = []int{3, 5, 9, 17, 33, 65, 129}

// Figure8Sizes are the paper's pipeline sizes, 2 up to 128 processors.
var Figure8Sizes = []int{2, 4, 8, 16, 32, 64, 128}

// Options tune how much work the experiment harness does.
type Options struct {
	// Quick shrinks the workloads (fewer tasks / shorter pipelines) for
	// use in tests; the full paper parameters are used when false.
	Quick bool
	// Sizes overrides the default network-size sweep.
	Sizes []int
}

func (o Options) sizes(def []int) []int {
	if len(o.Sizes) > 0 {
		return o.Sizes
	}
	return def
}

// Figure1Run is the Figure 1 scenario under one consistency model.
type Figure1Run struct {
	Result workload.Mutex3Result
	Trace  *trace.Log
}

// Figure1Result compares idle times for the three-CPU lock scenario
// across GWC, entry, and weak/release consistency.
type Figure1Result struct {
	Runs map[string]Figure1Run // keyed gwc / entry / release
}

// Figure1 reproduces the paper's Figure 1: three successive sets of
// mutually exclusive accesses under each consistency model.
func Figure1() (Figure1Result, error) {
	res := Figure1Result{Runs: make(map[string]Figure1Run, 3)}
	for _, kind := range []workload.Kind{workload.KindGWC, workload.KindEntry, workload.KindRelease} {
		k := sim.NewKernel()
		p := workload.DefaultMutex3Params()
		tr := &trace.Log{}
		cfg := model.DefaultConfig(3)
		cfg.Trace = tr
		p.Configure(&cfg)
		if kind == workload.KindEntry {
			cfg.Invalidate = true
		}
		m, err := workload.NewMachine(k, kind, cfg)
		if err != nil {
			return Figure1Result{}, fmt.Errorf("figure1: %w", err)
		}
		if e, ok := m.(*model.Entry); ok {
			// The figure starts with the data held non-exclusively on
			// CPU2 and CPU3; CPU1's exclusive request triggers the
			// invalidation round trip shown in Figure 1(b).
			e.SetReaders(0, []int{1, 2})
		}
		r, err := workload.RunMutex3(k, m, p)
		if err != nil {
			return Figure1Result{}, fmt.Errorf("figure1 (%v): %w", kind, err)
		}
		res.Runs[r.Model] = Figure1Run{Result: r, Trace: tr}
	}
	return res, nil
}

// Report renders the Figure 1 comparison as text: a summary table of
// request/grant/release/idle times plus a per-model event timeline.
func (r Figure1Result) Report(withTimelines bool) string {
	var b strings.Builder
	b.WriteString("Figure 1 — Locking Comparison (3 CPUs, one lock; CPU2 is root/manager)\n\n")
	fmt.Fprintf(&b, "%-10s %-6s %12s %12s %12s %12s\n", "model", "cpu", "request(ns)", "grant(ns)", "release(ns)", "idle(ns)")
	for _, name := range []string{"gwc", "entry", "release"} {
		run, ok := r.Runs[name]
		if !ok {
			continue
		}
		for i, c := range run.Result.CPU {
			fmt.Fprintf(&b, "%-10s CPU%-3d %12d %12d %12d %12d\n", name, i+1, c.Request, c.Grant, c.Release, c.Idle)
		}
		fmt.Fprintf(&b, "%-10s %-6s total=%dns   total idle=%dns   messages=%d\n\n",
			name, "", run.Result.Total, run.Result.TotalIdle, run.Result.Stats.Messages)
	}
	if withTimelines {
		for _, name := range []string{"gwc", "entry", "release"} {
			if run, ok := r.Runs[name]; ok {
				fmt.Fprintf(&b, "--- %s timeline ---\n%s\n", name, run.Trace.Timeline(3))
			}
		}
	}
	return b.String()
}

// Check verifies the figure's qualitative claims: GWC completes sooner and
// idles less than entry consistency, which beats weak/release.
func (r Figure1Result) Check() error {
	gwc, ok1 := r.Runs["gwc"]
	ent, ok2 := r.Runs["entry"]
	rel, ok3 := r.Runs["release"]
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("figure1: missing runs (have %d)", len(r.Runs))
	}
	if !(gwc.Result.Total < ent.Result.Total && ent.Result.Total < rel.Result.Total) {
		return fmt.Errorf("figure1: total times gwc=%d entry=%d release=%d, want gwc < entry < release",
			gwc.Result.Total, ent.Result.Total, rel.Result.Total)
	}
	if gwc.Result.TotalIdle >= ent.Result.TotalIdle {
		return fmt.Errorf("figure1: gwc idle %d >= entry idle %d", gwc.Result.TotalIdle, ent.Result.TotalIdle)
	}
	return nil
}

// Figure2 reproduces the task-management speedup sweep: the ideal
// (zero-network-delay) line, Sesame GWC with eagersharing, and the fast
// version of entry consistency.
func Figure2(opts Options) (Figure, error) {
	fig := Figure{
		ID:    "Figure 2",
		Title: "Speedup for Task Management (1 producer, 1024 tasks, produce:execute = 1:128)",
		Notes: []string{
			"paper: GWC peaks at 84.1 on 129 CPUs; entry consistency peaks at 22.5 on 33 CPUs (3.7x slower)",
		},
	}
	type variant struct {
		label     string
		kind      workload.Kind
		zeroDelay bool
	}
	variants := []variant{
		{"max", workload.KindGWC, true},
		{"gwc", workload.KindGWC, false},
		{"entry", workload.KindEntry, false},
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, n := range opts.sizes(Figure2Sizes) {
			k := sim.NewKernel()
			p := workload.DefaultTaskMgmtParams(n, v.kind)
			if opts.Quick {
				p.Tasks = 128
			}
			cfg := model.DefaultConfig(n)
			if v.zeroDelay {
				cfg.Net.HopLatency = 0
				cfg.Net.BytesPerNS = 1e12
				cfg.RootProc = 0
			}
			p.Configure(&cfg)
			m, err := workload.NewMachine(k, v.kind, cfg)
			if err != nil {
				return Figure{}, fmt.Errorf("figure2: %w", err)
			}
			r, err := workload.RunTaskMgmt(k, m, p)
			if err != nil {
				return Figure{}, fmt.Errorf("figure2 (%s, N=%d): %w", v.label, n, err)
			}
			s.Points = append(s.Points, Point{N: n, Power: r.Power})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// CheckFigure2 verifies the sweep's qualitative shape against the paper.
func CheckFigure2(fig Figure) error {
	maxS, ok1 := fig.Get("max")
	gwc, ok2 := fig.Get("gwc")
	ent, ok3 := fig.Get("entry")
	if !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("figure2: missing series")
	}
	sizes := fig.Sizes()
	for _, n := range sizes {
		mv, _ := maxS.At(n)
		gv, _ := gwc.At(n)
		ev, _ := ent.At(n)
		if gv > mv+0.01 {
			return fmt.Errorf("figure2: gwc %.2f exceeds ideal %.2f at N=%d", gv, mv, n)
		}
		if n >= 17 && gv <= ev {
			return fmt.Errorf("figure2: gwc %.2f <= entry %.2f at N=%d; eagersharing must win at scale", gv, ev, n)
		}
	}
	last := sizes[len(sizes)-1]
	// The paper's GWC peak is at the largest size (129). Quick sweeps run
	// fewer tasks and may starve the largest size, so accept the top two.
	if gp := gwc.Peak(); gp.N != last && (len(sizes) < 2 || gp.N != sizes[len(sizes)-2]) {
		return fmt.Errorf("figure2: gwc peaks at N=%d, want the top of the sweep (paper: 129)", gp.N)
	}
	if last >= 65 {
		// Entry's peak falls strictly inside a full sweep (the paper: 33
		// of 129), showing the early saturation GWC avoids.
		if ep := ent.Peak(); ep.N == last {
			return fmt.Errorf("figure2: entry peak at the largest size %d; the paper shows early saturation", ep.N)
		}
		// Peak-to-peak advantage roughly the paper's 3.7x (band 2x-8x);
		// only meaningful once the sweep reaches GWC's peak region.
		ratio := gwc.Peak().Power / ent.Peak().Power
		if ratio < 2 || ratio > 8 {
			return fmt.Errorf("figure2: gwc/entry peak ratio %.2f outside [2,8] (paper: 3.7)", ratio)
		}
	}
	return nil
}

// Figure8 reproduces the pipeline network-power sweep: the zero-delay
// ceiling, optimistic GWC, regular GWC, and entry consistency.
func Figure8(opts Options) (Figure, error) {
	fig := Figure{
		ID:    "Figure 8",
		Title: "Mutex Methods — network power for the linear pipeline (data size 1024, MX:local = 1:8)",
		Notes: []string{
			"paper: max 1.89; optimistic 1.68 -> 1.15; non-optimistic GWC 1.53 -> 1.03; entry 0.81 -> 0.64 (2 -> 128 CPUs)",
		},
	}
	type variant struct {
		label     string
		kind      workload.Kind
		zeroDelay bool
	}
	variants := []variant{
		{"max", workload.KindGWC, true},
		{"gwc-optimistic", workload.KindGWCOptimistic, false},
		{"gwc", workload.KindGWC, false},
		{"entry", workload.KindEntry, false},
	}
	for _, v := range variants {
		s := Series{Label: v.label}
		for _, n := range opts.sizes(Figure8Sizes) {
			k := sim.NewKernel()
			p := workload.DefaultPipelineParams(n)
			if opts.Quick {
				p.DataSize = 128
			}
			cfg := model.DefaultConfig(n)
			if v.zeroDelay {
				cfg.Net.HopLatency = 0
				cfg.Net.BytesPerNS = 1e12
				cfg.RootProc = 0
			}
			if v.kind == workload.KindEntry {
				// Figure 8 is the light-contention case where "a new
				// requestor may often guess the wrong lock owner".
				cfg.ViaManager = true
			}
			p.Configure(&cfg)
			m, err := workload.NewMachine(k, v.kind, cfg)
			if err != nil {
				return Figure{}, fmt.Errorf("figure8: %w", err)
			}
			r, err := workload.RunPipeline(k, m, p)
			if err != nil {
				return Figure{}, fmt.Errorf("figure8 (%s, N=%d): %w", v.label, n, err)
			}
			s.Points = append(s.Points, Point{N: n, Power: r.Power})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// HeadlineRatios computes Section 4.1's summary speedups from a Figure 8
// sweep at its smallest size: optimistic over non-optimistic GWC, and
// optimistic over entry consistency.
func HeadlineRatios(fig Figure) (map[string]float64, error) {
	opt, ok1 := fig.Get("gwc-optimistic")
	gwc, ok2 := fig.Get("gwc")
	ent, ok3 := fig.Get("entry")
	if !ok1 || !ok2 || !ok3 {
		return nil, fmt.Errorf("headline ratios: missing series")
	}
	sizes := fig.Sizes()
	if len(sizes) == 0 {
		return nil, fmt.Errorf("headline ratios: empty figure")
	}
	n := sizes[0]
	o, _ := opt.At(n)
	g, _ := gwc.At(n)
	e, _ := ent.At(n)
	if g == 0 || e == 0 {
		return nil, fmt.Errorf("headline ratios: zero power at N=%d", n)
	}
	return map[string]float64{
		"optimistic/gwc":   o / g,
		"optimistic/entry": o / e,
	}, nil
}

// CheckFigure8 verifies the pipeline sweep's qualitative shape.
func CheckFigure8(fig Figure) error {
	maxS, ok0 := fig.Get("max")
	opt, ok1 := fig.Get("gwc-optimistic")
	gwc, ok2 := fig.Get("gwc")
	ent, ok3 := fig.Get("entry")
	if !ok0 || !ok1 || !ok2 || !ok3 {
		return fmt.Errorf("figure8: missing series")
	}
	sizes := fig.Sizes()
	for _, n := range sizes {
		mv, _ := maxS.At(n)
		ov, _ := opt.At(n)
		gv, _ := gwc.At(n)
		ev, _ := ent.At(n)
		if mv < 1.80 || mv > 1.90 {
			return fmt.Errorf("figure8: ceiling %.3f at N=%d outside [1.80,1.90] (paper: 1.89)", mv, n)
		}
		if !(ov > gv && gv > ev) {
			return fmt.Errorf("figure8: ordering at N=%d is opt=%.3f gwc=%.3f entry=%.3f, want opt > gwc > entry", n, ov, gv, ev)
		}
		if ov > mv+0.01 {
			return fmt.Errorf("figure8: optimistic %.3f exceeds ceiling %.3f at N=%d", ov, mv, n)
		}
	}
	// Power decays with network size for the real lines.
	for _, s := range []Series{opt, gwc} {
		first, _ := s.At(sizes[0])
		last, _ := s.At(sizes[len(sizes)-1])
		if last >= first {
			return fmt.Errorf("figure8: %s power grew with size (%.3f -> %.3f)", s.Label, first, last)
		}
	}
	// Entry consistency below 1.0 at the smallest size (the paper: 0.81):
	// slower than a single processor.
	if ev, _ := ent.At(sizes[0]); ev >= 1.0 {
		return fmt.Errorf("figure8: entry at N=%d is %.3f, want < 1.0", sizes[0], ev)
	}
	ratios, err := HeadlineRatios(fig)
	if err != nil {
		return err
	}
	if r := ratios["optimistic/gwc"]; r < 1.02 || r > 1.3 {
		return fmt.Errorf("figure8: optimistic/gwc ratio %.3f outside [1.02,1.3] (paper: 1.1)", r)
	}
	if r := ratios["optimistic/entry"]; r < 1.5 || r > 2.7 {
		return fmt.Errorf("figure8: optimistic/entry ratio %.3f outside [1.5,2.7] (paper: 2.1)", r)
	}
	return nil
}

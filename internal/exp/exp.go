// Package exp is the experiment harness: it regenerates the paper's
// figures from the protocol models and workloads, renders them as tables
// or CSV, and checks that the qualitative shape of each result matches the
// published one (who wins, by roughly what factor, where the peaks fall).
package exp

import (
	"fmt"
	"strings"
)

// Point is one (network size, network power) measurement.
type Point struct {
	N     int
	Power float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// At returns the series value at network size n, and whether it exists.
func (s Series) At(n int) (float64, bool) {
	for _, p := range s.Points {
		if p.N == n {
			return p.Power, true
		}
	}
	return 0, false
}

// Peak returns the series' maximum point.
func (s Series) Peak() Point {
	var best Point
	for _, p := range s.Points {
		if p.Power > best.Power {
			best = p
		}
	}
	return best
}

// Figure is a regenerated paper figure: several series over network size.
type Figure struct {
	ID     string
	Title  string
	Series []Series
	Notes  []string
}

// Get returns the series with the given label.
func (f Figure) Get(label string) (Series, bool) {
	for _, s := range f.Series {
		if s.Label == label {
			return s, true
		}
	}
	return Series{}, false
}

// Sizes lists the network sizes of the first series (all series share the
// same sweep).
func (f Figure) Sizes() []int {
	if len(f.Series) == 0 {
		return nil
	}
	sizes := make([]int, len(f.Series[0].Points))
	for i, p := range f.Series[0].Points {
		sizes[i] = p.N
	}
	return sizes
}

// Table renders the figure as an aligned text table, one row per network
// size and one column per series.
func (f Figure) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", f.ID, f.Title)
	fmt.Fprintf(&b, "%6s", "CPUs")
	for _, s := range f.Series {
		fmt.Fprintf(&b, "  %16s", s.Label)
	}
	b.WriteString("\n")
	for _, n := range f.Sizes() {
		fmt.Fprintf(&b, "%6d", n)
		for _, s := range f.Series {
			if v, ok := s.At(n); ok {
				fmt.Fprintf(&b, "  %16.3f", v)
			} else {
				fmt.Fprintf(&b, "  %16s", "-")
			}
		}
		b.WriteString("\n")
	}
	for _, note := range f.Notes {
		fmt.Fprintf(&b, "\n%s\n", note)
	}
	return b.String()
}

// CSV renders the figure as comma-separated values with a header row.
func (f Figure) CSV() string {
	var b strings.Builder
	b.WriteString("cpus")
	for _, s := range f.Series {
		fmt.Fprintf(&b, ",%s", s.Label)
	}
	b.WriteString("\n")
	for _, n := range f.Sizes() {
		fmt.Fprintf(&b, "%d", n)
		for _, s := range f.Series {
			if v, ok := s.At(n); ok {
				fmt.Fprintf(&b, ",%.4f", v)
			} else {
				b.WriteString(",")
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// PaperFigure2 holds the values the paper reports (or that can be read
// off its Figure 2) for comparison in EXPERIMENTS.md: the GWC curve peaks
// at 84.1 on 129 processors, entry consistency at 22.5 on 33.
var PaperFigure2 = map[string]Point{
	"gwc-peak":   {N: 129, Power: 84.1},
	"entry-peak": {N: 33, Power: 22.5},
}

// PaperFigure8 holds the endpoint values the paper reports for Figure 8.
var PaperFigure8 = map[string]map[int]float64{
	"max":            {2: 1.89, 128: 1.89},
	"gwc-optimistic": {2: 1.68, 128: 1.15},
	"gwc":            {2: 1.53, 128: 1.03},
	"entry":          {2: 0.81, 128: 0.64},
}

// PaperHeadlineRatios are Section 4.1's summary numbers: optimistic
// synchronization is 1.1x non-optimistic GWC and 2.1x entry consistency.
var PaperHeadlineRatios = map[string]float64{
	"optimistic/gwc":   1.1,
	"optimistic/entry": 2.1,
}

package exp

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/sim"
	"optsync/internal/workload"
)

// Extension experiments beyond the paper's published figures, using the
// same machinery. The paper's conclusion suggests optimistic
// synchronization wherever "code rarely has two processors simultaneously
// requesting the same lock"; these sweeps probe where that holds.

// ExtOptimisticTaskMgmt re-runs the Figure 2 task-management sweep with
// optimistic GWC locking added. The pop lock is heavily contended, so the
// history filter should keep most acquisitions on the regular path and
// the optimistic curve should track the regular one — the paper's "does
// not add any network traffic when the lock is heavily contended" claim,
// measured.
func ExtOptimisticTaskMgmt(opts Options) (Figure, error) {
	fig := Figure{
		ID:    "Extension A",
		Title: "Task management with optimistic locking (contended-lock regime)",
		Notes: []string{
			"extension: under heavy contention the history filter keeps optimistic GWC close to regular GWC",
		},
	}
	for _, kind := range []workload.Kind{workload.KindGWC, workload.KindGWCOptimistic} {
		s := Series{Label: kind.String()}
		for _, n := range opts.sizes(Figure2Sizes) {
			k := sim.NewKernel()
			p := workload.DefaultTaskMgmtParams(n, kind)
			if opts.Quick {
				p.Tasks = 128
			}
			cfg := model.DefaultConfig(n)
			p.Configure(&cfg)
			m, err := workload.NewMachine(k, kind, cfg)
			if err != nil {
				return Figure{}, fmt.Errorf("extension A: %w", err)
			}
			r, err := workload.RunTaskMgmt(k, m, p)
			if err != nil {
				return Figure{}, fmt.Errorf("extension A (%s, N=%d): %w", kind, n, err)
			}
			s.Points = append(s.Points, Point{N: n, Power: r.Power})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// CheckExtOptimisticTaskMgmt verifies the claim: the optimistic curve
// stays within a modest band of the regular one (it must not collapse
// from rollback storms, nor magically exceed the ideal).
func CheckExtOptimisticTaskMgmt(fig Figure) error {
	reg, ok1 := fig.Get("gwc")
	opt, ok2 := fig.Get("gwc-optimistic")
	if !ok1 || !ok2 {
		return fmt.Errorf("extension A: missing series")
	}
	for _, n := range fig.Sizes() {
		rv, _ := reg.At(n)
		ov, _ := opt.At(n)
		if ov < 0.7*rv {
			return fmt.Errorf("extension A: optimistic %.2f collapsed below regular %.2f at N=%d", ov, rv, n)
		}
	}
	return nil
}

// ExtMXRatioSweep turns the Figure 8 ablation into a full figure: the
// pipeline's network power as the MX:local ratio varies, for optimistic
// and regular GWC on a fixed 16-CPU ring. The X axis is the divisor r in
// MX = local/r (the paper uses r = 8).
func ExtMXRatioSweep(opts Options) (Figure, error) {
	fig := Figure{
		ID:    "Extension B",
		Title: "Pipeline power vs MX-section size (16 CPUs; paper fixes MX:local = 1:8)",
		Notes: []string{
			"extension: optimistic gains shrink when the section is too small to hide the lock round trip",
		},
	}
	ratios := []int{1, 2, 4, 8, 16, 32, 64}
	for _, kind := range []workload.Kind{workload.KindGWCOptimistic, workload.KindGWC} {
		s := Series{Label: kind.String()}
		for _, r := range ratios {
			k := sim.NewKernel()
			p := workload.DefaultPipelineParams(16)
			p.MXRatio = r
			if opts.Quick {
				p.DataSize = 256
			}
			cfg := model.DefaultConfig(16)
			p.Configure(&cfg)
			m, err := workload.NewMachine(k, kind, cfg)
			if err != nil {
				return Figure{}, fmt.Errorf("extension B: %w", err)
			}
			res, err := workload.RunPipeline(k, m, p)
			if err != nil {
				return Figure{}, fmt.Errorf("extension B (%s, r=%d): %w", kind, r, err)
			}
			// Abuse Point.N for the ratio divisor: the figure axis.
			s.Points = append(s.Points, Point{N: r, Power: res.Power})
		}
		fig.Series = append(fig.Series, s)
	}
	return fig, nil
}

// CheckExtMXRatioSweep verifies the ablation's shape: optimistic is never
// worse than regular GWC, and the absolute advantage peaks at a
// mid-range section size.
func CheckExtMXRatioSweep(fig Figure) error {
	opt, ok1 := fig.Get("gwc-optimistic")
	reg, ok2 := fig.Get("gwc")
	if !ok1 || !ok2 {
		return fmt.Errorf("extension B: missing series")
	}
	bestGain, bestAt := 0.0, 0
	var first, last float64
	sizes := fig.Sizes()
	for i, r := range sizes {
		ov, _ := opt.At(r)
		rv, _ := reg.At(r)
		if ov+1e-9 < rv {
			return fmt.Errorf("extension B: optimistic %.3f below regular %.3f at ratio 1:%d", ov, rv, r)
		}
		gain := ov - rv
		if gain > bestGain {
			bestGain, bestAt = gain, r
		}
		if i == 0 {
			first = gain
		}
		if i == len(sizes)-1 {
			last = gain
		}
	}
	if bestAt == sizes[0] && bestGain > first+1e-9 {
		return fmt.Errorf("extension B: inconsistent peak bookkeeping")
	}
	// The gain should not be maximal at the extreme smallest-section end
	// (1:64): tiny sections cannot hide the round trip.
	if last >= bestGain-1e-9 && bestAt == sizes[len(sizes)-1] && bestGain > 0.02 {
		return fmt.Errorf("extension B: optimistic gain grows monotonically into tiny sections (%.3f at 1:%d)", last, sizes[len(sizes)-1])
	}
	return nil
}

package model

import (
	"fmt"

	"optsync/internal/netsim"
	"optsync/internal/sim"
	"optsync/internal/trace"
)

// Wire payloads for the release-consistency machine.
type (
	// rLockReq asks the lock manager for the lock.
	rLockReq struct {
		origin int
		l      LockID
	}
	// rGrant gives the lock to a node (from the manager or the previous
	// holder).
	rGrant struct {
		l LockID
	}
	// rRelease returns a lock with an empty queue to the manager.
	rRelease struct {
		origin int
		l      LockID
	}
	// rUpdate is an eager (cache-update) propagation of a shared write.
	rUpdate struct {
		origin int
		v      VarID
		val    int64
	}
	// rAck acknowledges application of an update at one node.
	rAck struct {
		v VarID
	}
)

// Release models weak/release consistency with update-based sharing (the
// paper's Figure 1(c) setup: "Eager sharing or cache update sharing of
// data are used to minimize data access delays"). Its defining cost is
// that a lock release is blocked until the holder's updates have been
// performed on all other processors, and that a contended lock transfer
// takes up to three one-way messages (request to manager, forward to
// holder, grant to requester).
//
// The paper treats weak and release consistency as identical for its
// workloads ("Weak and release consistency behave the same since each
// processor locks, reads or updates, and releases only once"), so one
// machine serves for both.
type Release struct {
	k     *sim.Kernel
	net   *netsim.Net
	cfg   Config
	nodes []*relNode
	stats Stats

	// Manager-side directory (lives at cfg.Root; kept as machine state
	// and mutated only by messages that arrive there or by directory
	// piggybacks on grants, which carry no separate timing cost).
	holder map[LockID]int
	queue  map[LockID][]int
}

// relNode is one node's local state.
type relNode struct {
	m        *Release
	id       int
	mem      map[VarID]int64
	heldByMe map[LockID]bool
	// pendingAcks counts update acknowledgements this node is owed;
	// Release blocks until it reaches zero.
	pendingAcks int
	wakeData    signal
	wakeLock    signal
	wakeAcks    signal
}

// NewRelease builds a weak/release-consistency machine.
func NewRelease(k *sim.Kernel, cfg Config) (*Release, error) {
	net, err := netsim.New(k, cfg.N, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("release: %w", err)
	}
	if cfg.Root < 0 || cfg.Root >= cfg.N {
		return nil, fmt.Errorf("release: root %d out of range for %d nodes", cfg.Root, cfg.N)
	}
	m := &Release{
		k:      k,
		net:    net,
		cfg:    cfg,
		holder: make(map[LockID]int),
		queue:  make(map[LockID][]int),
	}
	m.nodes = make([]*relNode, cfg.N)
	for i := range m.nodes {
		n := &relNode{
			m:        m,
			id:       i,
			mem:      make(map[VarID]int64),
			heldByMe: make(map[LockID]bool),
			wakeData: newSignal(k),
			wakeLock: newSignal(k),
			wakeAcks: newSignal(k),
		}
		m.nodes[i] = n
		k.Spawn(fmt.Sprintf("release.iface.%d", i), n.ifaceLoop)
	}
	return m, nil
}

// Name implements Machine.
func (m *Release) Name() string { return "release" }

// N implements Machine.
func (m *Release) N() int { return m.cfg.N }

// Value implements Machine.
func (m *Release) Value(id int, v VarID) int64 { return m.nodes[id].mem[v] }

// Stats implements Machine.
func (m *Release) Stats() Stats {
	s := m.stats
	s.Messages = m.net.Messages()
	s.Bytes = m.net.BytesSent()
	return s
}

// Start implements Machine.
func (m *Release) Start(id int, body func(a App)) {
	n := m.nodes[id]
	m.k.Spawn(fmt.Sprintf("release.app.%d", id), func(p *sim.Proc) {
		body(&relApp{n: n, p: p})
	})
}

// lockHolder reports the current holder of l at the manager, or -1.
func (m *Release) lockHolder(l LockID) int {
	if h, ok := m.holder[l]; ok {
		return h
	}
	return -1
}

// ifaceLoop serves directory, lock, and update traffic at one node.
func (n *relNode) ifaceLoop(p *sim.Proc) {
	m := n.m
	for {
		msg := m.net.Inbox(n.id).Recv(p)
		switch pl := msg.Payload.(type) {
		case rLockReq:
			n.managerLockReq(pl)
		case rGrant:
			n.heldByMe[pl.l] = true
			m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockGrant, "lock %d -> CPU%d", pl.l, n.id+1)
			n.wakeLock.notify()
		case rRelease:
			// Manager-side: the lock came home free.
			m.holder[pl.l] = -1
			m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockFree, "lock %d free at manager", pl.l)
			// A request may have raced in and been queued with no holder.
			if q := m.queue[pl.l]; len(q) > 0 {
				next := q[0]
				m.queue[pl.l] = q[1:]
				m.holder[pl.l] = next
				m.net.Send(n.id, next, m.cfg.LockMsgBytes, rGrant{l: pl.l})
			}
		case rUpdate:
			n.mem[pl.v] = pl.val
			n.wakeData.notify()
			m.net.Send(n.id, pl.origin, m.cfg.LockMsgBytes, rAck{v: pl.v})
		case rAck:
			n.pendingAcks--
			if n.pendingAcks == 0 {
				n.wakeAcks.notify()
			}
		default:
			panic(fmt.Sprintf("release: node %d got unexpected payload %T", n.id, msg.Payload))
		}
	}
}

// managerLockReq handles a lock request arriving at the manager node, or a
// forwarded request arriving at the current holder.
func (n *relNode) managerLockReq(req rLockReq) {
	m := n.m
	if n.id == m.cfg.Root {
		h := m.lockHolder(req.l)
		switch {
		case h == -1:
			m.holder[req.l] = req.origin
			m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockGrant, "lock %d granted to CPU%d by manager", req.l, req.origin+1)
			if req.origin == n.id {
				n.heldByMe[req.l] = true
				n.wakeLock.notify()
			} else {
				m.net.Send(n.id, req.origin, m.cfg.LockMsgBytes, rGrant{l: req.l})
			}
		case h == n.id:
			// Manager itself holds it: queue locally.
			m.queue[req.l] = append(m.queue[req.l], req.origin)
		default:
			// Forward to the current holder; it will hand over on release.
			// Directory optimistically records the requester as next
			// holder so later requests chase the right node.
			m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockRequest, "lock %d from CPU%d forwarded to holder CPU%d", req.l, req.origin+1, h+1)
			m.net.Send(n.id, h, m.cfg.LockMsgBytes, req)
		}
		return
	}
	// Forwarded request at the holder: queue it; the app's Release hands
	// the lock over directly (the third one-way message). If we no longer
	// (or do not yet) hold the lock, the request raced a transfer — bounce
	// it to the manager, which knows the new holder.
	if !n.heldByMe[req.l] {
		m.net.Send(n.id, m.cfg.Root, m.cfg.LockMsgBytes, req)
		return
	}
	m.queue[req.l] = append(m.queue[req.l], req.origin)
}

// relApp implements App on the release machine.
type relApp struct {
	n *relNode
	p *sim.Proc
}

var _ App = (*relApp)(nil)

func (a *relApp) ID() int            { return a.n.id }
func (a *relApp) N() int             { return a.n.m.cfg.N }
func (a *relApp) Now() sim.Time      { return a.p.Now() }
func (a *relApp) Compute(d sim.Time) { a.p.Sleep(d) }

// Read is local: updates propagate eagerly under cache-update sharing.
func (a *relApp) Read(v VarID) int64 {
	a.p.Sleep(a.n.m.cfg.LocalRead)
	return a.n.mem[v]
}

// Write applies locally and multicasts the update to every other node,
// expecting one acknowledgement each; Release waits for them.
func (a *relApp) Write(v VarID, val int64) {
	m := a.n.m
	a.p.Sleep(m.cfg.LocalWrite)
	a.n.mem[v] = val
	for dst := 0; dst < m.cfg.N; dst++ {
		if dst == a.n.id {
			continue
		}
		a.n.pendingAcks++
		m.net.Send(a.n.id, dst, m.cfg.varBytes(v), rUpdate{origin: a.n.id, v: v, val: val})
	}
}

// Acquire requests the lock from the manager and blocks for the grant.
func (a *relApp) Acquire(l LockID) {
	m := a.n.m
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.LockRequest, "lock %d to manager CPU%d", l, m.cfg.Root+1)
	m.net.Send(a.n.id, m.cfg.Root, m.cfg.LockMsgBytes, rLockReq{origin: a.n.id, l: l})
	for !a.n.heldByMe[l] {
		a.n.wakeLock.wait(a.p)
	}
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.EnterMX, "lock %d", l)
}

// Release first waits until every update this node issued has been
// performed on all other processors (the release-consistency barrier),
// then passes the lock to the next queued requester or back to the
// manager.
func (a *relApp) Release(l LockID) {
	m := a.n.m
	for a.n.pendingAcks > 0 {
		a.n.wakeAcks.wait(a.p)
	}
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.LockRelease, "lock %d (updates complete)", l)
	a.n.heldByMe[l] = false
	q := m.queue[l]
	if len(q) > 0 {
		next := q[0]
		m.queue[l] = q[1:]
		m.holder[l] = next // directory piggyback
		m.net.Send(a.n.id, next, m.cfg.LockMsgBytes, rGrant{l: l})
		return
	}
	if a.n.id == m.cfg.Root {
		m.holder[l] = -1
		return
	}
	m.net.Send(a.n.id, m.cfg.Root, m.cfg.LockMsgBytes, rRelease{origin: a.n.id, l: l})
}

// MutexDo on the release machine is the conventional acquire/run/release.
func (a *relApp) MutexDo(l LockID, body func()) {
	a.Acquire(l)
	body()
	a.Release(l)
}

// AwaitGE waits for eager updates to push the local copy up to min.
func (a *relApp) AwaitGE(v VarID, min int64) {
	a.p.Sleep(a.n.m.cfg.LocalRead)
	for a.n.mem[v] < min {
		a.n.wakeData.wait(a.p)
	}
}

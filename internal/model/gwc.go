package model

import (
	"fmt"

	"optsync/internal/netsim"
	"optsync/internal/sim"
	"optsync/internal/trace"
)

// Wire payloads for the GWC machine. Everything flows through the group
// root: nodes send up-messages, the root sequences them and multicasts
// down-messages along the sharing tree.
type (
	// upWrite carries an eagerly shared write from its origin to the root.
	upWrite struct {
		origin int
		v      VarID
		val    int64
		guard  LockID // NoGuard if the variable is not in a mutex group
		// epoch is the last grant epoch of the guarding lock the origin
		// had applied when it issued the write. The root validates it:
		// a guarded write is accepted only when the origin holds the
		// lock AND the write is post-grant (epoch == current) or a clean
		// speculation (epoch+1 == current, which provably never rolls
		// back). This closes a hole the paper's unconditional critical
		// sections never hit: a rolled-back section's stale writes
		// arriving after its queued grant.
		epoch int
	}
	// upLockReq asks the root (lock manager) for exclusive access.
	upLockReq struct {
		origin int
		l      LockID
	}
	// upLockRel returns the lock to the manager.
	upLockRel struct {
		origin int
		l      LockID
	}
	// downWrite is a sequenced shared-variable update.
	downWrite struct {
		seq    int
		origin int
		v      VarID
		val    int64
		guard  LockID
	}
	// downLock is a sequenced lock-variable update (a grant or a free).
	downLock struct {
		seq   int
		l     LockID
		val   int64
		epoch int // grant epoch (grants only)
	}
)

// GWC models a Sesame sharing group: eagersharing plus group write
// consistency, with the group root acting as sequencer and lock manager.
// With cfg.Optimistic set, MutexDo uses the paper's optimistic mutual
// exclusion; otherwise it uses the regular queue-based GWC lock.
type GWC struct {
	k     *sim.Kernel
	net   *netsim.Net
	cfg   Config
	nodes []*gwcNode
	root  *gwcRoot
	stats Stats
}

// gwcRoot is the authoritative group state kept at the root node.
type gwcRoot struct {
	seq    int
	mem    map[VarID]int64
	holder map[LockID]int   // -1 when free
	epoch  map[LockID]int   // grants issued so far
	queue  map[LockID][]int // FIFO of waiting node IDs
}

// gwcNode is one node's sharing interface state.
type gwcNode struct {
	m       *GWC
	id      int
	mem     map[VarID]int64
	lockVal map[LockID]int64
	// epochSeen is the last grant epoch applied locally per lock; guarded
	// writes are tagged with it for the root's epoch validation.
	epochSeen map[LockID]int
	hist      map[LockID]float64
	wakeData  signal
	wakeLock  signal
	// spec tracks an in-flight optimistic section per lock; nil when no
	// speculation is active.
	spec map[LockID]*specState
	// suspended buffers incoming data updates during rollback, modelling
	// the paper's atomic interrupt-and-sharing-suspension.
	suspended bool
	pending   []downWrite
}

// specState is the rollback bookkeeping for one optimistic section: the
// prior value of every variable written speculatively (the compiler's
// saved_ copies of Figure 4).
type specState struct {
	rolledBack bool
	saved      map[VarID]int64
}

// NewGWC builds a GWC machine and starts its sharing interfaces.
func NewGWC(k *sim.Kernel, cfg Config) (*GWC, error) {
	net, err := netsim.New(k, cfg.N, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("gwc: %w", err)
	}
	if cfg.Root < 0 || cfg.Root >= cfg.N {
		return nil, fmt.Errorf("gwc: root %d out of range for %d nodes", cfg.Root, cfg.N)
	}
	m := &GWC{
		k:   k,
		net: net,
		cfg: cfg,
		root: &gwcRoot{
			mem:    make(map[VarID]int64),
			holder: make(map[LockID]int),
			epoch:  make(map[LockID]int),
			queue:  make(map[LockID][]int),
		},
	}
	m.nodes = make([]*gwcNode, cfg.N)
	for i := range m.nodes {
		n := &gwcNode{
			m:         m,
			id:        i,
			mem:       make(map[VarID]int64),
			lockVal:   make(map[LockID]int64),
			epochSeen: make(map[LockID]int),
			hist:      make(map[LockID]float64),
			wakeData:  newSignal(k),
			wakeLock:  newSignal(k),
			spec:      make(map[LockID]*specState),
		}
		m.nodes[i] = n
		k.Spawn(fmt.Sprintf("gwc.iface.%d", i), n.ifaceLoop)
	}
	return m, nil
}

// Name implements Machine.
func (m *GWC) Name() string {
	if m.cfg.Optimistic {
		return "gwc-optimistic"
	}
	return "gwc"
}

// N implements Machine.
func (m *GWC) N() int { return m.cfg.N }

// Value implements Machine.
func (m *GWC) Value(id int, v VarID) int64 { return m.nodes[id].mem[v] }

// LockValue reports node id's local copy of lock l (Free if never seen).
func (m *GWC) LockValue(id int, l LockID) int64 { return m.nodes[id].localLock(l) }

// Stats implements Machine.
func (m *GWC) Stats() Stats {
	s := m.stats
	s.Messages = m.net.Messages()
	s.Bytes = m.net.BytesSent()
	return s
}

// Start implements Machine.
func (m *GWC) Start(id int, body func(a App)) {
	n := m.nodes[id]
	m.k.Spawn(fmt.Sprintf("gwc.app.%d", id), func(p *sim.Proc) {
		body(&gwcApp{n: n, p: p})
	})
}

// members lists every node ID (the sharing group spans the machine).
func (m *GWC) members() []int {
	ids := make([]int, m.cfg.N)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

func (n *gwcNode) localLock(l LockID) int64 {
	if v, ok := n.lockVal[l]; ok {
		return v
	}
	return Free
}

// ifaceLoop is the node's memory-sharing interface: it applies sequenced
// updates to local memory and, on the root node, sequences up-traffic and
// manages locks.
func (n *gwcNode) ifaceLoop(p *sim.Proc) {
	cfg := &n.m.cfg
	for {
		msg := n.m.net.Inbox(n.id).Recv(p)
		switch pl := msg.Payload.(type) {
		case upWrite:
			p.Sleep(cfg.RootProc)
			n.rootWrite(pl)
		case upLockReq:
			p.Sleep(cfg.RootProc)
			n.rootLockReq(pl)
		case upLockRel:
			p.Sleep(cfg.RootProc)
			n.rootLockRel(pl)
		case downWrite:
			n.applyWrite(pl)
		case downLock:
			n.applyLock(pl)
		default:
			panic(fmt.Sprintf("gwc: node %d got unexpected payload %T", n.id, msg.Payload))
		}
	}
}

// rootWrite sequences a shared write at the group root, discarding
// speculative writes from nodes that do not hold the guarding lock.
func (n *gwcNode) rootWrite(w upWrite) {
	m := n.m
	if w.guard != NoGuard {
		cur := m.root.epoch[w.guard]
		if m.root.lockHolder(w.guard) != w.origin || (w.epoch != cur && w.epoch+1 != cur) {
			// The origin raced ahead optimistically and lost — either it
			// does not hold the lock at all (Section 4: the root
			// "discards" improper changes), or the write predates a
			// grant sequence that will force the origin to roll back
			// (epoch validation; see upWrite).
			m.stats.Suppressed++
			m.cfg.Trace.Addf(m.k.Now(), n.id, trace.WriteDropped, "var %d from CPU%d (not holder / stale epoch)", w.v, w.origin+1)
			return
		}
	}
	m.root.seq++
	m.root.mem[w.v] = w.val
	if w.guard != NoGuard {
		m.cfg.Trace.Addf(m.k.Now(), n.id, trace.WriteApplied, "var %d = %d from CPU%d (seq %d)", w.v, w.val, w.origin+1, m.root.seq)
	}
	down := downWrite{seq: m.root.seq, origin: w.origin, v: w.v, val: w.val, guard: w.guard}
	m.net.Multicast(n.id, m.cfg.varBytes(w.v), down, m.members())
	// The root is itself a member; apply locally through the same path.
	n.applyWrite(down)
}

// lockHolder reports the current holder of l, or -1.
func (r *gwcRoot) lockHolder(l LockID) int {
	if h, ok := r.holder[l]; ok {
		return h
	}
	return -1
}

// rootLockReq handles a lock request at the manager.
func (n *gwcNode) rootLockReq(req upLockReq) {
	m := n.m
	m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockRequest, "lock %d from CPU%d reaches root", req.l, req.origin+1)
	if m.root.lockHolder(req.l) == -1 {
		m.grant(req.l, req.origin)
		return
	}
	m.root.queue[req.l] = append(m.root.queue[req.l], req.origin)
}

// rootLockRel handles a release at the manager: the next queued grant is
// appended immediately after the releaser's data writes (already
// sequenced, thanks to per-link FIFO), so on every node the data completes
// before the lock changes.
func (n *gwcNode) rootLockRel(rel upLockRel) {
	m := n.m
	if h := m.root.lockHolder(rel.l); h != rel.origin {
		panic(fmt.Sprintf("gwc: release of lock %d by CPU%d but holder is %d", rel.l, rel.origin+1, h))
	}
	m.root.holder[rel.l] = -1
	q := m.root.queue[rel.l]
	if len(q) > 0 {
		next := q[0]
		m.root.queue[rel.l] = q[1:]
		m.grant(rel.l, next)
		return
	}
	// Nobody waiting: propagate the free value to all group memories.
	m.root.seq++
	down := downLock{seq: m.root.seq, l: rel.l, val: Free}
	m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockFree, "lock %d free", rel.l)
	m.net.Multicast(n.id, m.cfg.LockMsgBytes, down, m.members())
	n.applyLock(down)
}

// grant writes the winner's positive ID into the lock variable and
// multicasts it to the group.
func (m *GWC) grant(l LockID, winner int) {
	m.root.holder[l] = winner
	m.root.epoch[l]++
	m.root.seq++
	down := downLock{seq: m.root.seq, l: l, val: grantVal(winner), epoch: m.root.epoch[l]}
	m.cfg.Trace.Addf(m.k.Now(), m.cfg.Root, trace.LockGrant, "lock %d -> CPU%d", l, winner+1)
	m.net.Multicast(m.cfg.Root, m.cfg.LockMsgBytes, down, m.members())
	m.nodes[m.cfg.Root].applyLock(down)
}

// applyWrite installs a sequenced update into local memory, honouring the
// hardware blocking rule and insharing suspension.
func (n *gwcNode) applyWrite(w downWrite) {
	if n.suspended {
		n.pending = append(n.pending, w)
		return
	}
	if w.origin == n.id && w.guard != NoGuard {
		// Hardware blocking (Figure 6): drop root-echoed copies of our own
		// mutex-group writes so they cannot overwrite rollback state. The
		// local store already happened at write time.
		return
	}
	n.mem[w.v] = w.val
	n.wakeData.notify()
}

// applyLock installs a sequenced lock-variable update and runs the
// paper's interrupt logic (Figure 5) if this node is speculating.
func (n *gwcNode) applyLock(dl downLock) {
	n.lockVal[dl.l] = dl.val
	if dl.val != Free {
		n.epochSeen[dl.l] = dl.epoch
	}
	if sp := n.spec[dl.l]; sp != nil && !sp.rolledBack {
		if dl.val != Free && dl.val != grantVal(n.id) {
			// Another processor now has the lock: our optimistic values
			// may be wrong. Suspend insharing; the application process
			// performs the rollback and resumes it.
			sp.rolledBack = true
			n.suspended = true
			n.hist[dl.l] = n.m.cfg.HistoryDecay*n.hist[dl.l] + (1 - n.m.cfg.HistoryDecay)
			n.m.cfg.Trace.Addf(n.m.k.Now(), n.id, trace.Rollback, "lock %d taken by CPU%d", dl.l, dl.val)
		}
	}
	n.wakeLock.notify()
}

// resumeInsharing delivers updates buffered during a rollback.
func (n *gwcNode) resumeInsharing() {
	n.suspended = false
	pend := n.pending
	n.pending = nil
	for _, w := range pend {
		n.applyWrite(w)
	}
}

// gwcApp implements App for one node's application process.
type gwcApp struct {
	n *gwcNode
	p *sim.Proc
}

var _ App = (*gwcApp)(nil)

func (a *gwcApp) ID() int            { return a.n.id }
func (a *gwcApp) N() int             { return a.n.m.cfg.N }
func (a *gwcApp) Now() sim.Time      { return a.p.Now() }
func (a *gwcApp) Compute(d sim.Time) { a.p.Sleep(d) }

func (a *gwcApp) Read(v VarID) int64 {
	a.p.Sleep(a.n.m.cfg.LocalRead)
	return a.n.mem[v]
}

// Write applies locally at once (the writer never blocks under
// eagersharing) and ships the change to the root for sequencing.
func (a *gwcApp) Write(v VarID, val int64) {
	cfg := &a.n.m.cfg
	a.p.Sleep(cfg.LocalWrite)
	guard := NoGuard
	if g, ok := cfg.Guard[v]; ok {
		guard = g
		if sp := a.activeSpec(guard); sp != nil {
			if _, done := sp.saved[v]; !done {
				// First speculative write to v: save the prior value for
				// rollback (Figure 4 lines 14-16).
				sp.saved[v] = a.n.mem[v]
				a.p.Sleep(cfg.SaveCost)
			}
		}
	}
	a.n.mem[v] = val
	epoch := 0
	if guard != NoGuard {
		epoch = a.n.epochSeen[guard]
	}
	a.n.m.net.Send(a.n.id, cfg.Root, cfg.varBytes(v), upWrite{origin: a.n.id, v: v, val: val, guard: guard, epoch: epoch})
}

// activeSpec returns the speculation state if this app is inside an
// optimistic section for lock l.
func (a *gwcApp) activeSpec(l LockID) *specState { return a.n.spec[l] }

// Acquire takes the regular (non-optimistic) path: request, then wait for
// the positive ID to arrive in the local lock copy.
func (a *gwcApp) Acquire(l LockID) {
	n := a.n
	cfg := &n.m.cfg
	cfg.Trace.Addf(a.p.Now(), n.id, trace.LockRequest, "lock %d (regular)", l)
	n.lockVal[l] = requestVal(n.id)
	n.m.net.Send(n.id, cfg.Root, cfg.LockMsgBytes, upLockReq{origin: n.id, l: l})
	a.waitGrant(l)
	cfg.Trace.Addf(a.p.Now(), n.id, trace.EnterMX, "lock %d", l)
}

func (a *gwcApp) waitGrant(l LockID) {
	for a.n.localLock(l) != grantVal(a.n.id) {
		a.n.wakeLock.wait(a.p)
	}
}

// Release frees the lock: the release follows the section's last shared
// write on the same path, so GWC ordering guarantees every node sees the
// data before the lock changes.
func (a *gwcApp) Release(l LockID) {
	n := a.n
	cfg := &n.m.cfg
	cfg.Trace.Addf(a.p.Now(), n.id, trace.LockRelease, "lock %d", l)
	n.lockVal[l] = Free
	n.m.net.Send(n.id, cfg.Root, cfg.LockMsgBytes, upLockRel{origin: n.id, l: l})
}

// MutexDo runs body under lock l. With cfg.Optimistic it implements the
// compiler-generated code of Figure 4: sample the local lock copy, update
// the usage-frequency history, and either take the regular path or run
// body speculatively while the non-blocking request propagates.
func (a *gwcApp) MutexDo(l LockID, body func()) {
	n := a.n
	cfg := &n.m.cfg
	if !cfg.Optimistic {
		a.Acquire(l)
		body()
		a.Release(l)
		return
	}
	if n.spec[l] != nil {
		panic("gwc: cannot safely nest mutex lock requests") // paper line 28
	}

	// Lines 03-05: atomically sample-and-request, update history.
	old := n.localLock(l)
	inUse := 0.0
	if old != Free && old != grantVal(n.id) {
		inUse = 1.0
	}
	n.hist[l] = cfg.HistoryDecay*n.hist[l] + (1-cfg.HistoryDecay)*inUse

	if old != Free || n.hist[l] > cfg.HistoryThreshold {
		// Line 07: local copy or history indicate usage — regular path.
		n.m.stats.RegularPath++
		a.Acquire(l)
		body()
		a.Release(l)
		return
	}

	// Optimistic path (lines 13-19): non-blocking request, speculate.
	cfg.Trace.Addf(a.p.Now(), n.id, trace.OptimisticGo, "lock %d", l)
	n.lockVal[l] = requestVal(n.id)
	n.m.net.Send(n.id, cfg.Root, cfg.LockMsgBytes, upLockReq{origin: n.id, l: l})
	sp := &specState{saved: make(map[VarID]int64)}
	n.spec[l] = sp

	body()

	// Line 19: wait until the lock answer carries our ID (or roll back).
	for {
		if sp.rolledBack {
			break
		}
		if n.localLock(l) == grantVal(n.id) {
			n.m.stats.OptimisticOK++
			n.spec[l] = nil
			a.Release(l)
			return
		}
		n.wakeLock.wait(a.p)
	}

	// Roll back (lines 22-26): restore saved variables, resume insharing,
	// then wait for our queued request to be granted and re-execute.
	n.m.stats.Rollbacks++
	for v, old := range sp.saved {
		n.mem[v] = old
	}
	a.p.Sleep(sim.Time(len(sp.saved)) * cfg.RestoreCost)
	n.spec[l] = nil
	n.resumeInsharing()
	a.waitGrant(l)
	cfg.Trace.Addf(a.p.Now(), n.id, trace.EnterMX, "lock %d (after rollback)", l)
	body()
	a.Release(l)
}

// AwaitGE blocks until the eagerly shared local copy of v reaches min.
func (a *gwcApp) AwaitGE(v VarID, min int64) {
	a.p.Sleep(a.n.m.cfg.LocalRead)
	for a.n.mem[v] < min {
		a.n.wakeData.wait(a.p)
	}
}

package model

import (
	"fmt"

	"optsync/internal/netsim"
	"optsync/internal/sim"
	"optsync/internal/trace"
)

// Wire payloads for the entry-consistency machine.
type (
	// eLockReq asks the lock's current owner (directly, or via the
	// manager when the requester guesses wrong) for the lock.
	eLockReq struct {
		origin int
		l      LockID
	}
	// eGrant transfers the lock and the guarded data to the winner.
	eGrant struct {
		l    LockID
		from int
		data map[VarID]int64
	}
	// eFetchReq demand-fetches an unguarded variable from its home node.
	eFetchReq struct {
		origin int
		v      VarID
	}
	// eFetchResp answers a demand fetch.
	eFetchResp struct {
		v   VarID
		val int64
	}
)

// Entry models entry consistency (Midway): consistency is enforced only
// when entering a guarded section; the guarded data travels with the lock
// grant; releases are local; and reads of unguarded shared data are demand
// fetches to the variable's home node.
//
// This is the paper's "fast version of entry consistency": lock requests
// are routed to the actual current owner unless cfg.ViaManager forces the
// wrong-guess path through the manager.
type Entry struct {
	k     *sim.Kernel
	net   *netsim.Net
	cfg   Config
	nodes []*entryNode
	stats Stats

	// Global lock directory (the "always knows the owner" idealisation).
	owner    map[LockID]int
	held     map[LockID]bool
	inflight map[LockID]bool // grant sent, not yet arrived
	queue    map[LockID][]int
	readers  map[LockID][]int // nodes caching guarded data non-exclusively
}

// entryNode is one node's local state.
type entryNode struct {
	m        *Entry
	id       int
	mem      map[VarID]int64
	wakeLock signal
	fetchCh  *sim.Chan[eFetchResp]
}

// NewEntry builds an entry-consistency machine.
func NewEntry(k *sim.Kernel, cfg Config) (*Entry, error) {
	net, err := netsim.New(k, cfg.N, cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("entry: %w", err)
	}
	if cfg.Root < 0 || cfg.Root >= cfg.N {
		return nil, fmt.Errorf("entry: root %d out of range for %d nodes", cfg.Root, cfg.N)
	}
	m := &Entry{
		k:        k,
		net:      net,
		cfg:      cfg,
		owner:    make(map[LockID]int),
		held:     make(map[LockID]bool),
		inflight: make(map[LockID]bool),
		queue:    make(map[LockID][]int),
		readers:  make(map[LockID][]int),
	}
	m.nodes = make([]*entryNode, cfg.N)
	for i := range m.nodes {
		n := &entryNode{
			m:        m,
			id:       i,
			mem:      make(map[VarID]int64),
			wakeLock: newSignal(k),
			fetchCh:  sim.NewChan[eFetchResp](k),
		}
		m.nodes[i] = n
		k.Spawn(fmt.Sprintf("entry.iface.%d", i), n.ifaceLoop)
	}
	return m, nil
}

// Name implements Machine.
func (m *Entry) Name() string { return "entry" }

// N implements Machine.
func (m *Entry) N() int { return m.cfg.N }

// Value implements Machine.
func (m *Entry) Value(id int, v VarID) int64 { return m.nodes[id].mem[v] }

// Stats implements Machine.
func (m *Entry) Stats() Stats {
	s := m.stats
	s.Messages = m.net.Messages()
	s.Bytes = m.net.BytesSent()
	return s
}

// Start implements Machine.
func (m *Entry) Start(id int, body func(a App)) {
	n := m.nodes[id]
	m.k.Spawn(fmt.Sprintf("entry.app.%d", id), func(p *sim.Proc) {
		body(&entryApp{n: n, p: p})
	})
}

// SetReaders seeds the non-exclusive reader set for a lock's data, for
// scenarios (Figure 1) that begin with data cached on several nodes.
func (m *Entry) SetReaders(l LockID, nodes []int) {
	m.readers[l] = append([]int(nil), nodes...)
}

// lockOwner reports the lock's current owner (cfg.Root if never moved).
func (m *Entry) lockOwner(l LockID) int {
	if o, ok := m.owner[l]; ok {
		return o
	}
	return m.cfg.Root
}

// guardedVars lists the variables in lock l's data group, in VarID order.
func (m *Entry) guardedVars(l LockID) []VarID {
	var vs []VarID
	for v, g := range m.cfg.Guard {
		if g == l {
			vs = append(vs, v)
		}
	}
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && vs[j] < vs[j-1]; j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
	return vs
}

// grantBytes is the wire size of a grant: lock metadata plus the guarded
// data that must be shipped with it (entry consistency's defining cost).
func (m *Entry) grantBytes(l LockID) int {
	b := m.cfg.LockMsgBytes
	for _, v := range m.guardedVars(l) {
		b += m.cfg.varBytes(v)
	}
	return b
}

// transfer hands lock l from node `from` to node `to`, charging an
// invalidation round trip first when non-exclusive copies exist.
func (m *Entry) transfer(l LockID, from, to int) {
	var delay sim.Time
	if m.cfg.Invalidate && len(m.readers[l]) > 0 {
		// Invalidate every non-exclusive copy and wait for the slowest
		// acknowledgement before the grant can leave.
		worst := sim.Time(0)
		for _, r := range m.readers[l] {
			if r == to {
				continue
			}
			d := 2 * m.cfg.Net.Delay(m.net.Torus().Hops(from, r), m.cfg.LockMsgBytes)
			if d > worst {
				worst = d
			}
			m.stats.Invalidation++
			m.cfg.Trace.Addf(m.k.Now(), from, trace.Invalidate, "lock %d data at CPU%d", l, r+1)
		}
		m.readers[l] = nil
		delay = worst
	}
	m.inflight[l] = true
	data := make(map[VarID]int64, len(m.cfg.Guard))
	for _, v := range m.guardedVars(l) {
		data[v] = m.nodes[from].mem[v]
	}
	m.cfg.Trace.Addf(m.k.Now()+delay, from, trace.LockGrant, "lock %d -> CPU%d (with data)", l, to+1)
	m.net.SendAfter(delay, from, to, m.grantBytes(l), eGrant{l: l, from: from, data: data})
}

// ifaceLoop serves lock and fetch traffic at one node.
func (n *entryNode) ifaceLoop(p *sim.Proc) {
	m := n.m
	for {
		msg := m.net.Inbox(n.id).Recv(p)
		switch pl := msg.Payload.(type) {
		case eLockReq:
			n.handleLockReq(pl)
		case eGrant:
			for v, val := range pl.data {
				n.mem[v] = val
			}
			m.owner[pl.l] = n.id
			m.held[pl.l] = true
			m.inflight[pl.l] = false
			n.wakeLock.notify()
		case eFetchReq:
			m.net.Send(n.id, pl.origin, m.cfg.varBytes(pl.v), eFetchResp{v: pl.v, val: n.mem[pl.v]})
		case eFetchResp:
			n.fetchCh.Post(pl)
		default:
			panic(fmt.Sprintf("entry: node %d got unexpected payload %T", n.id, msg.Payload))
		}
	}
}

// handleLockReq queues, forwards, or grants a request arriving at this
// node.
func (n *entryNode) handleLockReq(req eLockReq) {
	m := n.m
	cur := m.lockOwner(req.l)
	if cur != n.id {
		// We no longer own it (or we are the manager relaying a wrong
		// guess): forward to the current owner.
		m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockRequest, "lock %d from CPU%d forwarded to CPU%d", req.l, req.origin+1, cur+1)
		m.net.Send(n.id, cur, m.cfg.LockMsgBytes, req)
		return
	}
	if m.held[req.l] || m.inflight[req.l] {
		// Busy, or the grant is still travelling to us: queue the request
		// behind the current/next holder.
		m.queue[req.l] = append(m.queue[req.l], req.origin)
		m.cfg.Trace.Addf(m.k.Now(), n.id, trace.LockRequest, "lock %d from CPU%d queued", req.l, req.origin+1)
		return
	}
	// Idle owner: transfer immediately. Ownership moves when the grant
	// arrives; until then requests keep finding us and are forwarded.
	m.owner[req.l] = req.origin // in-flight: route later requests onward
	m.transfer(req.l, n.id, req.origin)
}

// entryApp implements App on the entry machine.
type entryApp struct {
	n *entryNode
	p *sim.Proc
}

var _ App = (*entryApp)(nil)

func (a *entryApp) ID() int            { return a.n.id }
func (a *entryApp) N() int             { return a.n.m.cfg.N }
func (a *entryApp) Now() sim.Time      { return a.p.Now() }
func (a *entryApp) Compute(d sim.Time) { a.p.Sleep(d) }

// Read is local for guarded data we hold and for variables homed here;
// any other shared read is a demand fetch (entry consistency does not
// update remote copies until a lock is requested).
func (a *entryApp) Read(v VarID) int64 {
	m := a.n.m
	if g, ok := m.cfg.Guard[v]; ok && m.lockOwner(g) == a.n.id {
		a.p.Sleep(m.cfg.LocalRead)
		return a.n.mem[v]
	}
	home, ok := m.cfg.Home[v]
	if !ok || home == a.n.id {
		a.p.Sleep(m.cfg.LocalRead)
		return a.n.mem[v]
	}
	m.stats.DemandFetch++
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.DemandFetch, "var %d from CPU%d", v, home+1)
	m.net.Send(a.n.id, home, m.cfg.LockMsgBytes, eFetchReq{origin: a.n.id, v: v})
	resp := a.n.fetchCh.Recv(a.p)
	a.n.mem[resp.v] = resp.val
	return resp.val
}

// Write updates the local copy only; guarded data propagates with the
// next lock transfer, unguarded data is served to demand fetches.
func (a *entryApp) Write(v VarID, val int64) {
	a.p.Sleep(a.n.m.cfg.LocalWrite)
	a.n.mem[v] = val
}

// Acquire requests the lock in exclusive mode and blocks until the grant
// (with its data) arrives. Re-acquiring a lock we still own is local.
func (a *entryApp) Acquire(l LockID) {
	m := a.n.m
	if m.lockOwner(l) == a.n.id && !m.held[l] && !m.inflight[l] {
		m.held[l] = true
		a.p.Sleep(m.cfg.LocalRead)
		m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.EnterMX, "lock %d (already owner)", l)
		return
	}
	dest := m.lockOwner(l)
	if m.cfg.ViaManager && a.n.id != m.cfg.Root {
		// Wrong owner guess: the request goes to the manager first.
		dest = m.cfg.Root
	}
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.LockRequest, "lock %d via CPU%d", l, dest+1)
	m.net.Send(a.n.id, dest, m.cfg.LockMsgBytes, eLockReq{origin: a.n.id, l: l})
	for !(m.lockOwner(l) == a.n.id && m.held[l]) {
		a.n.wakeLock.wait(a.p)
	}
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.EnterMX, "lock %d", l)
}

// Release is local under entry consistency; if requests are queued here
// the lock (and data) leave immediately.
func (a *entryApp) Release(l LockID) {
	m := a.n.m
	a.p.Sleep(m.cfg.LocalWrite)
	m.cfg.Trace.Addf(a.p.Now(), a.n.id, trace.LockRelease, "lock %d (local)", l)
	m.held[l] = false
	q := m.queue[l]
	if len(q) > 0 {
		next := q[0]
		m.queue[l] = q[1:]
		m.owner[l] = next
		m.transfer(l, a.n.id, next)
	}
}

// MutexDo on the entry machine is the conventional acquire/run/release.
func (a *entryApp) MutexDo(l LockID, body func()) {
	a.Acquire(l)
	body()
	a.Release(l)
}

// AwaitGE polls the variable with demand fetches until it reaches min —
// the paper's "processors must fetch and test a variable written by the
// producer ... causing network traffic and delays".
func (a *entryApp) AwaitGE(v VarID, min int64) {
	for {
		if a.Read(v) >= min {
			return
		}
		a.p.Sleep(a.n.m.cfg.PollInterval)
	}
}

package model

import (
	"testing"

	"optsync/internal/sim"
)

func newReleaseTest(t *testing.T, n int) (*sim.Kernel, *Release) {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(n)
	cfg.Guard = map[VarID]LockID{varA: testLock}
	m, err := NewRelease(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestReleaseUpdatesPropagateEagerly(t *testing.T) {
	k, m := newReleaseTest(t, 4)
	m.Start(1, func(a App) {
		a.Write(200, 55)
	})
	k.Run()
	for i := 0; i < 4; i++ {
		if got := m.Value(i, 200); got != 55 {
			t.Errorf("node %d sees %d, want 55", i, got)
		}
	}
}

func TestReleaseBlocksUntilUpdatesComplete(t *testing.T) {
	// The release-consistency barrier: Release must take at least a
	// round trip to the farthest node (update + ack), unlike GWC where
	// release is immediate.
	k, m := newReleaseTest(t, 9)
	var relDur sim.Time
	m.Start(4, func(a App) {
		a.Acquire(testLock)
		a.Write(varA, 9)
		start := a.Now()
		a.Release(testLock)
		relDur = a.Now() - start
	})
	k.Run()
	// Farthest node from 4 on a 3x3 torus is 2 hops: update (2*200+ser)
	// plus ack back. Release must have waited at least ~1 RTT.
	if relDur < 800 {
		t.Errorf("release completed in %dns, want >= one update round trip", relDur)
	}
}

func TestReleaseThreeMessageHandoff(t *testing.T) {
	// Contended transfer: request -> manager, forward -> holder,
	// grant -> requester (the paper's "three one-way messages").
	k, m := newReleaseTest(t, 4)
	var acquired sim.Time
	m.Start(1, func(a App) {
		a.Acquire(testLock)
		a.Compute(50000)
		a.Release(testLock)
	})
	m.Start(2, func(a App) {
		a.Compute(5000) // request while node 1 holds it
		a.Acquire(testLock)
		acquired = a.Now()
		a.Release(testLock)
	})
	k.Run()
	if acquired < 50000 {
		t.Errorf("node 2 acquired at %d while node 1 still held the lock", acquired)
	}
}

func TestReleaseMutualExclusion(t *testing.T) {
	k, m := newReleaseTest(t, 4)
	type span struct {
		node       int
		start, end sim.Time
	}
	var spans []span
	for id := 0; id < 4; id++ {
		id := id
		m.Start(id, func(a App) {
			for i := 0; i < 3; i++ {
				a.Acquire(testLock)
				start := a.Now()
				a.Compute(600)
				a.Write(varA, int64(id))
				spans = append(spans, span{node: id, start: start, end: a.Now()})
				a.Release(testLock)
				a.Compute(900)
			}
		})
	}
	k.Run()
	if len(spans) != 12 {
		t.Fatalf("completed %d critical sections, want 12", len(spans))
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				t.Errorf("overlap: node %d [%d,%d] vs node %d [%d,%d]",
					a.node, a.start, a.end, b.node, b.start, b.end)
			}
		}
	}
}

func TestReleaseCounterCorrectness(t *testing.T) {
	k, m := newReleaseTest(t, 4)
	const reps = 5
	for id := 0; id < 4; id++ {
		m.Start(id, func(a App) {
			for i := 0; i < reps; i++ {
				a.MutexDo(testLock, func() {
					cur := a.Read(varA)
					a.Compute(300)
					a.Write(varA, cur+1)
				})
				a.Compute(4000)
			}
		})
	}
	k.Run()
	for i := 0; i < 4; i++ {
		if got := m.Value(i, varA); got != 4*reps {
			t.Errorf("node %d counter = %d, want %d", i, got, 4*reps)
		}
	}
}

func TestReleaseManagerSelfAcquire(t *testing.T) {
	k, m := newReleaseTest(t, 3)
	done := false
	m.Start(0, func(a App) { // node 0 is the manager
		a.Acquire(testLock)
		a.Write(varA, 1)
		a.Release(testLock)
		a.Acquire(testLock) // again, after a free release
		a.Release(testLock)
		done = true
	})
	k.Run()
	if !done {
		t.Error("manager could not acquire its own lock twice")
	}
}

func TestReleaseAwaitGE(t *testing.T) {
	k, m := newReleaseTest(t, 3)
	var doneAt sim.Time
	m.Start(0, func(a App) {
		a.Compute(3000)
		a.Write(200, 10)
	})
	m.Start(2, func(a App) {
		a.AwaitGE(200, 10)
		doneAt = a.Now()
	})
	k.Run()
	if doneAt < 3000 || doneAt > 10000 {
		t.Errorf("AwaitGE returned at %d, want shortly after 3000", doneAt)
	}
}

// TestCrossMachineEquivalence runs the same mutex counter program on all
// three machines; the converged result must be identical — the models
// differ in timing, never in outcome.
func TestCrossMachineEquivalence(t *testing.T) {
	build := func(name string, k *sim.Kernel, cfg Config) Machine {
		switch name {
		case "gwc":
			m, err := NewGWC(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		case "gwc-opt":
			cfg.Optimistic = true
			m, err := NewGWC(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		case "entry":
			m, err := NewEntry(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		default:
			m, err := NewRelease(k, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return m
		}
	}
	for _, name := range []string{"gwc", "gwc-opt", "entry", "release"} {
		k := sim.NewKernel()
		cfg := DefaultConfig(5)
		cfg.Guard = map[VarID]LockID{varA: testLock}
		m := build(name, k, cfg)
		const reps = 4
		for id := 0; id < 5; id++ {
			m.Start(id, func(a App) {
				for i := 0; i < reps; i++ {
					a.MutexDo(testLock, func() {
						cur := a.Read(varA)
						a.Compute(250)
						a.Write(varA, cur+1)
					})
					a.Compute(3000)
				}
			})
		}
		k.Run()
		// Check the value at a node guaranteed current under every model:
		// under entry only the last owner is current, so check via owner
		// for entry and node 0 otherwise.
		var got int64
		if e, ok := m.(*Entry); ok {
			got = e.Value(e.lockOwner(testLock), varA)
		} else {
			got = m.Value(0, varA)
		}
		if got != 5*reps {
			t.Errorf("%s: counter = %d, want %d", name, got, 5*reps)
		}
	}
}

package model

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterCheckerAcceptsCleanHistory(t *testing.T) {
	c := NewCounterChecker()
	for i := int64(0); i < 10; i++ {
		c.Acked(i)
	}
	if err := c.Check(10); err != nil {
		t.Fatalf("clean history rejected: %v", err)
	}
	if got := c.Len(); got != 10 {
		t.Fatalf("Len = %d, want 10", got)
	}
}

func TestCounterCheckerAcceptsGaps(t *testing.T) {
	// Unacknowledged operations (crashed mid-section) leave holes in the
	// chain; holes are fine, the claim is only about acknowledged ops.
	c := NewCounterChecker()
	c.Acked(0)
	c.Acked(4)
	if err := c.Check(7); err != nil {
		t.Fatalf("gappy history rejected: %v", err)
	}
}

func TestCounterCheckerRejectsDoubleGrant(t *testing.T) {
	c := NewCounterChecker()
	c.Acked(3)
	c.Acked(3) // two sections saw the same predecessor value
	err := c.Check(10)
	if err == nil || !strings.Contains(err.Error(), "mutual exclusion") {
		t.Fatalf("double transition not flagged: %v", err)
	}
}

func TestCounterCheckerRejectsLostWrite(t *testing.T) {
	c := NewCounterChecker()
	c.Acked(5) // committed 6, but the group ended at 4
	err := c.Check(4)
	if err == nil || !strings.Contains(err.Error(), "lost") {
		t.Fatalf("lost acknowledged write not flagged: %v", err)
	}
}

func TestCounterCheckerConcurrentRecording(t *testing.T) {
	c := NewCounterChecker()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Acked(int64(w*100 + i))
			}
		}()
	}
	wg.Wait()
	if err := c.Check(800); err != nil {
		t.Fatalf("concurrent clean history rejected: %v", err)
	}
}

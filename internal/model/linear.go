package model

import (
	"fmt"
	"sort"
	"sync"
)

// CounterChecker validates the linearizability of acknowledged
// increments on a single shared counter — the harness the chaos tests
// use to prove "no acknowledged write is lost" across partitions,
// fencing, and failovers.
//
// The workload is counter increments inside critical sections: each
// completed operation observed some value `from` and committed
// `from+1`. For a history of such operations to linearize against a
// counter that ends at `final`, the acknowledged operations must form a
// subset of the chain 0 -> 1 -> ... -> final with every transition
// taken at most once:
//
//   - two acknowledged operations claiming the same transition means
//     two critical sections saw the same predecessor state — a mutual
//     exclusion violation (double grant);
//   - an acknowledged transition beyond `final` means the group's final
//     history does not contain the operation — an acknowledged write
//     was lost (e.g. committed by a minority reign and discarded at
//     heal).
//
// Unacknowledged operations (crashed mid-section, aborted, fenced away)
// are simply never recorded; the checker makes no claim about them.
type CounterChecker struct {
	mu   sync.Mutex
	seen map[int64]int // committed `to` value -> times acknowledged
}

// NewCounterChecker returns an empty checker.
func NewCounterChecker() *CounterChecker {
	return &CounterChecker{seen: make(map[int64]int)}
}

// Acked records one acknowledged increment that read `from` and
// committed `from+1`. Call it only after the operation's success was
// reported to the application (lock released, or barrier answered).
// Safe for concurrent use.
func (c *CounterChecker) Acked(from int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seen[from+1]++
}

// Len reports how many increments have been acknowledged. Safe for
// concurrent use.
func (c *CounterChecker) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, k := range c.seen {
		n += k
	}
	return n
}

// Check verifies the acknowledged history against the counter's final
// value and returns the first violation found (duplicate transition =
// lost mutual exclusion; transition past final = lost acknowledged
// write), or nil if the history linearizes. Safe for concurrent use,
// but meaningful once the system has quiesced at `final`.
func (c *CounterChecker) Check(final int64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	tos := make([]int64, 0, len(c.seen))
	for to := range c.seen {
		tos = append(tos, to)
	}
	sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	for _, to := range tos {
		if k := c.seen[to]; k > 1 {
			return fmt.Errorf("model: transition %d->%d acknowledged %d times (mutual exclusion violated)", to-1, to, k)
		}
		if to < 1 {
			return fmt.Errorf("model: acknowledged transition to %d outside the counter chain", to)
		}
		if to > final {
			return fmt.Errorf("model: acknowledged transition %d->%d exceeds final value %d (acknowledged write lost)", to-1, to, final)
		}
	}
	return nil
}

package model

import (
	"testing"

	"optsync/internal/sim"
	"optsync/internal/trace"
)

const (
	testLock LockID = 0
	varA     VarID  = 0
	varB     VarID  = 1
)

// newGWCTest builds a GWC machine with varA/varB guarded by testLock.
func newGWCTest(t *testing.T, n int, optimistic bool) (*sim.Kernel, *GWC) {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(n)
	cfg.Optimistic = optimistic
	cfg.Guard = map[VarID]LockID{varA: testLock, varB: testLock}
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestGWCWritePropagatesToAllNodes(t *testing.T) {
	k, m := newGWCTest(t, 5, false)
	m.Start(2, func(a App) {
		a.Write(100, 42) // unguarded variable
	})
	k.Run()
	for i := 0; i < 5; i++ {
		if got := m.Value(i, 100); got != 42 {
			t.Errorf("node %d sees %d, want 42", i, got)
		}
	}
}

func TestGWCAllNodesSeeSameWriteOrder(t *testing.T) {
	// Two nodes write the same unguarded variable concurrently; every
	// node must converge on the same final value (the root's sequence
	// decides), and the root's authoritative copy must agree.
	k, m := newGWCTest(t, 4, false)
	for w := 1; w <= 2; w++ {
		w := w
		m.Start(w, func(a App) {
			for i := 0; i < 10; i++ {
				a.Write(100, int64(w*1000+i))
				a.Compute(137 * sim.Time(w)) // deliberately misaligned
			}
		})
	}
	k.Run()
	final := m.Value(0, 100)
	for i := 1; i < 4; i++ {
		if got := m.Value(i, 100); got != final {
			t.Errorf("node %d converged on %d, node 0 on %d", i, got, final)
		}
	}
}

func TestGWCMutualExclusion(t *testing.T) {
	// Track critical-section overlap using virtual timestamps.
	k, m := newGWCTest(t, 4, false)
	type span struct {
		node       int
		start, end sim.Time
	}
	var spans []span
	for id := 0; id < 4; id++ {
		id := id
		m.Start(id, func(a App) {
			for i := 0; i < 3; i++ {
				a.Acquire(testLock)
				start := a.Now()
				a.Compute(500)
				a.Write(varA, int64(id))
				spans = append(spans, span{node: id, start: start, end: a.Now()})
				a.Release(testLock)
				a.Compute(200)
			}
		})
	}
	k.Run()
	if len(spans) != 12 {
		t.Fatalf("recorded %d critical sections, want 12", len(spans))
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				t.Errorf("critical sections overlap: node %d [%d,%d] vs node %d [%d,%d]",
					a.node, a.start, a.end, b.node, b.start, b.end)
			}
		}
	}
}

func TestGWCLockGrantsFIFO(t *testing.T) {
	tr := &trace.Log{}
	k := sim.NewKernel()
	cfg := DefaultConfig(5)
	cfg.Trace = tr
	cfg.Root = 0
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 0 (the root) holds the lock while 1..4 request in a staggered
	// order; grants must follow request arrival order.
	m.Start(0, func(a App) {
		a.Acquire(testLock)
		a.Compute(100000) // long enough for all requests to queue
		a.Release(testLock)
	})
	for id := 1; id <= 4; id++ {
		id := id
		m.Start(id, func(a App) {
			a.Compute(sim.Time(1000 * id)) // request order 1,2,3,4
			a.Acquire(testLock)
			a.Compute(10)
			a.Release(testLock)
		})
	}
	k.Run()
	var order []string
	for _, e := range tr.Events() {
		if e.Kind == trace.LockGrant {
			order = append(order, e.Detail)
		}
	}
	want := []string{
		"lock 0 -> CPU1",
		"lock 0 -> CPU2",
		"lock 0 -> CPU3",
		"lock 0 -> CPU4",
		"lock 0 -> CPU5",
	}
	if len(order) != len(want) {
		t.Fatalf("grants = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order %v, want %v", order, want)
		}
	}
}

func TestGWCUncontendedLockCostsThreeMessages(t *testing.T) {
	// The paper: "There is no network traffic except three one-way
	// messages to request, grant, and release the lock." With the grant
	// multicast to the group, a 2-node group sees exactly 3 messages
	// (request up, grant down, release up) plus the final free multicast.
	k, m := newGWCTest(t, 2, false)
	m.Start(1, func(a App) {
		a.Acquire(testLock)
		a.Release(testLock)
	})
	k.Run()
	s := m.Stats()
	// request(1->0), grant(0->1), release(1->0), free(0->1).
	if s.Messages != 4 {
		t.Errorf("uncontended acquire/release cost %d messages, want 4 (3 + free propagation)", s.Messages)
	}
}

func TestGWCDataArrivesBeforeGrant(t *testing.T) {
	// GWC's core guarantee: the previous holder's writes are sequenced
	// before the next grant, so when a node sees the lock arrive, the
	// protected data is already valid locally.
	k, m := newGWCTest(t, 3, false)
	var seen int64
	m.Start(1, func(a App) {
		a.Acquire(testLock)
		a.Compute(1000)
		a.Write(varA, 7777)
		a.Release(testLock)
	})
	m.Start(2, func(a App) {
		a.Compute(10) // request while node 1 holds the lock
		a.Acquire(testLock)
		seen = a.Read(varA) // must be valid with zero extra waiting
		a.Release(testLock)
	})
	k.Run()
	if seen != 7777 {
		t.Errorf("node 2 read %d inside the critical section, want 7777", seen)
	}
}

func TestGWCHardwareBlockingDropsOwnEchoes(t *testing.T) {
	// After a local write to a guarded variable, the root's echo must not
	// come back and overwrite a newer local value.
	k, m := newGWCTest(t, 2, false)
	m.Start(1, func(a App) {
		a.Acquire(testLock)
		a.Write(varA, 1)
		// Overwrite locally before the echo returns; if the echo were
		// applied it would restore 1.
		a.Write(varA, 2)
		a.Compute(100000) // let any echo arrive
		if got := a.Read(varA); got != 2 {
			t.Errorf("local guarded copy = %d after echo window, want 2", got)
		}
		a.Release(testLock)
	})
	k.Run()
}

func TestGWCOptimisticNoContentionCommits(t *testing.T) {
	k, m := newGWCTest(t, 3, true)
	done := false
	m.Start(1, func(a App) {
		a.MutexDo(testLock, func() {
			a.Compute(500)
			a.Write(varA, 99)
		})
		done = true
	})
	k.Run()
	if !done {
		t.Fatal("optimistic section never completed")
	}
	s := m.Stats()
	if s.OptimisticOK != 1 || s.Rollbacks != 0 || s.RegularPath != 0 {
		t.Errorf("stats = %+v, want exactly one committed optimistic section", s)
	}
	for i := 0; i < 3; i++ {
		if got := m.Value(i, varA); got != 99 {
			t.Errorf("node %d sees varA=%d, want 99", i, got)
		}
	}
}

func TestGWCOptimisticOverlapsLockLatency(t *testing.T) {
	// The headline claim: with no contention, the optimistic section's
	// compute time overlaps the request/grant round trip, so MutexDo
	// completes sooner than regular acquire+run+release.
	section := sim.Time(5000)
	run := func(optimistic bool) sim.Time {
		k, m := newGWCTest(t, 9, optimistic)
		var end sim.Time
		m.Start(8, func(a App) { // far from root 0
			a.MutexDo(testLock, func() {
				a.Compute(section)
				a.Write(varA, 1)
			})
			end = a.Now()
		})
		k.Run()
		return end
	}
	opt, reg := run(true), run(false)
	if opt >= reg {
		t.Errorf("optimistic end %d >= regular end %d: no overlap benefit", opt, reg)
	}
	// The benefit should be roughly the request+grant latency.
	if reg-opt < 400 {
		t.Errorf("benefit = %dns, suspiciously small", reg-opt)
	}
}

func TestGWCOptimisticRollbackFigure7(t *testing.T) {
	// The paper's Figure 7 "most complex rollback interaction": node 2
	// optimistically updates a=x while node 1's request, update a=y, and
	// release race ahead of it at the root. Node 2 must roll back, its
	// speculative write must be suppressed by the root, and after its
	// queued request is granted it re-executes and writes the correct
	// value. Every node must converge on node 2's final value.
	tr := &trace.Log{}
	k := sim.NewKernel()
	cfg := DefaultConfig(3)
	cfg.Optimistic = true
	cfg.Guard = map[VarID]LockID{varA: testLock}
	cfg.Trace = tr
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 is adjacent to root 0; node 2 is further. Node 1's request
	// beats node 2's, so node 2's optimistic write reaches the root while
	// node 1 holds the lock.
	m.Start(1, func(a App) {
		a.MutexDo(testLock, func() {
			a.Compute(200)
			a.Write(varA, 1111) // a = y
		})
	})
	m.Start(2, func(a App) {
		a.Compute(5) // request slightly later than node 1
		a.MutexDo(testLock, func() {
			a.Compute(200)
			base := a.Read(varA)
			a.Write(varA, base+1) // a = x first time, a = r after rollback
		})
	})
	k.Run()

	s := m.Stats()
	if s.Rollbacks != 1 {
		t.Errorf("rollbacks = %d, want 1\ntrace:\n%s", s.Rollbacks, tr)
	}
	if s.Suppressed < 1 {
		t.Errorf("suppressed speculative writes = %d, want >= 1", s.Suppressed)
	}
	// After rollback, node 2 re-reads a=1111 and writes 1112.
	for i := 0; i < 3; i++ {
		if got := m.Value(i, varA); got != 1112 {
			t.Errorf("node %d converged on %d, want 1112\ntrace:\n%s", i, got, tr)
		}
	}
}

func TestGWCOptimisticHeavyUseTakesRegularPath(t *testing.T) {
	// Under heavy contention the history filter must push requesters onto
	// the regular path ("This method does not add any network traffic
	// when the lock is heavily contended").
	k, m := newGWCTest(t, 3, true)
	for id := 1; id <= 2; id++ {
		id := id
		m.Start(id, func(a App) {
			for i := 0; i < 30; i++ {
				a.MutexDo(testLock, func() {
					a.Compute(2000)
					a.Write(varA, int64(id))
				})
			}
		})
	}
	k.Run()
	s := m.Stats()
	if s.RegularPath == 0 {
		t.Errorf("no acquisition ever took the regular path under heavy contention: %+v", s)
	}
}

func TestGWCOptimisticNestingPanics(t *testing.T) {
	k, m := newGWCTest(t, 2, true)
	recovered := false
	m.Start(1, func(a App) {
		defer func() {
			if r := recover(); r != nil {
				recovered = true
			}
		}()
		a.MutexDo(testLock, func() {
			a.MutexDo(testLock, func() {}) // paper line 28: ERROR
		})
	})
	k.Run()
	if !recovered {
		t.Error("nested MutexDo on the same lock did not panic")
	}
}

func TestGWCSequentialCounterCorrectness(t *testing.T) {
	// N nodes each increment a guarded counter K times under MutexDo;
	// the final value must be N*K under both lock modes.
	for _, optimistic := range []bool{false, true} {
		k, m := newGWCTest(t, 4, optimistic)
		const reps = 5
		for id := 0; id < 4; id++ {
			m.Start(id, func(a App) {
				for i := 0; i < reps; i++ {
					a.MutexDo(testLock, func() {
						cur := a.Read(varA)
						a.Compute(300)
						a.Write(varA, cur+1)
					})
					a.Compute(5000)
				}
			})
		}
		k.Run()
		for i := 0; i < 4; i++ {
			if got := m.Value(i, varA); got != 4*reps {
				t.Errorf("optimistic=%v: node %d counter = %d, want %d", optimistic, i, got, 4*reps)
			}
		}
	}
}

func TestGWCAwaitGESeesEagerUpdate(t *testing.T) {
	k, m := newGWCTest(t, 3, false)
	var awaited sim.Time
	m.Start(0, func(a App) {
		a.Compute(4000)
		a.Write(200, 5)
	})
	m.Start(2, func(a App) {
		a.AwaitGE(200, 5)
		awaited = a.Now()
	})
	k.Run()
	if awaited == 0 {
		t.Fatal("AwaitGE never returned")
	}
	// Node 2 should see the value roughly one root-relay after t=4000.
	if awaited < 4000 || awaited > 20000 {
		t.Errorf("AwaitGE returned at %d, want shortly after 4000", awaited)
	}
}

package model

import (
	"testing"
	"testing/quick"

	"optsync/internal/sim"
)

// schedule turns fuzz bytes into a per-node op sequence.
type schedOp struct {
	compute sim.Time
	mutex   bool // increment the guarded counter under MutexDo
}

func decodeSchedule(raw []byte, maxOps int) []schedOp {
	var ops []schedOp
	for i := 0; i < len(raw) && len(ops) < maxOps; i += 2 {
		op := schedOp{compute: sim.Time(raw[i]) * 37}
		if i+1 < len(raw) {
			op.mutex = raw[i+1]%2 == 0
		}
		ops = append(ops, op)
	}
	return ops
}

// runSchedule executes random schedules on a machine and returns the
// number of mutex increments performed.
func runSchedule(t *testing.T, m Machine, k *sim.Kernel, scheds [][]schedOp) int {
	t.Helper()
	total := 0
	for id := 0; id < m.N() && id < len(scheds); id++ {
		ops := scheds[id]
		for _, op := range ops {
			if op.mutex {
				total++
			}
		}
		id := id
		m.Start(id, func(a App) {
			for _, op := range ops {
				a.Compute(op.compute)
				if op.mutex {
					a.MutexDo(testLock, func() {
						cur := a.Read(varA)
						a.Compute(50)
						a.Write(varA, cur+1)
					})
				} else {
					// An unguarded write: last sequenced value wins.
					a.Write(500, int64(id*1000)+a.Read(500)%997)
				}
			}
		})
	}
	k.Run()
	return total
}

// TestRandomScheduleConvergenceProperty: under any random schedule of
// guarded increments and unguarded writes, (a) the guarded counter ends
// equal to the number of increments on every model, and (b) every node's
// copy of the unguarded variable is identical — but (b) only under group
// write consistency. Release consistency deliberately does NOT totally
// order unsynchronized concurrent writes (update multicasts from two
// nodes may apply in different orders at different nodes), which is
// precisely the gap GWC's root sequencing closes; for it only (a) holds.
func TestRandomScheduleConvergenceProperty(t *testing.T) {
	kinds := []struct {
		name           string
		totallyOrdered bool
		build          func(k *sim.Kernel, cfg Config) (Machine, error)
	}{
		{"gwc", true, func(k *sim.Kernel, cfg Config) (Machine, error) { return NewGWC(k, cfg) }},
		{"gwc-opt", true, func(k *sim.Kernel, cfg Config) (Machine, error) {
			cfg.Optimistic = true
			return NewGWC(k, cfg)
		}},
		{"release", false, func(k *sim.Kernel, cfg Config) (Machine, error) { return NewRelease(k, cfg) }},
	}
	for _, kind := range kinds {
		kind := kind
		t.Run(kind.name, func(t *testing.T) {
			prop := func(a, b, c []byte) bool {
				k := sim.NewKernel()
				cfg := DefaultConfig(3)
				cfg.Guard = map[VarID]LockID{varA: testLock}
				m, err := kind.build(k, cfg)
				if err != nil {
					t.Fatal(err)
				}
				scheds := [][]schedOp{
					decodeSchedule(a, 8),
					decodeSchedule(b, 8),
					decodeSchedule(c, 8),
				}
				total := runSchedule(t, m, k, scheds)
				for id := 0; id < 3; id++ {
					if got := m.Value(id, varA); got != int64(total) {
						t.Logf("%s: node %d counter = %d, want %d", kind.name, id, got, total)
						return false
					}
				}
				if kind.totallyOrdered {
					final := m.Value(0, 500)
					for id := 1; id < 3; id++ {
						if m.Value(id, 500) != final {
							t.Logf("%s: node %d diverged on unguarded var", kind.name, id)
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestOptimisticNeverLosesIncrementsProperty drives the optimistic GWC
// machine with adversarial small compute gaps (maximum lock-request
// overlap) and checks no increment is ever lost to a rollback bug.
func TestOptimisticNeverLosesIncrementsProperty(t *testing.T) {
	prop := func(gaps [6]uint8) bool {
		k := sim.NewKernel()
		cfg := DefaultConfig(3)
		cfg.Optimistic = true
		cfg.Guard = map[VarID]LockID{varA: testLock}
		m, err := NewGWC(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		perNode := 2
		for id := 0; id < 3; id++ {
			id := id
			m.Start(id, func(a App) {
				for r := 0; r < perNode; r++ {
					a.Compute(sim.Time(gaps[id*perNode+r]))
					a.MutexDo(testLock, func() {
						cur := a.Read(varA)
						a.Compute(200)
						a.Write(varA, cur+1)
					})
				}
			})
		}
		k.Run()
		want := int64(3 * perNode)
		for id := 0; id < 3; id++ {
			if m.Value(id, varA) != want {
				t.Logf("node %d = %d, want %d (stats %+v)", id, m.Value(id, varA), want, m.Stats())
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestSimulationsAreDeterministic runs the same seeded workload twice and
// requires identical virtual end times and stats — the property the
// figure reproduction rests on.
func TestSimulationsAreDeterministic(t *testing.T) {
	run := func() (sim.Time, Stats) {
		k := sim.NewKernel()
		cfg := DefaultConfig(5)
		cfg.Optimistic = true
		cfg.Guard = map[VarID]LockID{varA: testLock}
		m, err := NewGWC(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for id := 0; id < 5; id++ {
			id := id
			m.Start(id, func(a App) {
				for r := 0; r < 10; r++ {
					a.Compute(sim.Time(100 * (id + 1)))
					a.MutexDo(testLock, func() {
						a.Compute(300)
						a.Write(varA, int64(id*100+r))
					})
				}
			})
		}
		end := k.Run()
		return end, m.Stats()
	}
	end1, s1 := run()
	end2, s2 := run()
	if end1 != end2 {
		t.Errorf("end times differ: %d vs %d", end1, end2)
	}
	if s1 != s2 {
		t.Errorf("stats differ: %+v vs %+v", s1, s2)
	}
}

// Package model contains discrete-event protocol models of the systems the
// paper compares:
//
//   - GWC: Sesame eagersharing with group write consistency and queue-based
//     locks at the group root, with both regular and optimistic mutual
//     exclusion (Sections 2 and 4 of the paper).
//   - Entry: entry consistency (Bershad & Zekauskas' Midway) — data shipped
//     with the lock, demand fetch for unguarded reads, local releases.
//   - Release: weak/release consistency — a lock manager, request
//     forwarding to the current holder, and releases that block until all
//     outstanding updates have reached every node.
//
// All three implement the same App interface, so the paper's workloads
// (internal/workload) run unchanged under each model and the figures
// compare like for like.
package model

import (
	"math"

	"optsync/internal/netsim"
	"optsync/internal/sim"
	"optsync/internal/trace"
)

// VarID identifies a shared variable.
type VarID int

// LockID identifies a mutual-exclusion lock.
type LockID int

// NoGuard marks a write to a variable outside every mutex data group.
const NoGuard LockID = -1

// Free is the distinguished "lock free" value (the paper's -99..99).
const Free int64 = math.MinInt64 / 2

// grantVal encodes "node owns the lock" as the paper's positive processor
// ID; requestVal is its negated request form. IDs are offset by one so
// node 0 has a nonzero encoding.
func grantVal(node int) int64   { return int64(node + 1) }
func requestVal(node int) int64 { return -int64(node + 1) }

// App is the per-node programming interface the workloads run against.
// Methods must be called from the node's application process only.
type App interface {
	// ID is this node's identifier, 0..N-1.
	ID() int
	// N is the machine size.
	N() int
	// Now is the current virtual time.
	Now() sim.Time
	// Compute advances virtual time by d, modelling local computation.
	Compute(d sim.Time)
	// Read returns the local value of v; under entry consistency an
	// unguarded remote read demand-fetches and blocks for a round trip.
	Read(v VarID) int64
	// Write stores val to shared variable v and propagates it according
	// to the machine's consistency model. It does not block beyond the
	// local write cost.
	Write(v VarID, val int64)
	// Acquire blocks until this node holds lock l.
	Acquire(l LockID)
	// Release releases lock l.
	Release(l LockID)
	// MutexDo runs body with lock l held. Under the optimistic GWC
	// machine body may run speculatively before the lock is confirmed and
	// be re-run after a rollback, so body must be idempotent (the paper's
	// compiler enforces this by saving and restoring every changed
	// variable).
	MutexDo(l LockID, body func())
	// AwaitGE blocks until the local copy of v is >= min. Under GWC and
	// release consistency updates arrive eagerly; under entry consistency
	// this polls with demand fetches.
	AwaitGE(v VarID, min int64)
}

// Machine is a simulated N-node system implementing one consistency model.
type Machine interface {
	// Name identifies the model in output tables.
	Name() string
	// N is the machine size.
	N() int
	// Start spawns node id's application process running body.
	Start(id int, body func(a App))
	// Value reports node id's current local copy of v (0 if never set).
	Value(id int, v VarID) int64
	// Stats reports protocol counters accumulated so far.
	Stats() Stats
}

// Stats are protocol counters for traffic and behaviour claims.
type Stats struct {
	Messages     int // point-to-point network messages
	Bytes        int // payload bytes on the network
	Suppressed   int // speculative writes discarded by the group root
	Rollbacks    int // optimistic sections rolled back
	OptimisticOK int // optimistic sections that committed without rollback
	RegularPath  int // lock acquisitions that took the regular path
	DemandFetch  int // entry-consistency demand fetches
	Invalidation int // entry-consistency invalidation round trips
}

// Config carries the parameters shared by all machine models. The zero
// value is not meaningful; start from DefaultConfig.
type Config struct {
	// N is the number of processors.
	N int
	// Root is the sharing-group root (GWC) / lock manager (release) /
	// initial lock owner and manager (entry).
	Root int
	// Net holds the physical network constants.
	Net netsim.Params

	// UpdateBytes is the wire size of one shared-variable update.
	UpdateBytes int
	// LockMsgBytes is the wire size of lock requests/grants/releases.
	LockMsgBytes int
	// VarBytes overrides UpdateBytes for specific (large) variables.
	VarBytes map[VarID]int

	// LocalWrite and LocalRead are node-local memory access costs
	// (the paper's 400 MB/sec local memory).
	LocalWrite sim.Time
	LocalRead  sim.Time
	// RootProc is the group root's per-message sequencing cost.
	RootProc sim.Time

	// Guard maps each variable in a mutex data group to its lock; the
	// group root discards writes to guarded variables from non-holders,
	// and the hardware blocking rule drops their echoes at the origin.
	Guard map[VarID]LockID
	// Home maps a variable to the node that owns/produces it. Entry
	// consistency demand-fetches unguarded variables from their home.
	Home map[VarID]int

	// Optimistic enables the paper's optimistic mutual exclusion on the
	// GWC machine.
	Optimistic bool
	// HistoryDecay and HistoryThreshold parameterise the lock-usage
	// frequency filter: hist = decay*hist + (1-decay)*inUse, and the
	// optimistic path is taken only when hist <= threshold.
	HistoryDecay     float64
	HistoryThreshold float64
	// SaveCost and RestoreCost are the per-variable costs of saving
	// rollback state on the optimistic path and restoring it on rollback.
	SaveCost    sim.Time
	RestoreCost sim.Time

	// PollInterval is the entry-consistency AwaitGE retry interval.
	PollInterval sim.Time
	// ViaManager routes entry-consistency lock requests through the
	// manager (a wrong owner guess) instead of directly to the owner.
	ViaManager bool
	// Invalidate charges an invalidation round trip when an entry lock
	// moves to a node while other nodes hold the data non-exclusively.
	Invalidate bool

	// Trace receives protocol events; nil disables tracing.
	Trace *trace.Log
}

// DefaultConfig returns the constants used across the paper's experiments:
// paper network parameters, small control messages, 20ns local accesses
// (8 bytes at 400 MB/sec), and the history filter from Section 4
// (0.95/0.05 decay, 0.30 threshold).
func DefaultConfig(n int) Config {
	return Config{
		N:                n,
		Root:             0,
		Net:              netsim.PaperParams(),
		UpdateBytes:      24,
		LockMsgBytes:     24,
		VarBytes:         map[VarID]int{},
		LocalWrite:       20,
		LocalRead:        20,
		RootProc:         50,
		Guard:            map[VarID]LockID{},
		Home:             map[VarID]int{},
		HistoryDecay:     0.95,
		HistoryThreshold: 0.30,
		SaveCost:         20,
		RestoreCost:      20,
		PollInterval:     2000,
	}
}

// varBytes reports the wire size for updates of v.
func (c *Config) varBytes(v VarID) int {
	if b, ok := c.VarBytes[v]; ok {
		return b
	}
	return c.UpdateBytes
}

// signal is a latest-wins wakeup: repeated notifications collapse while
// nobody is waiting, and a waiter may wake spuriously once, so waiters
// must re-check their predicate in a loop.
type signal struct {
	ch *sim.Chan[struct{}]
}

func newSignal(k *sim.Kernel) signal {
	return signal{ch: sim.NewChan[struct{}](k)}
}

func (s signal) notify() {
	if s.ch.Len() == 0 {
		s.ch.Post(struct{}{})
	}
}

func (s signal) wait(p *sim.Proc) {
	s.ch.Recv(p)
}

func (s signal) drain() {
	for {
		if _, ok := s.ch.TryRecv(); !ok {
			return
		}
	}
}

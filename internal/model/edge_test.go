package model

import (
	"testing"

	"optsync/internal/sim"
	"optsync/internal/trace"
)

// TestEntryRequestChasesMovingLock: a request issued while the lock is
// being transferred must chase it through forwards and still be served.
func TestEntryRequestChasesMovingLock(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(4)
	cfg.Guard = map[VarID]LockID{varA: testLock}
	m, err := NewEntry(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	// Node 1 takes the lock from initial owner 0 and keeps it briefly;
	// node 2 requests mid-transfer; node 3 requests even later.
	m.Start(1, func(a App) {
		a.Acquire(testLock)
		a.Compute(3000)
		a.Write(varA, 11)
		a.Release(testLock)
	})
	m.Start(2, func(a App) {
		a.Compute(100) // lands while the grant to node 1 is in flight
		a.Acquire(testLock)
		a.Write(varA, 22)
		a.Release(testLock)
	})
	m.Start(3, func(a App) {
		a.Compute(5000)
		a.Acquire(testLock)
		got = a.Read(varA)
		a.Release(testLock)
	})
	k.Run()
	if got != 22 {
		t.Errorf("node 3 read %d inside the section, want 22 (data follows the lock)", got)
	}
}

// TestReleaseForwardBounce: the weak/release machine must survive a
// forwarded request arriving at a node that has already passed the lock
// on (the bounce-to-manager path).
func TestReleaseForwardBounce(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(4)
	cfg.Guard = map[VarID]LockID{varA: testLock}
	m, err := NewRelease(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	grants := 0
	for id := 1; id <= 3; id++ {
		id := id
		m.Start(id, func(a App) {
			a.Compute(sim.Time(id) * 10) // tightly staggered requests
			a.Acquire(testLock)
			grants++
			a.Write(varA, int64(id))
			a.Release(testLock)
		})
	}
	k.Run()
	if grants != 3 {
		t.Errorf("grants = %d, want 3 (a request was lost in forwarding)", grants)
	}
}

// TestGWCOptimisticSuspensionReplaysData: during a rollback window,
// insharing suspension must park the competing holder's data and replay
// it before the re-execution reads.
func TestGWCOptimisticSuspensionReplaysData(t *testing.T) {
	tr := &trace.Log{}
	k := sim.NewKernel()
	cfg := DefaultConfig(3)
	cfg.Optimistic = true
	cfg.Guard = map[VarID]LockID{varA: testLock, varB: testLock}
	cfg.Trace = tr
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Node 1 wins and writes BOTH variables; node 2's re-execution must
	// see both of node 1's values, proving the parked updates replayed.
	var seenA, seenB int64
	m.Start(1, func(a App) {
		a.MutexDo(testLock, func() {
			a.Compute(400)
			a.Write(varA, 100)
			a.Write(varB, 200)
		})
	})
	m.Start(2, func(a App) {
		a.Compute(5)
		a.MutexDo(testLock, func() {
			a.Compute(100)
			seenA = a.Read(varA)
			seenB = a.Read(varB)
			a.Write(varA, seenA+1)
		})
	})
	k.Run()
	if m.Stats().Rollbacks != 1 {
		t.Skipf("timing did not force a rollback: %+v", m.Stats())
	}
	if seenA != 100 || seenB != 200 {
		t.Errorf("re-execution saw a=%d b=%d, want 100 and 200\n%s", seenA, seenB, tr)
	}
	for id := 0; id < 3; id++ {
		if got := m.Value(id, varA); got != 101 {
			t.Errorf("node %d converged on %d, want 101", id, got)
		}
	}
}

// TestGWCUnguardedEchoConverges: for unguarded variables the origin's
// echo must be applied (not hardware-blocked) so interleaved writers
// converge — the divergence scenario hardware blocking would cause if it
// applied to ordinary variables.
func TestGWCUnguardedEchoConverges(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(3)
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Two writers interleave on one unguarded variable with sub-RTT
	// spacing, the adversarial case for echo handling.
	for w := 1; w <= 2; w++ {
		w := w
		m.Start(w, func(a App) {
			for i := 0; i < 20; i++ {
				a.Write(500, int64(w*1000+i))
				a.Compute(90)
			}
		})
	}
	k.Run()
	want := m.Value(0, 500)
	for id := 1; id < 3; id++ {
		if got := m.Value(id, 500); got != want {
			t.Errorf("node %d = %d, node 0 = %d: unguarded echoes must restore total order", id, got, want)
		}
	}
}

// TestMessageCountsScaleWithGroupSize: sanity for the paper's traffic
// argument — one eagershared write costs N-1 sequenced deliveries.
func TestMessageCountsScaleWithGroupSize(t *testing.T) {
	for _, n := range []int{2, 4, 8} {
		k := sim.NewKernel()
		cfg := DefaultConfig(n)
		m, err := NewGWC(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Start(1, func(a App) {
			a.Write(500, 1)
		})
		k.Run()
		// 1 up message + (n-1) down messages.
		want := 1 + (n - 1)
		if got := m.Stats().Messages; got != want {
			t.Errorf("n=%d: messages = %d, want %d", n, got, want)
		}
	}
}

// TestEntryGrantCarriesOnlyGroupData: grant size grows with the guarded
// set, the cost Figure 1(b) charges entry consistency for.
func TestEntryGrantBytesGrowWithGuardedSet(t *testing.T) {
	run := func(guarded int) int {
		k := sim.NewKernel()
		cfg := DefaultConfig(2)
		for v := 0; v < guarded; v++ {
			cfg.Guard[VarID(10+v)] = testLock
		}
		m, err := NewEntry(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		m.Start(1, func(a App) {
			a.Acquire(testLock) // one transfer 0 -> 1
			a.Release(testLock)
		})
		k.Run()
		return m.Stats().Bytes
	}
	small, big := run(1), run(10)
	if big <= small {
		t.Errorf("grant bytes did not grow with the guarded set: %d vs %d", small, big)
	}
}

// TestGWCHandoffWithinOneRoundTrip checks Section 2's latency claim: "A
// processor always receives exclusive access within one or one half
// round-trip time of the lock being freed" — the handoff is one one-way
// release (holder to root) plus one one-way grant (root to waiter).
func TestGWCHandoffWithinOneRoundTrip(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(9)
	cfg.Guard = map[VarID]LockID{varA: testLock}
	m, err := NewGWC(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var releaseAt, grantAt sim.Time
	m.Start(4, func(a App) {
		a.Acquire(testLock)
		a.Compute(50_000) // hold long enough for node 8 to queue
		releaseAt = a.Now()
		a.Release(testLock)
	})
	m.Start(8, func(a App) {
		a.Compute(1000)
		a.Acquire(testLock)
		grantAt = a.Now()
		a.Release(testLock)
	})
	k.Run()
	if grantAt <= releaseAt {
		t.Fatalf("grant at %d not after release at %d", grantAt, releaseAt)
	}
	// One-way release 4->root(0) plus one-way grant root->8, plus the
	// root's processing: strictly less than a full round trip between the
	// farthest nodes plus slack.
	tor := m.net.Torus()
	oneWay := func(a, b int) sim.Time {
		return cfg.Net.Delay(tor.Hops(a, b), cfg.LockMsgBytes)
	}
	bound := oneWay(4, 0) + oneWay(0, 8) + 2*cfg.RootProc
	if got := grantAt - releaseAt; got > bound {
		t.Errorf("handoff took %dns, want <= %dns (release + grant one-ways)", got, bound)
	}
}

package model

import (
	"testing"

	"optsync/internal/sim"
)

func newEntryTest(t *testing.T, n int) (*sim.Kernel, *Entry) {
	t.Helper()
	k := sim.NewKernel()
	cfg := DefaultConfig(n)
	cfg.Guard = map[VarID]LockID{varA: testLock, varB: testLock}
	m, err := NewEntry(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return k, m
}

func TestEntryDataTravelsWithLock(t *testing.T) {
	k, m := newEntryTest(t, 3)
	var seen int64
	m.Start(0, func(a App) { // node 0 is the initial owner
		a.Acquire(testLock)
		a.Write(varA, 31337)
		a.Release(testLock)
	})
	m.Start(2, func(a App) {
		a.Compute(50000) // after node 0 has released
		a.Acquire(testLock)
		seen = a.Read(varA)
		a.Release(testLock)
	})
	k.Run()
	if seen != 31337 {
		t.Errorf("node 2 saw %d after acquiring, want 31337", seen)
	}
	// Without the lock, node 1 must NOT have received the update (no
	// eager propagation under entry consistency).
	if got := m.Value(1, varA); got != 0 {
		t.Errorf("bystander node 1 has varA=%d, want 0 (no eager sharing)", got)
	}
}

func TestEntryReleaseIsLocalAndCheap(t *testing.T) {
	k, m := newEntryTest(t, 3)
	var relDur sim.Time
	m.Start(0, func(a App) {
		a.Acquire(testLock)
		a.Write(varA, 1)
		start := a.Now()
		a.Release(testLock)
		relDur = a.Now() - start
	})
	k.Run()
	if relDur > 100 {
		t.Errorf("entry release took %dns, want local (tiny)", relDur)
	}
}

func TestEntryReacquireOwnLockFree(t *testing.T) {
	k, m := newEntryTest(t, 3)
	var dur sim.Time
	m.Start(0, func(a App) {
		a.Acquire(testLock)
		a.Release(testLock)
		start := a.Now()
		a.Acquire(testLock) // still owner: no messages
		dur = a.Now() - start
		a.Release(testLock)
	})
	k.Run()
	if dur > 100 {
		t.Errorf("re-acquiring owned lock took %dns, want local", dur)
	}
	if msgs := m.Stats().Messages; msgs != 0 {
		t.Errorf("owner re-acquire sent %d messages, want 0", msgs)
	}
}

func TestEntryDemandFetchCounted(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(3)
	cfg.Home = map[VarID]int{200: 0}
	m, err := NewEntry(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var got int64
	m.Start(0, func(a App) {
		a.Write(200, 88)
	})
	m.Start(2, func(a App) {
		a.Compute(10000)
		got = a.Read(200) // remote: demand fetch
		a.Read(200)       // fetches again (no caching between syncs)
	})
	k.Run()
	if got != 88 {
		t.Errorf("fetched %d, want 88", got)
	}
	if df := m.Stats().DemandFetch; df != 2 {
		t.Errorf("DemandFetch = %d, want 2", df)
	}
}

func TestEntryAwaitGEPollsWithFetches(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(2)
	cfg.Home = map[VarID]int{200: 0}
	cfg.PollInterval = 1000
	m, err := NewEntry(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	m.Start(0, func(a App) {
		a.Compute(20000)
		a.Write(200, 3)
	})
	m.Start(1, func(a App) {
		a.AwaitGE(200, 3)
		doneAt = a.Now()
	})
	k.Run()
	if doneAt < 20000 {
		t.Fatalf("AwaitGE returned at %d before the write at 20000", doneAt)
	}
	if df := m.Stats().DemandFetch; df < 5 {
		t.Errorf("DemandFetch = %d, want many polls over 20000ns at 1000ns interval", df)
	}
}

func TestEntryMutualExclusion(t *testing.T) {
	k, m := newEntryTest(t, 4)
	type span struct {
		node       int
		start, end sim.Time
	}
	var spans []span
	for id := 0; id < 4; id++ {
		id := id
		m.Start(id, func(a App) {
			for i := 0; i < 3; i++ {
				a.Acquire(testLock)
				start := a.Now()
				a.Compute(700)
				a.Write(varA, int64(id))
				spans = append(spans, span{node: id, start: start, end: a.Now()})
				a.Release(testLock)
				a.Compute(1500)
			}
		})
	}
	k.Run()
	if len(spans) != 12 {
		t.Fatalf("completed %d critical sections, want 12", len(spans))
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			a, b := spans[i], spans[j]
			if a.start < b.end && b.start < a.end {
				t.Errorf("overlap: node %d [%d,%d] vs node %d [%d,%d]",
					a.node, a.start, a.end, b.node, b.start, b.end)
			}
		}
	}
}

func TestEntryCounterCorrectness(t *testing.T) {
	k, m := newEntryTest(t, 4)
	const reps = 5
	for id := 0; id < 4; id++ {
		m.Start(id, func(a App) {
			for i := 0; i < reps; i++ {
				a.MutexDo(testLock, func() {
					cur := a.Read(varA)
					a.Compute(300)
					a.Write(varA, cur+1)
				})
				a.Compute(4000)
			}
		})
	}
	k.Run()
	// Only the final owner is guaranteed current; find it via the lock.
	owner := m.lockOwner(testLock)
	if got := m.Value(owner, varA); got != 4*reps {
		t.Errorf("final owner %d sees counter %d, want %d", owner, got, 4*reps)
	}
}

func TestEntryInvalidationCharged(t *testing.T) {
	k := sim.NewKernel()
	cfg := DefaultConfig(3)
	cfg.Guard = map[VarID]LockID{varA: testLock}
	cfg.Invalidate = true
	m, err := NewEntry(k, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetReaders(testLock, []int{1, 2})
	m.Start(1, func(a App) {
		a.Acquire(testLock) // ownership transfer 0 -> 1 must invalidate
		a.Release(testLock)
	})
	k.Run()
	if inv := m.Stats().Invalidation; inv < 1 {
		t.Errorf("Invalidation = %d, want >= 1", inv)
	}
}

func TestEntryViaManagerSlower(t *testing.T) {
	// Routing requests via the manager (wrong owner guess) must delay
	// acquisition relative to asking the owner directly.
	run := func(via bool) sim.Time {
		k := sim.NewKernel()
		cfg := DefaultConfig(9)
		cfg.Guard = map[VarID]LockID{varA: testLock}
		cfg.ViaManager = via
		m, err := NewEntry(k, cfg)
		if err != nil {
			t.Fatal(err)
		}
		var end sim.Time
		// Move ownership to node 4 first, then have node 8 acquire.
		m.Start(4, func(a App) {
			a.Acquire(testLock)
			a.Release(testLock)
		})
		m.Start(8, func(a App) {
			a.Compute(100000)
			a.Acquire(testLock)
			end = a.Now()
			a.Release(testLock)
		})
		k.Run()
		return end
	}
	direct, via := run(false), run(true)
	if via <= direct {
		t.Errorf("via-manager acquire at %d, direct at %d: forwarding should cost time", via, direct)
	}
}

// Package netsim is the network timing model used by the paper's
// simulations: a square mesh torus where "each data sharing hop ... takes
// 200ns, and each point to point fiber link is 1 gigabit/sec".
//
// Messages are delivered into per-node inboxes on the discrete-event
// kernel after a delay of hops*HopLatency plus one serialization time
// (cut-through routing: the serialization cost is paid once, not per hop,
// matching the low per-hop latency the paper assumes for its fiber links).
package netsim

import (
	"fmt"

	"optsync/internal/sim"
	"optsync/internal/topo"
)

// Params are the physical network constants.
type Params struct {
	// HopLatency is the per-hop forwarding delay.
	HopLatency sim.Time
	// BytesPerNS is the link bandwidth in bytes per nanosecond.
	// 1 gigabit/sec = 0.125 bytes/ns.
	BytesPerNS float64
}

// PaperParams returns the constants from the paper's Figure 8 setup:
// 200ns per hop, 1 gigabit/sec links.
func PaperParams() Params {
	return Params{HopLatency: 200, BytesPerNS: 0.125}
}

// Delay computes the one-way latency for a message of the given size over
// the given number of hops. Zero-hop (self) delivery is free.
func (p Params) Delay(hops, bytes int) sim.Time {
	if hops == 0 {
		return 0
	}
	ser := sim.Time(float64(bytes) / p.BytesPerNS)
	return sim.Time(hops)*p.HopLatency + ser
}

// Msg is a network message in flight or delivered.
type Msg struct {
	Src, Dst int
	Bytes    int
	Payload  any
}

// Net connects the nodes of a torus with delayed inbox delivery.
//
// Delivery on each (src,dst) pair is FIFO: a later, smaller message never
// overtakes an earlier, larger one. The paper's lock protocol depends on
// this (a lock request must reach the root before the shared writes that
// optimistically follow it on the same path).
type Net struct {
	k      *sim.Kernel
	torus  topo.Torus
	params Params
	inbox  []*sim.Chan[Msg]
	lastAt map[[2]int]sim.Time // per-pair FIFO watermark

	// Counters for traffic accounting (the paper argues GWC locks cost
	// exactly three one-way messages).
	msgs     int
	bytesSum int
}

// New builds a network over n nodes on kernel k.
func New(k *sim.Kernel, n int, params Params) (*Net, error) {
	t, err := topo.New(n)
	if err != nil {
		return nil, fmt.Errorf("netsim: %w", err)
	}
	net := &Net{
		k:      k,
		torus:  t,
		params: params,
		inbox:  make([]*sim.Chan[Msg], n),
		lastAt: make(map[[2]int]sim.Time),
	}
	for i := range net.inbox {
		net.inbox[i] = sim.NewChan[Msg](k)
	}
	return net, nil
}

// Size reports the node count.
func (n *Net) Size() int { return n.torus.Size() }

// Torus exposes the underlying topology.
func (n *Net) Torus() topo.Torus { return n.torus }

// Params exposes the physical constants.
func (n *Net) Params() Params { return n.params }

// Inbox returns node id's delivery channel.
func (n *Net) Inbox(id int) *sim.Chan[Msg] { return n.inbox[id] }

// Send delivers a message from src to dst after the modelled delay.
// A message to self is delivered immediately (it never leaves the node).
func (n *Net) Send(src, dst, bytes int, payload any) {
	n.SendAfter(0, src, dst, bytes, payload)
}

// SendAfter is Send with an extra sender-side delay (e.g. the origin's
// sharing interface dequeuing time).
func (n *Net) SendAfter(extra sim.Time, src, dst, bytes int, payload any) {
	m := Msg{Src: src, Dst: dst, Bytes: bytes, Payload: payload}
	arrive := n.k.Now() + extra + n.params.Delay(n.torus.Hops(src, dst), bytes)
	key := [2]int{src, dst}
	if prev := n.lastAt[key]; arrive < prev {
		arrive = prev // FIFO: never overtake an earlier message
	}
	n.lastAt[key] = arrive
	if src != dst {
		n.msgs++
		n.bytesSum += bytes
	}
	n.inbox[dst].PostAfter(arrive-n.k.Now(), m)
}

// Multicast delivers a message from src to every node in dsts (skipping
// src itself), modelling Sesame's spanning-tree redistribution: each
// destination receives after its own tree-path delay from src. One
// message per destination is counted, matching a tree where every edge
// carries the update once per subtree.
func (n *Net) Multicast(src, bytes int, payload any, dsts []int) {
	for _, d := range dsts {
		if d == src {
			continue
		}
		n.Send(src, d, bytes, payload)
	}
}

// Messages reports how many point-to-point messages have been sent.
func (n *Net) Messages() int { return n.msgs }

// BytesSent reports the total payload bytes sent.
func (n *Net) BytesSent() int { return n.bytesSum }

package netsim

import (
	"testing"

	"optsync/internal/sim"
)

func TestDelayFormula(t *testing.T) {
	p := PaperParams()
	tests := []struct {
		hops, bytes int
		want        sim.Time
	}{
		{0, 1000, 0},     // self delivery is free
		{1, 0, 200},      // pure hop latency
		{1, 125, 1200},   // 200 + 125B/0.125B-per-ns = 200+1000
		{3, 125, 1600},   // cut-through: serialization paid once
		{10, 0, 2000},    // latency scales linearly with hops
		{2, 1250, 10400}, // big message dominated by serialization
	}
	for _, tt := range tests {
		if got := p.Delay(tt.hops, tt.bytes); got != tt.want {
			t.Errorf("Delay(%d,%d) = %d, want %d", tt.hops, tt.bytes, got, tt.want)
		}
	}
}

func TestSendArrivesAfterDelay(t *testing.T) {
	k := sim.NewKernel()
	net, err := New(k, 16, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	var arrived sim.Time
	var got Msg
	k.Spawn("recv", func(p *sim.Proc) {
		got = net.Inbox(10).Recv(p)
		arrived = p.Now()
	})
	k.Spawn("send", func(p *sim.Proc) {
		net.Send(0, 10, 125, "hello")
	})
	k.Run()
	// 0 -> 10 on a 4x4 torus is 4 hops: 4*200 + 1000 = 1800.
	if arrived != 1800 {
		t.Errorf("arrived at %d, want 1800", arrived)
	}
	if got.Src != 0 || got.Dst != 10 || got.Payload != "hello" {
		t.Errorf("message corrupted: %+v", got)
	}
}

func TestSelfSendImmediate(t *testing.T) {
	k := sim.NewKernel()
	net, _ := New(k, 4, PaperParams())
	var arrived sim.Time = -1
	k.Spawn("n0", func(p *sim.Proc) {
		p.Sleep(50)
		net.Send(0, 0, 64, nil)
		net.Inbox(0).Recv(p)
		arrived = p.Now()
	})
	k.Run()
	if arrived != 50 {
		t.Errorf("self message arrived at %d, want 50", arrived)
	}
	if net.Messages() != 0 {
		t.Errorf("self message counted as network traffic: %d", net.Messages())
	}
}

func TestSendAfterAddsSenderDelay(t *testing.T) {
	k := sim.NewKernel()
	net, _ := New(k, 4, Params{HopLatency: 100, BytesPerNS: 1})
	var arrived sim.Time
	k.Spawn("recv", func(p *sim.Proc) {
		net.Inbox(1).Recv(p)
		arrived = p.Now()
	})
	net.SendAfter(500, 0, 1, 10, nil)
	k.Run()
	// 500 extra + 1 hop * 100 + 10 bytes / 1 B-per-ns = 610.
	if arrived != 610 {
		t.Errorf("arrived at %d, want 610", arrived)
	}
}

func TestMulticastPerDestinationDelays(t *testing.T) {
	k := sim.NewKernel()
	net, _ := New(k, 9, Params{HopLatency: 100, BytesPerNS: 0.125})
	arrivals := make(map[int]sim.Time)
	for i := 1; i < 9; i++ {
		i := i
		k.Spawn("recv", func(p *sim.Proc) {
			net.Inbox(i).Recv(p)
			arrivals[i] = p.Now()
		})
	}
	dsts := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	net.Multicast(0, 0, nil, dsts)
	k.Run()
	tor := net.Torus()
	for i := 1; i < 9; i++ {
		want := sim.Time(tor.Hops(0, i)) * 100
		if arrivals[i] != want {
			t.Errorf("node %d received at %d, want %d", i, arrivals[i], want)
		}
	}
	if net.Messages() != 8 {
		t.Errorf("Messages() = %d, want 8 (src skipped)", net.Messages())
	}
}

func TestTrafficCounters(t *testing.T) {
	k := sim.NewKernel()
	net, _ := New(k, 4, PaperParams())
	net.Send(0, 1, 64, nil)
	net.Send(1, 2, 36, nil)
	net.Send(2, 2, 1000, nil) // self: not counted
	if net.Messages() != 2 {
		t.Errorf("Messages() = %d, want 2", net.Messages())
	}
	if net.BytesSent() != 100 {
		t.Errorf("BytesSent() = %d, want 100", net.BytesSent())
	}
}

func TestNewRejectsBadSize(t *testing.T) {
	if _, err := New(sim.NewKernel(), 0, PaperParams()); err == nil {
		t.Error("New(0) succeeded, want error")
	}
}

func TestPerLinkFIFO(t *testing.T) {
	k := sim.NewKernel()
	net, _ := New(k, 4, Params{HopLatency: 100, BytesPerNS: 0.125})
	var order []string
	k.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			m := net.Inbox(1).Recv(p)
			order = append(order, m.Payload.(string))
		}
	})
	k.Spawn("send", func(p *sim.Proc) {
		net.Send(0, 1, 1000, "big") // 100 + 8000 = arrives 8100
		p.Sleep(10)
		net.Send(0, 1, 0, "small") // would arrive 110; FIFO holds it to 8100
	})
	k.Run()
	if order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v: small message overtook big one on the same link", order)
	}
}

package integrity

import (
	"math/rand"
	"testing"
)

// TestOrderInsensitive folds the same triple set in two random orders
// and expects identical sums — the core anti-entropy property.
func TestOrderInsensitive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type triple struct {
		v   uint32
		seq uint64
		val int64
	}
	var triples []triple
	for i := 0; i < 200; i++ {
		triples = append(triples, triple{
			v:   rng.Uint32() % 16,
			seq: uint64(i + 1),
			val: rng.Int63() - rng.Int63(),
		})
	}
	var a Digest
	for _, tr := range triples {
		a.Fold(tr.v, tr.seq, tr.val)
	}
	var b Digest
	for _, i := range rng.Perm(len(triples)) {
		tr := triples[i]
		b.Fold(tr.v, tr.seq, tr.val)
	}
	if a.Sum() != b.Sum() {
		t.Fatalf("permuted fold order changed sum: %x vs %x", a.Sum(), b.Sum())
	}
	if a.Sum() == 0 {
		t.Fatal("200 folds summed to the empty digest")
	}
}

// TestFieldSensitivity checks that perturbing any single field of any
// single triple changes the sum — no field is ignored by the mix.
func TestFieldSensitivity(t *testing.T) {
	base := func() Digest {
		var d Digest
		d.Fold(3, 10, 42)
		d.Fold(4, 11, -7)
		return d
	}
	want := base().Sum()
	perturbed := []func(d *Digest){
		func(d *Digest) { d.Fold(5, 10, 42); d.Fold(4, 11, -7) },                    // var
		func(d *Digest) { d.Fold(3, 12, 42); d.Fold(4, 11, -7) },                    // seq
		func(d *Digest) { d.Fold(3, 10, 43); d.Fold(4, 11, -7) },                    // val
		func(d *Digest) { d.Fold(3, 10, -42); d.Fold(4, 11, -7) },                   // val sign
		func(d *Digest) { d.Fold(3, 10, 42) },                                       // missing triple
		func(d *Digest) { d.Fold(3, 10, 42); d.Fold(4, 11, -7); d.Fold(4, 12, -7) }, // extra triple
	}
	for i, p := range perturbed {
		var d Digest
		p(&d)
		if d.Sum() == want {
			t.Errorf("perturbation %d did not change the sum", i)
		}
	}
}

// TestSwapResistance pins that swapping values between two triples (a
// classic XOR-of-values collision) is caught, because seq is chained
// into the mix before the value.
func TestSwapResistance(t *testing.T) {
	var a, b Digest
	a.Fold(1, 1, 100)
	a.Fold(1, 2, 200)
	b.Fold(1, 1, 200)
	b.Fold(1, 2, 100)
	if a.Sum() == b.Sum() {
		t.Fatal("value swap between seqs collided")
	}
}

// TestResetRebase pins the re-base semantics used by snapshot apply:
// Rebase installs the root's sum, and replayed folds extend it exactly
// as they extended the root's own digest.
func TestResetRebase(t *testing.T) {
	var root Digest
	root.Fold(1, 1, 10)
	root.Fold(2, 2, 20)
	checkpoint := root.Sum()
	root.Fold(3, 3, 30)

	var member Digest
	member.Fold(9, 99, 999) // diverged garbage
	member.Rebase(checkpoint)
	member.Fold(3, 3, 30)
	if member.Sum() != root.Sum() {
		t.Fatalf("rebase+replay diverged: %x vs %x", member.Sum(), root.Sum())
	}

	member.Reset()
	if member.Sum() != 0 {
		t.Fatalf("Reset left sum %x", member.Sum())
	}
	var empty Digest
	if member.Sum() != empty.Sum() {
		t.Fatal("Reset is not the empty state")
	}
}

// TestFoldIsSelfInverse pins the XOR property the watermark comparison
// relies on: folding the same triple twice cancels it.
func TestFoldIsSelfInverse(t *testing.T) {
	var d Digest
	d.Fold(7, 42, -1)
	d.Fold(7, 42, -1)
	if d.Sum() != 0 {
		t.Fatalf("double fold did not cancel: %x", d.Sum())
	}
}

// TestZeroAlloc keeps the apply-path discipline honest: Fold and Sum
// must not allocate.
func TestZeroAlloc(t *testing.T) {
	var d Digest
	allocs := testing.AllocsPerRun(1000, func() {
		d.Fold(1, 2, 3)
		_ = d.Sum()
	})
	if allocs != 0 {
		t.Fatalf("Fold/Sum allocated %.1f times per op, want 0", allocs)
	}
}

func BenchmarkFold(b *testing.B) {
	var d Digest
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Fold(uint32(i), uint64(i), int64(i))
	}
	if d.Sum() == 1 {
		b.Log("unreachable; defeats dead-code elimination")
	}
}

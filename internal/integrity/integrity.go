// Package integrity provides an incremental, order-insensitive digest
// over a group's committed (var, seq, value) state. Every sequenced
// data apply folds one triple into the digest; two replicas that have
// applied the same set of triples hold the same digest regardless of
// the interleaving that produced it, so the root can compare digests
// at a sequence watermark to detect silent divergence (bit rot past
// the frame checksum, a misapplied frame, a buggy re-base).
//
// The digest is an XOR accumulator of a strong per-triple mix. XOR
// makes folding commutative and invertible — exactly the properties
// an anti-entropy sweep needs — and because every triple carries its
// unique sequence number, no two distinct applies can cancel each
// other. The mix is the 64-bit finalizer from MurmurHash3 (fmix64)
// chained across the three fields, which passes avalanche tests and
// costs a handful of multiplies: zero allocations, no tables.
//
// This is a detector for accidental divergence, not an authenticator:
// a Byzantine member can forge any digest. That matches the failure
// model of the rest of the stack (crash/partition/corruption, not
// malice).
package integrity

// golden is 2^64 / phi, the usual odd constant for sequence spreading.
const golden = 0x9E3779B97F4A7C15

// fmix64 is the MurmurHash3 64-bit finalizer: every input bit affects
// every output bit with probability ~1/2.
func fmix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Mix hashes one (var, seq, value) triple to a 64-bit contribution.
// The fields are chained through fmix64 so that triples differing in
// any single field — including value sign — map to unrelated outputs.
func Mix(v uint32, seq uint64, val int64) uint64 {
	h := fmix64(seq ^ golden)
	h = fmix64(h ^ uint64(v))
	h = fmix64(h ^ uint64(val))
	return h
}

// Digest is the incremental accumulator. The zero value is the digest
// of the empty state. It is not safe for concurrent use; callers hold
// their node lock across Fold, matching the apply path.
type Digest struct {
	x uint64
}

// Fold accumulates one applied triple. Order-insensitive: any
// permutation of the same fold set yields the same Sum.
func (d *Digest) Fold(v uint32, seq uint64, val int64) {
	d.x ^= Mix(v, seq, val)
}

// Sum returns the current digest value.
func (d Digest) Sum() uint64 { return d.x }

// Reset returns the digest to the empty state, for a member that is
// about to be re-based from a snapshot.
func (d *Digest) Reset() { d.x = 0 }

// Rebase installs an authoritative sum wholesale — the root's digest
// carried on a snapshot's TSnapDone frame. Subsequent Folds extend it.
func (d *Digest) Rebase(sum uint64) { d.x = sum }

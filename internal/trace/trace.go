// Package trace records timestamped protocol events during simulations.
// The Figure 1 reproduction prints these logs as timelines, and tests use
// them to assert protocol-level properties (message counts, ordering).
package trace

import (
	"fmt"
	"strings"

	"optsync/internal/sim"
)

// Kind classifies a protocol event.
type Kind string

// Event kinds recorded by the protocol models.
const (
	LockRequest  Kind = "lock-request"
	LockGrant    Kind = "lock-grant"
	LockRelease  Kind = "lock-release"
	LockFree     Kind = "lock-free"
	WriteSent    Kind = "write-sent"
	WriteApplied Kind = "write-applied"
	WriteDropped Kind = "write-dropped"
	Invalidate   Kind = "invalidate"
	DemandFetch  Kind = "demand-fetch"
	Rollback     Kind = "rollback"
	OptimisticGo Kind = "optimistic-start"
	EnterMX      Kind = "enter-mx"
	ExitMX       Kind = "exit-mx"
	IdleStart    Kind = "idle-start"
	IdleEnd      Kind = "idle-end"
)

// Event is one timestamped occurrence on one node.
type Event struct {
	T      sim.Time
	Node   int
	Kind   Kind
	Detail string
}

// Log accumulates events in occurrence order. The zero value is ready to
// use. A nil *Log discards all events, so tracing can be disabled without
// call-site checks.
type Log struct {
	events []Event
}

// Add records an event. Safe on a nil receiver (no-op).
func (l *Log) Add(t sim.Time, node int, kind Kind, detail string) {
	if l == nil {
		return
	}
	l.events = append(l.events, Event{T: t, Node: node, Kind: kind, Detail: detail})
}

// Addf records an event with a formatted detail string.
func (l *Log) Addf(t sim.Time, node int, kind Kind, format string, args ...any) {
	if l == nil {
		return
	}
	l.Add(t, node, kind, fmt.Sprintf(format, args...))
}

// Events returns the recorded events in order. The returned slice is a
// copy.
func (l *Log) Events() []Event {
	if l == nil {
		return nil
	}
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count reports how many events of the given kind were recorded.
func (l *Log) Count(kind Kind) int {
	if l == nil {
		return 0
	}
	n := 0
	for _, e := range l.events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// ByNode returns the events recorded for one node, in order.
func (l *Log) ByNode(node int) []Event {
	if l == nil {
		return nil
	}
	var out []Event
	for _, e := range l.events {
		if e.Node == node {
			out = append(out, e)
		}
	}
	return out
}

// First returns the first event of the given kind on the given node, and
// whether one exists. node < 0 matches any node.
func (l *Log) First(kind Kind, node int) (Event, bool) {
	if l == nil {
		return Event{}, false
	}
	for _, e := range l.events {
		if e.Kind == kind && (node < 0 || e.Node == node) {
			return e, true
		}
	}
	return Event{}, false
}

// Last returns the last event of the given kind on the given node, and
// whether one exists. node < 0 matches any node.
func (l *Log) Last(kind Kind, node int) (Event, bool) {
	if l == nil {
		return Event{}, false
	}
	for i := len(l.events) - 1; i >= 0; i-- {
		e := l.events[i]
		if e.Kind == kind && (node < 0 || e.Node == node) {
			return e, true
		}
	}
	return Event{}, false
}

// String renders the log as one line per event:
//
//	1200ns  node 2  lock-grant      lock 0 -> CPU1
func (l *Log) String() string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%10dns  node %-3d %-16s %s\n", e.T, e.Node, e.Kind, e.Detail)
	}
	return b.String()
}

// Timeline renders a per-node column view with one row per event, which is
// how cmd/figure1 prints the paper's timing diagrams.
func (l *Log) Timeline(nodes int) string {
	if l == nil {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "time(ns)")
	for n := 0; n < nodes; n++ {
		fmt.Fprintf(&b, " | %-26s", fmt.Sprintf("CPU%d", n+1))
	}
	b.WriteString("\n")
	for _, e := range l.events {
		fmt.Fprintf(&b, "%12d", e.T)
		for n := 0; n < nodes; n++ {
			cell := ""
			if e.Node == n {
				cell = string(e.Kind)
				if e.Detail != "" {
					cell += " " + e.Detail
				}
				if len(cell) > 26 {
					cell = cell[:26]
				}
			}
			fmt.Fprintf(&b, " | %-26s", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

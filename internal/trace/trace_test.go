package trace

import (
	"strings"
	"testing"
)

func TestAddAndEvents(t *testing.T) {
	l := &Log{}
	l.Add(100, 0, LockRequest, "lock 0")
	l.Addf(200, 1, LockGrant, "lock %d -> CPU%d", 0, 1)
	evs := l.Events()
	if len(evs) != 2 {
		t.Fatalf("Events() returned %d, want 2", len(evs))
	}
	if evs[0].T != 100 || evs[0].Kind != LockRequest {
		t.Errorf("first event = %+v", evs[0])
	}
	if evs[1].Detail != "lock 0 -> CPU1" {
		t.Errorf("Addf detail = %q", evs[1].Detail)
	}
	// Events returns a copy: mutating it must not affect the log.
	evs[0].T = 999
	if l.Events()[0].T != 100 {
		t.Error("Events() exposed internal storage")
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Add(1, 0, LockRequest, "x") // must not panic
	l.Addf(1, 0, LockGrant, "y%d", 1)
	if l.Events() != nil {
		t.Error("nil log has events")
	}
	if l.Count(LockRequest) != 0 {
		t.Error("nil log has counts")
	}
	if l.String() != "" || l.Timeline(2) != "" {
		t.Error("nil log renders text")
	}
	if _, ok := l.First(LockGrant, -1); ok {
		t.Error("nil log has a first event")
	}
	if _, ok := l.Last(LockGrant, -1); ok {
		t.Error("nil log has a last event")
	}
	if l.ByNode(0) != nil {
		t.Error("nil log has per-node events")
	}
}

func TestCountAndByNode(t *testing.T) {
	l := &Log{}
	l.Add(1, 0, WriteSent, "a")
	l.Add(2, 1, WriteSent, "b")
	l.Add(3, 0, WriteApplied, "c")
	if got := l.Count(WriteSent); got != 2 {
		t.Errorf("Count(WriteSent) = %d, want 2", got)
	}
	if got := l.Count(Rollback); got != 0 {
		t.Errorf("Count(Rollback) = %d, want 0", got)
	}
	n0 := l.ByNode(0)
	if len(n0) != 2 || n0[0].Detail != "a" || n0[1].Detail != "c" {
		t.Errorf("ByNode(0) = %+v", n0)
	}
}

func TestFirstAndLast(t *testing.T) {
	l := &Log{}
	l.Add(1, 0, LockGrant, "first")
	l.Add(2, 1, LockGrant, "second")
	l.Add(3, 0, LockGrant, "third")
	if e, ok := l.First(LockGrant, -1); !ok || e.Detail != "first" {
		t.Errorf("First(any) = %+v, %v", e, ok)
	}
	if e, ok := l.First(LockGrant, 1); !ok || e.Detail != "second" {
		t.Errorf("First(node 1) = %+v, %v", e, ok)
	}
	if e, ok := l.Last(LockGrant, -1); !ok || e.Detail != "third" {
		t.Errorf("Last(any) = %+v, %v", e, ok)
	}
	if e, ok := l.Last(LockGrant, 0); !ok || e.Detail != "third" {
		t.Errorf("Last(node 0) = %+v, %v", e, ok)
	}
	if _, ok := l.First(Rollback, -1); ok {
		t.Error("First found a kind never recorded")
	}
}

func TestStringRendering(t *testing.T) {
	l := &Log{}
	l.Add(1200, 2, LockGrant, "lock 0 -> CPU1")
	s := l.String()
	for _, want := range []string{"1200ns", "node 2", "lock-grant", "lock 0 -> CPU1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTimelineColumns(t *testing.T) {
	l := &Log{}
	l.Add(10, 0, LockRequest, "lock 0")
	l.Add(20, 2, LockGrant, "lock 0 -> CPU3")
	tl := l.Timeline(3)
	lines := strings.Split(strings.TrimRight(tl, "\n"), "\n")
	if len(lines) != 3 { // header + 2 events
		t.Fatalf("timeline has %d lines, want 3:\n%s", len(lines), tl)
	}
	if !strings.Contains(lines[0], "CPU1") || !strings.Contains(lines[0], "CPU3") {
		t.Errorf("header missing CPU columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], "lock-request") {
		t.Errorf("row 1 missing event: %q", lines[1])
	}
	// The event on node 2 must appear in the last column (after the
	// second separator).
	cols := strings.Split(lines[2], "|")
	if len(cols) != 4 || !strings.Contains(cols[3], "lock-grant") {
		t.Errorf("node-2 event not in CPU3 column: %q", lines[2])
	}
}

func TestTimelineTruncatesLongDetails(t *testing.T) {
	l := &Log{}
	l.Add(1, 0, DemandFetch, strings.Repeat("x", 100))
	tl := l.Timeline(1)
	for _, line := range strings.Split(tl, "\n") {
		if len(line) > 120 {
			t.Errorf("timeline line too wide (%d chars)", len(line))
		}
	}
}

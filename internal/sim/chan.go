package sim

// Chan is a simulated message channel with an unbounded buffer. Posting
// never blocks (it models a hardware queue); receiving blocks the calling
// process until a value is available. Values posted at the same virtual
// time are received in post order.
type Chan[T any] struct {
	k    *Kernel
	buf  []T
	wait []*waiter[T]
}

// waiter records a process parked in Recv or RecvTimeout.
type waiter[T any] struct {
	p   *Proc
	val T
	got bool
}

// NewChan creates a simulated channel on kernel k.
func NewChan[T any](k *Kernel) *Chan[T] {
	return &Chan[T]{k: k}
}

// Post enqueues v at the current virtual time. It may be called from
// process context or from kernel callbacks (e.g. delayed delivery via
// Kernel.At), and never blocks.
func (c *Chan[T]) Post(v T) {
	if len(c.wait) > 0 {
		w := c.wait[0]
		c.wait = c.wait[1:]
		w.val = v
		w.got = true
		w.p.unpark()
		return
	}
	c.buf = append(c.buf, v)
}

// PostAfter enqueues v after a delay of d nanoseconds.
func (c *Chan[T]) PostAfter(d Time, v T) {
	c.k.After(d, func() { c.Post(v) })
}

// Len reports the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// TryRecv returns a buffered value without blocking. ok is false if the
// channel is empty.
func (c *Chan[T]) TryRecv() (v T, ok bool) {
	if len(c.buf) == 0 {
		return v, false
	}
	v = c.buf[0]
	c.buf = c.buf[1:]
	return v, true
}

// Recv blocks process p until a value is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	if v, ok := c.TryRecv(); ok {
		return v
	}
	w := &waiter[T]{p: p}
	c.wait = append(c.wait, w)
	p.parkBlocked()
	return w.val
}

// RecvTimeout blocks process p until a value is available or d nanoseconds
// of virtual time elapse. ok is false on timeout.
func (c *Chan[T]) RecvTimeout(p *Proc, d Time) (v T, ok bool) {
	if v, ok := c.TryRecv(); ok {
		return v, true
	}
	w := &waiter[T]{p: p}
	c.wait = append(c.wait, w)
	// Schedule the timeout wakeup; a delivery in the meantime re-arms
	// wakeSeq so this event goes stale.
	e := &event{at: p.k.now + d, seq: p.k.nextSeq(), proc: p}
	p.wakeSeq = e.seq
	p.k.schedule(e)
	p.park()
	if !w.got {
		// Timed out: remove ourselves from the wait list.
		for i, cand := range c.wait {
			if cand == w {
				c.wait = append(c.wait[:i], c.wait[i+1:]...)
				break
			}
		}
		return v, false
	}
	return w.val, true
}

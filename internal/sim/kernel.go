// Package sim provides a deterministic, process-based discrete-event
// simulation kernel with a virtual clock.
//
// Simulated processes are ordinary goroutines, but the kernel hands
// execution to exactly one process at a time, so simulations are fully
// deterministic: the same program always produces the same event order and
// the same virtual timings. Processes communicate through simulated
// channels (Chan) and advance virtual time with Proc.Sleep.
//
// This kernel exists because the paper's results are timing results (idle
// time, speedup, network power). Real goroutine scheduling is
// nondeterministic and wall-clock timing is noisy; a virtual clock
// reproduces the paper's simulation methodology exactly.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is virtual time in nanoseconds since the start of the simulation.
type Time int64

// event is a scheduled occurrence: either a process wakeup or a kernel
// callback.
type event struct {
	at   Time
	seq  uint64 // tiebreaker: FIFO among simultaneous events
	proc *Proc  // non-nil: wake this process
	fn   func() // non-nil: run this callback in kernel context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation scheduler. The zero value is not
// usable; construct with NewKernel.
type Kernel struct {
	now     Time
	seq     uint64
	queue   eventHeap
	yield   chan struct{} // running proc -> kernel handoff
	live    int           // spawned procs that have not finished
	blocked int           // procs parked with no pending wakeup
	limit   Time          // horizon; 0 means none
	stopped bool
}

// NewKernel returns an empty simulation at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{yield: make(chan struct{})}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetLimit sets a simulation horizon. Events scheduled after the horizon
// are not executed and Run returns once the horizon is reached. A limit of
// zero (the default) means no horizon.
func (k *Kernel) SetLimit(t Time) { k.limit = t }

// Stop makes Run return after the currently running process yields.
// It may be called from process or callback context.
func (k *Kernel) Stop() { k.stopped = true }

func (k *Kernel) nextSeq() uint64 {
	k.seq++
	return k.seq
}

func (k *Kernel) schedule(e *event) {
	heap.Push(&k.queue, e)
}

// At schedules fn to run in kernel context at virtual time t (clamped to
// now if t is in the past). Callbacks must not block; they may post to
// channels and schedule further events.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		t = k.now
	}
	k.schedule(&event{at: t, seq: k.nextSeq(), fn: fn})
}

// After schedules fn to run in kernel context d nanoseconds from now.
func (k *Kernel) After(d Time, fn func()) { k.At(k.now+d, fn) }

// Spawn starts a new simulated process running body at the current virtual
// time. The name is used in diagnostics only.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
	}
	k.live++
	go func() {
		<-p.resume // wait until the kernel first schedules us
		defer func() {
			p.done = true
			k.live--
			k.yield <- struct{}{}
		}()
		body(p)
	}()
	e := &event{at: k.now, seq: k.nextSeq(), proc: p}
	p.wakeSeq = e.seq
	k.schedule(e)
	return p
}

// Run processes events until the queue is empty, the horizon is reached,
// or Stop is called. It returns the final virtual time. Processes still
// parked on channels when the queue drains remain parked (use Blocked to
// detect them).
func (k *Kernel) Run() Time {
	for len(k.queue) > 0 && !k.stopped {
		e := heap.Pop(&k.queue).(*event)
		if k.limit > 0 && e.at > k.limit {
			k.now = k.limit
			return k.now
		}
		k.now = e.at
		switch {
		case e.fn != nil:
			e.fn()
		case e.proc != nil:
			if e.proc.done || e.proc.wakeSeq != e.seq {
				// Stale wakeup: the process finished, or a competing
				// event (e.g. a message beating a timeout) already
				// claimed the next resume.
				continue
			}
			e.proc.wakeSeq = 0
			e.proc.resume <- struct{}{}
			<-k.yield
		}
	}
	return k.now
}

// Blocked reports how many live processes are currently parked with no
// pending wakeup — useful for asserting that a simulation drained cleanly.
func (k *Kernel) Blocked() int { return k.blocked }

// Live reports how many spawned processes have not yet finished.
func (k *Kernel) Live() int { return k.live }

// Proc is a simulated process. All methods must be called from the
// process's own body function.
type Proc struct {
	k       *Kernel
	name    string
	resume  chan struct{}
	done    bool
	wakeSeq uint64 // seq of the event allowed to wake us; 0 = any
}

// Name returns the diagnostic name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Sleep advances this process's virtual time by d nanoseconds, modelling
// computation or an imposed delay. Other processes run in the meantime.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s slept negative duration %d", p.name, d))
	}
	e := &event{at: p.k.now + d, seq: p.k.nextSeq(), proc: p}
	p.wakeSeq = e.seq
	p.k.schedule(e)
	p.park()
}

// park hands control back to the kernel and blocks until resumed.
func (p *Proc) park() {
	p.k.yield <- struct{}{}
	<-p.resume
}

// parkBlocked is park for processes with no scheduled wakeup: some other
// process or callback must unpark them.
func (p *Proc) parkBlocked() {
	p.k.blocked++
	p.park()
	p.k.blocked--
}

// unpark schedules p to resume at the current virtual time. It must only
// be called for a parked process.
func (p *Proc) unpark() {
	e := &event{at: p.k.now, seq: p.k.nextSeq(), proc: p}
	p.wakeSeq = e.seq
	p.k.schedule(e)
}

package sim

import (
	"testing"
	"testing/quick"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(1500)
		woke = p.Now()
	})
	end := k.Run()
	if woke != 1500 {
		t.Errorf("woke at %d, want 1500", woke)
	}
	if end != 1500 {
		t.Errorf("simulation ended at %d, want 1500", end)
	}
}

func TestZeroSleepRunsOthersFirst(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(100, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("events at equal time ran out of order: %v", order)
		}
	}
}

func TestAfterCallback(t *testing.T) {
	k := NewKernel()
	var at Time
	k.After(250, func() { at = k.Now() })
	k.Run()
	if at != 250 {
		t.Errorf("callback ran at %d, want 250", at)
	}
}

func TestChanPostRecv(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	var got []int
	k.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, ch.Recv(p))
		}
	})
	k.Spawn("send", func(p *Proc) {
		ch.Post(1)
		p.Sleep(10)
		ch.Post(2)
		ch.Post(3)
	})
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v, want [1 2 3]", got)
	}
	if k.Blocked() != 0 {
		t.Errorf("Blocked() = %d, want 0", k.Blocked())
	}
}

func TestChanRecvBlocksUntilPost(t *testing.T) {
	k := NewKernel()
	ch := NewChan[string](k)
	var recvAt Time
	k.Spawn("recv", func(p *Proc) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(777)
		ch.Post("hi")
	})
	k.Run()
	if recvAt != 777 {
		t.Errorf("receive completed at %d, want 777", recvAt)
	}
}

func TestChanPostAfterDelay(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	var recvAt Time
	k.Spawn("recv", func(p *Proc) {
		ch.Recv(p)
		recvAt = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(100)
		ch.PostAfter(400, 9)
	})
	k.Run()
	if recvAt != 500 {
		t.Errorf("receive completed at %d, want 500", recvAt)
	}
}

func TestRecvTimeoutExpires(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	var (
		ok     bool
		wokeAt Time
	)
	k.Spawn("recv", func(p *Proc) {
		_, ok = ch.RecvTimeout(p, 300)
		wokeAt = p.Now()
	})
	k.Run()
	if ok {
		t.Error("RecvTimeout reported ok on an empty channel")
	}
	if wokeAt != 300 {
		t.Errorf("timed out at %d, want 300", wokeAt)
	}
}

func TestRecvTimeoutDeliveredBeforeDeadline(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	var (
		v      int
		ok     bool
		wokeAt Time
	)
	k.Spawn("recv", func(p *Proc) {
		v, ok = ch.RecvTimeout(p, 300)
		wokeAt = p.Now()
		// The stale timeout event at t=300 must not disturb later ops.
		p.Sleep(1000)
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(100)
		ch.Post(42)
	})
	end := k.Run()
	if !ok || v != 42 {
		t.Errorf("got (%d,%v), want (42,true)", v, ok)
	}
	if wokeAt != 100 {
		t.Errorf("received at %d, want 100", wokeAt)
	}
	if end != 1100 {
		t.Errorf("end = %d, want 1100 (stale timeout must not cut the sleep short)", end)
	}
}

func TestRecvTimeoutRemovesWaiterAfterTimeout(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	var late []int
	k.Spawn("recv", func(p *Proc) {
		if _, ok := ch.RecvTimeout(p, 50); ok {
			t.Error("unexpected delivery before timeout")
		}
		p.Sleep(100) // now a post happens at t=120; we are not waiting
		if v, ok := ch.TryRecv(); ok {
			late = append(late, v)
		}
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(120)
		ch.Post(7)
	})
	k.Run()
	if len(late) != 1 || late[0] != 7 {
		t.Errorf("late = %v, want [7]: post after timeout must buffer, not wake a stale waiter", late)
	}
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("loop", func(p *Proc) {
		for {
			p.Sleep(10)
			n++
			if n == 5 {
				k.Stop()
				return
			}
		}
	})
	end := k.Run()
	if n != 5 {
		t.Errorf("iterations = %d, want 5", n)
	}
	if end != 50 {
		t.Errorf("end = %d, want 50", end)
	}
}

func TestSetLimitHorizon(t *testing.T) {
	k := NewKernel()
	k.SetLimit(95)
	n := 0
	k.Spawn("loop", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			n++
		}
	})
	end := k.Run()
	if end != 95 {
		t.Errorf("end = %d, want 95", end)
	}
	if n != 9 {
		t.Errorf("iterations = %d, want 9", n)
	}
}

func TestManyProcsDeterministic(t *testing.T) {
	run := func() []int {
		k := NewKernel()
		ch := NewChan[int](k)
		var order []int
		for i := 0; i < 20; i++ {
			i := i
			k.Spawn("p", func(p *Proc) {
				p.Sleep(Time(100 - i)) // later procs wake earlier
				ch.Post(i)
			})
		}
		k.Spawn("collect", func(p *Proc) {
			for j := 0; j < 20; j++ {
				order = append(order, ch.Recv(p))
			}
		})
		k.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("two identical simulations diverged: %v vs %v", a, b)
		}
		if a[i] != 19-i {
			t.Fatalf("wakeup order wrong: %v", a)
		}
	}
}

func TestLiveCountsFinishedProcs(t *testing.T) {
	k := NewKernel()
	for i := 0; i < 4; i++ {
		k.Spawn("p", func(p *Proc) { p.Sleep(5) })
	}
	if k.Live() != 4 {
		t.Errorf("Live() before run = %d, want 4", k.Live())
	}
	k.Run()
	if k.Live() != 0 {
		t.Errorf("Live() after run = %d, want 0", k.Live())
	}
}

// Property: for any sequence of sleep durations, a process's finish time is
// the sum of the durations, and kernel time never runs backwards.
func TestSleepSumProperty(t *testing.T) {
	prop := func(durs []uint16) bool {
		k := NewKernel()
		var total, finish Time
		k.Spawn("p", func(p *Proc) {
			last := p.Now()
			for _, d := range durs {
				p.Sleep(Time(d))
				if p.Now() < last {
					t.Error("virtual time ran backwards")
				}
				last = p.Now()
				total += Time(d)
			}
			finish = p.Now()
		})
		k.Run()
		return finish == total
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: values posted to a channel are received in post order
// regardless of the posting schedule.
func TestChanFIFOProperty(t *testing.T) {
	prop := func(gaps []uint8) bool {
		k := NewKernel()
		ch := NewChan[int](k)
		var got []int
		k.Spawn("send", func(p *Proc) {
			for i, g := range gaps {
				p.Sleep(Time(g))
				ch.Post(i)
			}
		})
		k.Spawn("recv", func(p *Proc) {
			for range gaps {
				got = append(got, ch.Recv(p))
			}
		})
		k.Run()
		if len(got) != len(gaps) {
			return false
		}
		for i, v := range got {
			if v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAtInPastClampsToNow(t *testing.T) {
	k := NewKernel()
	var ran []string
	k.Spawn("p", func(p *Proc) {
		p.Sleep(100)
		// Schedule "in the past": must run at current time, not never.
		k.At(50, func() { ran = append(ran, "past") })
		p.Sleep(10)
		ran = append(ran, "after")
	})
	k.Run()
	if len(ran) != 2 || ran[0] != "past" || ran[1] != "after" {
		t.Errorf("order = %v, want [past after]", ran)
	}
}

func TestStopFromCallback(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("loop", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(10)
			n++
		}
	})
	k.At(55, func() { k.Stop() })
	k.Run()
	if n > 6 {
		t.Errorf("ran %d iterations after Stop at t=55", n)
	}
}

func TestCallbackSpawnsProcess(t *testing.T) {
	k := NewKernel()
	var bornAt, doneAt Time
	k.At(100, func() {
		k.Spawn("late", func(p *Proc) {
			bornAt = p.Now()
			p.Sleep(20)
			doneAt = p.Now()
		})
	})
	k.Run()
	if bornAt != 100 || doneAt != 120 {
		t.Errorf("late process ran [%d,%d], want [100,120]", bornAt, doneAt)
	}
}

func TestBlockedCountsParkedReceivers(t *testing.T) {
	k := NewKernel()
	ch := NewChan[int](k)
	k.Spawn("stuck", func(p *Proc) {
		ch.Recv(p) // never posted
	})
	k.Spawn("obs", func(p *Proc) {
		p.Sleep(10)
		if k.Blocked() != 1 {
			t.Errorf("Blocked() = %d, want 1", k.Blocked())
		}
	})
	k.Run()
	if k.Blocked() != 1 {
		t.Errorf("after drain Blocked() = %d, want 1 (stuck receiver)", k.Blocked())
	}
	if k.Live() != 1 {
		t.Errorf("Live() = %d, want 1", k.Live())
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	k := NewKernel()
	recovered := false
	k.Spawn("bad", func(p *Proc) {
		defer func() {
			if recover() != nil {
				recovered = true
			}
		}()
		p.Sleep(-1)
	})
	k.Run()
	if !recovered {
		t.Error("negative sleep did not panic")
	}
}

func TestProcName(t *testing.T) {
	k := NewKernel()
	k.Spawn("alpha", func(p *Proc) {
		if p.Name() != "alpha" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() mismatch")
		}
	})
	k.Run()
}

package workload

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/sim"
)

// Task-management variable/lock layout.
const (
	taskLock model.LockID = 0
	// taskHead is the consume index of the shared task queue (guarded).
	taskHead model.VarID = 1
	// taskTail is the produce index — the paper's eagerly shared "test
	// variable written by the producer" that workers watch. It is
	// deliberately unguarded so entry consistency must demand-fetch it.
	taskTail model.VarID = 2
	// taskSlotBase + (i mod QueueSlots) are the queue entries (guarded).
	taskSlotBase model.VarID = 100
)

// TaskMgmtParams configures the Figure 2 task-management experiment: one
// producer (node 0, also the group root / lock manager) generates Tasks
// tasks, each taking ExecTime/ProduceRatio to produce and ExecTime to
// execute; N-1 workers pop them from a lock-protected shared queue.
type TaskMgmtParams struct {
	N            int
	Tasks        int
	ExecTime     sim.Time
	ProduceRatio int // produce time = ExecTime / ProduceRatio
	QueueSlots   int // shared queue capacity (entries shipped with the lock)
	PopTime      sim.Time
	// LockFreeProducer applies the paper's single-writer GWC idiom
	// (Section 2: "the case for one writer is simple; an ordinary
	// variable can lock a data structure awaited by reader(s)"): the
	// producer appends tasks with plain ordered writes and only the
	// workers contend for the pop lock. Only sound under group write
	// consistency, where all shared writes are totally ordered; the
	// Configure method guards the queue accordingly.
	LockFreeProducer bool
}

// DefaultTaskMgmtParams returns the Figure 2 configuration for n CPUs:
// 1024 tasks and a production/execution time ratio of 1/128 (the ratio's
// printed fraction is lost in the paper's scan; 1/128 is recovered from
// the published curve, which peaks at 129 processors — exactly where one
// producer at ratio 1/128 saturates 128 workers).
func DefaultTaskMgmtParams(n int, kind Kind) TaskMgmtParams {
	return TaskMgmtParams{
		N:                n,
		Tasks:            1024,
		ExecTime:         250_000, // 250us per task
		ProduceRatio:     128,
		QueueSlots:       16,
		PopTime:          200,
		LockFreeProducer: kind == KindGWC || kind == KindGWCOptimistic,
	}
}

// produceTime is the per-task production cost.
func (p TaskMgmtParams) produceTime() sim.Time {
	return p.ExecTime / sim.Time(p.ProduceRatio)
}

// Configure installs the queue layout. The head index is always in the
// lock's data group (workers contend to advance it). With a lock-free
// producer the slots and tail are single-writer ordinary variables (GWC
// write ordering makes that safe); otherwise they are guarded so entry
// consistency ships them with the lock. The tail/test variable is always
// unguarded with the producer as its home, so entry consistency must
// demand-fetch it.
func (p TaskMgmtParams) Configure(cfg *model.Config) {
	cfg.Guard[taskHead] = taskLock
	if !p.LockFreeProducer {
		for s := 0; s < p.QueueSlots; s++ {
			cfg.Guard[taskSlotBase+model.VarID(s)] = taskLock
		}
	}
	cfg.Home[taskTail] = 0
	for s := 0; s < p.QueueSlots; s++ {
		cfg.Home[taskSlotBase+model.VarID(s)] = 0
	}
}

// TaskMgmtResult reports one task-management run.
type TaskMgmtResult struct {
	Model    string
	N        int
	Makespan sim.Time
	// BusyTime is the total productive time: producing plus executing
	// every task.
	BusyTime sim.Time
	// Power is average processor efficiency times network size
	// (the paper's speedup axis): BusyTime / Makespan.
	Power    float64
	Executed int
	Stats    model.Stats
}

// RunTaskMgmt executes the task-management workload on machine m.
func RunTaskMgmt(k *sim.Kernel, m model.Machine, p TaskMgmtParams) (TaskMgmtResult, error) {
	if m.N() != p.N {
		return TaskMgmtResult{}, fmt.Errorf("taskmgmt: machine has %d nodes, params say %d", m.N(), p.N)
	}
	if p.N < 2 {
		return TaskMgmtResult{}, fmt.Errorf("taskmgmt: need at least 2 nodes, got %d", p.N)
	}
	total := int64(p.Tasks)
	produce := p.produceTime()
	finish := make([]sim.Time, p.N)
	executed := make([]int, p.N)

	// Producer: generate tasks, bounded by queue capacity. Under GWC the
	// paper's single-writer idiom applies: the append is plain ordered
	// writes (slot first, then the tail announcement, which GWC ordering
	// delivers in that order everywhere). Otherwise the append happens
	// under the lock so the data travels with it.
	m.Start(0, func(a model.App) {
		var tail int64
		for tail < total {
			a.Compute(produce)
			if p.LockFreeProducer {
				// Bounded queue: wait for consumers when full. The head
				// copy is eagerly shared, so this is a local test.
				if tail-a.Read(taskHead) >= int64(p.QueueSlots) {
					a.AwaitGE(taskHead, tail-int64(p.QueueSlots)+1)
				}
				tail++
				a.Write(taskSlotBase+model.VarID(int(tail)%p.QueueSlots), tail)
				a.Write(taskTail, tail)
				continue
			}
			// Respect queue capacity: the head index is only reliably
			// current while holding the lock (entry consistency ships it
			// with the grant), so the fullness check happens inside the
			// critical section and full queues retry after a beat.
			placed := false
			for !placed {
				// MutexDo bodies may re-execute after an optimistic
				// rollback, so the body is idempotent: captured state is
				// reset on entry and the tail advances only after the
				// section commits.
				a.MutexDo(taskLock, func() {
					placed = false
					head := a.Read(taskHead)
					if (tail+1)-head > int64(p.QueueSlots) {
						return // queue full
					}
					slot := taskSlotBase + model.VarID(int(tail+1)%p.QueueSlots)
					a.Write(slot, tail+1)
					placed = true
				})
				if !placed {
					a.Compute(produce) // back off while consumers drain
				}
			}
			tail++
			// Publish the new produce index on the eagerly shared /
			// demand-fetched test variable.
			a.Write(taskTail, tail)
		}
		finish[0] = a.Now()
	})

	// Workers: watch the test variable, pop under the lock, execute.
	// Wake thresholds are staggered by worker rank so an idle pool does
	// not stampede the lock manager on every produced task: worker r only
	// wakes once production is r tasks past the head it last observed.
	for id := 1; id < p.N; id++ {
		id := id
		m.Start(id, func(a model.App) {
			rank := int64(id)
			var lastHead int64
			for {
				if lastHead >= total {
					break
				}
				// Wait until the producer has published enough work for
				// this worker's turn (capped so the last tasks still wake
				// everyone and drain).
				need := lastHead + rank
				if need > total {
					need = total
				}
				a.AwaitGE(taskTail, need)
				var got int64
				a.MutexDo(taskLock, func() {
					got = 0 // idempotent under re-execution
					head := a.Read(taskHead)
					lastHead = head
					if head >= total {
						return
					}
					tail := a.Read(taskTail)
					if head >= tail {
						return // another worker beat us to it
					}
					a.Compute(p.PopTime)
					a.Read(taskSlotBase + model.VarID(int(head+1)%p.QueueSlots))
					a.Write(taskHead, head+1)
					lastHead = head + 1
					got = head + 1
				})
				if got > 0 {
					a.Compute(p.ExecTime)
					executed[id]++
				}
			}
			finish[id] = a.Now()
		})
	}

	end := k.Run()
	makespan := sim.Time(0)
	sumExecuted := 0
	for id, f := range finish {
		if f == 0 {
			return TaskMgmtResult{}, fmt.Errorf("taskmgmt: node %d never finished (simulation ended at %d, executed so far %v)", id, end, executed)
		}
		if f > makespan {
			makespan = f
		}
		sumExecuted += executed[id]
	}
	if sumExecuted != p.Tasks {
		return TaskMgmtResult{}, fmt.Errorf("taskmgmt: executed %d tasks, want %d", sumExecuted, p.Tasks)
	}
	busy := sim.Time(p.Tasks)*(p.ExecTime+produce) + sim.Time(p.Tasks)*p.PopTime
	return TaskMgmtResult{
		Model:    m.Name(),
		N:        p.N,
		Makespan: makespan,
		BusyTime: busy,
		Power:    float64(busy) / float64(makespan),
		Executed: sumExecuted,
		Stats:    m.Stats(),
	}, nil
}

// Package workload implements the paper's three evaluation workloads
// against the model.App interface, so each runs unchanged under every
// consistency model:
//
//   - Mutex3: the Figure 1 scenario — three CPUs contending for one lock,
//     each locking, updating shared data, and releasing once.
//   - TaskMgmt: the Figure 2 application — one producer generates 1024
//     tasks into a shared queue; workers pop them under mutual exclusion.
//   - Pipeline: the Figure 8 example — a ring of processors passing data,
//     each iteration doing local work, a mutually exclusive update, and a
//     handoff to the successor.
package workload

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/sim"
)

// Kind selects a consistency-model machine.
type Kind int

// The machines under comparison.
const (
	KindGWC Kind = iota + 1
	KindGWCOptimistic
	KindEntry
	KindRelease
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindGWC:
		return "gwc"
	case KindGWCOptimistic:
		return "gwc-optimistic"
	case KindEntry:
		return "entry"
	case KindRelease:
		return "release"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind converts a model name to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "gwc":
		return KindGWC, nil
	case "gwc-optimistic", "optimistic":
		return KindGWCOptimistic, nil
	case "entry":
		return KindEntry, nil
	case "release", "weak":
		return KindRelease, nil
	default:
		return 0, fmt.Errorf("workload: unknown model %q (want gwc, gwc-optimistic, entry, or release)", s)
	}
}

// NewMachine constructs the machine for a kind. The caller prepares cfg
// (guards, homes, variable sizes) before calling.
func NewMachine(k *sim.Kernel, kind Kind, cfg model.Config) (model.Machine, error) {
	switch kind {
	case KindGWC:
		cfg.Optimistic = false
		return model.NewGWC(k, cfg)
	case KindGWCOptimistic:
		cfg.Optimistic = true
		return model.NewGWC(k, cfg)
	case KindEntry:
		return model.NewEntry(k, cfg)
	case KindRelease:
		return model.NewRelease(k, cfg)
	default:
		return nil, fmt.Errorf("workload: unknown machine kind %d", kind)
	}
}

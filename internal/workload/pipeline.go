package workload

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/sim"
)

// Pipeline variable/lock layout.
const (
	pipeLock model.LockID = 0
	// pipeShared is the variable updated inside the mutual exclusion
	// section (the paper's shared_a).
	pipeShared model.VarID = 1
	// pipeDataBase + i is the "items produced" counter of node i, awaited
	// by node i+1.
	pipeDataBase model.VarID = 1000
	// pipePayloadBase + i holds node i's produced data item, read
	// piecewise by the successor (demand-fetched under entry consistency,
	// already local under eagersharing).
	pipePayloadBase model.VarID = 2000
)

// PipelineParams configures the Figure 8 linear-pipeline experiment.
//
// Each of N processors loops DataSize/N times: wait for the predecessor's
// data, compute locally for LocalCalc, update shared data for
// LocalCalc/MXRatio inside a mutual exclusion section, share new data with
// the successor, then compute locally for LocalCalc again. With the
// paper's ratio of 1/8 the zero-delay ceiling on network power is
// (8+1+8)/(8+1) = 1.89, exactly the paper's top line.
type PipelineParams struct {
	N         int
	DataSize  int      // total handoffs around the ring (paper: 1024)
	LocalCalc sim.Time // the two local computation blocks (L)
	MXRatio   int      // MX section is LocalCalc/MXRatio (paper: 8)
	DataBytes int      // wire size of one inter-stage data item
	// DataReads is how many reads of the predecessor's item each
	// iteration performs. Under eagersharing these are local; under entry
	// consistency each is a demand fetch ("demand fetch is needed when
	// non-mutually exclusive data is read").
	DataReads int
}

// DefaultPipelineParams returns the Figure 8 configuration for n CPUs.
// LocalCalc is sized so the lock round trip is initially overlappable by
// the MX section ("The time for the mutual exclusion section has also
// been chosen so communication delay to request the lock ... can
// initially be overlapped by calculations").
func DefaultPipelineParams(n int) PipelineParams {
	return PipelineParams{
		N:         n,
		DataSize:  1024,
		LocalCalc: 7200, // ~240 FLOPs at 33 MFLOPS
		MXRatio:   8,
		DataBytes: 100,
		DataReads: 5,
	}
}

// mxTime is the mutual-exclusion section's compute time.
func (p PipelineParams) mxTime() sim.Time { return p.LocalCalc / sim.Time(p.MXRatio) }

// iters is the per-node main-loop count ("from 1024 to 8 iterations").
func (p PipelineParams) iters() int {
	it := p.DataSize / p.N
	if it < 1 {
		it = 1
	}
	return it
}

// Configure installs the pipeline's variable layout into a machine config:
// the MX variable is guarded by the pipeline lock; each data counter is
// homed at (and written only by) its producer.
func (p PipelineParams) Configure(cfg *model.Config) {
	cfg.Guard[pipeShared] = pipeLock
	for i := 0; i < p.N; i++ {
		v := pipeDataBase + model.VarID(i)
		cfg.Home[v] = i
		pay := pipePayloadBase + model.VarID(i)
		cfg.Home[pay] = i
		cfg.VarBytes[pay] = p.DataBytes
	}
}

// PipelineResult reports one pipeline run.
type PipelineResult struct {
	Model    string
	N        int
	Makespan sim.Time
	// UsefulWork is the total compute time across all nodes (the two
	// local blocks plus the MX block, per iteration).
	UsefulWork sim.Time
	// Power is the paper's "network power": UsefulWork / Makespan, i.e.
	// average sustained efficiency times network size.
	Power float64
	Stats model.Stats
}

// RunPipeline executes the pipeline on machine m and returns its measured
// network power. The machine must have been configured with
// p.Configure and built on kernel k.
func RunPipeline(k *sim.Kernel, m model.Machine, p PipelineParams) (PipelineResult, error) {
	if m.N() != p.N {
		return PipelineResult{}, fmt.Errorf("pipeline: machine has %d nodes, params say %d", m.N(), p.N)
	}
	iters := p.iters()
	mx := p.mxTime()
	finish := make([]sim.Time, p.N)
	for id := 0; id < p.N; id++ {
		id := id
		m.Start(id, func(a model.App) {
			prev := (id - 1 + p.N) % p.N
			prevVar := pipeDataBase + model.VarID(prev)
			prevPayload := pipePayloadBase + model.VarID(prev)
			myVar := pipeDataBase + model.VarID(id)
			myPayload := pipePayloadBase + model.VarID(id)
			for it := 1; it <= iters; it++ {
				// Wait for the predecessor's item. The token starts at
				// node 0, so node 0's iteration k needs the
				// predecessor's item k-1 and everyone else needs item k.
				need := int64(it)
				if id == 0 {
					need = int64(it - 1)
				}
				if need > 0 {
					a.AwaitGE(prevVar, need)
					for r := 0; r < p.DataReads; r++ {
						a.Read(prevPayload)
					}
				}
				a.Compute(p.LocalCalc) // first local block (A)
				a.MutexDo(pipeLock, func() {
					a.Compute(mx)
					a.Write(pipeShared, int64(id*1_000_000+it))
				})
				// Share the new data with the successor (payload first,
				// then the counter that announces it), then continue
				// with the second local block (D), which overlaps the
				// successor's work.
				a.Write(myPayload, int64(it))
				a.Write(myVar, int64(it))
				a.Compute(p.LocalCalc)
			}
			finish[id] = a.Now()
		})
	}
	end := k.Run()
	makespan := sim.Time(0)
	for id, f := range finish {
		if f == 0 {
			return PipelineResult{}, fmt.Errorf("pipeline: node %d never finished (simulation ended at %d)", id, end)
		}
		if f > makespan {
			makespan = f
		}
	}
	work := sim.Time(p.N*iters) * (2*p.LocalCalc + mx)
	return PipelineResult{
		Model:      m.Name(),
		N:          p.N,
		Makespan:   makespan,
		UsefulWork: work,
		Power:      float64(work) / float64(makespan),
		Stats:      m.Stats(),
	}, nil
}

package workload

import (
	"strings"
	"testing"

	"optsync/internal/model"
	"optsync/internal/sim"
)

func TestKindString(t *testing.T) {
	tests := []struct {
		kind Kind
		want string
	}{
		{KindGWC, "gwc"},
		{KindGWCOptimistic, "gwc-optimistic"},
		{KindEntry, "entry"},
		{KindRelease, "release"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindGWC, KindGWCOptimistic, KindEntry, KindRelease} {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Errorf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
	if k, err := ParseKind("weak"); err != nil || k != KindRelease {
		t.Errorf("ParseKind(weak) = %v, %v; want release", k, err)
	}
}

func TestNewMachineAllKinds(t *testing.T) {
	for _, kind := range []Kind{KindGWC, KindGWCOptimistic, KindEntry, KindRelease} {
		k := sim.NewKernel()
		m, err := NewMachine(k, kind, model.DefaultConfig(4))
		if err != nil {
			t.Fatalf("NewMachine(%v): %v", kind, err)
		}
		if m.N() != 4 {
			t.Errorf("%v: N = %d, want 4", kind, m.N())
		}
	}
	if _, err := NewMachine(sim.NewKernel(), Kind(0), model.DefaultConfig(2)); err == nil {
		t.Error("NewMachine with invalid kind succeeded, want error")
	}
}

// runPipelineKind runs the pipeline for a kind at size n and returns the
// result.
func runPipelineKind(t *testing.T, kind Kind, n int, zeroDelay bool) PipelineResult {
	t.Helper()
	k := sim.NewKernel()
	p := DefaultPipelineParams(n)
	p.DataSize = 64 // keep unit tests quick
	cfg := model.DefaultConfig(n)
	if zeroDelay {
		cfg.Net.HopLatency = 0
		cfg.Net.BytesPerNS = 1e12
		cfg.RootProc = 0
	}
	if kind == KindEntry {
		cfg.ViaManager = true
	}
	p.Configure(&cfg)
	m, err := NewMachine(k, kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPipeline(k, m, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestPipelineZeroDelayCeiling(t *testing.T) {
	// With no network delay the pipeline's power must approach the
	// paper's analytic ceiling of (8+1+8)/(8+1) = 1.889.
	for _, n := range []int{2, 4, 8} {
		r := runPipelineKind(t, KindGWC, n, true)
		if r.Power < 1.80 || r.Power > 1.89 {
			t.Errorf("N=%d: zero-delay power = %.3f, want ~1.87-1.89", n, r.Power)
		}
	}
}

func TestPipelineModelOrdering(t *testing.T) {
	// For every size, optimistic GWC > regular GWC > entry consistency —
	// the ordering of Figure 8's lines.
	for _, n := range []int{2, 8, 16} {
		opt := runPipelineKind(t, KindGWCOptimistic, n, false)
		reg := runPipelineKind(t, KindGWC, n, false)
		ent := runPipelineKind(t, KindEntry, n, false)
		if !(opt.Power > reg.Power && reg.Power > ent.Power) {
			t.Errorf("N=%d: power ordering opt=%.3f reg=%.3f entry=%.3f, want opt > reg > entry",
				n, opt.Power, reg.Power, ent.Power)
		}
	}
}

func TestPipelinePowerDecaysWithSize(t *testing.T) {
	small := runPipelineKind(t, KindGWC, 2, false)
	large := runPipelineKind(t, KindGWC, 16, false)
	if large.Power >= small.Power {
		t.Errorf("power grew with network size: %.3f (N=2) -> %.3f (N=16)", small.Power, large.Power)
	}
}

func TestPipelineNoRollbacksWithoutContention(t *testing.T) {
	r := runPipelineKind(t, KindGWCOptimistic, 4, false)
	if r.Stats.Rollbacks != 0 {
		t.Errorf("pipeline had %d rollbacks; the paper's example has no contention", r.Stats.Rollbacks)
	}
	if r.Stats.OptimisticOK == 0 {
		t.Error("no optimistic sections committed; the pipeline should always speculate")
	}
}

func TestPipelineRejectsMismatchedMachine(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultPipelineParams(4)
	cfg := model.DefaultConfig(8) // wrong size
	p.Configure(&cfg)
	m, err := NewMachine(k, KindGWC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunPipeline(k, m, p); err == nil {
		t.Error("RunPipeline with mismatched sizes succeeded, want error")
	}
}

// runTaskKind runs the task-management workload for a kind at size n.
func runTaskKind(t *testing.T, kind Kind, n, tasks int) TaskMgmtResult {
	t.Helper()
	k := sim.NewKernel()
	p := DefaultTaskMgmtParams(n, kind)
	p.Tasks = tasks
	cfg := model.DefaultConfig(n)
	p.Configure(&cfg)
	m, err := NewMachine(k, kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTaskMgmt(k, m, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTaskMgmtExecutesEveryTaskOnce(t *testing.T) {
	for _, kind := range []Kind{KindGWC, KindEntry, KindRelease} {
		r := runTaskKind(t, kind, 5, 64)
		if r.Executed != 64 {
			t.Errorf("%v: executed %d tasks, want 64", kind, r.Executed)
		}
	}
}

func TestTaskMgmtTwoProcessorsSpeedupNearOne(t *testing.T) {
	// Paper: "For 2 processors, minutely more than 50% is the maximum
	// efficiency, resulting in an effective speedup of 1."
	r := runTaskKind(t, KindGWC, 2, 64)
	if r.Power < 0.9 || r.Power > 1.1 {
		t.Errorf("2-processor power = %.3f, want ~1.0", r.Power)
	}
}

func TestTaskMgmtGWCBeatsEntryAtScale(t *testing.T) {
	gwc := runTaskKind(t, KindGWC, 17, 256)
	ent := runTaskKind(t, KindEntry, 17, 256)
	if gwc.Power <= ent.Power {
		t.Errorf("GWC power %.2f <= entry power %.2f at 17 CPUs; eagersharing should win", gwc.Power, ent.Power)
	}
}

func TestTaskMgmtSpeedupScales(t *testing.T) {
	small := runTaskKind(t, KindGWC, 3, 128)
	big := runTaskKind(t, KindGWC, 9, 128)
	if big.Power < 3*small.Power {
		t.Errorf("power did not scale: %.2f at 3 CPUs, %.2f at 9 CPUs", small.Power, big.Power)
	}
}

func TestTaskMgmtEntryDemandFetches(t *testing.T) {
	r := runTaskKind(t, KindEntry, 5, 64)
	if r.Stats.DemandFetch == 0 {
		t.Error("entry consistency ran the task queue without demand fetches; the test variable must be fetched")
	}
}

func TestTaskMgmtRejectsTooFewNodes(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultTaskMgmtParams(1, KindGWC)
	cfg := model.DefaultConfig(1)
	p.Configure(&cfg)
	m, err := NewMachine(k, KindGWC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTaskMgmt(k, m, p); err == nil {
		t.Error("RunTaskMgmt with 1 node succeeded, want error")
	}
}

// runMutex3Kind runs the Figure 1 scenario for a kind.
func runMutex3Kind(t *testing.T, kind Kind) Mutex3Result {
	t.Helper()
	k := sim.NewKernel()
	p := DefaultMutex3Params()
	cfg := model.DefaultConfig(3)
	p.Configure(&cfg)
	if kind == KindEntry {
		cfg.Invalidate = true
	}
	m, err := NewMachine(k, kind, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := m.(*model.Entry); ok {
		// The figure starts with CPU2 and CPU3 holding the data
		// non-exclusively.
		e.SetReaders(0, []int{1, 2})
	}
	r, err := RunMutex3(k, m, p)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestMutex3AllModelsComplete(t *testing.T) {
	for _, kind := range []Kind{KindGWC, KindEntry, KindRelease} {
		r := runMutex3Kind(t, kind)
		if r.Total == 0 {
			t.Errorf("%v: scenario did not complete", kind)
		}
		for i, c := range r.CPU {
			if c.Grant < c.Request || c.Release < c.Grant {
				t.Errorf("%v CPU%d: request=%d grant=%d release=%d out of order", kind, i+1, c.Request, c.Grant, c.Release)
			}
		}
	}
}

func TestMutex3GWCFastest(t *testing.T) {
	// Figure 1's conclusion: "Sesame GWC is better than entry, weak, or
	// release consistency, for this example."
	gwc := runMutex3Kind(t, KindGWC)
	ent := runMutex3Kind(t, KindEntry)
	rel := runMutex3Kind(t, KindRelease)
	if !(gwc.Total < ent.Total && ent.Total < rel.Total) {
		t.Errorf("total times gwc=%d entry=%d release=%d, want gwc < entry < release",
			gwc.Total, ent.Total, rel.Total)
	}
	if !(gwc.TotalIdle < ent.TotalIdle && gwc.TotalIdle < rel.TotalIdle) {
		t.Errorf("idle times gwc=%d entry=%d release=%d, want gwc smallest",
			gwc.TotalIdle, ent.TotalIdle, rel.TotalIdle)
	}
}

func TestMutex3FirstRequesterWins(t *testing.T) {
	// CPU1 requests first and must be granted first under every model.
	for _, kind := range []Kind{KindGWC, KindEntry, KindRelease} {
		r := runMutex3Kind(t, kind)
		if !(r.CPU[0].Grant < r.CPU[2].Grant && r.CPU[2].Grant < r.CPU[1].Grant) {
			t.Errorf("%v: grant order CPU1=%d CPU3=%d CPU2=%d, want CPU1 < CPU3 < CPU2",
				kind, r.CPU[0].Grant, r.CPU[2].Grant, r.CPU[1].Grant)
		}
	}
}

func TestMutex3ModelNameRecorded(t *testing.T) {
	r := runMutex3Kind(t, KindGWC)
	if !strings.HasPrefix(r.Model, "gwc") {
		t.Errorf("result model = %q, want gwc*", r.Model)
	}
}

func TestPipelineItersClampedToOne(t *testing.T) {
	p := DefaultPipelineParams(8)
	p.DataSize = 4 // fewer handoffs than nodes
	k := sim.NewKernel()
	cfg := model.DefaultConfig(8)
	p.Configure(&cfg)
	m, err := NewMachine(k, KindGWC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunPipeline(k, m, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Power <= 0 {
		t.Errorf("power = %v on a single-iteration pipeline", r.Power)
	}
}

func TestTaskMgmtLockFreeProducerOnlyForGWC(t *testing.T) {
	if DefaultTaskMgmtParams(4, KindGWC).LockFreeProducer != true {
		t.Error("GWC producer should be lock-free")
	}
	if DefaultTaskMgmtParams(4, KindGWCOptimistic).LockFreeProducer != true {
		t.Error("optimistic GWC producer should be lock-free")
	}
	if DefaultTaskMgmtParams(4, KindEntry).LockFreeProducer {
		t.Error("entry producer must take the lock")
	}
	if DefaultTaskMgmtParams(4, KindRelease).LockFreeProducer {
		t.Error("release producer must take the lock")
	}
}

func TestMutex3RequiresThreeNodes(t *testing.T) {
	k := sim.NewKernel()
	cfg := model.DefaultConfig(4)
	m, err := NewMachine(k, KindGWC, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMutex3(k, m, DefaultMutex3Params()); err == nil {
		t.Error("RunMutex3 accepted a 4-node machine")
	}
}

// TestOptimisticContendedConditionalBodies is the regression test for two
// protocol bugs found by the threshold ablation: (1) the model's rollback
// must actually restore saved values, and (2) the root must epoch-validate
// speculative writes so a rolled-back section's stale writes cannot land
// behind its queued grant. Conditional MutexDo bodies (pop-if-nonempty)
// lose tasks if either is broken.
func TestOptimisticContendedConditionalBodies(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultTaskMgmtParams(5, KindGWCOptimistic)
	p.Tasks = 128
	p.LockFreeProducer = false // force the producer onto the lock: hot lock
	cfg := model.DefaultConfig(5)
	cfg.HistoryThreshold = 0.99 // speculate even against a busy lock
	p.Configure(&cfg)
	m, err := NewMachine(k, KindGWCOptimistic, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunTaskMgmt(k, m, p)
	if err != nil {
		t.Fatalf("%v (stats %+v)", err, m.Stats())
	}
	if r.Executed != 128 {
		t.Errorf("executed %d tasks, want 128", r.Executed)
	}
	s := m.Stats()
	if s.Rollbacks == 0 || s.Suppressed == 0 {
		t.Errorf("test is vacuous: rollbacks=%d suppressed=%d, want both > 0", s.Rollbacks, s.Suppressed)
	}
}

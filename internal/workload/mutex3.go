package workload

import (
	"fmt"

	"optsync/internal/model"
	"optsync/internal/sim"
	"optsync/internal/trace"
)

// Figure 1 variable/lock layout. The paper's CPU1, CPU2, CPU3 are nodes
// 0, 1, 2; CPU2 (node 1) is the group root / lock owner / data owner.
const (
	m3Lock model.LockID = 0
	m3Data model.VarID  = 1
)

// Mutex3Params configures the Figure 1 scenario: three successive sets of
// mutually exclusive accesses to the same lock. CPU1 and CPU3 request
// immediately (CPU1 first); CPU2 requests later. Each CPU updates the
// shared data for UpdateTime and releases.
type Mutex3Params struct {
	// UpdateTime is each CPU's in-section update computation.
	UpdateTime sim.Time
	// Writes is how many shared writes each CPU spreads over its update.
	Writes int
	// CPU3Offset and CPU2Offset are the request times of CPU3 and CPU2
	// (CPU1 requests at time zero).
	CPU3Offset sim.Time
	CPU2Offset sim.Time
}

// DefaultMutex3Params mirrors the figure: CPU3 contends with CPU1 almost
// immediately; CPU2 asks only after the others are done updating.
func DefaultMutex3Params() Mutex3Params {
	return Mutex3Params{
		UpdateTime: 4000,
		Writes:     4,
		CPU3Offset: 200,
		CPU2Offset: 9000,
	}
}

// Configure installs the scenario layout: the data is guarded by the
// lock, owned (for entry-consistency demand fetches) by CPU2.
func (p Mutex3Params) Configure(cfg *model.Config) {
	cfg.Root = 1 // CPU2 is group root / lock owner
	cfg.Guard[m3Data] = m3Lock
	cfg.Home[m3Data] = 1
}

// Mutex3CPU is one processor's observed timing.
type Mutex3CPU struct {
	Request sim.Time
	Grant   sim.Time
	Release sim.Time
	// Idle is the time the CPU wasted waiting for the lock.
	Idle sim.Time
}

// Mutex3Result reports the Figure 1 scenario under one model.
type Mutex3Result struct {
	Model string
	CPU   [3]Mutex3CPU
	// Total is when the last CPU finished its release.
	Total sim.Time
	// TotalIdle sums the three CPUs' lock-wait times — the quantity
	// Figure 1 compares across models.
	TotalIdle sim.Time
	Trace     *trace.Log
	Stats     model.Stats
}

// RunMutex3 executes the Figure 1 scenario on machine m (3 nodes).
func RunMutex3(k *sim.Kernel, m model.Machine, p Mutex3Params) (Mutex3Result, error) {
	if m.N() != 3 {
		return Mutex3Result{}, fmt.Errorf("mutex3: machine has %d nodes, want 3", m.N())
	}
	var res Mutex3Result
	offsets := [3]sim.Time{0, p.CPU2Offset, p.CPU3Offset}
	writeGap := p.UpdateTime / sim.Time(p.Writes)
	for id := 0; id < 3; id++ {
		id := id
		m.Start(id, func(a model.App) {
			a.Compute(offsets[id])
			res.CPU[id].Request = a.Now()
			a.Acquire(m3Lock)
			res.CPU[id].Grant = a.Now()
			res.CPU[id].Idle = res.CPU[id].Grant - res.CPU[id].Request
			for w := 0; w < p.Writes; w++ {
				a.Compute(writeGap)
				a.Write(m3Data, int64(id*100+w))
			}
			a.Release(m3Lock)
			res.CPU[id].Release = a.Now()
		})
	}
	k.Run()
	for id := 0; id < 3; id++ {
		if res.CPU[id].Release == 0 {
			return Mutex3Result{}, fmt.Errorf("mutex3: CPU%d never released", id+1)
		}
		if res.CPU[id].Release > res.Total {
			res.Total = res.CPU[id].Release
		}
		res.TotalIdle += res.CPU[id].Idle
	}
	res.Model = m.Name()
	res.Stats = m.Stats()
	return res, nil
}

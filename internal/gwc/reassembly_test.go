package gwc

import (
	"testing"
	"testing/quick"

	"optsync/internal/transport"
	"optsync/internal/wire"
)

// soloNode builds a node whose group pretends the root is elsewhere, so
// sequenced messages can be injected directly through handle().
func soloNode(t *testing.T, history int) *Node {
	t.Helper()
	net, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Endpoint(1)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(1, ep)
	if err := n.Join(GroupConfig{
		ID: tGroup, Root: 0, Members: []int{0, 1},
		Guards:      map[VarID]LockID{tVar: tLock},
		HistorySize: history,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = n.Close()
		_ = net.Close()
	})
	return n
}

// seqUpdate builds a sequenced update message.
func seqUpdate(seq uint64, v VarID, val int64) wire.Message {
	return wire.Message{
		Type: wire.TSeqUpdate, Group: uint32(tGroup), Src: 0, Origin: 0,
		Seq: seq, Var: uint32(v), Val: val,
	}
}

func TestReassemblyInOrder(t *testing.T) {
	n := soloNode(t, 0)
	for s := uint64(1); s <= 5; s++ {
		n.handle(seqUpdate(s, tVar, int64(s)))
	}
	if got, _ := n.Read(tGroup, tVar); got != 5 {
		t.Errorf("value = %d, want 5", got)
	}
	s := n.Stats()
	if s.Gaps != 0 || s.Duplicates != 0 {
		t.Errorf("stats = %+v, want no gaps or duplicates", s)
	}
}

func TestReassemblyBuffersOutOfOrder(t *testing.T) {
	n := soloNode(t, 0)
	n.handle(seqUpdate(3, tVar, 3)) // gap: 1 and 2 missing
	n.handle(seqUpdate(2, tVar, 2))
	if got, _ := n.Read(tGroup, tVar); got != 0 {
		t.Errorf("value applied before the gap filled: %d", got)
	}
	n.handle(seqUpdate(1, tVar, 1))
	// All three must now apply in order, ending at 3.
	if got, _ := n.Read(tGroup, tVar); got != 3 {
		t.Errorf("value = %d, want 3 after gap fill", got)
	}
	if gaps := n.Stats().Gaps; gaps != 2 {
		t.Errorf("Gaps = %d, want 2 (seq 3 and seq 2 were early)", gaps)
	}
}

func TestReassemblyDropsDuplicates(t *testing.T) {
	n := soloNode(t, 0)
	n.handle(seqUpdate(1, tVar, 7))
	n.handle(seqUpdate(1, tVar, 999)) // replay
	if got, _ := n.Read(tGroup, tVar); got != 7 {
		t.Errorf("duplicate overwrote value: %d", got)
	}
	if d := n.Stats().Duplicates; d != 1 {
		t.Errorf("Duplicates = %d, want 1", d)
	}
	// Duplicate of a pending (not yet applied) message is also dropped.
	n.handle(seqUpdate(5, tVar, 5))
	n.handle(seqUpdate(5, tVar, 5))
	if gaps := n.Stats().Gaps; gaps != 1 {
		t.Errorf("Gaps = %d, want 1 (second copy of pending seq must not recount)", gaps)
	}
}

// Property: any permutation of a sequenced burst converges to the value
// of the highest sequence number, with nothing applied out of order.
func TestReassemblyPermutationProperty(t *testing.T) {
	prop := func(perm []uint8) bool {
		const burst = 8
		n := soloNode(t, 0)
		// Build a permutation of 1..burst from the random input.
		order := make([]uint64, 0, burst)
		used := make(map[uint64]bool, burst)
		for _, p := range perm {
			s := uint64(p)%burst + 1
			if !used[s] {
				used[s] = true
				order = append(order, s)
			}
		}
		for s := uint64(1); s <= burst; s++ {
			if !used[s] {
				order = append(order, s)
			}
		}
		for _, s := range order {
			n.handle(seqUpdate(s, tVar, int64(s)))
		}
		got, err := n.Read(tGroup, tVar)
		return err == nil && got == burst
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// rootNodeHarness builds a node that IS the root of its group, to unit
// test the sequencing/lock-manager state machine via injected messages.
func rootNodeHarness(t *testing.T, history int) *Node {
	t.Helper()
	net, err := transport.NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := net.Endpoint(0)
	if err != nil {
		t.Fatal(err)
	}
	n := NewNode(0, ep)
	if err := n.Join(GroupConfig{
		ID: tGroup, Root: 0, Members: []int{0, 1, 2},
		Guards:      map[VarID]LockID{tVar: tLock},
		HistorySize: history,
	}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = n.Close()
		_ = net.Close()
	})
	return n
}

func TestRootHistoryWindowExhausted(t *testing.T) {
	n := rootNodeHarness(t, 4) // tiny retransmission buffer
	for i := 1; i <= 10; i++ {
		n.handle(wire.Message{
			Type: wire.TUpdate, Group: uint32(tGroup), Src: 1, Origin: 1,
			Var: 99, Val: int64(i),
		})
	}
	// Ask for everything from seq 1: seqs 1..6 have fallen out of the
	// 4-entry window, only 7..10 can be served.
	n.handle(wire.Message{
		Type: wire.TNack, Group: uint32(tGroup), Src: 1, Seq: 1, Val: 10,
	})
	s := n.Stats()
	if s.Retransmits != 4 {
		t.Errorf("Retransmits = %d, want 4 (window size)", s.Retransmits)
	}
	if s.LostHistory != 6 {
		t.Errorf("LostHistory = %d, want 6", s.LostHistory)
	}
}

func TestRootNackBeyondCurrentSeqHarmless(t *testing.T) {
	n := rootNodeHarness(t, 16)
	n.handle(wire.Message{
		Type: wire.TUpdate, Group: uint32(tGroup), Src: 1, Origin: 1, Var: 99, Val: 1,
	})
	// Probe far beyond the current sequence (the resync probe's shape).
	n.handle(wire.Message{
		Type: wire.TNack, Group: uint32(tGroup), Src: 1, Seq: 2, Val: 1 << 40,
	})
	if s := n.Stats(); s.Retransmits != 0 || s.LostHistory != 0 {
		t.Errorf("stats = %+v, want no retransmission for an up-to-date prober", s)
	}
}

func TestRootDuplicateLockRequestIgnored(t *testing.T) {
	n := rootNodeHarness(t, 16)
	req := wire.Message{
		Type: wire.TLockReq, Group: uint32(tGroup), Src: 1, Origin: 1, Lock: uint32(tLock),
	}
	n.handle(req)
	n.handle(req) // retry while already holder
	if g := n.Stats().LockGrants; g != 1 {
		t.Errorf("LockGrants = %d, want 1", g)
	}
	// A second requester queues once even if it retries.
	req2 := req
	req2.Src, req2.Origin = 2, 2
	n.handle(req2)
	n.handle(req2)
	n.mu.Lock()
	qlen := len(n.roots[tGroup].lock(tLock).queue)
	n.mu.Unlock()
	if qlen != 1 {
		t.Errorf("queue length = %d, want 1 (duplicate requests must dedup)", qlen)
	}
}

func TestRootLockCancelLeavesNoPhantomEntry(t *testing.T) {
	n := rootNodeHarness(t, 16)
	req := func(origin int32) {
		n.handle(wire.Message{
			Type: wire.TLockReq, Group: uint32(tGroup), Src: origin, Origin: origin, Lock: uint32(tLock),
		})
	}
	cancel := func(origin int32) {
		n.handle(wire.Message{
			Type: wire.TLockCancel, Group: uint32(tGroup), Src: origin, Origin: origin, Lock: uint32(tLock),
		})
	}
	req(1) // granted
	req(2) // queued behind 1
	cancel(2)
	n.mu.Lock()
	ls := n.roots[tGroup].lock(tLock)
	holder, qlen := ls.soleHolder(), len(ls.queue)
	n.mu.Unlock()
	if holder != 1 {
		t.Errorf("holder = %d after a waiter cancelled, want 1", holder)
	}
	if qlen != 0 {
		t.Errorf("queue length = %d after cancel, want 0 (phantom entry)", qlen)
	}
	// The next release must free the lock outright, never granting the
	// withdrawn waiter.
	n.handle(wire.Message{
		Type: wire.TLockRel, Group: uint32(tGroup), Src: 1, Origin: 1, Lock: uint32(tLock), Var: 1,
	})
	n.mu.Lock()
	holder = n.roots[tGroup].lock(tLock).soleHolder()
	n.mu.Unlock()
	if holder != -1 {
		t.Errorf("holder = %d after release, want -1 (cancelled waiter must not inherit)", holder)
	}

	// A cancel that loses the race with its own grant releases on the
	// requester's behalf instead of stranding the queue.
	req(3) // granted immediately
	req(4) // queued
	cancel(3)
	n.mu.Lock()
	ls = n.roots[tGroup].lock(tLock)
	holder, qlen = ls.soleHolder(), len(ls.queue)
	n.mu.Unlock()
	if holder != 4 || qlen != 0 {
		t.Errorf("holder = %d queue = %d after holder cancel, want lock handed to 4", holder, qlen)
	}
	if c := n.Stats().LockCancels; c != 2 {
		t.Errorf("LockCancels = %d, want 2", c)
	}
}

func TestRootStaleEpochReleaseIgnored(t *testing.T) {
	n := rootNodeHarness(t, 16)
	grant := func(origin int32) {
		n.handle(wire.Message{
			Type: wire.TLockReq, Group: uint32(tGroup), Src: origin, Origin: origin, Lock: uint32(tLock),
		})
	}
	release := func(origin int32, epoch uint32) {
		n.handle(wire.Message{
			Type: wire.TLockRel, Group: uint32(tGroup), Src: origin, Origin: origin,
			Lock: uint32(tLock), Var: epoch,
		})
	}
	grant(1)      // epoch 1, holder 1
	release(1, 1) // freed
	grant(1)      // epoch 2, holder 1 again
	release(1, 1) // stale duplicate from epoch 1: must be ignored
	n.mu.Lock()
	holder := n.roots[tGroup].lock(tLock).soleHolder()
	n.mu.Unlock()
	if holder != 1 {
		t.Errorf("holder = %d after stale release, want 1 (epoch 2 grant intact)", holder)
	}
	release(1, 2) // the real release
	n.mu.Lock()
	holder = n.roots[tGroup].lock(tLock).soleHolder()
	n.mu.Unlock()
	if holder != -1 {
		t.Errorf("holder = %d after valid release, want -1", holder)
	}
}

func TestRootSequencesAcrossManyVariables(t *testing.T) {
	n := rootNodeHarness(t, 1024)
	for i := 1; i <= 100; i++ {
		n.handle(wire.Message{
			Type: wire.TUpdate, Group: uint32(tGroup), Src: 1, Origin: 1,
			Var: uint32(200 + i%7), Val: int64(i),
		})
	}
	n.mu.Lock()
	seq := n.roots[tGroup].ring.seq()
	n.mu.Unlock()
	if seq != 100 {
		t.Errorf("root sequence = %d, want 100", seq)
	}
}

package gwc

import (
	"errors"
	"fmt"
	"time"

	"optsync/internal/obs"
)

// Graceful degradation.
//
// A fenced root and a rootless member (mid-election, mid-rejoin, or
// waiting on a catch-up snapshot) cannot serve writes or locks, but
// their local copies are still the newest state they can prove anything
// about. Rather than blocking every reader behind recovery, ReadStale
// serves the local copy with an explicit staleness bound: the caller
// names the maximum staleness it tolerates, and the read reports how
// stale the copy may actually be — measured from the node's last proof
// of currency (sequenced traffic or a heartbeat from a live reign; the
// start of the fence on a fenced root). Ordinary Read is untouched:
// eagersharing reads are always local, and only callers that opted into
// the bound ever observe degraded data knowingly.

// ErrTooStale marks bounded-staleness reads that failed because the
// local copy's staleness bound exceeds what the caller tolerates.
var ErrTooStale = errors.New("local copy too stale")

// ErrDiverged marks reads refused because an anti-entropy digest
// comparison convicted the local copy (integrity.go): unlike a merely
// stale copy, a diverged one may hold values that were never true at
// any time, so no staleness bound makes it servable. The conviction
// clears when the corrective snapshot re-bases the copy.
var ErrDiverged = errors.New("local copy diverged")

// ReadStale returns the local copy of v along with an upper bound on
// its staleness, serving even while the node is degraded (fenced root,
// electing / rejoining / resyncing member). If maxStale is positive and
// the bound exceeds it, the value is withheld and the error wraps
// ErrTooStale; maxStale <= 0 accepts any staleness. On a healthy node
// the bound is how long ago the current reign last proved itself —
// typically well under the failure-detection deadline — and zero on an
// unfenced root, which is the authority.
func (n *Node) ReadStale(gid GroupID, v VarID, maxStale time.Duration) (int64, time.Duration, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return 0, 0, err
	}
	if g.diverged {
		// A diverged copy is wrong, not old: staleness bounds do not
		// apply, and the read is refused until the repair snapshot
		// lands.
		return 0, 0, fmt.Errorf("gwc: node %d group %d var %d: %w", n.id, gid, v, ErrDiverged)
	}
	now := n.clock.Now()
	var stale time.Duration
	degraded := false
	if r, isRoot := n.roots[gid]; isRoot {
		if r.fenced {
			degraded = true
			if !r.fencedAt.IsZero() {
				stale = now.Sub(r.fencedAt)
			}
		}
	} else {
		stale = now.Sub(g.lastRoot)
		degraded = g.electing || g.rejoining || g.snapWanted
	}
	if stale < 0 {
		stale = 0
	}
	if maxStale > 0 && stale > maxStale {
		return 0, stale, fmt.Errorf("gwc: node %d group %d var %d stale %v > bound %v: %w",
			n.id, gid, v, stale, maxStale, ErrTooStale)
	}
	if degraded {
		n.stats.DegradedReads++
		n.emit(obs.EvDegradedRead, gid, int64(v), int64(stale))
	}
	return g.mem[v], stale, nil
}

// Health is a point-in-time summary of the node's ability to serve,
// backing the /healthz endpoint (see WithMetricsAddr in the optsync
// package).
type Health struct {
	Groups        int // groups joined
	Fenced        int // reigns this node roots currently fenced (cannot sequence)
	Electing      int // member groups running a root-failure election
	Rejoining     int // member groups awaiting re-admission
	Syncing       int // member groups awaiting a catch-up snapshot
	Diverged      int // member groups whose copy failed a digest comparison and awaits repair
	WatchdogStuck int // cumulative stuck-operation watchdog trips
}

// Serving reports whether every group this node participates in can
// currently take writes through it: no fenced reign and no member group
// detached from its root. Watchdog trips do not gate serving — they are
// a symptom counter, and the condition that tripped is already
// reflected in the other fields when it affects service.
func (h Health) Serving() bool {
	return h.Fenced == 0 && h.Electing == 0 && h.Rejoining == 0 && h.Syncing == 0 &&
		h.Diverged == 0
}

// Health snapshots the node's serving state under the node mutex, so
// the cut is exactly consistent with Stats.
func (n *Node) Health() Health {
	n.mu.Lock()
	defer n.mu.Unlock()
	h := Health{
		Groups:        len(n.groups),
		WatchdogStuck: n.stats.WatchdogStuck,
	}
	for _, gid := range sortedKeys(n.groups) {
		g := n.groups[gid]
		if r, isRoot := n.roots[gid]; isRoot {
			if r.fenced {
				h.Fenced++
			}
			continue
		}
		switch {
		case g.electing:
			h.Electing++
		case g.rejoining:
			h.Rejoining++
		case g.snapWanted:
			h.Syncing++
		}
		// Divergence is orthogonal to the recovery phases above: the
		// conviction stands (and gates Serving) until the repair
		// snapshot actually lands, whichever phase delivers it.
		if g.diverged {
			h.Diverged++
		}
	}
	return h
}

package gwc

import (
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Batched update plane.
//
// Sesame's hardware interfaces combine adjacent writes before they hit
// the wire; this file is the software reproduction of that write
// combining, amortizing the per-message costs of the update plane:
//
//   - members queue TUpdate messages instead of shipping each one, and a
//     repeated write to the same variable inside the window replaces the
//     queued value (one wire message for a whole burst of stores);
//   - the queue flushes when maxMsgs writes are buffered, when maxDelay
//     elapses, or — crucially — just before a lock release leaves the
//     node, so the GWC invariant "every node sees the section's data
//     before the lock changes hands" is preserved verbatim;
//   - the root sequences a whole incoming batch under one acquisition of
//     the node lock, assigns it a contiguous sequence range, and fans out
//     one TBatch frame per member (or per spanning-tree child) instead
//     of one frame per message;
//   - NACK retransmission and failover state streams ride the same frame
//     type, so loss recovery and elections pack their bursts too.
//
// Combining relaxes ordering *within* one flush window: a variable's
// queued slot keeps its first-write position but carries its last-written
// value. Write patterns that touch their variables in a fixed order per
// round (signal-after-data, publication blocks) are unaffected, because
// slot order then matches program order; this is exactly the relaxation
// Sesame's hardware write combining makes. Batching is off by default.

// flushReason says why a member batch left the queue.
type flushReason int

const (
	flushSize    flushReason = iota // the queue reached maxMsgs
	flushDelay                      // maxDelay elapsed since the first write
	flushRelease                    // a lock release needed the data out first
	flushSync                       // a Sync barrier needed the data out first
	flushClose                      // node shutdown drained the queue (uncounted)
)

// FlushReasons counts member batch flushes by trigger.
type FlushReasons struct {
	Size    int // queue reached the maxMsgs bound
	Delay   int // maxDelay elapsed
	Release int // flushed ahead of a lock release
	Sync    int // flushed ahead of a Sync barrier
}

// SetBatching configures member-side write coalescing: shared writes are
// queued and shipped to the group root in batch frames, flushed when
// maxMsgs writes are buffered, when maxDelay has elapsed since the first
// queued write, or immediately before a lock release leaves the node.
// maxMsgs < 2 disables batching (the default); maxDelay <= 0 defaults to
// 2ms. With batching enabled, Write reports transport failures through
// Errors() rather than its return value (the flush happens later).
func (n *Node) SetBatching(maxDelay time.Duration, maxMsgs int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if maxMsgs < 2 {
		n.batchMax = 0
		return
	}
	if maxMsgs > wire.MaxBatch {
		maxMsgs = wire.MaxBatch
	}
	if maxDelay <= 0 {
		maxDelay = 2 * time.Millisecond
	}
	n.batchMax = maxMsgs
	n.batchDelay = maxDelay
}

// enqueueWrite queues an outgoing TUpdate, coalescing it into an
// already-queued write to the same variable when both carry the same
// guard state (writes straddling a grant epoch must stay distinct so the
// root can judge each against its own epoch tag). Caller holds n.mu.
func (n *Node) enqueueWrite(gid GroupID, g *memberGroup, msg wire.Message) {
	v := VarID(msg.Var)
	if i, ok := g.batchIdx[v]; ok {
		q := &g.batchQ[i]
		if q.Guarded == msg.Guarded && q.Seq == msg.Seq {
			q.Val = msg.Val
			n.stats.Coalesced++
			return
		}
	}
	if g.batchIdx == nil {
		g.batchIdx = make(map[VarID]int)
	}
	if g.batchQ == nil {
		// One right-sized allocation per window; the flush hands the slice
		// to the outgoing frame, so it cannot be recycled.
		g.batchQ = make([]wire.Message, 0, n.batchMax)
	}
	g.batchQ = append(g.batchQ, msg)
	g.batchIdx[v] = len(g.batchQ) - 1
	if len(g.batchQ) >= n.batchMax {
		n.flushWrites(g, flushSize)
		return
	}
	if len(g.batchQ) == 1 {
		g.batchFirst = n.clock.Now()
		if g.batchTimer == nil {
			g.batchTimer = n.clock.AfterFunc(n.batchDelay, func() { n.flushTimer(gid) })
		} else {
			g.batchTimer.Reset(n.batchDelay)
		}
	}
}

// flushTimer is the maxDelay trigger, run outside the node lock by the
// queue's timer.
func (n *Node) flushTimer(gid GroupID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, ok := n.groups[gid]
	if !ok || n.closed {
		return
	}
	n.flushWrites(g, flushDelay)
}

// flushWrites ships the queued writes to the group root as one batch
// frame (or a bare message when only one is queued). Queued messages are
// re-stamped with the group's current epoch, so a flush that straddles a
// failover addresses the new reign — exactly as the writes would have if
// sent unqueued. Caller holds n.mu.
func (n *Node) flushWrites(g *memberGroup, why flushReason) {
	if g.batchTimer != nil {
		// The timer object is reused across windows; a stale fire finds an
		// empty queue and does nothing.
		g.batchTimer.Stop()
	}
	q := g.batchQ
	if len(q) == 0 {
		return
	}
	g.batchQ = nil
	clear(g.batchIdx)
	if !g.batchFirst.IsZero() {
		n.metrics.Hist(obs.HistBatchFlush).Record(n.clock.Now().Sub(g.batchFirst))
		g.batchFirst = time.Time{}
	}
	n.emit(obs.EvBatchFlush, g.cfg.ID, int64(len(q)), int64(why))
	switch why {
	case flushSize:
		n.stats.FlushReasons.Size++
	case flushDelay:
		n.stats.FlushReasons.Delay++
	case flushRelease:
		n.stats.FlushReasons.Release++
	case flushSync:
		n.stats.FlushReasons.Sync++
	}
	for i := range q {
		q[i].Epoch = g.epoch
	}
	if len(q) == 1 {
		n.send(g.rootID, q[0])
		return
	}
	n.stats.Batches++
	n.send(g.rootID, wire.Message{
		Type:  wire.TBatch,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Epoch: g.epoch,
		Batch: q,
	})
}

// handleBatch dispatches one batch frame. Up-plane batches are sequenced
// by the root in one pass — one node-lock acquisition, one contiguous
// sequence range, one outgoing frame per member; down-plane batches are
// relayed down the spanning tree as a single frame and then ingested
// message by message; snapshot/report batches feed the failover
// machinery. Caller holds n.mu.
func (n *Node) handleBatch(frame wire.Message) {
	if len(frame.Batch) == 0 {
		return
	}
	gid := GroupID(frame.Group)
	switch frame.Batch[0].Type {
	case wire.TUpdate, wire.TLockReq, wire.TLockRel, wire.TNack, wire.TLockCancel, wire.TSnapReq:
		r, ok := n.roots[gid]
		if ok && r.outBatch == nil {
			// One right-sized allocation for the fan-out: sequenced output
			// usually matches the incoming batch one for one.
			r.outBatch = make([]wire.Message, 0, len(frame.Batch))
		}
		if !ok {
			if g, member := n.groups[gid]; member {
				// Routine during failover, as on the single-message path:
				// point stale senders at the current root.
				if frame.Epoch < g.epoch {
					n.stats.StaleEpochRejected++
					n.maybeNotice(g, int(frame.Src))
				}
				return
			}
			n.protoErr("gwc: node %d got batch for group %d but is not its root", n.id, frame.Group)
			return
		}
		r.collecting = true
		for _, m := range frame.Batch {
			n.rootHandle(r, m)
		}
		n.rootEndBatch(r)
	case wire.TSeqUpdate, wire.TSeqLock:
		g, ok := n.groups[gid]
		if !ok {
			n.protoErr("gwc: node %d got sequenced batch for unknown group %d", n.id, frame.Group)
			return
		}
		// Relay the whole frame down the tree once if it brings anything
		// new (children drop the duplicates), then ingest with the
		// per-message relay suppressed.
		if len(g.children) > 0 {
			for _, m := range frame.Batch {
				if m.Epoch >= g.epoch && m.Seq >= g.nextSeq {
					if _, dup := g.pending[m.Seq]; !dup {
						n.forwardDown(g, frame)
						break
					}
				}
			}
		}
		for _, m := range frame.Batch {
			n.ingestFwd(g, m, false)
		}
		n.maybeSendAck(g)
	case wire.TSnapVar, wire.TSnapLock, wire.TSnapDone:
		g, ok := n.groups[gid]
		if !ok {
			n.protoErr("gwc: node %d got snapshot batch for unknown group %d", n.id, frame.Group)
			return
		}
		for _, m := range frame.Batch {
			n.handleSnap(g, m)
		}
	default:
		n.protoErr("gwc: node %d got batch of unexpected type %v", n.id, frame.Batch[0].Type)
	}
}

// rootEndBatch closes the root's collection window: every message that
// multicast sequenced while processing the incoming batch leaves in one
// frame per destination — the group members directly, or the root's
// spanning-tree children in tree-fanout mode. Caller holds n.mu.
func (n *Node) rootEndBatch(r *rootGroup) {
	r.collecting = false
	q := r.outBatch
	r.outBatch = nil
	if len(q) == 0 {
		return
	}
	var frame wire.Message
	if len(q) == 1 {
		frame = q[0]
	} else {
		n.stats.Batches++
		frame = wire.Message{
			Type:  wire.TBatch,
			Group: uint32(r.cfg.ID),
			Src:   int32(n.id),
			Epoch: r.epoch,
			Batch: q,
		}
	}
	if r.cfg.TreeFanout {
		if g, ok := n.groups[r.cfg.ID]; ok {
			n.forwardDown(g, frame)
		}
		return
	}
	for _, member := range r.cfg.Members {
		if member != n.id {
			n.send(member, frame)
		}
	}
}

// sendStream ships a state stream (snapshot or election report) to one
// node, packed into batch frames when batching is enabled. All messages
// must belong to gid and carry their own epoch stamps.
func (n *Node) sendStream(to int, gid GroupID, epoch uint32, msgs []wire.Message) {
	lim := n.batchMax
	if lim < 2 {
		for _, m := range msgs {
			n.send(to, m)
		}
		return
	}
	for len(msgs) > 0 {
		k := min(len(msgs), lim)
		chunk := msgs[:k]
		msgs = msgs[k:]
		if len(chunk) == 1 {
			n.send(to, chunk[0])
			continue
		}
		n.stats.Batches++
		n.send(to, wire.Message{
			Type:  wire.TBatch,
			Group: uint32(gid),
			Src:   int32(n.id),
			Epoch: epoch,
			Batch: chunk,
		})
	}
}

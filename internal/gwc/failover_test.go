package gwc

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"optsync/internal/obs"
	"optsync/internal/transport"
)

// newChaosCluster builds a cluster over a fault-injectable network with
// failover timers tightened for tests.
func newChaosCluster(t *testing.T, n int, guarded bool) (*cluster, *transport.Flaky) {
	t.Helper()
	inner, err := transport.NewInProc(n)
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.NewFlaky(inner, transport.FaultPlan{})
	c := newCluster(t, fl, guarded)
	for _, nd := range c.nodes {
		nd.SetTimers(10*time.Millisecond, 60*time.Millisecond, 30*time.Millisecond)
	}
	return c, fl
}

// waitFor blocks until cond holds or the deadline passes. Instead of
// busy-polling wall time, it subscribes one wake-up channel to every
// node's event tracer — each protocol transition (grant, fence, reign
// change, ...) re-checks the condition immediately — with a coarse
// fallback ticker for state changes that emit no event. On timeout the
// failure includes each node's recent trace so the stall is debuggable.
func waitFor(t *testing.T, c *cluster, d time.Duration, what string, cond func() bool) {
	t.Helper()
	wake := make(chan struct{}, 1)
	for _, nd := range c.nodes {
		defer nd.Metrics().Trace.SubscribeChan(wake)()
	}
	tick := time.NewTicker(10 * time.Millisecond)
	defer tick.Stop()
	deadline := time.NewTimer(d)
	defer deadline.Stop()
	for {
		if cond() {
			return
		}
		select {
		case <-wake:
		case <-tick.C:
		case <-deadline.C:
			var traces strings.Builder
			for i, nd := range c.nodes {
				ev := nd.Metrics().Trace.Snapshot()
				if len(ev) > 8 {
					ev = ev[len(ev)-8:]
				}
				fmt.Fprintf(&traces, "\nnode %d: %s", i, obs.Format(ev))
			}
			t.Fatalf("timed out waiting for %s%s", what, traces.String())
		}
	}
}

// waitAdopted waits until a member has switched to the given root. Writes
// are fire-once up-messages, so a test must not write through a member
// that may still be addressing the deposed root.
func waitAdopted(t *testing.T, c *cluster, n *Node, root int) {
	t.Helper()
	waitFor(t, c, 5*time.Second, "member to adopt the new root", func() bool {
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.groups[tGroup].rootID == root
	})
}

func TestRootFailoverElectsLowestSurvivor(t *testing.T) {
	c, fl := newChaosCluster(t, 4, false)
	if err := c.nodes[2].Write(tGroup, tVar, 41); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 41)
	}

	fl.Crash(0)
	waitFor(t, c, 5*time.Second, "node 1 to promote itself", func() bool {
		return c.nodes[1].Stats().Failovers == 1
	})

	// The group keeps working under the new root, and pre-crash state
	// survived the reconstruction.
	waitAdopted(t, c, c.nodes[3], 1)
	if err := c.nodes[3].Write(tGroup, tVarB, 7); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes[1:] {
		waitValue(t, n, tVarB, 7)
		waitValue(t, n, tVar, 41)
	}
	if f := c.nodes[2].Stats().Failovers + c.nodes[3].Stats().Failovers; f != 0 {
		t.Errorf("non-candidate nodes promoted themselves %d times", f)
	}
}

func TestFailoverPreservesLockHolderAndQueue(t *testing.T) {
	c, fl := newChaosCluster(t, 4, true)
	if err := c.nodes[2].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[3].SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, 5*time.Second, "node 3 to queue at the root", func() bool {
		c.nodes[0].mu.Lock()
		defer c.nodes[0].mu.Unlock()
		return c.nodes[0].roots[tGroup].lock(tLock).queued(3)
	})

	fl.Crash(0)
	waitFor(t, c, 5*time.Second, "node 1 to promote itself", func() bool {
		return c.nodes[1].Stats().Failovers == 1
	})
	// The new root must see node 2 as holder (no double grant).
	c.nodes[1].mu.Lock()
	holder := c.nodes[1].roots[tGroup].lock(tLock).soleHolder()
	c.nodes[1].mu.Unlock()
	if holder != 2 {
		t.Fatalf("reconstructed holder = %d, want 2", holder)
	}

	// Once the holder has adopted the new reign, its release must hand
	// the lock to the queued waiter.
	waitAdopted(t, c, c.nodes[2], 1)
	if err := c.nodes[2].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	ok, err := c.nodes[3].WaitLockGrant(tGroup, tLock)
	if err != nil || !ok {
		t.Fatalf("queued waiter never granted after failover: ok=%v err=%v", ok, err)
	}
	if err := c.nodes[3].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
}

func TestRevivedOldRootIsDemoted(t *testing.T) {
	c, fl := newChaosCluster(t, 3, false)
	if err := c.nodes[0].Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 1)
	}

	fl.Crash(0)
	waitFor(t, c, 5*time.Second, "node 1 to promote itself", func() bool {
		return c.nodes[1].Stats().Failovers == 1
	})
	waitAdopted(t, c, c.nodes[2], 1)
	if err := c.nodes[2].Write(tGroup, tVar, 99); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[1], tVar, 99)

	fl.Revive(0)
	waitFor(t, c, 5*time.Second, "the revived root to stand down", func() bool {
		return c.nodes[0].Stats().Demotions == 1
	})
	// The deposed root resyncs to the new reign's state instead of
	// splitting the group.
	waitValue(t, c.nodes[0], tVar, 99)
	waitFor(t, c, 5*time.Second, "stale-epoch traffic to be rejected", func() bool {
		total := 0
		for _, n := range c.nodes {
			total += n.Stats().StaleEpochRejected
		}
		return total > 0
	})
}

func TestAcquireContextExpiredReturnsPromptly(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	err := c.nodes[1].AcquireContext(ctx, tGroup, tLock)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("AcquireContext with dead context = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("AcquireContext took %v with an expired context", d)
	}
}

func TestCancelWhileQueuedLeavesNoPhantom(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	if err := c.nodes[2].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := c.nodes[1].AcquireContext(ctx, tGroup, tLock); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireContext = %v, want context.DeadlineExceeded", err)
	}
	if err := c.nodes[2].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	// The cancelled waiter must not inherit the lock: the root's queue
	// entry was withdrawn, so the release frees the lock outright.
	waitFor(t, c, 5*time.Second, "the lock to come to rest free", func() bool {
		c.nodes[0].mu.Lock()
		ls := c.nodes[0].roots[tGroup].lock(tLock)
		free, qlen := ls.free(), len(ls.queue)
		c.nodes[0].mu.Unlock()
		return free && qlen == 0
	})
	// And the waiter's local copy agrees.
	waitFor(t, c, 5*time.Second, "node 1's local lock copy to read free", func() bool {
		v, err := c.nodes[1].LockValue(tGroup, tLock)
		return err == nil && v == Free
	})
}

func TestAcquireContextGrantRaceReleases(t *testing.T) {
	// A cancellation that loses the race with the grant must hand the
	// lock back rather than keep it; later acquirers proceed normally.
	c := newInProcCluster(t, 3, true)
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i)*time.Millisecond)
		err := c.nodes[1].AcquireContext(ctx, tGroup, tLock)
		cancel()
		if err == nil {
			if err := c.nodes[1].Release(tGroup, tLock); err != nil {
				t.Fatal(err)
			}
		} else if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("AcquireContext = %v", err)
		}
	}
	// Whatever the races did, the lock must still be acquirable.
	if err := c.nodes[2].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[2].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
}

package gwc

import (
	"sync"
	"testing"
	"time"

	"optsync/internal/wire"
)

func ringMsg(seq uint64) wire.Message {
	return wire.Message{Type: wire.TSeqUpdate, Seq: seq, Var: 7, Val: int64(seq) * 3}
}

func TestSeqRingStampAndLookup(t *testing.T) {
	r := newSeqRing(8)
	if got := r.seq(); got != 0 {
		t.Fatalf("fresh ring watermark = %d, want 0", got)
	}
	for i := 0; i < 5; i++ {
		s := r.tick()
		if s != uint64(i+1) {
			t.Fatalf("tick %d returned %d", i, s)
		}
		r.publish(ringMsg(s), s*100)
	}
	if got := r.seq(); got != 5 {
		t.Fatalf("watermark = %d, want 5", got)
	}
	for s := uint64(1); s <= 5; s++ {
		m, ok := r.lookup(s)
		if !ok || m.Seq != s || m.Val != int64(s)*3 {
			t.Fatalf("lookup(%d) = %+v, %v", s, m, ok)
		}
		d, ok := r.digestAt(s)
		if !ok || d != s*100 {
			t.Fatalf("digestAt(%d) = %d, %v", s, d, ok)
		}
	}
	// Out-of-range queries: zero, future, and never-stamped slots.
	if _, ok := r.lookup(0); ok {
		t.Fatal("lookup(0) succeeded")
	}
	if _, ok := r.lookup(6); ok {
		t.Fatal("lookup past the watermark succeeded")
	}
	if _, ok := r.digestAt(9); ok {
		t.Fatal("digestAt past the watermark succeeded")
	}
}

func TestSeqRingRoundsToPowerOfTwo(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{{1, 1}, {2, 2}, {3, 4}, {8, 8}, {100, 128}, {1000, 1024}} {
		r := newSeqRing(tc.ask)
		if len(r.slots) != tc.want {
			t.Errorf("newSeqRing(%d) holds %d slots, want %d", tc.ask, len(r.slots), tc.want)
		}
	}
}

func TestSeqRingWraparound(t *testing.T) {
	r := newSeqRing(8) // exactly 8 slots
	for s := r.tick(); s <= 20; s = r.tick() {
		r.publish(ringMsg(s), s)
	}
	// Watermark is 21 (the loop's last tick published 20, then ticked 21
	// without publishing — simulate the in-flight stamp by publishing it).
	r.publish(ringMsg(21), 21)
	for s := uint64(1); s <= 13; s++ {
		if _, ok := r.lookup(s); ok {
			t.Fatalf("lookup(%d) returned an overwritten entry", s)
		}
		if _, ok := r.digestAt(s); ok {
			t.Fatalf("digestAt(%d) returned an overwritten checkpoint", s)
		}
	}
	for s := uint64(14); s <= 21; s++ {
		m, ok := r.lookup(s)
		if !ok || m.Seq != s {
			t.Fatalf("retained lookup(%d) = %+v, %v", s, m, ok)
		}
	}
}

// TestSeqRingFreshReign pins the failover contract: promotion builds a
// fresh rootGroup, so each reign's ring starts at zero and retains
// nothing from the deposed sequencer.
func TestSeqRingFreshReign(t *testing.T) {
	old := newSeqRing(8)
	for i := 0; i < 5; i++ {
		s := old.tick()
		old.publish(ringMsg(s), s)
	}
	r := newRootGroup(GroupConfig{ID: 1, Members: []int{0, 1}, HistorySize: 8}, time.Now())
	if got := r.ring.seq(); got != 0 {
		t.Fatalf("fresh reign watermark = %d, want 0", got)
	}
	if _, ok := r.ring.lookup(3); ok {
		t.Fatal("fresh reign retained a deposed reign's entry")
	}
}

// TestSeqRingConcurrentReaders hammers lookups and digest reads while
// the single writer laps the ring, under the race detector: readers must
// only ever observe fully published entries whose contents match their
// stamp.
func TestSeqRingConcurrentReaders(t *testing.T) {
	r := newSeqRing(16)
	const total = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				hi := r.seq()
				if hi == 0 {
					continue
				}
				for q := hi; q > 0 && q+32 > hi; q-- {
					if m, ok := r.lookup(q); ok {
						if m.Seq != q || m.Val != int64(q)*3 {
							t.Errorf("torn read: asked %d got seq=%d val=%d", q, m.Seq, m.Val)
							return
						}
					}
					if d, ok := r.digestAt(q); ok && d != q {
						t.Errorf("torn digest: asked %d got %d", q, d)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < total; i++ {
		s := r.tick()
		r.publish(ringMsg(s), s)
	}
	close(stop)
	wg.Wait()
	if r.seq() != total {
		t.Fatalf("watermark = %d, want %d", r.seq(), total)
	}
}

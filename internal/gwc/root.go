package gwc

import (
	"time"

	"optsync/internal/integrity"
	"optsync/internal/obs"
	"optsync/internal/wire"
)

// rootGroup is the authoritative state the group root keeps: the write
// sequencer, the retransmission history, and the lock manager.
type rootGroup struct {
	cfg GroupConfig

	// epoch identifies this root's reign; every down-message carries it
	// and up-messages from other reigns are rejected. The founding root
	// reigns in epoch 0, each failover promotion starts a higher one.
	epoch uint32

	auth map[VarID]int64

	// ring is the reign's sequencer and retransmission window: the
	// sequence counter is an atomic logical clock and the last
	// HistorySize sequenced messages (with digest checkpoints) live in
	// stamped ring slots — see seqring.go for the single-writer
	// protocol. r.ring.seq() is the watermark the old r.seq field held.
	ring *seqRing

	locks map[LockID]*lockState

	// Batch collection window (batch.go): while an incoming batch frame is
	// being sequenced — one node-lock hold for the whole frame — multicast
	// parks its output here and rootEndBatch fans the contiguous sequence
	// range out as one frame per destination.
	collecting bool
	outBatch   []wire.Message

	// Fencing lease (fence.go): a root that heard from fewer than quorum
	// members (itself included) within failAfter stops sequencing —
	// up-traffic parks in fencedQ until contact returns, so a minority
	// partition cannot commit writes a healed group would discard.
	quorum     int
	fenced     bool
	fencedAt   time.Time // when the current fence began (degraded.go staleness origin)
	fenceWatch time.Time // watchdog budget clock for the fence; re-stamped per trip
	fencedQ    []wire.Message
	lastHeard  map[int]time.Time

	// joinSeen is the last rejoin token served per member (rejoin.go): a
	// duplicate TJoinReq gets its ack and snapshot re-sent but skips the
	// destructive lock-freeing a first admission performs.
	joinSeen map[int]uint64

	// Quorum-ack watermark (fence.go): acks[m] is the highest sequence
	// number member m cumulatively acknowledged, commit the quorum-th
	// highest of those (counting the root at r.ring.seq()). Sync barriers and,
	// under SetQuorumAcks, lock handoffs wait for commit to reach the
	// prefix they depend on.
	acks      map[int]uint64
	commit    uint64
	waitSyncs []syncBarrier

	// Anti-entropy digest state (integrity.go): digest accumulates every
	// sequenced data message this reign multicast, and the ring
	// checkpoints the cumulative digest as of each sequence number
	// (alongside the retained message), so a member's TDigestAck at any
	// buffered watermark can be compared without replay. lastSweep paces
	// the sweep.
	digest    integrity.Digest
	lastSweep time.Time

	// storeSeen is the highest guarded-store nonce dispositioned per
	// (origin, var). Members stamp every guarded update with a
	// monotonically increasing per-group nonce so the up-path
	// loss-recovery re-sends (the eager re-ship in tick) are idempotent
	// here: a nonce at or below the recorded one is a duplicate — or a
	// superseded older store that a delay fault reordered — of a frame
	// this reign already sequenced or suppressed, and is dropped without
	// sequencing the same value twice or double-counting a suppression.
	storeSeen map[[2]uint32]uint64
}

// syncBarrier is a deferred TSyncReq: answered once the commit watermark
// reaches needSeq.
type syncBarrier struct {
	src     int
	token   uint64
	needSeq uint64
}

// lockWaiter is one queued lock request: the requesting node and the
// acquisition token its request carried (see memberGroup.reqToken).
// Requests re-queued from failover reports carry token 0, which never
// matches a live acquisition; the member declines such a grant and its
// request retry re-queues with the real token. deadline (Unix nanos, 0
// = none) is the caller's give-up time from the wire: granting past it
// only bounces, so popWaiter discards expired entries at dequeue.
// session is the group-mutual-exclusion session the request wants to
// enter (0 = exclusive).
type lockWaiter struct {
	node     int
	token    uint32
	deadline int64
	session  uint32
}

// popWaiter dequeues the next live waiter, discarding entries whose
// request deadline has passed — their callers gave up, so a grant would
// only be declined and cost the lock an extra round trip. The clock is
// read lazily; most queues carry no deadlines at all. Caller holds n.mu.
func (n *Node) popWaiter(ls *lockState) (lockWaiter, bool) {
	var now int64
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		ls.queue = ls.queue[1:]
		if w.deadline != 0 {
			if now == 0 {
				now = n.clock.Now().UnixNano()
			}
			if w.deadline <= now {
				n.stats.DeadlineDrops++
				continue
			}
		}
		return w, true
	}
	return lockWaiter{}, false
}

// lockState is the manager's view of one queue-based session lock. A
// critical section is open while holders is non-empty; session names
// which session it belongs to. Session 0 is plain mutual exclusion —
// at most one holder — and every exclusive code path below degenerates
// to the classic single-holder protocol. A non-zero session admits any
// number of concurrent holders of that same session while excluding
// every other session (group mutual exclusion).
type lockState struct {
	// holders maps each current critical-section holder to the
	// acquisition token of its request, echoed in its entry multicast so
	// the requester can tell a grant answering its live request from one
	// minted for a request it has since cancelled. entryEpochs maps each
	// holder to the grant epoch its entry was announced with — the epoch
	// the holder quotes when it leaves.
	holders     map[int]uint32
	entryEpochs map[int]uint32
	// session is the session of the open section; meaningless while
	// holders is empty.
	session uint32
	epoch   uint32
	queue   []lockWaiter
	// lastWinner is the winner of the newest exclusive grant (-1 once a
	// non-zero session opens); lastSession is the session of the newest
	// open. foreignEpoch is the epoch of the newest *foreign* entry — one
	// that rolls other nodes' speculative sections back. A speculative
	// write is clean iff its sender observed every foreign entry before
	// speculating (tag >= foreignEpoch). Consecutive exclusive grants to
	// the same node never roll its sections back, and entries into (or
	// reopens of) the session a speculator itself targets never roll that
	// speculation back, so neither advances foreignEpoch.
	lastWinner   int
	lastSession  uint32
	foreignEpoch uint32
	// needSeq is the sequence number the closing section's data reached;
	// under SetQuorumAcks the next grant waits until commit covers it.
	needSeq uint64
	// pending lists designated holders — present in holders/entryEpochs,
	// epoch assigned — whose entry multicast is deferred until the commit
	// watermark covers needSeq. Designating eagerly keeps the lock from
	// going holderless across the park: a clean speculation whose request
	// wins the park window has its guarded writes sequenced (it is a
	// holder) instead of suppressed not-holder, while the pessimistic
	// waiter still only *receives* the grant once the previous section's
	// data is quorum-held.
	pending []int
	// deferredAt marks when a handoff first parked behind the quorum-ack
	// watermark; the eventual grant records the wait in HistQuorumWait.
	deferredAt time.Time
	// watchAt is the stuck-operation watchdog's last clean observation of
	// this lock (watchdog.go): re-stamped whenever the lock looks healthy
	// or the watchdog trips, so a trip re-fires per budget, not per tick.
	watchAt time.Time

	// Lease bookkeeping (lease.go): leaseTo is the member the lock is
	// leased to (-1 none), leaseEpoch/leaseToken the entry the lease was
	// issued against, leaseExpiry when the member's clock runs it out
	// (advisory here — the root frees only on a return, release, or the
	// holder's rejoin), and revokeB the revoke demand's re-send schedule.
	leaseTo     int
	leaseExpiry time.Time
	leaseEpoch  uint32
	leaseToken  uint32
	revokeB     backoff
	// hintNode/hintToken name the head queued waiter the newest grant
	// designated as its holder's direct-handoff target (-1 none). The
	// waiter stays queued: a committed handoff dequeues it, anything
	// else leaves the classic churn to serve it.
	hintNode  int
	hintToken uint32
}

// free reports whether no critical section is open.
func (ls *lockState) free() bool { return len(ls.holders) == 0 }

// holds reports whether node is a current holder.
func (ls *lockState) holds(node int) bool {
	_, ok := ls.holders[node]
	return ok
}

// soleHolder returns the single holder of an exclusive section, or -1.
// Only meaningful when session is 0 (at most one holder then).
func (ls *lockState) soleHolder() int {
	for h := range ls.holders {
		return h
	}
	return -1
}

// parked reports whether node's entry announcement is deferred on the
// quorum watermark.
func (ls *lockState) parked(node int) bool {
	for _, p := range ls.pending {
		if p == node {
			return true
		}
	}
	return false
}

func newRootGroup(cfg GroupConfig, now time.Time) *rootGroup {
	r := &rootGroup{
		cfg:       cfg,
		auth:      make(map[VarID]int64),
		ring:      newSeqRing(cfg.HistorySize),
		locks:     make(map[LockID]*lockState),
		quorum:    len(cfg.Members)/2 + 1,
		lastHeard: make(map[int]time.Time),
		acks:      make(map[int]uint64),
		joinSeen:  make(map[int]uint64),
		lastSweep: now,
		storeSeen: make(map[[2]uint32]uint64),
	}
	// Every member starts "recently heard": the lease must observe a full
	// failAfter of silence before fencing a fresh reign. (The acting root
	// is skipped by checkFence, so its own entry is inert.)
	for _, m := range cfg.Members {
		r.lastHeard[m] = now
	}
	return r
}

func (r *rootGroup) lock(l LockID) *lockState {
	ls, ok := r.locks[l]
	if !ok {
		ls = &lockState{
			holders:     make(map[int]uint32),
			entryEpochs: make(map[int]uint32),
			lastWinner:  -1,
			leaseTo:     -1,
			hintNode:    -1,
		}
		r.locks[l] = ls
	}
	return ls
}

// queued reports whether node id is already waiting for the lock.
func (ls *lockState) queued(id int) bool {
	for _, q := range ls.queue {
		if q.node == id {
			return true
		}
	}
	return false
}

// rootHandle processes an up-message at the group root. Caller holds
// n.mu.
func (n *Node) rootHandle(r *rootGroup, m wire.Message) {
	if src := int(m.Src); src != n.id && r.cfg.memberOf(src) {
		// Any up-traffic from a configured member proves connectivity for
		// the fencing lease, whatever epoch the sender believes in. The
		// dispatch timestamp stands in for a per-message clock read: every
		// inner message of a batch frame arrived in the same dispatch.
		r.lastHeard[src] = n.msgNow
	}
	if m.Epoch != r.epoch {
		if m.Epoch < r.epoch {
			// The sender is following a deposed root. Tell it about this
			// reign so it resyncs; its retry then arrives with the right
			// epoch.
			n.stats.StaleEpochRejected++
			n.send(int(m.Src), wire.Message{
				Type:  wire.THeartbeat,
				Group: uint32(r.cfg.ID),
				Src:   int32(n.id),
				Seq:   r.ring.seq(),
				Val:   int64(n.id),
				Epoch: r.epoch,
			})
		}
		// A higher epoch means this node has itself been deposed; the new
		// root's heartbeat will demote it through the member path.
		return
	}
	if r.fenced {
		switch m.Type {
		case wire.TUpdate, wire.TLockReq, wire.TLockRel, wire.TLockCancel, wire.TSyncReq,
			wire.TLeaseRet, wire.THandoff:
			// A fenced root must not sequence, grant, or promise anything
			// new; park the traffic until quorum contact returns (or the
			// reign is deposed, which drops the queue — nothing in it was
			// ever acknowledged). Retransmits, snapshots, and acks below
			// still flow: they only serve already-sequenced state.
			n.fenceQueue(r, m)
			return
		}
	}
	switch m.Type {
	case wire.TUpdate:
		n.rootUpdate(r, m)
	case wire.TLockReq:
		n.rootLockReq(r, m)
	case wire.TLockRel:
		n.rootLockRel(r, m)
	case wire.TLockCancel:
		n.rootLockCancel(r, m)
	case wire.TNack:
		// A resync probe doubles as a cumulative ack: everything below the
		// sender's next expected sequence number has been applied there.
		if m.Seq > 0 {
			n.rootAck(r, int(m.Src), m.Seq-1)
		}
		n.rootNack(r, m)
	case wire.TAck:
		n.rootAck(r, int(m.Src), m.Seq)
	case wire.TSyncReq:
		n.rootSyncReq(r, m)
	case wire.TSnapReq:
		n.rootSnapSend(r, int(m.Src))
	case wire.TLeaseRet:
		n.rootLeaseRet(r, m)
	case wire.THandoff:
		n.rootHandoff(r, m)
	case wire.TDigestAck:
		// Digest comparisons only read already-sequenced state, so they
		// flow while fenced — a member that rotted during the fence is
		// found, and its repair snapshot serves committed state only.
		n.rootDigestAck(r, m)
	}
}

// rootUpdate sequences a shared write, discarding speculative writes to
// guarded variables from nodes that do not hold the lock — the root "is
// both the lock owner and the sequencing arbiter for all data changes
// within the group", so improper changes never enter the group.
func (n *Node) rootUpdate(r *rootGroup, m wire.Message) {
	if m.Guarded {
		// Idempotence against the origin's loss-recovery re-sends: a
		// nonce at or below the highest dispositioned one for this
		// (origin, var) is a duplicate — or a delay-reordered older
		// store the origin has since superseded — of a frame this reign
		// already sequenced or suppressed. Re-sequencing it would let an
		// old value overtake a newer one, and re-suppressing it would
		// double-count one rollback.
		if m.Deadline != 0 {
			k := [2]uint32{uint32(m.Origin), m.Var}
			nonce := uint64(m.Deadline)
			if nonce <= r.storeSeen[k] {
				return
			}
			r.storeSeen[k] = nonce
		}
		guard, ok := r.cfg.Guards[VarID(m.Var)]
		if !ok {
			n.stats.Suppressed++
			n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonNotHolder)
			return
		}
		ls := r.lock(guard)
		// Accept only from a holder, and only when the sender had
		// observed every foreign entry before speculating (its epoch tag
		// covers the newest foreign entry). A write whose tag predates a
		// foreign entry belongs to a section that rolled back (or will —
		// the sender's interrupt fires on that same entry), so it must
		// not enter the group. Entries the sender won itself — or other
		// nodes' entries into the sender's own session — are harmless:
		// they never roll the sender's sections back, and counting them
		// here would suppress the writes of a legitimately committed
		// section.
		if !ls.holds(int(m.Origin)) {
			// Not a holder on the books — unless its tagged epoch is exactly
			// the one the newest handoff hint reserved, in which case this
			// write is proof the peer transfer happened and the notice is
			// still in flight: commit the handoff first (lease.go), then
			// judge the write against the updated record.
			if !n.inferHandoff(r, guard, ls, int(m.Origin), uint32(m.Seq)) {
				n.stats.Suppressed++
				n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonNotHolder)
				return
			}
		}
		if m.Seq < uint64(ls.foreignEpoch) {
			n.stats.Suppressed++
			n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonStaleGrant)
			return
		}
	}
	r.auth[VarID(m.Var)] = m.Val
	n.multicast(r, wire.Message{
		Type:    wire.TSeqUpdate,
		Group:   m.Group,
		Src:     int32(n.id),
		Origin:  m.Origin,
		Var:     m.Var,
		Val:     m.Val,
		Guarded: m.Guarded,
	})
}

// rootLockReq queues or grants a lock request. A retry from a current
// holder re-announces its entry (covering an entry multicast that died
// with a deposed root) without minting a new one; retries from queued
// waiters are ignored. A request for the session already open enters
// concurrently — but only while nobody else waits, so a queued foreign
// session is never starved by a stream of same-session joins (the
// fairness rule of group mutual exclusion).
func (n *Node) rootLockReq(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	token := uint32(m.Seq)
	sess := m.Session
	if m.Deadline != 0 && m.Deadline <= n.clock.Now().UnixNano() {
		// The caller already gave up on this acquisition; queueing (or
		// re-announcing) would grant into the void and bounce. Its cancel
		// is on the way — and if the grant raced ahead of the deadline,
		// cancellation releases it through the normal path.
		n.stats.DeadlineDrops++
		return
	}
	if ls.holds(origin) {
		if ls.parked(origin) {
			// Designated but not yet announced: the retry changes nothing,
			// and announcing early would leak the grant past the quorum
			// watermark. serviceQuorum sends it when commit catches up.
			return
		}
		if n.leasing() && ls.leaseTo == origin && m.Var != 0 &&
			m.Var == ls.leaseEpoch && ls.holders[origin] == token {
			// Lease renewal: the holder quotes its lease's grant epoch in
			// Var (ordinary retries carry zero) and its granted token.
			// Extend while nobody waits; with waiters the answer is the
			// revoke demand, re-sent here in case the original was lost.
			now := n.clock.Now()
			if len(ls.queue) == 0 {
				ls.leaseExpiry = now.Add(n.leaseTTL)
				n.stats.LeaseGrants++
				n.send(origin, wire.Message{
					Type:     wire.TLeaseGrant,
					Group:    uint32(r.cfg.ID),
					Src:      int32(n.id),
					Origin:   int32(ls.leaseToken),
					Lock:     uint32(l),
					Var:      ls.leaseEpoch,
					Deadline: int64(n.leaseTTL),
					Epoch:    r.epoch,
				})
			} else {
				n.sendLeaseRevoke(r, l, ls, now)
			}
			return
		}
		// Re-announce with the granted request's token, not the retry's:
		// if they differ the member has moved on to a new acquisition and
		// must decline this entry (its decline releases it here and its
		// retry re-queues the new request).
		n.multicast(r, wire.Message{
			Type:    wire.TSeqLock,
			Group:   uint32(r.cfg.ID),
			Src:     int32(n.id),
			Origin:  int32(ls.holders[origin]),
			Lock:    uint32(l),
			Var:     ls.entryEpochs[origin],
			Val:     GrantValue(origin),
			Session: ls.session,
		})
		return
	}
	for i := range ls.queue {
		if ls.queue[i].node == origin {
			// Duplicate. A retry reuses its acquisition token, so a
			// differing one means this entry's request was cancelled but
			// the cancel was lost — the newer acquisition supersedes it.
			// Either way the retry's deadline is the freshest word on when
			// the caller gives up.
			ls.queue[i].token = token
			ls.queue[i].deadline = m.Deadline
			ls.queue[i].session = sess
			return
		}
	}
	if !ls.free() {
		if sess != 0 && sess == ls.session && len(ls.queue) == 0 {
			// Concurrent entering: the requested session is already open
			// and nobody waits, so the requester joins it immediately.
			// Once any other session queues, later same-session requests
			// line up behind it instead — the open session drains and the
			// waiter gets its turn within one section churn.
			n.stats.SessionJoins++
			n.grant(r, l, ls, lockWaiter{origin, token, m.Deadline, sess})
			return
		}
		ls.queue = append(ls.queue, lockWaiter{origin, token, m.Deadline, sess})
		n.emit(obs.EvLockQueued, r.cfg.ID, int64(l), int64(origin))
		if ls.leaseTo >= 0 {
			// The lock is leased out and now has a waiter: demand it back.
			// The demand re-sends from the lease tick until the return (or
			// the holder's release) lands.
			n.sendLeaseRevoke(r, l, ls, n.clock.Now())
		}
		return
	}
	// A free lock always designates the requester immediately; grant
	// itself defers the multicast when the quorum watermark has not
	// caught up, so the lock never sits holderless across the park.
	n.grant(r, l, ls, lockWaiter{origin, token, m.Deadline, sess})
}

// rootLockRel removes origin from the holder set, validating the quoted
// entry epoch so a duplicated release cannot free a later entry by the
// same node, and — when the section closes — immediately appends the
// next grant behind the closing section's (already sequenced) data.
func (n *Node) rootLockRel(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	if !ls.holds(origin) || ls.entryEpochs[origin] != m.Var {
		// A release quoting exactly the epoch the newest handoff hint
		// reserved is the new holder already leaving a section this
		// manager has not committed yet (the notice is in flight): commit
		// the transfer first, then re-validate (lease.go).
		if !n.inferHandoff(r, l, ls, origin, m.Var) {
			return // stale or duplicate release
		}
		if !ls.holds(origin) || ls.entryEpochs[origin] != m.Var {
			return
		}
	}
	n.leaveLock(r, l, ls, origin)
}

// rootLockCancel withdraws origin's request from the queue. If the grant
// raced the cancellation, origin's entry is released on its behalf
// instead, so an aborted acquisition can never strand the queue.
func (n *Node) rootLockCancel(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	n.stats.LockCancels++
	n.emit(obs.EvLockCancel, r.cfg.ID, int64(l), int64(origin))
	if ls.holds(origin) {
		n.leaveLock(r, l, ls, origin)
		return
	}
	for i, q := range ls.queue {
		if q.node == origin {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			if ls.hintNode == origin {
				// The designated handoff target withdrew. The holder may
				// still transfer to it (its hint is already out); the
				// notice path re-validates and the decline machinery
				// returns the lock if the waiter is truly gone.
				ls.hintNode = -1
			}
			return
		}
	}
}

// leaveLock removes origin from the holder set. While other holders of
// the open session remain, only a leave notice is multicast; when the
// last holder leaves the section closes and the next waiter's section
// opens (together with every queued waiter of the same session — they
// all enter concurrently), or the free value is multicast when nobody
// is queued. Under SetQuorumAcks a handoff's *announcement* is deferred
// until a quorum of members acked everything sequenced so far — the
// closing section's data in particular — so the next holder can never
// observe (and build on) writes that a root failover could lose; the
// winner itself is designated at once (see lockState.pending).
func (n *Node) leaveLock(r *rootGroup, l LockID, ls *lockState, origin int) {
	// A release (or cancel) of a designated-but-unannounced entry simply
	// retires it; the multicast that never went out owes nobody anything.
	for i, p := range ls.pending {
		if p == origin {
			ls.pending = append(ls.pending[:i], ls.pending[i+1:]...)
			break
		}
	}
	left := ls.entryEpochs[origin]
	delete(ls.holders, origin)
	delete(ls.entryEpochs, origin)
	n.metrics.Gauge(obs.GaugeSessHolders).Add(-1)
	if ls.leaseTo == origin {
		ls.leaseTo = -1 // the leaseholder leaving retires its lease
	}
	sess := ls.session
	if !ls.free() {
		// The session stays open; tell the group this holder is out so
		// member-side holder sets (and session-change waiters) stay exact.
		n.multicast(r, wire.Message{
			Type:    wire.TSeqLock,
			Group:   uint32(r.cfg.ID),
			Src:     int32(n.id),
			Lock:    uint32(l),
			Var:     left,
			Val:     RequestValue(origin),
			Session: sess,
		})
		return
	}
	if sess != 0 {
		n.stats.SessionCloses++
		n.emit(obs.EvSessClose, r.cfg.ID, int64(l), int64(sess))
	}
	if n.quorumAcks {
		ls.needSeq = r.ring.seq()
	}
	next, ok := n.popWaiter(ls)
	if !ok {
		// Nobody waiting: propagate the free value to all group memories.
		n.emit(obs.EvLockFree, r.cfg.ID, int64(l), 0)
		n.multicast(r, wire.Message{
			Type:    wire.TSeqLock,
			Group:   uint32(r.cfg.ID),
			Src:     int32(n.id),
			Lock:    uint32(l),
			Var:     ls.epoch,
			Val:     Free,
			Session: sess,
		})
		return
	}
	if sess != 0 {
		// Handoff out of a session: members still holding the old view
		// must see its last holder leave before the next section's entry
		// frames arrive, so a same-session reopen extends an exact holder
		// set. (An exclusive close needs no notice — the next entry frame
		// resets member views by itself, exactly as it always has.)
		n.multicast(r, wire.Message{
			Type:    wire.TSeqLock,
			Group:   uint32(r.cfg.ID),
			Src:     int32(n.id),
			Lock:    uint32(l),
			Var:     left,
			Val:     RequestValue(origin),
			Session: sess,
		})
	}
	n.grant(r, l, ls, next)
	n.admitSession(r, l, ls)
}

// admitSession grants every queued waiter of the session that just
// opened: concurrent entering means a session's waiters all enter with
// its head, rather than serializing one per section churn. Exclusive
// sections (session 0) admit exactly one holder, so this is a no-op.
func (n *Node) admitSession(r *rootGroup, l LockID, ls *lockState) {
	if ls.free() || ls.session == 0 {
		return
	}
	var now int64
	i := 0
	for i < len(ls.queue) {
		w := ls.queue[i]
		if w.session != ls.session {
			i++
			continue
		}
		ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
		if w.deadline != 0 {
			if now == 0 {
				now = n.clock.Now().UnixNano()
			}
			if w.deadline <= now {
				n.stats.DeadlineDrops++
				continue
			}
		}
		n.stats.SessionJoins++
		n.grant(r, l, ls, w)
	}
}

// grant designates the winner — holder-set entry, token, and grant
// epoch are assigned immediately — and multicasts the entry, unless the
// quorum-ack watermark has not yet covered the previous section's data,
// in which case only the multicast is deferred (serviceQuorum sends it
// once commit catches up). Designating before the park closes the
// window in which the lock would otherwise sit holderless and a clean
// speculation committing into it would be suppressed not-holder.
func (n *Node) grant(r *rootGroup, l LockID, ls *lockState, w lockWaiter) {
	winner := w.node
	// A classic grant supersedes whatever handoff target the previous
	// grant designated; sendGrant re-reserves from the live queue.
	ls.hintNode = -1
	if ls.free() {
		// Opening a new critical section. The entry is foreign — it rolls
		// other nodes' speculative sections back — unless it re-extends
		// what the previous section already allowed: the same exclusive
		// winner back to back, or a reopen of the same session (see
		// lockState.foreignEpoch).
		foreign := true
		if w.session == 0 && ls.lastSession == 0 && winner == ls.lastWinner {
			foreign = false
		}
		if w.session != 0 && w.session == ls.lastSession {
			foreign = false
		}
		if foreign {
			ls.foreignEpoch = ls.epoch
		}
		if w.session == 0 {
			ls.lastWinner = winner
		} else {
			ls.lastWinner = -1
			n.stats.SessionOpens++
			n.emit(obs.EvSessOpen, r.cfg.ID, int64(l), int64(w.session))
		}
		ls.lastSession = w.session
		ls.session = w.session
	}
	ls.holders[winner] = w.token
	ls.epoch++
	ls.entryEpochs[winner] = ls.epoch
	n.metrics.Gauge(obs.GaugeSessHolders).Add(1)
	if n.quorumAcks && r.commit < ls.needSeq {
		// Durability gate: the winner is designated (its clean speculative
		// writes sequence as holder writes) but must not *learn* of the
		// grant until a quorum holds the prefix its section would build on.
		ls.pending = append(ls.pending, winner)
		n.stats.QuorumAckWaits++
		if ls.deferredAt.IsZero() {
			ls.deferredAt = n.clock.Now()
		}
		n.emit(obs.EvLockParked, r.cfg.ID, int64(l), int64(winner))
		return
	}
	n.sendGrant(r, l, ls, winner)
}

// sendGrant multicasts winner's already-designated entry: its positive
// ID in the lock variable, tagged with its entry epoch and echoing the
// winning request's token so the member can verify the grant answers
// its current acquisition. The frame carries the open session; members
// route non-zero sessions through the holder-set view and session 0
// through the classic single-holder path.
func (n *Node) sendGrant(r *rootGroup, l LockID, ls *lockState, winner int) {
	n.stats.LockGrants++
	if !ls.deferredAt.IsZero() && len(ls.pending) == 0 {
		// This handoff sat behind the quorum-ack watermark; record how
		// long durability gated the lock.
		n.metrics.Hist(obs.HistQuorumWait).Record(n.clock.Now().Sub(ls.deferredAt))
		ls.deferredAt = time.Time{}
	}
	n.emit(obs.EvLockGrant, r.cfg.ID, int64(l), int64(winner))
	msg := wire.Message{
		Type:    wire.TSeqLock,
		Group:   uint32(r.cfg.ID),
		Src:     int32(n.id),
		Origin:  int32(ls.holders[winner]),
		Lock:    uint32(l),
		Var:     ls.entryEpochs[winner],
		Val:     GrantValue(winner),
		Session: ls.session,
	}
	// Piggyback the head waiter as the winner's direct-handoff target
	// (lease.go); with nobody queued, lease the lock to the winner
	// instead. Deadline is unused by classic grants, so old members
	// ignore the packing.
	if h := n.reserveHint(r, ls, winner); h != 0 {
		msg.Deadline = h
	}
	n.multicast(r, msg)
	n.maybeLease(r, l, ls, winner)
}

// rootNack retransmits the sequenced range [m.Seq, m.Val] to the
// requester, as far back as the ring's retained window still reaches.
func (n *Node) rootNack(r *rootGroup, m wire.Message) {
	from, to := m.Seq, uint64(m.Val)
	if to > r.ring.seq() {
		to = r.ring.seq()
	}
	var out []wire.Message
	for s := from; s <= to; s++ {
		h, ok := r.ring.lookup(s)
		if !ok {
			// Overwritten — older than the retained window.
			n.stats.LostHistory++
			continue
		}
		n.stats.Retransmits++
		out = append(out, h)
	}
	// Packed into batch frames when batching is on, so the repair of a
	// dropped batch costs as few frames as the original.
	n.sendStream(int(m.Src), r.cfg.ID, r.epoch, out)
}

// multicast stamps the next sequence number on a down-message, records it
// for retransmission, and fans it out — to every member directly, or to
// the root's tree children when the group uses tree fanout (members relay
// onward in ingest). The root applies locally through the same path, so
// its own member state stays in order.
func (n *Node) multicast(r *rootGroup, m wire.Message) {
	m.Seq = r.ring.tick()
	m.Epoch = r.epoch
	// Fold data messages into the reign digest and checkpoint the
	// cumulative sum at every sequence number (lock traffic folds
	// nothing but still claims a checkpoint slot), so any watermark a
	// member acks within the retained window is comparable directly.
	if m.Type == wire.TSeqUpdate {
		r.digest.Fold(m.Var, m.Seq, m.Val)
	}
	r.ring.publish(m, r.digest.Sum())
	if r.collecting {
		// Batch collection window: park the stamped message for the single
		// fan-out frame and advance the root's own member state now (tree
		// relay suppressed — rootEndBatch forwards the whole frame).
		r.outBatch = append(r.outBatch, m)
		if g, ok := n.groups[r.cfg.ID]; ok {
			n.ingestFwd(g, m, false)
		}
		if len(r.outBatch) >= wire.MaxBatch {
			// Keep frames within the codec bound; reopen the window for the
			// rest of the incoming batch.
			n.rootEndBatch(r)
			r.collecting = true
		}
		return
	}
	if !r.cfg.TreeFanout {
		for _, member := range r.cfg.Members {
			if member == n.id {
				continue
			}
			n.send(member, m)
		}
	}
	if g, ok := n.groups[r.cfg.ID]; ok {
		// Tree mode: ingest forwards to the root's children.
		n.ingest(g, m)
	}
}

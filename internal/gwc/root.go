package gwc

import (
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// rootGroup is the authoritative state the group root keeps: the write
// sequencer, the retransmission history, and the lock manager.
type rootGroup struct {
	cfg GroupConfig

	// epoch identifies this root's reign; every down-message carries it
	// and up-messages from other reigns are rejected. The founding root
	// reigns in epoch 0, each failover promotion starts a higher one.
	epoch uint32

	seq  uint64
	auth map[VarID]int64

	// history retains the last HistorySize sequenced messages for
	// NACK-driven retransmission; history[(s-1)%len] holds seq s when
	// still buffered.
	history []wire.Message

	locks map[LockID]*lockState

	// Batch collection window (batch.go): while an incoming batch frame is
	// being sequenced — one node-lock hold for the whole frame — multicast
	// parks its output here and rootEndBatch fans the contiguous sequence
	// range out as one frame per destination.
	collecting bool
	outBatch   []wire.Message

	// Fencing lease (fence.go): a root that heard from fewer than quorum
	// members (itself included) within failAfter stops sequencing —
	// up-traffic parks in fencedQ until contact returns, so a minority
	// partition cannot commit writes a healed group would discard.
	quorum    int
	fenced    bool
	fencedQ   []wire.Message
	lastHeard map[int]time.Time

	// Quorum-ack watermark (fence.go): acks[m] is the highest sequence
	// number member m cumulatively acknowledged, commit the quorum-th
	// highest of those (counting the root at r.seq). Sync barriers and,
	// under SetQuorumAcks, lock handoffs wait for commit to reach the
	// prefix they depend on.
	acks      map[int]uint64
	commit    uint64
	waitSyncs []syncBarrier
}

// syncBarrier is a deferred TSyncReq: answered once the commit watermark
// reaches needSeq.
type syncBarrier struct {
	src     int
	token   uint64
	needSeq uint64
}

// lockWaiter is one queued lock request: the requesting node and the
// acquisition token its request carried (see memberGroup.reqToken).
// Requests re-queued from failover reports carry token 0, which never
// matches a live acquisition; the member declines such a grant and its
// request retry re-queues with the real token.
type lockWaiter struct {
	node  int
	token uint32
}

// lockState is the manager's view of one queue-based lock.
type lockState struct {
	holder int // -1 when free
	epoch  uint32
	queue  []lockWaiter
	// holderToken is the acquisition token of the holder's request,
	// echoed in the grant multicast so the requester can tell a grant
	// answering its live request from one minted for a request it has
	// since cancelled.
	holderToken uint32
	// lastWinner is the winner of the newest grant; foreignEpoch is the
	// epoch of the newest grant to a node other than lastWinner. A
	// speculative write is clean iff its sender observed every foreign
	// grant before speculating (tag >= foreignEpoch): consecutive grants
	// to the same node never roll its sections back, so they must not
	// widen the gap a clean write's tag has to bridge.
	lastWinner   int
	foreignEpoch uint32
	// needSeq is the sequence number the releaser's data reached; under
	// SetQuorumAcks the next grant waits until commit covers it.
	needSeq uint64
	// deferredAt marks when a handoff first parked behind the quorum-ack
	// watermark; the eventual grant records the wait in HistQuorumWait.
	deferredAt time.Time
}

func newRootGroup(cfg GroupConfig, now time.Time) *rootGroup {
	r := &rootGroup{
		cfg:       cfg,
		auth:      make(map[VarID]int64),
		history:   make([]wire.Message, cfg.HistorySize),
		locks:     make(map[LockID]*lockState),
		quorum:    len(cfg.Members)/2 + 1,
		lastHeard: make(map[int]time.Time),
		acks:      make(map[int]uint64),
	}
	// Every member starts "recently heard": the lease must observe a full
	// failAfter of silence before fencing a fresh reign. (The acting root
	// is skipped by checkFence, so its own entry is inert.)
	for _, m := range cfg.Members {
		r.lastHeard[m] = now
	}
	return r
}

func (r *rootGroup) lock(l LockID) *lockState {
	ls, ok := r.locks[l]
	if !ok {
		ls = &lockState{holder: -1, lastWinner: -1}
		r.locks[l] = ls
	}
	return ls
}

// queued reports whether node id is already waiting for the lock.
func (ls *lockState) queued(id int) bool {
	for _, q := range ls.queue {
		if q.node == id {
			return true
		}
	}
	return false
}

// rootHandle processes an up-message at the group root. Caller holds
// n.mu.
func (n *Node) rootHandle(r *rootGroup, m wire.Message) {
	if src := int(m.Src); src != n.id && r.cfg.memberOf(src) {
		// Any up-traffic from a configured member proves connectivity for
		// the fencing lease, whatever epoch the sender believes in.
		r.lastHeard[src] = n.clock.Now()
	}
	if m.Epoch != r.epoch {
		if m.Epoch < r.epoch {
			// The sender is following a deposed root. Tell it about this
			// reign so it resyncs; its retry then arrives with the right
			// epoch.
			n.stats.StaleEpochRejected++
			n.send(int(m.Src), wire.Message{
				Type:  wire.THeartbeat,
				Group: uint32(r.cfg.ID),
				Src:   int32(n.id),
				Seq:   r.seq,
				Val:   int64(n.id),
				Epoch: r.epoch,
			})
		}
		// A higher epoch means this node has itself been deposed; the new
		// root's heartbeat will demote it through the member path.
		return
	}
	if r.fenced {
		switch m.Type {
		case wire.TUpdate, wire.TLockReq, wire.TLockRel, wire.TLockCancel, wire.TSyncReq:
			// A fenced root must not sequence, grant, or promise anything
			// new; park the traffic until quorum contact returns (or the
			// reign is deposed, which drops the queue — nothing in it was
			// ever acknowledged). Retransmits, snapshots, and acks below
			// still flow: they only serve already-sequenced state.
			n.fenceQueue(r, m)
			return
		}
	}
	switch m.Type {
	case wire.TUpdate:
		n.rootUpdate(r, m)
	case wire.TLockReq:
		n.rootLockReq(r, m)
	case wire.TLockRel:
		n.rootLockRel(r, m)
	case wire.TLockCancel:
		n.rootLockCancel(r, m)
	case wire.TNack:
		// A resync probe doubles as a cumulative ack: everything below the
		// sender's next expected sequence number has been applied there.
		if m.Seq > 0 {
			n.rootAck(r, int(m.Src), m.Seq-1)
		}
		n.rootNack(r, m)
	case wire.TAck:
		n.rootAck(r, int(m.Src), m.Seq)
	case wire.TSyncReq:
		n.rootSyncReq(r, m)
	case wire.TSnapReq:
		n.rootSnapSend(r, int(m.Src))
	}
}

// rootUpdate sequences a shared write, discarding speculative writes to
// guarded variables from nodes that do not hold the lock — the root "is
// both the lock owner and the sequencing arbiter for all data changes
// within the group", so improper changes never enter the group.
func (n *Node) rootUpdate(r *rootGroup, m wire.Message) {
	if m.Guarded {
		guard, ok := r.cfg.Guards[VarID(m.Var)]
		if !ok {
			n.stats.Suppressed++
			n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonNotHolder)
			return
		}
		ls := r.lock(guard)
		// Accept only from the holder, and only when the sender had
		// observed every grant to another node before speculating (its
		// epoch tag covers the newest foreign grant). A write whose tag
		// predates a foreign grant belongs to a section that rolled back
		// (or will — the sender's interrupt fires on that same grant), so
		// it must not enter the group. Grants the holder won itself in
		// the gap are harmless: they never roll the holder's sections
		// back, and counting them here would suppress the writes of a
		// legitimately committed section (a cancel racing its own grant
		// re-grants the same node back to back).
		if ls.holder != int(m.Origin) {
			n.stats.Suppressed++
			n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonNotHolder)
			return
		}
		if m.Seq < uint64(ls.foreignEpoch) {
			n.stats.Suppressed++
			n.emit(obs.EvSuppressed, r.cfg.ID, int64(m.Var), obs.ReasonStaleGrant)
			return
		}
	}
	r.auth[VarID(m.Var)] = m.Val
	n.multicast(r, wire.Message{
		Type:    wire.TSeqUpdate,
		Group:   m.Group,
		Src:     int32(n.id),
		Origin:  m.Origin,
		Var:     m.Var,
		Val:     m.Val,
		Guarded: m.Guarded,
	})
}

// rootLockReq queues or grants a lock request. A retry from the current
// holder re-announces the grant (covering a grant multicast that died
// with a deposed root) without minting a new one; retries from queued
// waiters are ignored.
func (n *Node) rootLockReq(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	token := uint32(m.Seq)
	if ls.holder == origin {
		// Re-announce with the granted request's token, not the retry's:
		// if they differ the member has moved on to a new acquisition and
		// must decline this grant (its decline releases the lock here and
		// its retry re-queues the new request).
		n.multicast(r, wire.Message{
			Type:   wire.TSeqLock,
			Group:  uint32(r.cfg.ID),
			Src:    int32(n.id),
			Origin: int32(ls.holderToken),
			Lock:   uint32(l),
			Var:    ls.epoch,
			Val:    GrantValue(origin),
		})
		return
	}
	for i := range ls.queue {
		if ls.queue[i].node == origin {
			// Duplicate. A retry reuses its acquisition token, so a
			// differing one means this entry's request was cancelled but
			// the cancel was lost — the newer acquisition supersedes it.
			ls.queue[i].token = token
			return
		}
	}
	if ls.holder != -1 {
		ls.queue = append(ls.queue, lockWaiter{origin, token})
		n.emit(obs.EvLockQueued, r.cfg.ID, int64(l), int64(origin))
		return
	}
	if n.quorumAcks && r.commit < ls.needSeq {
		// The last holder's data is not quorum-held yet; park the request
		// behind the watermark (serviceQuorum grants it).
		ls.queue = append(ls.queue, lockWaiter{origin, token})
		n.stats.QuorumAckWaits++
		if ls.deferredAt.IsZero() {
			ls.deferredAt = n.clock.Now()
		}
		n.emit(obs.EvLockQueued, r.cfg.ID, int64(l), int64(origin))
		return
	}
	n.grant(r, l, ls, lockWaiter{origin, token})
}

// rootLockRel releases the lock, validating the quoted grant epoch so a
// duplicated release cannot free a later holder's grant, and immediately
// appends the next grant behind the releaser's (already sequenced) data.
func (n *Node) rootLockRel(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	if ls.holder != int(m.Origin) || ls.epoch != m.Var {
		return // stale or duplicate release
	}
	n.releaseLock(r, l, ls)
}

// rootLockCancel withdraws origin's request from the queue. If the grant
// raced the cancellation, the lock is released on the requester's behalf
// instead, so an aborted acquisition can never strand the queue.
func (n *Node) rootLockCancel(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	n.stats.LockCancels++
	n.emit(obs.EvLockCancel, r.cfg.ID, int64(l), int64(origin))
	if ls.holder == origin {
		n.releaseLock(r, l, ls)
		return
	}
	for i, q := range ls.queue {
		if q.node == origin {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// releaseLock frees the lock and immediately grants the next waiter, or
// multicasts the free value when nobody is queued. Under SetQuorumAcks
// the handoff is deferred until a quorum of members acked everything
// sequenced so far — the releaser's section data in particular — so the
// next holder can never observe (and build on) writes that a root
// failover could lose.
func (n *Node) releaseLock(r *rootGroup, l LockID, ls *lockState) {
	ls.holder = -1
	if n.quorumAcks {
		ls.needSeq = r.seq
	}
	if len(ls.queue) > 0 {
		if n.quorumAcks && r.commit < ls.needSeq {
			n.stats.QuorumAckWaits++
			if ls.deferredAt.IsZero() {
				ls.deferredAt = n.clock.Now()
			}
			return // serviceQuorum grants when the watermark catches up
		}
		next := ls.queue[0]
		ls.queue = ls.queue[1:]
		n.grant(r, l, ls, next)
		return
	}
	// Nobody waiting: propagate the free value to all group memories.
	n.emit(obs.EvLockFree, r.cfg.ID, int64(l), 0)
	n.multicast(r, wire.Message{
		Type:  wire.TSeqLock,
		Group: uint32(r.cfg.ID),
		Src:   int32(n.id),
		Lock:  uint32(l),
		Var:   ls.epoch,
		Val:   Free,
	})
}

// grant writes the winner's positive ID into the lock variable and
// multicasts it, echoing the winning request's token so the member can
// verify the grant answers its current acquisition.
func (n *Node) grant(r *rootGroup, l LockID, ls *lockState, w lockWaiter) {
	winner := w.node
	ls.holder = winner
	ls.holderToken = w.token
	if winner != ls.lastWinner {
		// The grant being superseded (epoch ls.epoch) went to a different
		// node, so from the new winner's perspective it is the newest
		// foreign grant (see lockState).
		ls.foreignEpoch = ls.epoch
		ls.lastWinner = winner
	}
	ls.epoch++
	n.stats.LockGrants++
	if !ls.deferredAt.IsZero() {
		// This handoff sat behind the quorum-ack watermark; record how
		// long durability gated the lock.
		n.metrics.Hist(obs.HistQuorumWait).Record(n.clock.Now().Sub(ls.deferredAt))
		ls.deferredAt = time.Time{}
	}
	n.emit(obs.EvLockGrant, r.cfg.ID, int64(l), int64(winner))
	n.multicast(r, wire.Message{
		Type:   wire.TSeqLock,
		Group:  uint32(r.cfg.ID),
		Src:    int32(n.id),
		Origin: int32(w.token),
		Lock:   uint32(l),
		Var:    ls.epoch,
		Val:    GrantValue(winner),
	})
}

// rootNack retransmits the sequenced range [m.Seq, m.Val] to the
// requester, as far back as the history buffer still reaches.
func (n *Node) rootNack(r *rootGroup, m wire.Message) {
	from, to := m.Seq, uint64(m.Val)
	if to > r.seq {
		to = r.seq
	}
	var out []wire.Message
	for s := from; s <= to; s++ {
		if r.seq > uint64(len(r.history)) && s <= r.seq-uint64(len(r.history)) {
			// Older than the retained window.
			n.stats.LostHistory++
			continue
		}
		h := r.history[(s-1)%uint64(len(r.history))]
		if h.Seq != s {
			n.stats.LostHistory++
			continue
		}
		n.stats.Retransmits++
		out = append(out, h)
	}
	// Packed into batch frames when batching is on, so the repair of a
	// dropped batch costs as few frames as the original.
	n.sendStream(int(m.Src), r.cfg.ID, r.epoch, out)
}

// multicast stamps the next sequence number on a down-message, records it
// for retransmission, and fans it out — to every member directly, or to
// the root's tree children when the group uses tree fanout (members relay
// onward in ingest). The root applies locally through the same path, so
// its own member state stays in order.
func (n *Node) multicast(r *rootGroup, m wire.Message) {
	r.seq++
	m.Seq = r.seq
	m.Epoch = r.epoch
	r.history[(r.seq-1)%uint64(len(r.history))] = m
	if r.collecting {
		// Batch collection window: park the stamped message for the single
		// fan-out frame and advance the root's own member state now (tree
		// relay suppressed — rootEndBatch forwards the whole frame).
		r.outBatch = append(r.outBatch, m)
		if g, ok := n.groups[r.cfg.ID]; ok {
			n.ingestFwd(g, m, false)
		}
		if len(r.outBatch) >= wire.MaxBatch {
			// Keep frames within the codec bound; reopen the window for the
			// rest of the incoming batch.
			n.rootEndBatch(r)
			r.collecting = true
		}
		return
	}
	if !r.cfg.TreeFanout {
		for _, member := range r.cfg.Members {
			if member == n.id {
				continue
			}
			n.send(member, m)
		}
	}
	if g, ok := n.groups[r.cfg.ID]; ok {
		// Tree mode: ingest forwards to the root's children.
		n.ingest(g, m)
	}
}

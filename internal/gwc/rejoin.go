package gwc

import (
	"context"
	"fmt"
	"time"

	"optsync/internal/obs"
	"optsync/internal/topo"
	"optsync/internal/wire"
)

// Member crash recovery.
//
// A crashed-and-restarted node still has its configuration (it re-runs
// the same program) but none of its volatile protocol state: variable
// copies, the applied sequence position, lock state. Rejoin resets the
// member side to a fresh join and runs a re-admission handshake with
// whatever root currently reigns:
//
//   - the member sends TJoinReq every maintenance tick (instead of its
//     resync probe) until answered;
//   - the root frees any lock the rejoiner held or waited for (its
//     sections died with its memory; its stale guarded writes carry old
//     grant epochs and are suppressed), zeroes its ack, answers with
//     TJoinAck naming the current epoch, and streams a state snapshot
//     over the failover snapshot path;
//   - a non-root member that receives the request points the rejoiner at
//     the reign it follows (the rejoiner's idea of the root may predate
//     a failover), and the corrective heartbeat converts the rejoin into
//     ordinary epoch adoption.
//
// Because a reign's sequence numbers are globally consistent, live
// multicasts that land between the TJoinAck and the snapshot buffer
// cleanly in pending and replay once the snapshot re-bases the member.

// syncWaiter parks one Sync caller until the root's TSyncAck arrives
// (ok=true) or the node closes (ok=false). since stamps when the
// barrier was issued (for the stuck-operation watchdog) and bo is its
// adaptive resend schedule, both driven by the maintenance tick.
type syncWaiter struct {
	ch    chan struct{}
	ok    bool
	since time.Time
	bo    backoff
}

// Rejoin re-enters a group this node already joined, discarding all
// volatile member state — a restarted process recovering its groups, or
// a chaos test reviving a crashed node. Held locks and queued requests
// are abandoned (the root frees them on re-admission); registered hooks,
// watches, and blocked waiters survive and fire again as the snapshot
// re-bases the local copies. The handshake itself is asynchronous:
// Rejoin returns once the request is on the wire, and the maintenance
// tick re-sends it until the root answers. Roots cannot rejoin their own
// reign.
func (n *Node) Rejoin(gid GroupID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("gwc: node %d is closed: %w", n.id, ErrClosed)
	}
	g, err := n.group(gid)
	if err != nil {
		return err
	}
	if _, isRoot := n.roots[gid]; isRoot {
		return fmt.Errorf("gwc: node %d roots group %d and cannot rejoin its own reign", n.id, gid)
	}
	g.mem = make(map[VarID]int64)
	g.eager = make(map[VarID]int64)
	g.eagerMsg = make(map[VarID]wire.Message)
	g.eagerB = make(map[VarID]*backoff)
	g.lockVal = make(map[LockID]int64)
	g.grantEpoch = make(map[LockID]uint32)
	g.lockDone = make(map[LockID]uint32)
	g.nextSeq = 1
	g.pending = make(map[uint64]wire.Message)
	g.suspected = make(map[int]bool)
	g.want = make(map[LockID]bool)
	g.sess = make(map[LockID]*sessView)
	g.reqSession = make(map[LockID]uint32)
	g.lease = make(map[LockID]*memberLease)
	g.hint = make(map[LockID]handoffHint)
	g.pendingHandoff = make(map[LockID]*handoffNotice)
	g.handoffIn = make(map[LockID]wire.Message)
	g.electing = false
	g.snapWanted = false
	g.snapBuf = nil
	g.reports = nil
	g.suspended = false
	g.suspendQ = nil
	g.acked = 0
	g.batchQ = nil
	clear(g.batchIdx)
	if g.batchTimer != nil {
		g.batchTimer.Stop()
	}
	g.children = nil
	g.lastRoot = n.clock.Now()
	// The discarded copy takes its digest (and any divergence verdict)
	// with it; the admission snapshot re-anchors both.
	g.digest.Reset()
	g.diverged = false
	g.rejoining = true
	// Each attempt mints a fresh rejoin token, carried in Seq: the root
	// remembers the last token it served and answers duplicates of the
	// same attempt idempotently (see handleJoinReq). The stamp starts the
	// watchdog's clock; every retry schedule restarts from its base, and
	// joinB is armed past the send below so the first tick retry waits
	// out a full base delay.
	g.joinToken++
	g.rejoinBegan = n.clock.Now()
	clear(g.reqSince)
	g.resetRetrySchedules()
	n.arm(&g.joinB, g.rejoinBegan, n.boBase(), n.boCap())
	n.send(g.rootID, wire.Message{
		Type:  wire.TJoinReq,
		Group: uint32(gid),
		Src:   int32(n.id),
		Seq:   uint64(g.joinToken),
		Epoch: g.epoch,
	})
	return nil
}

// handleJoinReq processes a re-admission request, on whichever node it
// reaches: the reigning root re-admits, anyone else redirects. The
// request is epoch-agnostic — a rejoiner by definition does not know the
// current epoch. Caller holds n.mu.
func (n *Node) handleJoinReq(m wire.Message) {
	gid := GroupID(m.Group)
	src := int(m.Src)
	if r, ok := n.roots[gid]; ok {
		if !r.cfg.memberOf(src) {
			n.protoErr("gwc: node %d got join request from non-member %d for group %d", n.id, src, m.Group)
			return
		}
		r.lastHeard[src] = n.clock.Now()
		// Admission is idempotent per rejoin attempt: the token the member
		// minted (Seq; 0 from pre-token senders, which always take the full
		// path) keys the destructive half. A duplicate TJoinReq — a retry
		// whose original answer or snapshot was lost — must still be
		// answered, but must NOT re-free locks: the member may have been
		// admitted by the first copy and re-acquired a lock since, and
		// freeing that one would hand its critical section to someone else.
		token := m.Seq
		if token == 0 || r.joinSeen[src] != token {
			r.joinSeen[src] = token
			// The rejoiner's volatile state is gone: drop it from every lock
			// queue and release anything it held. The release goes through
			// rootHandle so a fenced reign parks it like any other release
			// instead of multicasting a grant while fenced.
			for _, l := range sortedKeys(r.locks) {
				ls := r.locks[l]
				for i, q := range ls.queue {
					if q.node == src {
						ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
						break
					}
				}
				if ls.holds(src) {
					// Free only the rejoiner's own entry — under a session
					// other holders' sections are live and must keep running.
					n.rootHandle(r, wire.Message{
						Type:    wire.TLockRel,
						Group:   uint32(gid),
						Src:     int32(src),
						Origin:  int32(src),
						Lock:    uint32(l),
						Var:     ls.entryEpochs[src],
						Epoch:   r.epoch,
						Session: ls.session,
					})
				}
			}
			// Its acked prefix died with its memory; the quorum watermark
			// must not keep crediting it (commit itself stays monotonic).
			r.acks[src] = 0
			n.stats.Rejoins++
			n.emit(obs.EvRejoined, gid, int64(src), int64(r.epoch))
		}
		n.send(src, wire.Message{
			Type:  wire.TJoinAck,
			Group: uint32(gid),
			Src:   int32(n.id),
			Seq:   r.ring.seq(),
			Val:   int64(n.id),
			Epoch: r.epoch,
		})
		n.rootSnapSend(r, src)
		return
	}
	if g, ok := n.groups[gid]; ok {
		// Not the root (any more): point the rejoiner at the reign this
		// node follows; the corrective heartbeat turns its rejoin into
		// ordinary epoch adoption.
		n.maybeNotice(g, src)
		return
	}
	n.protoErr("gwc: node %d got join request for unknown group %d", n.id, m.Group)
}

// handleJoinAck completes the rejoin handshake on the member: adopt the
// answering root's epoch and wait for the snapshot stream that follows.
// Caller holds n.mu.
func (n *Node) handleJoinAck(g *memberGroup, m wire.Message) {
	if !g.rejoining {
		return // duplicate answer, or adoption already superseded the rejoin
	}
	g.rejoining = false
	g.epoch = m.Epoch
	g.rootID = int(m.Src)
	g.lastRoot = n.clock.Now()
	g.electing = false
	g.resetRetrySchedules()
	g.snapWanted = true
	g.snapBuf = nil
	g.nextSeq = 1
	g.pending = make(map[uint64]wire.Message)
	g.acked = 0
	g.digest.Reset()
	g.diverged = false
	delete(g.suspected, g.rootID)
	if g.cfg.TreeFanout && g.rootID == g.cfg.Root {
		// Still the founding reign: resume this node's relay duties in the
		// spanning tree. Failover reigns use direct fanout.
		tree, err := topo.SpanningTree(topo.MustNew(len(g.cfg.Members)), g.cfg.Root)
		if err == nil {
			g.children = tree.Children[n.id]
		}
	}
	n.stats.Rejoins++
	n.emit(obs.EvRejoined, g.cfg.ID, int64(n.id), int64(g.epoch))
}

// Sync is SyncContext without cancellation.
func (n *Node) Sync(gid GroupID) error {
	return n.SyncContext(context.Background(), gid)
}

// SyncContext blocks until every Write this node issued to the group
// before the call is committed at the root: sequenced, and — under
// SetQuorumAcks — applied by a majority of the membership, which makes
// the writes durable across any quorum-gated failover. Queued batch
// writes are flushed first, and the barrier rides the FIFO link behind
// them. A fenced root holds the answer until its lease recovers, so
// SyncContext doubles as a "did my writes actually commit?" probe during
// a partition. If a failover lands between the flush and the answer, the
// barrier is re-issued to the new root and only vouches for what that
// reign sequenced — unsequenced writes from the old reign are lost, as
// eager writes always are.
func (n *Node) SyncContext(ctx context.Context, gid GroupID) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if n.closed {
		n.mu.Unlock()
		return fmt.Errorf("gwc: node %d is closed: %w", n.id, ErrClosed)
	}
	n.flushWrites(g, flushSync)
	g.syncToken++
	tok := g.syncToken
	now := n.clock.Now()
	sw := &syncWaiter{ch: make(chan struct{}), since: now}
	g.syncPending[tok] = sw
	n.arm(&sw.bo, now, n.boBase(), n.boCap())
	// The root answers directly; on loss or failover the maintenance tick
	// re-sends every pending token on its backoff schedule (roots dedupe
	// by token). A root node syncing its own group sends to itself, like
	// its writes do.
	n.send(g.rootID, wire.Message{
		Type:  wire.TSyncReq,
		Group: uint32(gid),
		Src:   int32(n.id),
		Seq:   tok,
		Epoch: g.epoch,
	})
	n.mu.Unlock()
	select {
	case <-ctx.Done():
		n.mu.Lock()
		delete(g.syncPending, tok)
		n.mu.Unlock()
		return ctx.Err()
	case <-sw.ch:
		n.mu.Lock()
		ok := sw.ok
		n.mu.Unlock()
		if !ok {
			return fmt.Errorf("gwc: node %d closed during sync barrier: %w", n.id, ErrClosed)
		}
		return nil
	}
}

// handleSyncAck wakes the Sync caller whose token the root echoed.
// Caller holds n.mu.
func (n *Node) handleSyncAck(g *memberGroup, m wire.Message) {
	sw, ok := g.syncPending[m.Seq]
	if !ok {
		return // cancelled, or a duplicate answer
	}
	delete(g.syncPending, m.Seq)
	sw.ok = true
	close(sw.ch)
}

package gwc

import (
	"testing"
	"time"

	"optsync/internal/transport"
)

// Rejoin edge cases, table-driven over the chaos harness: each case
// crashes node 2 somewhere awkward in the protocol's state space and
// checks that re-admission leaves the group fully functional — locks
// flow, writes converge, and the rejoiner is a first-class member
// again. The detsim harness explores the same territory across seeded
// schedules (RejoinUnderLoad); these pin the named edges in tier 1.
func TestRejoinEdgeCases(t *testing.T) {
	const victim = 2
	cases := []struct {
		name    string
		nodes   int
		guarded bool
		run     func(t *testing.T, c *cluster, fl *transport.Flaky)
	}{
		{
			// The victim dies inside its critical section. Re-admission
			// must free the lock (the section died with its memory), let
			// the blocked waiter in, and still let the rejoiner acquire
			// fresh afterwards.
			name:    "holding the lock",
			nodes:   3,
			guarded: true,
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				if err := c.nodes[victim].Acquire(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				fl.Crash(victim)
				if err := c.nodes[1].SendLockRequest(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				fl.Revive(victim)
				if err := c.nodes[victim].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
				if ok, err := c.nodes[1].WaitLockGrant(tGroup, tLock); err != nil || !ok {
					t.Fatalf("waiter never granted after holder rejoined: ok=%v err=%v", ok, err)
				}
				if err := c.nodes[1].Release(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				if err := c.nodes[victim].Acquire(tGroup, tLock); err != nil {
					t.Fatalf("rejoiner cannot reacquire: %v", err)
				}
				if err := c.nodes[victim].Release(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// The victim dies while queued behind a live holder. Its stale
			// queue entry must be dropped on re-admission — the grant must
			// skip the rejoiner (whose request died with its memory) and
			// the lock must still flow to everyone afterwards.
			name:    "queued behind a holder",
			nodes:   3,
			guarded: true,
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				if err := c.nodes[victim].SendLockRequest(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				waitFor(t, c, 5*time.Second, "the victim to queue", func() bool {
					c.nodes[0].mu.Lock()
					defer c.nodes[0].mu.Unlock()
					return c.nodes[0].roots[tGroup].lock(tLock).queued(victim)
				})
				fl.Crash(victim)
				fl.Revive(victim)
				if err := c.nodes[victim].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
				waitFor(t, c, 5*time.Second, "re-admission", func() bool {
					return c.nodes[victim].Stats().Rejoins >= 1
				})
				if err := c.nodes[1].Release(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
				// The freed lock must be acquirable by anyone — including
				// the rejoiner whose phantom queue entry is gone.
				if err := c.nodes[victim].Acquire(tGroup, tLock); err != nil {
					t.Fatalf("rejoiner cannot acquire after phantom dequeue: %v", err)
				}
				if err := c.nodes[victim].Release(tGroup, tLock); err != nil {
					t.Fatal(err)
				}
			},
		},
		{
			// The victim revives while the cluster is mid-election after a
			// root crash — and with 4 members the quorum gate needs its
			// report, so the election can only finish BECAUSE the rejoiner
			// comes back. The corrective heartbeat of the eventual winner
			// converts the dangling rejoin into epoch adoption.
			name:    "racing an election",
			nodes:   4,
			guarded: false,
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				if err := c.nodes[1].Write(tGroup, tVar, 1); err != nil {
					t.Fatal(err)
				}
				for _, n := range c.nodes {
					waitValue(t, n, tVar, 1)
				}
				fl.Crash(victim)
				fl.Crash(0)
				waitFor(t, c, 10*time.Second, "the election to begin", func() bool {
					return c.nodes[1].Stats().Elections >= 1 || c.nodes[3].Stats().Elections >= 1
				})
				fl.Revive(victim)
				if err := c.nodes[victim].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
				waitFor(t, c, 10*time.Second, "the quorum-gated failover", func() bool {
					return c.nodes[1].Stats().Failovers >= 1 || c.nodes[3].Stats().Failovers >= 1
				})
				if err := c.nodes[1].Write(tGroup, tVarB, 5); err != nil {
					t.Fatal(err)
				}
				waitValue(t, c.nodes[victim], tVarB, 5)
				waitValue(t, c.nodes[victim], tVar, 1)
			},
		},
		{
			// Rejoin called twice back to back (a restart loop, or an
			// operator retrying). The second handshake must not corrupt
			// the first's re-based state or wedge the ack plumbing.
			name:    "double rejoin",
			nodes:   3,
			guarded: false,
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				if err := c.nodes[1].Write(tGroup, tVar, 1); err != nil {
					t.Fatal(err)
				}
				for _, n := range c.nodes {
					waitValue(t, n, tVar, 1)
				}
				fl.Crash(victim)
				if err := c.nodes[1].Write(tGroup, tVar, 2); err != nil {
					t.Fatal(err)
				}
				waitValue(t, c.nodes[0], tVar, 2)
				fl.Revive(victim)
				if err := c.nodes[victim].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
				if err := c.nodes[victim].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
				waitValue(t, c.nodes[victim], tVar, 2)
				waitFor(t, c, 5*time.Second, "re-admission on both ends", func() bool {
					return c.nodes[victim].Stats().Rejoins >= 1 && c.nodes[0].Stats().Rejoins >= 1
				})
				// Still a full citizen: its writes sequence and converge.
				if err := c.nodes[victim].Write(tGroup, tVarB, 7); err != nil {
					t.Fatal(err)
				}
				for _, n := range c.nodes {
					waitValue(t, n, tVarB, 7)
				}
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			c, fl := newChaosCluster(t, tc.nodes, tc.guarded)
			tc.run(t, c, fl)
		})
	}
}

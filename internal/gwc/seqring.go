package gwc

import (
	"sync/atomic"

	"optsync/internal/wire"
)

// seqClock is the sequencer's logical clock: a bare atomic counter in
// the classic LogicalClock shape — Tick advances and returns the new
// value, Tock observes without advancing, Leap rebases. The root is the
// clock's single writer (Tick/Leap run only under its dispatch), but
// because every access is atomic, any goroutine may Tock a consistent
// watermark without the node lock.
type seqClock struct{ v atomic.Uint64 }

func (c *seqClock) Tick() uint64   { return c.v.Add(1) }
func (c *seqClock) Tock() uint64   { return c.v.Load() }
func (c *seqClock) Leap(to uint64) { c.v.Store(to) }

// seqRing is the root's sequencer and retransmission window in one
// structure: a power-of-two ring of the most recently sequenced
// messages, each slot stamped with the sequence number it holds, plus
// the reign's cumulative digest checkpoint at that sequence.
//
// Single-writer invariant: exactly one goroutine — the root's message
// dispatch — calls tick and publish, so slots need no lock and the
// stamp order (invalidate, fill, stamp) is a plain release protocol.
// Readers (NACK retransmission, digest comparison, heartbeat watermarks)
// validate a slot by reloading its stamp around the copy, so they never
// act on a half-overwritten entry even if they someday run outside the
// node lock. A batch frame's messages are stamped by consecutive ticks
// inside one collection window, so each frame occupies one contiguous
// sequence range with no lock hold backing that contiguity — the atomic
// counter alone orders the reign.
type seqRing struct {
	clk   seqClock
	mask  uint64
	slots []seqSlot
}

// seqSlot holds one sequenced message and the reign digest checkpoint
// as of that message. stamp is the publication word: it carries the
// sequence number the slot currently holds, and is zero while the slot
// is being rewritten.
type seqSlot struct {
	stamp  atomic.Uint64
	msg    wire.Message
	digest uint64
}

// newSeqRing builds a ring retaining at least `size` sequenced messages
// (rounded up to a power of two so slot indexing is a mask, not a
// division).
func newSeqRing(size int) *seqRing {
	n := 1
	for n < size {
		n <<= 1
	}
	return &seqRing{mask: uint64(n - 1), slots: make([]seqSlot, n)}
}

// seq is the current sequence watermark (the last stamped number).
func (r *seqRing) seq() uint64 { return r.clk.Tock() }

// tick reserves and returns the next sequence number. Single writer
// only.
func (r *seqRing) tick() uint64 { return r.clk.Tick() }

// publish records a stamped message (m.Seq must come from tick) and the
// cumulative digest at that sequence into the ring, overwriting the
// slot that held m.Seq-len(slots). Single writer only.
func (r *seqRing) publish(m wire.Message, digest uint64) {
	s := &r.slots[(m.Seq-1)&r.mask]
	s.stamp.Store(0) // invalidate: readers must not trust a torn slot
	s.msg = m
	s.digest = digest
	s.stamp.Store(m.Seq)
}

// lookup returns the retained message for sequence number q, or ok =
// false when q has been overwritten (fell out of the window), was never
// stamped, or is mid-rewrite.
func (r *seqRing) lookup(q uint64) (wire.Message, bool) {
	if q == 0 || q > r.seq() {
		return wire.Message{}, false
	}
	s := &r.slots[(q-1)&r.mask]
	if s.stamp.Load() != q {
		return wire.Message{}, false
	}
	m := s.msg
	// Re-validate after the copy: if the writer lapped us mid-read, the
	// stamp has changed (or is zero) and the copy is torn.
	if s.stamp.Load() != q {
		return wire.Message{}, false
	}
	return m, true
}

// digestAt returns the reign's cumulative digest checkpoint as of
// sequence q, with the same retention and tearing rules as lookup.
func (r *seqRing) digestAt(q uint64) (uint64, bool) {
	if q == 0 || q > r.seq() {
		return 0, false
	}
	s := &r.slots[(q-1)&r.mask]
	if s.stamp.Load() != q {
		return 0, false
	}
	d := s.digest
	if s.stamp.Load() != q {
		return 0, false
	}
	return d, true
}

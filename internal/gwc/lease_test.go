package gwc

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"optsync/internal/obs"
	"optsync/internal/transport"
	"optsync/internal/wire"
)

// countingNet wraps a transport and counts lock-plane frames per sender,
// so a test can assert a code path put nothing lock-related on the wire.
// Maintenance probes (resync, acks) keep flowing on their own clock and
// are deliberately not counted.
type countingNet struct {
	inner transport.Network
	sent  []atomic.Int64
}

func newCountingNet(inner transport.Network) *countingNet {
	return &countingNet{inner: inner, sent: make([]atomic.Int64, inner.Size())}
}

func (c *countingNet) Size() int    { return c.inner.Size() }
func (c *countingNet) Close() error { return c.inner.Close() }

func (c *countingNet) Endpoint(id int) (transport.Endpoint, error) {
	ep, err := c.inner.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &countingEndpoint{Endpoint: ep, net: c, id: id}, nil
}

type countingEndpoint struct {
	transport.Endpoint
	net *countingNet
	id  int
}

func lockPlane(t wire.Type) bool {
	switch t {
	case wire.TLockReq, wire.TLockRel, wire.TSeqLock, wire.TLeaseGrant, wire.TLeaseRet, wire.THandoff:
		return true
	}
	return false
}

func (e *countingEndpoint) Send(to int, m wire.Message) error {
	if lockPlane(m.Type) {
		e.net.sent[e.id].Add(1)
	}
	return e.Endpoint.Send(to, m)
}

// leaseCluster builds an in-proc cluster with leasing enabled on every
// node.
func leaseCluster(t *testing.T, n int, guarded bool, ttl time.Duration) *cluster {
	t.Helper()
	c := newInProcCluster(t, n, guarded)
	for _, nd := range c.nodes {
		nd.SetLeases(ttl)
	}
	return c
}

// warmLease acquires and releases the lock on nd until a re-acquire is
// decided locally, which proves the lease landed and the cached grant is
// live. The first grant races the unicast lease frame (a Release that
// beats it simply drops the lease), so warming is a loop, not one pass.
func warmLease(t *testing.T, nd *Node, l LockID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := nd.Acquire(tGroup, l); err != nil {
			t.Fatal(err)
		}
		warm := nd.Stats().LeaseLocal > 0
		if err := nd.Release(tGroup, l); err != nil {
			t.Fatal(err)
		}
		if warm {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("lease never warmed up on node %d: stats %+v", nd.ID(), nd.Stats())
}

// rootLeaseTo reads the root's lease record for a lock.
func rootLeaseTo(root *Node, l LockID) int {
	root.mu.Lock()
	defer root.mu.Unlock()
	r, ok := root.roots[tGroup]
	if !ok {
		return -1
	}
	ls, ok := r.locks[l]
	if !ok {
		return -1
	}
	return ls.leaseTo
}

// TestLeasedReacquireZeroWire is the headline property: once a lease is
// cached, an uncontended Acquire/Release pair is a purely local decision
// — zero lock-plane wire frames, counted at the transport itself.
func TestLeasedReacquireZeroWire(t *testing.T) {
	inner, err := transport.NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	net := newCountingNet(inner)
	c := newCluster(t, net, false)
	for _, nd := range c.nodes {
		nd.SetLeases(time.Hour)
	}
	nd := c.nodes[1]
	warmLease(t, nd, tLock)

	const reacquires = 200
	frames := net.sent[1].Load()
	base := nd.Stats()
	traceBase := nd.Metrics().Trace.Count(obs.EvLeaseLocal)
	for i := 0; i < reacquires; i++ {
		if err := nd.Acquire(tGroup, tLock); err != nil {
			t.Fatal(err)
		}
		if err := nd.Release(tGroup, tLock); err != nil {
			t.Fatal(err)
		}
	}
	got := nd.Stats()
	if d := net.sent[1].Load() - frames; d != 0 {
		t.Errorf("leased re-acquire put %d lock-plane frames on the wire, want 0", d)
	}
	if d := got.LockRequests - base.LockRequests; d != 0 {
		t.Errorf("leased re-acquire sent %d lock requests, want 0", d)
	}
	if d := got.LeaseLocal - base.LeaseLocal; d != reacquires {
		t.Errorf("LeaseLocal advanced by %d, want %d", d, reacquires)
	}
	if d := nd.Metrics().Trace.Count(obs.EvLeaseLocal) - traceBase; d != reacquires {
		t.Errorf("traced %d lease_local events, want %d", d, reacquires)
	}
}

// TestHandoffDirectTransfer drives a convoy: with a waiter queued at
// grant time the root piggybacks a handoff hint, and the holder's
// Release transfers the lock peer-to-peer. The root observes the notice
// asynchronously and commits it.
func TestHandoffDirectTransfer(t *testing.T) {
	c := leaseCluster(t, 4, false, time.Hour)
	root := c.nodes[0]

	// Node 1 takes the lock (and the lease that comes with an empty
	// queue); nodes 2 and 3 queue behind it. The root demands the lease
	// back; node 1's release frees the lock at the root, which grants
	// node 2 — and with node 3 queued by then, that grant carries a
	// handoff hint, so node 2's release transfers peer-to-peer.
	if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	queued := func(want int) func() bool {
		return func() bool {
			root.mu.Lock()
			defer root.mu.Unlock()
			r := root.roots[tGroup]
			ls, ok := r.locks[tLock]
			return ok && len(ls.queue) >= want
		}
	}
	var wg sync.WaitGroup
	worker := func(i int) {
		defer wg.Done()
		if err := c.nodes[i].Acquire(tGroup, tLock); err != nil {
			t.Errorf("node %d acquire: %v", i, err)
			return
		}
		time.Sleep(2 * time.Millisecond)
		if err := c.nodes[i].Release(tGroup, tLock); err != nil {
			t.Errorf("node %d release: %v", i, err)
		}
	}
	wg.Add(1)
	go worker(2)
	waitFor(t, c, 5*time.Second, "node 2 queued at the root", queued(1))
	wg.Add(1)
	go worker(3)
	waitFor(t, c, 5*time.Second, "two waiters queued", queued(2))

	if err := c.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	handoffs := 0
	for _, nd := range c.nodes {
		handoffs += nd.Stats().Handoffs
	}
	commits := root.Stats().HandoffCommits
	if handoffs == 0 {
		t.Fatalf("no direct handoff happened (root stats %+v)", root.Stats())
	}
	waitFor(t, c, 5*time.Second, "root to commit every handoff", func() bool {
		return root.Stats().HandoffCommits >= handoffs
	})
	commits = root.Stats().HandoffCommits
	if commits != handoffs {
		t.Errorf("members sent %d handoffs, root committed %d", handoffs, commits)
	}
}

// TestLeaseRevocation is the root-side lifecycle table: every way a
// lease is taken back — a fence demanding it, the watchdog re-driving a
// stuck demand, the leaseholder rejoining from a crash — must end with
// the root's record retired and the lock grantable again.
func TestLeaseRevocation(t *testing.T) {
	cases := []struct {
		name string
		run  func(t *testing.T, c *cluster, fl *transport.Flaky)
	}{
		{
			// Quorum loss fences the reign; the fence demands every lease
			// back because it can no longer vouch for leased re-entries.
			// Contact returns, the demand loop converges, the lease dies.
			name: "fence",
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				fl.Crash(1)
				fl.Crash(2)
				waitFor(t, c, 5*time.Second, "root to fence and demand the lease", func() bool {
					s := c.nodes[0].Stats()
					return s.Fenced >= 1 && s.LeaseRevokes >= 1
				})
				fl.Revive(1)
				fl.Revive(2)
			},
		},
		{
			// The leaseholder goes dark with a waiter queued: the revoke
			// demand goes unanswered past the liveness budget and the
			// watchdog trips (lease kind), resetting the demand cadence.
			// The root must NOT force-free — only the holder's return ends
			// it, here after the holder comes back.
			name: "watchdog",
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				fl.Crash(1)
				done := make(chan error, 1)
				go func() {
					ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer cancel()
					if err := c.nodes[2].AcquireContext(ctx, tGroup, tLock); err != nil {
						done <- err
						return
					}
					done <- c.nodes[2].Release(tGroup, tLock)
				}()
				waitFor(t, c, 5*time.Second, "watchdog to trip on the unanswered demand", func() bool {
					s := c.nodes[0].Stats()
					return s.LeaseRevokes >= 1 && s.WatchdogStuck >= 1
				})
				if got := rootLeaseTo(c.nodes[0], tLock); got != 1 {
					t.Errorf("watchdog force-freed the lease: leaseTo = %d, want 1", got)
				}
				fl.Revive(1)
				if err := <-done; err != nil {
					t.Fatalf("queued waiter never got the lock back: %v", err)
				}
			},
		},
		{
			// A crashed-and-restarted leaseholder rejoins with no memory of
			// the lease; re-admission frees its hold, which retires the
			// lease with it.
			name: "rejoin",
			run: func(t *testing.T, c *cluster, fl *transport.Flaky) {
				if err := c.nodes[1].Rejoin(tGroup); err != nil {
					t.Fatal(err)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, fl := newChaosCluster(t, 3, false)
			for _, nd := range c.nodes {
				nd.SetLeases(time.Hour)
				nd.SetWatchdog(150 * time.Millisecond)
			}
			warmLease(t, c.nodes[1], tLock)
			waitFor(t, c, 5*time.Second, "root to record the lease", func() bool {
				return rootLeaseTo(c.nodes[0], tLock) == 1
			})

			tc.run(t, c, fl)

			// The lock is grantable again: a different member gets it with
			// the full machinery. (A revoked-but-unanswered lease converges
			// on demand — this acquire IS the demand that forces it.)
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := c.nodes[2].AcquireContext(ctx, tGroup, tLock); err != nil {
				t.Fatalf("lock not grantable after %s revocation: %v", tc.name, err)
			}
			if err := c.nodes[2].Release(tGroup, tLock); err != nil {
				t.Fatal(err)
			}
			// Node 1's lease is retired at the root; whoever holds a lease
			// now (node 2 may have one, the queue having emptied), it is
			// not the revoked one.
			if got := rootLeaseTo(c.nodes[0], tLock); got == 1 {
				t.Errorf("node 1's revoked lease still recorded after %s", tc.name)
			}
		})
	}
}

// TestLeaseRenewalKeepsLockLocal holds a lease across several TTLs of
// active re-use: the renewal machinery (adaptive backoff past the half
// life, root extension while the queue is empty) must keep the lock
// local the whole time instead of letting it lapse back to wire
// acquisitions.
func TestLeaseRenewalKeepsLockLocal(t *testing.T) {
	const ttl = 400 * time.Millisecond
	c := leaseCluster(t, 3, false, ttl)
	for _, nd := range c.nodes {
		nd.SetTimers(10*time.Millisecond, 200*time.Millisecond, 100*time.Millisecond)
		nd.SetBackoff(10*time.Millisecond, 80*time.Millisecond)
	}
	nd := c.nodes[1]
	warmLease(t, nd, tLock)

	base := nd.Stats()
	rootBase := c.nodes[0].Stats()
	deadline := time.Now().Add(3 * ttl)
	for time.Now().Before(deadline) {
		if err := nd.Acquire(tGroup, tLock); err != nil {
			t.Fatal(err)
		}
		if err := nd.Release(tGroup, tLock); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	got := nd.Stats()
	if got.LeaseRenewals-base.LeaseRenewals == 0 {
		t.Error("no lease renewals across three TTLs of active use")
	}
	if d := c.nodes[0].Stats().LeaseGrants - rootBase.LeaseGrants; d == 0 {
		t.Error("root never extended the lease")
	}
	// One lapse is tolerated (a renewal can lose the race with expiry
	// under scheduler pressure); systematic lapses mean renewal is broken.
	if d := got.LockRequests - base.LockRequests; d > 1 {
		t.Errorf("%d wire acquisitions during a renewed lease, want <= 1", d)
	}
	if got.LeaseLocal == base.LeaseLocal {
		t.Error("no local re-acquires during the renewal window")
	}
}

// TestLeasedRetryStormBounded is the leasing build of the retry-storm
// bound: waiters born into a root outage, with the lease machinery live,
// must still converge on the failover with adaptively-bounded resends —
// the lease/handoff paths (renewals, revoke demands, notice re-sends,
// and waitLock's reset when a grant epoch moves mid-wait) add no
// unbounded traffic.
func TestLeasedRetryStormBounded(t *testing.T) {
	const (
		waiters   = 16
		retry     = 10 * time.Millisecond
		failAfter = 200 * time.Millisecond
		electWait = 100 * time.Millisecond
		boBase    = 10 * time.Millisecond
		boCap     = 160 * time.Millisecond
	)
	c, fl := newChaosCluster(t, 3, true)
	for _, nd := range c.nodes {
		nd.SetTimers(retry, failAfter, electWait)
		nd.SetBackoff(boBase, boCap)
		nd.SetLeases(time.Hour)
	}

	baseline := c.nodes[1].Stats().LockRequests + c.nodes[2].Stats().LockRequests

	fl.Crash(0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		node := 1 + i%2
		lock := LockID(100 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.nodes[node].Acquire(tGroup, lock); err != nil {
				t.Errorf("waiter on node %d lock %d: %v", node, lock, err)
				return
			}
			if err := c.nodes[node].Release(tGroup, lock); err != nil {
				t.Errorf("release on node %d lock %d: %v", node, lock, err)
			}
		}()
	}
	wg.Wait()
	downtime := time.Since(start)

	total := c.nodes[1].Stats().LockRequests + c.nodes[2].Stats().LockRequests
	resends := total - baseline - waiters
	if resends < 0 {
		t.Fatalf("counter went backwards: %d requests for %d waiters", total-baseline, waiters)
	}
	// Same budget shape as TestRetryStormBounded, plus slack for the
	// grant-epoch reset: the failover re-bases every lock, and each
	// waiter's schedule legitimately restarts at base once when its lock
	// moves under the new reign.
	climb := 1
	for d := boBase; d < boCap; d *= 2 {
		climb++
	}
	perWaiter := climb + int(downtime/(boCap/2)) + 6
	budget := waiters * perWaiter
	t.Logf("downtime %v: %d resends (budget %d)", downtime, resends, budget)
	if resends > budget {
		t.Errorf("%d resends for %d waiters exceeds adaptive budget %d", resends, waiters, budget)
	}
	renewals := c.nodes[1].Stats().LeaseRenewals + c.nodes[2].Stats().LeaseRenewals
	if renewals > waiters {
		t.Errorf("%d lease renewals during an hour-TTL run, want ~0", renewals)
	}
}

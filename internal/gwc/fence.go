package gwc

import (
	"sort"
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Partition-safe reigns.
//
// PR 1's failover layer elects a new root when the old one falls silent,
// but on its own that is not partition-safe: a minority side could keep
// its root (or elect one) and sequence writes the healed group later
// throws away. This file closes that window with two quorum mechanisms:
//
//   - a *fencing lease* on the root: every up-message from a member is
//     proof of contact, and a root that heard from fewer than a majority
//     of the configured membership (itself included) within failAfter
//     stops sequencing — updates, lock traffic, and sync barriers park
//     in a bounded queue until quorum contact returns (replayed in
//     order) or a newer epoch deposes the reign (dropped; nothing queued
//     was ever acknowledged);
//
//   - a *quorum-ack watermark* for durable writes: members continuously
//     acknowledge the sequenced prefix they applied (resync probes carry
//     it for free, TAck frames carry it eagerly), and the root tracks
//     commit = the quorum-th highest ack, counting itself at r.ring.seq().
//     Under SetQuorumAcks, a released lock is handed to the next waiter
//     only once commit covers the releaser's data, and Sync barriers
//     (TSyncReq/TSyncAck) answer only once commit covers everything
//     sequenced before the request.
//
// Together with quorum-gated elections (failover.go) this yields the
// standard majority-intersection argument: a quorum-acked write lives on
// at least one member of any elected successor's report majority, so it
// survives the failover; and no two reigns can sequence concurrently,
// because at most one side of a partition holds a majority.

// fenceQueue parks an up-message on a fenced root, bounded by the
// history size so a long partition cannot grow the queue without limit.
// At the bound, data-plane traffic is shed in preference to lock-plane
// traffic: updates and sync requests are retried or reissued by their
// senders, but a TLockRel is sent exactly once — dropping it would leave
// the root believing in a holder that believes it released, stranding
// the lock for the rest of the reign (found by seeded schedule
// exploration; see internal/detsim's fence regression scenario). Caller
// holds n.mu.
func (n *Node) fenceQueue(r *rootGroup, m wire.Message) {
	if len(r.fencedQ) >= r.cfg.HistorySize {
		n.stats.FencedDrops++
		if fenceDroppable(m.Type) {
			n.protoErr("gwc: node %d fenced root of group %d dropped %v from %d past queue bound",
				n.id, r.cfg.ID, m.Type, m.Src)
			return
		}
		// Lock-plane arrival at a full queue: evict the oldest parked
		// data message to make room. Replay order among surviving
		// messages is preserved; the evicted update is lost exactly as
		// it would have been had it arrived after the queue filled.
		for i, q := range r.fencedQ {
			if fenceDroppable(q.Type) {
				n.protoErr("gwc: node %d fenced root of group %d evicted parked %v from %d to keep %v from %d",
					n.id, r.cfg.ID, q.Type, q.Src, m.Type, m.Src)
				r.fencedQ = append(r.fencedQ[:i], r.fencedQ[i+1:]...)
				r.fencedQ = append(r.fencedQ, m)
				return
			}
		}
		// Pathological: the queue is all lock-plane traffic already.
		n.protoErr("gwc: node %d fenced root of group %d dropped %v from %d past queue bound (no data to evict)",
			n.id, r.cfg.ID, m.Type, m.Src)
		return
	}
	r.fencedQ = append(r.fencedQ, m)
}

// fenceDroppable classifies parked messages the fence may shed at its
// bound: plain eager updates (an unsequenced write is lost exactly as
// when its carrier frame is dropped) and sync requests (re-sent every
// maintenance tick until answered). Lock requests are also retried by
// their senders, but evicting them would scramble acquisition order for
// no gain — queue pressure comes from update floods.
func fenceDroppable(t wire.Type) bool {
	return t == wire.TUpdate || t == wire.TSyncReq
}

// checkFence runs the root's lease each maintenance tick: count the
// members heard from within failAfter (plus the root itself) and fence
// the reign when they are fewer than a quorum; when contact returns,
// unfence and replay the parked traffic in arrival order. Caller holds
// n.mu.
func (n *Node) checkFence(r *rootGroup, now time.Time) {
	reach := 1 // the root itself
	for _, m := range r.cfg.Members {
		if m == n.id {
			continue
		}
		if now.Sub(r.lastHeard[m]) <= n.failAfter {
			reach++
		}
	}
	if reach < r.quorum {
		if !r.fenced {
			r.fenced = true
			r.fencedAt = now
			r.fenceWatch = now
			n.stats.Fenced++
			n.emit(obs.EvFence, r.cfg.ID, int64(reach), int64(r.epoch))
			// Demand every outstanding lease back: a fenced root cannot
			// vouch for leased re-entries it no longer observes. Records
			// stay — the demand loop (tickRootLeases re-sends while
			// fenced) must keep running, and only a validated return,
			// release, or the holder's rejoin retires a lease.
			for _, l := range sortedKeys(r.locks) {
				if ls := r.locks[l]; ls.leaseTo >= 0 {
					n.sendLeaseRevoke(r, l, ls, now)
				}
			}
		}
		return
	}
	if !r.fenced {
		return
	}
	r.fenced = false
	r.fencedAt = time.Time{}
	r.fenceWatch = time.Time{}
	q := r.fencedQ
	r.fencedQ = nil
	n.emit(obs.EvUnfence, r.cfg.ID, int64(len(q)), int64(r.epoch))
	for _, m := range q {
		n.rootHandle(r, m)
	}
	// Lock handoffs deferred for quorum acks may be grantable again.
	n.serviceQuorum(r)
}

// rootAck folds a member's cumulative acknowledgement into the
// watermark. Caller holds n.mu.
func (n *Node) rootAck(r *rootGroup, src int, seq uint64) {
	if src == n.id || !r.cfg.memberOf(src) {
		return
	}
	if seq > r.ring.seq() {
		// An ack beyond the reign's sequence space is from a confused or
		// rebased sender; clamp it so it cannot inflate the watermark.
		seq = r.ring.seq()
	}
	if seq <= r.acks[src] {
		return
	}
	r.acks[src] = seq
	if n.quorumAcks {
		n.advanceCommit(r)
	}
}

// advanceCommit recomputes the quorum commit watermark and services
// whatever it newly covers. Caller holds n.mu.
func (n *Node) advanceCommit(r *rootGroup) {
	vals := make([]uint64, 0, len(r.cfg.Members))
	for _, m := range r.cfg.Members {
		if m == n.id {
			vals = append(vals, r.ring.seq())
		} else {
			vals = append(vals, r.acks[m])
		}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] > vals[j] })
	c := vals[r.quorum-1]
	if c <= r.commit {
		return
	}
	r.commit = c
	n.serviceQuorum(r)
}

// serviceQuorum answers sync barriers the commit watermark now covers
// and grants lock handoffs that were deferred for quorum acks. Barriers
// are answered even while fenced — they refer to a prefix a majority
// already holds, which no election can lose — but new grants wait for
// the fence to lift. Caller holds n.mu.
func (n *Node) serviceQuorum(r *rootGroup) {
	if len(r.waitSyncs) > 0 {
		keep := r.waitSyncs[:0]
		for _, b := range r.waitSyncs {
			if r.commit < b.needSeq {
				keep = append(keep, b)
				continue
			}
			n.send(b.src, wire.Message{
				Type:  wire.TSyncAck,
				Group: uint32(r.cfg.ID),
				Src:   int32(n.id),
				Seq:   b.token,
				Epoch: r.epoch,
			})
		}
		r.waitSyncs = keep
	}
	if r.fenced {
		return
	}
	for _, l := range sortedKeys(r.locks) {
		ls := r.locks[l]
		if r.commit < ls.needSeq {
			continue
		}
		if len(ls.pending) > 0 {
			// The winners were designated at park time; only the
			// multicasts waited for the watermark. Announce in
			// designation order.
			pend := ls.pending
			ls.pending = nil
			for _, h := range pend {
				if ls.holds(h) {
					n.sendGrant(r, l, ls, h)
				}
			}
			continue
		}
		if ls.free() {
			if next, ok := n.popWaiter(ls); ok {
				n.grant(r, l, ls, next)
				n.admitSession(r, l, ls)
			}
		}
	}
}

// rootSyncReq answers (or defers) a member's durability barrier: the
// matching TSyncAck means everything the root sequenced before the
// request is committed. Without SetQuorumAcks that is immediate — the
// FIFO link already guarantees the member's earlier writes were
// sequenced first — and with it the answer waits for the quorum
// watermark. Caller holds n.mu.
func (n *Node) rootSyncReq(r *rootGroup, m wire.Message) {
	src, tok := int(m.Src), m.Seq
	for _, b := range r.waitSyncs {
		if b.src == src && b.token == tok {
			return // retry of a barrier already pending
		}
	}
	if !n.quorumAcks || r.commit >= r.ring.seq() {
		n.send(src, wire.Message{
			Type:  wire.TSyncAck,
			Group: uint32(r.cfg.ID),
			Src:   int32(n.id),
			Seq:   tok,
			Epoch: r.epoch,
		})
		return
	}
	n.stats.QuorumAckWaits++
	r.waitSyncs = append(r.waitSyncs, syncBarrier{src: src, token: tok, needSeq: r.ring.seq()})
}

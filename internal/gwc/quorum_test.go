package gwc

import (
	"context"
	"errors"
	"testing"
	"time"

	"optsync/internal/transport"
	"optsync/internal/wire"
)

// newHistoryCluster is newChaosCluster with a custom retransmission
// window, for tests that need a member to fall past it.
func newHistoryCluster(t *testing.T, n, history int) (*cluster, *transport.Flaky) {
	t.Helper()
	inner, err := transport.NewInProc(n)
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.NewFlaky(inner, transport.FaultPlan{})
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	c := &cluster{net: fl, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		ep, err := fl.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = NewNode(i, ep)
		// Tracing drives waitFor's wake-ups and timeout dumps; it is
		// atomics-only, so it cannot mask the races these tests hunt.
		c.nodes[i].Metrics().Trace.Enable(0)
		c.nodes[i].SetTimers(10*time.Millisecond, 60*time.Millisecond, 30*time.Millisecond)
		if err := c.nodes[i].Join(GroupConfig{
			ID:          tGroup,
			Root:        0,
			Members:     members,
			HistorySize: history,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			_ = nd.Close()
		}
		_ = fl.Close()
	})
	return c, fl
}

func TestMinorityRootFencesAndMajorityReignSurvives(t *testing.T) {
	c, fl := newChaosCluster(t, 5, false)
	if err := c.nodes[1].Write(tGroup, tVar, 41); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 41)
	}

	// Root 0 lands on the 2-node minority side.
	fl.Partition([]int{0, 1}, []int{2, 3, 4})
	waitFor(t, c, 5*time.Second, "the minority root to fence itself", func() bool {
		return c.nodes[0].Stats().Fenced >= 1
	})

	// A write into the fenced reign parks instead of being sequenced:
	// the root's own copy must not move.
	if err := c.nodes[1].Write(tGroup, tVar, 100); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	if got, err := c.nodes[0].Read(tGroup, tVar); err != nil || got != 41 {
		t.Fatalf("fenced root sequenced a minority write: read %d, %v; want 41", got, err)
	}

	// The majority side holds a report quorum and elects node 2 (node 1
	// is unreachable and gets suspected past over).
	waitFor(t, c, 5*time.Second, "node 2 to promote itself", func() bool {
		return c.nodes[2].Stats().Failovers == 1
	})
	if e := c.nodes[2].Stats().Elections; e < 1 {
		t.Errorf("promoted node entered %d elections, want >= 1", e)
	}
	waitAdopted(t, c, c.nodes[3], 2)
	if err := c.nodes[3].Write(tGroup, tVar, 55); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes[2:] {
		waitValue(t, n, tVar, 55)
	}

	// Healing deposes the fenced root; its parked minority write was
	// never acknowledged and is discarded, and everyone converges on the
	// majority reign's history.
	fl.Heal()
	waitFor(t, c, 5*time.Second, "the deposed root to stand down", func() bool {
		return c.nodes[0].Stats().Demotions == 1
	})
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 55)
	}
}

func TestSymmetricSplitFencesThenResumesWithoutElection(t *testing.T) {
	// A 2/2 split of a 4-node group leaves no side with a majority: the
	// root must fence, the other side must fail to elect, and healing
	// must resume the original reign with the parked traffic replayed.
	c, fl := newChaosCluster(t, 4, false)
	if err := c.nodes[1].Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 1)
	}

	fl.Partition([]int{0, 1}, []int{2, 3})
	waitFor(t, c, 5*time.Second, "the root to fence itself", func() bool {
		return c.nodes[0].Stats().Fenced == 1
	})
	if err := c.nodes[1].Write(tGroup, tVar, 2); err != nil {
		t.Fatal(err)
	}

	// A sync barrier against the fenced root parks with the write; its
	// answer doubles as proof the write outlived the partition.
	synced := make(chan error, 1)
	go func() { synced <- c.nodes[1].Sync(tGroup) }()

	time.Sleep(150 * time.Millisecond)
	for i, n := range c.nodes {
		if f := n.Stats().Failovers; f != 0 {
			t.Fatalf("node %d promoted itself %d times in a quorum-less split", i, f)
		}
	}
	if got, _ := c.nodes[2].Read(tGroup, tVar); got != 1 {
		t.Fatalf("cut-off side advanced to %d without a root", got)
	}
	if e := c.nodes[2].Stats().Elections; e < 1 {
		t.Errorf("cut-off candidate entered %d elections, want >= 1", e)
	}
	select {
	case err := <-synced:
		t.Fatalf("sync barrier answered while the root was fenced: %v", err)
	default:
	}

	fl.Heal()
	if err := <-synced; err != nil {
		t.Fatalf("sync barrier after heal: %v", err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 2)
	}
	if f := c.nodes[0].Stats().Fenced; f != 1 {
		t.Errorf("root fenced %d times, want exactly 1", f)
	}
	if d := c.nodes[0].Stats().Demotions; d != 0 {
		t.Errorf("root was deposed %d times without a competing reign", d)
	}
}

func TestQuorumWatermarkDefersHandoffUntilMajorityAck(t *testing.T) {
	// Drive the root's watermark machinery directly (under its lock, so
	// live ticks cannot interleave): a release with a queued waiter
	// designates the next holder at once — the lock never goes
	// holderless, so a clean speculation landing in the park window is
	// sequenced, not suppressed — but the grant *multicast* must not go
	// out until a majority acked the releaser's data.
	c := newInProcCluster(t, 5, true)
	root := c.nodes[0]
	root.SetQuorumAcks(true)

	root.mu.Lock()
	defer root.mu.Unlock() // Fatalf runs deferred calls, so cleanup can Close
	r := root.roots[tGroup]
	root.multicast(r, wire.Message{
		Type:  wire.TSeqUpdate,
		Group: uint32(tGroup),
		Src:   int32(root.id),
		Var:   uint32(tVar),
		Val:   5,
	})
	ls := r.lock(tLock)
	ls.holders[3] = 0
	ls.entryEpochs[3] = 1
	ls.epoch = 1
	ls.queue = []lockWaiter{{node: 4}}
	seqBefore := r.ring.seq()
	root.leaveLock(r, tLock, ls, 3)
	if !ls.holds(4) || len(ls.queue) != 0 {
		t.Fatalf("next holder not designated at release: holders=%v queue=%v", ls.holders, ls.queue)
	}
	if len(ls.pending) == 0 {
		t.Fatal("grant multicast not deferred behind the watermark")
	}
	if r.ring.seq() != seqBefore {
		t.Fatalf("deferred grant was multicast anyway: seq %d -> %d", seqBefore, r.ring.seq())
	}
	if w := root.stats.QuorumAckWaits; w != 1 {
		t.Fatalf("QuorumAckWaits = %d, want 1", w)
	}
	if g := root.stats.LockGrants; g != 0 {
		t.Fatalf("LockGrants = %d before the watermark advanced, want 0", g)
	}

	// Acks from non-members are ignored; acks past the reign's sequence
	// clamp. Neither reaches the quorum of 3 (root + two members).
	root.rootAck(r, 99, 1)
	root.rootAck(r, 1, 100)
	if r.commit != 0 {
		t.Fatalf("commit = %d after one member ack, want 0", r.commit)
	}
	if len(ls.pending) == 0 {
		t.Fatal("grant multicast released below quorum")
	}

	// The second member ack completes the majority and sends the parked
	// multicast (which advances r.ring.seq() past the watermark again — the
	// next section's data, not yet quorum-held).
	root.rootAck(r, 2, 1)
	if r.commit != seqBefore {
		t.Fatalf("commit = %d after majority ack, want %d", r.commit, seqBefore)
	}
	if len(ls.pending) != 0 || r.ring.seq() != seqBefore+1 {
		t.Fatalf("deferred grant not serviced: pending=%v seq=%d", ls.pending, r.ring.seq())
	}
	if g := root.stats.LockGrants; g != 1 {
		t.Fatalf("LockGrants = %d after the watermark advanced, want 1", g)
	}
}

func TestQuorumAckedHandoffCarriesData(t *testing.T) {
	// End to end: under quorum acks, the next holder observes the
	// previous section's writes the moment it is granted.
	c := newInProcCluster(t, 3, true)
	for _, n := range c.nodes {
		n.SetQuorumAcks(true)
	}
	if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[2].SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, 5*time.Second, "node 2 to queue at the root", func() bool {
		c.nodes[0].mu.Lock()
		defer c.nodes[0].mu.Unlock()
		return c.nodes[0].roots[tGroup].lock(tLock).queued(2)
	})
	if err := c.nodes[1].Write(tGroup, tVar, 5); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	ok, err := c.nodes[2].WaitLockGrant(tGroup, tLock)
	if err != nil || !ok {
		t.Fatalf("queued waiter never granted: ok=%v err=%v", ok, err)
	}
	// The grant was sequenced behind the quorum-committed write, so the
	// value is already local — no polling.
	if got, err := c.nodes[2].Read(tGroup, tVar); err != nil || got != 5 {
		t.Fatalf("new holder read %d, %v; want 5", got, err)
	}
	if err := c.nodes[2].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
}

func TestSyncBarrierWaitsForQuorumCommit(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	for _, n := range c.nodes {
		n.SetQuorumAcks(true)
	}
	if err := c.nodes[1].Write(tGroup, tVar, 7); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Sync(tGroup); err != nil {
		t.Fatal(err)
	}
	// The barrier vouches for the write: it is sequenced at the root and
	// covered by the quorum watermark.
	if got, err := c.nodes[0].Read(tGroup, tVar); err != nil || got != 7 {
		t.Fatalf("root read %d, %v after sync, want 7", got, err)
	}
	c.nodes[0].mu.Lock()
	r := c.nodes[0].roots[tGroup]
	commit, seq := r.commit, r.ring.seq()
	c.nodes[0].mu.Unlock()
	if commit < seq {
		t.Fatalf("commit watermark %d below sequence %d after sync", commit, seq)
	}

	// The root syncing its own group goes through the same path.
	if err := c.nodes[0].Write(tGroup, tVarB, 8); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[0].Sync(tGroup); err != nil {
		t.Fatal(err)
	}
}

func TestSyncContextCancelsWhileRootUnreachable(t *testing.T) {
	c, fl := newChaosCluster(t, 3, false)
	if err := c.nodes[1].Write(tGroup, tVar, 3); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 3)

	fl.Partition([]int{1}, []int{0})
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	if err := c.nodes[1].SyncContext(ctx, tGroup); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SyncContext against unreachable root = %v, want deadline exceeded", err)
	}
	fl.Heal()
	// The abandoned token must not wedge later barriers.
	if err := c.nodes[1].Sync(tGroup); err != nil {
		t.Fatalf("sync after cancelled barrier: %v", err)
	}
}

func TestRejoinAfterCrashConverges(t *testing.T) {
	c, fl := newChaosCluster(t, 3, false)
	if err := c.nodes[1].Write(tGroup, tVar, 41); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 41)
	}

	fl.Crash(2)
	if err := c.nodes[1].Write(tGroup, tVar, 42); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 42)

	fl.Revive(2)
	if err := c.nodes[2].Rejoin(tGroup); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[2], tVar, 42)
	waitFor(t, c, 5*time.Second, "the rejoin handshake to complete on both ends", func() bool {
		return c.nodes[2].Stats().Rejoins >= 1 && c.nodes[0].Stats().Rejoins >= 1
	})

	// The re-admitted member is a full citizen again.
	if err := c.nodes[2].Write(tGroup, tVarB, 9); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVarB, 9)
	}

	// A root cannot rejoin the reign it runs.
	if err := c.nodes[0].Rejoin(tGroup); err == nil {
		t.Error("root Rejoin of its own reign succeeded, want error")
	}
}

func TestRejoinFreesCrashedHoldersLock(t *testing.T) {
	c, fl := newChaosCluster(t, 3, true)
	if err := c.nodes[2].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	fl.Crash(2)
	if err := c.nodes[1].SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, 5*time.Second, "node 1 to queue behind the crashed holder", func() bool {
		c.nodes[0].mu.Lock()
		defer c.nodes[0].mu.Unlock()
		return c.nodes[0].roots[tGroup].lock(tLock).queued(1)
	})

	// The holder reboots: its critical section died with its memory, so
	// re-admission frees the lock and the waiter gets in.
	fl.Revive(2)
	if err := c.nodes[2].Rejoin(tGroup); err != nil {
		t.Fatal(err)
	}
	ok, err := c.nodes[1].WaitLockGrant(tGroup, tLock)
	if err != nil || !ok {
		t.Fatalf("waiter never granted after holder rejoin: ok=%v err=%v", ok, err)
	}
	if err := c.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
}

func TestFarBehindRevivalFetchesSnapshot(t *testing.T) {
	// A member that missed more than the root's retransmission window
	// cannot be NACK-repaired; the root's heartbeat sequence number gives
	// it away and it fetches a snapshot instead — no explicit Rejoin.
	c, fl := newHistoryCluster(t, 3, 8)
	if err := c.nodes[1].Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 1)
	}

	fl.Crash(2)
	for i := int64(2); i <= 20; i++ {
		if err := c.nodes[1].Write(tGroup, tVar, i); err != nil {
			t.Fatal(err)
		}
	}
	waitValue(t, c.nodes[0], tVar, 20)

	fl.Revive(2)
	waitValue(t, c.nodes[2], tVar, 20)
	if rj := c.nodes[2].Stats().Rejoins; rj != 0 {
		t.Errorf("snapshot catch-up counted %d rejoins, want 0", rj)
	}
}

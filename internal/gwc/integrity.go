package gwc

// State integrity and anti-entropy (the memory-plane generalization of
// PR 5's lock-plane cross-checks).
//
// Wire checksums catch corruption in flight, but nothing so far caught
// a member whose committed state silently rotted after decode — bad
// RAM, a buggy re-base, an apply-path fault. This file closes that
// gap with a root-driven digest sweep:
//
//   - Every sequenced data apply folds its (var, seq, value) triple
//     into an order-insensitive digest (internal/integrity), on the
//     member in applySeq and on the root in multicast. The root also
//     checkpoints its cumulative digest at every sequence number in a
//     ring parallel to the retransmission history.
//
//   - Every integrityEvery, the root multicasts TDigestReq carrying
//     its digest at the current watermark (Seq = r.ring.seq(), Val = digest).
//     A member that is exactly at the watermark compares on the spot;
//     any member answers TDigestAck with its own applied position and
//     digest, which the root compares against the checkpoint ring —
//     so laggards are checked at *their* watermark, without replay.
//
//   - A mismatch (found by either side) marks the member diverged:
//     Divergences counts it, EvDivergence traces it, Health/ReadStale
//     refuse to serve from the copy, and repair re-drives the member
//     through the existing snapshot catch-up path — the root sends a
//     repair directive (TDigestReq with Var=1) followed by a snapshot
//     stream; TSnapDone carries the root's digest so the member
//     re-anchors (integrity.Digest.Rebase) and clears diverged.
//
// The sweep only ever compares committed sequenced state, so it also
// runs while the root is fenced. It detects accidental divergence, not
// Byzantine members — same failure model as the rest of the stack.

import (
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// sweepDigests initiates one anti-entropy round per integrityEvery:
// the root sends every member its digest at the current sequence
// watermark. Piggybacked on the maintenance tick like the heartbeat.
// Caller holds n.mu.
func (n *Node) sweepDigests(gid GroupID, r *rootGroup, now time.Time) {
	if n.integrityEvery <= 0 || now.Sub(r.lastSweep) < n.integrityEvery {
		return
	}
	r.lastSweep = now
	n.stats.DigestSweeps++
	probe := wire.Message{
		Type:  wire.TDigestReq,
		Group: uint32(gid),
		Src:   int32(n.id),
		Seq:   r.ring.seq(),
		Val:   int64(r.digest.Sum()),
		Epoch: r.epoch,
	}
	for _, member := range r.cfg.Members {
		if member == n.id {
			continue
		}
		n.send(member, probe)
	}
}

// markDiverged convicts the member's local copy and starts its repair:
// the copy is quarantined (Health/ReadStale) and a snapshot re-base is
// requested through the same path a rejoining member uses. Idempotent
// while a repair is already underway. Caller holds n.mu.
func (n *Node) markDiverged(g *memberGroup, watermark uint64) {
	if !g.diverged {
		g.diverged = true
		n.stats.Divergences++
		n.emit(obs.EvDivergence, g.cfg.ID, int64(n.id), int64(watermark))
	}
	if g.snapWanted {
		return // corrective snapshot already on its way
	}
	g.snapWanted = true
	g.snapBuf = nil
	g.snapB.reset()
	n.send(g.rootID, wire.Message{
		Type:  wire.TSnapReq,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Epoch: g.epoch,
	})
}

// handleDigestReq is the member side of the sweep: act on a repair
// directive, self-check when exactly at the root's watermark, and
// report the local digest so the root can check laggards against its
// checkpoint ring. Caller holds n.mu.
func (n *Node) handleDigestReq(g *memberGroup, m wire.Message) {
	if m.Epoch != g.epoch || int(m.Src) != g.rootID {
		if m.Epoch > g.epoch {
			// A reign we have not adopted yet; its heartbeat semantics
			// apply (the snapshot request doubles as our reply).
			n.adoptEpoch(g, m.Epoch, int(m.Src))
			return
		}
		n.stats.StaleEpochRejected++
		n.emit(obs.EvStaleEpoch, g.cfg.ID, int64(m.Type), int64(m.Epoch))
		n.maybeNotice(g, int(m.Src))
		return
	}
	g.lastRoot = n.clock.Now()
	if m.Var == 1 {
		// Repair directive: the root compared our ack and found it
		// diverged; a corrective snapshot follows on this same link.
		n.markDiverged(g, m.Seq)
		return
	}
	if g.snapWanted || g.rejoining || g.electing {
		// Mid-resync the digest is not a statement about any watermark;
		// stay silent and let the next sweep check the re-based copy.
		return
	}
	applied := g.nextSeq - 1
	if applied == m.Seq && g.digest.Sum() != uint64(m.Val) {
		// Self-detected divergence: repair without waiting for the
		// root's verdict on an ack round trip.
		n.markDiverged(g, m.Seq)
		return
	}
	n.send(g.rootID, wire.Message{
		Type:  wire.TDigestAck,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Seq:   applied,
		Val:   int64(g.digest.Sum()),
		Epoch: g.epoch,
	})
}

// rootDigestAck compares a member's digest report against the reign's
// checkpoint ring at the member's own applied watermark. On mismatch
// the root emits the divergence, sends a repair directive, and
// re-drives the member through the snapshot path. Caller holds n.mu.
func (n *Node) rootDigestAck(r *rootGroup, m wire.Message) {
	src := int(m.Src)
	if src == n.id || !r.cfg.memberOf(src) {
		return
	}
	seq := m.Seq
	if seq > r.ring.seq() {
		return // claims state from the future; let retries converge
	}
	var want uint64
	if seq != 0 { // the empty state digests to zero
		var ok bool
		want, ok = r.ring.digestAt(seq)
		if !ok {
			return // watermark fell out of the checkpoint window; next sweep
		}
	}
	if uint64(m.Val) == want {
		return
	}
	n.stats.Divergences++
	n.emit(obs.EvDivergence, r.cfg.ID, int64(src), int64(seq))
	// Directive first, snapshot second: FIFO links deliver the verdict
	// (which quarantines the copy) before the stream that repairs it.
	n.send(src, wire.Message{
		Type:  wire.TDigestReq,
		Group: uint32(r.cfg.ID),
		Src:   int32(n.id),
		Seq:   seq,
		Var:   1,
		Val:   int64(want),
		Epoch: r.epoch,
	})
	n.rootSnapSend(r, src)
}

// DigestState reports a member's integrity digest, the sequence
// watermark it covers (highest contiguously applied), and whether the
// copy is currently convicted as diverged. Intended for tests and
// operational inspection; the sweep itself never calls it.
func (n *Node) DigestState(gid GroupID) (sum uint64, applied uint64, diverged bool, err error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, gerr := n.group(gid)
	if gerr != nil {
		return 0, 0, false, gerr
	}
	return g.digest.Sum(), g.nextSeq - 1, g.diverged, nil
}

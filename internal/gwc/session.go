package gwc

import (
	"context"
	"fmt"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Session locks: group mutual exclusion at the member.
//
// A session lock generalizes the mutex: every critical section carries a
// session number, any number of holders of the *same* session run
// concurrently, and different sessions exclude each other. Session 0 is
// plain mutual exclusion (exactly the pre-session protocol, frame for
// frame), and a readers/writers lock is the two-session special case —
// readers enter a shared non-zero session, writers take session 0.
//
// The root (root.go) keeps the holder set and decides admission and
// fairness; this file keeps the member's mirror of it. Member-side lock
// frames with a non-zero Session route here (applySessionLock) instead
// of the single-holder path; each entry, leave, and close updates the
// per-lock sessView, fires session hooks (the optimistic engine's
// interrupt), and wakes lock waiters.

// sessView is a member's mirror of one lock's open session: who holds
// entries (node -> entry grant epoch) and whether this node is one of
// them. The view is reset by any exclusive-protocol frame for the lock
// — sequenced after the session closed at the root by construction.
type sessView struct {
	session uint32
	holders map[int]uint32
	mine    bool
}

// SessKind classifies one observed session transition.
type SessKind int

const (
	// SessEnter is a node entering the open session (Session names it;
	// 0 means an exclusive grant displaced the session view).
	SessEnter SessKind = iota
	// SessLeave is a holder leaving while the session stays open.
	SessLeave
	// SessClose is the open session's last holder leaving.
	SessClose
)

// SessEvent is one observed session transition on a lock.
type SessEvent struct {
	Kind    SessKind
	Session uint32 // the session entered/left/closed (0: exclusive entry)
	Node    int    // the entering/leaving node (unset for SessClose)
}

// SessionHook observes session transitions on a lock. It runs under the
// node's internal lock and must not block or call back into the node;
// returning HookSuspend parks insharing atomically with the event, the
// same interrupt-and-suspension contract as LockHook.
type SessionHook func(ev SessEvent) HookAction

// SessionInfo is a lock's locally observed session state.
type SessionInfo struct {
	Session uint32 // the open session, 0 when none is open locally
	Holders int    // concurrent holders currently observed
	Mine    bool   // whether this node holds an entry
}

// runSessHooks fires the lock's session hooks. Caller holds n.mu.
func (n *Node) runSessHooks(g *memberGroup, l LockID, ev SessEvent) {
	for _, hook := range g.sessHooks[l] {
		if hook(ev) == HookSuspend {
			g.suspended = true
		}
	}
}

// applySessionLock installs one sequenced session-protocol lock frame:
// an entry (Val > 0), a leave (negative request-encoded Val), or the
// session's close (Val == Free). Self-entries are validated exactly
// like exclusive self-grants — consumed only when the echoed token
// matches the outstanding acquisition, handed back otherwise — so a
// stale or unwanted entry can never let a later acquisition run
// unlocked. Caller holds n.mu.
func (n *Node) applySessionLock(g *memberGroup, m wire.Message) {
	l := LockID(m.Lock)
	s := m.Session
	switch {
	case m.Val == Free:
		sv := g.sess[l]
		if sv != nil && len(sv.holders) > 0 {
			clear(sv.holders)
			sv.mine = false
		}
		if _, ok := g.lockVal[l]; !ok {
			// Materialize the lock-value entry so election reports keep
			// carrying this lock's grant epoch across a failover.
			g.lockVal[l] = Free
		}
		for _, hook := range g.lockHooks[l] {
			if hook(Free) == HookSuspend {
				g.suspended = true
			}
		}
		n.runSessHooks(g, l, SessEvent{Kind: SessClose, Session: s})
		g.lock.notifyAll()
	case m.Val > 0:
		n.applySessionEntry(g, m)
	default:
		// A holder left; the session stays open.
		node := holderOf(-m.Val)
		sv := g.sess[l]
		if sv != nil && sv.session == s {
			delete(sv.holders, node)
			if node == n.id {
				sv.mine = false
			}
		}
		n.runSessHooks(g, l, SessEvent{Kind: SessLeave, Session: s, Node: node})
		g.lock.notifyAll()
	}
}

// applySessionEntry handles the entry half of applySessionLock. Caller
// holds n.mu.
func (n *Node) applySessionEntry(g *memberGroup, m wire.Message) {
	l := LockID(m.Lock)
	s := m.Session
	node := holderOf(m.Val)
	entryEpoch := m.Var
	token := uint32(m.Origin)
	sv := g.sess[l]
	if sv == nil || len(sv.holders) == 0 || sv.session != s {
		// The section (re)opens here. The lock value stays (or becomes)
		// Free — the session protocol does not use it — but the entry
		// must exist so election reports keep carrying the lock's epoch.
		sv = &sessView{session: s, holders: make(map[int]uint32)}
		g.sess[l] = sv
		if _, ok := g.lockVal[l]; !ok {
			g.lockVal[l] = Free
		}
	}
	if node == n.id {
		if entryEpoch <= g.lockDone[l] {
			// Stale duplicate of an entry this node already finished with;
			// answer with a release so a root that lost our leave does not
			// re-announce forever (see the exclusive twin in
			// applyLockValue).
			n.sessionRelease(g, l, entryEpoch, s)
			return
		}
		if !sv.mine && (!g.want[l] || token != g.reqToken[l]) {
			// Unwanted, or minted for a different acquisition (a cancel in
			// flight, or a token-less failover re-queue): hand it straight
			// back, recording the observed epoch so later speculation tags
			// stay clean.
			if entryEpoch > g.lockDone[l] {
				g.lockDone[l] = entryEpoch
			}
			if entryEpoch > g.grantEpoch[l] {
				g.grantEpoch[l] = entryEpoch
			}
			n.sessionRelease(g, l, entryEpoch, s)
			g.lock.notifyAll()
			return
		}
		sv.mine = true
		sv.holders[n.id] = entryEpoch
		// Acquisition complete: stop the watchdog's clock on it.
		delete(g.reqSince, l)
	} else {
		sv.holders[node] = entryEpoch
	}
	if entryEpoch > g.grantEpoch[l] {
		g.grantEpoch[l] = entryEpoch
	}
	// An open session is a busy lock for exclusive observers: run the
	// classic hooks with the entrant's grant value so an exclusive
	// speculator's interrupt fires exactly as on an exclusive grant.
	for _, hook := range g.lockHooks[l] {
		if hook(GrantValue(node)) == HookSuspend {
			g.suspended = true
		}
	}
	n.runSessHooks(g, l, SessEvent{Kind: SessEnter, Session: s, Node: node})
	g.lock.notifyAll()
}

// sessionRelease sends a release for one session entry. Caller holds
// n.mu.
func (n *Node) sessionRelease(g *memberGroup, l LockID, entryEpoch uint32, session uint32) {
	n.send(g.rootID, wire.Message{
		Type:    wire.TLockRel,
		Group:   uint32(g.cfg.ID),
		Src:     int32(n.id),
		Origin:  int32(n.id),
		Lock:    uint32(l),
		Var:     entryEpoch,
		Epoch:   g.epoch,
		Session: session,
	})
}

// installSessionView re-bases a lock's session state from a failover
// snapshot or promotion: the reconstructed holder set replaces the
// local view wholesale. A reconstructed self-entry is kept only if this
// node already believed it held one (the entry tokens died with the old
// root, so belief is the only validation left — the exact analog of the
// exclusive re-base accepting a self-grant the local copy already
// shows); otherwise it is handed back like a declined grant. Caller
// holds n.mu.
func (n *Node) installSessionView(g *memberGroup, l LockID, session uint32, holders map[int]uint32, epoch uint32) {
	prior := g.sess[l]
	priorMine := prior != nil && prior.mine
	nv := &sessView{session: session, holders: make(map[int]uint32, len(holders))}
	for _, h := range sortedKeys(holders) {
		ee := holders[h]
		if h == n.id && !priorMine {
			if ee > g.lockDone[l] {
				g.lockDone[l] = ee
			}
			n.sessionRelease(g, l, ee, session)
			continue
		}
		nv.holders[h] = ee
		if h == n.id {
			nv.mine = true
			delete(g.reqSince, l)
		}
	}
	g.sess[l] = nv
	if _, ok := g.lockVal[l]; !ok {
		g.lockVal[l] = Free
	}
	if epoch > g.grantEpoch[l] {
		g.grantEpoch[l] = epoch
	}
	if len(nv.holders) > 0 {
		low := -1
		for _, h := range sortedKeys(nv.holders) {
			low = h
			break
		}
		for _, hook := range g.lockHooks[l] {
			if hook(GrantValue(low)) == HookSuspend {
				g.suspended = true
			}
		}
		n.runSessHooks(g, l, SessEvent{Kind: SessEnter, Session: session, Node: low})
	}
	g.lock.notifyAll()
}

// sessionInfo assembles the lock's observed session state. Caller holds
// n.mu.
func (g *memberGroup) sessionInfo(l LockID) SessionInfo {
	sv := g.sess[l]
	if sv == nil || len(sv.holders) == 0 {
		return SessionInfo{}
	}
	return SessionInfo{Session: sv.session, Holders: len(sv.holders), Mine: sv.mine}
}

// SessionState returns the lock's locally observed session state: the
// open session, how many concurrent holders this node has seen enter
// and not leave, and whether it holds an entry itself. Exclusive
// sections report as no open session — LockValue carries those.
func (n *Node) SessionState(gid GroupID, l LockID) (SessionInfo, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return SessionInfo{}, err
	}
	return g.sessionInfo(l), nil
}

// SendSessionRequest issues the non-blocking half of a session entry:
// ship the request for the given session (0 = exclusive, identical to
// SendLockRequest) and return. Pair with WaitSessionCond or poll
// SessionState; the optimistic engine pairs it with its own waits.
func (n *Node) SendSessionRequest(gid GroupID, l LockID, session uint32) error {
	return n.sendLockRequestS(gid, l, session, 0)
}

// WaitSessionCond blocks until cond is satisfied by the lock's observed
// session state (checked immediately and after every lock change). It
// returns false if the node closes first.
func (n *Node) WaitSessionCond(gid GroupID, l LockID, cond func(SessionInfo) bool) (bool, error) {
	return n.WaitSessionCondContext(context.Background(), gid, l, cond, false)
}

// WaitSessionCondContext is WaitSessionCond with cancellation and an
// optional periodic request retry (resend), which callers racing a root
// failover use so a request that died with the old root is re-issued to
// the new one.
func (n *Node) WaitSessionCondContext(ctx context.Context, gid GroupID, l LockID, cond func(SessionInfo) bool, resend bool) (bool, error) {
	return n.waitLockF(ctx, gid, l, func(g *memberGroup) bool { return cond(g.sessionInfo(l)) }, resend)
}

// EnterSession blocks until this node holds an entry in the lock's
// given session. Session 0 is exactly Acquire.
func (n *Node) EnterSession(gid GroupID, l LockID, session uint32) error {
	return n.EnterSessionContext(context.Background(), gid, l, session)
}

// EnterSessionContext is EnterSession with cancellation. On
// cancellation or deadline it withdraws the queued request from the
// root (leaving the session instead if the entry raced the
// cancellation) and returns ctx's error. Entering a session that is
// already open with nobody else waiting is near-free: the root admits
// the join without closing the section.
func (n *Node) EnterSessionContext(ctx context.Context, gid GroupID, l LockID, session uint32) error {
	if session == 0 {
		return n.AcquireContext(ctx, gid, l)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	start := n.clock.Now()
	if err := n.sendLockRequestS(gid, l, session, ctxDeadline(ctx)); err != nil {
		return err
	}
	cond := func(g *memberGroup) bool {
		sv := g.sess[l]
		return sv != nil && sv.mine && sv.session == session
	}
	ok, err := n.waitLockF(ctx, gid, l, cond, true)
	if err != nil {
		if cerr := n.CancelLockRequest(gid, l); cerr != nil {
			n.mu.Lock()
			n.protoErr("gwc: node %d cancel session entry %d: %w", n.id, l, cerr)
			n.mu.Unlock()
		}
		return err
	}
	if !ok {
		return fmt.Errorf("gwc: node %d closed while entering session %d of lock %d: %w", n.id, session, l, ErrClosed)
	}
	n.metrics.Hist(obs.HistLockAcquire).Record(n.clock.Now().Sub(start))
	return nil
}

// LeaveSession gives up this node's entry in the lock's open session.
// Like Release, the leave follows the section's last shared write on
// the same path, so GWC ordering guarantees every member sees the data
// before the session state changes. Leaving an exclusively held lock
// delegates to Release, so Enter/Leave pair for session 0 too.
func (n *Node) LeaveSession(gid GroupID, l LockID) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	sv := g.sess[l]
	if sv == nil || !sv.mine {
		if g.lockValue(l) == GrantValue(n.id) {
			n.mu.Unlock()
			return n.Release(gid, l)
		}
		n.mu.Unlock()
		return fmt.Errorf("gwc: node %d leaving session lock %d it has not entered", n.id, l)
	}
	n.flushWrites(g, flushRelease)
	my := sv.holders[n.id]
	session := sv.session
	delete(sv.holders, n.id)
	sv.mine = false
	if my > g.lockDone[l] {
		g.lockDone[l] = my
	}
	delete(g.want, l)
	delete(g.reqSince, l)
	delete(g.reqSession, l)
	root := g.rootID
	g.lock.notifyAll()
	msg := wire.Message{
		Type:    wire.TLockRel,
		Group:   uint32(gid),
		Src:     int32(n.id),
		Origin:  int32(n.id),
		Lock:    uint32(l),
		Var:     my, // quoted so the root can discard stale duplicates
		Epoch:   g.epoch,
		Session: session,
	}
	n.mu.Unlock()
	return n.ep.Send(root, msg)
}

// OnSessionChange registers a hook invoked on every observed session
// transition of the lock (entries, leaves, closes — and, with Session
// 0, an exclusive grant displacing an open session). The returned
// function unregisters it.
func (n *Node) OnSessionChange(gid GroupID, l LockID, hook SessionHook) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return nil, err
	}
	g.hookSeq++
	token := g.hookSeq
	if g.sessHooks[l] == nil {
		g.sessHooks[l] = make(map[uint64]SessionHook)
	}
	g.sessHooks[l][token] = hook
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(g.sessHooks[l], token)
	}, nil
}

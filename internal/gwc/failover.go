package gwc

import (
	"sort"
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Crash fault tolerance.
//
// The group root is a single point of failure: it sequences every write
// and owns the lock queues. To survive its crash, each reign of a root is
// numbered with an epoch (the founding root reigns in epoch 0). Roots
// heartbeat their members every maintenance interval; a member that has
// heard nothing from its root for failAfter suspects it and starts an
// election for epoch+1. Elections are deterministic: the surviving member
// with the lowest ID is the candidate, everyone else streams it a report
// of their local state (applied sequence number, variable copies, lock
// copies), and once electWait has passed *and* reports from a majority of
// the configured membership are in hand (its own state counts as one),
// the candidate promotes itself, rebuilding the authoritative state from
// the most advanced reports:
//
//   - variables come from the reports with the highest applied sequence
//     number; a lone dissenting value among them is an eager local write
//     whose up-message died with the old root and is adopted;
//   - a lock's holder is believed only if the holder's own report still
//     shows the grant (a holder that reported a free value has released;
//     a suspected holder is freed, which is safe because its stale-epoch
//     traffic can no longer enter the group);
//   - queues are rebuilt from reporters whose local copy still shows
//     their own pending request; anyone missed re-queues via the request
//     retry timer.
//
// The new root restarts sequence numbering at 1 for its epoch and members
// re-base through a snapshot (TSnapVar/TSnapLock/TSnapDone) requested on
// adoption. Stale-epoch messages are rejected on both sides, so a revived
// old root is harmlessly deposed the moment it hears from the new reign.
//
// The quorum gate makes reigns partition-safe (a minority side can never
// start one; see also the root's fencing lease in fence.go) at a cost:
// a group that loses a majority of its members — a 2-node group losing
// either, in particular — stops failing over and waits for revivals or
// rejoins (rejoin.go) to restore a quorum. That is the standard CP
// trade.

// lockSnap is one lock's accumulated state in a report or snapshot.
// Exclusive protocol frames (Session 0) fill val; session frames add
// one holder (Val > 0, holders[node] = entry epoch) or a pending
// session request (Val < 0, reqSession) each. epoch is the highest
// grant epoch seen on any frame for the lock.
type lockSnap struct {
	val        int64
	epoch      uint32
	session    uint32
	holders    map[int]uint32
	reqSession uint32
}

// absorb folds one TSnapLock frame into the accumulated state.
func (s *lockSnap) absorb(m wire.Message) {
	if m.Var > s.epoch {
		s.epoch = m.Var
	}
	if m.Session == 0 {
		s.val = m.Val
		return
	}
	if m.Val > 0 {
		if s.holders == nil {
			s.holders = make(map[int]uint32)
		}
		s.holders[holderOf(m.Val)] = m.Var
		s.session = m.Session
		return
	}
	s.reqSession = m.Session
}

// snapReport accumulates one sender's state stream: an election report
// from a peer, or a catch-up snapshot from the root.
type snapReport struct {
	seq   uint64
	vars  map[VarID]int64
	locks map[LockID]lockSnap
	done  bool
}

func newSnapReport(seq uint64) *snapReport {
	return &snapReport{
		seq:   seq,
		vars:  make(map[VarID]int64),
		locks: make(map[LockID]lockSnap),
	}
}

// heartbeat announces this root's reign to every member. Caller holds
// n.mu.
func (n *Node) heartbeat(gid GroupID, r *rootGroup) {
	for _, member := range r.cfg.Members {
		if member == n.id {
			continue
		}
		n.send(member, wire.Message{
			Type:  wire.THeartbeat,
			Group: uint32(gid),
			Src:   int32(n.id),
			Seq:   r.ring.seq(),
			Val:   int64(n.id),
			Epoch: r.epoch,
		})
	}
}

// handleHeartbeat processes a root's liveness announcement (Val carries
// the claimed root ID). Caller holds n.mu.
func (n *Node) handleHeartbeat(g *memberGroup, m wire.Message) {
	claimed := int(m.Val)
	switch {
	case m.Epoch > g.epoch || (m.Epoch == g.epoch && claimed < g.rootID):
		// A newer reign — or a same-epoch split, which the lower node ID
		// wins so both halves converge on one root.
		n.adoptEpoch(g, m.Epoch, claimed)
	case m.Epoch < g.epoch || claimed != g.rootID:
		// A deposed root still announcing itself: point it at this epoch.
		n.stats.StaleEpochRejected++
		n.maybeNotice(g, int(m.Src))
	default:
		g.lastRoot = n.clock.Now()
		g.electing = false
		delete(g.suspected, g.rootID)
		if !g.snapWanted && !g.rejoining &&
			m.Seq >= g.nextSeq-1+uint64(g.cfg.HistorySize) {
			// The root's sequence number is beyond what its history buffer
			// can retransmit to us — typical for a member revived after a
			// long crash. NACK repair would only count LostHistory; fetch a
			// snapshot instead.
			g.snapWanted = true
			g.snapBuf = nil
		}
	}
}

// maybeNotice tells a stale sender about the current reign, rate-limited
// per group so floods of old-epoch traffic produce one corrective
// heartbeat per interval. Caller holds n.mu.
func (n *Node) maybeNotice(g *memberGroup, to int) {
	now := n.clock.Now()
	if now.Sub(g.lastNotice) < n.retryIn {
		return
	}
	g.lastNotice = now
	n.send(to, wire.Message{
		Type:  wire.THeartbeat,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Val:   int64(g.rootID),
		Epoch: g.epoch,
	})
}

// adoptEpoch switches the member to a newer reign (or the lower-ID
// winner of a same-epoch split): sequence reassembly restarts at 1 and a
// state snapshot is requested from the new root. If this node was itself
// a root for the group, it stands down. Caller holds n.mu.
func (n *Node) adoptEpoch(g *memberGroup, epoch uint32, root int) {
	if epoch < g.epoch || (epoch == g.epoch && root >= g.rootID) {
		return
	}
	if root == n.id {
		// Hearsay about a reign of our own that we know nothing about
		// (promotion happens locally, never by adoption); waiting on a
		// snapshot from ourselves would deadlock.
		return
	}
	if _, wasRoot := n.roots[g.cfg.ID]; wasRoot {
		delete(n.roots, g.cfg.ID)
		n.stats.Demotions++
		n.emit(obs.EvDemoted, g.cfg.ID, int64(root), int64(epoch))
	}
	n.emit(obs.EvReignChange, g.cfg.ID, int64(root), int64(epoch))
	g.epoch = epoch
	g.rootID = root
	g.lastRoot = n.clock.Now()
	g.electing = false
	g.snapWanted = true
	g.snapBuf = nil
	g.reports = nil
	g.nextSeq = 1
	g.pending = make(map[uint64]wire.Message)
	// Adoption supersedes an in-flight rejoin (the snapshot path now does
	// the catching up), and acks restart with the reign's numbering. The
	// new reign also resets every retry backoff: outstanding requests
	// re-register with the new root at full cadence.
	g.rejoining = false
	g.acked = 0
	g.resetRetrySchedules()
	// Leases and handoff hints were claims against the deposed reign's
	// lock manager; none survive a reign change (lease.go).
	n.dropLeases(g)
	// The digest restarts with the reign; the snapshot's TSnapDone
	// re-anchors it to the new root's sum, which also clears any
	// divergence conviction from the old reign.
	g.digest.Reset()
	g.diverged = false
	// The old spanning tree was rooted at the old root; failover reigns
	// use direct fanout.
	g.children = nil
	// Everyone the electorate skipped over to reach this root must have
	// been suspected; remember that so a follow-up election agrees.
	for _, member := range g.cfg.Members {
		if member < root && member != n.id {
			g.suspected[member] = true
		}
	}
	delete(g.suspected, root)
	n.send(root, wire.Message{
		Type:  wire.TSnapReq,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Epoch: epoch,
	})
}

// candidate returns the lowest-ID member not suspected dead, or -1.
func (g *memberGroup) candidate() int {
	best := -1
	for _, m := range g.cfg.Members {
		if g.suspected[m] {
			continue
		}
		if best == -1 || m < best {
			best = m
		}
	}
	return best
}

// detectFailure drives the member side of failure detection each
// maintenance tick: suspect a silent root, report state to the election
// candidate, promote if we are the candidate, and cascade to the next
// candidate if the chosen one is dead too. Caller holds n.mu.
func (n *Node) detectFailure(gid GroupID, g *memberGroup, now time.Time) {
	if len(g.cfg.Members) < 2 {
		return // no one to fail over to
	}
	if now.Sub(g.lastRoot) <= n.failAfter {
		return
	}
	if !g.electing {
		g.electing = true
		g.electEpoch = g.epoch + 1
		g.electBegan = now
		g.suspected[g.rootID] = true
		n.stats.Elections++
		n.emit(obs.EvElection, gid, int64(g.candidate()), int64(g.electEpoch))
	}
	cand := g.candidate()
	switch {
	case cand == -1:
		// Nobody left standing; keep waiting for a revival.
	case cand == n.id:
		if now.Sub(g.electBegan) >= n.electWait && n.reportQuorum(g) {
			// Quorum-gated promotion: the candidate must hold state
			// reports from a majority of the configured membership (its
			// own state counts as one) before starting a reign. A minority
			// partition therefore waits forever instead of electing a
			// competing root, and the report majority is guaranteed to
			// intersect any quorum-acked write's ack set.
			n.promote(gid, g)
		}
	case now.Sub(g.electBegan) > n.electWait+n.failAfter:
		// The candidate had ample time to take over and has not; it must
		// be down as well. Suspect it and restart the clock for the next.
		g.suspected[cand] = true
		g.electBegan = now
	default:
		n.sendReport(g, cand)
	}
}

// reportQuorum reports whether the candidate holds finished election
// reports for the running election's epoch from a majority of the
// configured membership, counting its own local state as one report.
// Reports are re-sent every tick, so a transiently mid-stream report
// only delays the count, never sticks. Caller holds n.mu.
func (n *Node) reportQuorum(g *memberGroup) bool {
	count := 1 // this candidate's own state
	if g.reportEpoch == g.electEpoch {
		for src, rep := range g.reports {
			if rep.done && src != n.id && g.cfg.memberOf(src) {
				count++
			}
		}
	}
	return count >= len(g.cfg.Members)/2+1
}

// sendReport streams this member's local state to the election
// candidate. It is re-sent every tick while the election runs, so a lost
// report only delays, never prevents, reconstruction. Caller holds n.mu.
func (n *Node) sendReport(g *memberGroup, to int) {
	// Reporting state to a would-be reign forfeits every lease first
	// (idempotent): an idle cached lock reports as free, so the rebuilt
	// manager cannot resurrect a holder that would never release.
	n.dropLeases(g)
	base := wire.Message{
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Seq:   g.nextSeq - 1,
		Epoch: g.electEpoch,
	}
	msgs := make([]wire.Message, 0, len(g.mem)+len(g.lockVal)+1)
	for _, v := range sortedKeys(g.mem) {
		m := base
		m.Type = wire.TSnapVar
		m.Var = uint32(v)
		m.Val = g.mem[v]
		msgs = append(msgs, m)
	}
	for _, l := range sortedKeys(g.lockVal) {
		m := base
		m.Type = wire.TSnapLock
		m.Lock = uint32(l)
		m.Var = g.grantEpoch[l]
		m.Val = g.lockVal[l]
		msgs = append(msgs, m)
	}
	// Session state rides as extra frames: one per observed holder, plus
	// a request marker when this node waits to enter a session (exclusive
	// waits already show as RequestValue in the lockVal loop above).
	for _, l := range sortedKeys(g.sess) {
		sv := g.sess[l]
		if len(sv.holders) == 0 {
			continue
		}
		for _, h := range sortedKeys(sv.holders) {
			m := base
			m.Type = wire.TSnapLock
			m.Lock = uint32(l)
			m.Var = sv.holders[h]
			m.Val = GrantValue(h)
			m.Session = sv.session
			msgs = append(msgs, m)
		}
	}
	for _, l := range sortedKeys(g.reqSession) {
		sess := g.reqSession[l]
		if sess == 0 || !g.want[l] {
			continue
		}
		if sv := g.sess[l]; sv != nil && sv.mine {
			continue
		}
		m := base
		m.Type = wire.TSnapLock
		m.Lock = uint32(l)
		m.Var = g.grantEpoch[l]
		m.Val = RequestValue(n.id)
		m.Session = sess
		msgs = append(msgs, m)
	}
	done := base
	done.Type = wire.TSnapDone
	msgs = append(msgs, done)
	n.sendStream(to, g.cfg.ID, g.electEpoch, msgs)
}

// promote makes this node the group's root for the election epoch,
// reconstructing the authoritative state from its own copy and the peer
// reports collected during the grace period. Caller holds n.mu.
func (n *Node) promote(gid GroupID, g *memberGroup) {
	// The new reign starts with a clean lease slate; our own idle cached
	// locks free themselves before the merge below reads lockVal.
	n.dropLeases(g)
	epoch := g.electEpoch
	own := newSnapReport(g.nextSeq - 1)
	for v, val := range g.mem {
		own.vars[v] = val
	}
	for l, val := range g.lockVal {
		own.locks[l] = lockSnap{val: val, epoch: g.grantEpoch[l]}
	}
	for l, sv := range g.sess {
		if len(sv.holders) == 0 {
			continue
		}
		s := own.locks[l]
		s.session = sv.session
		s.holders = make(map[int]uint32, len(sv.holders))
		for h, ee := range sv.holders {
			s.holders[h] = ee
			if ee > s.epoch {
				s.epoch = ee
			}
		}
		own.locks[l] = s
	}
	for l, sess := range g.reqSession {
		if sess == 0 || !g.want[l] {
			continue
		}
		if sv := g.sess[l]; sv != nil && sv.mine {
			continue
		}
		s := own.locks[l]
		s.reqSession = sess
		own.locks[l] = s
	}
	own.done = true
	reps := map[int]*snapReport{n.id: own}
	if g.reportEpoch == epoch {
		for src, rep := range g.reports {
			if rep.done && src != n.id {
				reps[src] = rep
			}
		}
	}
	auth := mergeVars(reps)
	locks := rebuildLocks(reps, g.suspected)

	cfg := g.cfg
	cfg.Root = n.id
	cfg.TreeFanout = false
	guards := make(map[VarID]LockID, len(g.cfg.Guards))
	for v, l := range g.cfg.Guards {
		guards[v] = l
	}
	cfg.Guards = guards
	r := newRootGroup(cfg, n.clock.Now())
	r.epoch = epoch
	for v, val := range auth {
		r.auth[v] = val
	}
	r.locks = locks
	for _, ls := range locks {
		// Reconstructed holders enter the gauge so their eventual leaves
		// balance it.
		if !ls.free() {
			n.metrics.Gauge(obs.GaugeSessHolders).Add(int64(len(ls.holders)))
		}
	}
	n.roots[gid] = r
	n.stats.Failovers++
	// Failover duration: from the first suspicion of the old root to the
	// moment the new reign's authoritative state exists.
	n.metrics.Hist(obs.HistFailover).Record(n.clock.Now().Sub(g.electBegan))
	n.emit(obs.EvReignChange, gid, int64(n.id), int64(epoch))

	// Re-base the member side onto the new reign: sequence numbering
	// restarts at 1 and the merged state becomes the local copy.
	g.epoch = epoch
	g.rootID = n.id
	g.lastRoot = n.clock.Now()
	g.electing = false
	g.snapWanted = false
	g.snapBuf = nil
	g.reports = nil
	g.nextSeq = 1
	g.pending = make(map[uint64]wire.Message)
	g.rejoining = false
	g.acked = 0
	g.children = nil
	g.resetRetrySchedules()
	// The reign's digest starts empty (the merged base state is not
	// folded, on either side), so the member copy restarts in agreement
	// with the fresh rootGroup digest.
	g.digest.Reset()
	g.diverged = false
	for _, v := range sortedKeys(auth) {
		n.applyVarValue(g, v, auth[v])
	}
	for _, l := range sortedKeys(locks) {
		ls := locks[l]
		if !ls.free() && ls.session != 0 {
			n.installSessionView(g, l, ls.session, ls.entryEpochs, ls.epoch)
			continue
		}
		val := Free
		if h := ls.soleHolder(); h != -1 {
			val = GrantValue(h)
		}
		n.applyLockValue(g, l, val, ls.epoch, 0, 0)
	}
	// Free locks with survivors queued move on immediately; everyone
	// else learns the holder from the grant multicast or the snapshot.
	for _, l := range sortedKeys(r.locks) {
		ls := r.locks[l]
		if ls.free() {
			if next, ok := n.popWaiter(ls); ok {
				n.grant(r, l, ls, next)
				n.admitSession(r, l, ls)
			}
		}
	}
	n.heartbeat(gid, r)
}

// mergeVars reconstructs the variable store from the reports with the
// highest applied sequence number. Those reports saw the same sequenced
// prefix, so their copies differ only by eager local writes that never
// reached the old root; a lone dissenting value is such a write and is
// adopted. Remaining conflicts resolve to the lowest reporter.
func mergeVars(reps map[int]*snapReport) map[VarID]int64 {
	var best uint64
	for _, rep := range reps {
		if rep.seq > best {
			best = rep.seq
		}
	}
	type vote struct {
		val int64
		src int
	}
	votes := make(map[VarID][]vote)
	for src, rep := range reps {
		if rep.seq != best {
			continue
		}
		for v, val := range rep.vars {
			votes[v] = append(votes[v], vote{val, src})
		}
	}
	out := make(map[VarID]int64, len(votes))
	for v, vs := range votes {
		counts := make(map[int64]int)
		for _, vt := range vs {
			counts[vt.val]++
		}
		if len(counts) == 2 && len(vs) > 2 {
			for _, vt := range vs {
				if counts[vt.val] == 1 {
					out[v] = vt.val // the lone eager write
				}
			}
			if _, ok := out[v]; ok {
				continue
			}
		}
		// Unanimous — or ambiguous, where the lowest reporter wins so
		// every would-be root reconstructs identically.
		bestSrc := -1
		for _, vt := range vs {
			if bestSrc == -1 || vt.src < bestSrc {
				bestSrc = vt.src
				out[v] = vt.val
			}
		}
	}
	return out
}

// rebuildLocks reconstructs the lock manager's state from member
// reports (see the package comment above for the rules).
func rebuildLocks(reps map[int]*snapReport, suspected map[int]bool) map[LockID]*lockState {
	ids := make(map[LockID]bool)
	for _, rep := range reps {
		for l := range rep.locks {
			ids[l] = true
		}
	}
	out := make(map[LockID]*lockState, len(ids))
	for l := range ids {
		ls := &lockState{
			holders:     make(map[int]uint32),
			entryEpochs: make(map[int]uint32),
			lastWinner:  -1,
		}
		for _, rep := range reps {
			if s, ok := rep.locks[l]; ok && s.epoch > ls.epoch {
				ls.epoch = s.epoch
			}
		}
		// Who was last seen holding it? Only claims from the reports with
		// the newest grant epoch count; older ones saw already-finished
		// sections. An exclusive claim (a positive lock value) and a
		// session claim (holder frames) never coexist in one up-to-date
		// report: a member's session view is reset by any exclusive frame
		// and its lock value shows Free while a session is open.
		claimed := -1
		var sessClaim uint32
		sessHolders := make(map[int]uint32)
		srcs := sortedKeys(reps)
		for _, src := range srcs {
			s, ok := reps[src].locks[l]
			if !ok || s.epoch != ls.epoch {
				continue
			}
			if h := holderOf(s.val); h >= 0 {
				claimed = h
			}
			if len(s.holders) > 0 {
				sessClaim = s.session
				for h, ee := range s.holders {
					if ee > sessHolders[h] {
						sessHolders[h] = ee
					}
				}
			}
		}
		if claimed >= 0 {
			// An exclusive claim at the newest epoch supersedes any session
			// evidence (it must be older).
			sessClaim, sessHolders = 0, nil
			if own, ok := reps[claimed]; ok {
				if s, ok := own.locks[l]; !ok || s.val != GrantValue(claimed) {
					// The holder's own copy shows no grant: it released,
					// and only the release message died with the root.
					claimed = -1
				}
			} else if suspected[claimed] {
				// The holder died with the old root. Freeing is safe: its
				// stale-epoch traffic can no longer enter the group.
				claimed = -1
			}
			// A live holder that merely failed to report stays holder —
			// safety (no double grant) over liveness; its retries or its
			// release resolve the lock.
		}
		// Validate each claimed session holder by the same rules as an
		// exclusive holder: its own report is the final word on whether it
		// still holds, a suspected non-reporter is freed, a live
		// non-reporter is kept for safety.
		for h := range sessHolders {
			if own, ok := reps[h]; ok {
				s, ok := own.locks[l]
				if !ok || s.session != sessClaim {
					delete(sessHolders, h)
					continue
				}
				if _, holds := s.holders[h]; !holds {
					delete(sessHolders, h)
				}
			} else if suspected[h] {
				delete(sessHolders, h)
			}
		}
		switch {
		case claimed >= 0:
			ls.holders[claimed] = 0
			ls.entryEpochs[claimed] = ls.epoch
			ls.lastWinner = claimed
		case len(sessHolders) > 0:
			for h, ee := range sessHolders {
				ls.holders[h] = 0
				ls.entryEpochs[h] = ee
			}
			ls.session = sessClaim
			ls.lastSession = sessClaim
		}
		if ls.epoch > 0 {
			// Who won the grants leading up to the reconstructed epoch died
			// with the old root. Treating the newest grant's predecessor as
			// foreign keeps the pre-failover acceptance window (tag or
			// tag+1) without ever widening it.
			ls.foreignEpoch = ls.epoch - 1
		}
		// Reporters whose local copy still shows their own pending
		// request re-queue in ID order (the old order died with the old
		// root); anyone missed re-queues via the request retry timer. The
		// acquisition tokens died with the old root, so re-queued entries
		// carry token 0: the grant is declined and the member's retry
		// re-registers the request with its live token (one extra round
		// trip, never a wrong consumption). Session requests re-queue
		// with their session, from the reqSession markers.
		var waiters []lockWaiter
		for src, rep := range reps {
			if ls.holds(src) {
				continue
			}
			s, ok := rep.locks[l]
			if !ok {
				continue
			}
			if s.val == RequestValue(src) {
				waiters = append(waiters, lockWaiter{node: src})
			} else if s.reqSession != 0 {
				waiters = append(waiters, lockWaiter{node: src, session: s.reqSession})
			}
		}
		sort.Slice(waiters, func(i, j int) bool { return waiters[i].node < waiters[j].node })
		ls.queue = append(ls.queue, waiters...)
		out[l] = ls
	}
	return out
}

// holderOf decodes a lock value into the holding node, or -1.
func holderOf(val int64) int {
	if val <= 0 {
		return -1
	}
	return int(val - 1)
}

// handleSnap routes a state stream message: a catch-up snapshot from the
// current root, or an election report from a peer for a future epoch.
// Caller holds n.mu.
func (n *Node) handleSnap(g *memberGroup, m wire.Message) {
	switch {
	case m.Epoch == g.epoch && int(m.Src) == g.rootID:
		if !g.snapWanted {
			return // duplicate stream; already synced
		}
		n.snapApply(g, m)
	case m.Epoch > g.epoch:
		n.reportPiece(g, m)
	default:
		n.stats.StaleEpochRejected++
	}
}

// snapApply buffers a snapshot stream from the root and applies it
// atomically when the final piece arrives. The snapshot was taken at the
// root's sequence m.Seq; it is discarded as stale if this member has
// already applied past that point (the periodic re-request fetches a
// fresher one). Caller holds n.mu.
func (n *Node) snapApply(g *memberGroup, m wire.Message) {
	g.lastRoot = n.clock.Now()
	if g.snapBuf == nil || g.snapBufSeq != m.Seq {
		g.snapBuf = newSnapReport(m.Seq)
		g.snapBufSeq = m.Seq
	}
	switch m.Type {
	case wire.TSnapVar:
		g.snapBuf.vars[VarID(m.Var)] = m.Val
	case wire.TSnapLock:
		l := LockID(m.Lock)
		s := g.snapBuf.locks[l]
		s.absorb(m)
		g.snapBuf.locks[l] = s
	case wire.TSnapDone:
		snap := g.snapBuf
		g.snapBuf = nil
		if m.Seq+1 < g.nextSeq {
			return // stale snapshot; keep snapWanted and re-request
		}
		for _, v := range sortedKeys(snap.vars) {
			n.applyVarValue(g, v, snap.vars[v])
		}
		for _, l := range sortedKeys(snap.locks) {
			s := snap.locks[l]
			if len(s.holders) > 0 {
				n.installSessionView(g, l, s.session, s.holders, s.epoch)
				continue
			}
			n.applyLockValue(g, l, s.val, s.epoch, 0, 0)
		}
		g.nextSeq = m.Seq + 1
		// Re-anchor the integrity digest to the root's sum at the
		// snapshot watermark (carried on TSnapDone). The replayed
		// pending messages below fold on top, exactly as they folded on
		// the root — and a diverged copy is now repaired.
		g.digest.Rebase(uint64(m.Val))
		g.diverged = false
		for s := range g.pending {
			if s < g.nextSeq {
				delete(g.pending, s)
			}
		}
		for {
			next, ok := g.pending[g.nextSeq]
			if !ok {
				break
			}
			delete(g.pending, g.nextSeq)
			n.applySeq(g, next)
			g.nextSeq++
		}
		g.snapWanted = false
		n.emit(obs.EvSnapApplied, g.cfg.ID, int64(m.Seq), int64(g.epoch))
		// The snapshot may have advanced the applied prefix by a lot;
		// tell the quorum watermark at once.
		n.maybeSendAck(g)
	}
}

// reportPiece buffers one piece of a peer's election report while this
// node is (or is about to learn it is) the candidate. Caller holds n.mu.
func (n *Node) reportPiece(g *memberGroup, m wire.Message) {
	if m.Epoch > g.reportEpoch {
		g.reportEpoch = m.Epoch
		g.reports = make(map[int]*snapReport)
	} else if m.Epoch < g.reportEpoch {
		return
	}
	if g.reports == nil {
		g.reports = make(map[int]*snapReport)
	}
	src := int(m.Src)
	rep := g.reports[src]
	if rep == nil || rep.done {
		// A finished report is superseded by the next tick's re-send (the
		// reporter's state may have moved while the election runs).
		rep = newSnapReport(m.Seq)
		g.reports[src] = rep
	}
	rep.seq = m.Seq
	switch m.Type {
	case wire.TSnapVar:
		rep.vars[VarID(m.Var)] = m.Val
	case wire.TSnapLock:
		l := LockID(m.Lock)
		s := rep.locks[l]
		s.absorb(m)
		rep.locks[l] = s
	case wire.TSnapDone:
		rep.done = true
	}
}

// applyVarValue installs a reconstructed or snapshotted variable value
// through the normal delivery path, so insharing suspension and Watch
// hooks behave exactly as for sequenced updates. Caller holds n.mu.
func (n *Node) applyVarValue(g *memberGroup, v VarID, val int64) {
	m := wire.Message{
		Type:   wire.TSeqUpdate,
		Group:  uint32(g.cfg.ID),
		Origin: -1,
		Var:    uint32(v),
		Val:    val,
	}
	if g.suspended {
		g.suspendQ = append(g.suspendQ, m)
		return
	}
	n.applyData(g, m)
}

// rootSnapSend streams the authoritative state to one member, tagged
// with the root's current sequence number so the receiver can order it
// against live traffic. The stream is built under n.mu, so it is a
// consistent cut. Caller holds n.mu.
func (n *Node) rootSnapSend(r *rootGroup, to int) {
	base := wire.Message{
		Group: uint32(r.cfg.ID),
		Src:   int32(n.id),
		Seq:   r.ring.seq(),
		Epoch: r.epoch,
	}
	msgs := make([]wire.Message, 0, len(r.auth)+len(r.locks)+1)
	for _, v := range sortedKeys(r.auth) {
		m := base
		m.Type = wire.TSnapVar
		m.Var = uint32(v)
		m.Val = r.auth[v]
		msgs = append(msgs, m)
	}
	for _, l := range sortedKeys(r.locks) {
		ls := r.locks[l]
		if !ls.free() && ls.session != 0 {
			// One frame per holder of the open session.
			for _, h := range sortedKeys(ls.holders) {
				m := base
				m.Type = wire.TSnapLock
				m.Lock = uint32(l)
				m.Var = ls.entryEpochs[h]
				m.Val = GrantValue(h)
				m.Session = ls.session
				msgs = append(msgs, m)
			}
			continue
		}
		m := base
		m.Type = wire.TSnapLock
		m.Lock = uint32(l)
		m.Var = ls.epoch
		m.Val = Free
		if h := ls.soleHolder(); h != -1 {
			m.Val = GrantValue(h)
		}
		msgs = append(msgs, m)
	}
	done := base
	done.Type = wire.TSnapDone
	// The root's digest at the snapshot watermark rides on the final
	// frame, so the receiver re-anchors its own digest to it (snapApply)
	// and the next anti-entropy sweep compares cleanly.
	done.Val = int64(r.digest.Sum())
	msgs = append(msgs, done)
	n.sendStream(to, r.cfg.ID, r.epoch, msgs)
}

package gwc

import (
	"sync"
	"testing"
	"time"
)

// TestRetryStormBounded pins the adaptive-retry contract: waiters that
// outlive a root crash re-send their lock requests on a jittered
// exponential backoff, so the total resend traffic across a downtime D
// grows like waiters*log(D/base) — not waiters*D/tick, which is what
// the old flat maintenance-tick resend produced. 16 waiters block
// across a forced failover; the resend frames they emit (LockRequests
// beyond the initial sends) must fit the logarithmic budget and stay
// well under the flat-resend floor for the same downtime.
func TestRetryStormBounded(t *testing.T) {
	const (
		waiters   = 16
		retry     = 10 * time.Millisecond
		failAfter = 200 * time.Millisecond
		electWait = 100 * time.Millisecond
		boBase    = 10 * time.Millisecond
		boCap     = 160 * time.Millisecond
	)
	c, fl := newChaosCluster(t, 3, true)
	for _, nd := range c.nodes {
		nd.SetTimers(retry, failAfter, electWait)
		nd.SetBackoff(boBase, boCap)
	}

	baseline := c.nodes[1].Stats().LockRequests + c.nodes[2].Stats().LockRequests

	// The root dies first, so every acquisition below is born into the
	// outage: the initial request lands in a dead mailbox and only the
	// retry schedule keeps it alive until the failover re-homes it.
	fl.Crash(0)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		node := 1 + i%2
		lock := LockID(100 + i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.nodes[node].Acquire(tGroup, lock); err != nil {
				t.Errorf("waiter on node %d lock %d: %v", node, lock, err)
				return
			}
			if err := c.nodes[node].Release(tGroup, lock); err != nil {
				t.Errorf("release on node %d lock %d: %v", node, lock, err)
			}
		}()
	}
	wg.Wait()
	downtime := time.Since(start)

	total := c.nodes[1].Stats().LockRequests + c.nodes[2].Stats().LockRequests
	resends := total - baseline - waiters
	if resends < 0 {
		t.Fatalf("counter went backwards: %d requests for %d waiters", total-baseline, waiters)
	}

	// Per-waiter budget: the climb from base to cap (log2(cap/base)
	// doublings plus the first send at base), the capped tail across the
	// remaining downtime (jitter can halve a delay, hence cap/2), and
	// slack for the schedule reset on the reign change, which buys the
	// prompt re-registration with the new root.
	climb := 1
	for d := boBase; d < boCap; d *= 2 {
		climb++
	}
	perWaiter := climb + int(downtime/(boCap/2)) + 4
	adaptive := waiters * perWaiter
	flat := waiters * int(downtime/retry)
	t.Logf("downtime %v: %d resends (budget %d, flat-resend floor %d)", downtime, resends, adaptive, flat)
	if resends > adaptive {
		t.Errorf("%d resend frames for %d waiters over %v exceeds the O(waiters*log(downtime/base)) budget %d",
			resends, waiters, downtime, adaptive)
	}
	if flat <= adaptive {
		t.Errorf("downtime %v too short to discriminate: flat floor %d <= adaptive budget %d", downtime, flat, adaptive)
	}
}

// TestSyncBarrierSurvivesRejoin pins the race between an in-flight sync
// barrier and a rejoin of the node that issued it: the caller's
// goroutine outlives the "crash" (its request frame died with the
// outage, its volatile group state with the rejoin), so the pending
// barrier must survive the re-admission, re-issue itself on the retry
// schedule under the adopted epoch, and complete — not hang forever on
// a token the root never saw.
func TestSyncBarrierSurvivesRejoin(t *testing.T) {
	const victim = 2
	c, fl := newChaosCluster(t, 3, false)
	if err := c.nodes[victim].Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 1)

	// The root goes dark before the barrier is issued, so the TSyncReq
	// is lost in flight and only the maintenance tick's resend can ever
	// deliver it.
	fl.Crash(0)
	syncErr := make(chan error, 1)
	go func() { syncErr <- c.nodes[victim].Sync(tGroup) }()

	// The issuer bounces while the barrier is pending, losing its
	// volatile state, and rejoins once the root is back.
	fl.Crash(victim)
	fl.Revive(victim)
	if err := c.nodes[victim].Rejoin(tGroup); err != nil {
		t.Fatal(err)
	}
	fl.Revive(0)
	waitFor(t, c, 10*time.Second, "the victim's re-admission", func() bool {
		return c.nodes[victim].Stats().Rejoins >= 1
	})

	select {
	case err := <-syncErr:
		if err != nil {
			t.Fatalf("sync barrier failed across the rejoin: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync barrier never completed after the rejoin")
	}

	// The rejoined issuer is a full citizen again: its writes sequence
	// and converge everywhere.
	if err := c.nodes[victim].Write(tGroup, tVarB, 7); err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.nodes {
		waitValue(t, nd, tVarB, 7)
	}
}

// TestLockTokenRetryAfterGrant pins the idempotence of request retries
// that arrive after their grant: a backoff retry is a duplicate of a
// request the root may have already answered, and it must neither
// re-queue the holder, steal the lock, nor disturb the holder's token.
func TestLockTokenRetryAfterGrant(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	n1, n2 := c.nodes[1], c.nodes[2]
	rootState := func() (holder int, token uint32, queued int) {
		c.nodes[0].mu.Lock()
		defer c.nodes[0].mu.Unlock()
		ls := c.nodes[0].roots[tGroup].lock(tLock)
		return ls.soleHolder(), ls.holders[1], len(ls.queue)
	}

	if err := n1.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	holder, token, _ := rootState()
	if holder != 1 {
		t.Fatalf("holder = %d, want 1", holder)
	}

	// A retry of the granted request: the root must re-announce, not
	// re-queue. Sync is the FIFO fence that proves the frame was handled.
	if err := n1.SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n1.Sync(tGroup); err != nil {
		t.Fatal(err)
	}
	if h, tok, q := rootState(); h != 1 || tok != token || q != 0 {
		t.Fatalf("after retry-of-granted: holder=%d token=%d queue=%d, want 1/%d/0", h, tok, q, token)
	}
	if v, err := n1.LockValue(tGroup, tLock); err != nil || v != GrantValue(1) {
		t.Fatalf("holder's local value = %d (%v), want grant", v, err)
	}

	// A waiter that retries while queued must stay queued once, its
	// entry refreshed rather than duplicated.
	if err := n2.SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitFor(t, c, 5*time.Second, "the waiter to queue", func() bool {
		_, _, q := rootState()
		return q == 1
	})
	if err := n2.SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n2.Sync(tGroup); err != nil {
		t.Fatal(err)
	}
	if _, _, q := rootState(); q != 1 {
		t.Fatalf("waiter retry duplicated its queue entry: %d entries", q)
	}

	// Handoff grants the waiter exactly once; its own late retry after
	// the grant is equally inert.
	if err := n1.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if ok, err := n2.WaitLockGrant(tGroup, tLock); err != nil || !ok {
		t.Fatalf("waiter never granted: ok=%v err=%v", ok, err)
	}
	if err := n2.SendLockRequest(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n2.Sync(tGroup); err != nil {
		t.Fatal(err)
	}
	if h, _, q := rootState(); h != 2 || q != 0 {
		t.Fatalf("after post-grant retry: holder=%d queue=%d, want 2/0", h, q)
	}
	if err := n2.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n1.Acquire(tGroup, tLock); err != nil {
		t.Fatalf("lock stopped flowing after retry storm: %v", err)
	}
	if err := n1.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
}

package gwc

import (
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Lock leasing and peer-to-peer handoff.
//
// The uncontended lock path costs a three-message root round trip even
// when the same member re-acquires the same lock back to back — latency
// the speculation machinery can overlap but never remove. This file
// removes it in the two regimes that dominate lock traffic:
//
//   - *Leasing* (repeat re-acquire): when an exclusive grant goes out
//     and nobody is queued behind it, the root leases the lock to the
//     winner (TLeaseGrant). A leased member keeps the grant cached
//     across Release/Acquire pairs — re-entry is a purely local
//     decision, zero wire messages — renewing on the adaptive backoff
//     while the lease is in use and returning it (TLeaseRet) when it
//     expires idle or the root demands it back for a waiter.
//
//   - *Handoff* (convoy): when a grant goes out with waiters queued,
//     the root piggybacks a *hint* — the head waiter's identity and
//     request token — on the grant multicast. The releasing holder then
//     hands the lock to that waiter directly (one THandoff frame on the
//     critical path) and tells the root asynchronously with a second
//     THandoff notice, re-sent until a sequenced lock frame proves the
//     root caught up. The root stays the arbiter: it validates the
//     notice against its holder record and the epoch the hint reserved,
//     and every conflict path falls back to the classic queue.
//
// Epoch fencing makes the speculative transfer safe: a handoff reserves
// exactly the grant epoch the root's own next grant would mint
// (holder's entry epoch + 1), so the root can recognise the transfer in
// any frame that quotes it — the notice, the new holder's tagged
// writes, or its release — and a reign change invalidates everything at
// once through the ordinary stale-epoch gate. Leases die with their
// reign: members drop them on any re-base (dropLeases), idle cached
// locks reporting as free, and the root's records go down with the
// deposed rootGroup. The root never frees a leased lock on expiry alone
// — only a return, a release, or the rejoin of a crashed leaseholder
// does — so an expired clock can never create two exclusive holders.
//
// Both fast paths are disabled under SetQuorumAcks: a direct transfer
// would bypass the quorum-ack watermark that durable handoffs park on.

// leasing reports whether the lease/handoff fast paths are active.
// Caller holds n.mu.
func (n *Node) leasing() bool { return n.leaseTTL > 0 && !n.quorumAcks }

// SetLeases enables lock leasing and peer handoff with the given lease
// TTL (zero disables). All nodes of a group should agree on the
// setting; it is read on both the member and root paths. Ignored while
// SetQuorumAcks is on — leased re-entries and direct transfers would
// bypass the durability watermark.
func (n *Node) SetLeases(ttl time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.leaseTTL = ttl
}

// memberLease is a member's cached claim on a lock: while it holds, the
// local lock copy keeps GrantValue(self) across releases and re-entry
// is decided locally.
type memberLease struct {
	expiry  time.Time
	ttl     time.Duration
	epoch   uint32 // grant epoch the lease was issued against
	token   uint32 // acquisition token the root records for the grant
	held    bool   // inside the critical section right now
	used    bool   // re-entered locally since the last grant/extension
	revoked bool   // root demanded it back; return on the next Release
	renewB  backoff
}

// handoffHint is the queued waiter the root designated as this holder's
// direct-transfer target, captured from the grant multicast.
type handoffHint struct {
	node  int
	token uint32
}

// handoffNotice is the root-bound half of a handoff in flight: re-sent
// on a backoff until a sequenced lock frame carries a grant epoch at or
// past doneEpoch, which proves the root observed the transfer.
type handoffNotice struct {
	msg       wire.Message
	doneEpoch uint32
	bo        backoff
}

// TryLeaseEnter attempts a purely local lock acquisition under a live
// lease: no wire traffic, no allocation. It returns true when the
// caller now holds the lock and must pair the call with Release.
func (n *Node) TryLeaseEnter(gid GroupID, l LockID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return false
	}
	g, ok := n.groups[gid]
	if !ok {
		return false
	}
	le := g.lease[l]
	if le == nil || le.held || le.revoked {
		return false
	}
	if g.lockVal[l] != GrantValue(n.id) {
		return false
	}
	if !n.clock.Now().Before(le.expiry) {
		return false // expired: the lease tick returns it
	}
	le.held = true
	le.used = true
	n.stats.LeaseLocal++
	n.emit(obs.EvLeaseLocal, gid, int64(l), 0)
	return true
}

// sendLeaseRet ships a lease return quoting the grant epoch it closes.
// Caller holds n.mu.
func (n *Node) sendLeaseRet(g *memberGroup, l LockID, epoch uint32) {
	n.send(g.rootID, wire.Message{
		Type:   wire.TLeaseRet,
		Group:  uint32(g.cfg.ID),
		Src:    int32(n.id),
		Origin: int32(n.id),
		Lock:   uint32(l),
		Var:    epoch,
		Epoch:  g.epoch,
	})
}

// returnIdleLease frees a cached-but-unheld lock locally and returns
// the lease to the root. Caller holds n.mu.
func (n *Node) returnIdleLease(g *memberGroup, l LockID, le *memberLease) {
	delete(g.lease, l)
	g.lockVal[l] = Free
	if le.epoch > g.lockDone[l] {
		g.lockDone[l] = le.epoch
	}
	n.sendLeaseRet(g, l, le.epoch)
	g.lock.notifyAll()
}

// handleLeaseGrant processes a root's lease frame at the member: a
// grant/extension when Deadline carries the TTL, a revoke demand when
// Deadline is zero. Caller holds n.mu.
func (n *Node) handleLeaseGrant(g *memberGroup, m wire.Message) {
	if m.Epoch != g.epoch {
		if m.Epoch < g.epoch {
			n.stats.StaleEpochRejected++
			n.emit(obs.EvStaleEpoch, g.cfg.ID, int64(m.Type), int64(m.Epoch))
		}
		return
	}
	if g.rejoining || g.snapWanted {
		return // not re-based into the reign; leases target live state only
	}
	l := LockID(m.Lock)
	le := g.lease[l]
	if m.Deadline == 0 {
		// Revoke demand: Var names the grant epoch the root wants back.
		if le == nil || le.epoch != m.Var || g.lockVal[l] != GrantValue(n.id) {
			// No such lease here. If this node already finished with that
			// grant, the root's record is stale because the original
			// return (or release) was lost — repeat it so the demand loop
			// can end. Anything else is a stray demand to ignore.
			if g.lockDone[l] >= m.Var {
				n.sendLeaseRet(g, l, m.Var)
			}
			return
		}
		if le.held {
			le.revoked = true // the Release in progress doubles as the return
			return
		}
		n.returnIdleLease(g, l, le)
		return
	}
	// Grant or extension. Valid only against the entry it was issued
	// for: the grant multicast may still be in flight, in which case the
	// lease is simply dropped (the root's next extension re-offers it).
	if g.lockVal[l] != GrantValue(n.id) || g.grantEpoch[l] != m.Var {
		return
	}
	if le == nil {
		// Holding the grant value without a lease means this node is
		// inside the section (between grant and Release).
		le = &memberLease{held: true}
		g.lease[l] = le
	}
	ttl := time.Duration(m.Deadline)
	le.expiry = n.clock.Now().Add(ttl)
	le.ttl = ttl
	le.epoch = m.Var
	le.token = uint32(m.Origin)
	le.used = false
	le.revoked = false
	le.renewB.reset()
}

// sectionConfirmed reports whether every guarded write of the closing
// section has been sequenced (its echo consumed): the precondition for
// a direct handoff, since the new holder's entry gate is a sequence
// watermark that must cover the section's data. Caller holds n.mu.
func (g *memberGroup) sectionConfirmed(l LockID) bool {
	for v := range g.eagerMsg {
		if gl, ok := g.cfg.Guards[v]; ok && gl == l {
			return false
		}
	}
	return true
}

// leaseRelease intercepts Release after validation and flush: a hinted
// waiter gets the lock directly, a live lease retains it locally, and a
// revoked or expired lease rides the release back to the root. Returns
// handled=false (n.mu still held) when the classic release path should
// run. When handled, n.mu has been released.
func (n *Node) leaseRelease(gid GroupID, g *memberGroup, l LockID) (bool, error) {
	now := n.clock.Now()
	if h, ok := g.hint[l]; ok {
		delete(g.hint, l)
		if n.leasing() && h.node != n.id && g.cfg.memberOf(h.node) && g.sectionConfirmed(l) {
			return true, n.handoffRelease(gid, g, l, h, now)
		}
		// Unconfirmed section data (or a stale hint): fall back to the
		// root path, which sequences the grant behind the data itself.
	}
	le := g.lease[l]
	if le == nil {
		return false, nil
	}
	if le.held && !le.revoked && now.Before(le.expiry) && n.leasing() {
		// Retain: the lock value stays GrantValue(self) and the next
		// acquisition is a local decision. Zero wire messages.
		le.held = false
		delete(g.want, l)
		delete(g.reqSince, l)
		delete(g.reqSession, l)
		n.mu.Unlock()
		return true, nil
	}
	// Revoked or expired: this release doubles as the lease return.
	epoch := le.epoch
	delete(g.lease, l)
	g.lockVal[l] = Free
	if epoch > g.lockDone[l] {
		g.lockDone[l] = epoch
	}
	delete(g.want, l)
	delete(g.reqSince, l)
	delete(g.reqSession, l)
	g.lock.notifyAll()
	root := g.rootID
	msg := wire.Message{
		Type:   wire.TLeaseRet,
		Group:  uint32(gid),
		Src:    int32(n.id),
		Origin: int32(n.id),
		Lock:   uint32(l),
		Var:    epoch,
		Epoch:  g.epoch,
	}
	n.mu.Unlock()
	return true, n.ep.Send(root, msg)
}

// handoffRelease transfers the lock directly to the hinted waiter: one
// frame on the critical path, plus an asynchronous notice the root
// validates. The handoff reserves exactly the grant epoch the root's
// next grant would mint (our entry epoch + 1), which is what lets the
// root recognise the transfer in whatever frame reaches it first.
// Caller holds n.mu; released before the sends.
func (n *Node) handoffRelease(gid GroupID, g *memberGroup, l LockID, h handoffHint, now time.Time) error {
	epoch := g.grantEpoch[l] // our entry epoch
	next := epoch + 1        // the epoch this transfer reserves
	g.lockVal[l] = GrantValue(h.node)
	g.grantEpoch[l] = next
	g.lockDone[l] = epoch
	delete(g.lease, l)
	delete(g.want, l)
	delete(g.reqSince, l)
	delete(g.reqSession, l)
	n.stats.Handoffs++
	n.emit(obs.EvHandoff, gid, int64(l), int64(h.node))
	// The direct grant carries this node's applied watermark (Seq): the
	// closing section's writes are all sequenced at or below it (the
	// handoff only fires with every echo confirmed), so the new holder
	// defers entry until its own stream covers that prefix — the GWC
	// data-before-lock guarantee, kept without the root on the path.
	direct := wire.Message{
		Type:   wire.THandoff,
		Group:  uint32(gid),
		Src:    int32(n.id),
		Origin: int32(h.token),
		Seq:    g.nextSeq - 1,
		Lock:   uint32(l),
		Var:    next,
		Val:    GrantValue(h.node),
		Epoch:  g.epoch,
	}
	notice := wire.Message{
		Type:   wire.THandoff,
		Group:  uint32(gid),
		Src:    int32(n.id),
		Origin: int32(n.id),
		Seq:    uint64(next),
		Lock:   uint32(l),
		Var:    epoch,
		Val:    GrantValue(h.node),
		Epoch:  g.epoch,
	}
	ph := &handoffNotice{msg: notice, doneEpoch: next}
	n.arm(&ph.bo, now, n.boBase(), n.boCap())
	g.pendingHandoff[l] = ph
	g.lock.notifyAll()
	root := g.rootID
	n.mu.Unlock()
	if err := n.ep.Send(h.node, direct); err != nil {
		return err
	}
	return n.ep.Send(root, notice)
}

// handleHandoff processes a direct grant at the designated waiter. A
// root-bound notice that strays here (a deposed ex-root the sender
// still follows) fails the Val check and is dropped; the sender's
// notice retries converge on the live root. Caller holds n.mu.
func (n *Node) handleHandoff(g *memberGroup, m wire.Message) {
	if m.Epoch != g.epoch {
		if m.Epoch < g.epoch {
			n.stats.StaleEpochRejected++
			n.emit(obs.EvStaleEpoch, g.cfg.ID, int64(m.Type), int64(m.Epoch))
			n.maybeNotice(g, int(m.Src))
		}
		return
	}
	if m.Val != GrantValue(n.id) {
		return // not ours to take: only the reigning root may arbitrate it
	}
	if g.rejoining || g.snapWanted {
		return // not re-based; the request retry re-queues at the root
	}
	l := LockID(m.Lock)
	if g.nextSeq <= m.Seq {
		// Data-before-lock: the handing-off holder's section writes are
		// sequenced at or below its watermark (Seq). Entering before the
		// stream covers it would read stale guarded state, so the grant
		// parks until reassembly catches up (deliverHandoffs).
		g.handoffIn[l] = m
		n.maybeNack(g)
		return
	}
	delete(g.handoffIn, l)
	n.applyLockValue(g, l, m.Val, m.Var, uint32(m.Origin), 0)
}

// deliverHandoffs installs parked direct grants whose sequence
// watermark the stream now covers. Caller holds n.mu.
func (n *Node) deliverHandoffs(g *memberGroup) {
	if len(g.handoffIn) == 0 {
		return
	}
	for _, l := range sortedKeys(g.handoffIn) {
		m := g.handoffIn[l]
		if m.Epoch != g.epoch {
			delete(g.handoffIn, l)
			continue
		}
		if g.nextSeq <= m.Seq {
			continue
		}
		delete(g.handoffIn, l)
		if g.grantEpoch[l] >= m.Var {
			continue // the sequenced confirm (or a later grant) superseded it
		}
		n.applyLockValue(g, l, m.Val, m.Var, uint32(m.Origin), 0)
	}
}

// tickLeases drives the member's lease clocks each maintenance tick:
// expired idle leases go back, in-use leases renew past their half
// life, and unacknowledged handoff notices re-send. Caller holds n.mu.
func (n *Node) tickLeases(gid GroupID, g *memberGroup, now time.Time) {
	n.deliverHandoffs(g)
	for _, l := range sortedKeys(g.lease) {
		le := g.lease[l]
		if !le.held && (le.revoked || !now.Before(le.expiry)) {
			n.returnIdleLease(g, l, le)
			continue
		}
		if le.used && le.expiry.Sub(now) < le.ttl/2 && le.renewB.ready(now) {
			n.arm(&le.renewB, now, n.boBase(), n.boCap())
			n.stats.LeaseRenewals++
			// A renewal is a raw request frame carrying the lease's token
			// and grant epoch in Var — ordinary request retries carry Var
			// zero, which is how the root tells a renewal from a holder
			// re-announcing a lost grant. It must not touch the want/token
			// machinery: no acquisition is outstanding.
			n.send(g.rootID, wire.Message{
				Type:   wire.TLockReq,
				Group:  uint32(gid),
				Src:    int32(n.id),
				Origin: int32(n.id),
				Seq:    uint64(le.token),
				Var:    le.epoch,
				Lock:   uint32(l),
				Epoch:  g.epoch,
			})
		}
	}
	for _, l := range sortedKeys(g.pendingHandoff) {
		ph := g.pendingHandoff[l]
		if !ph.bo.ready(now) {
			continue
		}
		n.arm(&ph.bo, now, n.boBase(), n.boCap())
		m := ph.msg
		m.Epoch = g.epoch
		n.send(g.rootID, m)
	}
}

// dropLeases forgets every lease, hint, parked direct grant, and
// pending notice — called on any wholesale re-base (reign change,
// promotion, report, rejoin), because all of them are claims against
// the old reign's lock manager. An idle cached lock is, for the new
// reign, simply free: reporting it held would resurrect a holder that
// never releases. A lease held mid-section survives as a plain hold —
// its Release takes the wire path. Caller holds n.mu.
func (n *Node) dropLeases(g *memberGroup) {
	if len(g.lease) == 0 && len(g.hint) == 0 && len(g.pendingHandoff) == 0 && len(g.handoffIn) == 0 {
		return
	}
	for _, l := range sortedKeys(g.lease) {
		le := g.lease[l]
		if !le.held {
			g.lockVal[l] = Free
			if le.epoch > g.lockDone[l] {
				g.lockDone[l] = le.epoch
			}
		}
		delete(g.lease, l)
	}
	clear(g.hint)
	clear(g.pendingHandoff)
	clear(g.handoffIn)
	g.lock.notifyAll()
}

// --- Root side ---

// maybeLease leases the lock to the winner it was just granted to, when
// nobody waits behind it. Caller holds n.mu.
func (n *Node) maybeLease(r *rootGroup, l LockID, ls *lockState, winner int) {
	if !n.leasing() || winner == n.id || ls.session != 0 || len(ls.queue) > 0 || !ls.holds(winner) {
		return
	}
	if r.fenced {
		return
	}
	ls.leaseTo = winner
	ls.leaseExpiry = n.clock.Now().Add(n.leaseTTL)
	ls.leaseEpoch = ls.entryEpochs[winner]
	ls.leaseToken = ls.holders[winner]
	ls.revokeB.reset()
	n.stats.LeaseGrants++
	n.emit(obs.EvLeaseGrant, r.cfg.ID, int64(l), int64(winner))
	n.send(winner, wire.Message{
		Type:     wire.TLeaseGrant,
		Group:    uint32(r.cfg.ID),
		Src:      int32(n.id),
		Origin:   int32(ls.leaseToken),
		Lock:     uint32(l),
		Var:      ls.leaseEpoch,
		Deadline: int64(n.leaseTTL),
		Epoch:    r.epoch,
	})
}

// reserveHint designates the head queued waiter as the new winner's
// direct-handoff target and returns it packed for the grant multicast's
// Deadline field (zero = no hint). The waiter is peeked, not popped:
// installHandoff dequeues it if the transfer happens, and the classic
// churn grants it if not. Caller holds n.mu.
func (n *Node) reserveHint(r *rootGroup, ls *lockState, winner int) int64 {
	ls.hintNode = -1
	if !n.leasing() || ls.session != 0 || len(ls.queue) == 0 {
		return 0
	}
	w := ls.queue[0]
	if w.session != 0 || w.node == n.id || w.node == winner {
		return 0
	}
	ls.hintNode = w.node
	ls.hintToken = w.token
	// node+1 keeps node 0 distinguishable from "no hint".
	return int64(w.token)<<32 | int64(uint32(w.node+1))
}

// sendLeaseRevoke demands a leased lock back from its holder and arms
// the re-demand schedule. Caller holds n.mu.
func (n *Node) sendLeaseRevoke(r *rootGroup, l LockID, ls *lockState, now time.Time) {
	n.stats.LeaseRevokes++
	n.arm(&ls.revokeB, now, n.boBase(), n.boCap())
	n.send(ls.leaseTo, wire.Message{
		Type:   wire.TLeaseGrant,
		Group:  uint32(r.cfg.ID),
		Src:    int32(n.id),
		Origin: int32(ls.leaseToken),
		Lock:   uint32(l),
		Var:    ls.leaseEpoch,
		// Deadline zero is the revoke demand.
		Epoch: r.epoch,
	})
}

// tickRootLeases re-sends due revoke demands: while a leased lock has
// waiters (or the reign is fenced), the holder must give it back, and
// the demand frame is unacknowledged until the TLeaseRet (or release)
// lands. Caller holds n.mu.
func (n *Node) tickRootLeases(r *rootGroup, now time.Time) {
	for _, l := range sortedKeys(r.locks) {
		ls := r.locks[l]
		if ls.leaseTo < 0 {
			continue
		}
		if len(ls.queue) == 0 && !r.fenced {
			continue
		}
		if !ls.revokeB.ready(now) {
			continue
		}
		n.sendLeaseRevoke(r, l, ls, now)
	}
}

// rootLeaseRet processes a member's lease return, validated exactly
// like a release: the quoted entry epoch must match the holder record,
// so a duplicated return can never free a later entry. Caller holds
// n.mu.
func (n *Node) rootLeaseRet(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	origin := int(m.Origin)
	if !ls.holds(origin) || ls.entryEpochs[origin] != m.Var {
		return // stale or duplicate return
	}
	n.stats.LeaseReturns++
	n.emit(obs.EvLeaseReturn, r.cfg.ID, int64(l), int64(origin))
	n.leaveLock(r, l, ls, origin)
}

// rootHandoff validates a holder's transfer notice and commits it. The
// hint is deliberately not required to match: a cancel race can clear
// it, and the frame's own fields — the holder record, the entry epoch,
// and the reserved next epoch — carry everything arbitration needs.
// Caller holds n.mu.
func (n *Node) rootHandoff(r *rootGroup, m wire.Message) {
	l := LockID(m.Lock)
	ls := r.lock(l)
	from := int(m.Origin)
	w := holderOf(m.Val)
	if w < 0 || w == n.id || !r.cfg.memberOf(w) || !r.cfg.memberOf(from) {
		return
	}
	if !ls.holds(from) || ls.entryEpochs[from] != m.Var {
		return // already committed (duplicate notice) or stale
	}
	if ls.session != 0 || len(ls.holders) != 1 {
		n.protoErr("gwc: node %d got handoff notice for lock %d outside an exclusive section", n.id, l)
		return
	}
	if uint32(m.Seq) != ls.epoch+1 {
		return // reserved an epoch this manager would not mint next
	}
	n.installHandoff(r, l, ls, from, w)
}

// inferHandoff commits a handoff whose notice has not arrived yet,
// recognised from the new holder's own traffic: frames by the hinted
// waiter tagged with exactly the epoch the hint reserved can only mean
// the transfer happened. Returns whether a handoff was committed (the
// caller re-checks its validation against the updated state). Caller
// holds n.mu.
func (n *Node) inferHandoff(r *rootGroup, l LockID, ls *lockState, origin int, epoch uint32) bool {
	if !n.leasing() || ls.hintNode != origin || epoch != ls.epoch+1 {
		return false
	}
	if ls.session != 0 || len(ls.holders) != 1 || ls.holds(origin) {
		return false
	}
	n.installHandoff(r, l, ls, ls.soleHolder(), origin)
	return true
}

// installHandoff retires the old holder, installs the new one at the
// reserved epoch, and multicasts the confirming lock frame — sequenced
// behind the closing section's data and carrying the next hint, so a
// convoy chains handoff to handoff. Caller holds n.mu.
func (n *Node) installHandoff(r *rootGroup, l LockID, ls *lockState, from, w int) {
	// The hint was a peek: the waiter is still queued and must come out,
	// or the next churn would grant it a second time.
	tok := uint32(0)
	if ls.hintNode == w {
		tok = ls.hintToken
	}
	for i, q := range ls.queue {
		if q.node == w {
			if tok == 0 {
				tok = q.token
			}
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			break
		}
	}
	for i, p := range ls.pending {
		if p == from {
			ls.pending = append(ls.pending[:i], ls.pending[i+1:]...)
			break
		}
	}
	delete(ls.holders, from)
	delete(ls.entryEpochs, from)
	n.metrics.Gauge(obs.GaugeSessHolders).Add(-1)
	if ls.leaseTo == from {
		ls.leaseTo = -1
	}
	// A peer transfer is always a foreign entry: the new holder differs
	// from the old, so other nodes' speculations against the closing
	// section must roll back.
	ls.foreignEpoch = ls.epoch
	ls.epoch++
	ls.holders[w] = tok
	ls.entryEpochs[w] = ls.epoch
	ls.lastWinner = w
	ls.lastSession = 0
	ls.session = 0
	ls.hintNode = -1
	n.metrics.Gauge(obs.GaugeSessHolders).Add(1)
	n.stats.HandoffCommits++
	n.emit(obs.EvHandoff, r.cfg.ID, int64(l), int64(w))
	msg := wire.Message{
		Type:    wire.TSeqLock,
		Group:   uint32(r.cfg.ID),
		Src:     int32(n.id),
		Origin:  int32(tok),
		Lock:    uint32(l),
		Var:     ls.epoch,
		Val:     GrantValue(w),
		Session: 0,
	}
	if h := n.reserveHint(r, ls, w); h != 0 {
		msg.Deadline = h
	}
	n.multicast(r, msg)
	n.maybeLease(r, l, ls, w)
}

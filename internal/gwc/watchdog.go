package gwc

import (
	"time"

	"optsync/internal/obs"
	"optsync/internal/wire"
)

// Stuck-operation watchdog.
//
// Adaptive retry (backoff.go) makes individual requests cheap to keep
// alive, but it cannot notice the pathologies where every retry is
// answered and yet nothing progresses: a lock acquisition whose grants
// keep bouncing, a reign fenced for a whole epoch, a grant parked on a
// quorum watermark that will never advance, a holderless lock whose
// queued waiters are all token-0 failover ghosts. The watchdog
// cross-checks every in-flight control-plane operation against a
// liveness budget each maintenance tick, and when one is over budget it
// (a) counts and traces the fact — chaos soaks fail the run on any
// watchdog_stuck — and (b) forces the cheapest safe re-drive of the
// operation: a fresh request frame, a schedule reset, one serviceQuorum
// pass. Trips re-stamp the operation's clock, so a stuck operation
// re-fires once per budget, not once per tick.
//
// The budget defaults to 4x the failure-detection deadline: long enough
// that any single failover, fence, or retransmission round resolves
// well inside it, so a trip means something is genuinely wedged.

// watchBudget returns the liveness budget under n.mu.
func (n *Node) watchBudget() time.Duration {
	if n.wdBudget > 0 {
		return n.wdBudget
	}
	return 4 * n.failAfter
}

// SetWatchdog tunes the stuck-operation liveness budget. Zero keeps the
// current setting (default 4x the failure-detection deadline).
func (n *Node) SetWatchdog(budget time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if budget > 0 {
		n.wdBudget = budget
	}
}

// watchMember cross-checks the member side's in-flight operations:
// outstanding lock acquisitions, the rejoin handshake, and pending sync
// barriers. Runs at the start of the maintenance tick, so a schedule
// reset it performs takes effect within the same tick. Caller holds
// n.mu.
func (n *Node) watchMember(gid GroupID, g *memberGroup, now time.Time) {
	budget := n.watchBudget()
	for _, l := range sortedKeys(g.reqSince) {
		if now.Sub(g.reqSince[l]) < budget {
			continue
		}
		if !g.want[l] {
			// The acquisition was cancelled or satisfied without the stamp
			// being cleared; nothing to watch.
			delete(g.reqSince, l)
			continue
		}
		g.reqSince[l] = now
		n.stats.WatchdogStuck++
		n.stats.WatchdogReissues++
		n.emit(obs.EvWatchdogStuck, gid, obs.WatchAcquire, int64(l))
		// Re-issue with the live token. Blocking waiters have their own
		// backoff loop (waitLock), but a non-blocking SendLockRequest user
		// has no retry at all — this frame is its safety net, and for a
		// waiter it is at worst one duplicate the root dedupes.
		n.send(g.rootID, wire.Message{
			Type:    wire.TLockReq,
			Group:   uint32(gid),
			Src:     int32(n.id),
			Origin:  int32(n.id),
			Seq:     uint64(g.reqToken[l]),
			Lock:    uint32(l),
			Epoch:   g.epoch,
			Session: g.reqSession[l],
		})
	}
	if g.rejoining && !g.rejoinBegan.IsZero() && now.Sub(g.rejoinBegan) >= budget {
		g.rejoinBegan = now
		n.stats.WatchdogStuck++
		n.stats.WatchdogReissues++
		n.emit(obs.EvWatchdogStuck, gid, obs.WatchRejoin, int64(g.joinToken))
		// Restart the handshake's schedule; the tick's rejoin branch
		// re-sends immediately.
		g.joinB.reset()
	}
	for _, tok := range sortedKeys(g.syncPending) {
		sw := g.syncPending[tok]
		if sw.since.IsZero() || now.Sub(sw.since) < budget {
			continue
		}
		sw.since = now
		n.stats.WatchdogStuck++
		n.stats.WatchdogReissues++
		n.emit(obs.EvWatchdogStuck, gid, obs.WatchSync, int64(tok))
		sw.bo.reset()
	}
}

// watchRoot cross-checks a reign's lock manager and fencing lease: a
// fence held past budget, a grant parked on the quorum watermark past
// budget, and a holderless lock with waiters queued past budget. The
// lock trips share one serviceQuorum re-run — the cheapest safe
// re-drive, since it re-evaluates every parked grant and holderless
// queue against the current watermark. Caller holds n.mu.
func (n *Node) watchRoot(gid GroupID, r *rootGroup, now time.Time) {
	budget := n.watchBudget()
	if r.fenced && !r.fenceWatch.IsZero() && now.Sub(r.fenceWatch) >= budget {
		// Re-stamp the watchdog's own clock, never fencedAt: the degraded
		// read path measures staleness from the start of the fence, and a
		// trip must not shrink that bound.
		r.fenceWatch = now
		n.stats.WatchdogStuck++
		n.emit(obs.EvWatchdogStuck, gid, obs.WatchFence, int64(r.epoch))
		// No re-drive: only member contact (or deposition) lifts a fence,
		// and unfencing without quorum would defeat partition safety. The
		// trip is pure observability — degraded reads and /healthz key off
		// the fence itself.
	}
	service := false
	for _, l := range sortedKeys(r.locks) {
		ls := r.locks[l]
		leased := ls.leaseTo >= 0 && len(ls.queue) > 0
		stuck := len(ls.pending) > 0 || (ls.free() && len(ls.queue) > 0) || leased
		if !stuck {
			ls.watchAt = now
			continue
		}
		if ls.watchAt.IsZero() {
			ls.watchAt = now
			continue
		}
		if now.Sub(ls.watchAt) < budget {
			continue
		}
		ls.watchAt = now
		n.stats.WatchdogStuck++
		n.stats.WatchdogReissues++
		switch {
		case len(ls.pending) > 0:
			n.emit(obs.EvWatchdogStuck, gid, obs.WatchParked, int64(l))
			service = true
		case leased:
			// A leaseholder is sitting on a revoke demand past budget. The
			// root never force-frees a leased lock (that could mint two
			// exclusive holders); the re-drive is the demand itself, at
			// full cadence again. A crashed leaseholder is freed by its
			// rejoin; a partitioned one by this reign's deposition.
			n.emit(obs.EvWatchdogStuck, gid, obs.WatchLease, int64(l))
			ls.revokeB.reset()
		default:
			n.emit(obs.EvWatchdogStuck, gid, obs.WatchHolderless, int64(l))
			service = true
		}
	}
	if service {
		n.serviceQuorum(r)
	}
}

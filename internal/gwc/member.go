package gwc

import (
	"context"
	"fmt"
	"time"

	"optsync/internal/integrity"
	"optsync/internal/obs"
	"optsync/internal/topo"
	"optsync/internal/vclock"
	"optsync/internal/wire"
)

// notifyList wakes blocked waiters when state they watch may have
// changed. Waiters hold a buffered channel; notifications are lossy
// (waiters re-check their predicate), which keeps notifiers non-blocking
// even from the receive loop.
type notifyList struct {
	waiters map[chan struct{}]struct{}
	closed  bool
}

func newNotifyList() *notifyList {
	return &notifyList{waiters: make(map[chan struct{}]struct{})}
}

// register adds a waiter channel. The caller must unregister it.
func (nl *notifyList) register() chan struct{} {
	ch := make(chan struct{}, 1)
	if nl.closed {
		close(ch)
		return ch
	}
	nl.waiters[ch] = struct{}{}
	return ch
}

func (nl *notifyList) unregister(ch chan struct{}) {
	delete(nl.waiters, ch)
}

// notifyAll pokes every waiter without blocking.
func (nl *notifyList) notifyAll() {
	for ch := range nl.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// closeAll permanently wakes all current and future waiters (node
// shutdown).
func (nl *notifyList) closeAll() {
	if nl.closed {
		return
	}
	nl.closed = true
	for ch := range nl.waiters {
		close(ch)
		delete(nl.waiters, ch)
	}
}

// memberGroup is one node's member-side state for a sharing group.
type memberGroup struct {
	cfg GroupConfig

	mem     map[VarID]int64
	lockVal map[LockID]int64
	// eager records the newest guarded local store per variable whose
	// root echo has not come back yet. Hardware blocking normally drops
	// own echoes outright, but a failover snapshot can re-base the local
	// copy to a cut taken before the write was sequenced — rolling the
	// eager store back. The echo is then the only message that carries
	// the write, so applyData consults this map and lets the newest own
	// echo through instead of suppressing it (see applyData).
	eager map[VarID]int64
	// eagerMsg keeps the original carrier frame of each pending eager
	// store and eagerB its re-send schedule. The member-to-root update
	// hop is the protocol's one unacknowledged send: every other loss is
	// repaired by NACKs, probes, or per-request retries, but a dropped
	// (or checksum-discarded) update frame would lose the write silently.
	// The maintenance tick re-ships due frames until the echo lands,
	// which deletes all three entries. Duplicate sequencing is harmless —
	// the value is identical and hardware blocking drops the extra echo —
	// and the root's grant-epoch gate still judges a late re-send exactly
	// as it would have judged the original.
	eagerMsg map[VarID]wire.Message
	eagerB   map[VarID]*backoff
	// storeSeq stamps every guarded update with a per-group nonce
	// (carried in the frame's otherwise-unused Deadline field) so the
	// root can tell a loss-recovery re-send from a fresh store and
	// disposition each store exactly once (see rootUpdate).
	storeSeq uint64
	// grantEpoch counts grants observed for each lock; releases quote it
	// so the root can discard stale duplicates.
	grantEpoch map[LockID]uint32
	// lockDone is the highest grant epoch this node has finished with
	// (released or handed back). A self-grant at or below it is a stale
	// duplicate — e.g. the root's re-announce of a grant whose original
	// multicast this node already consumed and released — and must not
	// be mistaken for the grant of a later acquisition.
	lockDone map[LockID]uint32

	// Sequenced-stream reassembly.
	nextSeq  uint64
	pending  map[uint64]wire.Message
	lastNack time.Time

	// Crash-fault tolerance (failover.go): epoch counts root reigns and
	// rootID is the root this member currently follows; lastRoot is the
	// last proof of life (heartbeat or sequenced traffic) from it.
	epoch    uint32
	rootID   int
	lastRoot time.Time

	// Election bookkeeping while the root is suspected dead.
	suspected  map[int]bool
	electing   bool
	electEpoch uint32
	electBegan time.Time

	// Peer state reports collected while this node is the election
	// candidate, keyed by reporter; reportEpoch is the election they
	// belong to.
	reports     map[int]*snapReport
	reportEpoch uint32

	// Snapshot catch-up after adopting a new root's epoch.
	snapWanted bool
	snapBuf    *snapReport
	snapBufSeq uint64
	lastNotice time.Time

	// Crash recovery (rejoin.go): rejoining marks a restarted member
	// waiting for the root's re-admission handshake. joinToken numbers
	// this member's rejoin attempts; the root remembers the last token
	// it served per member and answers retries idempotently instead of
	// re-freeing locks the member may have re-acquired since.
	rejoining   bool
	joinToken   uint32
	rejoinBegan time.Time

	// Adaptive-retry schedules (backoff.go), one per resend path the
	// maintenance tick drives. probeSeq is the stream position the last
	// probe was sent at: movement resets the probe's schedule, so only a
	// member with nothing to repair backs off.
	joinB    backoff
	snapB    backoff
	probeB   backoff
	probeSeq uint64

	// reqSince stamps when each in-flight lock acquisition minted its
	// token, for the stuck-operation watchdog (watchdog.go).
	reqSince map[LockID]time.Time

	// Quorum-ack plumbing (fence.go): acked is the highest sequence
	// number this member has explicitly acknowledged to the root this
	// reign; syncPending holds outstanding Sync barriers by token and
	// syncToken mints them.
	acked       uint64
	syncToken   uint64
	syncPending map[uint64]*syncWaiter

	// want tracks locks this node has requested and not yet released or
	// cancelled. A grant arriving for an unwanted lock is auto-released,
	// so a lost cancel message cannot strand the lock.
	want map[LockID]bool

	// Session locks (session.go): sess is the locally observed holder set
	// per lock while a non-zero session is open; reqSession is the session
	// the outstanding acquisition wants to enter (0 = exclusive), reused
	// by request retries.
	sess       map[LockID]*sessView
	reqSession map[LockID]uint32

	// reqToken numbers this node's logical acquisitions of each lock. A
	// fresh token is minted when a request goes out with none
	// outstanding; retries of the same acquisition reuse it. The root
	// echoes the winner's token in the grant multicast, and a self-grant
	// is consumed only when that echo matches the outstanding request:
	// a grant minted for a since-cancelled request (which the root's
	// cancel handling auto-releases) can therefore never be mistaken for
	// the answer to a newer acquisition — consuming one would leave this
	// node inside a section the root already handed to someone else.
	reqToken map[LockID]uint32

	// Lock leasing and peer handoff (lease.go): lease holds this node's
	// cached lock claims; hint the handoff target the root designated on
	// each grant; pendingHandoff the unacknowledged root-bound notices;
	// handoffIn direct grants parked on their sequence watermark.
	lease          map[LockID]*memberLease
	hint           map[LockID]handoffHint
	pendingHandoff map[LockID]*handoffNotice
	handoffIn      map[LockID]wire.Message

	// Insharing suspension (optimistic rollback window): data updates are
	// parked, lock updates still flow.
	suspended bool
	suspendQ  []wire.Message

	// lockHooks run (under the node lock) on every lock-value change;
	// the optimistic engine uses them as the paper's interrupt. A hook
	// returning HookSuspend parks insharing atomically with the interrupt.
	lockHooks map[LockID]map[uint64]LockHook
	// sessHooks observe session transitions (session.go); the optimistic
	// engine's session path uses them as its interrupt.
	sessHooks map[LockID]map[uint64]SessionHook
	// varHooks observe applied data updates (Watch).
	varHooks map[VarID]map[uint64]func(int64)
	hookSeq  uint64

	// children are this node's spanning-tree children when the group
	// uses tree fanout.
	children []int

	// Write-coalescing queue (batch.go): outgoing updates awaiting a
	// size/delay/release-boundary flush. batchIdx maps a variable to its
	// queue slot so an in-window rewrite combines instead of appending.
	batchQ     []wire.Message
	batchIdx   map[VarID]int
	batchTimer vclock.Timer
	// batchFirst is when the oldest write in batchQ was enqueued; the
	// flush latency histogram measures from here, so it captures the
	// real queueing delay a coalesced write experienced.
	batchFirst time.Time

	// digest accumulates every sequenced data apply — the member's half
	// of the anti-entropy protocol (integrity.go). It is reset on every
	// wholesale re-base (new reign, rejoin, snapshot) and re-anchored to
	// the root's sum carried on TSnapDone.
	digest integrity.Digest
	// diverged marks that a digest comparison convicted this member's
	// copy: the value plane cannot be trusted until the corrective
	// snapshot re-bases it. Health counts it and ReadStale refuses to
	// serve from it.
	diverged bool

	data *notifyList
	lock *notifyList
}

func newMemberGroup(id int, cfg GroupConfig, now time.Time) *memberGroup {
	var children []int
	if cfg.TreeFanout {
		// The config was validated at Join time; the tree over the torus
		// embedding is deterministic, so every member derives the same
		// one.
		tree, err := topo.SpanningTree(topo.MustNew(len(cfg.Members)), cfg.Root)
		if err != nil {
			panic(fmt.Sprintf("gwc: spanning tree: %v", err))
		}
		children = tree.Children[id]
	}
	return &memberGroup{
		children:       children,
		cfg:            cfg,
		mem:            make(map[VarID]int64),
		lockVal:        make(map[LockID]int64),
		eager:          make(map[VarID]int64),
		eagerMsg:       make(map[VarID]wire.Message),
		eagerB:         make(map[VarID]*backoff),
		grantEpoch:     make(map[LockID]uint32),
		lockDone:       make(map[LockID]uint32),
		nextSeq:        1,
		pending:        make(map[uint64]wire.Message),
		rootID:         cfg.Root,
		lastRoot:       now,
		suspected:      make(map[int]bool),
		want:           make(map[LockID]bool),
		sess:           make(map[LockID]*sessView),
		reqSession:     make(map[LockID]uint32),
		reqToken:       make(map[LockID]uint32),
		reqSince:       make(map[LockID]time.Time),
		lease:          make(map[LockID]*memberLease),
		hint:           make(map[LockID]handoffHint),
		pendingHandoff: make(map[LockID]*handoffNotice),
		handoffIn:      make(map[LockID]wire.Message),
		lockHooks:      make(map[LockID]map[uint64]LockHook),
		sessHooks:      make(map[LockID]map[uint64]SessionHook),
		varHooks:       make(map[VarID]map[uint64]func(int64)),
		syncPending:    make(map[uint64]*syncWaiter),
		data:           newNotifyList(),
		lock:           newNotifyList(),
	}
}

// resetRetrySchedules forgets every adaptive-retry schedule in the
// group. Called when the world changes wholesale — a new reign adopted,
// the rejoin handshake completed, this node promoted — so the first
// retry of every outstanding operation fires on the next maintenance
// tick instead of waiting out a backoff armed against the old regime.
func (g *memberGroup) resetRetrySchedules() {
	g.joinB.reset()
	g.snapB.reset()
	g.probeB.reset()
	g.probeSeq = g.nextSeq
	for _, sw := range g.syncPending {
		sw.bo.reset()
	}
	for _, le := range g.lease {
		le.renewB.reset()
	}
	for _, ph := range g.pendingHandoff {
		ph.bo.reset()
	}
}

func (g *memberGroup) lockValue(l LockID) int64 {
	if v, ok := g.lockVal[l]; ok {
		return v
	}
	return Free
}

// guardOf returns the lock guarding v, or false.
func (g *memberGroup) guardOf(v VarID) (LockID, bool) {
	l, ok := g.cfg.Guards[v]
	return l, ok
}

// forwardDown relays a fresh sequenced message to this node's tree
// children. Caller holds n.mu.
func (n *Node) forwardDown(g *memberGroup, m wire.Message) {
	for _, child := range g.children {
		n.stats.Forwarded++
		n.send(child, m)
	}
}

// ingest performs sequence reassembly for a sequenced message, then
// applies in-order messages. Caller holds n.mu. Fresh messages are
// relayed down the spanning tree before local processing when the group
// uses tree fanout; duplicates (including retransmissions of messages the
// subtree already has) are not re-forwarded — descendants that are still
// missing them NACK the root directly.
func (n *Node) ingest(g *memberGroup, m wire.Message) {
	n.ingestFwd(g, m, true)
}

// ingestFwd is ingest with the tree relay controllable: batch frames are
// forwarded whole (handleBatch), so their inner messages ingest with
// forward=false instead of being re-sent one by one. Caller holds n.mu.
func (n *Node) ingestFwd(g *memberGroup, m wire.Message, forward bool) {
	if m.Epoch != g.epoch {
		if m.Epoch < g.epoch {
			// A deposed root (or a retransmission from its reign) is still
			// multicasting: its sequence numbering no longer means anything
			// here.
			n.stats.StaleEpochRejected++
			n.emit(obs.EvStaleEpoch, g.cfg.ID, int64(m.Type), int64(m.Epoch))
			return
		}
		n.adoptEpoch(g, m.Epoch, int(m.Src))
		if m.Epoch != g.epoch {
			return // adoption declined (e.g. hearsay self-promotion)
		}
	}
	// Sequenced traffic from the current root is proof of life; the
	// dispatch timestamp (stamped once per handle/tick lock hold) stands
	// in for a per-message clock read. The root applying its own
	// multicast locally skips the stamp — it never failure-detects
	// itself, and that apply can run outside a dispatch (a write API
	// call), where msgNow would be stale.
	if g.rootID != n.id {
		g.lastRoot = n.msgNow
	}
	g.electing = false
	switch {
	case m.Seq < g.nextSeq:
		n.stats.Duplicates++
		return
	case g.snapWanted:
		// Not re-based into this reign yet: the stream and the snapshot
		// are unordered on the wire, and applying live traffic against
		// pre-snapshot state breaks the stream's ordering guarantee — a
		// failover lock grant could start a critical section that reads
		// pre-merge data. Park everything; snapApply discards what the
		// snapshot's cut covers and replays the rest in order.
		if _, dup := g.pending[m.Seq]; !dup {
			g.pending[m.Seq] = m
			if forward {
				n.forwardDown(g, m)
			}
		}
		return
	case m.Seq > g.nextSeq:
		if _, dup := g.pending[m.Seq]; !dup {
			g.pending[m.Seq] = m
			n.stats.Gaps++
			if forward {
				n.forwardDown(g, m)
			}
		}
		n.maybeNack(g)
		return
	}
	if forward {
		n.forwardDown(g, m)
	}
	n.applySeq(g, m)
	g.nextSeq++
	for {
		next, ok := g.pending[g.nextSeq]
		if !ok {
			break
		}
		delete(g.pending, g.nextSeq)
		n.applySeq(g, next)
		g.nextSeq++
	}
	// The prefix advanced: direct handoff grants parked on a sequence
	// watermark may be deliverable now.
	n.deliverHandoffs(g)
}

// maybeNack asks the root to retransmit the missing range, rate-limited
// so a burst of out-of-order arrivals produces one request.
func (n *Node) maybeNack(g *memberGroup) {
	if len(g.pending) == 0 {
		return
	}
	now := n.clock.Now()
	if now.Sub(g.lastNack) < 5*time.Millisecond {
		return
	}
	g.lastNack = now
	// Request everything from the first missing seq up to the highest
	// buffered one; the root re-sends the whole range and duplicates are
	// dropped here.
	maxSeq := g.nextSeq
	for s := range g.pending {
		if s > maxSeq {
			maxSeq = s
		}
	}
	n.stats.Nacks++
	n.send(g.rootID, wire.Message{
		Type:  wire.TNack,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Seq:   g.nextSeq,
		Val:   int64(maxSeq),
		Epoch: g.epoch,
	})
}

// maybeSendAck tells the root how far this member's contiguous prefix
// reaches, once per advance, feeding the quorum commit watermark
// (fence.go). Sent only under quorum acks — without them the periodic
// resync probe carries the same information at no extra cost. Callers
// invoke it once per incoming frame, not per message, so a batch costs
// one ack. Caller holds n.mu.
func (n *Node) maybeSendAck(g *memberGroup) {
	if !n.quorumAcks || g.rootID == n.id || g.rejoining || g.nextSeq == 0 {
		return
	}
	applied := g.nextSeq - 1
	if applied <= g.acked {
		return
	}
	g.acked = applied
	n.send(g.rootID, wire.Message{
		Type:  wire.TAck,
		Group: uint32(g.cfg.ID),
		Src:   int32(n.id),
		Seq:   applied,
		Epoch: g.epoch,
	})
}

// applySeq applies one in-order sequenced message. Caller holds n.mu.
func (n *Node) applySeq(g *memberGroup, m wire.Message) {
	switch m.Type {
	case wire.TSeqUpdate:
		if n.misapply != nil {
			// Test-only corruption past the wire checksum: whatever the
			// hook mutates is what this member folds and applies, so the
			// digest faithfully reflects the (corrupted) local state and
			// the root's sweep must catch the mismatch. The copy dance
			// keeps &m out of the common path: taking m's address directly
			// would heap-allocate every message this hot path applies even
			// with the hook unset.
			mm := m
			n.misapply(&mm)
			m = mm
		}
		g.digest.Fold(m.Var, m.Seq, m.Val)
		if g.suspended {
			// Insharing suspension: hold data back until the rollback
			// finishes so restored values are not clobbered.
			g.suspendQ = append(g.suspendQ, m)
			return
		}
		n.applyData(g, m)
	case wire.TSeqLock:
		// The root stamps the grant epoch in Var and echoes the winning
		// request's token in Origin. Frames with a non-zero session route
		// through the holder-set view; session 0 is the classic
		// single-holder protocol.
		if m.Session != 0 {
			n.applySessionLock(g, m)
			return
		}
		n.applyLockValue(g, LockID(m.Lock), m.Val, m.Var, uint32(m.Origin), m.Deadline)
	}
}

// applyLockValue installs a new lock value (from the sequenced stream or
// a failover snapshot), running hooks and waking waiters. A self-grant
// is consumed only when its echoed token matches this node's current
// outstanding request; one arriving for a lock this node no longer
// wants, or answering a since-cancelled request, is released on the
// spot, and the local copy stays free so a later acquisition cannot
// mistake the stale grant for its own. hint is the packed handoff hint
// from the grant multicast's Deadline field (0 = none): when this node
// wins, it names the queued waiter the root designated as the direct
// handoff target (lease.go). Caller holds n.mu.
func (n *Node) applyLockValue(g *memberGroup, l LockID, val int64, grantEpoch uint32, token uint32, hint int64) {
	if ph, ok := g.pendingHandoff[l]; ok && grantEpoch >= ph.doneEpoch {
		// The root's lock epoch caught up with (or passed) this node's
		// handoff: the transfer is committed and the notice can stop.
		delete(g.pendingHandoff, l)
	}
	sessNotified := false
	if sv, ok := g.sess[l]; ok && len(sv.holders) > 0 {
		// An exclusive-protocol frame for this lock is sequenced after the
		// open session closed at the root; the local view is stale. An
		// exclusive grant to another node doubles as the conflict signal
		// for speculators targeting the old session.
		old := sv.session
		clear(sv.holders)
		sv.mine = false
		ev := SessEvent{Kind: SessClose, Session: old}
		if h := holderOf(val); h >= 0 {
			ev = SessEvent{Kind: SessEnter, Session: 0, Node: h}
		}
		n.runSessHooks(g, l, ev)
		sessNotified = true
	}
	if val == GrantValue(n.id) {
		if grantEpoch <= g.lockDone[l] {
			// Stale duplicate of a grant this node already finished with
			// (a re-announce the root minted for a racing request retry).
			// Taking it would let a later acquisition run unlocked, so it
			// must not become the local lock value; the stream's next lock
			// update supersedes it everywhere else too. But answer it with
			// a release quoting the stale grant epoch: a root that still
			// records this node as the holder lost our original release
			// (e.g. it fell past the fenced-queue bound during a
			// partition) and would otherwise re-announce forever while we
			// ignore it forever — the reply breaks that livelock, and a
			// root that has moved on discards it as stale.
			n.send(g.rootID, wire.Message{
				Type:   wire.TLockRel,
				Group:  uint32(g.cfg.ID),
				Src:    int32(n.id),
				Origin: int32(n.id),
				Lock:   uint32(l),
				Var:    grantEpoch,
				Epoch:  g.epoch,
			})
			return
		}
		if g.lockVal[l] != GrantValue(n.id) && (!g.want[l] || token != g.reqToken[l]) {
			// Unwanted, or minted for a different acquisition than the one
			// outstanding (a cancel in flight, or a token-less failover
			// re-queue): hand it straight back. When a live request is
			// outstanding the local copy keeps its request marker and the
			// periodic retry re-registers with the root, so a declined
			// grant costs one round trip, never liveness. A grant for a
			// lock this node already consumed (local copy shows the grant)
			// is only ever the root's re-announce of that same grant, so
			// it falls through regardless of token. Record the observed
			// grant epoch either way: the next speculation tags its writes
			// with grantEpoch[l], and leaving it stale would make the root
			// suppress a *committed* section's writes as StaleGrant —
			// silent data loss.
			if !g.want[l] {
				g.lockVal[l] = Free
			}
			g.lockDone[l] = grantEpoch
			g.grantEpoch[l] = grantEpoch
			n.send(g.rootID, wire.Message{
				Type:   wire.TLockRel,
				Group:  uint32(g.cfg.ID),
				Src:    int32(n.id),
				Origin: int32(n.id),
				Lock:   uint32(l),
				Var:    grantEpoch,
				Epoch:  g.epoch,
			})
			g.lock.notifyAll()
			return
		}
	}
	g.lockVal[l] = val
	if val != Free {
		g.grantEpoch[l] = grantEpoch
	}
	if val == GrantValue(n.id) {
		// Acquisition complete: stop the watchdog's clock on it.
		delete(g.reqSince, l)
		// Capture (or clear) the handoff target the root designated for
		// this grant. A re-announce without a hint clears a stale one:
		// the queue the old hint peeked no longer exists.
		delete(g.hint, l)
		if hint != 0 && n.leasing() {
			if wn := int(uint32(hint)) - 1; wn >= 0 && wn != n.id {
				g.hint[l] = handoffHint{node: wn, token: uint32(hint >> 32)}
			}
		}
	} else {
		delete(g.hint, l)
		if le := g.lease[l]; le != nil {
			// The sequenced stream says someone else holds (or the lock is
			// free): any cached claim is dead. Mid-section the Release in
			// progress returns it; idle it just evaporates.
			if le.held {
				le.revoked = true
			} else {
				delete(g.lease, l)
			}
		}
	}
	for _, hook := range g.lockHooks[l] {
		if hook(val) == HookSuspend {
			// The paper's atomic interrupt-and-sharing-suspension: no data
			// update can slip in between the lock change that triggers the
			// rollback and the suspension.
			g.suspended = true
		}
	}
	if !sessNotified {
		// Session observers see exclusive transitions too — session 0 is
		// the one-holder session, so a grant is its entry and a free its
		// close. Without this, a speculator joining session s could miss a
		// conflicting exclusive grant that lands while no session view is
		// open locally.
		ev := SessEvent{Kind: SessClose, Session: 0}
		if h := holderOf(val); h >= 0 {
			ev = SessEvent{Kind: SessEnter, Session: 0, Node: h}
		}
		n.runSessHooks(g, l, ev)
	}
	g.lock.notifyAll()
}

// applyData installs a data update, honouring hardware blocking.
func (n *Node) applyData(g *memberGroup, m wire.Message) {
	if m.Guarded && int(m.Origin) == n.id {
		// Hardware blocking (Figure 6): drop root-echoed copies of our own
		// mutex-group writes. The local store already happened at write
		// time; applying the echo could overwrite rollback state — and an
		// echo of an older store must never clobber a newer one.
		//
		// One exception keeps the origin convergent: a failover snapshot
		// may have re-based the local copy to a cut taken before this
		// write was sequenced, rolling the eager store back. The echo of
		// the NEWEST own store (and only that one — older echoes are
		// still superseded locally) is then the only message carrying the
		// write, so it must land. When no re-base happened the re-apply
		// is a no-op and counts as dropped like before.
		v := VarID(m.Var)
		want, ok := g.eager[v]
		if ok && want == m.Val {
			delete(g.eager, v)
			delete(g.eagerMsg, v) // confirmed: stop re-shipping (the backoff struct is reused)
			if g.mem[v] != m.Val {
				n.stats.EchoRestored++
				n.emit(obs.EvEchoRestored, g.cfg.ID, int64(v), 0)
			} else {
				n.stats.EchoDropped++
				n.emit(obs.EvEchoDropped, g.cfg.ID, int64(v), 0)
				return
			}
		} else {
			n.stats.EchoDropped++
			n.emit(obs.EvEchoDropped, g.cfg.ID, int64(v), 0)
			return
		}
	}
	g.mem[VarID(m.Var)] = m.Val
	for _, hook := range g.varHooks[VarID(m.Var)] {
		hook(m.Val)
	}
	g.data.notifyAll()
}

// group looks a member group up. Caller holds n.mu.
func (n *Node) group(id GroupID) (*memberGroup, error) {
	g, ok := n.groups[id]
	if !ok {
		return nil, fmt.Errorf("gwc: node %d has not joined group %d: %w", n.id, id, ErrUnknownGroup)
	}
	return g, nil
}

// Write stores val to the group variable, applying locally at once (the
// writer never blocks under eagersharing) and shipping the change to the
// root for sequencing.
func (n *Node) Write(gid GroupID, v VarID, val int64) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	g.mem[v] = val
	guard, guarded := g.guardOf(v)
	g.data.notifyAll()
	root := g.rootID
	msg := wire.Message{
		Type:    wire.TUpdate,
		Group:   uint32(gid),
		Src:     int32(n.id),
		Origin:  int32(n.id),
		Var:     uint32(v),
		Val:     val,
		Guarded: guarded,
		Epoch:   g.epoch,
	}
	if guarded {
		// Epoch tag: the root accepts this write only if it is post-grant
		// (tag == current epoch) or a clean speculation (tag+1 == current
		// epoch). A clean speculation provably never rolls back, so a
		// rolled-back section's stale writes can never slip in behind its
		// queued grant — a hole the paper's unconditional critical
		// sections never exposed.
		msg.Seq = uint64(g.grantEpoch[guard])
		// Per-store nonce (in the Deadline field, unused by updates):
		// lets the root disposition this store exactly once even when
		// the up-path loss recovery re-ships its frame.
		g.storeSeq++
		msg.Deadline = int64(g.storeSeq)
		// Remember the newest eager store so applyData can tell this
		// write's echo apart from echoes of older, superseded stores —
		// and restore it if a failover snapshot rolled the copy back.
		// The frame itself is kept too, with a re-send schedule: if this
		// one unacknowledged hop loses the frame, the maintenance tick
		// re-ships it until the echo confirms sequencing.
		g.eager[v] = val
		g.eagerMsg[v] = msg
		// The backoff struct is allocated once per var and reused for
		// every later store (the write path must stay allocation-free);
		// only an eagerMsg entry marks a frame as pending re-send.
		b := g.eagerB[v]
		if b == nil {
			b = &backoff{}
			g.eagerB[v] = b
		} else {
			b.reset()
		}
		n.arm(b, n.clock.Now(), n.boBase(), n.boCap())
	}
	if n.batchMax >= 2 {
		// Batched plane: queue for a size/delay/release flush instead of
		// shipping now. Flush-time transport errors surface via Errors().
		n.enqueueWrite(gid, g, msg)
		n.mu.Unlock()
		return nil
	}
	n.mu.Unlock()
	return n.ep.Send(root, msg)
}

// Read returns the local copy of the group variable (zero if never
// written). Reads are always local under eagersharing.
func (n *Node) Read(gid GroupID, v VarID) (int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return 0, err
	}
	return g.mem[v], nil
}

// LockValue returns the local copy of the lock variable.
func (n *Node) LockValue(gid GroupID, l LockID) (int64, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return 0, err
	}
	return g.lockValue(l), nil
}

// WaitGE blocks until the local copy of v reaches at least min. It
// returns false if the node closes first.
func (n *Node) WaitGE(gid GroupID, v VarID, min int64) (bool, error) {
	return n.WaitGEContext(context.Background(), gid, v, min)
}

// WaitGEContext is WaitGE with cancellation: it additionally returns
// ctx's error if the context ends before the condition is met.
func (n *Node) WaitGEContext(ctx context.Context, gid GroupID, v VarID, min int64) (bool, error) {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return false, err
	}
	ch := g.data.register()
	defer func() {
		n.mu.Lock()
		g.data.unregister(ch)
		n.mu.Unlock()
	}()
	// One timer for the whole wait, re-armed per round (the drain-on-Reset
	// clock wrapper makes that safe even when a fire raced the other
	// cases).
	var timer vclock.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if g.mem[v] >= min {
			n.mu.Unlock()
			return true, nil
		}
		closed := n.closed
		n.mu.Unlock()
		if closed {
			return false, nil
		}
		if timer == nil {
			timer = n.clock.NewTimer(n.interval())
		} else {
			timer.Reset(n.interval())
		}
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case _, ok := <-ch:
			timer.Stop()
			if !ok {
				return false, nil
			}
		case <-timer.C():
			// Periodic wake: if a sequence gap is stalling us and the
			// NACK was lost, ask again.
			n.mu.Lock()
			g.lastNack = time.Time{}
			n.maybeNack(g)
			n.mu.Unlock()
		}
		n.mu.Lock()
	}
}

// SendLockRequest issues the non-blocking half of an acquisition: it
// writes the negated ID into the local lock copy and ships the request.
// The optimistic engine pairs it with WaitLockGrant.
func (n *Node) SendLockRequest(gid GroupID, l LockID) error {
	return n.sendLockRequest(gid, l, 0)
}

// sendLockRequest is SendLockRequest with the caller's context deadline
// (Unix nanoseconds, 0 = none) propagated onto the wire, so the root
// can drop the request outright once the caller has given up instead of
// granting into the void.
func (n *Node) sendLockRequest(gid GroupID, l LockID, deadline int64) error {
	return n.sendLockRequestS(gid, l, 0, deadline)
}

// sendLockRequestS is the session-aware request sender: session names
// the session the acquisition wants to enter (0 = exclusive). A fresh
// acquisition records its session; retries while the request is
// outstanding reuse the recorded one regardless of the argument, so a
// generic retry path (waitLock's resend, the watchdog) never changes
// what an acquisition asks for.
func (n *Node) sendLockRequestS(gid GroupID, l LockID, session uint32, deadline int64) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if !g.want[l] {
		// A new logical acquisition: mint its token. Retries while the
		// request is outstanding reuse it, so the root can tell a retry
		// from a new request that overtook a lost cancel. The mint also
		// starts the watchdog's clock on the acquisition.
		g.reqToken[l]++
		g.reqSince[l] = n.clock.Now()
		g.reqSession[l] = session
	}
	sess := g.reqSession[l]
	if sess == 0 && g.lockValue(l) != GrantValue(n.id) {
		// The request marker in the local copy belongs to the exclusive
		// protocol; session entries leave the lock value alone.
		g.lockVal[l] = RequestValue(n.id)
	}
	g.want[l] = true
	n.stats.LockRequests++
	root := g.rootID
	msg := wire.Message{
		Type:     wire.TLockReq,
		Group:    uint32(gid),
		Src:      int32(n.id),
		Origin:   int32(n.id),
		Seq:      uint64(g.reqToken[l]),
		Lock:     uint32(l),
		Epoch:    g.epoch,
		Deadline: deadline,
		Session:  sess,
	}
	n.mu.Unlock()
	return n.ep.Send(root, msg)
}

// ctxDeadline extracts a context's deadline as Unix nanoseconds for the
// wire's Deadline field (0 = none).
func ctxDeadline(ctx context.Context) int64 {
	if d, ok := ctx.Deadline(); ok {
		return d.UnixNano()
	}
	return 0
}

// waitLock blocks until cond is satisfied by the local lock value
// (checked immediately and after every change). It returns (false,
// ctx.Err()) if the context ends first and (false, nil) if the node
// closes. With resend, the pending request is re-sent on a jittered
// exponential backoff (backoff.go) in case it was lost — the root
// ignores duplicates — with the schedule reset on a reign change so the
// request re-registers with the new root promptly (the failover's lock
// re-base wakes waiters, so the reset takes effect without waiting out
// the cap).
func (n *Node) waitLock(ctx context.Context, gid GroupID, l LockID, cond func(val int64) bool, resend bool) (bool, error) {
	return n.waitLockF(ctx, gid, l, func(g *memberGroup) bool { return cond(g.lockValue(l)) }, resend)
}

// waitLockF is waitLock generalized over the whole member view, so
// session waits can watch the holder set rather than the lock value.
// cond runs under n.mu.
func (n *Node) waitLockF(ctx context.Context, gid GroupID, l LockID, cond func(g *memberGroup) bool, resend bool) (bool, error) {
	deadline := ctxDeadline(ctx)
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return false, err
	}
	ch := g.lock.register()
	// The session of the acquisition this wait serves, so a resend after
	// a cancel race re-mints the same kind of request.
	sess := g.reqSession[l]
	// Per-wait retry schedule. The caller just sent the request, so the
	// first resend waits out a full base delay.
	var bo backoff
	lastEpoch := g.epoch
	lastGrant := g.grantEpoch[l]
	if resend {
		n.arm(&bo, n.clock.Now(), n.boBase(), n.boCap())
	}
	defer func() {
		n.mu.Lock()
		g.lock.unregister(ch)
		n.mu.Unlock()
	}()
	// One retry timer for the whole wait, re-armed per round.
	var timer vclock.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if cond(g) {
			n.mu.Unlock()
			return true, nil
		}
		closed := n.closed
		resendNow := false
		var wait time.Duration
		if resend {
			if g.epoch != lastEpoch {
				lastEpoch = g.epoch
				bo.reset()
			}
			if ge := g.grantEpoch[l]; ge != lastGrant {
				// The lock moved — a grant, handoff, or lease-backed
				// re-announce landed since the schedule was armed. The delay
				// was sized against a world that no longer exists (e.g. a
				// lease granted mid-retry means the next change is the revoke
				// answer, which deserves a prompt re-register), so the next
				// retry fires at base cadence again.
				lastGrant = ge
				bo.reset()
			}
			now := n.clock.Now()
			if bo.ready(now) {
				resendNow = true
				n.arm(&bo, now, n.boBase(), n.boCap())
			}
			wait = bo.due.Sub(now)
		}
		n.mu.Unlock()
		if closed {
			return false, nil
		}
		if resendNow {
			if err := n.sendLockRequestS(gid, l, sess, deadline); err != nil {
				return false, err
			}
		}
		if resend {
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			if timer == nil {
				timer = n.clock.NewTimer(wait)
			} else {
				timer.Reset(wait)
			}
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case _, ok := <-ch:
				timer.Stop()
				if !ok {
					return false, nil
				}
			case <-timer.C():
				// Schedule due: the next round re-checks and re-sends.
			}
		} else {
			select {
			case <-ctx.Done():
				return false, ctx.Err()
			case _, ok := <-ch:
				if !ok {
					return false, nil
				}
			}
		}
		n.mu.Lock()
	}
}

// grantCond reports whether this node holds the lock.
func (n *Node) grantCond(val int64) bool { return val == GrantValue(n.id) }

// WaitLockGrant blocks until this node's positive ID arrives in the local
// lock copy, re-sending the request periodically in case it was lost (the
// root ignores duplicates). It returns false if the node closes first.
func (n *Node) WaitLockGrant(gid GroupID, l LockID) (bool, error) {
	return n.waitLock(context.Background(), gid, l, n.grantCond, true)
}

// WaitLockGrantContext is WaitLockGrant with cancellation. On context
// expiry it returns ctx's error without withdrawing the queued request;
// use CancelLockRequest (or AcquireContext, which pairs them) for that.
func (n *Node) WaitLockGrantContext(ctx context.Context, gid GroupID, l LockID) (bool, error) {
	return n.waitLock(ctx, gid, l, n.grantCond, true)
}

// WaitLockCond blocks until cond is satisfied by the local lock value
// (checked immediately and after every change). It returns false if the
// node closes first. Unlike WaitLockGrant it never re-sends requests.
func (n *Node) WaitLockCond(gid GroupID, l LockID, cond func(val int64) bool) (bool, error) {
	return n.waitLock(context.Background(), gid, l, cond, false)
}

// WaitLockCondContext is WaitLockCond with cancellation and an optional
// periodic request retry (resend), which callers racing a root failover
// use so a request that died with the old root is re-issued to the new
// one.
func (n *Node) WaitLockCondContext(ctx context.Context, gid GroupID, l LockID, cond func(val int64) bool, resend bool) (bool, error) {
	return n.waitLock(ctx, gid, l, cond, resend)
}

// Acquire blocks until this node holds the lock.
func (n *Node) Acquire(gid GroupID, l LockID) error {
	return n.AcquireContext(context.Background(), gid, l)
}

// AcquireContext blocks until this node holds the lock or ctx ends. On
// cancellation or deadline it withdraws the queued request from the root
// (releasing the lock instead if the grant raced the cancellation) and
// returns ctx's error.
func (n *Node) AcquireContext(ctx context.Context, gid GroupID, l LockID) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if n.TryLeaseEnter(gid, l) {
		// Leased fast path: the lock is cached here from the previous
		// hold, so re-entry is a local decision — zero wire messages.
		return nil
	}
	start := n.clock.Now()
	if err := n.sendLockRequest(gid, l, ctxDeadline(ctx)); err != nil {
		return err
	}
	ok, err := n.WaitLockGrantContext(ctx, gid, l)
	if err != nil {
		if cerr := n.CancelLockRequest(gid, l); cerr != nil {
			n.mu.Lock()
			n.protoErr("gwc: node %d cancel lock %d: %w", n.id, l, cerr)
			n.mu.Unlock()
		}
		return err
	}
	if !ok {
		return fmt.Errorf("gwc: node %d closed while waiting for lock %d: %w", n.id, l, ErrClosed)
	}
	// Request-to-grant wall time for a successful blocking acquire — the
	// latency the paper's speculation overlaps with useful work.
	n.metrics.Hist(obs.HistLockAcquire).Record(n.clock.Now().Sub(start))
	return nil
}

// CancelLockRequest withdraws an outstanding lock request. If the grant
// has already arrived locally, the lock is released instead, so the
// caller never retains it; if the grant is in flight, the auto-release
// in applyLockValue hands it back when it lands.
func (n *Node) CancelLockRequest(gid GroupID, l LockID) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if g.lockValue(l) == GrantValue(n.id) {
		n.mu.Unlock()
		return n.Release(gid, l)
	}
	if sv := g.sess[l]; sv != nil && sv.mine {
		// The session entry raced the cancellation; leave it instead.
		n.mu.Unlock()
		return n.LeaveSession(gid, l)
	}
	// The grant answering this request may already be in flight; its
	// echoed token no longer matches any outstanding acquisition (a new
	// request mints a fresh token), so applyLockValue declines it.
	delete(g.want, l)
	delete(g.reqSince, l)
	delete(g.reqSession, l)
	if g.lockValue(l) == RequestValue(n.id) {
		g.lockVal[l] = Free
		g.lock.notifyAll()
	}
	root := g.rootID
	msg := wire.Message{
		Type:   wire.TLockCancel,
		Group:  uint32(gid),
		Src:    int32(n.id),
		Origin: int32(n.id),
		Lock:   uint32(l),
		Epoch:  g.epoch,
	}
	n.mu.Unlock()
	return n.ep.Send(root, msg)
}

// Release frees the lock. The release follows the critical section's last
// shared write on the same path, so GWC ordering guarantees every member
// sees the data before the lock changes.
func (n *Node) Release(gid GroupID, l LockID) error {
	n.mu.Lock()
	g, err := n.group(gid)
	if err != nil {
		n.mu.Unlock()
		return err
	}
	if g.lockValue(l) != GrantValue(n.id) {
		n.mu.Unlock()
		return fmt.Errorf("gwc: node %d releasing lock %d it does not hold", n.id, l)
	}
	// Batched plane: the section's queued writes must reach the root
	// before the release does, so every member still sees the data before
	// the lock changes hands (the paper's GWC ordering guarantee).
	n.flushWrites(g, flushRelease)
	// Lease/handoff fast paths (lease.go): a hinted waiter may take the
	// lock directly, and a live lease keeps it cached here instead of
	// going back to the root.
	if handled, err := n.leaseRelease(gid, g, l); handled {
		return err
	}
	epoch := g.grantEpoch[l]
	g.lockVal[l] = Free
	g.lockDone[l] = epoch
	delete(g.want, l)
	delete(g.reqSince, l)
	delete(g.reqSession, l)
	root := g.rootID
	msg := wire.Message{
		Type:   wire.TLockRel,
		Group:  uint32(gid),
		Src:    int32(n.id),
		Origin: int32(n.id),
		Lock:   uint32(l),
		Var:    epoch, // quoted so the root can discard stale duplicates
		Epoch:  g.epoch,
	}
	n.mu.Unlock()
	return n.ep.Send(root, msg)
}

// HookAction is a lock-change hook's verdict.
type HookAction int

// Hook verdicts.
const (
	// HookNone takes no protocol action.
	HookNone HookAction = iota
	// HookSuspend atomically suspends insharing for the group, the
	// paper's interrupt-and-sharing-suspension (Figure 5).
	HookSuspend
)

// LockHook observes a lock-value change. It runs under the node's
// internal lock and must not block or call back into the node.
type LockHook func(val int64) HookAction

// OnLockChange registers a hook invoked whenever the lock's value
// changes. The returned function unregisters it.
func (n *Node) OnLockChange(gid GroupID, l LockID, hook LockHook) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return nil, err
	}
	g.hookSeq++
	token := g.hookSeq
	if g.lockHooks[l] == nil {
		g.lockHooks[l] = make(map[uint64]LockHook)
	}
	g.lockHooks[l][token] = hook
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(g.lockHooks[l], token)
	}, nil
}

// SuspendInsharing parks incoming data updates for the group (lock
// changes still flow), the atomic interrupt-and-suspension of Figure 5.
func (n *Node) SuspendInsharing(gid GroupID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return err
	}
	g.suspended = true
	return nil
}

// ResumeInsharing replays parked updates and resumes normal delivery.
func (n *Node) ResumeInsharing(gid GroupID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return err
	}
	g.suspended = false
	q := g.suspendQ
	g.suspendQ = nil
	for _, m := range q {
		n.applyData(g, m)
	}
	return nil
}

// RestoreLocal writes saved values back into local memory without
// propagating them — the rollback of Figure 4 lines 22-23.
func (n *Node) RestoreLocal(gid GroupID, saved map[VarID]int64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return err
	}
	for v, val := range saved {
		g.mem[v] = val
		// The rolled-back section's stores are withdrawn: the root
		// suppresses them (or already has), so their echoes will never
		// come and their carrier frames must stop re-shipping — a
		// re-send would just be re-suppressed, and the eager entry
		// must not let a later same-value echo through as our own.
		delete(g.eager, v)
		delete(g.eagerMsg, v)
	}
	g.data.notifyAll()
	return nil
}

// OnVarChange registers a hook invoked (under the node's internal lock,
// so it must not block) whenever a sequenced update to v is applied. The
// origin's own writes trigger it when their (unguarded) echoes apply;
// guarded echoes are hardware-blocked and do not. The returned function
// unregisters the hook.
func (n *Node) OnVarChange(gid GroupID, v VarID, hook func(val int64)) (func(), error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return nil, err
	}
	g.hookSeq++
	token := g.hookSeq
	if g.varHooks[v] == nil {
		g.varHooks[v] = make(map[uint64]func(int64))
	}
	g.varHooks[v][token] = hook
	return func() {
		n.mu.Lock()
		defer n.mu.Unlock()
		delete(g.varHooks[v], token)
	}, nil
}

// SetGuard binds variable v to lock l in the group's mutex data map. The
// cluster layer calls this on every member when a guarded variable is
// declared, before the variable is first used.
func (n *Node) SetGuard(gid GroupID, v VarID, l LockID) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	g, err := n.group(gid)
	if err != nil {
		return err
	}
	g.cfg.Guards[v] = l
	if r, ok := n.roots[gid]; ok {
		r.cfg.Guards[v] = l
	}
	return nil
}

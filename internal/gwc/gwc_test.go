package gwc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"optsync/internal/transport"
	"optsync/internal/wire"
)

const (
	tGroup GroupID = 1
	tVar   VarID   = 10
	tVarB  VarID   = 11
	tLock  LockID  = 0
)

// cluster is a test harness: n nodes joined to one group rooted at 0.
type cluster struct {
	net   transport.Network
	nodes []*Node
}

// newCluster builds a cluster over the given network with tVar/tVarB
// guarded by tLock when guarded is true.
func newCluster(t *testing.T, net transport.Network, guarded bool) *cluster {
	t.Helper()
	n := net.Size()
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	guards := map[VarID]LockID{}
	if guarded {
		guards[tVar] = tLock
		guards[tVarB] = tLock
	}
	c := &cluster{net: net, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = NewNode(i, ep)
		// Tracing drives waitFor's wake-ups and timeout dumps; it is
		// atomics-only, so it cannot mask the races these tests hunt.
		c.nodes[i].Metrics().Trace.Enable(0)
		if err := c.nodes[i].Join(GroupConfig{
			ID:      tGroup,
			Root:    0,
			Members: members,
			Guards:  guards,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			_ = nd.Close()
		}
		_ = net.Close()
	})
	return c
}

func newInProcCluster(t *testing.T, n int, guarded bool) *cluster {
	t.Helper()
	net, err := transport.NewInProc(n)
	if err != nil {
		t.Fatal(err)
	}
	return newCluster(t, net, guarded)
}

// waitValue blocks until node's copy of v equals want, or fails. It
// registers on the member's data notify-list — the same wake-up the
// blocking read API uses — so every applied update re-checks the value
// without busy-polling wall time.
func waitValue(t *testing.T, n *Node, v VarID, want int64) {
	t.Helper()
	n.mu.Lock()
	g, err := n.group(tGroup)
	if err != nil {
		n.mu.Unlock()
		t.Fatal(err)
	}
	ch := g.data.register()
	n.mu.Unlock()
	defer func() {
		n.mu.Lock()
		g.data.unregister(ch)
		n.mu.Unlock()
	}()
	deadline := time.NewTimer(5 * time.Second)
	defer deadline.Stop()
	for {
		got, err := n.Read(tGroup, v)
		if err != nil {
			t.Fatal(err)
		}
		if got == want {
			return
		}
		select {
		case _, ok := <-ch:
			if !ok {
				t.Fatalf("node %d closed while waiting for var %d = %d", n.ID(), v, want)
			}
		case <-deadline.C:
			got, _ := n.Read(tGroup, v)
			t.Fatalf("node %d: var %d = %d, want %d (stats %+v)", n.ID(), v, got, want, n.Stats())
		}
	}
}

func TestWritePropagatesToAllNodes(t *testing.T) {
	c := newInProcCluster(t, 5, false)
	if err := c.nodes[2].Write(tGroup, tVar, 42); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 42)
	}
}

func TestWaitGEWakesOnRemoteWrite(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	done := make(chan bool, 1)
	go func() {
		ok, err := c.nodes[2].WaitGE(tGroup, tVar, 7)
		if err != nil {
			t.Error(err)
		}
		done <- ok
	}()
	time.Sleep(20 * time.Millisecond)
	if err := c.nodes[1].Write(tGroup, tVar, 7); err != nil {
		t.Fatal(err)
	}
	select {
	case ok := <-done:
		if !ok {
			t.Error("WaitGE returned not-ok")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGE never woke")
	}
}

func TestConcurrentWritersConverge(t *testing.T) {
	c := newInProcCluster(t, 4, false)
	var wg sync.WaitGroup
	for w := 1; w <= 3; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := c.nodes[w].Write(tGroup, tVar, int64(w*1000+i)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Let the last sequenced update reach everyone, then compare: the
	// root's order is authoritative, so all nodes converge identically.
	time.Sleep(200 * time.Millisecond)
	want, err := c.nodes[0].Read(tGroup, tVar)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes[1:] {
		got, err := n.Read(tGroup, tVar)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("node %d converged on %d, node 0 on %d", n.ID(), got, want)
		}
	}
}

func TestMutualExclusionCounter(t *testing.T) {
	c := newInProcCluster(t, 4, true)
	const reps = 10
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.nodes[id]
			for i := 0; i < reps; i++ {
				if err := n.Acquire(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
				cur, err := n.Read(tGroup, tVar)
				if err != nil {
					t.Error(err)
					return
				}
				// Widen the race window: without mutual exclusion this
				// read-modify-write would lose updates.
				time.Sleep(time.Millisecond)
				if err := n.Write(tGroup, tVar, cur+1); err != nil {
					t.Error(err)
					return
				}
				if err := n.Release(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitValue(t, c.nodes[0], tVar, 4*reps)
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 4*reps)
	}
}

func TestDataValidWhenGrantArrives(t *testing.T) {
	// GWC's guarantee: when the lock arrives, the previous holder's
	// writes are already in local memory (data precedes grant in the
	// sequenced stream).
	c := newInProcCluster(t, 3, true)
	n1, n2 := c.nodes[1], c.nodes[2]
	if err := n1.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	acquired := make(chan int64, 1)
	go func() {
		if err := n2.Acquire(tGroup, tLock); err != nil {
			t.Error(err)
			acquired <- -1
			return
		}
		v, err := n2.Read(tGroup, tVar) // must already be valid
		if err != nil {
			t.Error(err)
		}
		acquired <- v
	}()
	time.Sleep(30 * time.Millisecond) // let node 2's request queue up
	if err := n1.Write(tGroup, tVar, 555); err != nil {
		t.Fatal(err)
	}
	if err := n1.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-acquired:
		if v != 555 {
			t.Errorf("node 2 read %d at grant time, want 555", v)
		}
		_ = n2.Release(tGroup, tLock)
	case <-time.After(5 * time.Second):
		t.Fatal("node 2 never acquired")
	}
}

func TestHardwareBlockingDropsEchoes(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	n1 := c.nodes[1]
	if err := n1.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n1.Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	if err := n1.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 1)
	// The dropped echo emits an EvEchoDropped trace event, which wakes
	// waitFor's subscription the moment it happens.
	waitFor(t, c, 2*time.Second, "the guarded echo to be blocked", func() bool {
		return n1.Stats().EchoDropped >= 1
	})
}

// TestOwnEchoRestoredAfterSnapshotRebase exercises the one exception to
// hardware blocking: when a snapshot re-base has rolled back a member's
// eager guarded store, the echo of its newest own write is the only
// message that still carries the write, so it must be applied instead of
// dropped — while echoes of older, locally superseded stores stay
// blocked. The sequence is synthesized under the node lock so the test
// is hermetic; the detsim harness found the live interleaving
// (partition-during-election seed 7).
func TestOwnEchoRestoredAfterSnapshotRebase(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	n := c.nodes[1]
	n.mu.Lock()
	defer n.mu.Unlock()
	g := n.groups[tGroup]

	echo := func(val int64) wire.Message {
		m := wire.Message{
			Type:    wire.TSeqUpdate,
			Group:   uint32(tGroup),
			Src:     int32(g.rootID),
			Origin:  int32(n.id),
			Guarded: true,
			Seq:     g.nextSeq,
			Var:     uint32(tVar),
			Val:     val,
			Epoch:   g.epoch,
		}
		return m
	}

	// An eager guarded store whose echo is still in flight...
	g.mem[tVar] = 7
	g.eager[tVar] = 7
	// ...rolled back by a failover snapshot cut before the write was
	// sequenced (applyVarValue is the snapshot's apply path).
	n.applyVarValue(g, tVar, 3)
	if got := g.mem[tVar]; got != 3 {
		t.Fatalf("after re-base: mem = %d, want 3", got)
	}
	// The echo must repair the copy.
	n.ingestFwd(g, echo(7), false)
	if got := g.mem[tVar]; got != 7 {
		t.Errorf("after own echo: mem = %d, want 7 (restored)", got)
	}
	if n.stats.EchoRestored != 1 {
		t.Errorf("EchoRestored = %d, want 1", n.stats.EchoRestored)
	}

	// A second arrival of the same echo is a plain duplicate again.
	before := n.stats.EchoRestored
	n.ingestFwd(g, echo(7), false)
	if n.stats.EchoRestored != before {
		t.Errorf("re-delivered echo restored again; EchoRestored = %d", n.stats.EchoRestored)
	}

	// An echo of an older store never lands: the newer local store wins
	// even when a re-base intervened.
	g.mem[tVar] = 9
	g.eager[tVar] = 9
	n.applyVarValue(g, tVar, 3)
	dropped := n.stats.EchoDropped
	n.ingestFwd(g, echo(5), false) // echo of a superseded store
	if got := g.mem[tVar]; got != 3 {
		t.Errorf("superseded echo applied: mem = %d, want 3", got)
	}
	if n.stats.EchoDropped != dropped+1 {
		t.Errorf("EchoDropped = %d, want %d", n.stats.EchoDropped, dropped+1)
	}
	// The newest store's echo still repairs.
	n.ingestFwd(g, echo(9), false)
	if got := g.mem[tVar]; got != 9 {
		t.Errorf("newest echo after superseded one: mem = %d, want 9", got)
	}
}

func TestRootSuppressesNonHolderGuardedWrite(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	// Node 1 holds the lock; node 2 writes the guarded variable without
	// it (an optimistic write racing a competing holder). The root must
	// discard node 2's write.
	if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Write(tGroup, tVar, 100); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[2].Write(tGroup, tVar, 999); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 100)
	time.Sleep(50 * time.Millisecond)
	if got, _ := c.nodes[0].Read(tGroup, tVar); got != 100 {
		t.Errorf("root memory = %d, want 100 (999 must be suppressed)", got)
	}
	if sup := c.nodes[0].Stats().Suppressed; sup != 1 {
		t.Errorf("Suppressed = %d, want 1", sup)
	}
	_ = c.nodes[1].Release(tGroup, tLock)
}

func TestReleaseWithoutHoldingFails(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	if err := c.nodes[1].Release(tGroup, tLock); err == nil {
		t.Error("release of unheld lock succeeded, want error")
	}
}

func TestUnknownGroupErrors(t *testing.T) {
	c := newInProcCluster(t, 2, false)
	if err := c.nodes[0].Write(99, tVar, 1); err == nil {
		t.Error("Write to unknown group succeeded")
	}
	if _, err := c.nodes[0].Read(99, tVar); err == nil {
		t.Error("Read of unknown group succeeded")
	}
	if err := c.nodes[0].Acquire(99, tLock); err == nil {
		t.Error("Acquire on unknown group succeeded")
	}
}

func TestJoinValidation(t *testing.T) {
	net, _ := transport.NewInProc(2)
	defer func() { _ = net.Close() }()
	ep, _ := net.Endpoint(0)
	n := NewNode(0, ep)
	defer func() { _ = n.Close() }()
	if err := n.Join(GroupConfig{ID: 1, Root: 1, Members: []int{1}}); err == nil {
		t.Error("joining a group we are not a member of succeeded")
	}
	if err := n.Join(GroupConfig{ID: 1, Root: 0, Members: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := n.Join(GroupConfig{ID: 1, Root: 0, Members: []int{0, 1}}); err == nil {
		t.Error("double join succeeded")
	}
}

func TestLockChangeHooks(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	var mu sync.Mutex
	var seen []int64
	unreg, err := c.nodes[2].OnLockChange(tGroup, tLock, func(val int64) HookAction {
		mu.Lock()
		seen = append(seen, val)
		mu.Unlock()
		return HookNone
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	// The root's grant and free multicasts emit trace events that wake
	// waitFor; the fallback tick covers the last hop to node 2's hook.
	waitFor(t, c, 2*time.Second, "the hook to observe grant and free", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(seen) >= 2
	})
	mu.Lock()
	defer mu.Unlock()
	if len(seen) < 2 || seen[0] != GrantValue(1) || seen[len(seen)-1] != Free {
		t.Errorf("hook saw %v, want [grant(1) ... free]", seen)
	}
	unreg()
}

func TestSuspendInsharingBuffersData(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	n2 := c.nodes[2]
	if err := n2.SuspendInsharing(tGroup); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Write(tGroup, tVar, 77); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got, _ := n2.Read(tGroup, tVar); got != 0 {
		t.Fatalf("suspended node saw %d, want 0 until resume", got)
	}
	if err := n2.ResumeInsharing(tGroup); err != nil {
		t.Fatal(err)
	}
	waitValue(t, n2, tVar, 77)
}

func TestRestoreLocalDoesNotPropagate(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	if err := c.nodes[1].Write(tGroup, tVar, 5); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 5)
	}
	if err := c.nodes[1].RestoreLocal(tGroup, map[VarID]int64{tVar: 3}); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.nodes[1].Read(tGroup, tVar); got != 3 {
		t.Errorf("local restore not applied: %d", got)
	}
	time.Sleep(50 * time.Millisecond)
	if got, _ := c.nodes[2].Read(tGroup, tVar); got != 5 {
		t.Errorf("restore leaked to node 2: %d, want 5", got)
	}
}

func TestNackRecoveryUnderLoss(t *testing.T) {
	inner, err := transport.NewInProc(4)
	if err != nil {
		t.Fatal(err)
	}
	flaky := transport.NewFlaky(inner, transport.FaultPlan{
		DropRate: 0.25,
		Seed:     1234,
		DownOnly: true,
		Spare:    []wire.Type{wire.TNack},
	})
	c := newCluster(t, flaky, false)
	const writes = 200
	for i := 1; i <= writes; i++ {
		if err := c.nodes[1].Write(tGroup, tVar, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, writes)
	}
	dropped, _, _ := flaky.Stats()
	if dropped == 0 {
		t.Fatal("fault injection never dropped anything; test is vacuous")
	}
	var nacks, retrans int
	for _, n := range c.nodes {
		s := n.Stats()
		nacks += s.Nacks
		retrans += s.Retransmits
	}
	if nacks == 0 || retrans == 0 {
		t.Errorf("nacks=%d retransmits=%d after %d drops; recovery machinery unused", nacks, retrans, dropped)
	}
}

func TestMutualExclusionUnderLossyLockPlane(t *testing.T) {
	inner, err := transport.NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	flaky := transport.NewFlaky(inner, transport.FaultPlan{
		DropRate: 0.15,
		Seed:     99,
		DownOnly: true,
		Spare:    []wire.Type{wire.TNack},
	})
	c := newCluster(t, flaky, true)
	const reps = 5
	var wg sync.WaitGroup
	for id := 1; id <= 2; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.nodes[id]
			for i := 0; i < reps; i++ {
				if err := n.Acquire(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
				cur, _ := n.Read(tGroup, tVar)
				if err := n.Write(tGroup, tVar, cur+1); err != nil {
					t.Error(err)
					return
				}
				if err := n.Release(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitValue(t, c.nodes[0], tVar, 2*reps)
}

func TestDuplicateReleaseIgnoredByEpoch(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	n1, n2 := c.nodes[1], c.nodes[2]
	if err := n1.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	// Forge the duplicate release a lost-ack retry could produce: quote
	// the epoch of n1's current grant, release properly, let n2 acquire,
	// then replay the stale release. n2's grant must survive.
	n1.mu.Lock()
	staleEpoch := n1.groups[tGroup].grantEpoch[tLock]
	n1.mu.Unlock()
	if err := n1.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := n2.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	ep := n1.ep
	if err := ep.Send(0, wire.Message{
		Type: wire.TLockRel, Group: uint32(tGroup), Src: 1, Origin: 1,
		Lock: uint32(tLock), Var: staleEpoch,
	}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if got, _ := c.nodes[0].LockValue(tGroup, tLock); got != GrantValue(2) {
		t.Errorf("lock value = %d after stale release replay, want grant(2)=%d", got, GrantValue(2))
	}
	_ = n2.Release(tGroup, tLock)
}

func TestCloseUnblocksWaiters(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ok, _ := c.nodes[1].WaitGE(tGroup, tVar, 100)
		if ok {
			t.Error("WaitGE satisfied after close")
		}
	}()
	time.Sleep(20 * time.Millisecond)
	_ = c.nodes[1].Close()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("WaitGE did not unblock on close")
	}
}

func TestTCPClusterEndToEnd(t *testing.T) {
	addrs := []string{"127.0.0.1:0", "127.0.0.1:0", "127.0.0.1:0"}
	net, err := transport.NewTCP(addrs)
	if err != nil {
		t.Fatal(err)
	}
	c := newCluster(t, net, true)
	if err := c.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Write(tGroup, tVar, 2024); err != nil {
		t.Fatal(err)
	}
	if err := c.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 2024)
	}
}

func TestManyNodesManyLocks(t *testing.T) {
	c := newInProcCluster(t, 8, true)
	var wg sync.WaitGroup
	for id := 0; id < 8; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.nodes[id]
			for i := 0; i < 5; i++ {
				if err := n.Acquire(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
				a, _ := n.Read(tGroup, tVar)
				b, _ := n.Read(tGroup, tVarB)
				if a != b {
					t.Errorf("invariant broken inside critical section: %d != %d", a, b)
				}
				_ = n.Write(tGroup, tVar, a+1)
				_ = n.Write(tGroup, tVarB, b+1)
				if err := n.Release(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	waitValue(t, c.nodes[0], tVar, 40)
	waitValue(t, c.nodes[0], tVarB, 40)
}

func TestStatsString(t *testing.T) {
	// Compile-time style check that Stats is a plain value usable in logs.
	s := Stats{Suppressed: 1, Nacks: 2}
	if fmt.Sprintf("%+v", s) == "" {
		t.Error("unformattable stats")
	}
}

// newTreeCluster is newCluster over a tree-fanout group.
func newTreeCluster(t *testing.T, n int, guarded bool) *cluster {
	t.Helper()
	net, err := transport.NewInProc(n)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	guards := map[VarID]LockID{}
	if guarded {
		guards[tVar] = tLock
	}
	c := &cluster{net: net, nodes: make([]*Node, n)}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = NewNode(i, ep)
		// Tracing drives waitFor's wake-ups and timeout dumps; it is
		// atomics-only, so it cannot mask the races these tests hunt.
		c.nodes[i].Metrics().Trace.Enable(0)
		if err := c.nodes[i].Join(GroupConfig{
			ID: tGroup, Root: 0, Members: members, Guards: guards, TreeFanout: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			_ = nd.Close()
		}
		_ = net.Close()
	})
	return c
}

func TestTreeFanoutPropagation(t *testing.T) {
	c := newTreeCluster(t, 9, false)
	for i := 1; i <= 20; i++ {
		if err := c.nodes[3].Write(tGroup, tVar, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 20)
	}
	// Interior tree nodes must actually have relayed traffic.
	forwarded := 0
	for _, n := range c.nodes {
		forwarded += n.Stats().Forwarded
	}
	if forwarded == 0 {
		t.Error("no messages were forwarded down the tree")
	}
}

func TestTreeFanoutMutualExclusion(t *testing.T) {
	c := newTreeCluster(t, 9, true)
	const reps = 5
	var wg sync.WaitGroup
	for id := 0; id < 9; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := c.nodes[id]
			for i := 0; i < reps; i++ {
				if err := n.Acquire(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
				cur, _ := n.Read(tGroup, tVar)
				if err := n.Write(tGroup, tVar, cur+1); err != nil {
					t.Error(err)
					return
				}
				if err := n.Release(tGroup, tLock); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range c.nodes {
		waitValue(t, n, tVar, 9*reps)
	}
}

func TestTreeFanoutRecoversFromLoss(t *testing.T) {
	inner, err := transport.NewInProc(9)
	if err != nil {
		t.Fatal(err)
	}
	flaky := transport.NewFlaky(inner, transport.FaultPlan{
		DropRate: 0.2,
		Seed:     5,
		DownOnly: true,
		Spare:    []wire.Type{wire.TNack},
	})
	members := make([]int, 9)
	for i := range members {
		members[i] = i
	}
	c := &cluster{net: flaky, nodes: make([]*Node, 9)}
	for i := 0; i < 9; i++ {
		ep, err := flaky.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = NewNode(i, ep)
		// Tracing drives waitFor's wake-ups and timeout dumps; it is
		// atomics-only, so it cannot mask the races these tests hunt.
		c.nodes[i].Metrics().Trace.Enable(0)
		if err := c.nodes[i].Join(GroupConfig{
			ID: tGroup, Root: 0, Members: members, TreeFanout: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			_ = nd.Close()
		}
		_ = flaky.Close()
	})
	const writes = 100
	for i := 1; i <= writes; i++ {
		if err := c.nodes[1].Write(tGroup, tVar, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	// A drop at an interior tree node loses the message for its whole
	// subtree; every descendant must recover via direct NACKs.
	for _, n := range c.nodes {
		waitValue(t, n, tVar, writes)
	}
}

func TestTreeFanoutRequiresContiguousMembers(t *testing.T) {
	net, _ := transport.NewInProc(3)
	defer func() { _ = net.Close() }()
	ep, _ := net.Endpoint(0)
	n := NewNode(0, ep)
	defer func() { _ = n.Close() }()
	err := n.Join(GroupConfig{ID: 1, Root: 0, Members: []int{0, 2}, TreeFanout: true})
	if err == nil {
		t.Error("tree fanout with non-contiguous members succeeded")
	}
}

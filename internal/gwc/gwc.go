// Package gwc is the live (really concurrent, not simulated) runtime for
// Sesame-style eagersharing with group write consistency:
//
//   - every shared write is applied locally at once and shipped to the
//     group root;
//   - the root sequences all writes in a group and multicasts them, so
//     every member applies the same total order (GWC);
//   - the root doubles as the queue-based lock manager of Section 2: a
//     request writes the negated node ID, the grant writes the positive
//     ID, and -99..99 (Free) means free;
//   - sequence gaps are detected by members and repaired with NACK-driven
//     retransmission from the root's history buffer, standing in for the
//     reliable tree multicast of the Sesame hardware interfaces.
//
// The optimistic mutual exclusion of Section 4 is built on these hooks by
// package core.
package gwc

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"optsync/internal/obs"
	"optsync/internal/transport"
	"optsync/internal/vclock"
	"optsync/internal/wire"
)

// Sentinel errors, matchable with errors.Is on anything a Node returns.
var (
	// ErrClosed marks operations that failed because the node shut down.
	ErrClosed = errors.New("node closed")
	// ErrNotMember marks joins by nodes outside the group's member list.
	ErrNotMember = errors.New("not a group member")
	// ErrUnknownGroup marks operations on groups the node never joined.
	ErrUnknownGroup = errors.New("unknown group")
)

// GroupID names a sharing group.
type GroupID uint32

// VarID names an eagerly shared variable within a group.
type VarID uint32

// LockID names a queue-based lock within a group.
type LockID uint32

// Free is the distinguished "lock free" value (the paper's -99..99: a
// unique negative number not matching any processor ID).
const Free int64 = math.MinInt64 / 2

// GrantValue encodes "node holds the lock" as the paper's positive
// processor ID (offset by one so node 0 is nonzero).
func GrantValue(node int) int64 { return int64(node + 1) }

// RequestValue is the negated request form a requester writes into its
// local lock copy.
func RequestValue(node int) int64 { return -int64(node + 1) }

// GroupConfig describes one sharing group. All members (and the root)
// must join with identical configuration.
type GroupConfig struct {
	ID      GroupID
	Root    int
	Members []int
	// Guards maps variables in mutex data groups to their lock: the root
	// discards writes to them from non-holders, and origins drop their
	// echoes (hardware blocking).
	Guards map[VarID]LockID
	// HistorySize bounds the root's retransmission buffer (default 4096
	// sequenced messages).
	HistorySize int
	// TreeFanout distributes sequenced messages along the BFS spanning
	// tree of the group's torus embedding (Sesame's tree multicast): the
	// root sends to its tree children only and every member forwards
	// fresh messages to its own children. Retransmissions still travel
	// directly from the root to the NACKing member. Requires members
	// 0..N-1.
	TreeFanout bool
}

// memberOf reports whether node id belongs to the group.
func (c GroupConfig) memberOf(id int) bool {
	for _, m := range c.Members {
		if m == id {
			return true
		}
	}
	return false
}

// Stats counts protocol events at one node.
type Stats struct {
	Suppressed         int // root: speculative writes discarded
	Forwarded          int // member: sequenced messages relayed down the tree
	Duplicates         int // member: re-delivered sequenced messages dropped
	Gaps               int // member: sequence gaps detected
	Nacks              int // member: retransmit requests sent
	Retransmits        int // root: sequenced messages re-sent
	EchoDropped        int // member: own guarded echoes dropped (hardware blocking)
	EchoRestored       int // member: own echoes re-applied after a snapshot re-base rolled the eager store back
	LostHistory        int // root: NACKs it could no longer serve
	LockRequests       int
	LockGrants         int
	LockCancels        int // root: lock requests withdrawn (abort/timeout)
	StaleEpochRejected int // messages rejected for carrying an old root epoch
	Failovers          int // member: promotions of this node to group root
	Demotions          int // root: reigns ended by a newer epoch
	DroppedErrors      int // protocol errors discarded past the retention cap

	// Partition safety and crash recovery (failover.go, rejoin.go).
	Elections      int // member: root-failure elections this node entered
	Fenced         int // root: reigns fenced after losing quorum contact
	Rejoins        int // member: rejoin handshakes completed; root: members re-admitted
	QuorumAckWaits int // root: lock handoffs / sync barriers deferred for quorum acks
	FencedDrops    int // root: messages dropped (or evicted) past the fenced-queue bound

	// Control-plane resilience (backoff.go, watchdog.go, degraded.go).
	WatchdogStuck    int // operations reported past their liveness budget
	WatchdogReissues int // watchdog-forced re-sends / re-services of stuck operations
	DeadlineDrops    int // root: lock requests dropped because the caller's deadline passed
	DegradedReads    int // bounded-staleness reads served while degraded

	// Session locks / group mutual exclusion (root.go).
	SessionOpens  int // root: critical sections opened under a non-zero session
	SessionCloses int // root: non-zero-session sections fully closed (last holder left)
	SessionJoins  int // root: concurrent entries into an already-open session

	// Batched update plane (batch.go).
	Batches      int          // batch frames sent (member flushes, root fan-out, streams)
	Coalesced    int          // member: writes combined into a queued write in-window
	FlushReasons FlushReasons // member: batch flushes by trigger

	// State integrity / anti-entropy (integrity.go).
	DigestSweeps int // root: anti-entropy digest sweeps initiated
	Divergences  int // state-digest mismatches detected (root: per acked watermark; member: self-check or repair directive)
	EagerResends int // member: unconfirmed guarded writes re-shipped to the root (up-path loss recovery)

	// Lock leasing and peer handoff (lease.go).
	LeaseGrants    int // root: leases issued or extended
	LeaseReturns   int // root: leases returned by their holders
	LeaseRevokes   int // root: revoke demands sent to leaseholders
	LeaseLocal     int // member: leased re-acquires decided locally, zero wire messages
	LeaseRenewals  int // member: lease renewal requests sent
	Handoffs       int // member: direct holder-to-waiter transfers sent
	HandoffCommits int // root: direct transfers observed and committed
}

// Node is one processor's memory-sharing interface: it owns the local
// copies of every group it joined, applies sequenced updates in order,
// and (if it is a group's root) sequences traffic and manages locks.
type Node struct {
	id int
	ep transport.Endpoint
	// clock drives every timeout in the node (maintenance ticks, failure
	// detection, batch windows). Production nodes run on the wall clock;
	// deterministic schedule exploration (internal/detsim) injects a
	// virtual one.
	clock vclock.Clock

	mu sync.Mutex
	// msgNow is the dispatch timestamp: stamped once per lock hold at the
	// top of handle and tick, then reused by the per-message liveness
	// bookkeeping (rootHandle's lastHeard, ingestFwd's lastRoot) instead
	// of a clock read per message. A batch frame's thousands of inner
	// messages land within one dispatch, so one timestamp is exactly as
	// informative — and the clock read was the dominant per-message cost
	// once encoding went flat. Guarded by n.mu.
	msgNow  time.Time
	groups  map[GroupID]*memberGroup
	roots   map[GroupID]*rootGroup
	stats   Stats
	errs    []error
	closed  bool
	stop    chan struct{}
	wg      sync.WaitGroup
	retryIn time.Duration // retry/heartbeat/maintenance interval

	// Crash-fault tolerance timing: a member that has not heard from its
	// group root for failAfter starts an election, and a candidate waits
	// electWait after detection for peer state reports before promoting
	// itself.
	failAfter time.Duration
	electWait time.Duration

	// Write-coalescing configuration (batch.go): batching is enabled when
	// batchMax >= 2, and batchDelay bounds how long a queued write waits.
	batchDelay time.Duration
	batchMax   int

	// quorumAcks makes the node's root reigns defer lock handoffs and
	// sync barriers until a majority of members acked the sequenced
	// prefix they depend on (see SetQuorumAcks).
	quorumAcks bool

	// Adaptive-retry bounds (backoff.go; zero means derived defaults)
	// and the node's seeded jitter source, drawn only under n.mu.
	backoffBase time.Duration
	backoffCap  time.Duration
	rng         *rand.Rand

	// wdBudget is the stuck-operation watchdog's liveness budget
	// (watchdog.go; zero means 4x failAfter, derived at use).
	wdBudget time.Duration

	// leaseTTL enables lock leasing and peer handoff (lease.go) when
	// positive: grants to sole contenders come with a lease of this
	// duration, and grants with queued waiters carry a direct-handoff
	// hint. Ignored while quorumAcks is on.
	leaseTTL time.Duration

	// integrityEvery is the anti-entropy sweep interval: every such
	// period a reign this node roots compares member state digests at a
	// sequence watermark and repairs divergence (integrity.go). Zero
	// disables the sweep; frame checksums are always on.
	integrityEvery time.Duration

	// misapply, when set, mutates sequenced data frames just before the
	// member applies them — a test-only fault hook modeling bit rot past
	// the frame checksum (memory corruption, an apply-path bug). The
	// corrupted triple is both folded and applied, so the anti-entropy
	// sweep must convict the member. Called with n.mu held.
	misapply func(*wire.Message)

	// metrics holds the node's latency histograms and event tracer
	// (internal/obs). Histograms are always on — recording is a few
	// atomic adds — while the tracer costs one atomic load until
	// enabled via Metrics().Trace.Enable. Neither takes n.mu, so
	// instrumentation adds no lock traffic to the hot paths.
	metrics obs.Metrics
}

// NewNode attaches a sharing interface to an endpoint and starts its
// receive loop. Callers must Close the node when done.
func NewNode(id int, ep transport.Endpoint) *Node {
	return NewNodeClock(id, ep, vclock.Real())
}

// NewNodeClock is NewNode with an injected clock: every timeout the node
// schedules — maintenance ticks, root-failure detection, election grace,
// batch-flush windows — reads and arms this clock instead of the time
// package. The deterministic simulation harness (internal/detsim) uses
// it to drive the full protocol on virtual time.
func NewNodeClock(id int, ep transport.Endpoint, clock vclock.Clock) *Node {
	n := &Node{
		id:        id,
		ep:        ep,
		clock:     clock,
		msgNow:    clock.Now(),
		groups:    make(map[GroupID]*memberGroup),
		roots:     make(map[GroupID]*rootGroup),
		stop:      make(chan struct{}),
		retryIn:   50 * time.Millisecond,
		failAfter: 2 * time.Second,
		electWait: 200 * time.Millisecond,
		// Jitter source for retry backoff, seeded by node ID alone:
		// under detsim the draw order is fixed by the schedule, so the
		// whole retry pattern replays bit-identically from the seed.
		rng: rand.New(rand.NewSource(int64(id)*2654435761 + 1)),
	}
	// The maintenance timer is armed here, not inside resyncLoop, so that
	// node construction fully determines timer creation order — a
	// deterministic scheduler breaks firing ties by it.
	maint := clock.NewTimer(n.retryIn)
	n.wg.Add(2)
	go n.recvLoop()
	go n.resyncLoop(maint)
	return n
}

// ID reports the node's identifier.
func (n *Node) ID() int { return n.id }

// SetTimers tunes the maintenance interval (retries, heartbeats), the
// root-failure detection deadline, and the election grace period during
// which a candidate collects peer state reports. Zero values keep the
// current setting. Intended for tests and aggressive deployments; the
// defaults (50ms / 2s / 200ms) suit wide-area clusters.
func (n *Node) SetTimers(retry, failAfter, electWait time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if retry > 0 {
		n.retryIn = retry
	}
	if failAfter > 0 {
		n.failAfter = failAfter
	}
	if electWait > 0 {
		n.electWait = electWait
	}
}

// SetQuorumAcks switches the node's durability level. When on, members
// acknowledge the sequenced prefix they applied (piggybacked on the
// resync probes, plus explicit TAck frames), and any reign this node
// roots only hands a released lock to the next waiter — and only answers
// Sync barriers — once a majority of the configured membership holds
// every write sequenced before the release. Combined with quorum-gated
// elections this makes such writes durable across a root failover: any
// elected successor merges reports from a majority, and two majorities
// always share a member that acked. All nodes of a group should agree on
// the setting; it is read on both the member and root paths.
func (n *Node) SetQuorumAcks(on bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.quorumAcks = on
}

// SetIntegrity enables the root-driven anti-entropy sweep: every
// interval, each reign this node roots sends its state digest at the
// current sequence watermark to every member (TDigestReq piggybacked
// on the maintenance tick), compares the TDigestAck replies against
// its digest checkpoint ring, and re-drives any diverged member
// through the rejoin/snapshot catch-up path. Zero disables sweeping.
// All nodes of a group should enable it so a member that inherits the
// reign keeps sweeping.
func (n *Node) SetIntegrity(interval time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.integrityEvery = interval
}

// SetMisapply installs a test-only fault hook that may mutate each
// sequenced data frame just before the member applies it, modeling
// corruption past the frame checksum (bad RAM, an apply bug). The hook
// runs with the node lock held and must not call back into the node.
// Pass nil to remove.
func (n *Node) SetMisapply(f func(*wire.Message)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.misapply = f
}

// interval reads the maintenance interval under the lock.
func (n *Node) interval() time.Duration {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.retryIn
}

// Join registers the node in a sharing group. If the node is the group's
// root it also becomes the group's sequencer and lock manager.
func (n *Node) Join(cfg GroupConfig) error {
	if !cfg.memberOf(n.id) {
		return fmt.Errorf("gwc: node %d is not a member of group %d: %w", n.id, cfg.ID, ErrNotMember)
	}
	if cfg.HistorySize <= 0 {
		cfg.HistorySize = 4096
	}
	if cfg.Guards == nil {
		cfg.Guards = make(map[VarID]LockID)
	}
	if cfg.TreeFanout {
		for i, m := range cfg.Members {
			if m != i {
				return fmt.Errorf("gwc: tree fanout requires members 0..N-1, got %v", cfg.Members)
			}
		}
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return fmt.Errorf("gwc: node %d is closed: %w", n.id, ErrClosed)
	}
	if _, ok := n.groups[cfg.ID]; ok {
		return fmt.Errorf("gwc: node %d already joined group %d", n.id, cfg.ID)
	}
	now := n.clock.Now()
	n.groups[cfg.ID] = newMemberGroup(n.id, cfg, now)
	if cfg.Root == n.id {
		n.roots[cfg.ID] = newRootGroup(cfg, now)
	}
	return nil
}

// Close shuts the node down: the endpoint closes and the receive loop
// exits. Blocked waiters are woken with their operations unsatisfied.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	groups := make([]*memberGroup, 0, len(n.groups))
	for _, gid := range sortedKeys(n.groups) {
		g := n.groups[gid]
		// Drain the write-coalescing queue while the endpoint still works,
		// so a Close right after a burst of batched writes loses nothing.
		n.flushWrites(g, flushClose)
		groups = append(groups, g)
	}
	n.mu.Unlock()

	close(n.stop)
	err := n.ep.Close()
	n.wg.Wait()
	n.mu.Lock()
	for _, g := range groups {
		g.data.closeAll()
		g.lock.closeAll()
		for tok, sw := range g.syncPending {
			// Wake Sync callers unsatisfied (sw.ok stays false).
			delete(g.syncPending, tok)
			close(sw.ch)
		}
	}
	n.mu.Unlock()
	return err
}

// Stats returns a snapshot of the node's protocol counters. The copy
// is taken under the node mutex — the same mutex every increment in
// this package holds — so a snapshot is an exactly consistent cut and
// can never tear against hot-path increments.
func (n *Node) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Metrics exposes the node's observability layer: latency histograms
// (always recording) and the protocol event tracer (off until
// Metrics().Trace.Enable is called). Safe to use concurrently with
// all node operations.
func (n *Node) Metrics() *obs.Metrics { return &n.metrics }

// emit records a protocol-transition trace event if tracing is on.
// The On check keeps the disabled cost to one atomic load and avoids
// even constructing the Event. Safe with or without n.mu held; the
// clock read is the only non-local operation.
func (n *Node) emit(typ obs.EventType, gid GroupID, a, b int64) {
	if !n.metrics.Trace.On() {
		return
	}
	n.metrics.Trace.Emit(obs.Event{
		At:    n.clock.Now().UnixNano(),
		Type:  typ,
		Node:  int32(n.id),
		Group: int32(gid),
		A:     a,
		B:     b,
	})
}

// Emit records a trace event attributed to this node, stamped with the
// node's (possibly virtual) clock. It exists for layers built on top of
// the node — the optimistic engine, simulators — so their events land
// in the same per-node ring as the protocol's own. No-op while tracing
// is disabled.
func (n *Node) Emit(typ obs.EventType, gid GroupID, a, b int64) {
	n.emit(typ, gid, a, b)
}

// Now returns the current time on the node's clock — wall time in
// production, virtual time under deterministic simulation. Layers
// instrumenting around node operations must use this rather than
// time.Now so recorded latencies are meaningful under both clocks.
func (n *Node) Now() time.Time { return n.clock.Now() }

// Errors returns protocol errors observed so far (e.g. unknown groups on
// incoming traffic).
func (n *Node) Errors() []error {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]error(nil), n.errs...)
}

// protoErr records a protocol error for later inspection. It must be
// called with n.mu held. Past the retention cap errors are counted
// rather than stored, so saturation stays observable via Stats.
func (n *Node) protoErr(format string, args ...any) {
	if len(n.errs) < 100 {
		n.errs = append(n.errs, fmt.Errorf(format, args...))
		return
	}
	n.stats.DroppedErrors++
}

// recvLoop is the sharing interface proper: it applies every incoming
// message under the node lock.
func (n *Node) recvLoop() {
	defer n.wg.Done()
	for {
		m, ok := n.ep.Recv()
		if !ok {
			return
		}
		n.handle(m)
	}
}

// resyncLoop drives the node's periodic maintenance: resync probes and
// failure detection on the member side, heartbeats on the root side.
// Transient send errors are recorded via protoErr and the loop carries
// on; it exits only when the node is closed.
func (n *Node) resyncLoop(timer vclock.Timer) {
	defer n.wg.Done()
	defer timer.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-timer.C():
		}
		n.tick()
		// Re-armed only after the tick's sends are out, so a virtual
		// scheduler observing "no timer pending" knows the tick finished.
		timer.Reset(n.interval())
	}
}

// tick runs one maintenance round under the node lock. Sends go through
// n.send, which records (rather than returns) transport errors, so one
// transient failure never silences the maintenance machinery for good.
// Iteration is in key order: the messages a tick emits must not depend
// on map layout, or two runs of the same schedule would diverge.
//
// The tick fires at the fixed maintenance interval — failure detection,
// the fencing lease, and heartbeats need a steady cadence — but the
// retransmission paths inside it are gated by per-request backoff
// schedules (backoff.go): a request is re-sent only when its schedule
// is due, so recovery from a long outage costs O(log downtime) frames
// per request instead of O(downtime / tick). The stuck-operation
// watchdog (watchdog.go) runs first, so a budget trip's schedule reset
// takes effect within the same tick.
func (n *Node) tick() {
	now := n.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	n.msgNow = now
	for _, gid := range sortedKeys(n.groups) {
		g := n.groups[gid]
		if g.rootID == n.id {
			continue // the root's member state is fed directly
		}
		n.watchMember(gid, g, now)
		switch {
		case g.rejoining:
			// A restarted member asks for re-admission instead of probing:
			// its sequence state is meaningless until the root answers with
			// a fresh epoch and snapshot (rejoin.go). Seq carries the join
			// token so the root can serve duplicate handshakes idempotently.
			if g.joinB.ready(now) {
				n.arm(&g.joinB, now, n.boBase(), n.boCap())
				n.send(g.rootID, wire.Message{
					Type:  wire.TJoinReq,
					Group: uint32(gid),
					Src:   int32(n.id),
					Seq:   uint64(g.joinToken),
					Epoch: g.epoch,
				})
			}
		case g.snapWanted:
			// A member waiting for a snapshot skips the resync probe: the
			// snapshot supersedes any retransmission it could trigger.
			if g.snapB.ready(now) {
				n.arm(&g.snapB, now, n.boBase(), n.boCap())
				n.send(g.rootID, wire.Message{
					Type:  wire.TSnapReq,
					Group: uint32(gid),
					Src:   int32(n.id),
					Epoch: g.epoch,
				})
			}
		default:
			// Resync probe. The probe doubles as the member's cumulative ack
			// (Seq-1 is applied) and as root-side proof of contact for the
			// fencing lease, so its backoff cap is clamped to a fraction of
			// failAfter (probeCap) and its schedule resets whenever the
			// stream moves — a member with a gap to repair probes at full
			// cadence. The requested range depends on what the member can
			// prove: while the stream is moving gaplessly, delivery is
			// demonstrably working, so the probe asks for nothing (an empty
			// range — pure ack). Only when the stream has stalled — which is
			// how a silently lost burst tail looks, the one loss gap
			// detection cannot notice — or a gap is open does it request
			// everything from the next expected sequence number. Without
			// that distinction every probe under load re-requests the whole
			// in-flight suffix and the root floods members with duplicates.
			moved := g.nextSeq != g.probeSeq
			if len(g.pending) > 0 || moved {
				g.probeB.reset()
				g.probeSeq = g.nextSeq
			}
			if g.probeB.ready(now) {
				n.arm(&g.probeB, now, n.boBase(), n.probeCap())
				want := int64(math.MaxInt64)
				if moved && len(g.pending) == 0 {
					want = int64(g.nextSeq) - 1 // nextSeq >= 1 always
				}
				n.send(g.rootID, wire.Message{
					Type:  wire.TNack,
					Group: uint32(gid),
					Src:   int32(n.id),
					Seq:   g.nextSeq,
					Val:   want,
					Epoch: g.epoch,
				})
			}
		}
		// Re-ship due eager stores whose echo never came back. The update
		// hop is the protocol's one unacknowledged send, so a lost (or
		// checksum-discarded) carrier frame would otherwise lose the write
		// silently. Skipped while detached from the reign: a rejoin resets
		// the eager store, a pending snapshot supersedes it, and an
		// election's merge carries lone eager writes into the new reign
		// itself. The epoch is refreshed so a reign change does not doom
		// the frame to the stale-epoch filter; the grant-epoch tag (Seq)
		// is kept, so the root's speculation gate judges the re-send
		// exactly as it would have judged the original.
		if !g.rejoining && !g.snapWanted && !g.electing {
			// Lease clocks and handoff notices (lease.go) first: a lease
			// return or renewal should beat this tick's failure detector.
			n.tickLeases(gid, g, now)
			for _, v := range sortedKeys(g.eagerMsg) {
				b := g.eagerB[v]
				if b == nil || !b.ready(now) {
					continue
				}
				n.arm(b, now, n.boBase(), n.boCap())
				m := g.eagerMsg[v]
				m.Epoch = g.epoch
				n.stats.EagerResends++
				n.send(g.rootID, m)
			}
		}
		// Re-send due sync barriers; the root dedupes by token.
		for _, tok := range sortedKeys(g.syncPending) {
			sw := g.syncPending[tok]
			if !sw.bo.ready(now) {
				continue
			}
			n.arm(&sw.bo, now, n.boBase(), n.boCap())
			n.send(g.rootID, wire.Message{
				Type:  wire.TSyncReq,
				Group: uint32(gid),
				Src:   int32(n.id),
				Seq:   tok,
				Epoch: g.epoch,
			})
		}
		n.detectFailure(gid, g, now)
	}
	for _, gid := range sortedKeys(n.roots) {
		r := n.roots[gid]
		n.checkFence(r, now)
		n.watchRoot(gid, r, now)
		n.heartbeat(gid, r)
		n.sweepDigests(gid, r, now)
		n.tickRootLeases(r, now)
	}
}

// handle dispatches one message.
func (n *Node) handle(m wire.Message) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.msgNow = n.clock.Now()
	switch m.Type {
	case wire.TUpdate, wire.TLockReq, wire.TLockRel, wire.TNack, wire.TLockCancel, wire.TSnapReq,
		wire.TAck, wire.TSyncReq, wire.TDigestAck, wire.TLeaseRet:
		r, ok := n.roots[GroupID(m.Group)]
		if !ok {
			if g, member := n.groups[GroupID(m.Group)]; member {
				// Routine during failover: a peer still (or again)
				// believes this node is root. Point stale senders at the
				// current root; otherwise drop and let retries converge.
				if m.Epoch < g.epoch {
					n.stats.StaleEpochRejected++
					n.emit(obs.EvStaleEpoch, GroupID(m.Group), int64(m.Type), int64(m.Epoch))
					n.maybeNotice(g, int(m.Src))
				}
				return
			}
			n.protoErr("gwc: node %d got %v for group %d but is not its root", n.id, m.Type, m.Group)
			return
		}
		n.rootHandle(r, m)
	case wire.TJoinReq:
		n.handleJoinReq(m)
	case wire.TJoinAck, wire.TSyncAck:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		if m.Type == wire.TJoinAck {
			n.handleJoinAck(g, m)
		} else {
			n.handleSyncAck(g, m)
		}
	case wire.TSeqUpdate, wire.TSeqLock:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		n.ingest(g, m)
		n.maybeSendAck(g)
	case wire.THeartbeat:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got heartbeat for unknown group %d", n.id, m.Group)
			return
		}
		n.handleHeartbeat(g, m)
	case wire.TSnapVar, wire.TSnapLock, wire.TSnapDone:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		n.handleSnap(g, m)
	case wire.TDigestReq:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		n.handleDigestReq(g, m)
	case wire.TLeaseGrant:
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		n.handleLeaseGrant(g, m)
	case wire.THandoff:
		// Dual-purpose frame: the direct grant lands at a member, the
		// asynchronous notice at the root. A deposed ex-root routes it to
		// its member half, where the grant-value check rejects notices.
		if r, ok := n.roots[GroupID(m.Group)]; ok {
			n.rootHandle(r, m)
			return
		}
		g, ok := n.groups[GroupID(m.Group)]
		if !ok {
			n.protoErr("gwc: node %d got %v for unknown group %d", n.id, m.Type, m.Group)
			return
		}
		n.handleHandoff(g, m)
	case wire.TBatch:
		n.handleBatch(m)
	default:
		n.protoErr("gwc: node %d got unexpected message type %v", n.id, m.Type)
	}
}

// send ships a message, recording (not returning) transport errors: the
// caller is often the recvLoop, and the sequence/NACK machinery recovers
// from losses.
func (n *Node) send(to int, m wire.Message) {
	if err := n.ep.Send(to, m); err != nil {
		n.protoErr("gwc: node %d send to %d: %w", n.id, to, err)
	}
}

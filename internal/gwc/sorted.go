package gwc

import (
	"cmp"
	"sort"
)

// sortedKeys returns m's keys in ascending order. Every map iteration
// that emits wire messages (or runs hooks) goes through it, so the
// node's observable behaviour is a pure function of its inputs — the
// property the deterministic simulation harness (internal/detsim)
// replays failing schedules by. Go's randomized map order would
// otherwise make two runs of the same schedule diverge.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

package gwc

import (
	"errors"
	"testing"
	"time"

	"optsync/internal/transport"
)

// enableBatching turns the batched update plane on for every node.
func (c *cluster) enableBatching(delay time.Duration, msgs int) {
	for _, nd := range c.nodes {
		nd.SetBatching(delay, msgs)
	}
}

func TestBatchSizeFlush(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	c.enableBatching(time.Hour, 4) // only the size bound can flush
	w := c.nodes[1]
	for i := 0; i < 4; i++ {
		if err := w.Write(tGroup, VarID(20+i), int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range c.nodes {
		for i := 0; i < 4; i++ {
			waitValue(t, nd, VarID(20+i), int64(i+1))
		}
	}
	st := w.Stats()
	if st.FlushReasons.Size != 1 {
		t.Errorf("size flushes = %d, want 1", st.FlushReasons.Size)
	}
	if st.Batches != 1 {
		t.Errorf("batches sent = %d, want 1", st.Batches)
	}
	if rs := c.nodes[0].Stats(); rs.Batches == 0 {
		t.Error("root fanned the batch out unbatched")
	}
}

func TestBatchDelayFlushAndCoalescing(t *testing.T) {
	c := newInProcCluster(t, 3, false)
	c.enableBatching(20*time.Millisecond, 100)
	w := c.nodes[2]
	for i := 1; i <= 10; i++ {
		if err := w.Write(tGroup, tVar, int64(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, nd := range c.nodes {
		waitValue(t, nd, tVar, 10)
	}
	st := w.Stats()
	if st.Coalesced != 9 {
		t.Errorf("coalesced = %d, want 9 (10 writes to one var in-window)", st.Coalesced)
	}
	if st.FlushReasons.Delay != 1 {
		t.Errorf("delay flushes = %d, want 1", st.FlushReasons.Delay)
	}
	// Ten writes combined into one wire message, so no batch frame was
	// even needed.
	if st.Batches != 0 {
		t.Errorf("batches sent = %d, want 0 for a fully combined window", st.Batches)
	}
}

// TestBatchReleaseFlushOrdering checks the paper's GWC invariant under
// batching: the queue flushes before the release message, so by the time
// the next holder sees its grant, the previous section's data has
// already been applied. The delay bound is an hour, so only the release
// flush can have shipped the writes.
func TestBatchReleaseFlushOrdering(t *testing.T) {
	c := newInProcCluster(t, 3, true)
	c.enableBatching(time.Hour, 100)
	a, b := c.nodes[1], c.nodes[2]

	if err := a.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(tGroup, tVar, 7); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(tGroup, tVarB, 8); err != nil {
		t.Fatal(err)
	}
	if err := a.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.FlushReasons.Release != 1 {
		t.Errorf("release flushes = %d, want 1", st.FlushReasons.Release)
	}

	if err := b.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Release(tGroup, tLock) }()
	// No waiting: holding the lock must already imply visibility.
	if got, _ := b.Read(tGroup, tVar); got != 7 {
		t.Errorf("holder read %d before section data, want 7", got)
	}
	if got, _ := b.Read(tGroup, tVarB); got != 8 {
		t.Errorf("holder read %d before section data, want 8", got)
	}
}

// TestBatchGuardedEpochsNotCombined checks that writes to the same
// variable from different grant epochs stay distinct in the queue: the
// root must judge each against its own epoch tag.
func TestBatchGuardedEpochsNotCombined(t *testing.T) {
	c := newInProcCluster(t, 2, true)
	w := c.nodes[1]
	w.SetBatching(time.Hour, 100)

	if err := w.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(tGroup, tLock); err != nil { // flushes epoch-1 write
		t.Fatal(err)
	}
	if err := w.Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(tGroup, tVar, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[0], tVar, 2)
	if st := w.Stats(); st.Coalesced != 0 {
		t.Errorf("coalesced = %d, want 0 across grant epochs", st.Coalesced)
	}
}

func TestBatchTreeFanout(t *testing.T) {
	net, err := transport.NewInProc(9)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, 9)
	for i := range members {
		members[i] = i
	}
	c := &cluster{net: net, nodes: make([]*Node, 9)}
	for i := range c.nodes {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[i] = NewNode(i, ep)
		// Tracing drives waitFor's wake-ups and timeout dumps; it is
		// atomics-only, so it cannot mask the races these tests hunt.
		c.nodes[i].Metrics().Trace.Enable(0)
		if err := c.nodes[i].Join(GroupConfig{
			ID:         tGroup,
			Root:       0,
			Members:    members,
			TreeFanout: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range c.nodes {
			_ = nd.Close()
		}
		_ = net.Close()
	})
	c.enableBatching(time.Hour, 3)
	w := c.nodes[5]
	for i := 0; i < 3; i++ {
		if err := w.Write(tGroup, VarID(30+i), int64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	// Every member — including leaves that only hear via relayed batch
	// frames — must converge.
	for _, nd := range c.nodes {
		for i := 0; i < 3; i++ {
			waitValue(t, nd, VarID(30+i), int64(i+1))
		}
	}
}

// TestBatchLossRecovery drops sequenced traffic (whole batch frames
// included) and checks NACK-driven retransmission repairs the stream.
func TestBatchLossRecovery(t *testing.T) {
	inner, err := transport.NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	fl := transport.NewFlaky(inner, transport.FaultPlan{DropRate: 0.4, Seed: 11, DownOnly: true})
	c := newCluster(t, fl, false)
	for _, nd := range c.nodes {
		nd.SetTimers(5*time.Millisecond, 0, 0)
	}
	c.enableBatching(time.Millisecond, 8)
	w := c.nodes[1]
	const rounds = 40
	for i := 1; i <= rounds; i++ {
		if err := w.Write(tGroup, tVarB, int64(i)); err != nil {
			t.Fatal(err)
		}
		if i%4 == 0 {
			time.Sleep(3 * time.Millisecond) // let windows close so frames multiply
		}
	}
	for _, nd := range c.nodes {
		waitValue(t, nd, tVarB, rounds)
	}
	dropped, _, _ := fl.Stats()
	if dropped == 0 {
		t.Fatal("fault plan dropped nothing; test exercised no recovery")
	}
	if rs := c.nodes[0].Stats(); rs.Retransmits == 0 {
		t.Error("stream converged without retransmissions despite drops")
	}
}

// TestBatchFailover runs the batched plane through a root crash: queued
// and future writes must survive the election and reach the new reign.
func TestBatchFailover(t *testing.T) {
	c, fl := newChaosCluster(t, 3, false)
	c.enableBatching(time.Millisecond, 8)
	w := c.nodes[2]
	if err := w.Write(tGroup, tVar, 1); err != nil {
		t.Fatal(err)
	}
	for _, nd := range c.nodes {
		waitValue(t, nd, tVar, 1)
	}
	fl.Crash(0)
	waitAdopted(t, c, c.nodes[2], 1)
	if err := w.Write(tGroup, tVar, 2); err != nil {
		t.Fatal(err)
	}
	waitValue(t, c.nodes[1], tVar, 2)
	waitValue(t, c.nodes[2], tVar, 2)
}

// TestBatchReleaseCloseRaceKeepsFlushOrdering races Release against Close
// on a member whose batch window is an hour long, so only those two paths
// can ship the section's queued guarded writes. Whichever side wins the
// node mutex must drain the queue exactly once, while the member is still
// the lock holder and before the TLockRel leaves the node. If a flush
// were ever dropped by Close or reordered after the release, the writes
// would reach the root after it freed the lock, be judged NotHolder, and
// be suppressed — a silently lost critical section.
func TestBatchReleaseCloseRaceKeepsFlushOrdering(t *testing.T) {
	for i := 0; i < 30; i++ {
		c := newInProcCluster(t, 2, true)
		w := c.nodes[1]
		w.SetBatching(time.Hour, 100)
		if err := w.Acquire(tGroup, tLock); err != nil {
			t.Fatal(err)
		}
		want := int64(i + 1)
		if err := w.Write(tGroup, tVar, want); err != nil {
			t.Fatal(err)
		}
		if err := w.Write(tGroup, tVarB, -want); err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			// Losing the race to Close is fine; dropping the flush is not.
			_ = w.Release(tGroup, tLock)
		}()
		_ = w.Close()
		<-done

		// The member's endpoint only closes its own inbox, so the release
		// always reaches the root; wait for it to be processed.
		root := c.nodes[0]
		waitFor(t, c, 5*time.Second, "root to process the release", func() bool {
			root.mu.Lock()
			defer root.mu.Unlock()
			return root.roots[tGroup].lock(tLock).free()
		})
		// The root handled the release, so FIFO says the flushed section
		// data was already sequenced — no waiting, and nothing suppressed.
		if got, err := root.Read(tGroup, tVar); err != nil || got != want {
			t.Fatalf("iter %d: root var A = %d (%v), want %d: section data lost in Release/Close race", i, got, err, want)
		}
		if got, err := root.Read(tGroup, tVarB); err != nil || got != -want {
			t.Fatalf("iter %d: root var B = %d (%v), want %d: section data lost in Release/Close race", i, got, err, -want)
		}
		if s := root.Stats().Suppressed; s != 0 {
			t.Fatalf("iter %d: root suppressed %d guarded writes: flush reordered after TLockRel", i, s)
		}
	}
}

func TestSentinelErrors(t *testing.T) {
	net, err := transport.NewInProc(2)
	if err != nil {
		t.Fatal(err)
	}
	ep0, _ := net.Endpoint(0)
	n := NewNode(0, ep0)
	t.Cleanup(func() { _ = net.Close() })

	if err := n.Join(GroupConfig{ID: 9, Root: 1, Members: []int{1}}); !errors.Is(err, ErrNotMember) {
		t.Errorf("Join outside members: %v, want ErrNotMember", err)
	}
	if _, err := n.Read(42, tVar); !errors.Is(err, ErrUnknownGroup) {
		t.Errorf("Read of unjoined group: %v, want ErrUnknownGroup", err)
	}
	if err := n.Close(); err != nil {
		t.Fatal(err)
	}
	if err := n.Join(GroupConfig{ID: 9, Root: 0, Members: []int{0, 1}}); !errors.Is(err, ErrClosed) {
		t.Errorf("Join after Close: %v, want ErrClosed", err)
	}
}

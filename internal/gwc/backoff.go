package gwc

import (
	"time"
)

// Adaptive retry (control-plane resilience).
//
// Every member-side retry path — lock-request re-sends, rejoin
// handshakes, snapshot requests, resync probes, sync barriers — used to
// re-send on every maintenance tick. That cadence is right for failure
// detection, but as a retransmission policy it makes recovery cost
// linear in downtime: N waiters riding out a root outage of length D
// fire N*D/tick frames at whoever answers next. Each retry path now
// keeps a per-request schedule: jittered exponential backoff from a
// base up to a cap, reset whenever the world changes (a reign change,
// fresh stream progress, a watchdog trip). The maintenance tick still
// fires at its fixed interval — failure detection and the fencing lease
// depend on that — but within a tick it only re-sends requests whose
// schedule is due.

// backoff is one request's retry schedule. The zero value is "due
// immediately"; arm schedules the next attempt.
type backoff struct {
	attempt int
	due     time.Time
}

// ready reports whether the next attempt is due.
func (b *backoff) ready(now time.Time) bool { return !b.due.After(now) }

// reset forgets the schedule so the next ready check fires at once.
// Called when the world changed — a new reign to re-register with, or
// fresh progress that makes an immediate retry worthwhile again.
func (b *backoff) reset() { *b = backoff{} }

// arm schedules b's next attempt after an equal-jitter exponential
// delay: d = min(max, base<<attempt), of which half is deterministic
// and half drawn from the node's seeded rng. The jitter decorrelates
// the retries of independent waiters (no thundering herd at a freshly
// promoted root); the deterministic half bounds the worst-case gap.
// Caller holds n.mu — the rng is not concurrency-safe, and drawing
// under the node lock keeps the draw order (and so the whole schedule)
// reproducible under detsim's virtual clock.
func (n *Node) arm(b *backoff, now time.Time, base, max time.Duration) {
	if base <= 0 {
		base = time.Millisecond
	}
	if max < base {
		max = base
	}
	d := max
	if b.attempt < 30 { // beyond 2^30x base the shift is surely past any cap
		if s := base << uint(b.attempt); s > 0 && s < max {
			d = s
		}
	}
	half := d / 2
	d = half + time.Duration(n.rng.Int63n(int64(half)+1))
	b.due = now.Add(d)
	b.attempt++
}

// boBase returns the backoff base under n.mu: the explicit SetBackoff
// setting, or the maintenance interval (matching the old flat-retry
// first-resend latency).
func (n *Node) boBase() time.Duration {
	if n.backoffBase > 0 {
		return n.backoffBase
	}
	return n.retryIn
}

// boCap returns the backoff cap under n.mu: the explicit SetBackoff
// setting, or 16x the base.
func (n *Node) boCap() time.Duration {
	if n.backoffCap > 0 {
		return n.backoffCap
	}
	return 16 * n.boBase()
}

// probeCap bounds the resync probe's backoff separately: the probe
// doubles as the fencing lease's proof of contact (and, under quorum
// acks, as a cumulative ack carrier), so even a fully idle member must
// still be heard well inside failAfter.
func (n *Node) probeCap() time.Duration {
	c := n.boCap()
	if f := n.failAfter / 4; f > 0 && c > f {
		c = f
	}
	if b := n.boBase(); c < b {
		c = b
	}
	return c
}

// SetBackoff tunes the adaptive-retry schedule shared by every
// member-side resend path: retries start at base and back off
// exponentially (with jitter) up to max. Zero values keep the current
// setting; the defaults derive from the maintenance interval (base =
// retry interval, max = 16x). The resync probe additionally clamps its
// cap to a quarter of the failure-detection deadline so lease contact
// never lapses.
func (n *Node) SetBackoff(base, max time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if base > 0 {
		n.backoffBase = base
	}
	if max > 0 {
		n.backoffCap = max
	}
}

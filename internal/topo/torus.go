// Package topo models the square mesh torus interconnect assumed by the
// paper's evaluation ("each data sharing hop in a square mesh torus takes
// 200ns") and builds the BFS spanning trees that Sesame's reliable
// multicast routes along.
//
// Node IDs are 0..N-1, laid out row-major on a W×H grid with wraparound
// links in both dimensions. When N is not a perfect rectangle the last row
// is partially populated; the unpopulated grid points still carry switches
// (links exist), they just host no processor, so hop distances are computed
// on the full W×H torus.
package topo

import "fmt"

// Torus is a square-ish mesh torus hosting N processors.
type Torus struct {
	n, w, h int
}

// New returns a torus for n processors, n >= 1, using the most square
// W×H grid with W*H >= n.
func New(n int) (Torus, error) {
	if n < 1 {
		return Torus{}, fmt.Errorf("topo: torus size %d, want >= 1", n)
	}
	w := 1
	for w*w < n {
		w++
	}
	h := (n + w - 1) / w
	return Torus{n: n, w: w, h: h}, nil
}

// MustNew is New for sizes known to be valid; it panics on error.
func MustNew(n int) Torus {
	t, err := New(n)
	if err != nil {
		panic(err)
	}
	return t
}

// Size reports the number of processors.
func (t Torus) Size() int { return t.n }

// Dims reports the grid dimensions (width, height).
func (t Torus) Dims() (w, h int) { return t.w, t.h }

// coord maps a node ID to grid coordinates.
func (t Torus) coord(id int) (x, y int) { return id % t.w, id / t.w }

// wrapDist is the torus distance between coordinates a and b on an axis of
// length n.
func wrapDist(a, b, n int) int {
	d := a - b
	if d < 0 {
		d = -d
	}
	if n-d < d {
		d = n - d
	}
	return d
}

// Hops reports the shortest-path hop count between processors a and b.
func (t Torus) Hops(a, b int) int {
	if a < 0 || a >= t.n || b < 0 || b >= t.n {
		panic(fmt.Sprintf("topo: node out of range: Hops(%d,%d) on %d-node torus", a, b, t.n))
	}
	ax, ay := t.coord(a)
	bx, by := t.coord(b)
	return wrapDist(ax, bx, t.w) + wrapDist(ay, by, t.h)
}

// MaxHops reports the network diameter restricted to populated nodes.
func (t Torus) MaxHops() int {
	max := 0
	for b := 1; b < t.n; b++ {
		if h := t.Hops(0, b); h > max {
			max = h
		}
	}
	return max
}

// MeanHops reports the average hop distance from root to every other
// populated node (0 when the torus has a single node).
func (t Torus) MeanHops(root int) float64 {
	if t.n <= 1 {
		return 0
	}
	sum := 0
	for b := 0; b < t.n; b++ {
		if b != root {
			sum += t.Hops(root, b)
		}
	}
	return float64(sum) / float64(t.n-1)
}

// neighbors returns the up-to-4 populated torus neighbours of id. Grid
// points without processors are skipped: the switch there forwards
// transparently, which Hops already accounts for, but the spanning tree
// only needs processor vertices.
func (t Torus) neighbors(id int) []int {
	x, y := t.coord(id)
	cand := [4][2]int{
		{(x + 1) % t.w, y},
		{(x - 1 + t.w) % t.w, y},
		{x, (y + 1) % t.h},
		{x, (y - 1 + t.h) % t.h},
	}
	var out []int
	for _, c := range cand {
		n := c[1]*t.w + c[0]
		if n != id && n < t.n {
			out = append(out, n)
		}
	}
	return out
}

// Tree is a spanning tree over the processors of a torus, used to route,
// sequence, and retransmit sharing messages within a group.
type Tree struct {
	Root     int
	Parent   []int   // Parent[i] is i's tree parent; -1 for the root
	Children [][]int // Children[i] lists i's tree children in ID order
	Depth    []int   // Depth[i] is the hop distance from the root
}

// SpanningTree builds the BFS spanning tree of the torus rooted at root.
// BFS over torus links yields shortest-path depths, so tree depth equals
// Hops(root, i) for every node.
func SpanningTree(t Torus, root int) (*Tree, error) {
	if root < 0 || root >= t.n {
		return nil, fmt.Errorf("topo: root %d out of range for %d-node torus", root, t.n)
	}
	tr := &Tree{
		Root:     root,
		Parent:   make([]int, t.n),
		Children: make([][]int, t.n),
		Depth:    make([]int, t.n),
	}
	for i := range tr.Parent {
		tr.Parent[i] = -1
		tr.Depth[i] = -1
	}
	tr.Depth[root] = 0
	queue := []int{root}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range t.neighbors(cur) {
			if tr.Depth[nb] >= 0 {
				continue
			}
			tr.Depth[nb] = tr.Depth[cur] + 1
			tr.Parent[nb] = cur
			tr.Children[cur] = append(tr.Children[cur], nb)
			queue = append(queue, nb)
		}
	}
	for i, d := range tr.Depth {
		if d < 0 {
			return nil, fmt.Errorf("topo: node %d unreachable from root %d", i, root)
		}
	}
	return tr, nil
}

// PathToRoot returns the node IDs from id up to (and including) the root.
func (tr *Tree) PathToRoot(id int) []int {
	var path []int
	for cur := id; cur != -1; cur = tr.Parent[cur] {
		path = append(path, cur)
	}
	return path
}

// Size reports the number of nodes in the tree.
func (tr *Tree) Size() int { return len(tr.Parent) }

package topo

import (
	"testing"
	"testing/quick"
)

func TestNewRejectsBadSizes(t *testing.T) {
	for _, n := range []int{0, -1, -100} {
		if _, err := New(n); err == nil {
			t.Errorf("New(%d) succeeded, want error", n)
		}
	}
}

func TestDimsNearSquare(t *testing.T) {
	tests := []struct {
		n, w, h int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{5, 3, 2},
		{9, 3, 3},
		{16, 4, 4},
		{17, 5, 4},
		{33, 6, 6},
		{64, 8, 8},
		{65, 9, 8},
		{128, 12, 11},
		{129, 12, 11},
	}
	for _, tt := range tests {
		tor := MustNew(tt.n)
		w, h := tor.Dims()
		if w != tt.w || h != tt.h {
			t.Errorf("New(%d) dims = %dx%d, want %dx%d", tt.n, w, h, tt.w, tt.h)
		}
		if w*h < tt.n {
			t.Errorf("New(%d): grid %dx%d too small", tt.n, w, h)
		}
	}
}

func TestHopsKnownValues(t *testing.T) {
	tor := MustNew(16) // 4x4 torus
	tests := []struct {
		a, b, want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0, 3, 1},  // wraparound in x
		{0, 12, 1}, // wraparound in y
		{0, 5, 2},
		{0, 10, 4}, // (2,2) away: 2+2
		{5, 10, 2},
	}
	for _, tt := range tests {
		if got := tor.Hops(tt.a, tt.b); got != tt.want {
			t.Errorf("Hops(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestHopsSymmetricAndTriangle(t *testing.T) {
	prop := func(n uint8, a, b, c uint16) bool {
		size := int(n)%120 + 2
		tor := MustNew(size)
		x, y, z := int(a)%size, int(b)%size, int(c)%size
		if tor.Hops(x, y) != tor.Hops(y, x) {
			return false
		}
		if tor.Hops(x, x) != 0 {
			return false
		}
		return tor.Hops(x, z) <= tor.Hops(x, y)+tor.Hops(y, z)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMaxHopsGrowsWithSize(t *testing.T) {
	prev := 0
	for _, n := range []int{4, 16, 64, 256} {
		m := MustNew(n).MaxHops()
		if m <= prev {
			t.Errorf("MaxHops(%d) = %d, want > %d", n, m, prev)
		}
		prev = m
	}
}

func TestMeanHops(t *testing.T) {
	tor := MustNew(4) // 2x2 torus: two neighbours at 1 hop, diagonal at 2
	if got, want := tor.MeanHops(0), 4.0/3.0; got != want {
		t.Errorf("MeanHops = %v, want %v", got, want)
	}
	if got := MustNew(1).MeanHops(0); got != 0 {
		t.Errorf("MeanHops on 1-node torus = %v, want 0", got)
	}
}

func TestSpanningTreeProperties(t *testing.T) {
	for _, n := range []int{1, 2, 5, 9, 17, 33, 129} {
		tor := MustNew(n)
		tr, err := SpanningTree(tor, 0)
		if err != nil {
			t.Fatalf("SpanningTree(%d): %v", n, err)
		}
		if tr.Size() != n {
			t.Errorf("tree size = %d, want %d", tr.Size(), n)
		}
		if tr.Parent[0] != -1 || tr.Depth[0] != 0 {
			t.Errorf("root not at depth 0 with no parent")
		}
		edges := 0
		for i := 0; i < n; i++ {
			// BFS depth must equal torus shortest-path distance.
			if tr.Depth[i] != tor.Hops(0, i) {
				t.Errorf("n=%d node %d: tree depth %d != hops %d", n, i, tr.Depth[i], tor.Hops(0, i))
			}
			if i != 0 {
				p := tr.Parent[i]
				if p < 0 || tor.Hops(p, i) != 1 {
					t.Errorf("n=%d node %d: parent %d is not a torus neighbour", n, i, p)
				}
				if tr.Depth[i] != tr.Depth[p]+1 {
					t.Errorf("n=%d node %d: depth %d, parent depth %d", n, i, tr.Depth[i], tr.Depth[p])
				}
			}
			edges += len(tr.Children[i])
		}
		if edges != n-1 {
			t.Errorf("n=%d: tree has %d edges, want %d", n, edges, n-1)
		}
	}
}

func TestSpanningTreeBadRoot(t *testing.T) {
	tor := MustNew(4)
	if _, err := SpanningTree(tor, 4); err == nil {
		t.Error("SpanningTree with out-of-range root succeeded, want error")
	}
	if _, err := SpanningTree(tor, -1); err == nil {
		t.Error("SpanningTree with negative root succeeded, want error")
	}
}

func TestPathToRoot(t *testing.T) {
	tor := MustNew(9)
	tr, err := SpanningTree(tor, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		path := tr.PathToRoot(i)
		if path[0] != i || path[len(path)-1] != 0 {
			t.Errorf("PathToRoot(%d) = %v: wrong endpoints", i, path)
		}
		if len(path) != tr.Depth[i]+1 {
			t.Errorf("PathToRoot(%d) length %d, want %d", i, len(path), tr.Depth[i]+1)
		}
		for j := 0; j+1 < len(path); j++ {
			if tr.Parent[path[j]] != path[j+1] {
				t.Errorf("PathToRoot(%d): %v does not follow parent links", i, path)
			}
		}
	}
}

package vclock

import (
	"testing"
	"time"
)

// TestRealTimerResetAfterFire exercises the single-owner drain: a timer
// that fired but whose tick was never consumed must, after Reset, fire
// exactly once more — not immediately from the stale tick.
func TestRealTimerResetAfterFire(t *testing.T) {
	c := Real()
	tm := c.NewTimer(time.Millisecond)
	time.Sleep(10 * time.Millisecond) // let it fire, never consume
	if was := tm.Reset(50 * time.Millisecond); was {
		t.Error("Reset reported a fired timer as still armed")
	}
	select {
	case <-tm.C():
		t.Fatal("stale tick survived Reset")
	case <-time.After(10 * time.Millisecond):
	}
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("reset timer never fired")
	}
	if tm.Stop() {
		t.Error("Stop reported a consumed timer as armed")
	}
}

// TestRealAfterFunc checks the callback form fires and that C is nil.
func TestRealAfterFunc(t *testing.T) {
	done := make(chan struct{})
	tm := Real().AfterFunc(time.Millisecond, func() { close(done) })
	if tm.C() != nil {
		t.Error("AfterFunc timer exposes a channel")
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("AfterFunc never ran")
	}
	tm.Stop()
}

// Package vclock abstracts the clock the GWC runtime schedules against,
// so its timeouts (maintenance ticks, failure detection, batch windows)
// can run on the wall clock in production and on a virtual clock under
// deterministic schedule exploration (internal/detsim).
//
// The interface is deliberately minimal — Now, one-shot timers, and
// AfterFunc — because that is all the runtime uses. Timers follow a
// single-owner discipline: exactly one goroutine arms, receives from,
// stops, and resets a given timer. Under that discipline the Real
// implementation papers over the pre-Go-1.23 Stop/Reset channel
// semantics by draining the channel itself, so callers can Reset a
// possibly-fired timer without the classic stale-tick bug.
package vclock

import "time"

// Timer is a restartable one-shot timer. For channel timers (NewTimer),
// C fires once per arming; for AfterFunc timers, C returns nil and the
// callback runs instead.
type Timer interface {
	// C returns the firing channel (nil for AfterFunc timers).
	C() <-chan time.Time
	// Stop disarms the timer, reporting whether it was still armed. Any
	// fired-but-unconsumed tick is drained, so a later Reset starts
	// clean.
	Stop() bool
	// Reset re-arms the timer for d from now, reporting whether it was
	// still armed. A fired-but-unconsumed tick from the previous arming
	// is drained first.
	Reset(d time.Duration) bool
}

// Clock tells time and mints timers.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// NewTimer returns a channel timer armed to fire once after d.
	NewTimer(d time.Duration) Timer
	// AfterFunc arms a timer that calls f once after d. f must not
	// assume which goroutine runs it.
	AfterFunc(d time.Duration, f func()) Timer
}

// Real returns the wall clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) NewTimer(d time.Duration) Timer {
	return &realTimer{t: time.NewTimer(d), hasC: true}
}

func (realClock) AfterFunc(d time.Duration, f func()) Timer {
	return &realTimer{t: time.AfterFunc(d, f)}
}

// realTimer adapts *time.Timer, draining the channel on Stop/Reset so
// single-owner callers never see a tick from a previous arming.
type realTimer struct {
	t    *time.Timer
	hasC bool
}

func (r *realTimer) C() <-chan time.Time {
	if !r.hasC {
		return nil
	}
	return r.t.C
}

func (r *realTimer) Stop() bool {
	was := r.t.Stop()
	if !was && r.hasC {
		select {
		case <-r.t.C:
		default:
		}
	}
	return was
}

func (r *realTimer) Reset(d time.Duration) bool {
	was := r.t.Stop()
	if !was && r.hasC {
		select {
		case <-r.t.C:
		default:
		}
	}
	r.t.Reset(d)
	return was
}

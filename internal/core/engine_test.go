package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"optsync/internal/gwc"
	"optsync/internal/transport"
	"optsync/internal/wire"
)

const (
	tGroup gwc.GroupID = 1
	tVar   gwc.VarID   = 10
	tVarB  gwc.VarID   = 11
	tLock  gwc.LockID  = 0
)

// rig is a live cluster with an optimistic engine per node.
type rig struct {
	nodes   []*gwc.Node
	engines []*Engine
}

func newRig(t *testing.T, n int) *rig {
	t.Helper()
	net, err := transport.NewInProc(n)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	r := &rig{nodes: make([]*gwc.Node, n), engines: make([]*Engine, n)}
	for i := 0; i < n; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		r.nodes[i] = gwc.NewNode(i, ep)
		if err := r.nodes[i].Join(gwc.GroupConfig{
			ID:      tGroup,
			Root:    0,
			Members: members,
			Guards:  map[gwc.VarID]gwc.LockID{tVar: tLock, tVarB: tLock},
		}); err != nil {
			t.Fatal(err)
		}
		r.engines[i] = NewEngine(r.nodes[i], DefaultConfig())
	}
	t.Cleanup(func() {
		for _, nd := range r.nodes {
			_ = nd.Close()
		}
		_ = net.Close()
	})
	return r
}

// waitVal polls a node's copy until it matches.
func waitVal(t *testing.T, n *gwc.Node, v gwc.VarID, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got, _ := n.Read(tGroup, v); got == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	got, _ := n.Read(tGroup, v)
	t.Fatalf("node %d: var %d = %d, want %d", n.ID(), v, got, want)
}

func TestOptimisticCommitNoContention(t *testing.T) {
	r := newRig(t, 3)
	err := r.engines[1].Do(tGroup, tLock, func(tx *Tx) error {
		return tx.Write(tVar, 99)
	})
	if err != nil {
		t.Fatal(err)
	}
	s := r.engines[1].Stats()
	if s.Optimistic != 1 || s.Commits != 1 || s.Rollbacks != 0 || s.Regular != 0 {
		t.Errorf("stats = %+v, want one committed optimistic section", s)
	}
	for _, n := range r.nodes {
		waitVal(t, n, tVar, 99)
	}
}

func TestRegularPathWhenLockVisiblyHeld(t *testing.T) {
	r := newRig(t, 3)
	// Node 2 holds the lock; wait until node 1's local copy shows it.
	if err := r.nodes[2].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, _ := r.nodes[1].LockValue(tGroup, tLock)
		if v == gwc.GrantValue(2) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("node 1 never saw the grant")
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		done <- r.engines[1].Do(tGroup, tLock, func(tx *Tx) error {
			return tx.Write(tVar, 5)
		})
	}()
	time.Sleep(30 * time.Millisecond)
	if err := r.nodes[2].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	s := r.engines[1].Stats()
	if s.Regular != 1 || s.Optimistic != 0 {
		t.Errorf("stats = %+v, want the regular path (local copy showed usage)", s)
	}
}

// delayToNode wraps a network, deferring sequenced (down) messages to one
// node so its local lock copy lags reality — the deterministic way to
// reproduce Figure 7's race on the live runtime.
type delayToNode struct {
	transport.Network
	target int
	delay  time.Duration
}

func (d *delayToNode) Endpoint(id int) (transport.Endpoint, error) {
	ep, err := d.Network.Endpoint(id)
	if err != nil {
		return nil, err
	}
	return &delayEndpoint{Endpoint: ep, net: d}, nil
}

type delayEndpoint struct {
	transport.Endpoint
	net *delayToNode
}

func (e *delayEndpoint) Send(to int, m wire.Message) error {
	if to == e.net.target && (m.Type == wire.TSeqLock || m.Type == wire.TSeqUpdate) {
		inner := e.Endpoint
		time.AfterFunc(e.net.delay, func() { _ = inner.Send(to, m) })
		return nil
	}
	return e.Endpoint.Send(to, m)
}

func TestRollbackOnContention(t *testing.T) {
	// The Figure 7 interaction, forced deterministically: node 2's view
	// of the lock lags 30ms behind, so it speculates while node 1
	// actually holds the lock. Its speculative write must be suppressed
	// at the root, rolled back locally, and re-executed after its queued
	// request is granted.
	inner, err := transport.NewInProc(3)
	if err != nil {
		t.Fatal(err)
	}
	net := &delayToNode{Network: inner, target: 2, delay: 30 * time.Millisecond}
	members := []int{0, 1, 2}
	nodes := make([]*gwc.Node, 3)
	for i := 0; i < 3; i++ {
		ep, err := net.Endpoint(i)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = gwc.NewNode(i, ep)
		if err := nodes[i].Join(gwc.GroupConfig{
			ID:      tGroup,
			Root:    0,
			Members: members,
			Guards:  map[gwc.VarID]gwc.LockID{tVar: tLock},
		}); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			_ = nd.Close()
		}
		_ = inner.Close()
	})
	e2 := NewEngine(nodes[2], DefaultConfig())

	if err := nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := nodes[1].Write(tGroup, tVar, 1000); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- e2.Do(tGroup, tLock, func(tx *Tx) error {
			cur, err := tx.Read(tVar)
			if err != nil {
				return err
			}
			return tx.Write(tVar, cur+1)
		})
	}()
	time.Sleep(100 * time.Millisecond) // let node 2 speculate and get interrupted
	if err := nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("optimistic section never finished")
	}
	s := e2.Stats()
	if s.Optimistic != 1 || s.Rollbacks != 1 {
		t.Fatalf("stats = %+v, want one speculation ending in one rollback", s)
	}
	if sup := nodes[0].Stats().Suppressed; sup == 0 {
		t.Error("root never suppressed the speculative write")
	}
	// After the rollback, node 2 re-read 1000 and wrote 1001 everywhere.
	for _, n := range nodes {
		waitVal(t, n, tVar, 1001)
	}
}

func TestCounterUnderContentionAllEngines(t *testing.T) {
	r := newRig(t, 4)
	const reps = 8
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < reps; i++ {
				err := r.engines[id].Do(tGroup, tLock, func(tx *Tx) error {
					cur, err := tx.Read(tVar)
					if err != nil {
						return err
					}
					time.Sleep(time.Millisecond) // widen the race window
					return tx.Write(tVar, cur+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, n := range r.nodes {
		waitVal(t, n, tVar, 4*reps)
	}
	// Sanity: the paths actually exercised sum to the sections run.
	total := 0
	for _, e := range r.engines {
		s := e.Stats()
		total += s.Commits + s.Rollbacks + s.Regular
	}
	if total != 4*reps {
		t.Errorf("paths sum to %d sections, want %d", total, 4*reps)
	}
}

func TestHistoryRisesUnderContentionAndDecays(t *testing.T) {
	e := NewEngine(nil, Config{HistoryDecay: 0.5, HistoryThreshold: 0.3})
	k := lockKey{tGroup, tLock}
	for i := 0; i < 5; i++ {
		e.bumpHistory(k)
	}
	if h := e.History(tGroup, tLock); h < 0.9 {
		t.Errorf("history after 5 busy samples = %.3f, want > 0.9", h)
	}
}

func TestNestedDoFails(t *testing.T) {
	r := newRig(t, 2)
	err := r.engines[1].Do(tGroup, tLock, func(tx *Tx) error {
		return r.engines[1].Do(tGroup, tLock, func(*Tx) error { return nil })
	})
	if !errors.Is(err, ErrNested) {
		t.Errorf("nested Do returned %v, want ErrNested", err)
	}
}

func TestBodyErrorPropagates(t *testing.T) {
	r := newRig(t, 2)
	boom := errors.New("boom")
	err := r.engines[1].Do(tGroup, tLock, func(tx *Tx) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("Do returned %v, want the body's error", err)
	}
	// The lock must be usable afterwards.
	if err := r.engines[1].Do(tGroup, tLock, func(tx *Tx) error {
		return tx.Write(tVar, 1)
	}); err != nil {
		t.Fatal(err)
	}
	waitVal(t, r.nodes[0], tVar, 1)
}

func TestDefaultConfigSanitisesBadValues(t *testing.T) {
	e := NewEngine(nil, Config{HistoryDecay: 2, HistoryThreshold: -1})
	if e.cfg.HistoryDecay != 0.95 || e.cfg.HistoryThreshold != 0.30 {
		t.Errorf("bad config not sanitised: %+v", e.cfg)
	}
}

func TestSpeculativeWritesInvisibleOnLoss(t *testing.T) {
	// While node 1 holds the lock, node 2's speculative write must never
	// become visible at a third node, even transiently.
	r := newRig(t, 3)
	if err := r.nodes[1].Acquire(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := r.nodes[1].Write(tGroup, tVarB, 7); err != nil {
		t.Fatal(err)
	}
	waitVal(t, r.nodes[0], tVarB, 7)

	stop := make(chan struct{})
	var saw999 bool
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if v, _ := r.nodes[0].Read(tGroup, tVarB); v == 999 {
				saw999 = true
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	done := make(chan error, 1)
	go func() {
		done <- r.engines[2].Do(tGroup, tLock, func(tx *Tx) error {
			return tx.Write(tVarB, 999)
		})
	}()
	time.Sleep(50 * time.Millisecond)
	if err := r.nodes[1].Release(tGroup, tLock); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	close(stop)
	watcher.Wait()
	// Node 2 eventually commits 999 legitimately (after grant); what must
	// never happen is 999 appearing while node 1 still held the lock. We
	// can't distinguish those phases from the watcher alone, so instead
	// assert the root suppressed at least one speculative write when the
	// section was forced to wait.
	if r.engines[2].Stats().Rollbacks > 0 && r.nodes[0].Stats().Suppressed == 0 {
		t.Error("rollback happened but no speculative write was suppressed at the root")
	}
	_ = saw999 // visibility of the committed value is fine
	waitVal(t, r.nodes[0], tVarB, 999)
}

// TestConditionalBodyNeverLosesPops is the live-runtime analogue of the
// model's conditional-body regression: nodes race optimistic
// pop-if-available sections against a fixed queue; every item must be
// popped exactly once even across rollbacks, which requires the root's
// epoch validation of speculative writes.
func TestConditionalBodyNeverLosesPops(t *testing.T) {
	const (
		items           = 40
		vHead gwc.VarID = 10 // guarded (tVar)
	)
	r := newRig(t, 4)
	var mu sync.Mutex
	popped := make(map[int64]int)
	var wg sync.WaitGroup
	for id := 0; id < 4; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			e := r.engines[id]
			for {
				var got int64
				err := e.Do(tGroup, tLock, func(tx *Tx) error {
					got = 0
					head, err := tx.Read(vHead)
					if err != nil {
						return err
					}
					if head >= items {
						return nil
					}
					got = head + 1
					return tx.Write(vHead, head+1)
				})
				if err != nil {
					t.Error(err)
					return
				}
				if got > 0 {
					mu.Lock()
					popped[got]++
					mu.Unlock()
					time.Sleep(200 * time.Microsecond) // "execute"
				} else {
					// Queue drained from our view; confirm and exit.
					if v, _ := r.nodes[id].Read(tGroup, vHead); v >= items {
						return
					}
					time.Sleep(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if len(popped) != items {
		t.Errorf("popped %d distinct items, want %d", len(popped), items)
	}
	for item, count := range popped {
		if count != 1 {
			t.Errorf("item %d popped %d times, want exactly once", item, count)
		}
	}
}

// Package core implements the paper's contribution — optimistic mutual
// exclusion (Section 4) — on the live GWC runtime:
//
//   - a usage-frequency history filter (old = 0.95*old + 0.05*new with a
//     0.30 threshold) decides between the optimistic and regular paths;
//   - on the optimistic path the engine sends a non-blocking lock request
//     and runs the critical section speculatively while the request
//     propagates, saving each changed variable for rollback (the
//     compiler-generated saved_ copies of Figure 4);
//   - speculative shared writes flow to the group root, which discards
//     them if another node holds the lock;
//   - if the lock goes to another processor first, the interrupt hook
//     (Figure 5) atomically suspends insharing; the engine restores the
//     saved values, resumes insharing, waits for its queued grant, and
//     re-executes the section.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"optsync/internal/gwc"
	"optsync/internal/obs"
)

// ErrNested is returned when a section tries to re-enter a lock it is
// already speculating on or holding (the paper's line 28: "ERROR(Cannot
// safely nest mutex lock requests)").
var ErrNested = errors.New("core: cannot safely nest mutex lock requests")

// Config tunes the optimistic engine.
type Config struct {
	// HistoryDecay is the EWMA factor: hist = decay*hist + (1-decay)*new.
	HistoryDecay float64
	// HistoryThreshold is the usage level above which the engine takes
	// the regular path ("e.g. 0.30").
	HistoryThreshold float64
}

// DefaultConfig returns the paper's constants.
func DefaultConfig() Config {
	return Config{HistoryDecay: 0.95, HistoryThreshold: 0.30}
}

// Stats counts engine outcomes.
type Stats struct {
	// Optimistic counts sections that started speculatively.
	Optimistic int
	// Commits counts speculative sections that won the lock.
	Commits int
	// Rollbacks counts speculative sections that lost and re-executed.
	Rollbacks int
	// Regular counts sections routed to the regular (blocking) path by
	// the local lock copy or the usage history.
	Regular int
	// Leased counts sections entered through a held lock lease — a
	// purely local acquisition, no wire traffic and no speculation
	// needed (the lease guarantees nobody else can hold the lock).
	Leased int
}

// lockKey identifies a lock within a group.
type lockKey struct {
	g gwc.GroupID
	l gwc.LockID
}

// Engine runs optimistic mutual exclusion for one node.
type Engine struct {
	node *gwc.Node
	cfg  Config

	mu     sync.Mutex
	hist   map[lockKey]float64
	active map[lockKey]bool
	stats  Stats
}

// NewEngine builds an engine over a GWC node.
func NewEngine(node *gwc.Node, cfg Config) *Engine {
	if cfg.HistoryDecay <= 0 || cfg.HistoryDecay >= 1 {
		cfg.HistoryDecay = 0.95
	}
	if cfg.HistoryThreshold <= 0 {
		cfg.HistoryThreshold = 0.30
	}
	return &Engine{
		node:   node,
		cfg:    cfg,
		hist:   make(map[lockKey]float64),
		active: make(map[lockKey]bool),
	}
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// History reports the current usage-frequency estimate for a lock
// (0 = always free, 1 = always held by another CPU).
func (e *Engine) History(g gwc.GroupID, l gwc.LockID) float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.hist[lockKey{g, l}]
}

// Tx is the engine's view of one critical section. Writes through the
// transaction are tracked so a rollback can restore the prior values.
// Sections run through Do may execute more than once (speculative run
// plus a re-execution after rollback), so bodies must confine their side
// effects to the transaction.
type Tx struct {
	eng         *Engine
	gid         gwc.GroupID
	speculative bool
	saved       map[gwc.VarID]int64
	order       []gwc.VarID
}

// Read returns the local copy of a shared variable. During speculation
// the value may prove invalid, in which case the section is rolled back
// and re-executed with valid data.
func (tx *Tx) Read(v gwc.VarID) (int64, error) {
	return tx.eng.node.Read(tx.gid, v)
}

// Write stores a shared value. On the speculative path the first write to
// each variable saves its prior value for rollback before anything is
// altered (Figure 4 lines 14-16).
func (tx *Tx) Write(v gwc.VarID, val int64) error {
	if tx.speculative {
		if _, ok := tx.saved[v]; !ok {
			old, err := tx.eng.node.Read(tx.gid, v)
			if err != nil {
				return err
			}
			tx.saved[v] = old
			tx.order = append(tx.order, v)
		}
	}
	return tx.eng.node.Write(tx.gid, v, val)
}

// sample updates the usage-frequency history from the current local lock
// value and reports the (sampled value, updated history).
func (e *Engine) sample(k lockKey, self int) (int64, float64, error) {
	val, err := e.node.LockValue(k.g, k.l)
	if err != nil {
		return 0, 0, err
	}
	inUse := 0.0
	if val != gwc.Free && val != gwc.GrantValue(self) {
		inUse = 1.0
	}
	e.mu.Lock()
	h := e.cfg.HistoryDecay*e.hist[k] + (1-e.cfg.HistoryDecay)*inUse
	e.hist[k] = h
	e.mu.Unlock()
	return val, h, nil
}

// bumpHistory records "lock held by another CPU" — the P9 interrupt-path
// history update.
func (e *Engine) bumpHistory(k lockKey) {
	e.mu.Lock()
	e.hist[k] = e.cfg.HistoryDecay*e.hist[k] + (1 - e.cfg.HistoryDecay)
	e.mu.Unlock()
}

// Do runs body under the group lock, optimistically when the local lock
// copy and its usage history suggest the lock is free. The body may run
// twice (speculatively, then again after a rollback); it must confine its
// shared-state effects to the transaction.
func (e *Engine) Do(gid gwc.GroupID, l gwc.LockID, body func(tx *Tx) error) error {
	return e.DoContext(context.Background(), gid, l, body)
}

// DoContext is Do with cancellation. The regular path aborts cleanly
// whenever ctx ends, withdrawing any queued request. On the optimistic
// path cancellation is honoured at entry and during the post-rollback
// wait; once a section is speculating, the engine must first learn
// whether its writes were accepted (grant) or suppressed (another
// holder) before it can stop — aborting earlier would leave the local
// copies unreconcilable with the group. That decision arrives within a
// round trip of the root (or of its successor after a failover), so the
// non-cancellable window is short and bounded by the failover deadline.
func (e *Engine) DoContext(ctx context.Context, gid gwc.GroupID, l gwc.LockID, body func(tx *Tx) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	k := lockKey{gid, l}
	e.mu.Lock()
	if e.active[k] {
		e.mu.Unlock()
		return ErrNested
	}
	e.active[k] = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.active, k)
		e.mu.Unlock()
	}()

	if e.node.TryLeaseEnter(gid, l) {
		// Leased fast path: the lock is cached here from a previous hold,
		// so entry is immediate and exclusive — no request, no
		// speculation, no rollback risk. Beats even the optimistic path:
		// that one still pays the request round trip before release.
		e.mu.Lock()
		e.stats.Leased++
		e.mu.Unlock()
		tx := &Tx{eng: e, gid: gid}
		bodyErr := body(tx)
		if err := e.node.Release(gid, l); err != nil {
			return err
		}
		return bodyErr
	}

	self := e.node.ID()
	val, hist, err := e.sample(k, self)
	if err != nil {
		return err
	}
	if val != gwc.Free || hist > e.cfg.HistoryThreshold {
		// Regular path (Figure 4 lines 08-12): the local copy or the
		// history indicate usage.
		e.mu.Lock()
		e.stats.Regular++
		e.mu.Unlock()
		e.node.Emit(obs.EvRegular, gid, int64(l), 0)
		return e.regular(ctx, gid, l, body)
	}
	return e.optimistic(ctx, k, body)
}

// regular is the conventional blocking acquire/run/release.
func (e *Engine) regular(ctx context.Context, gid gwc.GroupID, l gwc.LockID, body func(tx *Tx) error) error {
	if err := e.node.AcquireContext(ctx, gid, l); err != nil {
		return err
	}
	tx := &Tx{eng: e, gid: gid}
	bodyErr := body(tx)
	if err := e.node.Release(gid, l); err != nil {
		return err
	}
	return bodyErr
}

// optimistic sends a non-blocking request and speculates.
func (e *Engine) optimistic(ctx context.Context, k lockKey, body func(tx *Tx) error) error {
	gid, l := k.g, k.l
	self := e.node.ID()
	grant := gwc.GrantValue(self)

	// Arm the interrupt before speculating: if the lock goes to another
	// CPU, suspend insharing atomically with the observation.
	var rolled, decided atomic.Bool
	unregister, err := e.node.OnLockChange(gid, l, func(v int64) gwc.HookAction {
		if decided.Load() || rolled.Load() {
			return gwc.HookNone
		}
		if v != gwc.Free && v != grant {
			rolled.Store(true)
			return gwc.HookSuspend
		}
		return gwc.HookNone
	})
	if err != nil {
		return err
	}
	defer unregister()

	// Re-check under the armed hook: a foreign grant applied between
	// DoContext's sample and the registration above fired no hook and
	// never will — and once that holder leaves, the root can hand the
	// lock straight to us, so the next transition the hook sees may be
	// our own grant. An open session is the sneakier shape of the same
	// hazard: session entries leave the lock *value* Free, only a fresh
	// SessEnter fires the classic hooks, and a session that is already
	// open can drain without ever showing this hook a foreign grant —
	// the close reports Free and the next value it sees is our own
	// grant. Speculating through either window would "commit" a section
	// whose writes the root already suppressed as not-holder (a lost
	// update). Nothing has been sent yet, so detach the hook (its
	// suspend action must not fire inside a regular section) and take
	// the regular path instead.
	val, err := e.node.LockValue(gid, l)
	if err != nil {
		return err
	}
	si, err := e.node.SessionState(gid, l)
	if err != nil {
		return err
	}
	if (val != gwc.Free && val != grant) || si.Holders > 0 {
		unregister()
		e.bumpHistory(k)
		e.mu.Lock()
		e.stats.Regular++
		e.mu.Unlock()
		e.node.Emit(obs.EvRegular, gid, int64(l), 0)
		return e.regular(ctx, gid, l, body)
	}

	e.mu.Lock()
	e.stats.Optimistic++
	e.mu.Unlock()
	e.node.Emit(obs.EvSpecStart, gid, int64(l), 0)
	specStart := e.node.Now()

	if err := e.node.SendLockRequest(gid, l); err != nil {
		return err
	}

	// Speculative execution while the request propagates (lines 14-18).
	tx := &Tx{eng: e, gid: gid, speculative: true, saved: make(map[gwc.VarID]int64)}
	bodyErr := body(tx)

	// Line 19: wait until the lock answer decides our fate. A positive
	// lock value is either our grant (commit) or another CPU's (the hook
	// has already rolled us back). The request is re-sent periodically so
	// a copy that died with a crashed root reaches its successor; this
	// wait deliberately ignores ctx (see DoContext).
	ok, err := e.node.WaitLockCondContext(context.Background(), gid, l, func(v int64) bool {
		return v == grant || rolled.Load()
	}, true)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: node %d closed while awaiting lock %d: %w", self, l, gwc.ErrClosed)
	}

	if !rolled.Load() {
		// Success: the root granted us the lock; every speculative write
		// reached it after our request on the same FIFO path, so all of
		// them were accepted. Release and go.
		decided.Store(true)
		e.mu.Lock()
		e.stats.Commits++
		e.mu.Unlock()
		e.node.Metrics().Hist(obs.HistSpecSection).Record(e.node.Now().Sub(specStart))
		e.node.Emit(obs.EvSpecCommit, gid, int64(l), 0)
		if err := e.node.Release(gid, l); err != nil {
			return err
		}
		return bodyErr
	}

	// Rollback (lines 22-26): restore saved values locally, resume
	// insharing (replaying the valid data that arrived meanwhile), then
	// wait for our queued request to be granted and re-execute.
	e.mu.Lock()
	e.stats.Rollbacks++
	e.mu.Unlock()
	e.node.Metrics().Hist(obs.HistSpecSection).Record(e.node.Now().Sub(specStart))
	e.node.Emit(obs.EvSpecAbort, gid, int64(l), obs.ReasonLockHeld)
	e.bumpHistory(k)
	restoreStart := e.node.Now()
	if err := e.node.RestoreLocal(gid, tx.saved); err != nil {
		return err
	}
	if err := e.node.ResumeInsharing(gid); err != nil {
		return err
	}
	e.node.Metrics().Hist(obs.HistRollback).Record(e.node.Now().Sub(restoreStart))
	okGrant, err := e.node.WaitLockGrantContext(ctx, gid, l)
	if err != nil {
		// The rollback already restored local state, so a cancelled
		// re-execution only needs to withdraw the queued request.
		if cerr := e.node.CancelLockRequest(gid, l); cerr != nil {
			return cerr
		}
		return err
	}
	if !okGrant {
		return fmt.Errorf("core: node %d closed while awaiting lock %d after rollback: %w", self, l, gwc.ErrClosed)
	}
	decided.Store(true)
	tx2 := &Tx{eng: e, gid: gid}
	bodyErr = body(tx2)
	if err := e.node.Release(gid, l); err != nil {
		return err
	}
	return bodyErr
}

// DoSession runs body inside the lock's given session — concurrently
// with any number of same-session sections, excluded from every other
// session. Session 0 is exactly Do.
func (e *Engine) DoSession(gid gwc.GroupID, l gwc.LockID, session uint32, body func(tx *Tx) error) error {
	return e.DoSessionContext(context.Background(), gid, l, session, body)
}

// DoSessionContext is DoSession with cancellation. The speculative
// window mirrors DoContext's: once a section is speculating, the engine
// must learn whether it was admitted before it can stop.
//
// The session path speculates in one extra case the exclusive path
// cannot: when the target session is already open locally, entry is
// near-free — the root admits a same-session join without closing the
// section — so the engine speculates regardless of the usage history
// and the join costs no blocking round trip at all.
func (e *Engine) DoSessionContext(ctx context.Context, gid gwc.GroupID, l gwc.LockID, session uint32, body func(tx *Tx) error) error {
	if session == 0 {
		return e.DoContext(ctx, gid, l, body)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	k := lockKey{gid, l}
	e.mu.Lock()
	if e.active[k] {
		e.mu.Unlock()
		return ErrNested
	}
	e.active[k] = true
	e.mu.Unlock()
	defer func() {
		e.mu.Lock()
		delete(e.active, k)
		e.mu.Unlock()
	}()

	si, err := e.node.SessionState(gid, l)
	if err != nil {
		return err
	}
	openJoin := si.Holders > 0 && si.Session == session
	conflicted, hist, err := e.sampleSession(k, session)
	if err != nil {
		return err
	}
	if !openJoin && (conflicted || hist > e.cfg.HistoryThreshold) {
		// Regular path: the local view or the history say another
		// session is (often) in the way.
		e.mu.Lock()
		e.stats.Regular++
		e.mu.Unlock()
		e.node.Emit(obs.EvRegular, gid, int64(l), int64(session))
		if err := e.node.EnterSessionContext(ctx, gid, l, session); err != nil {
			return err
		}
		tx := &Tx{eng: e, gid: gid}
		bodyErr := body(tx)
		if err := e.node.LeaveSession(gid, l); err != nil {
			return err
		}
		return bodyErr
	}
	return e.optimisticSession(ctx, k, session, body)
}

// sampleSession updates the usage-frequency history for a session-lock
// acquisition: the lock counts as in use when an incompatible section —
// an exclusive holder or a different open session — is observed locally.
func (e *Engine) sampleSession(k lockKey, session uint32) (bool, float64, error) {
	val, err := e.node.LockValue(k.g, k.l)
	if err != nil {
		return false, 0, err
	}
	si, err := e.node.SessionState(k.g, k.l)
	if err != nil {
		return false, 0, err
	}
	conflicted := (val != gwc.Free && val != gwc.GrantValue(e.node.ID())) ||
		(si.Holders > 0 && si.Session != session)
	inUse := 0.0
	if conflicted {
		inUse = 1.0
	}
	e.mu.Lock()
	h := e.cfg.HistoryDecay*e.hist[k] + (1-e.cfg.HistoryDecay)*inUse
	e.hist[k] = h
	e.mu.Unlock()
	return conflicted, h, nil
}

// optimisticSession sends a non-blocking session request and speculates.
func (e *Engine) optimisticSession(ctx context.Context, k lockKey, session uint32, body func(tx *Tx) error) error {
	gid, l := k.g, k.l
	self := e.node.ID()

	// Arm the interrupt before speculating: any entry into a different
	// session (session 0 — an exclusive grant — included) means an
	// incompatible section was sequenced ahead of our join, so our
	// speculative writes were suppressed at the root.
	var rolled, decided atomic.Bool
	unregister, err := e.node.OnSessionChange(gid, l, func(ev gwc.SessEvent) gwc.HookAction {
		if decided.Load() || rolled.Load() {
			return gwc.HookNone
		}
		if ev.Kind == gwc.SessEnter && ev.Session != session {
			rolled.Store(true)
			return gwc.HookSuspend
		}
		return gwc.HookNone
	})
	if err != nil {
		return err
	}
	defer unregister()

	// Re-check under the armed hook (see optimistic): an incompatible
	// entry applied between DoSessionContext's sample and the
	// registration above fired no hook and never will, so speculating
	// now could commit a section whose writes the root suppressed.
	// Nothing has been sent yet — detach the hook and enter regularly.
	val, err := e.node.LockValue(gid, l)
	if err != nil {
		return err
	}
	si, err := e.node.SessionState(gid, l)
	if err != nil {
		return err
	}
	stillOpenJoin := si.Holders > 0 && si.Session == session
	conflicted := (val != gwc.Free && val != gwc.GrantValue(self)) ||
		(si.Holders > 0 && si.Session != session)
	if !stillOpenJoin && conflicted {
		unregister()
		e.bumpHistory(k)
		e.mu.Lock()
		e.stats.Regular++
		e.mu.Unlock()
		e.node.Emit(obs.EvRegular, gid, int64(l), int64(session))
		if err := e.node.EnterSessionContext(ctx, gid, l, session); err != nil {
			return err
		}
		tx := &Tx{eng: e, gid: gid}
		bodyErr := body(tx)
		if err := e.node.LeaveSession(gid, l); err != nil {
			return err
		}
		return bodyErr
	}

	e.mu.Lock()
	e.stats.Optimistic++
	e.mu.Unlock()
	e.node.Emit(obs.EvSpecStart, gid, int64(l), int64(session))
	specStart := e.node.Now()

	if err := e.node.SendSessionRequest(gid, l, session); err != nil {
		return err
	}

	// Speculative execution while the join propagates.
	tx := &Tx{eng: e, gid: gid, speculative: true, saved: make(map[gwc.VarID]int64)}
	bodyErr := body(tx)

	// Wait until the session answer decides our fate; like DoContext's
	// wait, this deliberately ignores ctx.
	ok, err := e.node.WaitSessionCondContext(context.Background(), gid, l, func(si gwc.SessionInfo) bool {
		return (si.Mine && si.Session == session) || rolled.Load()
	}, true)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("core: node %d closed while awaiting session %d of lock %d: %w", self, session, l, gwc.ErrClosed)
	}

	if !rolled.Load() {
		// Admitted: the root accepted our entry without an incompatible
		// section in between, so every speculative write was sequenced
		// inside the session.
		decided.Store(true)
		e.mu.Lock()
		e.stats.Commits++
		e.mu.Unlock()
		e.node.Metrics().Hist(obs.HistSpecSection).Record(e.node.Now().Sub(specStart))
		e.node.Emit(obs.EvSpecCommit, gid, int64(l), int64(session))
		if err := e.node.LeaveSession(gid, l); err != nil {
			return err
		}
		return bodyErr
	}

	// Rollback: restore saved values, resume insharing, wait for the
	// queued join to be granted, re-execute inside the real entry.
	e.mu.Lock()
	e.stats.Rollbacks++
	e.mu.Unlock()
	e.node.Metrics().Hist(obs.HistSpecSection).Record(e.node.Now().Sub(specStart))
	e.node.Emit(obs.EvSpecAbort, gid, int64(l), obs.ReasonLockHeld)
	e.bumpHistory(k)
	restoreStart := e.node.Now()
	if err := e.node.RestoreLocal(gid, tx.saved); err != nil {
		return err
	}
	if err := e.node.ResumeInsharing(gid); err != nil {
		return err
	}
	e.node.Metrics().Hist(obs.HistRollback).Record(e.node.Now().Sub(restoreStart))
	okEntry, err := e.node.WaitSessionCondContext(ctx, gid, l, func(si gwc.SessionInfo) bool {
		return si.Mine && si.Session == session
	}, true)
	if err != nil {
		if cerr := e.node.CancelLockRequest(gid, l); cerr != nil {
			return cerr
		}
		return err
	}
	if !okEntry {
		return fmt.Errorf("core: node %d closed while awaiting session %d of lock %d after rollback: %w", self, session, l, gwc.ErrClosed)
	}
	decided.Store(true)
	tx2 := &Tx{eng: e, gid: gid}
	bodyErr = body(tx2)
	if err := e.node.LeaveSession(gid, l); err != nil {
		return err
	}
	return bodyErr
}

package obs

import (
	"sync"
	"testing"
	"time"
)

func TestBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{-5, 0},
		{0, 0},
		{1, 1}, // [1,2)
		{2, 2}, // [2,4)
		{3, 2},
		{4, 3},
		{1023, 10},                // [512,1024)
		{1024, 11},                // [1024,2048)
		{time.Microsecond, 10},    // 1000ns -> [512,1024)
		{time.Millisecond, 20},    // 1e6ns, Len64=20
		{time.Second, 30},         // 1e9ns, Len64=30
		{time.Hour, 42},           // 3.6e12ns, Len64=42
		{1 << 62, NumBuckets - 1}, // clamps to overflow bucket
		{1<<63 - 1, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.d); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.d, got, c.want)
		}
	}
	// Every bucket's samples must sit strictly below its reported upper
	// bound (except overflow, whose bound is a lower bound by doc).
	for i := 1; i < NumBuckets-1; i++ {
		lo := time.Duration(1) << (i - 1)
		hi := time.Duration(1)<<i - 1
		if bucketOf(lo) != i || bucketOf(hi) != i {
			t.Errorf("bucket %d: range [%d,%d] not mapped to itself", i, lo, hi)
		}
		if hi >= BucketUpper(i) {
			t.Errorf("bucket %d: max sample %d >= upper bound %v", i, hi, BucketUpper(i))
		}
	}
	if BucketUpper(0) != 0 {
		t.Errorf("BucketUpper(0) = %v, want 0", BucketUpper(0))
	}
}

func TestHistQuantileAndMean(t *testing.T) {
	var h Hist
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %v, want 0", got)
	}
	// 90 samples at ~1us, 10 at ~1ms.
	for i := 0; i < 90; i++ {
		h.Record(time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Record(time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("count = %d, want 100", s.Count)
	}
	if p50 := s.Quantile(0.5); p50 < time.Microsecond || p50 > 2*time.Microsecond {
		t.Errorf("p50 = %v, want ~1-2us", p50)
	}
	if p99 := s.Quantile(0.99); p99 < time.Millisecond || p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1-2ms", p99)
	}
	wantMean := (90*time.Microsecond + 10*time.Millisecond) / 100
	if got := s.Mean(); got != wantMean {
		t.Errorf("mean = %v, want %v", got, wantMean)
	}
}

// TestHistConcurrent hammers one histogram from many goroutines while
// snapshotting, then checks the final totals and that merging partial
// snapshots never exceeds the final one (counters are monotone).
func TestHistConcurrent(t *testing.T) {
	var h Hist
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var partials []HistSnapshot
	var pmu sync.Mutex
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			pmu.Lock()
			partials = append(partials, s)
			pmu.Unlock()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Record(time.Duration(w*1000 + i))
			}
		}(w)
	}
	for h.count.Load() < workers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	final := h.Snapshot()
	if final.Count != workers*per {
		t.Fatalf("count = %d, want %d", final.Count, workers*per)
	}
	var bucketSum uint64
	for _, c := range final.Buckets {
		bucketSum += c
	}
	if bucketSum != final.Count {
		t.Fatalf("bucket sum %d != count %d", bucketSum, final.Count)
	}
	for _, p := range partials {
		if p.Count > final.Count {
			t.Fatalf("partial snapshot count %d exceeds final %d", p.Count, final.Count)
		}
	}
	// Merge two disjoint halves and compare against a combined run.
	var a, b Hist
	a.Record(time.Microsecond)
	a.Record(time.Second)
	b.Record(time.Millisecond)
	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Count != 3 || m.SumNanos != (time.Microsecond+time.Second+time.Millisecond).Nanoseconds() {
		t.Fatalf("merge: count=%d sum=%d", m.Count, m.SumNanos)
	}
}

func TestTracerDisabledIsNoop(t *testing.T) {
	var tr Tracer
	tr.Emit(Event{Type: EvSpecStart})
	if tr.Count(EvSpecStart) != 0 {
		t.Fatal("disabled tracer counted an event")
	}
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("disabled tracer buffered %d events", len(got))
	}
}

func TestTraceRingWraparound(t *testing.T) {
	var tr Tracer
	tr.Enable(8) // rounds to 8
	const total = 21
	for i := 0; i < total; i++ {
		tr.Emit(Event{Type: EvLockGrant, A: int64(i)})
	}
	evs := tr.Snapshot()
	if len(evs) != 8 {
		t.Fatalf("snapshot len = %d, want 8 (ring capacity)", len(evs))
	}
	// Drop-oldest: the survivors are the last 8, in order.
	for i, e := range evs {
		if want := int64(total - 8 + i); e.A != want {
			t.Errorf("event %d: A=%d, want %d", i, e.A, want)
		}
	}
	if tr.Count(EvLockGrant) != total {
		t.Errorf("count = %d, want %d (counts survive wraparound)", tr.Count(EvLockGrant), total)
	}
}

// TestTraceConcurrent checks that concurrent emitters and snapshotters
// never observe a torn record: every snapshotted event must be one
// some goroutine actually emitted (A encodes the emitter, B the
// sequence — a torn read would mix them).
func TestTraceConcurrent(t *testing.T) {
	var tr Tracer
	tr.Enable(64)
	const workers, per = 4, 5000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range tr.Snapshot() {
				if e.B != e.A*1000000+e.At {
					select {
					case errs <- e.String():
					default:
					}
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a, at := int64(w), int64(i)
				tr.Emit(Event{Type: EvSuppressed, A: a, At: at, B: a*1000000 + at})
			}
		}(w)
	}
	for tr.Count(EvSuppressed) < workers*per {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	select {
	case bad := <-errs:
		t.Fatalf("torn trace record observed: %s", bad)
	default:
	}
	if got := tr.Count(EvSuppressed); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestSubscribe(t *testing.T) {
	var tr Tracer
	tr.Enable(16)
	ch, cancel := tr.Subscribe()
	tr.Emit(Event{Type: EvFence})
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("no wake-up after emit")
	}
	// Coalescing: many emits, at least one tick pending.
	for i := 0; i < 10; i++ {
		tr.Emit(Event{Type: EvFence})
	}
	select {
	case <-ch:
	default:
		t.Fatal("no tick pending after burst")
	}
	cancel()
	// Drain any tick the burst left, then verify no new ones arrive.
	select {
	case <-ch:
	default:
	}
	tr.Emit(Event{Type: EvFence})
	select {
	case <-ch:
		t.Fatal("tick after cancel")
	default:
	}
}

func TestMetricsSnapshotMerge(t *testing.T) {
	var a, b Metrics
	a.Trace.Enable(16)
	a.Hist(HistLockAcquire).Record(time.Microsecond)
	a.Trace.Emit(Event{Type: EvSpecAbort})
	b.Hist(HistLockAcquire).Record(time.Millisecond)
	s := a.Snapshot()
	s.Merge(b.Snapshot())
	if s.Hists[HistLockAcquire].Count != 2 {
		t.Fatalf("merged count = %d, want 2", s.Hists[HistLockAcquire].Count)
	}
	if s.Events[EvSpecAbort] != 1 {
		t.Fatalf("merged abort events = %d, want 1", s.Events[EvSpecAbort])
	}
}

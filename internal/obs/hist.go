// Package obs is the runtime's observability layer: lock-free latency
// histograms and a bounded structured event trace, cheap enough to stay
// wired through the protocol hot paths permanently.
//
// Everything in this package is built from plain atomics — no mutex is
// ever taken on a record or emit, and neither operation allocates. The
// sequenced-update fast path (gwc.Write under the node mutex) therefore
// pays only a handful of uncontended atomic adds per sample, and a
// single atomic load when tracing is disabled. Snapshots are taken
// concurrently with recording and are per-counter consistent: each
// counter is monotone and read atomically, so a snapshot never tears a
// value, though counters read microseconds apart may reflect slightly
// different instants. For protocol invariants that need an exactly
// consistent cut, gwc.Stats (mutex-guarded) remains the source of
// truth; obs answers distribution questions those counters cannot.
package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// NumBuckets is the fixed bucket count of every histogram. Bucket i
// (i >= 1) holds samples whose nanosecond duration d satisfies
// bits.Len64(d) == i, i.e. d in [2^(i-1), 2^i). Bucket 0 holds
// non-positive samples (virtual clocks can legitimately produce
// zero-duration sections). The last bucket absorbs everything at or
// above 2^(NumBuckets-2) ns — about 39 hours, beyond any latency this
// system can produce.
const NumBuckets = 48

// Hist is a lock-free fixed-bucket latency histogram. Record is safe
// from any number of goroutines; Snapshot is safe concurrently with
// Record. The zero value is ready to use.
type Hist struct {
	buckets [NumBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Int64 // total nanoseconds; int64 tolerates negative samples
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 0 {
		return 0
	}
	b := bits.Len64(uint64(ns))
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i, the value
// quantile estimates report. Bucket 0 reports 0; the overflow bucket
// reports its lower bound (the distribution above it is unknown).
func BucketUpper(i int) time.Duration {
	switch {
	case i <= 0:
		return 0
	case i >= NumBuckets-1:
		return time.Duration(1) << (NumBuckets - 2)
	default:
		return time.Duration(1) << i
	}
}

// Record adds one sample. It performs two or three atomic adds and
// never allocates or blocks.
func (h *Hist) Record(d time.Duration) {
	h.buckets[bucketOf(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(d.Nanoseconds())
}

// Snapshot captures the histogram's current counters.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNanos = h.sum.Load()
	return s
}

// HistSnapshot is a point-in-time copy of a Hist, mergeable across
// nodes and comparable across runs.
type HistSnapshot struct {
	Buckets  [NumBuckets]uint64
	Count    uint64
	SumNanos int64
}

// Merge folds another snapshot into this one — used to build
// cluster-wide distributions from per-node histograms.
func (s *HistSnapshot) Merge(o HistSnapshot) {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Count += o.Count
	s.SumNanos += o.SumNanos
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 < q <= 1): the upper edge of the bucket containing the q·Count-th
// sample. With power-of-two buckets the estimate is within 2x of the
// true value. Returns 0 for an empty histogram.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(s.Count))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Buckets {
		cum += c
		if cum >= target {
			return BucketUpper(i)
		}
	}
	return BucketUpper(NumBuckets - 1)
}

// Mean returns the exact arithmetic mean of all recorded samples.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / int64(s.Count))
}

// String renders a compact one-line summary: count, mean, and the
// standard latency quantiles.
func (s HistSnapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p90=%v p99=%v max<=%v",
		s.Count, s.Mean(), s.Quantile(0.50), s.Quantile(0.90), s.Quantile(0.99), s.Quantile(1))
}

// Bars renders a multi-line ASCII distribution of the non-empty
// buckets, for trace dumps and cmd/optsim output.
func (s HistSnapshot) Bars() string {
	var max uint64
	for _, c := range s.Buckets {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		width := int(c * 40 / max)
		if width == 0 {
			width = 1
		}
		fmt.Fprintf(&b, "%12v %8d %s\n", BucketUpper(i), c, strings.Repeat("#", width))
	}
	return b.String()
}

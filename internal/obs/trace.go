package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// EventType identifies one protocol transition in the trace.
type EventType uint8

const (
	EvNone EventType = iota

	// Optimistic-engine transitions (internal/core).
	EvSpecStart  // speculative section entered before the grant; A=lock
	EvSpecCommit // speculation confirmed by grant; A=lock
	EvSpecAbort  // speculation rolled back; A=lock, B=abort reason
	EvRegular    // history filter chose the pessimistic path; A=lock

	// Member-side data plane (internal/gwc).
	EvEchoDropped  // hardware blocking suppressed a self-echo; A=var
	EvEchoRestored // failover snapshot restored a blocked echo; A=var
	EvStaleEpoch   // frame from a deposed reign rejected; A=frame type, B=epoch
	EvBatchFlush   // coalescing queue flushed; A=writes in flush, B=flush reason
	EvSnapApplied  // failover/rejoin snapshot re-based the member; A=seq, B=epoch
	EvRejoined     // rejoin handshake completed; A=rejoining node, B=epoch

	// Root-side lock and update plane.
	EvSuppressed // guarded write dropped at the root; A=var, B=suppress reason
	EvLockQueued // lock request queued behind a holder; A=lock, B=requester
	EvLockGrant  // lock granted; A=lock, B=new holder
	EvLockFree   // lock released with empty queue; A=lock
	EvLockCancel // queued request withdrawn; A=lock, B=requester

	// Reign transitions.
	EvFence       // root lost contact with a quorum and fenced itself; A=reachable, B=epoch
	EvUnfence     // fenced root regained a quorum and replayed; A=parked frames, B=epoch
	EvElection    // member began failure detection / candidacy; A=candidate, B=election epoch
	EvReignChange // node adopted a new reign; A=new root, B=new epoch
	EvDemoted     // root learned of a higher reign and stepped down; A=new root, B=new epoch

	// Resilience layer (retry/watchdog/degraded mode).
	EvLockParked    // grant designated but its multicast deferred on the quorum watermark; A=lock, B=winner
	EvWatchdogStuck // an operation exceeded its liveness budget; A=operation kind, B=operand
	EvDegradedRead  // bounded-staleness read served while the node cannot reach a reign; A=var, B=staleness ns

	// Session locks (group mutual exclusion).
	EvSessOpen  // a session opened (first entry granted); A=lock, B=session
	EvSessClose // the open session's last holder left; A=lock, B=session

	// State integrity (anti-entropy sweep).
	EvDivergence // a member's state digest diverged from the root's; A=diverged node, B=watermark seq

	// Lock leasing and peer handoff.
	EvLeaseGrant  // root leased a lock to its holder; A=lock, B=holder
	EvLeaseReturn // a lease came back to the root; A=lock, B=holder
	EvLeaseLocal  // a leased re-acquire was decided locally, no wire traffic; A=lock
	EvHandoff     // a releasing holder handed the lock directly to a waiter; A=lock, B=new holder

	NumEventTypes // sentinel; always last
)

// Watchdog operation kinds carried in EvWatchdogStuck's A operand.
const (
	WatchAcquire    int64 = iota + 1 // member: lock acquisition outstanding past budget
	WatchSync                        // member: sync barrier outstanding past budget
	WatchRejoin                      // member: rejoin handshake unanswered past budget
	WatchFence                       // root: reign fenced past budget
	WatchParked                      // root: grant parked on the quorum watermark past budget
	WatchHolderless                  // root: holderless lock with waiters past budget
	WatchLease                       // root: leased lock with waiters past budget, revoke unanswered
)

// Abort / suppression reason codes carried in Event.B.
const (
	ReasonLockHeld   int64 = iota + 1 // speculation aborted: lock was taken
	ReasonNotHolder                   // guarded write from a non-holder
	ReasonStaleGrant                  // guarded write tagged with an old grant epoch
	ReasonClosed                      // node shut down mid-operation
)

var evNames = [NumEventTypes]string{
	EvNone: "none", EvSpecStart: "spec-start", EvSpecCommit: "spec-commit",
	EvSpecAbort: "spec-abort", EvRegular: "regular-acquire",
	EvEchoDropped: "echo-dropped", EvEchoRestored: "echo-restored",
	EvStaleEpoch: "stale-epoch", EvBatchFlush: "batch-flush",
	EvSnapApplied: "snap-applied", EvRejoined: "rejoined",
	EvSuppressed: "suppressed", EvLockQueued: "lock-queued",
	EvLockGrant: "lock-grant", EvLockFree: "lock-free", EvLockCancel: "lock-cancel",
	EvFence: "fence", EvUnfence: "unfence", EvElection: "election",
	EvReignChange: "reign-change", EvDemoted: "demoted",
	EvLockParked: "lock-parked", EvWatchdogStuck: "watchdog-stuck",
	EvDegradedRead: "degraded-read",
	EvSessOpen:     "sess-open", EvSessClose: "sess-close",
	EvDivergence: "divergence",
	EvLeaseGrant: "lease-grant", EvLeaseReturn: "lease-return",
	EvLeaseLocal: "lease-local", EvHandoff: "handoff",
}

func (t EventType) String() string {
	if int(t) < len(evNames) && evNames[t] != "" {
		return evNames[t]
	}
	return fmt.Sprintf("ev(%d)", uint8(t))
}

// Event is one structured trace record. A and B are event-specific
// operands documented on the EventType constants.
type Event struct {
	At    int64 // clock nanoseconds (virtual under detsim)
	Type  EventType
	Node  int32
	Group int32
	A, B  int64
}

func (e Event) String() string {
	return fmt.Sprintf("%10dns n%d g%d %-14s a=%d b=%d", e.At, e.Node, e.Group, e.Type, e.A, e.B)
}

// slot is one ring entry. All fields are atomics so concurrent
// emit/snapshot is race-free; seq implements a per-slot seqlock: a
// writer zeroes it, stores the fields, then stores the claim index, so
// a reader that sees the same claim index before and after reading the
// fields read a consistent record, and discards the slot otherwise.
type slot struct {
	seq                atomic.Uint64
	at, a, b           atomic.Int64
	typ, nodeID, group atomic.Int32
}

type ring struct {
	mask   uint64
	cursor atomic.Uint64 // number of events ever claimed; slot = (cursor-1)&mask
	slots  []slot
}

func (r *ring) emit(e Event) {
	idx := r.cursor.Add(1)
	s := &r.slots[(idx-1)&r.mask]
	s.seq.Store(0)
	s.at.Store(e.At)
	s.typ.Store(int32(e.Type))
	s.nodeID.Store(e.Node)
	s.group.Store(e.Group)
	s.a.Store(e.A)
	s.b.Store(e.B)
	s.seq.Store(idx)
}

// Tracer is a per-node bounded event trace: a drop-oldest ring of
// Events plus exact per-type counters that survive wraparound. Emit is
// lock-free and allocation-free; when the tracer is disabled (the
// default) it is a single atomic load. The zero value is a valid,
// disabled tracer.
type Tracer struct {
	on     atomic.Bool
	r      atomic.Pointer[ring]
	counts [NumEventTypes]atomic.Uint64

	mu   sync.Mutex                      // guards subscriber registration only
	subs atomic.Pointer[[]chan struct{}] // copy-on-write list read by Emit
}

// DefaultTraceCap is the ring capacity Enable uses when given zero.
const DefaultTraceCap = 1 << 12

// Enable turns the tracer on with at least the given ring capacity
// (rounded up to a power of two; 0 means DefaultTraceCap). Enabling an
// already-enabled tracer with a new capacity discards buffered events;
// per-type counts persist. Safe to call concurrently with Emit.
func (t *Tracer) Enable(capacity int) {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	n := 1 << bits.Len(uint(capacity-1))
	t.mu.Lock()
	if old := t.r.Load(); old == nil || len(old.slots) != n {
		t.r.Store(&ring{mask: uint64(n - 1), slots: make([]slot, n)})
	}
	t.mu.Unlock()
	t.on.Store(true)
}

// Disable stops event capture. Buffered events remain readable.
func (t *Tracer) Disable() { t.on.Store(false) }

// On reports whether the tracer is capturing. Callers building an
// Event they would pass to Emit should check this first to skip the
// construction entirely.
func (t *Tracer) On() bool { return t.on.Load() }

// Emit records one event if the tracer is enabled: bump the exact
// per-type counter, write the ring slot, and nudge subscribers.
func (t *Tracer) Emit(e Event) {
	if !t.on.Load() {
		return
	}
	if int(e.Type) < len(t.counts) {
		t.counts[e.Type].Add(1)
	}
	if r := t.r.Load(); r != nil {
		r.emit(e)
	}
	if subs := t.subs.Load(); subs != nil {
		for _, ch := range *subs {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	}
}

// Count returns the exact number of events of the given type emitted
// since the tracer was created — immune to ring wraparound.
func (t *Tracer) Count(typ EventType) uint64 {
	if int(typ) >= len(t.counts) {
		return 0
	}
	return t.counts[typ].Load()
}

// Subscribe registers a wake-up channel: every Emit performs a
// non-blocking send on it. The channel is a level trigger for
// condition-based waits — a receiver rechecks its predicate on every
// tick and must tolerate missed ticks coalescing (capacity 1).
// The returned cancel func unregisters the channel.
func (t *Tracer) Subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	return ch, t.SubscribeChan(ch)
}

// SubscribeChan registers a caller-supplied wake-up channel, so one
// channel can watch several tracers at once (a cluster-wide condition
// wait). The channel should be buffered; sends are non-blocking and
// coalesce. The returned cancel func unregisters it. The channel is
// never closed by the tracer — an Emit racing the cancel may still be
// holding a reference to it.
func (t *Tracer) SubscribeChan(ch chan struct{}) func() {
	t.mu.Lock()
	var cur []chan struct{}
	if p := t.subs.Load(); p != nil {
		cur = *p
	}
	next := make([]chan struct{}, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = ch
	t.subs.Store(&next)
	t.mu.Unlock()
	cancel := func() {
		t.mu.Lock()
		defer t.mu.Unlock()
		p := t.subs.Load()
		if p == nil {
			return
		}
		out := make([]chan struct{}, 0, len(*p))
		for _, c := range *p {
			if c != ch {
				out = append(out, c)
			}
		}
		t.subs.Store(&out)
	}
	return cancel
}

// Snapshot returns the buffered events, oldest first. Slots being
// overwritten mid-read are detected by their seqlock and skipped, so
// the result may be shorter than the ring under concurrent emission
// but never contains a torn record.
func (t *Tracer) Snapshot() []Event {
	r := t.r.Load()
	if r == nil {
		return nil
	}
	cur := r.cursor.Load()
	size := uint64(len(r.slots))
	start := uint64(1)
	if cur > size {
		start = cur - size + 1
	}
	out := make([]Event, 0, cur-start+1)
	for idx := start; idx <= cur; idx++ {
		s := &r.slots[(idx-1)&r.mask]
		if s.seq.Load() != idx {
			continue
		}
		e := Event{
			At:    s.at.Load(),
			Type:  EventType(s.typ.Load()),
			Node:  s.nodeID.Load(),
			Group: s.group.Load(),
			A:     s.a.Load(),
			B:     s.b.Load(),
		}
		if s.seq.Load() != idx {
			continue // overwritten while reading: torn, drop it
		}
		out = append(out, e)
	}
	return out
}

// Format renders a slice of events one per line, for failure dumps.
func Format(events []Event) string {
	var b strings.Builder
	for _, e := range events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// Since filters events at or after the given instant — handy for
// scoping a dump to the failing phase of a test.
func Since(events []Event, at time.Time) []Event {
	ns := at.UnixNano()
	out := events[:0:0]
	for _, e := range events {
		if e.At >= ns {
			out = append(out, e)
		}
	}
	return out
}

package obs

import (
	"fmt"
	"sync/atomic"
)

// GaugeID names one of the fixed gauges every node carries.
type GaugeID int

const (
	// GaugeSessHolders is the number of critical-section holders the
	// node's lock manager currently has across all locks it roots —
	// under session locks, several same-session holders count at once,
	// so the high-water mark proves concurrent entering actually
	// happened.
	GaugeSessHolders GaugeID = iota

	NumGauges // sentinel; always last
)

var gaugeNames = [NumGauges]string{
	GaugeSessHolders: "sess_holders",
}

func (id GaugeID) String() string {
	if id >= 0 && id < NumGauges {
		return gaugeNames[id]
	}
	return fmt.Sprintf("gauge(%d)", int(id))
}

// Gauge is a lock-free instantaneous level with a high-water mark. Add
// is allocation-free and safe from any goroutine; the zero value is
// ready to use.
type Gauge struct {
	cur atomic.Int64
	max atomic.Int64
}

// Add moves the gauge by d and updates the high-water mark.
func (g *Gauge) Add(d int64) {
	v := g.cur.Add(d)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.cur.Load() }

// Max returns the highest level ever observed.
func (g *Gauge) Max() int64 { return g.max.Load() }

// HistID names one of the fixed latency histograms every node carries.
type HistID int

const (
	// HistLockAcquire is the wall time from sending a lock request to
	// holding the grant, for blocking (non-speculative) acquires.
	HistLockAcquire HistID = iota
	// HistSpecSection is the duration of a speculative critical
	// section: from entering the body early to the commit-or-abort
	// decision, the window the paper's optimism overlaps with request
	// latency.
	HistSpecSection
	// HistRollback is the cost of undoing a failed speculation:
	// save-set restore plus insharing resume.
	HistRollback
	// HistBatchFlush is how long coalesced writes sat in the member
	// batch queue before flushing (first enqueue to flush).
	HistBatchFlush
	// HistQuorumWait is how long the root deferred a lock handoff or
	// sync barrier waiting for the quorum-ack commit watermark.
	HistQuorumWait
	// HistFailover is election start to promotion on the winning
	// candidate: how long the group ran headless.
	HistFailover

	NumHists // sentinel; always last
)

var histNames = [NumHists]string{
	HistLockAcquire: "lock_acquire",
	HistSpecSection: "spec_section",
	HistRollback:    "rollback",
	HistBatchFlush:  "batch_flush",
	HistQuorumWait:  "quorum_wait",
	HistFailover:    "failover",
}

func (id HistID) String() string {
	if id >= 0 && id < NumHists {
		return histNames[id]
	}
	return fmt.Sprintf("hist(%d)", int(id))
}

// Metrics bundles one node's histograms and tracer. The zero value is
// ready to use (histograms always-on, tracer disabled). Pointer
// receivers everywhere; a Metrics must not be copied once recorded to.
type Metrics struct {
	hists  [NumHists]Hist
	gauges [NumGauges]Gauge
	Trace  Tracer
}

// Hist returns the histogram with the given id for direct recording.
func (m *Metrics) Hist(id HistID) *Hist { return &m.hists[id] }

// Gauge returns the gauge with the given id for direct recording.
func (m *Metrics) Gauge(id GaugeID) *Gauge { return &m.gauges[id] }

// Snapshot captures all histograms and the per-type event counts. The
// trace ring itself is snapshotted separately (Trace.Snapshot) since
// it is bulky and usually only wanted on failure.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	for i := range m.hists {
		s.Hists[i] = m.hists[i].Snapshot()
	}
	for i := range s.Events {
		s.Events[i] = m.Trace.Count(EventType(i))
	}
	for i := range s.Gauges {
		s.Gauges[i] = GaugeSnapshot{Value: m.gauges[i].Value(), Max: m.gauges[i].Max()}
	}
	return s
}

// GaugeSnapshot is one gauge's level and high-water mark at snapshot
// time.
type GaugeSnapshot struct {
	Value int64
	Max   int64
}

// Merge folds another gauge snapshot in: levels add (each node's share
// of a cluster-wide level), high-water marks take the max.
func (g *GaugeSnapshot) Merge(o GaugeSnapshot) {
	g.Value += o.Value
	if o.Max > g.Max {
		g.Max = o.Max
	}
}

// TransportStats is a point-in-time copy of the transport layer's
// counters, filled in by the cluster when the underlying network exposes
// them (the TCP transport does; in-process delivery has nothing to
// count). Everything is cumulative since the network came up.
type TransportStats struct {
	// FramesSent and BytesSent count wire frames (a batch frame is one)
	// and encoded bytes shipped to remote peers.
	FramesSent uint64
	BytesSent  uint64
	// Writevs counts vectored write batches: each is one drained outbox
	// shipped by a single writev, so FramesSent/Writevs is the
	// frames-per-syscall amortization of the send path.
	Writevs uint64
	// FramesRecv counts wire frames decoded off inbound connections.
	FramesRecv uint64
	// DecodeErrors counts inbound frames the codec rejected (checksum,
	// type, or framing violations — transport-level corruption).
	DecodeErrors uint64
	// ConnResets counts connections the reader proactively reset because
	// a decode error left the stream framing untrustworthy; the remote
	// redials and retry/NACK recovery repairs the gap.
	ConnResets uint64
	// SendDrops counts frames shed from a full peer outbox (drop-oldest
	// bounding); the GWC layer recovers them like network loss.
	SendDrops uint64
	// Dials counts successful outbound connection establishments;
	// LinksAdopted counts inbound connections adopted as the shared
	// duplex link to a peer instead of dialing one back.
	Dials        uint64
	LinksAdopted uint64
}

// Merge folds another transport snapshot in (all counters sum).
func (t *TransportStats) Merge(o TransportStats) {
	t.FramesSent += o.FramesSent
	t.BytesSent += o.BytesSent
	t.Writevs += o.Writevs
	t.FramesRecv += o.FramesRecv
	t.DecodeErrors += o.DecodeErrors
	t.ConnResets += o.ConnResets
	t.SendDrops += o.SendDrops
	t.Dials += o.Dials
	t.LinksAdopted += o.LinksAdopted
}

// MetricsSnapshot is a point-in-time copy of a node's Metrics,
// mergeable across nodes.
type MetricsSnapshot struct {
	Hists     [NumHists]HistSnapshot
	Events    [NumEventTypes]uint64
	Gauges    [NumGauges]GaugeSnapshot
	Transport TransportStats
}

// Merge folds another snapshot into this one.
func (s *MetricsSnapshot) Merge(o MetricsSnapshot) {
	for i := range s.Hists {
		s.Hists[i].Merge(o.Hists[i])
	}
	for i := range s.Events {
		s.Events[i] += o.Events[i]
	}
	for i := range s.Gauges {
		s.Gauges[i].Merge(o.Gauges[i])
	}
	s.Transport.Merge(o.Transport)
}

package obs

import "fmt"

// HistID names one of the fixed latency histograms every node carries.
type HistID int

const (
	// HistLockAcquire is the wall time from sending a lock request to
	// holding the grant, for blocking (non-speculative) acquires.
	HistLockAcquire HistID = iota
	// HistSpecSection is the duration of a speculative critical
	// section: from entering the body early to the commit-or-abort
	// decision, the window the paper's optimism overlaps with request
	// latency.
	HistSpecSection
	// HistRollback is the cost of undoing a failed speculation:
	// save-set restore plus insharing resume.
	HistRollback
	// HistBatchFlush is how long coalesced writes sat in the member
	// batch queue before flushing (first enqueue to flush).
	HistBatchFlush
	// HistQuorumWait is how long the root deferred a lock handoff or
	// sync barrier waiting for the quorum-ack commit watermark.
	HistQuorumWait
	// HistFailover is election start to promotion on the winning
	// candidate: how long the group ran headless.
	HistFailover

	NumHists // sentinel; always last
)

var histNames = [NumHists]string{
	HistLockAcquire: "lock_acquire",
	HistSpecSection: "spec_section",
	HistRollback:    "rollback",
	HistBatchFlush:  "batch_flush",
	HistQuorumWait:  "quorum_wait",
	HistFailover:    "failover",
}

func (id HistID) String() string {
	if id >= 0 && id < NumHists {
		return histNames[id]
	}
	return fmt.Sprintf("hist(%d)", int(id))
}

// Metrics bundles one node's histograms and tracer. The zero value is
// ready to use (histograms always-on, tracer disabled). Pointer
// receivers everywhere; a Metrics must not be copied once recorded to.
type Metrics struct {
	hists [NumHists]Hist
	Trace Tracer
}

// Hist returns the histogram with the given id for direct recording.
func (m *Metrics) Hist(id HistID) *Hist { return &m.hists[id] }

// Snapshot captures all histograms and the per-type event counts. The
// trace ring itself is snapshotted separately (Trace.Snapshot) since
// it is bulky and usually only wanted on failure.
func (m *Metrics) Snapshot() MetricsSnapshot {
	var s MetricsSnapshot
	for i := range m.hists {
		s.Hists[i] = m.hists[i].Snapshot()
	}
	for i := range s.Events {
		s.Events[i] = m.Trace.Count(EventType(i))
	}
	return s
}

// MetricsSnapshot is a point-in-time copy of a node's Metrics,
// mergeable across nodes.
type MetricsSnapshot struct {
	Hists  [NumHists]HistSnapshot
	Events [NumEventTypes]uint64
}

// Merge folds another snapshot into this one.
func (s *MetricsSnapshot) Merge(o MetricsSnapshot) {
	for i := range s.Hists {
		s.Hists[i].Merge(o.Hists[i])
	}
	for i := range s.Events {
		s.Events[i] += o.Events[i]
	}
}

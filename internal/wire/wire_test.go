package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Message{
		{Type: TUpdate, Group: 1, Src: 2, Origin: 2, Var: 7, Val: 42, Guarded: true},
		{Type: TLockReq, Group: 3, Src: 9, Origin: 9, Lock: 1, Seq: 4, Deadline: 1 << 50},
		{Type: TLockReq, Group: 3, Src: 9, Origin: 9, Lock: 1, Seq: 4, Session: 2},
		{Type: TLockRel, Group: 3, Src: 9, Origin: 9, Lock: 1},
		{Type: TLockRel, Group: 3, Src: 9, Origin: 9, Lock: 1, Var: 6, Session: 1},
		{Type: TSeqUpdate, Group: 1, Src: 0, Origin: 5, Seq: 1 << 40, Var: 3, Val: -1},
		{Type: TSeqLock, Group: 2, Src: 0, Seq: 77, Lock: 4, Val: -1 << 60},
		{Type: TSeqLock, Group: 2, Src: 0, Seq: 78, Lock: 4, Val: 3, Var: 9, Session: 7},
		{Type: TNack, Group: 1, Src: 6, Seq: 100, Val: 110},
		{Type: THeartbeat, Group: 2, Src: 0, Seq: 55, Val: 0, Epoch: 3},
		{Type: TSnapReq, Group: 2, Src: 4, Epoch: 3},
		{Type: TSnapVar, Group: 2, Src: 0, Seq: 55, Var: 9, Val: 17, Epoch: 3},
		{Type: TSnapLock, Group: 2, Src: 0, Seq: 55, Lock: 1, Var: 6, Val: 5, Epoch: 3},
		{Type: TSnapLock, Group: 2, Src: 0, Seq: 55, Lock: 1, Var: 6, Val: 5, Epoch: 3, Session: 4},
		{Type: TSnapDone, Group: 2, Src: 0, Seq: 55, Epoch: 3},
		{Type: TLockCancel, Group: 2, Src: 4, Origin: 4, Lock: 1, Epoch: 3},
		{Type: TAck, Group: 2, Src: 4, Seq: 120, Epoch: 3},
		{Type: TJoinReq, Group: 2, Src: 4},
		{Type: TJoinAck, Group: 2, Src: 0, Seq: 120, Val: 1, Epoch: 3},
		{Type: TSyncReq, Group: 2, Src: 4, Seq: 9, Epoch: 3},
		{Type: TSyncAck, Group: 2, Src: 0, Seq: 9, Epoch: 3},
		{Type: TDigestReq, Group: 2, Src: 0, Seq: 130, Val: -1 << 55, Epoch: 3},
		{Type: TDigestReq, Group: 2, Src: 0, Seq: 130, Val: 7, Var: 1, Epoch: 3},
		{Type: TDigestAck, Group: 2, Src: 4, Seq: 129, Val: 1 << 62, Epoch: 3},
		{Type: TLeaseGrant, Group: 2, Src: 0, Origin: 7, Lock: 1, Var: 6, Deadline: int64(5e9), Epoch: 3},
		{Type: TLeaseGrant, Group: 2, Src: 0, Origin: 7, Lock: 1, Var: 6, Epoch: 3}, // revoke demand: zero deadline
		{Type: TLeaseRet, Group: 2, Src: 4, Origin: 4, Lock: 1, Var: 6, Epoch: 3},
		{Type: THandoff, Group: 2, Src: 4, Origin: 9, Seq: 55, Lock: 1, Var: 7, Val: 3, Epoch: 3},
	}
	for _, m := range tests {
		buf := Encode(nil, m)
		if len(buf) != EncodedSize {
			t.Errorf("%v: encoded %d bytes, want %d", m.Type, len(buf), EncodedSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !Equal(got, m) {
			t.Errorf("round trip changed message:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Every scalar-encoded type (all but TBatch, which has its own tests).
	kinds := []Type{
		TUpdate, TLockReq, TLockRel, TSeqUpdate, TSeqLock, TNack,
		THeartbeat, TSnapReq, TSnapVar, TSnapLock, TSnapDone, TLockCancel,
		TAck, TJoinReq, TJoinAck, TSyncReq, TSyncAck, TDigestReq, TDigestAck,
		TLeaseGrant, TLeaseRet, THandoff,
	}
	prop := func(g uint32, src, origin int32, seq uint64, v, l uint32, val int64, guarded bool, kind uint8, epoch uint32, deadline int64, session uint32) bool {
		m := Message{
			Type:     kinds[int(kind)%len(kinds)],
			Group:    g,
			Src:      src,
			Origin:   origin,
			Seq:      seq,
			Var:      v,
			Lock:     l,
			Val:      val,
			Guarded:  guarded,
			Epoch:    epoch,
			Deadline: deadline,
			Session:  session,
		}
		got, err := Decode(Encode(nil, m))
		return err == nil && Equal(got, m)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("Decode of short buffer succeeded, want error")
	}
	bad := Encode(nil, Message{Type: TUpdate})
	bad[0] = 0
	if _, err := Decode(bad); err == nil {
		t.Error("Decode of zero type succeeded, want error")
	}
	bad[0] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("Decode of unknown type succeeded, want error")
	}
}

// testBatch builds a representative batch frame for the codec tests.
func testBatch() Message {
	return Message{
		Type:  TBatch,
		Group: 7,
		Src:   3,
		Epoch: 2,
		Val:   3,
		Batch: []Message{
			{Type: TUpdate, Group: 7, Src: 3, Origin: 3, Var: 1, Val: 10, Epoch: 2},
			{Type: TUpdate, Group: 7, Src: 3, Origin: 3, Var: 2, Val: -20, Guarded: true, Seq: 5, Epoch: 2},
			{Type: TSeqLock, Group: 7, Src: 0, Seq: 99, Lock: 4, Val: 6, Epoch: 2},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	m := testBatch()
	buf := Encode(nil, m)
	if want := EncodedLen(m); len(buf) != want {
		t.Fatalf("encoded %d bytes, want %d", len(buf), want)
	}
	got, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m) {
		t.Errorf("round trip changed batch:\n got %+v\nwant %+v", got, m)
	}

	// And through the stream codec.
	var stream bytes.Buffer
	if err := WriteTo(&stream, m); err != nil {
		t.Fatal(err)
	}
	tail := Message{Type: THeartbeat, Group: 7, Src: 0, Epoch: 2}
	if err := WriteTo(&stream, tail); err != nil {
		t.Fatal(err)
	}
	got, err = ReadFrom(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, m) {
		t.Errorf("stream round trip changed batch:\n got %+v\nwant %+v", got, m)
	}
	got, err = ReadFrom(&stream)
	if err != nil || !Equal(got, tail) {
		t.Errorf("message after batch: got %+v, err %v", got, err)
	}
}

func TestBatchDecodeErrors(t *testing.T) {
	full := Encode(nil, testBatch())

	// Truncated payload: any prefix that cuts into the batch body.
	for _, cut := range []int{EncodedSize, EncodedSize + 1, len(full) - 1} {
		if _, err := Decode(full[:cut]); err == nil {
			t.Errorf("Decode of batch truncated to %d bytes succeeded, want error", cut)
		}
	}

	// Oversized and non-positive length prefixes.
	for _, count := range []int64{0, -1, MaxBatch + 1, 1 << 40} {
		bad := append([]byte(nil), full...)
		binary.BigEndian.PutUint64(bad[30:], uint64(count))
		if _, err := Decode(bad); err == nil {
			t.Errorf("Decode of batch with count %d succeeded, want error", count)
		}
	}

	// Nested batch frame.
	nested := append([]byte(nil), full...)
	nested[EncodedSize] = byte(TBatch)
	if _, err := Decode(nested); err == nil {
		t.Error("Decode of nested batch succeeded, want error")
	}

	// Inner message for a different group.
	alien := append([]byte(nil), full...)
	binary.BigEndian.PutUint32(alien[EncodedSize+2:], 999)
	if _, err := Decode(alien); err == nil {
		t.Error("Decode of cross-group batch succeeded, want error")
	}

	// A truncated stream read must error, not hang or panic.
	if _, err := ReadFrom(bytes.NewReader(full[:len(full)-5])); err == nil {
		t.Error("ReadFrom of truncated batch succeeded, want error")
	}
	// An oversized length prefix must be rejected before any allocation.
	huge := append([]byte(nil), full[:EncodedSize]...)
	binary.BigEndian.PutUint64(huge[30:], 1<<50)
	if _, err := ReadFrom(bytes.NewReader(huge)); err == nil {
		t.Error("ReadFrom of oversized batch header succeeded, want error")
	}
}

// FuzzDecode feeds arbitrary bytes to the codec: it must return errors
// for malformed input — including truncated and oversized batch frames —
// and never panic; valid decodes must re-encode to an equal message.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(nil, Message{Type: TUpdate, Group: 1, Var: 2, Val: 3}))
	f.Add(Encode(nil, testBatch()))
	f.Add(Encode(nil, testBatch())[:EncodedSize+7])
	f.Add(make([]byte, EncodedSize*3))
	// Reign-control frames: the quorum-ack watermark and the rejoin and
	// sync handshakes ride on these, so corpus coverage starts there too.
	f.Add(Encode(nil, Message{Type: TAck, Group: 2, Src: 4, Seq: 120, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TJoinReq, Group: 2, Src: 4}))
	f.Add(Encode(nil, Message{Type: TJoinAck, Group: 2, Src: 0, Seq: 120, Val: 1, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TSyncReq, Group: 2, Src: 4, Seq: 9, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TSyncAck, Group: 2, Src: 0, Seq: 9, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TDigestReq, Group: 2, Src: 0, Seq: 130, Val: -1, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TDigestAck, Group: 2, Src: 4, Seq: 129, Val: 55, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TLeaseGrant, Group: 2, Src: 0, Origin: 7, Lock: 1, Var: 6, Deadline: int64(5e9), Epoch: 3}))
	f.Add(Encode(nil, Message{Type: TLeaseRet, Group: 2, Src: 4, Origin: 4, Lock: 1, Var: 6, Epoch: 3}))
	f.Add(Encode(nil, Message{Type: THandoff, Group: 2, Src: 4, Origin: 9, Seq: 55, Lock: 1, Var: 7, Val: 3, Epoch: 3}))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		got, err := Decode(Encode(nil, m))
		if err != nil {
			t.Fatalf("re-decode of valid message failed: %v", err)
		}
		if !Equal(got, m) {
			t.Fatalf("re-encode changed message:\n got %+v\nwant %+v", got, m)
		}
		// The stream reader must agree with the flat decoder.
		sm, err := ReadFrom(bytes.NewReader(data))
		if err != nil || !Equal(sm, m) {
			t.Fatalf("ReadFrom disagrees with Decode: %+v (err %v) vs %+v", sm, err, m)
		}
	})
}

// FuzzReignFrames fuzzes the reign-control frames by field: the quorum
// ack, the rejoin handshake (TJoinReq/TJoinAck), the durable-write
// sync barrier (TSyncReq/TSyncAck), and the anti-entropy sweep
// (TDigestReq/TDigestAck). Every field combination must survive both
// the flat and the stream codec unchanged — these frames carry
// sequence watermarks, epoch fences, and state digests, so a single
// corrupted field silently un-fences a reign or fakes a divergence
// verdict — and a corrupted type byte, a flipped checksum, or a
// truncated frame must never decode at all.
func FuzzReignFrames(f *testing.F) {
	f.Add(uint8(0), uint32(2), int32(4), uint64(120), int64(0), uint32(3))
	f.Add(uint8(2), uint32(1), int32(0), uint64(1)<<40, int64(1), uint32(7))
	f.Add(uint8(4), uint32(9), int32(-1), uint64(9), int64(-5), uint32(0))
	kinds := []Type{
		TAck, TJoinReq, TJoinAck, TSyncReq, TSyncAck, TDigestReq, TDigestAck,
		// The lease/handoff frames are reign-fenced control traffic too:
		// a lease grant or a handoff notice that survives corruption
		// would mint a phantom exclusive holder.
		TLeaseGrant, TLeaseRet, THandoff,
	}
	f.Fuzz(func(t *testing.T, kind uint8, group uint32, src int32, seq uint64, val int64, epoch uint32) {
		m := Message{
			Type:  kinds[int(kind)%len(kinds)],
			Group: group,
			Src:   src,
			Seq:   seq,
			Val:   val,
			Epoch: epoch,
		}
		buf := Encode(nil, m)
		if len(buf) != EncodedSize {
			t.Fatalf("%v: encoded %d bytes, want %d", m.Type, len(buf), EncodedSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !Equal(got, m) {
			t.Fatalf("round trip changed frame:\n got %+v\nwant %+v", got, m)
		}
		var stream bytes.Buffer
		if err := WriteTo(&stream, m); err != nil {
			t.Fatal(err)
		}
		got, err = ReadFrom(&stream)
		if err != nil || !Equal(got, m) {
			t.Fatalf("stream round trip: %+v (err %v), want %+v", got, err, m)
		}
		bad := append([]byte(nil), buf...)
		bad[0] = 250
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decode of corrupted type byte succeeded")
		}
		bad = append(bad[:0], buf...)
		bad[len(bad)-1] ^= 0x01 // flip one CRC bit
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decode of flipped-CRC frame succeeded")
		}
		if _, err := Decode(buf[:len(buf)-1]); err == nil {
			t.Fatalf("decode of truncated frame succeeded")
		}
	})
}

// FuzzLeaseFrames fuzzes the lease/handoff frames by field, over the
// full set of fields they actually use: Origin carries a token or
// node, Var a grant epoch, Seq a sequence watermark (THandoff) or
// nothing, Deadline a TTL (grant), zero (revoke demand), or a packed
// handoff hint (on grants), and Session stays zero — exclusive-only
// protocols. Beyond the round trip, every frame must fail to decode
// with a flipped CRC bit or a truncated buffer, and the layout must be
// byte-identical to the established lock frames (same offsets, only
// the type byte and the CRC trailer differ) so the new types cannot
// have grown a divergent encoding.
func FuzzLeaseFrames(f *testing.F) {
	f.Add(uint8(0), uint32(2), int32(0), int32(7), uint64(0), uint32(1), uint32(6), int64(0), int64(5e9), uint32(3))
	f.Add(uint8(1), uint32(1), int32(4), int32(4), uint64(9), uint32(0), uint32(8), int64(0), int64(0), uint32(7))
	f.Add(uint8(2), uint32(9), int32(4), int32(9), uint64(1)<<40, uint32(2), uint32(1<<31), int64(-3), int64(1)<<33|5, uint32(0))
	kinds := []Type{TLeaseGrant, TLeaseRet, THandoff}
	f.Fuzz(func(t *testing.T, kind uint8, group uint32, src, origin int32, seq uint64, lock, v uint32, val, deadline int64, epoch uint32) {
		m := Message{
			Type:     kinds[int(kind)%len(kinds)],
			Group:    group,
			Src:      src,
			Origin:   origin,
			Seq:      seq,
			Lock:     lock,
			Var:      v,
			Val:      val,
			Deadline: deadline,
			Epoch:    epoch,
		}
		buf := Encode(nil, m)
		if len(buf) != EncodedSize {
			t.Fatalf("%v: encoded %d bytes, want %d", m.Type, len(buf), EncodedSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !Equal(got, m) {
			t.Fatalf("round trip changed frame:\n got %+v\nwant %+v", got, m)
		}
		if got.Session != 0 {
			t.Fatalf("session field materialized from nowhere: %d", got.Session)
		}
		var stream bytes.Buffer
		if err := WriteTo(&stream, m); err != nil {
			t.Fatal(err)
		}
		got, err = ReadFrom(&stream)
		if err != nil || !Equal(got, m) {
			t.Fatalf("stream round trip: %+v (err %v), want %+v", got, err, m)
		}
		// Corruption must never decode.
		bad := append([]byte(nil), buf...)
		bad[len(bad)-1] ^= 0x01 // flip one CRC bit
		if _, err := Decode(bad); err == nil {
			t.Fatalf("decode of flipped-CRC frame succeeded")
		}
		for _, cut := range []int{len(buf) - 1, len(buf) / 2, 1} {
			if _, err := Decode(buf[:cut]); err == nil {
				t.Fatalf("decode of frame truncated to %d bytes succeeded", cut)
			}
		}
		// Layout compatibility: re-encode the same fields as an
		// established lock frame; everything but the type byte and the
		// CRC trailer must match byte for byte.
		ref := m
		ref.Type = TSeqLock
		refBuf := Encode(nil, ref)
		if !bytes.Equal(buf[1:len(buf)-4], refBuf[1:len(refBuf)-4]) {
			t.Fatalf("%v payload layout diverged from TSeqLock:\n got  %x\n want %x",
				m.Type, buf[1:len(buf)-4], refBuf[1:len(refBuf)-4])
		}
	})
}

// TestChecksumCatchesEveryBitFlip flips every single bit of an encoded
// scalar frame and of a batch frame — payload and CRC trailer alike —
// and requires the decoder to reject each corruption. This is the
// wire-level half of the end-to-end integrity story: any one-bit
// transport fault surfaces as a decode error and is recovered by the
// NACK/retransmit path instead of being applied.
func TestChecksumCatchesEveryBitFlip(t *testing.T) {
	frames := [][]byte{
		Encode(nil, Message{Type: TSeqUpdate, Group: 1, Src: 0, Origin: 5, Seq: 9, Var: 3, Val: -77, Epoch: 2}),
		Encode(nil, testBatch()),
	}
	for fi, frame := range frames {
		for bit := 0; bit < len(frame)*8; bit++ {
			bad := append([]byte(nil), frame...)
			bad[bit/8] ^= 1 << (bit % 8)
			if _, err := Decode(bad); err == nil {
				t.Fatalf("frame %d: decode succeeded with bit %d flipped", fi, bit)
			}
		}
		// Unflipped control: the frame itself must decode.
		if _, err := Decode(frame); err != nil {
			t.Fatalf("frame %d: control decode failed: %v", fi, err)
		}
	}
}

// TestDigestFrameRoundTrip pins the anti-entropy frames through both
// codecs, including the repair-directive Var bit and full-width
// digest values (the digest is a uint64 carried in the int64 Val).
func TestDigestFrameRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: TDigestReq, Group: 3, Src: 0, Seq: 1 << 40, Val: int64(^uint64(0) >> 1), Epoch: 9},
		{Type: TDigestReq, Group: 3, Src: 0, Seq: 12, Val: -1, Var: 1, Epoch: 9},
		{Type: TDigestAck, Group: 3, Src: 2, Seq: 11, Val: int64(-2401053092342382579), Epoch: 9}, // 0xdeadbeefcafef00d reinterpreted
	}
	var stream bytes.Buffer
	for _, m := range msgs {
		got, err := Decode(Encode(nil, m))
		if err != nil || !Equal(got, m) {
			t.Fatalf("flat round trip: got %+v (err %v), want %+v", got, err, m)
		}
		if err := WriteTo(&stream, m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := ReadFrom(&stream)
		if err != nil || !Equal(got, want) {
			t.Fatalf("stream round trip: got %+v (err %v), want %+v", got, err, want)
		}
	}
}

// FuzzSessionFrames fuzzes the lock-protocol frames that carry a
// session id: requests, grants/leaves/closes, releases, and snapshot
// holder reports. The session field rides at the end of the fixed
// layout, so this pins that it survives both codecs for every lock
// frame kind and never perturbs the neighbouring fields.
func FuzzSessionFrames(f *testing.F) {
	f.Add(uint8(0), uint32(2), int32(4), uint64(12), uint32(1), int64(5), uint32(3), uint32(1))
	f.Add(uint8(1), uint32(1), int32(0), uint64(1)<<40, uint32(9), int64(-6), uint32(7), uint32(0))
	f.Add(uint8(3), uint32(9), int32(-1), uint64(9), uint32(0), int64(-1)<<62, uint32(0), uint32(1<<31))
	kinds := []Type{TLockReq, TSeqLock, TLockRel, TSnapLock, TLockCancel}
	f.Fuzz(func(t *testing.T, kind uint8, group uint32, src int32, seq uint64, lock uint32, val int64, epoch, session uint32) {
		m := Message{
			Type:    kinds[int(kind)%len(kinds)],
			Group:   group,
			Src:     src,
			Origin:  src,
			Seq:     seq,
			Lock:    lock,
			Val:     val,
			Epoch:   epoch,
			Session: session,
		}
		buf := Encode(nil, m)
		if len(buf) != EncodedSize {
			t.Fatalf("%v: encoded %d bytes, want %d", m.Type, len(buf), EncodedSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if !Equal(got, m) {
			t.Fatalf("round trip changed frame:\n got %+v\nwant %+v", got, m)
		}
		if got.Session != session {
			t.Fatalf("session field corrupted: got %d, want %d", got.Session, session)
		}
		var stream bytes.Buffer
		if err := WriteTo(&stream, m); err != nil {
			t.Fatal(err)
		}
		got, err = ReadFrom(&stream)
		if err != nil || !Equal(got, m) {
			t.Fatalf("stream round trip: %+v (err %v), want %+v", got, err, m)
		}
	})
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: TUpdate, Group: 1, Src: 1, Origin: 1, Var: 2, Val: 3},
		{Type: TSeqLock, Group: 1, Src: 0, Seq: 9, Lock: 0, Val: 5},
		{Type: TNack, Group: 1, Src: 4, Seq: 10, Val: 20},
	}
	for _, m := range msgs {
		if err := WriteTo(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if !Equal(got, want) {
			t.Errorf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrom(&buf); err != io.EOF {
		t.Errorf("read past end: err = %v, want io.EOF", err)
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{TUpdate, "update"},
		{TLockReq, "lock-req"},
		{TLockRel, "lock-rel"},
		{TSeqUpdate, "seq-update"},
		{TSeqLock, "seq-lock"},
		{TNack, "nack"},
		{THeartbeat, "heartbeat"},
		{TSnapReq, "snap-req"},
		{TSnapVar, "snap-var"},
		{TSnapLock, "snap-lock"},
		{TSnapDone, "snap-done"},
		{TLockCancel, "lock-cancel"},
		{TBatch, "batch"},
		{TAck, "ack"},
		{TJoinReq, "join-req"},
		{TJoinAck, "join-ack"},
		{TSyncReq, "sync-req"},
		{TSyncAck, "sync-ack"},
		{TDigestReq, "digest-req"},
		{TDigestAck, "digest-ack"},
		{TLeaseGrant, "lease-grant"},
		{TLeaseRet, "lease-ret"},
		{THandoff, "handoff"},
		{Type(99), "type(99)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

package wire

import (
	"bytes"
	"io"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tests := []Message{
		{Type: TUpdate, Group: 1, Src: 2, Origin: 2, Var: 7, Val: 42, Guarded: true},
		{Type: TLockReq, Group: 3, Src: 9, Origin: 9, Lock: 1},
		{Type: TLockRel, Group: 3, Src: 9, Origin: 9, Lock: 1},
		{Type: TSeqUpdate, Group: 1, Src: 0, Origin: 5, Seq: 1 << 40, Var: 3, Val: -1},
		{Type: TSeqLock, Group: 2, Src: 0, Seq: 77, Lock: 4, Val: -1 << 60},
		{Type: TNack, Group: 1, Src: 6, Seq: 100, Val: 110},
		{Type: THeartbeat, Group: 2, Src: 0, Seq: 55, Val: 0, Epoch: 3},
		{Type: TSnapReq, Group: 2, Src: 4, Epoch: 3},
		{Type: TSnapVar, Group: 2, Src: 0, Seq: 55, Var: 9, Val: 17, Epoch: 3},
		{Type: TSnapLock, Group: 2, Src: 0, Seq: 55, Lock: 1, Var: 6, Val: 5, Epoch: 3},
		{Type: TSnapDone, Group: 2, Src: 0, Seq: 55, Epoch: 3},
		{Type: TLockCancel, Group: 2, Src: 4, Origin: 4, Lock: 1, Epoch: 3},
	}
	for _, m := range tests {
		buf := Encode(nil, m)
		if len(buf) != EncodedSize {
			t.Errorf("%v: encoded %d bytes, want %d", m.Type, len(buf), EncodedSize)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%v: decode: %v", m.Type, err)
		}
		if got != m {
			t.Errorf("round trip changed message:\n got %+v\nwant %+v", got, m)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	prop := func(g uint32, src, origin int32, seq uint64, v, l uint32, val int64, guarded bool, kind uint8, epoch uint32) bool {
		m := Message{
			Type:    Type(kind%12) + TUpdate,
			Group:   g,
			Src:     src,
			Origin:  origin,
			Seq:     seq,
			Var:     v,
			Lock:    l,
			Val:     val,
			Guarded: guarded,
			Epoch:   epoch,
		}
		got, err := Decode(Encode(nil, m))
		return err == nil && got == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, EncodedSize-1)); err == nil {
		t.Error("Decode of short buffer succeeded, want error")
	}
	bad := Encode(nil, Message{Type: TUpdate})
	bad[0] = 0
	if _, err := Decode(bad); err == nil {
		t.Error("Decode of zero type succeeded, want error")
	}
	bad[0] = 200
	if _, err := Decode(bad); err == nil {
		t.Error("Decode of unknown type succeeded, want error")
	}
}

func TestStreamReadWrite(t *testing.T) {
	var buf bytes.Buffer
	msgs := []Message{
		{Type: TUpdate, Group: 1, Src: 1, Origin: 1, Var: 2, Val: 3},
		{Type: TSeqLock, Group: 1, Src: 0, Seq: 9, Lock: 0, Val: 5},
		{Type: TNack, Group: 1, Src: 4, Seq: 10, Val: 20},
	}
	for _, m := range msgs {
		if err := WriteTo(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("message %d: %v", i, err)
		}
		if got != want {
			t.Errorf("message %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadFrom(&buf); err != io.EOF {
		t.Errorf("read past end: err = %v, want io.EOF", err)
	}
}

func TestTypeString(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{TUpdate, "update"},
		{TLockReq, "lock-req"},
		{TLockRel, "lock-rel"},
		{TSeqUpdate, "seq-update"},
		{TSeqLock, "seq-lock"},
		{TNack, "nack"},
		{THeartbeat, "heartbeat"},
		{TSnapReq, "snap-req"},
		{TSnapVar, "snap-var"},
		{TSnapLock, "snap-lock"},
		{TSnapDone, "snap-done"},
		{TLockCancel, "lock-cancel"},
		{Type(99), "type(99)"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math/rand"
	"testing"
)

// refEncodeOne is the pre-flat-codec reference encoder, kept verbatim:
// stage the fixed layout in a stack array, checksum it, append-copy it
// out. The flat codec must stay byte-identical to it forever — the wire
// format is the compatibility surface between node versions.
func refEncodeOne(buf []byte, m Message) []byte {
	var tmp [EncodedSize]byte
	tmp[0] = byte(m.Type)
	if m.Guarded {
		tmp[1] = 1
	}
	binary.BigEndian.PutUint32(tmp[2:], m.Group)
	binary.BigEndian.PutUint32(tmp[6:], uint32(m.Src))
	binary.BigEndian.PutUint32(tmp[10:], uint32(m.Origin))
	binary.BigEndian.PutUint64(tmp[14:], m.Seq)
	binary.BigEndian.PutUint32(tmp[22:], m.Var)
	binary.BigEndian.PutUint32(tmp[26:], m.Lock)
	binary.BigEndian.PutUint64(tmp[30:], uint64(m.Val))
	binary.BigEndian.PutUint32(tmp[38:], m.Epoch)
	binary.BigEndian.PutUint64(tmp[42:], uint64(m.Deadline))
	binary.BigEndian.PutUint32(tmp[50:], m.Session)
	binary.BigEndian.PutUint32(tmp[payloadSize:], crc32.Checksum(tmp[:payloadSize], crcTable))
	return append(buf, tmp[:]...)
}

// refEncode is the reference whole-frame encoder (scalar or batch).
func refEncode(buf []byte, m Message) []byte {
	if m.Type != TBatch {
		return refEncodeOne(buf, m)
	}
	hdr := m
	hdr.Val = int64(len(m.Batch))
	buf = refEncodeOne(buf, hdr)
	for _, im := range m.Batch {
		buf = refEncodeOne(buf, im)
	}
	return buf
}

// randMsg builds a deterministic pseudo-random scalar message exercising
// every field, including the sign bits of the int64/int32 fields.
func randMsg(rng *rand.Rand) Message {
	return Message{
		Type:     Type(1 + rng.Intn(int(typeMax))),
		Group:    rng.Uint32(),
		Src:      int32(rng.Uint32()),
		Origin:   int32(rng.Uint32()),
		Seq:      rng.Uint64(),
		Var:      rng.Uint32(),
		Lock:     rng.Uint32(),
		Val:      int64(rng.Uint64()),
		Guarded:  rng.Intn(2) == 1,
		Epoch:    rng.Uint32(),
		Deadline: int64(rng.Uint64()),
		Session:  rng.Uint32(),
	}
}

// TestCodecByteParity proves the flat in-place codec emits frames
// byte-identical to the reference staged-copy encoder — for every scalar
// type, for batch frames of every size up to a few hundred elements, and
// for frames appended after existing bytes (the writev chunk-assembly
// path). Byte identity of every frame implies the sequenced state the
// codec ships is identical message for message.
func TestCodecByteParity(t *testing.T) {
	rng := rand.New(rand.NewSource(10))

	// Every scalar type with saturated fields.
	for k := TUpdate; k <= typeMax; k++ {
		if k == TBatch {
			continue
		}
		for range 32 {
			m := randMsg(rng)
			m.Type = k
			got, want := Encode(nil, m), refEncode(nil, m)
			if !bytes.Equal(got, want) {
				t.Fatalf("%v: flat codec diverged:\n got  %x\n want %x", k, got, want)
			}
		}
	}

	// Batch frames across sizes, including MaxBatch.
	for _, n := range []int{1, 2, 3, 16, 255, 300, MaxBatch} {
		b := Message{Type: TBatch, Group: 77, Src: 3, Epoch: 5}
		for range n {
			im := randMsg(rng)
			if im.Type == TBatch {
				im.Type = TUpdate
			}
			im.Group = b.Group
			b.Batch = append(b.Batch, im)
		}
		got, want := Encode(nil, b), refEncode(nil, b)
		if !bytes.Equal(got, want) {
			t.Fatalf("batch of %d: flat codec diverged", n)
		}
		if len(got) != EncodedLen(b) {
			t.Fatalf("batch of %d: encoded %d bytes, want %d", n, len(got), EncodedLen(b))
		}
	}

	// Appending after existing bytes (frames contiguous end-to-end, as
	// the transport's writev chunks assemble them).
	frames := []Message{
		{Type: THeartbeat, Group: 1, Src: 0, Seq: 9, Epoch: 2},
		{Type: TBatch, Group: 1, Src: 0, Epoch: 2, Batch: []Message{
			{Type: TSeqUpdate, Group: 1, Src: 0, Origin: 4, Seq: 10, Var: 1, Val: -5, Epoch: 2},
			{Type: TSeqLock, Group: 1, Src: 0, Seq: 11, Lock: 2, Val: 4, Epoch: 2},
		}},
		{Type: TAck, Group: 1, Src: 4, Seq: 11, Epoch: 2},
	}
	var got, want []byte
	for _, m := range frames {
		got = Encode(got, m)
		want = refEncode(want, m)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("appended frame stream diverged:\n got  %x\n want %x", got, want)
	}
}

// TestEncodeReusedDirtyBuffer pins that encoding into a recycled buffer
// holding stale bytes (the pool path) cannot leak them: every payload
// byte is written, including the cleared Guarded flag.
func TestEncodeReusedDirtyBuffer(t *testing.T) {
	dirty := bytes.Repeat([]byte{0xff}, 4*EncodedSize)
	m := Message{Type: TUpdate, Group: 1, Src: 2, Origin: 2, Var: 7} // Guarded false
	got := Encode(dirty[:0], m)
	if !bytes.Equal(got, refEncode(nil, m)) {
		t.Fatalf("dirty-buffer encode leaked stale bytes:\n got  %x\n want %x", got, refEncode(nil, m))
	}
}

// TestCorruptFrameClassification pins the reset-or-skip contract the TCP
// reader depends on: corruption confined to a delimited frame wraps
// ErrCorruptFrame (the reader skips the frame and keeps the link), while
// anything that could have desynchronized the framing does not (the
// reader must reset the connection).
func TestCorruptFrameClassification(t *testing.T) {
	batch := Encode(nil, testBatch())

	// Inner-element corruption after a valid header: frame-local.
	for _, flip := range []int{EncodedSize, EncodedSize + 31, 2*EncodedSize + 14, len(batch) - 1} {
		bad := append([]byte(nil), batch...)
		bad[flip] ^= 0x10
		_, err := Decode(bad)
		if err == nil {
			t.Fatalf("flip at %d: decode succeeded", flip)
		}
		if !errors.Is(err, ErrCorruptFrame) {
			t.Errorf("flip at %d: inner corruption not classified frame-local: %v", flip, err)
		}
	}

	// Nested batch and cross-group inner elements: frame-local too (the
	// frame's extent was validated by the header checksum).
	nested := append([]byte(nil), batch...)
	nested[EncodedSize] = byte(TBatch)
	if _, err := Decode(nested); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("nested inner batch not classified frame-local: %v", err)
	}

	// Scalar frame with a valid checksum but out-of-range type byte:
	// delimited at EncodedSize for sure, so frame-local.
	badType := Encode(nil, Message{Type: TUpdate, Group: 1})
	badType[0] = 200
	binary.BigEndian.PutUint32(badType[payloadSize:], crc32.Checksum(badType[:payloadSize], crcTable))
	if _, err := Decode(badType); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("valid-CRC unknown type not classified frame-local: %v", err)
	}

	// Desync class: a scalar checksum failure (the corrupted byte could
	// have hidden a batch header)...
	scalar := Encode(nil, Message{Type: TSeqUpdate, Group: 1, Seq: 4, Var: 2, Val: 9})
	scalar[14] ^= 0x01
	if _, err := Decode(scalar); err == nil || errors.Is(err, ErrCorruptFrame) {
		t.Errorf("scalar checksum failure misclassified as frame-local: %v", err)
	}
	// ...a batch header checksum failure...
	hdrBad := append([]byte(nil), batch...)
	hdrBad[14] ^= 0x01
	if _, err := Decode(hdrBad); err == nil || errors.Is(err, ErrCorruptFrame) {
		t.Errorf("batch header checksum failure misclassified as frame-local: %v", err)
	}
	// ...and short or miscounted input.
	if _, err := Decode(batch[:EncodedSize+3]); err == nil || errors.Is(err, ErrCorruptFrame) {
		t.Errorf("short batch misclassified as frame-local: %v", err)
	}

	// The stream reader agrees with the flat decoder on both classes.
	if _, err := ReadFrom(bytes.NewReader(hdrBad)); err == nil || errors.Is(err, ErrCorruptFrame) {
		t.Errorf("ReadFrom: header corruption misclassified: %v", err)
	}
	inner := append([]byte(nil), batch...)
	inner[EncodedSize+5] ^= 0x40
	tail := Encode(nil, Message{Type: THeartbeat, Group: 7, Epoch: 2})
	stream := bytes.NewReader(append(append([]byte(nil), inner...), tail...))
	if _, err := ReadFrom(stream); !errors.Is(err, ErrCorruptFrame) {
		t.Errorf("ReadFrom: inner corruption not classified frame-local: %v", err)
	}
	// After skipping the corrupt frame the stream is still synchronized:
	// the next read yields the trailing heartbeat.
	if m, err := ReadFrom(stream); err != nil || m.Type != THeartbeat {
		t.Errorf("stream desynchronized after frame-local skip: %+v, err %v", m, err)
	}
}

// BenchmarkWireEncodeBatch gates the flat codec's encode path: one
// 16-element batch frame into a reused buffer must stay allocation-free.
func BenchmarkWireEncodeBatch(b *testing.B) {
	m := Message{Type: TBatch, Group: 1, Src: 0, Epoch: 2}
	for i := range 16 {
		m.Batch = append(m.Batch, Message{
			Type: TSeqUpdate, Group: 1, Src: 0, Origin: 3,
			Seq: uint64(i + 1), Var: uint32(i), Val: int64(i), Epoch: 2,
		})
	}
	buf := make([]byte, 0, EncodedLen(m))
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		buf = Encode(buf[:0], m)
	}
	if len(buf) != EncodedLen(m) {
		b.Fatal("bad encode length")
	}
}

// BenchmarkWireDecodeBatch measures the slot-filling batch decode (one
// message-array allocation per frame is inherent — the frame outlives
// the read buffer).
func BenchmarkWireDecodeBatch(b *testing.B) {
	m := Message{Type: TBatch, Group: 1, Src: 0, Epoch: 2}
	for i := range 16 {
		m.Batch = append(m.Batch, Message{
			Type: TSeqUpdate, Group: 1, Src: 0, Origin: 3,
			Seq: uint64(i + 1), Var: uint32(i), Val: int64(i), Epoch: 2,
		})
	}
	buf := Encode(nil, m)
	b.ReportAllocs()
	b.ResetTimer()
	for range b.N {
		if _, err := Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// Package wire defines the messages exchanged by the live GWC runtime and
// a fixed-size binary codec for sending them over byte-stream transports.
//
// Every message travels either "up" (member to group root: updates, lock
// requests, releases, retransmit requests) or "down" (root to members:
// sequenced updates and lock grants). Down messages carry the group
// sequence number that establishes group write consistency.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Type discriminates message kinds.
type Type uint8

// Message kinds. Up messages flow member -> root; down messages are the
// root's sequenced multicast.
const (
	// TUpdate is an eagerly shared write on its way to the root.
	TUpdate Type = iota + 1
	// TLockReq asks the root (lock manager) for a lock.
	TLockReq
	// TLockRel releases a lock at the root.
	TLockRel
	// TSeqUpdate is a sequenced shared write, multicast by the root.
	TSeqUpdate
	// TSeqLock is a sequenced lock-variable change (grant or free).
	TSeqLock
	// TNack asks the root to retransmit sequenced messages from Seq up to
	// (and excluding) Val, after a receiver detected a gap.
	TNack
	// THeartbeat is the root's periodic liveness beacon: Epoch names the
	// root's reign, Val the root's node ID, and Seq its current sequence
	// number (so members can notice they are behind). Members also send it
	// back to stale-epoch senders as a "you are stale" notice carrying the
	// current epoch and root.
	THeartbeat
	// TSnapReq asks the current root for a state snapshot (sent by a
	// member that just adopted a new epoch and needs a full resync).
	TSnapReq
	// TSnapVar carries one shared variable of a state snapshot or of an
	// election state report. Seq is the snapshot's sequence position.
	TSnapVar
	// TSnapLock carries one lock of a snapshot/report: Val is the lock
	// value, Var the lock's grant epoch.
	TSnapLock
	// TSnapDone terminates a snapshot/report stream; Seq is the sequence
	// position the whole snapshot corresponds to.
	TSnapDone
	// TLockCancel withdraws a lock request: the root dequeues the origin,
	// or releases the lock if the grant already raced the cancellation.
	TLockCancel
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TUpdate:
		return "update"
	case TLockReq:
		return "lock-req"
	case TLockRel:
		return "lock-rel"
	case TSeqUpdate:
		return "seq-update"
	case TSeqLock:
		return "seq-lock"
	case TNack:
		return "nack"
	case THeartbeat:
		return "heartbeat"
	case TSnapReq:
		return "snap-req"
	case TSnapVar:
		return "snap-var"
	case TSnapLock:
		return "snap-lock"
	case TSnapDone:
		return "snap-done"
	case TLockCancel:
		return "lock-cancel"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is one protocol message. Unused fields are zero; the codec
// always transmits the full fixed layout (one branch-free encode/decode,
// at the cost of a few bytes — the paper's updates are small anyway).
type Message struct {
	Type   Type
	Group  uint32 // sharing group
	Src    int32  // sending node
	Origin int32  // original writer (survives root re-multicast)
	// Seq is the group sequence number on down messages and the NACK
	// start; on guarded TUpdate messages it carries the origin's last
	// applied grant epoch for the root's epoch validation.
	Seq  uint64
	Var  uint32 // shared variable (TUpdate/TSeqUpdate)
	Lock uint32 // lock ID (lock messages)
	Val  int64  // variable value, lock value, or NACK end
	// Guarded marks writes to variables inside a mutex data group: the
	// root discards them from non-holders and origins drop their echoes.
	Guarded bool
	// Epoch is the root epoch the message belongs to. Members stamp their
	// current epoch on up messages and the root stamps its reign on down
	// messages; either side rejects traffic from a stale epoch, so a
	// revived old root cannot split the group after a failover.
	Epoch uint32
}

// EncodedSize is the fixed wire size of one message.
const EncodedSize = 1 + 1 + 4 + 4 + 4 + 8 + 4 + 4 + 8 + 4

// Encode appends the message's wire form to buf and returns the result.
func Encode(buf []byte, m Message) []byte {
	var tmp [EncodedSize]byte
	tmp[0] = byte(m.Type)
	if m.Guarded {
		tmp[1] = 1
	}
	binary.BigEndian.PutUint32(tmp[2:], m.Group)
	binary.BigEndian.PutUint32(tmp[6:], uint32(m.Src))
	binary.BigEndian.PutUint32(tmp[10:], uint32(m.Origin))
	binary.BigEndian.PutUint64(tmp[14:], m.Seq)
	binary.BigEndian.PutUint32(tmp[22:], m.Var)
	binary.BigEndian.PutUint32(tmp[26:], m.Lock)
	binary.BigEndian.PutUint64(tmp[30:], uint64(m.Val))
	binary.BigEndian.PutUint32(tmp[38:], m.Epoch)
	return append(buf, tmp[:]...)
}

// Decode parses one message from b, which must hold at least EncodedSize
// bytes.
func Decode(b []byte) (Message, error) {
	if len(b) < EncodedSize {
		return Message{}, fmt.Errorf("wire: short message: %d bytes, want %d", len(b), EncodedSize)
	}
	m := Message{
		Type:    Type(b[0]),
		Guarded: b[1] != 0,
		Group:   binary.BigEndian.Uint32(b[2:]),
		Src:     int32(binary.BigEndian.Uint32(b[6:])),
		Origin:  int32(binary.BigEndian.Uint32(b[10:])),
		Seq:     binary.BigEndian.Uint64(b[14:]),
		Var:     binary.BigEndian.Uint32(b[22:]),
		Lock:    binary.BigEndian.Uint32(b[26:]),
		Val:     int64(binary.BigEndian.Uint64(b[30:])),
		Epoch:   binary.BigEndian.Uint32(b[38:]),
	}
	if m.Type < TUpdate || m.Type > TLockCancel {
		return Message{}, fmt.Errorf("wire: unknown message type %d", b[0])
	}
	return m, nil
}

// WriteTo writes the message to w in wire form.
func WriteTo(w io.Writer, m Message) error {
	buf := Encode(make([]byte, 0, EncodedSize), m)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadFrom reads one message from r in wire form.
func ReadFrom(r io.Reader) (Message, error) {
	var buf [EncodedSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Message{}, err
	}
	return Decode(buf[:])
}

// Package wire defines the messages exchanged by the live GWC runtime and
// a fixed-size binary codec for sending them over byte-stream transports.
//
// Every message travels either "up" (member to group root: updates, lock
// requests, releases, retransmit requests) or "down" (root to members:
// sequenced updates and lock grants). Down messages carry the group
// sequence number that establishes group write consistency.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Type discriminates message kinds.
type Type uint8

// Message kinds. Up messages flow member -> root; down messages are the
// root's sequenced multicast.
const (
	// TUpdate is an eagerly shared write on its way to the root.
	TUpdate Type = iota + 1
	// TLockReq asks the root (lock manager) for a lock.
	TLockReq
	// TLockRel releases a lock at the root.
	TLockRel
	// TSeqUpdate is a sequenced shared write, multicast by the root.
	TSeqUpdate
	// TSeqLock is a sequenced lock-variable change (grant or free).
	TSeqLock
	// TNack asks the root to retransmit sequenced messages from Seq up to
	// (and excluding) Val, after a receiver detected a gap.
	TNack
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TUpdate:
		return "update"
	case TLockReq:
		return "lock-req"
	case TLockRel:
		return "lock-rel"
	case TSeqUpdate:
		return "seq-update"
	case TSeqLock:
		return "seq-lock"
	case TNack:
		return "nack"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is one protocol message. Unused fields are zero; the codec
// always transmits the full fixed layout (one branch-free encode/decode,
// at the cost of a few bytes — the paper's updates are small anyway).
type Message struct {
	Type   Type
	Group  uint32 // sharing group
	Src    int32  // sending node
	Origin int32  // original writer (survives root re-multicast)
	// Seq is the group sequence number on down messages and the NACK
	// start; on guarded TUpdate messages it carries the origin's last
	// applied grant epoch for the root's epoch validation.
	Seq  uint64
	Var  uint32 // shared variable (TUpdate/TSeqUpdate)
	Lock uint32 // lock ID (lock messages)
	Val  int64  // variable value, lock value, or NACK end
	// Guarded marks writes to variables inside a mutex data group: the
	// root discards them from non-holders and origins drop their echoes.
	Guarded bool
}

// EncodedSize is the fixed wire size of one message.
const EncodedSize = 1 + 1 + 4 + 4 + 4 + 8 + 4 + 4 + 8

// Encode appends the message's wire form to buf and returns the result.
func Encode(buf []byte, m Message) []byte {
	var tmp [EncodedSize]byte
	tmp[0] = byte(m.Type)
	if m.Guarded {
		tmp[1] = 1
	}
	binary.BigEndian.PutUint32(tmp[2:], m.Group)
	binary.BigEndian.PutUint32(tmp[6:], uint32(m.Src))
	binary.BigEndian.PutUint32(tmp[10:], uint32(m.Origin))
	binary.BigEndian.PutUint64(tmp[14:], m.Seq)
	binary.BigEndian.PutUint32(tmp[22:], m.Var)
	binary.BigEndian.PutUint32(tmp[26:], m.Lock)
	binary.BigEndian.PutUint64(tmp[30:], uint64(m.Val))
	return append(buf, tmp[:]...)
}

// Decode parses one message from b, which must hold at least EncodedSize
// bytes.
func Decode(b []byte) (Message, error) {
	if len(b) < EncodedSize {
		return Message{}, fmt.Errorf("wire: short message: %d bytes, want %d", len(b), EncodedSize)
	}
	m := Message{
		Type:    Type(b[0]),
		Guarded: b[1] != 0,
		Group:   binary.BigEndian.Uint32(b[2:]),
		Src:     int32(binary.BigEndian.Uint32(b[6:])),
		Origin:  int32(binary.BigEndian.Uint32(b[10:])),
		Seq:     binary.BigEndian.Uint64(b[14:]),
		Var:     binary.BigEndian.Uint32(b[22:]),
		Lock:    binary.BigEndian.Uint32(b[26:]),
		Val:     int64(binary.BigEndian.Uint64(b[30:])),
	}
	if m.Type < TUpdate || m.Type > TNack {
		return Message{}, fmt.Errorf("wire: unknown message type %d", b[0])
	}
	return m, nil
}

// WriteTo writes the message to w in wire form.
func WriteTo(w io.Writer, m Message) error {
	buf := Encode(make([]byte, 0, EncodedSize), m)
	if _, err := w.Write(buf); err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadFrom reads one message from r in wire form.
func ReadFrom(r io.Reader) (Message, error) {
	var buf [EncodedSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Message{}, err
	}
	return Decode(buf[:])
}

// Package wire defines the messages exchanged by the live GWC runtime and
// a fixed-size binary codec for sending them over byte-stream transports.
//
// Every message travels either "up" (member to group root: updates, lock
// requests, releases, retransmit requests) or "down" (root to members:
// sequenced updates and lock grants). Down messages carry the group
// sequence number that establishes group write consistency.
//
// A TBatch frame packs several messages of one group into a single
// length-prefixed payload, so a burst of coalesced writes (or a root's
// sequenced fan-out of one) costs one frame instead of N. Encode buffers
// are recycled through a sync.Pool, keeping the hot send path free of
// per-message allocations.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// ErrCorruptFrame marks decode failures confined to one fully-delimited
// frame: the reader consumed the frame's exact wire length, so a
// byte-stream transport may drop the frame and keep reading the same
// connection — framing is still synchronized. It wraps corruption inside
// a batch whose header checksum validated (a bad inner checksum, type,
// group, or a nested batch) and scalar frames whose checksum validated
// but whose type byte is out of range. Decode errors that do NOT match
// this sentinel — a failed header or scalar checksum, an out-of-range
// batch count — mean the frame boundary itself cannot be trusted: the
// corrupted byte could have hidden a batch header, so the stream may be
// desynchronized and the connection must be reset.
var ErrCorruptFrame = errors.New("corrupt frame")

// Type discriminates message kinds.
type Type uint8

// Message kinds. Up messages flow member -> root; down messages are the
// root's sequenced multicast.
const (
	// TUpdate is an eagerly shared write on its way to the root.
	TUpdate Type = iota + 1
	// TLockReq asks the root (lock manager) for a lock.
	TLockReq
	// TLockRel releases a lock at the root.
	TLockRel
	// TSeqUpdate is a sequenced shared write, multicast by the root.
	TSeqUpdate
	// TSeqLock is a sequenced lock-variable change (grant or free).
	TSeqLock
	// TNack asks the root to retransmit sequenced messages from Seq up to
	// (and excluding) Val, after a receiver detected a gap.
	TNack
	// THeartbeat is the root's periodic liveness beacon: Epoch names the
	// root's reign, Val the root's node ID, and Seq its current sequence
	// number (so members can notice they are behind). Members also send it
	// back to stale-epoch senders as a "you are stale" notice carrying the
	// current epoch and root.
	THeartbeat
	// TSnapReq asks the current root for a state snapshot (sent by a
	// member that just adopted a new epoch and needs a full resync).
	TSnapReq
	// TSnapVar carries one shared variable of a state snapshot or of an
	// election state report. Seq is the snapshot's sequence position.
	TSnapVar
	// TSnapLock carries one lock of a snapshot/report: Val is the lock
	// value, Var the lock's grant epoch.
	TSnapLock
	// TSnapDone terminates a snapshot/report stream; Seq is the sequence
	// position the whole snapshot corresponds to.
	TSnapDone
	// TLockCancel withdraws a lock request: the root dequeues the origin,
	// or releases the lock if the grant already raced the cancellation.
	TLockCancel
	// TBatch packs several messages of one group into a single frame: Val
	// holds the inner count and Batch the messages. Batches may not nest.
	TBatch
	// TAck is a member's cumulative acknowledgement: Seq is the highest
	// sequence number the member has contiguously applied. The root feeds
	// it into the quorum-durability watermark (resync probes carry the
	// same information implicitly).
	TAck
	// TJoinReq asks the group root to re-admit a restarted member at the
	// current epoch (a crashed-and-recovered node rejoining mid-reign).
	TJoinReq
	// TJoinAck re-admits a rejoining member: Epoch is the current reign,
	// Seq the root's sequence number, Val the root's node ID. A state
	// snapshot stream follows on the same link.
	TJoinAck
	// TSyncReq asks the root for a durability barrier: Seq carries an
	// opaque token the matching TSyncAck echoes. The root answers once
	// every message it sequenced before receiving the request is
	// committed (immediately, or after a quorum of members acked it).
	TSyncReq
	// TSyncAck answers a TSyncReq; Seq echoes the request's token.
	TSyncAck
	// TDigestReq is the root's anti-entropy probe: Seq is the watermark
	// sequence number and Val the root's state digest at that watermark.
	// Var == 1 marks a repair directive — the root found the receiver's
	// digest diverged and a corrective snapshot follows on the same link.
	TDigestReq
	// TDigestAck answers a TDigestReq: Seq is the member's highest
	// contiguously applied sequence number and Val its state digest
	// there. The root compares it against its digest checkpoint ring.
	TDigestAck
	// TLeaseGrant is the root's lock-lease message to the current holder:
	// Deadline is the lease duration in nanoseconds (a fresh grant or an
	// extension), or 0 — a revoke demand asking the holder to return the
	// lease as soon as it is out of its section. Var carries the holder's
	// grant epoch and Origin its request token, so a stale lease from a
	// previous acquisition cannot be mistaken for the current one.
	TLeaseGrant
	// TLeaseRet returns a lease to the root: the member has released the
	// lock locally (or answered a revoke demand) and the root should run
	// its normal release path. Var quotes the grant epoch the lease was
	// issued under, like TLockRel.
	TLeaseRet
	// THandoff transfers a lock directly from a releasing holder to the
	// next queued waiter the root hinted at grant time. Sent twice by the
	// holder: to the waiter as a direct grant (Val = the waiter's grant
	// value, Var = the root-reserved grant epoch, Origin = the waiter's
	// request token) and to the root as an asynchronous notice (Var = the
	// holder's own grant epoch, Seq = the reserved epoch, Val = the
	// waiter's grant value) so the root can record the transfer. The root
	// stays the arbiter: a notice that no longer matches its lock state is
	// discarded and the holder's release falls back to the normal path.
	THandoff
)

// typeMax is the highest valid message type, used by decode validation.
const typeMax = THandoff

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case TUpdate:
		return "update"
	case TLockReq:
		return "lock-req"
	case TLockRel:
		return "lock-rel"
	case TSeqUpdate:
		return "seq-update"
	case TSeqLock:
		return "seq-lock"
	case TNack:
		return "nack"
	case THeartbeat:
		return "heartbeat"
	case TSnapReq:
		return "snap-req"
	case TSnapVar:
		return "snap-var"
	case TSnapLock:
		return "snap-lock"
	case TSnapDone:
		return "snap-done"
	case TLockCancel:
		return "lock-cancel"
	case TBatch:
		return "batch"
	case TAck:
		return "ack"
	case TJoinReq:
		return "join-req"
	case TJoinAck:
		return "join-ack"
	case TSyncReq:
		return "sync-req"
	case TSyncAck:
		return "sync-ack"
	case TDigestReq:
		return "digest-req"
	case TDigestAck:
		return "digest-ack"
	case TLeaseGrant:
		return "lease-grant"
	case TLeaseRet:
		return "lease-ret"
	case THandoff:
		return "handoff"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is one protocol message. Unused fields are zero; the codec
// always transmits the full fixed layout (one branch-free encode/decode,
// at the cost of a few bytes — the paper's updates are small anyway).
type Message struct {
	Type   Type
	Group  uint32 // sharing group
	Src    int32  // sending node
	Origin int32  // original writer (survives root re-multicast)
	// Seq is the group sequence number on down messages and the NACK
	// start; on guarded TUpdate messages it carries the origin's last
	// applied grant epoch for the root's epoch validation.
	Seq  uint64
	Var  uint32 // shared variable (TUpdate/TSeqUpdate)
	Lock uint32 // lock ID (lock messages)
	Val  int64  // variable value, lock value, NACK end, or batch length
	// Guarded marks writes to variables inside a mutex data group: the
	// root discards them from non-holders and origins drop their echoes.
	Guarded bool
	// Epoch is the root epoch the message belongs to. Members stamp their
	// current epoch on up messages and the root stamps its reign on down
	// messages; either side rejects traffic from a stale epoch, so a
	// revived old root cannot split the group after a failover.
	Epoch uint32
	// Deadline propagates the caller's context deadline (Unix
	// nanoseconds; 0 means none) onto the wire, so the root can drop a
	// request whose originator has already given up instead of granting
	// into the void. Comparisons assume roughly synchronized clocks —
	// the field is an optimization, never a correctness lever: an
	// expired request's cancel (or silence) resolves it either way.
	Deadline int64
	// Session is the group-mutual-exclusion session a lock message
	// belongs to: TLockReq carries the requested session, TSeqLock the
	// open session of an entry/leave/close, TLockRel the session being
	// left, and TSnapLock the session of a reported holder. Session 0 is
	// plain mutual exclusion (the pre-session protocol, and the zero
	// value on every non-lock message).
	Session uint32
	// Batch holds the inner messages of a TBatch frame (nil otherwise).
	// Inner messages must share the frame's group and may not themselves
	// be batches.
	Batch []Message
}

// payloadSize is the fixed layout of one message's fields, before the
// trailing checksum.
const payloadSize = 1 + 1 + 4 + 4 + 4 + 8 + 4 + 4 + 8 + 4 + 8 + 4

// EncodedSize is the fixed wire size of one non-batch message (and of a
// batch frame's header; each inner message adds EncodedSize more): the
// field layout plus a CRC32C trailer. Each encoded unit — a scalar
// message, a batch header, or one inner message of a batch — carries
// its own checksum, so a bit flip anywhere in a frame is localized and
// rejected at decode; the sender's retransmit path (NACK or retry)
// then recovers the frame as if it had been dropped.
const EncodedSize = payloadSize + 4

// crcTable is the Castagnoli polynomial, hardware-accelerated on
// amd64/arm64 by the standard library.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// MaxBatch bounds the inner messages of one batch frame, so a corrupt or
// hostile length prefix cannot force an oversized allocation.
const MaxBatch = 4096

// putOne writes one fixed-layout message (batch header included) into
// b[0:EncodedSize], checksum trailer computed in place. The caller has
// already reserved the space, so a frame assembles directly inside the
// destination buffer — no staging array, no copy. Every payload byte is
// written, so a recycled dirty buffer never leaks stale bytes.
func putOne(b []byte, m Message) {
	_ = b[EncodedSize-1] // one bounds check for the whole layout
	b[0] = byte(m.Type)
	if m.Guarded {
		b[1] = 1
	} else {
		b[1] = 0
	}
	binary.BigEndian.PutUint32(b[2:], m.Group)
	binary.BigEndian.PutUint32(b[6:], uint32(m.Src))
	binary.BigEndian.PutUint32(b[10:], uint32(m.Origin))
	binary.BigEndian.PutUint64(b[14:], m.Seq)
	binary.BigEndian.PutUint32(b[22:], m.Var)
	binary.BigEndian.PutUint32(b[26:], m.Lock)
	binary.BigEndian.PutUint64(b[30:], uint64(m.Val))
	binary.BigEndian.PutUint32(b[38:], m.Epoch)
	binary.BigEndian.PutUint64(b[42:], uint64(m.Deadline))
	binary.BigEndian.PutUint32(b[50:], m.Session)
	binary.BigEndian.PutUint32(b[payloadSize:], crc32.Checksum(b[:payloadSize], crcTable))
}

// grow extends buf by n bytes in one reallocation at most and returns
// the extended slice; the new bytes are writable scratch.
func grow(buf []byte, n int) []byte {
	if cap(buf)-len(buf) >= n {
		return buf[: len(buf)+n : cap(buf)]
	}
	nb := make([]byte, len(buf)+n)
	copy(nb, buf)
	return nb
}

// Encode appends the message's wire form to buf and returns the result.
// A TBatch frame encodes as its header (Val = inner count) followed by
// the inner messages back to back; the whole frame is laid out flat into
// buf with one grow and per-unit checksums computed in place. Batches
// that are empty, oversized, or nested are programming errors and panic;
// Decode, by contrast, returns errors for any malformed input.
func Encode(buf []byte, m Message) []byte {
	n := len(buf)
	if m.Type != TBatch {
		buf = grow(buf, EncodedSize)
		putOne(buf[n:], m)
		return buf
	}
	if len(m.Batch) == 0 || len(m.Batch) > MaxBatch {
		panic(fmt.Sprintf("wire: batch of %d messages outside [1,%d]", len(m.Batch), MaxBatch))
	}
	buf = grow(buf, (1+len(m.Batch))*EncodedSize)
	hdr := m
	hdr.Val = int64(len(m.Batch))
	putOne(buf[n:], hdr)
	off := n + EncodedSize
	for i := range m.Batch {
		if m.Batch[i].Type == TBatch {
			panic("wire: nested batch frame")
		}
		putOne(buf[off:], m.Batch[i])
		off += EncodedSize
	}
	return buf
}

// decodeInto parses one fixed-layout message from b straight into *m —
// batch elements decode directly into their slot of the frame's message
// array, with no intermediate Message copies.
func decodeInto(b []byte, m *Message) error {
	if len(b) < EncodedSize {
		return fmt.Errorf("wire: short message: %d bytes, want %d", len(b), EncodedSize)
	}
	if got, want := binary.BigEndian.Uint32(b[payloadSize:]), crc32.Checksum(b[:payloadSize], crcTable); got != want {
		return fmt.Errorf("wire: checksum mismatch: frame carries %08x, payload sums to %08x", got, want)
	}
	*m = Message{
		Type:     Type(b[0]),
		Guarded:  b[1] != 0,
		Group:    binary.BigEndian.Uint32(b[2:]),
		Src:      int32(binary.BigEndian.Uint32(b[6:])),
		Origin:   int32(binary.BigEndian.Uint32(b[10:])),
		Seq:      binary.BigEndian.Uint64(b[14:]),
		Var:      binary.BigEndian.Uint32(b[22:]),
		Lock:     binary.BigEndian.Uint32(b[26:]),
		Val:      int64(binary.BigEndian.Uint64(b[30:])),
		Epoch:    binary.BigEndian.Uint32(b[38:]),
		Deadline: int64(binary.BigEndian.Uint64(b[42:])),
		Session:  binary.BigEndian.Uint32(b[50:]),
	}
	if m.Type < TUpdate || m.Type > typeMax {
		// The checksum validated, so the frame really was delimited at
		// EncodedSize — the garbage type is confined to this frame.
		return fmt.Errorf("wire: unknown message type %d: %w", b[0], ErrCorruptFrame)
	}
	return nil
}

// Decode parses one message from b. A TBatch header must be followed in
// b by its full payload; truncated, oversized, or nested batch frames
// return an error (never panic). Errors matching ErrCorruptFrame are
// confined to a fully-delimited frame; see the sentinel's contract.
func Decode(b []byte) (Message, error) {
	var m Message
	if err := decodeInto(b, &m); err != nil || m.Type != TBatch {
		return m, err
	}
	count := m.Val
	if count < 1 || count > MaxBatch {
		return Message{}, fmt.Errorf("wire: batch of %d messages outside [1,%d]", count, MaxBatch)
	}
	need := int(count+1) * EncodedSize
	if len(b) < need {
		return Message{}, fmt.Errorf("wire: short batch: %d bytes, want %d", len(b), need)
	}
	// The header checksum validated, so the frame's extent on the wire is
	// trustworthy: any inner-element failure from here on is confined to
	// this frame and wraps ErrCorruptFrame.
	m.Batch = make([]Message, count)
	for i := range m.Batch {
		if err := decodeInto(b[(i+1)*EncodedSize:], &m.Batch[i]); err != nil {
			return Message{}, fmt.Errorf("wire: batch index %d: %w", i, corrupt(err))
		}
		if m.Batch[i].Type == TBatch {
			return Message{}, fmt.Errorf("wire: nested batch frame at index %d: %w", i, ErrCorruptFrame)
		}
		if m.Batch[i].Group != m.Group {
			return Message{}, fmt.Errorf("wire: batch for group %d holds message for group %d: %w", m.Group, m.Batch[i].Group, ErrCorruptFrame)
		}
	}
	return m, nil
}

// corrupt stamps err with ErrCorruptFrame unless it already matches.
func corrupt(err error) error {
	if errors.Is(err, ErrCorruptFrame) {
		return err
	}
	return fmt.Errorf("%v: %w", err, ErrCorruptFrame)
}

// EncodedLen reports the wire size of m: EncodedSize for one message,
// plus EncodedSize per inner message of a batch frame.
func EncodedLen(m Message) int {
	return EncodedSize * (1 + len(m.Batch))
}

// Equal reports whether two messages (batch payloads included) are
// identical. Message holds a slice, so == does not compile on it.
func Equal(a, b Message) bool {
	if a.Type != b.Type || a.Group != b.Group || a.Src != b.Src ||
		a.Origin != b.Origin || a.Seq != b.Seq || a.Var != b.Var ||
		a.Lock != b.Lock || a.Val != b.Val || a.Guarded != b.Guarded ||
		a.Epoch != b.Epoch || a.Deadline != b.Deadline ||
		a.Session != b.Session || len(a.Batch) != len(b.Batch) {
		return false
	}
	for i := range a.Batch {
		if !Equal(a.Batch[i], b.Batch[i]) {
			return false
		}
	}
	return true
}

// bufPool recycles encode/decode buffers: the hot paths (TCP peer
// writers, frame readers) borrow a buffer per frame instead of
// allocating one.
var bufPool = sync.Pool{New: func() any { return new([]byte) }}

// WriteTo writes the message to w in wire form, using a pooled buffer.
func WriteTo(w io.Writer, m Message) error {
	bp := bufPool.Get().(*[]byte)
	buf := Encode((*bp)[:0], m)
	_, err := w.Write(buf)
	*bp = buf[:0]
	bufPool.Put(bp)
	if err != nil {
		return fmt.Errorf("wire: write: %w", err)
	}
	return nil
}

// ReadFrom reads one message (or one whole batch frame) from r in wire
// form. Decode failures that wrap ErrCorruptFrame consumed the frame's
// exact wire length — the caller may skip the frame and keep reading;
// any other decode error means the stream may be desynchronized and the
// connection should be reset.
func ReadFrom(r io.Reader) (Message, error) {
	var hdr [EncodedSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	if Type(hdr[0]) != TBatch {
		// A checksum failure here is desync-class: the corrupted type
		// byte could have hidden a batch header, in which case only the
		// header of a longer frame was consumed.
		return Decode(hdr[:])
	}
	// Verify the header checksum before trusting the count: a corrupted
	// length prefix would otherwise desynchronize the stream framing.
	if got, want := binary.BigEndian.Uint32(hdr[payloadSize:]), crc32.Checksum(hdr[:payloadSize], crcTable); got != want {
		return Message{}, fmt.Errorf("wire: checksum mismatch: batch header carries %08x, payload sums to %08x", got, want)
	}
	count := int64(binary.BigEndian.Uint64(hdr[30:]))
	if count < 1 || count > MaxBatch {
		return Message{}, fmt.Errorf("wire: batch of %d messages outside [1,%d]", count, MaxBatch)
	}
	need := int(count+1) * EncodedSize
	bp := bufPool.Get().(*[]byte)
	buf := *bp
	if cap(buf) < need {
		buf = make([]byte, need)
	} else {
		buf = buf[:need]
	}
	copy(buf, hdr[:])
	_, err := io.ReadFull(r, buf[EncodedSize:])
	var m Message
	if err == nil {
		// Decode fills the frame's message array straight from the read
		// buffer (no per-element staging copies) and aliases nothing, so
		// the buffer can be recycled as soon as it returns.
		m, err = Decode(buf)
	}
	*bp = buf[:0]
	bufPool.Put(bp)
	return m, err
}

module optsync

go 1.22

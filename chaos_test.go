package optsync

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestChaosRootCrashMidWorkload kills the group root while workers on the
// surviving nodes increment a lock-guarded counter, and checks the
// fault-tolerance contract: a new root is elected, every increment that
// was confirmed committed survives the failover, the mutex is never held
// by two sections at once, and all survivors converge on one final value.
func TestChaosRootCrashMidWorkload(t *testing.T) {
	const nodes = 5
	c, err := NewCluster(nodes, WithChaos(),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)

	var (
		inSection int32 // 1 while any section holds the mutex
		overlaps  int32 // double-grant violations observed
		confirmed int64 // increments whose commit was locally observed
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	// Workers on every non-root node; the root (node 0) is the crash
	// victim, so nothing holds the lock when it dies mid-reign.
	for i := 1; i < nodes; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := h.TryLockFor(m, 300*time.Millisecond)
				if err != nil || !ok {
					continue // outage window: retry until the new root answers
				}
				if !atomic.CompareAndSwapInt32(&inSection, 0, 1) {
					atomic.AddInt32(&overlaps, 1)
				}
				cur, rerr := h.Read(v)
				if rerr == nil {
					if werr := h.Write(v, cur+1); werr == nil {
						// Count the increment only once its sequenced echo
						// lands locally — that is the commit point that must
						// survive the crash.
						ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
						if h.WaitGEContext(ctx, v, cur+1) == nil {
							atomic.AddInt64(&confirmed, 1)
						}
						cancel()
					}
				}
				atomic.StoreInt32(&inSection, 0)
				_ = h.Release(m)
			}
		}(c.MustHandle(i))
	}

	// Let the workload establish itself, then kill the root.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&confirmed) < 5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if atomic.LoadInt64(&confirmed) < 5 {
		t.Fatal("workload never got going before the crash")
	}
	c.Chaos().Crash(0)

	// The lowest surviving ID must take over within the failure deadline.
	deadline = time.Now().Add(5 * time.Second)
	for c.MustHandle(1).Stats().GWC.Failovers == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.MustHandle(1).Stats().GWC.Failovers != 1 {
		t.Fatal("node 1 never promoted itself after the root crash")
	}

	// Keep the workload running under the new root, then wind down.
	post := atomic.LoadInt64(&confirmed)
	deadline = time.Now().Add(5 * time.Second)
	for atomic.LoadInt64(&confirmed) < post+5 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	if n := atomic.LoadInt32(&overlaps); n != 0 {
		t.Errorf("mutual exclusion violated %d times", n)
	}
	// A single crash-failover cycle resolves well inside the default
	// stuck-operation budget (4x the failure deadline), so any watchdog
	// trip on a survivor means an operation genuinely wedged. The crashed
	// root is exempt: its fence staying up while isolated is exactly what
	// its own watchdog should report.
	for i := 1; i < nodes; i++ {
		if n := c.MustHandle(i).Stats().GWC.WatchdogStuck; n != 0 {
			t.Errorf("node %d: stuck-operation watchdog tripped %d times during a healthy failover", i, n)
		}
	}
	want := atomic.LoadInt64(&confirmed)
	if want <= post {
		t.Errorf("no increments committed under the new root (pre-crash %d, final %d)", post, want)
	}

	// Survivors converge on a single final value that lost none of the
	// confirmed increments.
	var final int64 = -1
	deadline = time.Now().Add(5 * time.Second)
	for {
		vals := make([]int64, 0, nodes-1)
		for i := 1; i < nodes; i++ {
			got, err := c.MustHandle(i).Read(v)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, got)
		}
		agreed := true
		for _, got := range vals[1:] {
			if got != vals[0] {
				agreed = false
			}
		}
		if agreed {
			final = vals[0]
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("survivors never converged: counters %v", vals)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final < want {
		t.Errorf("final counter %d lost committed writes (%d confirmed)", final, want)
	}

	// The deposed root, revived, must stand down and adopt the new
	// reign's state rather than split the group.
	c.Chaos().Revive(0)
	deadline = time.Now().Add(5 * time.Second)
	for c.MustHandle(0).Stats().GWC.Demotions == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if c.MustHandle(0).Stats().GWC.Demotions != 1 {
		t.Fatal("revived old root never stood down")
	}
	deadline = time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if got, err := c.MustHandle(0).Read(v); err == nil && got >= final {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	got, _ := c.MustHandle(0).Read(v)
	t.Fatalf("revived root stuck at counter %d, group reached %d", got, final)
}

// TestChaosCorruptionSoak runs a lock-guarded counter workload while the
// transport flips one random bit in ~1% of all frames, and checks the
// end-to-end integrity contract: the CRC32C frame trailer catches every
// single flip (a corrupted frame is discarded and recovered by the
// NACK/retry machinery, never delivered), so the workload suffers only
// retransmission latency — no lost increments, no divergence conviction,
// no stuck-operation watchdog trips — and the whole cluster converges on
// one final counter once corruption stops.
func TestChaosCorruptionSoak(t *testing.T) {
	const nodes = 5
	c, err := NewCluster(nodes, WithChaos(),
		WithIntegrity(60*time.Millisecond),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 300 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("soak", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)

	var (
		confirmed int64 // increments whose sequenced echo was observed locally
		expect    int64 // highest confirmed counter value (mutated only under m)
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	for i := 1; i < nodes; i++ {
		wg.Add(1)
		go func(h *Handle) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ok, err := h.TryLockFor(m, 300*time.Millisecond)
				if err != nil || !ok {
					continue // corrupted control frames: retry until one gets through
				}
				// A corrupted (discarded, not-yet-retransmitted) sequenced
				// frame can leave this copy behind the previous holder's
				// write even though the lock already moved on, so catch up
				// to the last confirmed value before the read-modify-write
				// — the acquire/sync/modify pattern corruption demands.
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				caughtUp := h.WaitGEContext(ctx, v, atomic.LoadInt64(&expect)) == nil
				cancel()
				if caughtUp {
					if cur, rerr := h.Read(v); rerr == nil {
						if werr := h.Write(v, cur+1); werr == nil {
							// Commit point: the write is visible at the
							// sequencer. The local copy applies eagerly, so
							// reading it back proves nothing; the root's copy
							// moves only when the write is sequenced. Waiting
							// while the lock is still held is what makes a
							// corrupted carrier frame recoverable — the
							// up-path re-send arrives with a still-current
							// grant tag.
							wait := time.Now().Add(2 * time.Second)
							for time.Now().Before(wait) {
								if got, gerr := c.MustHandle(0).Read(v); gerr == nil && got >= cur+1 {
									atomic.AddInt64(&confirmed, 1)
									atomic.StoreInt64(&expect, cur+1)
									break
								}
								time.Sleep(time.Millisecond)
							}
						}
					}
				}
				_ = h.Release(m)
			}
		}(c.MustHandle(i))
	}

	// Let the workload establish itself on a clean network, then turn on
	// the bit rot.
	deadline := time.Now().Add(2 * time.Second)
	for atomic.LoadInt64(&confirmed) < 3 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if atomic.LoadInt64(&confirmed) < 3 {
		t.Fatal("workload never got going before corruption")
	}
	c.Chaos().Corrupt(0.01)

	// Soak: enough new increments to span many sweep intervals, and
	// enough injected flips for the catch-rate claim to mean something.
	pre := atomic.LoadInt64(&confirmed)
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		injected, _, _ := c.Chaos().CorruptStats()
		if atomic.LoadInt64(&confirmed) >= pre+30 && injected >= 25 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Clean wind-down so convergence is not racing fresh corruption.
	c.Chaos().Corrupt(0)
	close(stop)
	wg.Wait()

	injected, caught, missed := c.Chaos().CorruptStats()
	if injected < 25 {
		t.Fatalf("soak injected only %d bit-flips; the workload stalled under corruption", injected)
	}
	if missed != 0 || caught != injected {
		t.Errorf("checksums caught %d of %d corrupted frames (%d delivered corrupt)", caught, injected, missed)
	}
	want := atomic.LoadInt64(&confirmed)
	if want < pre+30 {
		t.Errorf("only %d increments confirmed under corruption (want >= 30 past the %d pre-soak)", want-pre, pre)
	}

	// Every node converges on a single final value with no confirmed
	// increment lost to a discarded frame.
	var final int64 = -1
	deadline = time.Now().Add(5 * time.Second)
	for {
		vals := make([]int64, 0, nodes)
		for i := 0; i < nodes; i++ {
			got, err := c.MustHandle(i).Read(v)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, got)
		}
		agreed := true
		for _, got := range vals[1:] {
			if got != vals[0] {
				agreed = false
			}
		}
		if agreed {
			final = vals[0]
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("cluster never converged after the soak: counters %v", vals)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final < want {
		t.Errorf("final counter %d lost confirmed increments (%d confirmed)", final, want)
	}

	// Transport bit rot must be invisible above the codec: no node's copy
	// was ever convicted by a digest sweep (the corruption never reached
	// an apply), and no operation wedged past the watchdog budget — the
	// retry machinery absorbed every discarded frame.
	for i := 0; i < nodes; i++ {
		s := c.MustHandle(i).Stats().GWC
		if s.Divergences != 0 {
			t.Errorf("node %d: %d divergence convictions from transport-level corruption", i, s.Divergences)
		}
		if s.WatchdogStuck != 0 {
			t.Errorf("node %d: stuck-operation watchdog tripped %d times during the soak", i, s.WatchdogStuck)
		}
	}
	// The sweep itself must have been live the whole time, or the
	// no-divergence claim above is vacuous.
	if s := c.MustHandle(0).Stats().GWC; s.DigestSweeps == 0 {
		t.Error("integrity was enabled but the root never swept")
	}
}

// TestChaosLeasedSoak runs a lease-enabled lock workload under 1%
// transport bit rot plus a rolling partition schedule, and checks that
// the lease fast path and the chaos machinery compose: local re-entries
// and peer handoffs keep happening, the CRC trailer still catches every
// flip, no node is ever convicted of divergence, no operation wedges
// past the stuck-op watchdog, and the cluster converges with every
// confirmed increment intact. Partition windows are kept shorter than
// the failure deadline, so the soak also pins that lease churn plus
// frame loss alone never manufactures a reign change.
func TestChaosLeasedSoak(t *testing.T) {
	const nodes = 5
	c, err := NewCluster(nodes, WithChaos(),
		WithIntegrity(60*time.Millisecond),
		WithLeases(250*time.Millisecond),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 300 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("soak", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	v := g.Int("counter", m)

	var (
		confirmed int64 // increments whose sequenced echo reached the root
		expect    int64 // highest confirmed counter value (mutated only under m)
		stop      = make(chan struct{})
		wg        sync.WaitGroup
	)
	// One section: catch up past corruption-induced staleness, increment,
	// and hold the lock until the root's copy proves the write sequenced
	// (the same acquire/sync/modify shape as the corruption soak).
	section := func(h *Handle) {
		ok, err := h.TryLockFor(m, 300*time.Millisecond)
		if err != nil || !ok {
			return // outage or corrupted control frames: retry later
		}
		defer func() { _ = h.Release(m) }()
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		caughtUp := h.WaitGEContext(ctx, v, atomic.LoadInt64(&expect)) == nil
		cancel()
		if !caughtUp {
			return
		}
		cur, rerr := h.Read(v)
		if rerr != nil {
			return
		}
		if werr := h.Write(v, cur+1); werr != nil {
			return
		}
		wait := time.Now().Add(2 * time.Second)
		for time.Now().Before(wait) {
			if got, gerr := c.MustHandle(0).Read(v); gerr == nil && got >= cur+1 {
				atomic.AddInt64(&confirmed, 1)
				atomic.StoreInt64(&expect, cur+1)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}
	// Node 1 bursts: back-to-back sections with no pause, so whenever the
	// queue drains it gets the lock leased and re-enters locally. Nodes
	// 2-4 poke with short sleeps: their requests force revokes and put
	// waiters in the queue, which is what arms the handoff hints.
	wg.Add(1)
	go func(h *Handle) {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			section(h)
		}
	}(c.MustHandle(1))
	for i := 2; i < nodes; i++ {
		wg.Add(1)
		go func(h *Handle, pause time.Duration) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				section(h)
				time.Sleep(pause)
			}
		}(c.MustHandle(i), time.Duration(10+5*i)*time.Millisecond)
	}

	// Establish the workload and the lease fast path on a clean network.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if atomic.LoadInt64(&confirmed) >= 3 && c.MustHandle(1).Stats().GWC.LeaseLocal >= 1 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if atomic.LoadInt64(&confirmed) < 3 {
		t.Fatal("workload never got going before the chaos")
	}
	if c.MustHandle(1).Stats().GWC.LeaseLocal < 1 {
		t.Fatal("burst worker never re-entered locally; the soak would not exercise leasing")
	}

	// Chaos on: bit rot for the whole soak, partitions in rolling windows
	// shorter than the 300ms failure deadline, so isolated minorities
	// stall and recover without ever starting an election.
	c.Chaos().Corrupt(0.01)
	pre := atomic.LoadInt64(&confirmed)
	cuts := [][]int{{4}, {3, 4}}
	for cycle := 0; cycle < 8; cycle++ {
		minority := cuts[cycle%2]
		iso := map[int]bool{}
		for _, n := range minority {
			iso[n] = true
		}
		var majority []int
		for n := 0; n < nodes; n++ {
			if !iso[n] {
				majority = append(majority, n)
			}
		}
		c.Chaos().Partition(majority, minority)
		time.Sleep(200 * time.Millisecond)
		c.Chaos().Heal()
		time.Sleep(300 * time.Millisecond)
	}
	// Keep soaking on the healed-but-corrupt network until the claims
	// below are non-vacuous.
	deadline = time.Now().Add(20 * time.Second)
	for time.Now().Before(deadline) {
		injected, _, _ := c.Chaos().CorruptStats()
		if atomic.LoadInt64(&confirmed) >= pre+20 && injected >= 25 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Chaos().Corrupt(0)
	close(stop)
	wg.Wait()

	injected, caught, missed := c.Chaos().CorruptStats()
	if injected < 25 {
		t.Fatalf("soak injected only %d bit-flips; the workload stalled under chaos", injected)
	}
	if missed != 0 || caught != injected {
		t.Errorf("checksums caught %d of %d corrupted frames (%d delivered corrupt)", caught, injected, missed)
	}
	want := atomic.LoadInt64(&confirmed)
	if want < pre+20 {
		t.Errorf("only %d increments confirmed under chaos (want >= 20 past the %d pre-soak)", want-pre, pre)
	}

	// Convergence with nothing lost.
	var final int64 = -1
	deadline = time.Now().Add(5 * time.Second)
	for {
		vals := make([]int64, 0, nodes)
		for i := 0; i < nodes; i++ {
			got, err := c.MustHandle(i).Read(v)
			if err != nil {
				t.Fatal(err)
			}
			vals = append(vals, got)
		}
		agreed := true
		for _, got := range vals[1:] {
			if got != vals[0] {
				agreed = false
			}
		}
		if agreed {
			final = vals[0]
			break
		}
		if !time.Now().Before(deadline) {
			t.Fatalf("cluster never converged after the soak: counters %v", vals)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if final < want {
		t.Errorf("final counter %d lost confirmed increments (%d confirmed)", final, want)
	}

	// The core soak contract, now with leasing in the mix: corruption and
	// short partitions must stay invisible above the codec and below the
	// watchdog on every node, and must never have manufactured a reign
	// change.
	leaseLocal, leaseGrants := 0, 0
	for i := 0; i < nodes; i++ {
		s := c.MustHandle(i).Stats().GWC
		if s.Divergences != 0 {
			t.Errorf("node %d: %d divergence convictions during the leased soak", i, s.Divergences)
		}
		if s.WatchdogStuck != 0 {
			t.Errorf("node %d: stuck-operation watchdog tripped %d times during the leased soak", i, s.WatchdogStuck)
		}
		if s.Failovers != 0 || s.Elections != 0 {
			t.Errorf("node %d: %d failovers / %d elections from partitions shorter than the failure deadline", i, s.Failovers, s.Elections)
		}
		leaseLocal += s.LeaseLocal
		leaseGrants += s.LeaseGrants
	}
	if leaseGrants < 1 || leaseLocal < 1 {
		t.Errorf("lease machinery went vacuous mid-soak (grants=%d, local=%d)", leaseGrants, leaseLocal)
	}
	if s := c.MustHandle(0).Stats().GWC; s.DigestSweeps == 0 {
		t.Error("integrity was enabled but the root never swept")
	}
}

// TestChaosAcquireExpiredDeadline checks that a dead deadline fails fast
// even when the root is unreachable.
func TestChaosAcquireExpiredDeadline(t *testing.T) {
	c, err := NewCluster(3, WithChaos(),
		WithTiming(Timing{Retry: 15 * time.Millisecond, FailAfter: 90 * time.Millisecond, ElectWait: 40 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	g, err := c.NewGroup("chaos", 0)
	if err != nil {
		t.Fatal(err)
	}
	m := g.Mutex("lock")
	c.Chaos().Crash(0)

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if err := c.MustHandle(1).AcquireContext(ctx, m); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("AcquireContext = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Errorf("expired-deadline acquire took %v", d)
	}

	// A short live deadline also returns promptly while the root is down.
	ok, err := c.MustHandle(2).TryLockFor(m, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		_ = c.MustHandle(2).Release(m)
	}
}

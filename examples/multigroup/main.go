// Multigroup: two sharing groups with different roots (two lock
// managers). Transfers between an account in each group take both locks
// via DoAll — the paper's "mutual exclusion across multiple groups
// requires permissions from all the involved roots" — while a market-data
// feed publishes consistent (price, volume) pairs through the
// single-writer publication pattern, with readers that never see a torn
// pair.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"optsync"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 4, "cluster size")
		transfers = flag.Int("transfers", 50, "cross-group transfers per node")
		pubs      = flag.Int("pubs", 200, "market-data publications")
	)
	flag.Parse()
	if err := run(*nodes, *transfers, *pubs); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, transfers, pubs int) error {
	cluster, err := optsync.NewCluster(nodes)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	// Two groups, two roots: each root sequences (and manages locks for)
	// its own group.
	spot, err := cluster.NewGroup("spot", 0)
	if err != nil {
		return err
	}
	margin, err := cluster.NewGroup("margin", nodes-1)
	if err != nil {
		return err
	}
	spotLock := spot.Mutex("lock")
	spotAcct := spot.Int("account", spotLock)
	marginLock := margin.Mutex("lock")
	marginAcct := margin.Int("account", marginLock)

	// A market-data block in the spot group: single writer, many readers.
	price := spot.Int("price")
	volume := spot.Int("volume")
	feed, err := spot.Published("ticker", price, volume)
	if err != nil {
		return err
	}

	const initial = 100_000
	h0 := cluster.MustHandle(0)
	if err := h0.DoAll(func() error {
		if err := h0.Write(spotAcct, initial); err != nil {
			return err
		}
		return h0.Write(marginAcct, initial)
	}, spotLock, marginLock); err != nil {
		return err
	}

	var wg sync.WaitGroup

	// The feed writer publishes price/volume pairs with volume = price*3;
	// a consistent snapshot can never see anything else.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i <= pubs; i++ {
			p := int64(100 + i)
			if err := h0.Publish(feed, func() error {
				if err := h0.Write(price, p); err != nil {
					return err
				}
				return h0.Write(volume, 3*p)
			}); err != nil {
				log.Println("feed:", err)
				return
			}
		}
	}()

	// Every node moves funds between the two accounts under both locks
	// and checks the feed between transfers.
	torn := 0
	var tornMu sync.Mutex
	for id := 0; id < nodes; id++ {
		id := id
		h := cluster.MustHandle(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				amount := int64(1 + (id+i)%5)
				err := h.DoAll(func() error {
					s, err := h.Read(spotAcct)
					if err != nil {
						return err
					}
					m, err := h.Read(marginAcct)
					if err != nil {
						return err
					}
					if err := h.Write(spotAcct, s-amount); err != nil {
						return err
					}
					return h.Write(marginAcct, m+amount)
				}, spotLock, marginLock)
				if err != nil {
					log.Println("node", id, ":", err)
					return
				}
				snap, err := h.Snapshot(feed)
				if err != nil {
					log.Println("node", id, ":", err)
					return
				}
				if snap[1] != 3*snap[0] {
					tornMu.Lock()
					torn++
					tornMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	// Settle and verify the cross-group invariant on every node.
	deadline := time.Now().Add(5 * time.Second)
	for id := 0; id < nodes; id++ {
		h := cluster.MustHandle(id)
		for {
			s, _ := h.Read(spotAcct)
			m, _ := h.Read(marginAcct)
			if s+m == 2*initial {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("node %d: invariant broken: %d + %d != %d", id, s, m, 2*initial)
			}
			time.Sleep(time.Millisecond)
		}
	}
	s, _ := h0.Read(spotAcct)
	m, _ := h0.Read(marginAcct)
	fmt.Printf("%d cross-group transfers done; spot=%d margin=%d total=%d (invariant holds)\n",
		nodes*transfers, s, m, s+m)
	fmt.Printf("%d market-data snapshots taken; torn pairs observed: %d\n", nodes*transfers, torn)
	if torn > 0 {
		return fmt.Errorf("observed %d torn snapshots", torn)
	}
	return nil
}

// Optimistic: bank-style transfers between accounts under one lock, with
// every node racing optimistically. Simultaneous sections force real
// rollbacks — the invariant (total balance) must survive them — and the
// run reports how often speculation won, lost, or was avoided by the
// usage-frequency history.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"

	"optsync"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 5, "cluster size")
		transfers = flag.Int("transfers", 100, "transfers per node")
		lossy     = flag.Bool("lossy", false, "inject 10% loss on the sharing multicast")
	)
	flag.Parse()
	if err := run(*nodes, *transfers, *lossy); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, transfers int, lossy bool) error {
	var opts []optsync.Option
	if lossy {
		opts = append(opts, optsync.WithLossyNetwork(0.10, 42))
	}
	cluster, err := optsync.NewCluster(nodes, opts...)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	group, err := cluster.NewGroup("bank", 0)
	if err != nil {
		return err
	}
	lock := group.Mutex("accounts")
	checking := group.Int("checking", lock)
	savings := group.Int("savings", lock)

	const initial = 10_000
	h0 := cluster.MustHandle(0)
	if err := h0.Do(lock, func() error {
		if err := h0.Write(checking, initial); err != nil {
			return err
		}
		return h0.Write(savings, initial)
	}); err != nil {
		return err
	}

	// Every node repeatedly moves money between the two accounts through
	// optimistic sections. The amounts differ per node so lost updates
	// would corrupt the total.
	var wg sync.WaitGroup
	for id := 0; id < nodes; id++ {
		id := id
		h := cluster.MustHandle(id)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := 0; t < transfers; t++ {
				amount := int64(1 + (id+t)%7)
				err := h.OptimisticDo(lock, func(tx *optsync.Tx) error {
					c, err := tx.Read(checking)
					if err != nil {
						return err
					}
					s, err := tx.Read(savings)
					if err != nil {
						return err
					}
					if err := tx.Write(checking, c-amount); err != nil {
						return err
					}
					return tx.Write(savings, s+amount)
				})
				if err != nil {
					log.Println("node", id, ":", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// The invariant: no money created or destroyed, on any node's view.
	if err := awaitInvariant(cluster, checking, savings, 2*initial); err != nil {
		return err
	}
	var optimistic, commits, rollbacks, regular int
	for i := 0; i < nodes; i++ {
		s := cluster.MustHandle(i).Stats().Optimistic
		optimistic += s.Optimistic
		commits += s.Commits
		rollbacks += s.Rollbacks
		regular += s.Regular
	}
	fmt.Printf("%d transfers across %d nodes (lossy=%v)\n", nodes*transfers, nodes, lossy)
	fmt.Printf("speculative sections: %d (%d committed, %d rolled back); regular path: %d\n",
		optimistic, commits, rollbacks, regular)
	c, _ := h0.Read(checking)
	s, _ := h0.Read(savings)
	fmt.Printf("final balances: checking=%d savings=%d total=%d (invariant holds)\n", c, s, c+s)
	return nil
}

// awaitInvariant waits until every node's local copies sum to total.
func awaitInvariant(cluster *optsync.Cluster, a, b *optsync.Var, total int64) error {
	for i := 0; i < cluster.Size(); i++ {
		h := cluster.MustHandle(i)
		for {
			av, err := h.Read(a)
			if err != nil {
				return err
			}
			bv, err := h.Read(b)
			if err != nil {
				return err
			}
			if av+bv == total {
				break
			}
			// Updates still in flight; the eager multicast settles fast.
		}
	}
	return nil
}

// Pipeline: the paper's Figure 8 example on the live runtime — a ring of
// nodes passing a token; each iteration waits for the predecessor's data,
// computes, updates shared state inside a mutual exclusion section, and
// hands off to the successor. Comparing -optimistic against the regular
// path shows the lock round trip hiding under the critical section.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"optsync"
)

func main() {
	var (
		nodes      = flag.Int("nodes", 4, "ring size")
		laps       = flag.Int("laps", 50, "token laps around the ring")
		optimistic = flag.Bool("optimistic", true, "use optimistic mutual exclusion")
	)
	flag.Parse()
	if err := run(*nodes, *laps, *optimistic); err != nil {
		log.Fatal(err)
	}
}

func run(nodes, laps int, optimistic bool) error {
	cluster, err := optsync.NewCluster(nodes)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	group, err := cluster.NewGroup("ring", 0)
	if err != nil {
		return err
	}
	lock := group.Mutex("mx")
	shared := group.Int("shared", lock)
	produced := make([]*optsync.Var, nodes) // per-node "items sent" counters
	for i := range produced {
		produced[i] = group.Int(fmt.Sprintf("data%d", i))
	}

	start := time.Now()
	var wg sync.WaitGroup
	for id := 0; id < nodes; id++ {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			h := cluster.MustHandle(id)
			prev := (id - 1 + nodes) % nodes
			for it := 1; it <= laps; it++ {
				// Wait for the predecessor's item; the token starts at
				// node 0.
				need := int64(it)
				if id == 0 {
					need = int64(it - 1)
				}
				if need > 0 {
					if err := h.WaitGE(produced[prev], need); err != nil {
						log.Println("node", id, ":", err)
						return
					}
				}
				// The mutually exclusive update.
				section := func(read func(*optsync.Var) (int64, error), write func(*optsync.Var, int64) error) error {
					cur, err := read(shared)
					if err != nil {
						return err
					}
					return write(shared, cur+1)
				}
				var err error
				if optimistic {
					err = h.OptimisticDo(lock, func(tx *optsync.Tx) error {
						return section(tx.Read, tx.Write)
					})
				} else {
					err = h.Do(lock, func() error {
						return section(h.Read, h.Write)
					})
				}
				if err != nil {
					log.Println("node", id, ":", err)
					return
				}
				// Hand the token to the successor.
				if err := h.Write(produced[id], int64(it)); err != nil {
					log.Println("node", id, ":", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every node entered the section once per lap.
	want := int64(nodes * laps)
	h0 := cluster.MustHandle(0)
	if err := h0.WaitGE(shared, want); err != nil {
		return err
	}
	mode := "regular"
	if optimistic {
		mode = "optimistic"
	}
	fmt.Printf("%d nodes x %d laps (%s locking) in %v; shared counter = %d\n",
		nodes, laps, mode, time.Since(start).Round(time.Millisecond), want)
	var commits, rollbacks, regular int
	for i := 0; i < nodes; i++ {
		s := cluster.MustHandle(i).Stats().Optimistic
		commits += s.Commits
		rollbacks += s.Rollbacks
		regular += s.Regular
	}
	fmt.Printf("sections: %d optimistic commits, %d rollbacks, %d regular-path\n",
		commits, rollbacks, regular)
	return nil
}

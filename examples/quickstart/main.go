// Quickstart: a four-node DSM cluster sharing one counter under a
// queue-based GWC lock, incremented from every node with both the regular
// and the optimistic path.
package main

import (
	"fmt"
	"log"
	"sync"

	"optsync"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Four nodes on the in-process transport. Node 0 is the group root:
	// it sequences every shared write and manages the group's locks.
	cluster, err := optsync.NewCluster(4)
	if err != nil {
		return err
	}
	defer func() { _ = cluster.Close() }()

	group, err := cluster.NewGroup("demo", 0)
	if err != nil {
		return err
	}
	lock := group.Mutex("lock")
	counter := group.Int("counter", lock) // guarded: safe to write optimistically

	// Phase 1: regular mutual exclusion. Each node increments the shared
	// counter ten times under the lock.
	var wg sync.WaitGroup
	for i := 0; i < cluster.Size(); i++ {
		h := cluster.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				err := h.Do(lock, func() error {
					cur, err := h.Read(counter)
					if err != nil {
						return err
					}
					return h.Write(counter, cur+1)
				})
				if err != nil {
					log.Println("node", h.NodeID(), ":", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Phase 2: optimistic mutual exclusion. The critical section runs
	// while the lock request is still in flight; conflicts roll back and
	// re-execute.
	for i := 0; i < cluster.Size(); i++ {
		h := cluster.MustHandle(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				err := h.OptimisticDo(lock, func(tx *optsync.Tx) error {
					cur, err := tx.Read(counter)
					if err != nil {
						return err
					}
					return tx.Write(counter, cur+1)
				})
				if err != nil {
					log.Println("node", h.NodeID(), ":", err)
					return
				}
			}
		}()
	}
	wg.Wait()

	// Every node converges on the same total (4 nodes x 20 increments).
	want := int64(cluster.Size() * 20)
	for i := 0; i < cluster.Size(); i++ {
		h := cluster.MustHandle(i)
		if err := h.WaitGE(counter, want); err != nil {
			return err
		}
		got, err := h.Read(counter)
		if err != nil {
			return err
		}
		fmt.Printf("node %d sees counter = %d\n", i, got)
	}

	for i := 0; i < cluster.Size(); i++ {
		s := cluster.MustHandle(i).Stats()
		fmt.Printf("node %d: optimistic=%d commits=%d rollbacks=%d regular=%d\n",
			i, s.Optimistic.Optimistic, s.Optimistic.Commits, s.Optimistic.Rollbacks, s.Optimistic.Regular)
	}
	return nil
}
